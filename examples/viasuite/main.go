// Via-layer walkthrough (Section IV-C): generate via patterns, run the
// staged low-resolution schedule (s = 8 → 4 → 2) plus high-resolution
// fine-tuning with early stopping, and verify that every via prints.
//
//	go run ./examples/viasuite
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/metrics"
)

func main() {
	cfg := experiments.Config{N: 256, FieldNM: 1024, Kernels: 12, IterDiv: 1}
	proc, err := cfg.Process()
	if err != nil {
		log.Fatal(err)
	}
	cases, err := bench.ViaSuite(cfg.N, cfg.FieldNM, 3)
	if err != nil {
		log.Fatal(err)
	}
	spacing, thr := cfg.EPEParams()

	for _, cs := range cases {
		opts := core.DefaultOptions(proc)
		opts.Patience = core.ViaPatience // exit after 15 non-improving iterations
		o, err := core.New(opts, cs.Target)
		if err != nil {
			log.Fatal(err)
		}
		res, err := o.Run(context.Background(), core.ScaleStages(core.Via(), cfg.IterDiv))
		if err != nil {
			log.Fatal(err)
		}
		wafer, err := proc.Print(res.Mask, proc.Nominal())
		if err != nil {
			log.Fatal(err)
		}
		total, printed := viasPrinted(cs.Target, wafer)
		rep, err := metrics.Evaluate(proc, res.Mask, cs.Target, spacing, thr)
		if err != nil {
			log.Fatal(err)
		}
		rep = rep.Scale(cfg.PixelNM())
		fmt.Printf("%s: %d/%d vias printed, L2 %.0f nm², PVB %.0f nm², %d iterations (early stop), %.2fs\n",
			cs.Name, printed, total, rep.L2, rep.PVB, res.Iterations, res.ILTSeconds)
		if printed != total {
			log.Fatalf("%s: missing vias — the paper's via acceptance bar is all-print", cs.Name)
		}
	}
	fmt.Println("all via patterns printed completely")
}

// viasPrinted counts target vias whose area is at least half covered by the
// printed wafer image.
func viasPrinted(target, wafer *grid.Mat) (total, printed int) {
	labels, comps := geom.Label(target)
	covered := make([]int, len(comps)+1)
	for i, l := range labels {
		if l > 0 && wafer.Data[i] >= 0.5 {
			covered[l]++
		}
	}
	for _, comp := range comps {
		total++
		if covered[comp.Label]*2 >= comp.Area {
			printed++
		}
	}
	return total, printed
}
