// Quickstart: build an optical model, draw a small target, run the fast
// multi-level ILT recipe, and compare the contest metrics of the raw target
// mask against the optimized mask.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/litho"
	"repro/internal/metrics"
	"repro/internal/optics"
)

func main() {
	// 1. Optics: a reduced 512 nm field keeps the kernel build instant.
	//    (optics.Default() is the paper-scale 2048 nm / 24-kernel setup.)
	oc := optics.TestScale()
	model, err := optics.BuildModel(oc)
	if err != nil {
		log.Fatal(err)
	}
	proc := litho.NewProcess(model)
	fmt.Printf("SOCS model: %d kernels of support %d (nominal + defocus sets)\n",
		len(model.Nominal.Kernels), model.Nominal.P)

	// 2. Target: two metal bars on a 256-px tile (2 nm/px here).
	target := grid.NewMat(256, 256)
	geom.FillRect(target, geom.Rect{X0: 64, Y0: 84, X1: 192, Y1: 112}, 1)
	geom.FillRect(target, geom.Rect{X0: 64, Y0: 144, X1: 192, Y1: 172}, 1)

	// 3. Optimize with the paper's fast recipe: 35 low-resolution
	//    iterations at s=4, then 5 high-resolution iterations at s=8.
	opts := core.DefaultOptions(proc)
	opt, err := core.New(opts, target)
	if err != nil {
		log.Fatal(err)
	}
	res, err := opt.Run(context.Background(), core.FastM1())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fast recipe: %d iterations in %.2fs\n", res.Iterations, res.ILTSeconds)

	// 4. Evaluate both masks with the exact simulator at all corners.
	const epeSpacing, epeThr = 20, 8 // 40 nm / 15 nm at 2 nm/px
	before, err := metrics.Evaluate(proc, target, target, epeSpacing, epeThr)
	if err != nil {
		log.Fatal(err)
	}
	after, err := metrics.Evaluate(proc, res.Mask, target, epeSpacing, epeThr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("raw target as mask:  L2 %6.0f  PVB %6.0f  EPE %d\n", before.L2, before.PVB, before.EPE)
	fmt.Printf("optimized mask:      L2 %6.0f  PVB %6.0f  EPE %d  (#shots %d)\n",
		after.L2, after.PVB, after.EPE, after.Shots)
	if after.L2 >= before.L2 {
		log.Fatal("optimization did not improve L2 — something is wrong")
	}
	fmt.Printf("L2 improvement: %.1f%%\n", 100*(before.L2-after.L2)/before.L2)
}
