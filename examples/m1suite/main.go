// M1 suite walkthrough: generate the first three ICCAD-2013-like M1 cases,
// run both paper recipes (fast and exact) under region option 1, and print
// a Table II-style comparison.
//
//	go run ./examples/m1suite
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/mask"
	"repro/internal/metrics"
	"repro/internal/post"
	"repro/internal/report"
)

func main() {
	// A reduced grid keeps this example around a minute of CPU; raise N
	// (and drop IterDiv) to approach paper scale.
	cfg := experiments.Config{N: 256, FieldNM: 1024, Kernels: 12, IterDiv: 2}
	proc, err := cfg.Process()
	if err != nil {
		log.Fatal(err)
	}
	cases, err := bench.M1Suite(cfg.N, cfg.FieldNM)
	if err != nil {
		log.Fatal(err)
	}
	cases = cases[:3]

	t := report.NewTable("M1 cases, fast vs exact recipe (region option 1)",
		"case", "recipe", "L2 (nm²)", "PVB (nm²)", "EPE", "#shots", "ILT (s)")
	margin1, _ := cfg.RegionMargins()
	spacing, thr := cfg.EPEParams()
	for _, cs := range cases {
		region, err := mask.Region(cs.Target, mask.Option1, margin1)
		if err != nil {
			log.Fatal(err)
		}
		for _, recipe := range []struct {
			name   string
			stages []core.Stage
		}{
			{"fast", core.FastM1()},
			{"exact", core.ExactM1()},
		} {
			opts := core.DefaultOptions(proc)
			opts.Region = region
			o, err := core.New(opts, cs.Target)
			if err != nil {
				log.Fatal(err)
			}
			res, err := o.Run(context.Background(), core.ScaleStages(recipe.stages, cfg.IterDiv))
			if err != nil {
				log.Fatal(err)
			}
			cleaned := post.Clean(res.Mask, cs.Target, post.DefaultOptions(cfg.PixelNM()))
			rep, err := metrics.Evaluate(proc, cleaned.Mask, cs.Target, spacing, thr)
			if err != nil {
				log.Fatal(err)
			}
			rep = rep.Scale(cfg.PixelNM())
			t.Add(cs.Name, recipe.name, report.F(rep.L2, 0), report.F(rep.PVB, 0),
				report.I(rep.EPE), report.I(rep.Shots), report.F(res.ILTSeconds, 2))
		}
	}
	t.Note("exact should match or beat fast on L2/PVB at roughly double the runtime")
	fmt.Fprint(os.Stdout, t.String())
}
