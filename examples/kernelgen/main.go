// Kernel generation walkthrough: build the SOCS decomposition from the
// partial-coherence model, inspect the eigenvalue spectrum and the energy
// captured by the truncated expansion, and dump kernel images.
//
//	go run ./examples/kernelgen
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/fft"
	"repro/internal/grid"
	"repro/internal/imgio"
	"repro/internal/optics"
)

func main() {
	oc := optics.TestScale()
	oc.NumKernels = 12

	fmt.Printf("optical column: λ=%g nm, NA=%g, annular σ ∈ [%g, %g], field %g nm → P=%d\n",
		oc.WavelengthNM, oc.NA, oc.SigmaIn, oc.SigmaOut, oc.FieldNM, oc.P())

	src := optics.DiscretizeSource(oc)
	fmt.Printf("source discretisation: %d points\n", len(src))

	captured, trace, err := optics.EnergyCapture(oc, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("TCC trace %.4f, captured by %d kernels: %.4f (%.1f%%)\n",
		trace, oc.NumKernels, captured, 100*captured/trace)

	model, err := optics.BuildModel(oc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("eigenvalue spectrum (nominal focus, open-frame normalized):")
	for k, w := range model.Nominal.Weights {
		bar := ""
		for i := 0; i < int(80*w/model.Nominal.Weights[0]); i++ {
			bar += "#"
		}
		fmt.Printf("  w[%2d] = %10.6f %s\n", k, w, bar)
	}

	// Render the first kernels in the spatial domain: embed the P×P
	// spectrum in a 64×64 grid, inverse FFT, save |h_k|.
	plan, err := fft.NewPlan2(64, 64)
	if err != nil {
		log.Fatal(err)
	}
	for k := 0; k < 4 && k < len(model.Nominal.Kernels); k++ {
		spec := fft.EmbedCentered(shiftToCorner(model.Nominal.Kernels[k]), 64)
		plan.Inverse(spec)
		img := fft.Shift(spec).AbsSq()
		img.Apply(math.Sqrt)
		if _, max := img.MinMax(); max > 0 {
			img.Scale(1 / max)
		}
		path := fmt.Sprintf("kernel_%d.png", k)
		if err := imgio.WritePNG(path, img); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", path)
	}
}

// shiftToCorner converts a centered P×P kernel to DC-at-zero layout by
// padding to the next even size and shifting.
func shiftToCorner(k *grid.CMat) *grid.CMat {
	n := k.W + 1 // P is odd; use an even grid for fft.Shift round-tripping
	out := grid.NewCMat(n, n)
	h := k.W / 2
	for y := 0; y < k.H; y++ {
		for x := 0; x < k.W; x++ {
			fx, fy := x-h, y-h
			out.Set((fx+n)%n, (fy+n)%n, k.At(x, y))
		}
	}
	return out
}
