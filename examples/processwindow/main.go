// Process-window walkthrough: optimize a target, then sweep the PVBand
// dose ladder and the dose window of the optimized mask vs the raw target
// mask — the generalisation of the paper's Definition 2 used by the
// `window` experiment.
//
//	go run ./examples/processwindow
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/litho"
	"repro/internal/metrics"
	"repro/internal/optics"
)

func main() {
	model, err := optics.BuildModel(optics.TestScale())
	if err != nil {
		log.Fatal(err)
	}
	proc := litho.NewProcess(model)

	target := grid.NewMat(256, 256)
	geom.FillRect(target, geom.Rect{X0: 72, Y0: 88, X1: 184, Y1: 116}, 1)
	geom.FillRect(target, geom.Rect{X0: 72, Y0: 140, X1: 184, Y1: 168}, 1)

	opt, err := core.New(core.DefaultOptions(proc), target)
	if err != nil {
		log.Fatal(err)
	}
	res, err := opt.Run(context.Background(), core.ExactM1())
	if err != nil {
		log.Fatal(err)
	}

	deltas := []float64{0, 0.01, 0.02, 0.03, 0.05}
	rawBands, err := metrics.PVBandLadder(proc, target, deltas)
	if err != nil {
		log.Fatal(err)
	}
	optBands, err := metrics.PVBandLadder(proc, res.Mask, deltas)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("PVBand ladder (px²):")
	fmt.Println("  dose±    raw mask   optimized")
	for i, d := range deltas {
		marker := ""
		//lint:ignore floatcmp d ranges over the literal slice above, so 0.02 compares bit-identically to its own literal
		if d == 0.02 {
			marker = "  ← the paper's PVB condition"
		}
		fmt.Printf("  %.2f   %8.0f   %8.0f%s\n", d, rawBands[i], optBands[i], marker)
	}

	doses := []float64{0.95, 0.98, 1.0, 1.02, 1.05}
	pts, err := metrics.DoseWindow(proc, res.Mask, target, doses, true, 20, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ndose window of the optimized mask (focus + defocus):")
	for _, p := range pts {
		focus := "nominal"
		if p.Defocused {
			focus = "defocus"
		}
		fmt.Printf("  dose %.2f %s: printed %5.0f px², L2 %6.0f, EPE %d\n",
			p.Dose, focus, p.Area, p.L2, p.EPE)
	}
}
