// Full-chip walkthrough: optimize a layout larger than one simulation tile
// by halo-overlapped tiling (internal/fullchip), then verify the stitched
// mask prints each feature.
//
//	go run ./examples/fullchip
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/fullchip"
	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/litho"
	"repro/internal/optics"
)

func main() {
	// Tiles are 128 px; with the 512 nm-field model that makes 4 nm/px
	// (the pixel-pitch invariant documented on fullchip.Options).
	model, err := optics.BuildModel(optics.TestScale())
	if err != nil {
		log.Fatal(err)
	}
	proc := litho.NewProcess(model)

	// A 600×400 px "chip" region — larger than any single tile, not a
	// power of two, with features scattered across tile boundaries.
	target := grid.NewMat(600, 400)
	for i := 0; i < 6; i++ {
		x := 40 + i*90
		geom.FillRect(target, geom.Rect{X0: x, Y0: 60 + (i%3)*100, X1: x + 60, Y1: 80 + (i%3)*100}, 1)
		geom.FillRect(target, geom.Rect{X0: x, Y0: 260, X1: x + 20, Y1: 340}, 1)
	}

	halo := fullchip.HaloFor(proc, 4)
	res, err := fullchip.Optimize(fullchip.Options{
		Process:   proc,
		TileSize:  128,
		Halo:      halo,
		Stages:    []core.Stage{{Scale: 4, Iters: 40}, {Scale: 8, Iters: 4, HighRes: true}},
		SkipEmpty: true,
	}, target)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tiled ILT: %d of %d tiles optimized (halo %d px) in %.1fs\n",
		res.TilesRun, res.TilesTotal, halo, res.ILTSeconds)

	// Print each tile region of the stitched mask and count features that
	// resolved (per-tile simulation keeps the pitch invariant).
	printed, total := 0, 0
	comps := geom.Components(target)
	for _, comp := range comps {
		total++
		// Simulate a 128-px window centred on the feature.
		cx := (comp.BBox.X0 + comp.BBox.X1) / 2
		cy := (comp.BBox.Y0 + comp.BBox.Y1) / 2
		win := window(res.Mask, cx-64, cy-64, 128)
		z, err := proc.Print(win, proc.Nominal())
		if err != nil {
			log.Fatal(err)
		}
		tgtWin := window(target, cx-64, cy-64, 128)
		overlap := 0.0
		for i := range z.Data {
			if z.Data[i] >= 0.5 && tgtWin.Data[i] >= 0.5 {
				overlap++
			}
		}
		ratio := overlap / tgtWin.Sum()
		if ratio >= 0.5 {
			printed++
		} else {
			fmt.Printf("  low coverage %.2f at feature bbox %+v\n", ratio, comp.BBox)
		}
	}
	fmt.Printf("features printed: %d of %d\n", printed, total)
	if printed != total {
		log.Fatal("stitched mask failed to print some features")
	}
}

// window extracts a t×t view with zero padding outside the image.
func window(m *grid.Mat, ox, oy, t int) *grid.Mat {
	out := grid.NewMat(t, t)
	for y := 0; y < t; y++ {
		sy := oy + y
		if sy < 0 || sy >= m.H {
			continue
		}
		for x := 0; x < t; x++ {
			sx := ox + x
			if sx < 0 || sx >= m.W {
				continue
			}
			out.Set(x, y, m.At(sx, sy))
		}
	}
	return out
}
