package repro

import (
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestCLIEndToEnd builds the four command-line tools and drives the full
// user workflow: generate a benchmark suite, optimize a case, forward-
// simulate the result, and regenerate an experiment table.
func TestCLIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration builds binaries; skipped in -short mode")
	}
	bin := t.TempDir()
	build := exec.Command("go", "build", "-o", bin+string(os.PathSeparator),
		"./cmd/benchgen", "./cmd/iltopt", "./cmd/lithosim", "./cmd/mltables")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	run := func(name string, args ...string) string {
		t.Helper()
		cmd := exec.Command(filepath.Join(bin, name), args...)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("%s %v: %v\n%s", name, args, err, out)
		}
		return string(out)
	}

	work := t.TempDir()
	small := []string{"-n", "128", "-field", "512", "-kernels", "8"}

	// 1. Generate layouts.
	out := run("benchgen", "-n", "128", "-field", "512", "-suite", "via",
		"-count", "2", "-out", work, "-png=false")
	if !strings.Contains(out, "via1") {
		t.Fatalf("benchgen output missing case name:\n%s", out)
	}
	if _, err := os.Stat(filepath.Join(work, "via1.glp")); err != nil {
		t.Fatal("benchgen did not write via1.glp")
	}

	// 2. Optimize the generated layout.
	prefix := filepath.Join(work, "opt")
	out = run("iltopt", append(small, "-layout", filepath.Join(work, "via1.glp"),
		"-recipe", "via", "-iterdiv", "4", "-out", prefix)...)
	if !strings.Contains(out, "L2") {
		t.Fatalf("iltopt output missing metrics:\n%s", out)
	}
	for _, suffix := range []string{"_mask.png", "_wafer.png", "_mask.glp"} {
		if _, err := os.Stat(prefix + suffix); err != nil {
			t.Fatalf("iltopt artifact %s missing", suffix)
		}
	}

	// 3. Forward-simulate the optimized mask layout with Eq. (7).
	out = run("lithosim", append(small, "-layout", prefix+"_mask.glp",
		"-eq", "7", "-scale", "4")...)
	if !strings.Contains(out, "Eq.(7)") || !strings.Contains(out, "printed area") {
		t.Fatalf("lithosim output unexpected:\n%s", out)
	}

	// 4. Regenerate one experiment table.
	out = run("mltables", append(small, "-iterdiv", "20", "-baselines=false",
		"-exp", "fig5")...)
	if !strings.Contains(out, "Fig. 5") {
		t.Fatalf("mltables output missing table:\n%s", out)
	}

	// 5. Unknown experiment name fails cleanly.
	cmd := exec.Command(filepath.Join(bin, "mltables"), "-exp", "nosuch")
	if out, err := cmd.CombinedOutput(); err == nil {
		t.Fatalf("mltables accepted unknown experiment:\n%s", out)
	}
}

// TestTracestatCLI drives the trace-analytics tool the way the trace-stat
// lane does: report a real optimizer trace, then gate an A/B pair with a
// known injected slowdown — which must exit with the dedicated code 2.
func TestTracestatCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration builds binaries; skipped in -short mode")
	}
	bin := t.TempDir()
	build := exec.Command("go", "build", "-o", bin+string(os.PathSeparator),
		"./cmd/iltopt", "./cmd/tracestat")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	work := t.TempDir()
	trace := filepath.Join(work, "run.jsonl")

	// A short deterministic run produces the trace under analysis.
	opt := exec.Command(filepath.Join(bin, "iltopt"), "-case", "1", "-n", "128",
		"-field", "512", "-kernels", "8", "-iterdiv", "20", "-workers", "1",
		"-recipe", "fast", "-trace", trace)
	if out, err := opt.CombinedOutput(); err != nil {
		t.Fatalf("iltopt: %v\n%s", err, out)
	}

	// Report mode: the analytics sections must cover phases, iterations,
	// and the histogram summaries the recorder flushes at close.
	rep := exec.Command(filepath.Join(bin, "tracestat"), trace)
	out, err := rep.CombinedOutput()
	if err != nil {
		t.Fatalf("tracestat: %v\n%s", err, out)
	}
	for _, want := range []string{
		"trace report:", "iteration latency", "phases by wall time",
		"phase coverage:", "litho.socs", "latency histograms", "core.iter",
	} {
		if !strings.Contains(string(out), want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}

	// Compare mode on the committed fixtures (old vs new with an injected
	// +20% per-call slowdown in litho.socs) must exit exactly 2.
	cmp := exec.Command(filepath.Join(bin, "tracestat"), "-compare",
		"internal/tracestat/testdata/compare_old.jsonl",
		"internal/tracestat/testdata/compare_new.jsonl", "-threshold", "10%")
	out, err = cmp.CombinedOutput()
	if err == nil {
		t.Fatalf("compare with injected slowdown passed:\n%s", out)
	}
	var exitErr *exec.ExitError
	if !errors.As(err, &exitErr) || exitErr.ExitCode() != 2 {
		t.Fatalf("compare exit = %v, want exit code 2\n%s", err, out)
	}
	if !strings.Contains(string(out), "REGRESSED") {
		t.Errorf("compare output missing REGRESSED verdict:\n%s", out)
	}

	// The same pair under a slack threshold passes with exit 0.
	ok := exec.Command(filepath.Join(bin, "tracestat"), "-compare",
		"internal/tracestat/testdata/compare_old.jsonl",
		"internal/tracestat/testdata/compare_new.jsonl", "-threshold", "25%")
	if out, err := ok.CombinedOutput(); err != nil {
		t.Fatalf("compare at 25%%: %v\n%s", err, out)
	}
}
