// Command iltopt runs mask optimization on a layout file (or a generated
// benchmark case) and reports the contest metrics:
//
//	iltopt -case 1 -recipe exact            # synthetic ICCAD case1
//	iltopt -layout my.glp -recipe fast      # your own layout
//	iltopt -via 3 -recipe via               # synthetic via pattern
//	iltopt -case 1 -recipe levelset         # baseline comparison
//
// With -out PREFIX it writes PREFIX_mask.png/.glp and PREFIX_wafer.png plus
// a PREFIX_manifest.json run manifest. Observability flags: -trace FILE
// streams per-iteration JSONL events, -progress prints a live console
// summary, -debug-addr serves net/http/pprof and expvar, and -manifest
// forces the manifest path.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/baselines"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/grid"
	"repro/internal/imgio"
	"repro/internal/layout"
	"repro/internal/litho"
	"repro/internal/mask"
	"repro/internal/metrics"
	"repro/internal/post"
	"repro/internal/telemetry"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "iltopt:", err)
		os.Exit(1)
	}
}

func run() error {
	cfg := experiments.Harness()
	n := flag.Int("n", cfg.N, "simulation grid size (power of two)")
	field := flag.Float64("field", cfg.FieldNM, "physical field size in nm")
	kernels := flag.Int("kernels", cfg.Kernels, "number of SOCS kernels")
	iterdiv := flag.Int("iterdiv", 1, "divide recipe iteration budgets")
	workers := flag.Int("workers", 0, "per-kernel simulation fan-out (0 = GOMAXPROCS); results are identical for every value")
	fftEngine := flag.String("fft-engine", "", "FFT engine: batch (default) | band | band-inverse | reference")
	layoutPath := flag.String("layout", "", "layout file to optimize")
	caseIdx := flag.Int("case", 0, "synthetic paper case index (1-20) instead of -layout")
	viaIdx := flag.Int("via", 0, "synthetic via case index instead of -layout")
	recipe := flag.String("recipe", "exact", "fast | exact | via | pixel | levelset | attention")
	regionOpt := flag.Int("region", 1, "optimizing region option (1 or 2, 0 = unconstrained)")
	out := flag.String("out", "", "output prefix for mask/wafer artifacts")
	momentum := flag.Float64("momentum", 0, "heavy-ball momentum in [0, 1)")
	lineSearch := flag.Bool("linesearch", false, "backtracking line search per step (Zhao & Chu)")
	tvLambda := flag.Float64("tv", 0, "total-variation mask-complexity penalty weight")
	curvLambda := flag.Float64("curvature", 0, "curvature penalty weight")
	polygons := flag.Bool("polygons", false, "write the mask layout as traced polygons instead of fractured rectangles")
	trace := flag.String("trace", "", "write per-iteration JSONL trace events to this file")
	histSpans := flag.String("hist-spans", "litho.adjoint,litho.fft_forward",
		"comma-separated span phases that also record per-call latency histograms (empty disables)")
	progress := flag.Bool("progress", false, "print live per-stage/per-iteration progress to stderr")
	debugAddr := flag.String("debug-addr", "", "serve net/http/pprof and expvar on this address (e.g. localhost:6060)")
	manifestPath := flag.String("manifest", "", "run-manifest path (default <out>_manifest.json when -out is set)")
	flag.Parse()

	cfg.N = *n
	cfg.FieldNM = *field
	cfg.Kernels = *kernels
	cfg.IterDiv = *iterdiv
	cfg.Workers = *workers
	cfg.Engine = *fftEngine
	engine, err := litho.ParseEngine(*fftEngine)
	if err != nil {
		return err
	}

	// The recorder exists whenever any observability output is requested;
	// instrumented code paths see a nil recorder otherwise and cost nothing.
	if *manifestPath == "" && *out != "" {
		*manifestPath = *out + "_manifest.json"
	}
	var rec *telemetry.Recorder
	if *trace != "" || *progress || *debugAddr != "" || *manifestPath != "" {
		var topts []telemetry.Option
		if *trace != "" {
			f, err := os.Create(*trace)
			if err != nil {
				return err
			}
			topts = append(topts, telemetry.WithTrace(f))
		}
		if *progress {
			topts = append(topts, telemetry.WithConsole(os.Stderr))
		}
		if *histSpans != "" {
			topts = append(topts, telemetry.WithSpanHistograms(strings.Split(*histSpans, ",")...))
		}
		rec = telemetry.New(topts...)
		defer rec.Close()
	}
	if *debugAddr != "" {
		addr, stop, err := telemetry.ServeDebug(*debugAddr, rec)
		if err != nil {
			return err
		}
		defer stop()
		fmt.Fprintf(os.Stderr, "debug server on http://%s/debug/vars (pprof under /debug/pprof/)\n", addr)
	}
	cfg.Recorder = rec

	target, name, err := loadTarget(cfg, *layoutPath, *caseIdx, *viaIdx)
	if err != nil {
		return err
	}
	p, err := cfg.Process()
	if err != nil {
		return err
	}
	rec.Emit("run.start", telemetry.Fields{
		"tool": "iltopt", "name": name, "recipe": *recipe,
		"n": cfg.N, "field_nm": cfg.FieldNM, "kernels": cfg.Kernels,
		"iterdiv": cfg.IterDiv, "workers": cfg.Workers, "fft_engine": engine.String(),
	})

	var region *grid.Mat
	if *regionOpt != 0 {
		m1, m2 := cfg.RegionMargins()
		margin := m1
		opt := mask.Option1
		if *regionOpt == 2 {
			margin, opt = m2, mask.Option2
		}
		region, err = mask.Region(target, opt, margin)
		if err != nil {
			return err
		}
	}

	iters := 100 / *iterdiv
	if iters < 1 {
		iters = 1
	}
	var finalMask *grid.Mat
	var iltSec float64
	switch *recipe {
	case "fast", "exact", "via":
		var stages []core.Stage
		patience := 0
		switch *recipe {
		case "fast":
			stages = core.FastM1()
		case "exact":
			stages = core.ExactM1()
		case "via":
			stages = core.Via()
			patience = core.ViaPatience
		}
		opts := core.DefaultOptions(p)
		opts.Region = region
		opts.Patience = patience
		opts.Momentum = *momentum
		opts.LineSearch = *lineSearch
		opts.Recorder = rec
		if *tvLambda > 0 {
			opts.Penalties = append(opts.Penalties, core.TVPenalty{Lambda: *tvLambda})
		}
		if *curvLambda > 0 {
			opts.Penalties = append(opts.Penalties, core.CurvaturePenalty{Lambda: *curvLambda})
		}
		o, err := core.New(opts, target)
		if err != nil {
			return err
		}
		res, err := o.Run(context.Background(), core.ScaleStages(stages, *iterdiv))
		if err != nil {
			return err
		}
		sp := rec.StartSpan("post.clean")
		cleaned := post.Clean(res.Mask, target, post.DefaultOptions(cfg.PixelNM()))
		sp.End()
		finalMask, iltSec = cleaned.Mask, res.ILTSeconds
		fmt.Printf("%s: %d iterations, ILT %.2fs, post %.3fs (%d shapes removed, %d rectangularized)\n",
			*recipe, res.Iterations, res.ILTSeconds, cleaned.Seconds, cleaned.RemovedShapes, cleaned.Rectangularized)
	case "pixel":
		res, err := baselines.PixelILT(p, target, iters, region)
		if err != nil {
			return err
		}
		finalMask, iltSec = res.Mask, res.ILTSeconds
	case "attention":
		band := 2
		if b := int(24 / cfg.PixelNM()); b > band {
			band = b
		}
		res, err := baselines.AttentionILT(p, target, iters, band, region)
		if err != nil {
			return err
		}
		finalMask, iltSec = res.Mask, res.ILTSeconds
	case "levelset":
		res, err := baselines.LevelSetILT(baselines.LevelSetOptions{
			Process: p, Iters: iters, Region: region, Recorder: rec,
		}, target)
		if err != nil {
			return err
		}
		finalMask, iltSec = res.Mask, res.ILTSeconds
	default:
		return fmt.Errorf("unknown recipe %q", *recipe)
	}

	spacing, thr := cfg.EPEParams()
	sp := rec.StartSpan("metrics.evaluate")
	rep, err := metrics.Evaluate(p, finalMask, target, spacing, thr)
	sp.End()
	if err != nil {
		return err
	}
	rep = rep.Scale(cfg.PixelNM())
	fmt.Printf("%s  L2 %.0f nm²  PVB %.0f nm²  EPE %d  #shots %d  ILT %.2fs\n",
		name, rep.L2, rep.PVB, rep.EPE, rep.Shots, iltSec)
	rec.Emit("run.end", telemetry.Fields{
		"wall_sec": rec.Elapsed(), "ilt_sec": iltSec,
		"l2": rep.L2, "pvb": rep.PVB, "epe": rep.EPE, "shots": rep.Shots,
		"summary": fmt.Sprintf("%s L2 %.0f PVB %.0f EPE %d shots %d ILT %.2fs",
			name, rep.L2, rep.PVB, rep.EPE, rep.Shots, iltSec),
	})

	if *out != "" {
		if err := imgio.WritePNG(*out+"_mask.png", finalMask); err != nil {
			return err
		}
		wafer, err := p.Print(finalMask, p.Nominal())
		if err != nil {
			return err
		}
		if err := imgio.WritePNG(*out+"_wafer.png", wafer); err != nil {
			return err
		}
		var lay *layout.Layout
		if *polygons {
			lay = layout.FromMaskPolygons(finalMask, cfg.PixelNM())
		} else {
			lay = layout.FromMask(finalMask, cfg.PixelNM())
		}
		if err := lay.Save(*out + "_mask.glp"); err != nil {
			return err
		}
		fmt.Printf("artifacts: %s_mask.png %s_wafer.png %s_mask.glp\n", *out, *out, *out)
	}

	if *manifestPath != "" {
		man := telemetry.NewManifest("iltopt", map[string]any{
			"name": name, "recipe": *recipe, "n": cfg.N, "field_nm": cfg.FieldNM,
			"kernels": cfg.Kernels, "iterdiv": cfg.IterDiv, "workers": cfg.Workers,
			"fft_engine": engine.String(),
			"region":     *regionOpt, "momentum": *momentum, "linesearch": *lineSearch,
			"tv": *tvLambda, "curvature": *curvLambda,
		})
		man.SetMetric("l2_nm2", rep.L2)
		man.SetMetric("pvb_nm2", rep.PVB)
		man.SetMetric("epe", float64(rep.EPE))
		man.SetMetric("shots", float64(rep.Shots))
		man.SetMetric("ilt_sec", iltSec)
		man.Finish(rec)
		if err := man.Write(*manifestPath); err != nil {
			return err
		}
		fmt.Printf("manifest: %s\n", *manifestPath)
	}
	return nil
}

func loadTarget(cfg experiments.Config, path string, caseIdx, viaIdx int) (*grid.Mat, string, error) {
	switch {
	case path != "":
		l, err := layout.Load(path)
		if err != nil {
			return nil, "", err
		}
		m, err := l.Rasterize()
		if err != nil {
			return nil, "", err
		}
		return m, path, nil
	case caseIdx > 0:
		cs, err := bench.PaperCase(cfg.N, cfg.FieldNM, caseIdx)
		if err != nil {
			return nil, "", err
		}
		return cs.Target, cs.Name, nil
	case viaIdx > 0:
		cs, err := bench.ViaCase(cfg.N, cfg.FieldNM, viaIdx, 6+(viaIdx%5)*3)
		if err != nil {
			return nil, "", err
		}
		return cs.Target, cs.Name, nil
	default:
		return nil, "", fmt.Errorf("one of -layout, -case, -via is required")
	}
}
