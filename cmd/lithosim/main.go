// Command lithosim runs one forward lithography simulation of a mask and
// writes the aerial and wafer images:
//
//	lithosim -layout case1.glp -out sim            # Eq. (3), nominal corner
//	lithosim -mask mask.pgm -eq 7 -scale 4 -corner inner -out sim
//
// It prints intensity statistics and the printed area.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/grid"
	"repro/internal/imgio"
	"repro/internal/layout"
	"repro/internal/litho"
	"repro/internal/telemetry"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lithosim:", err)
		os.Exit(1)
	}
}

func run() error {
	cfg := experiments.Harness()
	n := flag.Int("n", cfg.N, "simulation grid size when rasterizing layouts")
	field := flag.Float64("field", cfg.FieldNM, "physical field size in nm")
	kernels := flag.Int("kernels", cfg.Kernels, "number of SOCS kernels")
	workers := flag.Int("workers", 0, "per-kernel simulation fan-out (0 = GOMAXPROCS); results are identical for every value")
	layoutPath := flag.String("layout", "", "layout file to simulate")
	maskPath := flag.String("mask", "", "PGM mask image to simulate (instead of -layout)")
	eq := flag.Int("eq", 3, "forward model: 3 (exact), 7 (truncated), 8 (pooled mask)")
	scale := flag.Int("scale", 4, "scale factor for -eq 7/8")
	corner := flag.String("corner", "nominal", "process corner: nominal | inner | outer")
	out := flag.String("out", "", "output prefix for aerial/wafer PNGs")
	trace := flag.String("trace", "", "write JSONL trace events (run + phase timers) to this file")
	debugAddr := flag.String("debug-addr", "", "serve net/http/pprof and expvar on this address")
	manifestPath := flag.String("manifest", "", "run-manifest path (default <out>_manifest.json when -out is set)")
	flag.Parse()

	cfg.N = *n
	cfg.FieldNM = *field
	cfg.Kernels = *kernels
	cfg.Workers = *workers

	if *manifestPath == "" && *out != "" {
		*manifestPath = *out + "_manifest.json"
	}
	var rec *telemetry.Recorder
	if *trace != "" || *debugAddr != "" || *manifestPath != "" {
		var topts []telemetry.Option
		if *trace != "" {
			f, err := os.Create(*trace)
			if err != nil {
				return err
			}
			topts = append(topts, telemetry.WithTrace(f))
		}
		rec = telemetry.New(topts...)
		defer rec.Close()
	}
	if *debugAddr != "" {
		addr, stop, err := telemetry.ServeDebug(*debugAddr, rec)
		if err != nil {
			return err
		}
		defer stop()
		fmt.Fprintf(os.Stderr, "debug server on http://%s/debug/vars (pprof under /debug/pprof/)\n", addr)
	}
	cfg.Recorder = rec

	var maskImg *grid.Mat
	switch {
	case *layoutPath != "":
		l, err := layout.Load(*layoutPath)
		if err != nil {
			return err
		}
		maskImg, err = l.Rasterize()
		if err != nil {
			return err
		}
	case *maskPath != "":
		var err error
		maskImg, err = imgio.ReadPGM(*maskPath)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("one of -layout or -mask is required")
	}

	p, err := cfg.Process()
	if err != nil {
		return err
	}
	var c litho.Corner
	switch *corner {
	case "nominal":
		c = p.Nominal()
	case "inner":
		c = p.Inner()
	case "outer":
		c = p.Outer()
	default:
		return fmt.Errorf("unknown corner %q", *corner)
	}

	rec.Emit("run.start", telemetry.Fields{
		"tool": "lithosim", "eq": *eq, "corner": *corner, "scale": *scale,
		"n": cfg.N, "field_nm": cfg.FieldNM, "kernels": cfg.Kernels, "workers": cfg.Workers,
	})

	var f *litho.Field
	switch *eq {
	case 3:
		f, err = p.Sim.Forward(maskImg, c.KS, c.Dose, false)
	case 7:
		f, err = p.Sim.ForwardEq7(maskImg, *scale, c.KS, c.Dose)
	case 8:
		pooled := grid.AvgPoolDown(maskImg, *scale)
		f, err = p.Sim.Forward(pooled, c.KS, c.Dose, false)
	default:
		return fmt.Errorf("unknown equation %d (want 3, 7 or 8)", *eq)
	}
	if err != nil {
		return err
	}

	wafer := litho.ResistBinary(f.Intensity, p.Threshold)
	min, max := f.Intensity.MinMax()
	fmt.Printf("Eq.(%d) at %s corner (dose %.2f): grid %d, intensity [%.4f, %.4f], printed area %.0f px²\n",
		*eq, c.Name, c.Dose, f.M, min, max, wafer.Sum())
	rec.Emit("run.end", telemetry.Fields{
		"wall_sec": rec.Elapsed(),
		"summary": fmt.Sprintf("Eq.(%d) %s dose %.2f: intensity [%.4f, %.4f], printed %.0f px²",
			*eq, c.Name, c.Dose, min, max, wafer.Sum()),
	})

	if *out != "" {
		aerial := f.Intensity.Clone()
		if max > 0 {
			aerial.Scale(1 / max)
		}
		if err := imgio.WritePNG(*out+"_aerial.png", aerial); err != nil {
			return err
		}
		if err := imgio.WritePNG(*out+"_wafer.png", wafer); err != nil {
			return err
		}
		fmt.Printf("artifacts: %s_aerial.png %s_wafer.png\n", *out, *out)
	}

	if *manifestPath != "" {
		man := telemetry.NewManifest("lithosim", map[string]any{
			"eq": *eq, "corner": *corner, "scale": *scale, "n": cfg.N,
			"field_nm": cfg.FieldNM, "kernels": cfg.Kernels, "workers": cfg.Workers,
		})
		man.SetMetric("intensity_min", min)
		man.SetMetric("intensity_max", max)
		man.SetMetric("printed_px2", wafer.Sum())
		man.Finish(rec)
		if err := man.Write(*manifestPath); err != nil {
			return err
		}
		fmt.Printf("manifest: %s\n", *manifestPath)
	}
	return nil
}
