// Command mltables regenerates the paper's tables and figures on the
// synthetic benchmark suites. It is the experiment driver behind
// EXPERIMENTS.md:
//
//	mltables                  # every experiment at the default harness scale
//	mltables -exp table2,fig4 # a subset
//	mltables -n 2048 -iterdiv 1 -out artifacts/  # paper scale (hours on CPU)
//
// Each experiment prints an aligned table; -out additionally writes CSV and
// PNG artifacts.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/experiments"
	"repro/internal/telemetry"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mltables:", err)
		os.Exit(1)
	}
}

func run() error {
	cfg := experiments.Harness()
	n := flag.Int("n", cfg.N, "simulation grid size (power of two)")
	field := flag.Float64("field", cfg.FieldNM, "physical field size in nm")
	kernels := flag.Int("kernels", cfg.Kernels, "number of SOCS kernels N_k")
	iterdiv := flag.Int("iterdiv", cfg.IterDiv, "divide every recipe's iteration budget by this")
	baselines := flag.Bool("baselines", cfg.WithBaselines, "also measure the reimplemented baselines (slow)")
	out := flag.String("out", "", "directory for CSV/PNG artifacts (empty = none)")
	exp := flag.String("exp", "all", "comma-separated experiments, or 'all': "+strings.Join(experiments.Names, ","))
	verbose := flag.Bool("v", false, "log per-case progress to stderr")
	trace := flag.String("trace", "", "write JSONL trace events (progress + phase timers) to this file")
	debugAddr := flag.String("debug-addr", "", "serve net/http/pprof and expvar on this address")
	flag.Parse()

	cfg.N = *n
	cfg.FieldNM = *field
	cfg.Kernels = *kernels
	cfg.IterDiv = *iterdiv
	cfg.WithBaselines = *baselines
	cfg.OutDir = *out

	// -v progress now flows through the telemetry console sink (the same
	// rendering path iltopt -progress uses); cfg.Log stays supported for
	// library callers.
	var topts []telemetry.Option
	if *verbose {
		topts = append(topts, telemetry.WithConsole(os.Stderr))
	}
	if *trace != "" {
		f, err := os.Create(*trace)
		if err != nil {
			return err
		}
		topts = append(topts, telemetry.WithTrace(f))
	}
	if len(topts) > 0 || *debugAddr != "" || *out != "" {
		cfg.Recorder = telemetry.New(topts...)
		defer cfg.Recorder.Close()
	}
	if *debugAddr != "" {
		addr, stop, err := telemetry.ServeDebug(*debugAddr, cfg.Recorder)
		if err != nil {
			return err
		}
		defer stop()
		fmt.Fprintf(os.Stderr, "debug server on http://%s/debug/vars (pprof under /debug/pprof/)\n", addr)
	}
	if err := cfg.Validate(); err != nil {
		return err
	}

	names := experiments.Names
	if *exp != "all" {
		names = strings.Split(*exp, ",")
	}
	var ran []string
	for _, name := range names {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if cfg.Recorder.Enabled() {
			cfg.Recorder.Emit("run.start", telemetry.Fields{"tool": "mltables", "name": name})
		}
		t, err := experiments.Run(cfg, name)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Println(t.String())
		ran = append(ran, name)
	}
	cfg.Recorder.Emit("run.end", telemetry.Fields{
		"wall_sec": cfg.Recorder.Elapsed(),
		"summary":  fmt.Sprintf("%d experiments: %s", len(ran), strings.Join(ran, ",")),
	})

	if *out != "" {
		man := telemetry.NewManifest("mltables", map[string]any{
			"n": cfg.N, "field_nm": cfg.FieldNM, "kernels": cfg.Kernels,
			"iterdiv": cfg.IterDiv, "baselines": cfg.WithBaselines,
			"experiments": strings.Join(ran, ","),
		})
		man.Finish(cfg.Recorder)
		path := filepath.Join(*out, "manifest.json")
		if err := man.Write(path); err != nil {
			return err
		}
		fmt.Printf("manifest: %s\n", path)
	}
	return nil
}
