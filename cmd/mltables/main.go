// Command mltables regenerates the paper's tables and figures on the
// synthetic benchmark suites. It is the experiment driver behind
// EXPERIMENTS.md:
//
//	mltables                  # every experiment at the default harness scale
//	mltables -exp table2,fig4 # a subset
//	mltables -n 2048 -iterdiv 1 -out artifacts/  # paper scale (hours on CPU)
//
// Each experiment prints an aligned table; -out additionally writes CSV and
// PNG artifacts.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mltables:", err)
		os.Exit(1)
	}
}

func run() error {
	cfg := experiments.Harness()
	n := flag.Int("n", cfg.N, "simulation grid size (power of two)")
	field := flag.Float64("field", cfg.FieldNM, "physical field size in nm")
	kernels := flag.Int("kernels", cfg.Kernels, "number of SOCS kernels N_k")
	iterdiv := flag.Int("iterdiv", cfg.IterDiv, "divide every recipe's iteration budget by this")
	baselines := flag.Bool("baselines", cfg.WithBaselines, "also measure the reimplemented baselines (slow)")
	out := flag.String("out", "", "directory for CSV/PNG artifacts (empty = none)")
	exp := flag.String("exp", "all", "comma-separated experiments, or 'all': "+strings.Join(experiments.Names, ","))
	verbose := flag.Bool("v", false, "log per-case progress to stderr")
	flag.Parse()

	cfg.N = *n
	cfg.FieldNM = *field
	cfg.Kernels = *kernels
	cfg.IterDiv = *iterdiv
	cfg.WithBaselines = *baselines
	cfg.OutDir = *out
	if *verbose {
		cfg.Log = os.Stderr
	}
	if err := cfg.Validate(); err != nil {
		return err
	}

	names := experiments.Names
	if *exp != "all" {
		names = strings.Split(*exp, ",")
	}
	for _, name := range names {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		t, err := experiments.Run(cfg, name)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Println(t.String())
	}
	return nil
}
