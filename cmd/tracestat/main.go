// Command tracestat analyzes the JSONL traces the instrumented pipeline
// writes (iltopt -trace, tracecheck-validated streams): per-phase wall-time
// tables with a critical-path summary, per-iteration latency quantiles and
// loss/step/retry series, and the latency-histogram summaries the recorder
// flushes at close.
//
//	tracestat run.jsonl                                  # analytics report
//	tracestat -compare old.jsonl new.jsonl -threshold 10%
//
// Compare mode gates on the per-call mean of each phase shared by both
// traces and exits 2 when any phase slowed by at least the threshold, so a
// CI lane can diff a PR's trace against a baseline. Exit codes: 0 clean,
// 1 usage or read error, 2 regression detected.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/tracestat"
)

func main() {
	code, err := run(os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracestat:", err)
	}
	os.Exit(code)
}

func run(argv []string) (int, error) {
	fs := flag.NewFlagSet("tracestat", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	compare := fs.Bool("compare", false, "A/B mode: compare two traces (old new)")
	threshold := fs.String("threshold", "10%", "per-phase mean slowdown that counts as a regression (\"10%\" or \"0.1\")")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: tracestat [flags] trace.jsonl")
		fmt.Fprintln(os.Stderr, "       tracestat -compare [flags] old.jsonl new.jsonl")
		fs.PrintDefaults()
	}

	// The standard flag package stops at the first positional argument;
	// re-parse after each one so `tracestat -compare old new -threshold 10%`
	// works with flags and files in any order.
	var files []string
	args := argv
	for {
		if err := fs.Parse(args); err != nil {
			return 1, nil // fs already printed the message
		}
		args = fs.Args()
		if len(args) == 0 {
			break
		}
		files = append(files, args[0])
		args = args[1:]
	}

	if *compare {
		if len(files) != 2 {
			fs.Usage()
			return 1, fmt.Errorf("-compare needs exactly two traces, got %d", len(files))
		}
		th, err := tracestat.ParseThreshold(*threshold)
		if err != nil {
			return 1, err
		}
		oldT, err := tracestat.ReadFile(files[0])
		if err != nil {
			return 1, err
		}
		newT, err := tracestat.ReadFile(files[1])
		if err != nil {
			return 1, err
		}
		res := tracestat.Compare(oldT, newT, th)
		res.Render(os.Stdout, files[0], files[1])
		if res.Regressions > 0 {
			return 2, fmt.Errorf("%d phase(s) regressed by >= %s", res.Regressions, *threshold)
		}
		return 0, nil
	}

	if len(files) != 1 {
		fs.Usage()
		return 1, fmt.Errorf("need exactly one trace, got %d", len(files))
	}
	t, err := tracestat.ReadFile(files[0])
	if err != nil {
		return 1, err
	}
	tracestat.Render(os.Stdout, t)
	return 0, nil
}
