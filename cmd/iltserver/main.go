// Command iltserver runs mask optimization as a long-running HTTP/JSON
// service over the multi-level pipeline (see DESIGN.md, "Serving"):
//
//	iltserver -addr localhost:8080 -jobs 2 -queue 16
//
// Endpoints:
//
//	POST   /jobs              submit a job (JSON; 202, or 429 when the queue is full)
//	GET    /jobs              list jobs
//	GET    /jobs/{id}         job status and result summary
//	DELETE /jobs/{id}         cancel a queued or running job
//	GET    /jobs/{id}/events  per-iteration progress as server-sent events
//	GET    /jobs/{id}/mask    final mask as layout text
//	GET    /healthz           liveness (reports "draining" during shutdown)
//	GET    /metrics           queue gauges, cache sizes, counters, phases
//	GET    /debug/vars        expvar (includes the "ilt" recorder snapshot)
//	GET    /debug/pprof/      pprof
//
// SIGTERM/SIGINT starts a graceful drain: new submissions are rejected
// with 503 while accepted jobs run to completion (bounded by
// -drain-timeout, after which they are cancelled); status and event
// streams stay available throughout.
//
// -smoke runs the CI smoke flow against an ephemeral in-process listener:
// submit one small job over real HTTP, stream its events to completion,
// check /healthz and /metrics, then drain.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/server"
	"repro/internal/telemetry"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "iltserver:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", "localhost:8080", "listen address (host:port, :0 for ephemeral)")
	jobs := flag.Int("jobs", 2, "number of jobs run concurrently")
	queue := flag.Int("queue", 16, "waiting-job queue capacity (beyond it, submissions get 429)")
	maxN := flag.Int("max-n", 2048, "largest accepted simulation grid side")
	maxIters := flag.Int("max-iters", 2000, "largest accepted total iteration budget")
	drainTimeout := flag.Duration("drain-timeout", 5*time.Minute, "graceful-drain bound after SIGTERM; running jobs are cancelled at the deadline")
	smoke := flag.Bool("smoke", false, "run the self-contained smoke flow and exit")
	flag.Parse()

	rec := telemetry.New()
	srv := server.New(server.Config{
		QueueCap:  *queue,
		Executors: *jobs,
		Limits:    server.Limits{MaxN: *maxN, MaxIters: *maxIters},
		Recorder:  rec,
	})

	if *smoke {
		return runSmoke(srv)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		_ = srv.Close() // nothing accepted yet; no drain result to lose
		return err
	}
	hsrv := &http.Server{Handler: srv}
	go hsrv.Serve(ln)
	fmt.Printf("iltserver listening on http://%s\n", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	stop() // a second signal kills the process the default way

	fmt.Fprintln(os.Stderr, "iltserver: draining (new submissions rejected)")
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	err = srv.Drain(dctx)
	if cerr := hsrv.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	fmt.Fprintln(os.Stderr, "iltserver: drained cleanly")
	return nil
}

// runSmoke exercises the full serving loop over real HTTP on an ephemeral
// port: healthz, one small end-to-end job streamed to completion via SSE,
// a result check, metrics, and a clean drain. It is the `make
// server-smoke` lane.
func runSmoke(srv *server.Server) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		_ = srv.Close() // nothing accepted yet; no drain result to lose
		return err
	}
	hsrv := &http.Server{Handler: srv}
	go hsrv.Serve(ln)
	defer hsrv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("smoke: server on %s\n", base)

	// 1. healthz
	var health struct {
		Status string `json:"status"`
	}
	if err := getJSON(base+"/healthz", &health); err != nil {
		return fmt.Errorf("healthz: %w", err)
	}
	if health.Status != "ok" {
		return fmt.Errorf("healthz status %q, want ok", health.Status)
	}
	fmt.Println("smoke: healthz ok")

	// 2. submit one small job
	req := map[string]any{
		"case": 1, "n": 128, "field_nm": 512, "kernels": 8,
		"recipe": "fast", "iterdiv": 8, "workers": 1,
	}
	body, _ := json.Marshal(req)
	resp, err := http.Post(base+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("submit: %w", err)
	}
	var accepted struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	err = json.NewDecoder(resp.Body).Decode(&accepted)
	_ = resp.Body.Close()
	if err != nil {
		return fmt.Errorf("submit reply: %w", err)
	}
	if resp.StatusCode != http.StatusAccepted || accepted.ID == "" {
		return fmt.Errorf("submit: status %d, id %q", resp.StatusCode, accepted.ID)
	}
	fmt.Printf("smoke: submitted %s\n", accepted.ID)

	// 3. stream events to completion
	events, err := streamEvents(base, accepted.ID)
	if err != nil {
		return fmt.Errorf("events: %w", err)
	}
	for _, want := range []string{"job.accepted", "run.start", "iter", "run.end", "phases"} {
		if events[want] == 0 {
			return fmt.Errorf("event stream missing %q (saw %v)", want, events)
		}
	}
	fmt.Printf("smoke: streamed %d iter events to completion\n", events["iter"])

	// 4. final status
	var status struct {
		State  string `json:"state"`
		Result *struct {
			Iterations int    `json:"iterations"`
			MaskSHA256 string `json:"mask_sha256"`
		} `json:"result"`
	}
	if err := getJSON(base+"/jobs/"+accepted.ID, &status); err != nil {
		return fmt.Errorf("status: %w", err)
	}
	if status.State != "done" || status.Result == nil || status.Result.MaskSHA256 == "" {
		return fmt.Errorf("job finished as %q with result %+v", status.State, status.Result)
	}
	fmt.Printf("smoke: job done after %d iterations, mask %s…\n",
		status.Result.Iterations, status.Result.MaskSHA256[:12])

	// 5. metrics
	var m struct {
		Jobs map[string]int `json:"jobs_by_state"`
	}
	if err := getJSON(base+"/metrics", &m); err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	if m.Jobs["done"] != 1 {
		return fmt.Errorf("metrics jobs_by_state %v, want one done", m.Jobs)
	}

	// 5b. Prometheus scrape: the same endpoint under content negotiation must
	// expose the counter, gauge, and histogram series a scraper depends on.
	prom, err := scrapePrometheus(base + "/metrics")
	if err != nil {
		return fmt.Errorf("prometheus scrape: %w", err)
	}
	for _, want := range []string{
		"ilt_server_jobs_submitted_total 1",
		`ilt_jobs{state="done"} 1`,
		`ilt_server_queue_wait_seconds_bucket{le="+Inf"} 1`,
		`ilt_server_run_seconds_bucket{le="+Inf"} 1`,
		"ilt_server_sse_flush_seconds_count",
		`ilt_core_iter_seconds_bucket{le="+Inf"}`,
		`ilt_phase_seconds_total{phase="litho.socs"}`,
		"ilt_goroutines",
		"ilt_heap_inuse_bytes",
		"ilt_gc_pause_seconds_total",
	} {
		if !strings.Contains(prom, want) {
			return fmt.Errorf("prometheus exposition missing %q:\n%s", want, prom)
		}
	}
	fmt.Printf("smoke: prometheus exposition ok (%d bytes)\n", len(prom))

	// 6. drain
	dctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := srv.Drain(dctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	var drained struct {
		Status string `json:"status"`
	}
	if err := getJSON(base+"/healthz", &drained); err != nil {
		return fmt.Errorf("healthz after drain: %w", err)
	}
	if drained.Status != "draining" {
		return fmt.Errorf("healthz after drain reports %q", drained.Status)
	}
	fmt.Println("smoke: PASS")
	return nil
}

// streamEvents follows the SSE stream until the terminal "end" frame and
// returns the event-name counts.
func streamEvents(base, id string) (map[string]int, error) {
	resp, err := http.Get(base + "/jobs/" + id + "/events")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d", resp.StatusCode)
	}
	counts := map[string]int{}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "event: ") {
			continue
		}
		name := strings.TrimPrefix(line, "event: ")
		if name == "end" {
			return counts, nil
		}
		counts[name]++
	}
	return nil, fmt.Errorf("stream ended without an end frame (after %v, err %v)", counts, sc.Err())
}

// scrapePrometheus fetches url the way a Prometheus scraper would (Accept:
// text/plain) and returns the exposition body.
func scrapePrometheus(url string) (string, error) {
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return "", err
	}
	req.Header.Set("Accept", "text/plain")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		return "", fmt.Errorf("content-type %q, want text/plain; version=0.0.4", ct)
	}
	body, err := io.ReadAll(resp.Body)
	return string(body), err
}

func getJSON(url string, v any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}
