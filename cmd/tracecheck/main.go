// Command tracecheck validates the observability artifacts a run leaves
// behind — the JSONL trace stream and the run manifest:
//
//	tracecheck -trace run.jsonl -manifest run_manifest.json
//	tracecheck -trace run.jsonl -min-coverage 0   # schema check only
//
// It re-validates the event schema (contiguous seq, non-decreasing ts,
// required per-event fields, every opened stage covered by iter events),
// asserts the determinism contract on tile events — each full-chip sweep
// must be a gapless row-major walk starting at (0,0), failing with the
// first offending event — and enforces the phase-timer coverage bound:
// when the trace reports a run.end wall time, the summed phase seconds
// must land within the configured band of it. The `make trace-smoke`
// target runs this after a small iltopt run.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/telemetry"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tracecheck:", err)
		os.Exit(1)
	}
}

func run() error {
	trace := flag.String("trace", "", "JSONL trace file to validate")
	manifest := flag.String("manifest", "", "run manifest to validate (optional)")
	minCov := flag.Float64("min-coverage", 0.8, "minimum phase-sec / wall-sec ratio (0 disables the bound)")
	maxCov := flag.Float64("max-coverage", 1.25, "maximum phase-sec / wall-sec ratio (concurrent phases can exceed 1)")
	flag.Parse()

	if *trace == "" && *manifest == "" {
		return fmt.Errorf("nothing to check: pass -trace and/or -manifest")
	}

	if *trace != "" {
		f, err := os.Open(*trace)
		if err != nil {
			return err
		}
		stats, err := telemetry.ValidateTrace(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("%s: %w", *trace, err)
		}
		fmt.Printf("%s: %d events, %d iterations over %d stages, %d tiles, %d phases\n",
			*trace, stats.Events, stats.Iters, len(stats.StagesOpened), stats.Tiles, stats.Phases)
		if stats.WallSec > 0 && *minCov > 0 {
			cov := stats.Coverage()
			fmt.Printf("phase coverage: %.3fs of %.3fs wall = %.1f%%\n",
				stats.PhaseSec, stats.WallSec, 100*cov)
			if cov < *minCov || cov > *maxCov {
				return fmt.Errorf("%s: phase coverage %.2f outside [%.2f, %.2f]",
					*trace, cov, *minCov, *maxCov)
			}
		}
	}

	if *manifest != "" {
		man, err := telemetry.ReadManifest(*manifest)
		if err != nil {
			return fmt.Errorf("%s: %w", *manifest, err)
		}
		fmt.Printf("%s: tool %s, rev %s, host %s/%s ×%d, %.3fs, %d phases\n",
			*manifest, man.Tool, shortRev(man.GitRevision), man.Host.OS, man.Host.Arch,
			man.Host.NumCPU, man.DurationSec, len(man.Phases))
	}
	return nil
}

func shortRev(rev string) string {
	if rev == "" {
		return "unknown"
	}
	if len(rev) > 12 {
		return rev[:12]
	}
	return rev
}
