// Command benchgen writes the synthetic benchmark suites to disk as layout
// files (and optional preview PNGs), and runs the workers-sweep timing
// report:
//
//	benchgen -suite m1 -out testdata/m1       # cases 1-10
//	benchgen -suite ext -out testdata/ext     # cases 11-20
//	benchgen -suite via -count 15 -out testdata/via
//	benchgen -sweep -json BENCH_WORKERS.json  # parallel-SOCS speedup curve
//	benchgen -fftsweep -json BENCH_FFT.json   # FFT-engine (band pruning) sweep
//	benchgen -compare -old BENCH_FFT.json -new BENCH_FFT.new.json
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/bench"
	"repro/internal/imgio"
	"repro/internal/telemetry"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchgen:", err)
		os.Exit(1)
	}
}

func run() error {
	n := flag.Int("n", 512, "grid size (power of two)")
	field := flag.Float64("field", 2048, "physical field size in nm")
	suite := flag.String("suite", "m1", "suite: m1 | ext | via")
	count := flag.Int("count", 15, "number of via cases (via suite only)")
	out := flag.String("out", "testdata", "output directory")
	png := flag.Bool("png", true, "also write preview PNGs")
	sweep := flag.Bool("sweep", false, "run the workers sweep instead of generating a suite")
	sweepJSON := flag.String("json", "BENCH_WORKERS.json", "sweep output file (with -sweep / -fftsweep)")
	sweepWorkers := flag.String("workers", "1,2,4,8", "comma-separated worker counts (with -sweep)")
	sweepReps := flag.Int("reps", 3, "timed repetitions per sweep point (with -sweep / -fftsweep)")
	kernels := flag.Int("kernels", 24, "number of SOCS kernels (with -sweep / -fftsweep)")
	fftsweep := flag.Bool("fftsweep", false, "run the FFT-engine sweep (band pruning vs dense reference)")
	fftSizes := flag.String("sizes", "256,512,1024", "comma-separated grid sizes (with -fftsweep)")
	compare := flag.Bool("compare", false, "diff two FFT-sweep JSON reports")
	oldPath := flag.String("old", "BENCH_FFT.json", "baseline report (with -compare)")
	newPath := flag.String("new", "BENCH_FFT.new.json", "candidate report (with -compare)")
	gate := flag.Float64("gate", 0, "with -compare: fail if any engine regressed by more than this percent (0 disables)")
	manifestPath := flag.String("manifest", "", "write a run manifest (suite config + host + git revision) to this path")
	flag.Parse()

	if *compare {
		oldS, err := bench.LoadFFTSweep(*oldPath)
		if err != nil {
			return err
		}
		newS, err := bench.LoadFFTSweep(*newPath)
		if err != nil {
			return err
		}
		fmt.Print(bench.CompareFFTSweeps(oldS, newS))
		if *gate > 0 {
			return bench.GateFFTSweeps(oldS, newS, *gate)
		}
		return nil
	}

	if *fftsweep {
		var sizes []int
		for _, tok := range strings.Split(*fftSizes, ",") {
			m, err := strconv.Atoi(strings.TrimSpace(tok))
			if err != nil {
				return fmt.Errorf("bad -sizes entry %q: %w", tok, err)
			}
			sizes = append(sizes, m)
		}
		s, err := bench.RunFFTSweep(sizes, *field, *kernels, *sweepReps)
		if err != nil {
			return err
		}
		if err := s.WriteJSON(*sweepJSON); err != nil {
			return err
		}
		txt := strings.TrimSuffix(*sweepJSON, ".json") + ".txt"
		if err := s.WriteBenchstat(txt); err != nil {
			return err
		}
		for _, p := range s.Points {
			fmt.Printf("m=%-5d reference %8.4fs  band-inverse %8.4fs (%.2fx)  band %8.4fs (%.2fx)  batch %8.4fs (%.2fx)\n",
				p.M, p.ReferenceSec, p.BandInverseSec, p.BandInverseGain, p.BandSec, p.BandGain, p.BatchedSec, p.BatchedGain)
		}
		fmt.Printf("→ %s + %s (%d kernels, P=%d, workers=%d)\n", *sweepJSON, txt, s.Kernels, s.P, s.Workers)
		return nil
	}

	if *sweep {
		var list []int
		for _, tok := range strings.Split(*sweepWorkers, ",") {
			w, err := strconv.Atoi(strings.TrimSpace(tok))
			if err != nil {
				return fmt.Errorf("bad -workers entry %q: %w", tok, err)
			}
			list = append(list, w)
		}
		s, err := bench.RunWorkersSweep(*n, *field, *kernels, *sweepReps, list)
		if err != nil {
			return err
		}
		if err := s.WriteJSON(*sweepJSON); err != nil {
			return err
		}
		for _, p := range s.Points {
			fmt.Printf("workers=%-2d  forward %8.4fs (%.2fx)  gradient %8.4fs (%.2fx)\n",
				p.Workers, p.ForwardSec, p.ForwardSpeedup, p.GradientSec, p.GradientSpeedup)
		}
		fmt.Printf("→ %s (%d² clip, %d kernels, %d CPUs)\n", *sweepJSON, s.N, s.Kernels, s.NumCPU)
		return nil
	}

	var cases []bench.Case
	var err error
	switch *suite {
	case "m1":
		cases, err = bench.M1Suite(*n, *field)
	case "ext":
		cases, err = bench.ExtendedSuite(*n, *field)
	case "via":
		cases, err = bench.ViaSuite(*n, *field, *count)
	default:
		return fmt.Errorf("unknown suite %q", *suite)
	}
	if err != nil {
		return err
	}

	for _, c := range cases {
		path := filepath.Join(*out, c.Name+".glp")
		if err := c.Layout.Save(path); err != nil {
			return err
		}
		if *png {
			if err := imgio.WritePNG(filepath.Join(*out, c.Name+".png"), c.Target); err != nil {
				return err
			}
		}
		fmt.Printf("%s: %d shapes, %.0f nm² (paper target %.0f nm²) → %s\n",
			c.Name, c.Layout.ShapeCount(), c.AreaNM2, c.PaperAreaNM2, path)
	}

	if *manifestPath != "" {
		man := telemetry.NewManifest("benchgen", map[string]any{
			"suite": *suite, "n": *n, "field_nm": *field,
			"count": *count, "out": *out, "png": *png,
		})
		man.SetMetric("cases", float64(len(cases)))
		man.Finish(nil)
		if err := man.Write(*manifestPath); err != nil {
			return err
		}
		fmt.Printf("manifest: %s\n", *manifestPath)
	}
	return nil
}
