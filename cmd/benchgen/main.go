// Command benchgen writes the synthetic benchmark suites to disk as layout
// files (and optional preview PNGs):
//
//	benchgen -suite m1 -out testdata/m1       # cases 1-10
//	benchgen -suite ext -out testdata/ext     # cases 11-20
//	benchgen -suite via -count 15 -out testdata/via
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/bench"
	"repro/internal/imgio"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchgen:", err)
		os.Exit(1)
	}
}

func run() error {
	n := flag.Int("n", 512, "grid size (power of two)")
	field := flag.Float64("field", 2048, "physical field size in nm")
	suite := flag.String("suite", "m1", "suite: m1 | ext | via")
	count := flag.Int("count", 15, "number of via cases (via suite only)")
	out := flag.String("out", "testdata", "output directory")
	png := flag.Bool("png", true, "also write preview PNGs")
	flag.Parse()

	var cases []bench.Case
	var err error
	switch *suite {
	case "m1":
		cases, err = bench.M1Suite(*n, *field)
	case "ext":
		cases, err = bench.ExtendedSuite(*n, *field)
	case "via":
		cases, err = bench.ViaSuite(*n, *field, *count)
	default:
		return fmt.Errorf("unknown suite %q", *suite)
	}
	if err != nil {
		return err
	}

	for _, c := range cases {
		path := filepath.Join(*out, c.Name+".glp")
		if err := c.Layout.Save(path); err != nil {
			return err
		}
		if *png {
			if err := imgio.WritePNG(filepath.Join(*out, c.Name+".png"), c.Target); err != nil {
				return err
			}
		}
		fmt.Printf("%s: %d shapes, %.0f nm² (paper target %.0f nm²) → %s\n",
			c.Name, c.Layout.ShapeCount(), c.AreaNM2, c.PaperAreaNM2, path)
	}
	return nil
}
