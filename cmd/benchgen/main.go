// Command benchgen writes the synthetic benchmark suites to disk as layout
// files (and optional preview PNGs), and runs the workers-sweep timing
// report:
//
//	benchgen -suite m1 -out testdata/m1       # cases 1-10
//	benchgen -suite ext -out testdata/ext     # cases 11-20
//	benchgen -suite via -count 15 -out testdata/via
//	benchgen -sweep -json BENCH_WORKERS.json  # parallel-SOCS speedup curve
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/bench"
	"repro/internal/imgio"
	"repro/internal/telemetry"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchgen:", err)
		os.Exit(1)
	}
}

func run() error {
	n := flag.Int("n", 512, "grid size (power of two)")
	field := flag.Float64("field", 2048, "physical field size in nm")
	suite := flag.String("suite", "m1", "suite: m1 | ext | via")
	count := flag.Int("count", 15, "number of via cases (via suite only)")
	out := flag.String("out", "testdata", "output directory")
	png := flag.Bool("png", true, "also write preview PNGs")
	sweep := flag.Bool("sweep", false, "run the workers sweep instead of generating a suite")
	sweepJSON := flag.String("json", "BENCH_WORKERS.json", "workers-sweep output file (with -sweep)")
	sweepWorkers := flag.String("workers", "1,2,4,8", "comma-separated worker counts (with -sweep)")
	sweepReps := flag.Int("reps", 3, "timed repetitions per sweep point (with -sweep)")
	kernels := flag.Int("kernels", 24, "number of SOCS kernels (with -sweep)")
	manifestPath := flag.String("manifest", "", "write a run manifest (suite config + host + git revision) to this path")
	flag.Parse()

	if *sweep {
		var list []int
		for _, tok := range strings.Split(*sweepWorkers, ",") {
			w, err := strconv.Atoi(strings.TrimSpace(tok))
			if err != nil {
				return fmt.Errorf("bad -workers entry %q: %w", tok, err)
			}
			list = append(list, w)
		}
		s, err := bench.RunWorkersSweep(*n, *field, *kernels, *sweepReps, list)
		if err != nil {
			return err
		}
		if err := s.WriteJSON(*sweepJSON); err != nil {
			return err
		}
		for _, p := range s.Points {
			fmt.Printf("workers=%-2d  forward %8.4fs (%.2fx)  gradient %8.4fs (%.2fx)\n",
				p.Workers, p.ForwardSec, p.ForwardSpeedup, p.GradientSec, p.GradientSpeedup)
		}
		fmt.Printf("→ %s (%d² clip, %d kernels, %d CPUs)\n", *sweepJSON, s.N, s.Kernels, s.NumCPU)
		return nil
	}

	var cases []bench.Case
	var err error
	switch *suite {
	case "m1":
		cases, err = bench.M1Suite(*n, *field)
	case "ext":
		cases, err = bench.ExtendedSuite(*n, *field)
	case "via":
		cases, err = bench.ViaSuite(*n, *field, *count)
	default:
		return fmt.Errorf("unknown suite %q", *suite)
	}
	if err != nil {
		return err
	}

	for _, c := range cases {
		path := filepath.Join(*out, c.Name+".glp")
		if err := c.Layout.Save(path); err != nil {
			return err
		}
		if *png {
			if err := imgio.WritePNG(filepath.Join(*out, c.Name+".png"), c.Target); err != nil {
				return err
			}
		}
		fmt.Printf("%s: %d shapes, %.0f nm² (paper target %.0f nm²) → %s\n",
			c.Name, c.Layout.ShapeCount(), c.AreaNM2, c.PaperAreaNM2, path)
	}

	if *manifestPath != "" {
		man := telemetry.NewManifest("benchgen", map[string]any{
			"suite": *suite, "n": *n, "field_nm": *field,
			"count": *count, "out": *out, "png": *png,
		})
		man.SetMetric("cases", float64(len(cases)))
		man.Finish(nil)
		if err := man.Write(*manifestPath); err != nil {
			return err
		}
		fmt.Printf("manifest: %s\n", *manifestPath)
	}
	return nil
}
