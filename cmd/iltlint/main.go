// Command iltlint runs the repo-specific static-analysis suite
// (internal/lint) over the module: the determinism, aliasing and
// zero-alloc invariants the perf PRs proved by hand, enforced
// mechanically.
//
//	iltlint ./...                  # run every rule, text output
//	iltlint -json ./...            # stable machine-readable output
//	iltlint -rules floatcmp ./...  # a subset of rules
//	iltlint -fix ./...             # apply suggested fixes, then re-check
//	iltlint -list                  # describe the rules
//
// Exit codes: 0 clean, 1 findings remain, 2 usage or load/type error.
// The JSON schema is {"count": N, "diagnostics": [{"file", "line",
// "col", "rule", "message", "fixable"}]}, ordered by file, line, column,
// rule, message — byte-identical across runs over the same tree.
//
// Findings are suppressed line-by-line with a mandatory-reason directive:
//
//	//lint:ignore <rule>[,<rule>] <reason>
//
// See DESIGN.md, "Static analysis".
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/lint"
)

func main() {
	os.Exit(run())
}

func run() int {
	jsonOut := flag.Bool("json", false, "emit diagnostics as JSON (stable order)")
	fix := flag.Bool("fix", false, "apply suggested fixes in place, then re-run the analysis")
	rules := flag.String("rules", "all", "comma-separated rule subset to run")
	list := flag.Bool("list", false, "list the registered rules and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: iltlint [-json] [-fix] [-rules r1,r2] [-list] [packages]\n\n"+
				"Runs the repo's static-analysis suite (default patterns: ./...).\n"+
				"Exit codes: 0 clean, 1 findings, 2 load error.\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.All {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers, err := lint.Lookup(*rules)
	if err != nil {
		fmt.Fprintln(os.Stderr, "iltlint:", err)
		return 2
	}
	opts := lint.Options{Patterns: flag.Args(), Analyzers: analyzers}

	res, err := lint.Run(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "iltlint:", err)
		return 2
	}

	if *fix && res.Fixable() > 0 {
		counts, err := lint.ApplyFixes(res.Fset, res.Diags)
		if err != nil {
			fmt.Fprintln(os.Stderr, "iltlint: applying fixes:", err)
			return 2
		}
		files := make([]string, 0, len(counts))
		total := 0
		for f, n := range counts {
			files = append(files, f)
			total += n
		}
		sort.Strings(files)
		for _, f := range files {
			fmt.Fprintf(os.Stderr, "iltlint: fixed %d finding(s) in %s\n", counts[f], f)
		}
		if total > 0 {
			// Re-analyze so the report reflects the tree as fixed.
			res, err = lint.Run(opts)
			if err != nil {
				fmt.Fprintln(os.Stderr, "iltlint:", err)
				return 2
			}
		}
	}

	if *jsonOut {
		if err := lint.WriteJSON(os.Stdout, res.Diags); err != nil {
			fmt.Fprintln(os.Stderr, "iltlint:", err)
			return 2
		}
	} else {
		lint.WriteText(os.Stdout, res.Diags)
	}
	if len(res.Diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "iltlint: %d finding(s)\n", len(res.Diags))
		}
		return 1
	}
	return 0
}
