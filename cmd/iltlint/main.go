// Command iltlint runs the repo-specific static-analysis suite
// (internal/lint) over the module: the determinism, aliasing, zero-alloc
// and multi-level-resolution invariants the perf PRs proved by hand,
// enforced mechanically — including the interprocedural rules that follow
// pool leases and grid resolutions through the call graph, and the
// compiler-fact ratchets (bce, escape, inline) that re-run the compiler's
// -m/-d=ssa/check_bce diagnostics over the hot regions declared in the
// checked-in lint.hot manifest.
//
//	iltlint ./...                    # run every rule, text output
//	iltlint -json ./...              # stable machine-readable output
//	iltlint -rules floatcmp ./...    # a subset of rules
//	iltlint -fix ./...               # apply suggested fixes, then re-check
//	iltlint -diff ./...              # preview suggested fixes as unified diffs
//	iltlint -workers 8 ./...         # parallel load/analyze (0 = GOMAXPROCS)
//	iltlint -hot lint.hot ./...      # hot-region manifest for bce/escape/inline
//	iltlint -baseline-write b.json   # record current findings as the ratchet
//	iltlint -baseline b.json ./...   # fail only on findings beyond the baseline
//	iltlint -selfbench out.json      # time the suite at workers 1 vs N
//	iltlint -list                    # describe the rules
//
// Exit codes: 0 clean, 1 findings remain, 2 usage or load/type error.
// The JSON schema is {"count": N, "diagnostics": [{"file", "line",
// "col", "rule", "message", "fixable"}]}, ordered by file, line, column,
// rule, message — byte-identical across runs over the same tree at any
// worker count.
//
// Findings are suppressed line-by-line with a mandatory-reason directive:
//
//	//lint:ignore <rule>[,<rule>] <reason>
//
// See DESIGN.md, "Static analysis".
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"repro/internal/lint"
)

func main() {
	os.Exit(run())
}

func run() int {
	jsonOut := flag.Bool("json", false, "emit diagnostics as JSON (stable order)")
	fix := flag.Bool("fix", false, "apply suggested fixes in place, then re-run the analysis")
	diff := flag.Bool("diff", false, "print suggested fixes as unified diffs without writing them")
	rules := flag.String("rules", "all", "comma-separated rule subset to run")
	workers := flag.Int("workers", 0, "load/analyze parallelism (0 = GOMAXPROCS)")
	hot := flag.String("hot", "", "hot-region manifest for bce/escape/inline (default: lint.hot in the target dir, skipped if absent)")
	baseline := flag.String("baseline", "", "filter findings through a recorded baseline file")
	baselineWrite := flag.String("baseline-write", "", "record current findings to a baseline file and exit 0")
	selfbench := flag.String("selfbench", "", "time the suite at workers 1 vs N, write JSON to this file, and exit")
	list := flag.Bool("list", false, "list the registered rules and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: iltlint [-json] [-fix] [-diff] [-rules r1,r2] [-workers n]\n"+
				"               [-hot manifest] [-baseline file] [-baseline-write file]\n"+
				"               [-selfbench file] [-list] [packages]\n\n"+
				"Runs the repo's static-analysis suite (default patterns: ./...).\n"+
				"Exit codes: 0 clean, 1 findings, 2 load error.\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.All {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers, err := lint.Lookup(*rules)
	if err != nil {
		fmt.Fprintln(os.Stderr, "iltlint:", err)
		return 2
	}
	opts := lint.Options{Patterns: flag.Args(), Analyzers: analyzers, Workers: *workers, HotManifest: *hot}

	if *selfbench != "" {
		return runSelfbench(opts, *selfbench)
	}

	res, err := lint.Run(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "iltlint:", err)
		return 2
	}

	if *diff {
		out, err := lint.FormatFixDiffs(res.Fset, res.Diags)
		if err != nil {
			fmt.Fprintln(os.Stderr, "iltlint:", err)
			return 2
		}
		fmt.Print(out)
		if len(res.Diags) > 0 {
			return 1
		}
		return 0
	}

	if *fix && res.Fixable() > 0 {
		counts, err := lint.ApplyFixes(res.Fset, res.Diags)
		if err != nil {
			fmt.Fprintln(os.Stderr, "iltlint: applying fixes:", err)
			return 2
		}
		files := make([]string, 0, len(counts))
		total := 0
		for f, n := range counts {
			files = append(files, f)
			total += n
		}
		sort.Strings(files)
		for _, f := range files {
			fmt.Fprintf(os.Stderr, "iltlint: fixed %d finding(s) in %s\n", counts[f], f)
		}
		if total > 0 {
			// Re-analyze so the report reflects the tree as fixed.
			res, err = lint.Run(opts)
			if err != nil {
				fmt.Fprintln(os.Stderr, "iltlint:", err)
				return 2
			}
		}
	}

	if *baselineWrite != "" {
		if err := lint.WriteBaselineFile(*baselineWrite, res.Diags); err != nil {
			fmt.Fprintln(os.Stderr, "iltlint:", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "iltlint: recorded %d finding(s) to %s\n", len(res.Diags), *baselineWrite)
		return 0
	}
	if *baseline != "" {
		b, err := lint.ReadBaselineFile(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "iltlint:", err)
			return 2
		}
		fresh, absorbed := b.Filter(res.Diags)
		if absorbed > 0 {
			fmt.Fprintf(os.Stderr, "iltlint: baseline %s absorbed %d finding(s)\n", *baseline, absorbed)
		}
		res.Diags = fresh
	}

	if *jsonOut {
		if err := lint.WriteJSON(os.Stdout, res.Diags); err != nil {
			fmt.Fprintln(os.Stderr, "iltlint:", err)
			return 2
		}
	} else {
		lint.WriteText(os.Stdout, res.Diags)
	}
	if len(res.Diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "iltlint: %d finding(s)%s\n", len(res.Diags), ruleCounts(res.Diags))
		}
		return 1
	}
	return 0
}

// ruleCounts renders " (rule1 x2, rule2 x1)" in registry order for the
// exit-1 summary line.
func ruleCounts(diags []lint.Diagnostic) string {
	counts := map[string]int{}
	for _, d := range diags {
		counts[d.Rule]++
	}
	names := append([]string(nil), lint.RuleNames()...)
	names = append(names, "hotmanifest", "ignore")
	out := ""
	for _, name := range names {
		if counts[name] == 0 {
			continue
		}
		if out != "" {
			out += ", "
		}
		out += fmt.Sprintf("%s x%d", name, counts[name])
	}
	if out == "" {
		return ""
	}
	return " (" + out + ")"
}

// selfbenchResult is the BENCH_LINT.json schema: wall time for the full
// suite at workers=1 and workers=GOMAXPROCS, the medians of three runs
// each, plus enough context to compare across commits.
type selfbenchResult struct {
	GOMAXPROCS  int     `json:"gomaxprocs"`
	Runs        int     `json:"runs"`
	Diagnostics int     `json:"diagnostics"`
	Workers1Ms  float64 `json:"workers_1_ms"`
	WorkersNMs  float64 `json:"workers_n_ms"`
	Speedup     float64 `json:"speedup"`
}

func runSelfbench(opts lint.Options, outPath string) int {
	const runs = 3
	time3 := func(workers int) (float64, int, error) {
		o := opts
		o.Workers = workers
		var times []float64
		diags := 0
		for i := 0; i < runs; i++ {
			start := time.Now()
			res, err := lint.Run(o)
			if err != nil {
				return 0, 0, err
			}
			times = append(times, float64(time.Since(start).Microseconds())/1000.0)
			diags = len(res.Diags)
		}
		sort.Float64s(times)
		return times[len(times)/2], diags, nil
	}
	w1, diags, err := time3(1)
	if err != nil {
		fmt.Fprintln(os.Stderr, "iltlint: selfbench:", err)
		return 2
	}
	wn, _, err := time3(0)
	if err != nil {
		fmt.Fprintln(os.Stderr, "iltlint: selfbench:", err)
		return 2
	}
	result := selfbenchResult{
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Runs:        runs,
		Diagnostics: diags,
		Workers1Ms:  w1,
		WorkersNMs:  wn,
		Speedup:     w1 / wn,
	}
	f, err := os.Create(outPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "iltlint: selfbench:", err)
		return 2
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	werr := enc.Encode(result)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		fmt.Fprintln(os.Stderr, "iltlint: selfbench:", werr)
		return 2
	}
	fmt.Fprintf(os.Stderr, "iltlint: selfbench workers=1 %.1fms, workers=%d %.1fms (speedup %.2fx) -> %s\n",
		w1, result.GOMAXPROCS, wn, result.Speedup, outPath)
	return 0
}
