GO ?= go

.PHONY: all build test race trace-smoke bench bench-workers vet

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Tier-1 concurrency lane: the full suite under the race detector. The
# parallel SOCS loops, the plan cache and the fullchip tile pool all have
# dedicated stress/equivalence tests that only bite with -race on.
race:
	$(GO) test -race ./...

# Observability lane (runs alongside race): a small end-to-end iltopt run
# with tracing on, then tracecheck re-validates the JSONL schema, the
# phase-timer wall-clock coverage and the run manifest.
trace-smoke:
	mkdir -p artifacts
	$(GO) run ./cmd/iltopt -case 1 -n 256 -field 1024 -kernels 12 -iterdiv 10 \
		-recipe exact -trace artifacts/trace_smoke.jsonl -progress \
		-manifest artifacts/trace_smoke_manifest.json
	$(GO) run ./cmd/tracecheck -trace artifacts/trace_smoke.jsonl \
		-manifest artifacts/trace_smoke_manifest.json

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench . -benchmem ./...

# Workers sweep: times forward/gradient on a 512² clip at worker counts
# {1,2,4,8} and records the speedup curve (plus host CPU metadata) in
# BENCH_WORKERS.json.
bench-workers:
	$(GO) run ./cmd/benchgen -sweep -n 512 -field 2048 -kernels 24 -reps 3 \
		-workers 1,2,4,8 -json BENCH_WORKERS.json
