GO ?= go
BIN_DIR := bin

.PHONY: all build test race trace-smoke trace-stat server-smoke server-race bench bench-workers bench-fft bench-fft-smoke bench-compare vet lint lint-perf lint-perf-baseline lint-conc bench-lint check

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Tier-1 concurrency lane: the full suite under the race detector. The
# parallel SOCS loops, the plan cache, the fullchip tile pool and the
# FFT-engine equivalence tests (band-pruned vs dense reference, tolerance 0)
# all run here — new equivalence tests hook in by living in the suite.
race:
	$(GO) test -race ./...

# Observability lane (runs alongside race): a small end-to-end iltopt run
# with tracing on, then tracecheck re-validates the JSONL schema, the
# phase-timer wall-clock coverage and the run manifest.
# -workers 1 keeps the run on the serial SOCS lane, where the alternating
# litho.socs / litho.fft_inverse spans are recorded — so the validated trace
# exercises the full phase vocabulary on any host.
trace-smoke:
	mkdir -p artifacts
	$(GO) run ./cmd/iltopt -case 1 -n 256 -field 1024 -kernels 12 -iterdiv 10 \
		-workers 1 -recipe exact -trace artifacts/trace_smoke.jsonl -progress \
		-manifest artifacts/trace_smoke_manifest.json
	$(GO) run ./cmd/tracecheck -trace artifacts/trace_smoke.jsonl \
		-manifest artifacts/trace_smoke_manifest.json

# Trace-analytics lane: a short deterministic optimization writes a trace,
# tracecheck validates its schema, tracestat renders the analytics report
# into artifacts/, and the compare gate proves the regression detector
# works — the committed A/B fixture pair carries an injected +20% per-call
# slowdown in litho.socs, so `tracestat -compare` MUST exit 2 (any other
# status, including 0, fails the lane).
# (tracestat is run as a built binary, not via `go run`: go run collapses
# the program's exit status to 1, which would defeat the exit-2 assertion.)
TRACESTAT := $(BIN_DIR)/tracestat

$(TRACESTAT): FORCE
	@mkdir -p $(BIN_DIR)
	$(GO) build -o $(TRACESTAT) ./cmd/tracestat

trace-stat: $(TRACESTAT)
	mkdir -p artifacts
	$(GO) run ./cmd/iltopt -case 1 -n 128 -field 512 -kernels 8 -iterdiv 10 \
		-workers 1 -recipe fast -trace artifacts/trace_stat.jsonl
	$(GO) run ./cmd/tracecheck -trace artifacts/trace_stat.jsonl -min-coverage 0
	$(TRACESTAT) artifacts/trace_stat.jsonl | tee artifacts/trace_stat_report.txt
	$(TRACESTAT) -compare \
		internal/tracestat/testdata/compare_old.jsonl \
		internal/tracestat/testdata/compare_new.jsonl -threshold 10% \
		> artifacts/trace_stat_compare.txt 2>&1; st=$$?; \
		cat artifacts/trace_stat_compare.txt; test $$st -eq 2

# Serving lane, part 1: the iltserver self-contained smoke flow — boot the
# daemon on an ephemeral port, submit one small job over real HTTP, stream
# its SSE progress to completion, check the result, /healthz and /metrics,
# then drain. No external tools (curl, jq) needed.
server-smoke:
	$(GO) run ./cmd/iltserver -smoke

# Serving lane, part 2: the server package under the race detector — the
# soak test (concurrent jobs, bit-identical results, bounded heap, no
# goroutine leaks), cancellation/drain, SSE golden stream and the fuzz seed
# corpus all run here.
server-race:
	$(GO) test -race -count=1 ./internal/server

vet:
	$(GO) vet ./...

# Static-analysis lane: the seventeen repo-specific analyzers (floatcmp,
# maporder, scratchalias, hotalloc, errcheck, gridres, leasepath,
# atomicfield, the perf-invariant set: bce, escape, inline, ctxflow,
# timerleak, plus the concurrency-protocol set: lockorder, chanprotocol,
# wgmisuse, gorolife) over every package. The compiler-fact rules read the
# checked-in lint.hot manifest and ratchet through lint-perf.baseline —
# the run fails only on findings beyond the recorded debt. The binary is
# built once into bin/ (the go build cache makes rebuilds near-free)
# instead of paying `go run`'s link-and-copy on every invocation; on
# findings it exits 1 with per-rule counts. See README ("iltlint") and
# DESIGN.md ("Static analysis", "Performance invariants"). The ./...
# wildcard skips testdata, so the deliberately violating lint fixtures are
# not linted.
ILTLINT := $(BIN_DIR)/iltlint

$(ILTLINT): FORCE
	@mkdir -p $(BIN_DIR)
	$(GO) build -o $(ILTLINT) ./cmd/iltlint

FORCE:

lint: $(ILTLINT)
	$(ILTLINT) -baseline lint-perf.baseline ./...

# Perf-invariant lane on its own: just the five serving/compiler-fact
# rules against the ratchet, the command CI's lint-perf job runs.
lint-perf: $(ILTLINT)
	$(ILTLINT) -rules bce,escape,inline,ctxflow,timerleak \
		-baseline lint-perf.baseline ./...

# Re-record the ratchet after deliberately accepting new hot-path debt
# (reviewed like any other baseline change).
lint-perf-baseline: $(ILTLINT)
	$(ILTLINT) -rules bce,escape,inline,ctxflow,timerleak \
		-baseline-write lint-perf.baseline ./...

# Concurrency-protocol lane on its own: the four deadlock/lifetime rules
# (lockorder, chanprotocol, wgmisuse, gorolife) over every package. The
# tree ships clean, so there is deliberately no baseline file — any
# finding (a seeded lock-order inversion prints its full cycle with both
# witness positions) fails the lane outright. See DESIGN.md,
# "Concurrency invariants".
lint-conc: $(ILTLINT)
	$(ILTLINT) -rules lockorder,chanprotocol,wgmisuse,gorolife ./...

# Lint-perf trajectory: median wall time of the full seventeen-rule suite
# over ./... at workers=1 vs workers=GOMAXPROCS, recorded in BENCH_LINT.json.
bench-lint: $(ILTLINT)
	$(ILTLINT) -selfbench BENCH_LINT.json ./...

# The pre-commit umbrella: everything a change must pass before review.
check: build vet lint test

bench:
	$(GO) test -bench . -benchmem ./...

# Workers sweep: times forward/gradient on a 512² clip at worker counts
# {1,2,4,8} and records the speedup curve (plus host CPU metadata) in
# BENCH_WORKERS.json.
bench-workers:
	$(GO) run ./cmd/benchgen -sweep -n 512 -field 2048 -kernels 24 -reps 3 \
		-workers 1,2,4,8 -json BENCH_WORKERS.json

# FFT-engine sweep: times the exact forward simulation per FFT engine
# (dense reference / pruned inverses / pruned + packed forward / fused
# batch) at workers=1 and records the speedups in BENCH_FFT.json plus a
# benchstat-format sidecar BENCH_FFT.txt.
bench-fft:
	$(GO) run ./cmd/benchgen -fftsweep -sizes 256,512,1024,2048 -field 2048 \
		-kernels 24 -reps 3 -json BENCH_FFT.json

# CI smoke lane: a seconds-long sweep at tiny sizes that exercises every
# engine (including the fused batch path) and gates against the committed
# BENCH_FFT.smoke.json baseline via the bench-compare machinery. The 75%
# threshold is deliberately loose — shared CI hosts are noisy — it exists
# to catch a pruning/fusion path silently falling back to dense work (a
# 2-10× slowdown), not single-digit drift.
bench-fft-smoke:
	$(GO) run ./cmd/benchgen -fftsweep -sizes 64,128 -field 2048 \
		-kernels 8 -reps 2 -json BENCH_FFT.smoke.new.json
	$(MAKE) bench-compare OLD=BENCH_FFT.smoke.json NEW=BENCH_FFT.smoke.new.json GATE=75

# Diff two bench-fft runs: OLD is the checked-in trajectory artifact, NEW a
# fresh run (make bench-fft with -json BENCH_FFT.new.json, or copy). Uses
# benchstat on the .txt sidecars when it is installed (no module
# dependency is added), and always prints the built-in JSON diff. Set
# GATE=<pct> to fail when any engine regressed by more than that percent.
OLD ?= BENCH_FFT.json
NEW ?= BENCH_FFT.new.json
GATE ?= 0
bench-compare:
	@if command -v benchstat >/dev/null 2>&1; then \
		benchstat $(OLD:.json=.txt) $(NEW:.json=.txt); \
	else \
		echo "benchstat not installed; using built-in diff"; \
	fi
	$(GO) run ./cmd/benchgen -compare -old $(OLD) -new $(NEW) -gate $(GATE)
