GO ?= go

.PHONY: all build test race bench bench-workers vet

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Tier-1 concurrency lane: the full suite under the race detector. The
# parallel SOCS loops, the plan cache and the fullchip tile pool all have
# dedicated stress/equivalence tests that only bite with -race on.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench . -benchmem ./...

# Workers sweep: times forward/gradient on a 512² clip at worker counts
# {1,2,4,8} and records the speedup curve (plus host CPU metadata) in
# BENCH_WORKERS.json.
bench-workers:
	$(GO) run ./cmd/benchgen -sweep -n 512 -field 2048 -kernels 24 -reps 3 \
		-workers 1,2,4,8 -json BENCH_WORKERS.json
