// Package repro's benchmark suite regenerates every table and figure of the
// paper at BenchScale (256-px grid, 1024 nm field, quarter budgets) and
// prints each regenerated table once, so `go test -bench . -benchmem`
// doubles as the reproduction harness:
//
//	BenchmarkTableI..IV     — Tables I–IV
//	BenchmarkFig1..Fig8     — the figure experiments
//	BenchmarkForwardEq3/7/8 — the §III-B forward-simulation comparison
//	BenchmarkIterLow/High/Full — per-iteration ILT cost (the 18× claim)
//
// Absolute times are CPU-bound; the paper's *relative* orderings are what
// these benchmarks demonstrate.
package repro

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/grid"
	"repro/internal/litho"
	"repro/internal/report"
)

var printOnce sync.Map

// runExperiment executes one named experiment per benchmark iteration and
// prints its table the first time.
func runExperiment(b *testing.B, name string) {
	b.Helper()
	cfg := experiments.BenchScale()
	var tb *report.Table
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t, err := experiments.Run(cfg, name)
		if err != nil {
			b.Fatal(err)
		}
		tb = t
	}
	if _, dup := printOnce.LoadOrStore(name, true); !dup && tb != nil {
		fmt.Printf("\n%s\n", tb.String())
	}
}

// Tables.

func BenchmarkTableI(b *testing.B)   { runExperiment(b, "table1") }
func BenchmarkTableII(b *testing.B)  { runExperiment(b, "table2") }
func BenchmarkTableIII(b *testing.B) { runExperiment(b, "table3") }
func BenchmarkTableIV(b *testing.B)  { runExperiment(b, "table4") }

// Figures.

func BenchmarkFig1(b *testing.B) { runExperiment(b, "fig1") }
func BenchmarkFig4(b *testing.B) { runExperiment(b, "fig4") }
func BenchmarkFig5(b *testing.B) { runExperiment(b, "fig5") }
func BenchmarkFig6(b *testing.B) { runExperiment(b, "fig6") }
func BenchmarkFig7(b *testing.B) { runExperiment(b, "fig7") }
func BenchmarkFig8(b *testing.B) { runExperiment(b, "fig8") }

// In-text experiments (as tables).

func BenchmarkForwardTimingTable(b *testing.B) { runExperiment(b, "timing") }
func BenchmarkIterationTimeTable(b *testing.B) { runExperiment(b, "itertime") }

// benchState caches the process and case shared by the microbenchmarks.
type benchState struct {
	cfg    experiments.Config
	proc   *litho.Process
	target *grid.Mat
	pooled *grid.Mat
}

var (
	stateOnce sync.Once
	state     *benchState
	stateErr  error
)

func getState(b *testing.B) *benchState {
	b.Helper()
	stateOnce.Do(func() {
		cfg := experiments.BenchScale()
		p, err := cfg.Process()
		if err != nil {
			stateErr = err
			return
		}
		cs, err := bench.PaperCase(cfg.N, cfg.FieldNM, 1)
		if err != nil {
			stateErr = err
			return
		}
		state = &benchState{cfg: cfg, proc: p, target: cs.Target, pooled: grid.AvgPoolDown(cs.Target, 4)}
	})
	if stateErr != nil {
		b.Fatal(stateErr)
	}
	return state
}

// Forward-model microbenchmarks: one simulation per iteration (§III-B —
// the paper's 200-simulation timing divides out directly).

func BenchmarkForwardEq3(b *testing.B) {
	s := getState(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := s.proc.Sim.Forward(s.target, s.proc.Sim.Model.Nominal, 1, false); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkForwardEq7(b *testing.B) {
	s := getState(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := s.proc.Sim.ForwardEq7(s.target, 4, s.proc.Sim.Model.Nominal, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkForwardEq8(b *testing.B) {
	s := getState(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := s.proc.Sim.Forward(s.pooled, s.proc.Sim.Model.Nominal, 1, false); err != nil {
			b.Fatal(err)
		}
	}
}

// Per-iteration ILT cost: one optimizer iteration per benchmark iteration.

func benchIteration(b *testing.B, stage core.Stage) {
	b.Helper()
	s := getState(b)
	opts := core.DefaultOptions(s.proc)
	o, err := core.New(opts, s.target)
	if err != nil {
		b.Fatal(err)
	}
	stage.Iters = 1
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := o.Run(context.Background(), []core.Stage{stage}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIterLowRes(b *testing.B)  { benchIteration(b, core.Stage{Scale: 4}) }
func BenchmarkIterHighRes(b *testing.B) { benchIteration(b, core.Stage{Scale: 4, HighRes: true}) }
func BenchmarkIterFullRes(b *testing.B) { benchIteration(b, core.Stage{Scale: 1}) }

// End-to-end recipes on one case (the TAT columns of Tables II/III).

func benchRecipe(b *testing.B, stages []core.Stage) {
	b.Helper()
	s := getState(b)
	scaled := core.ScaleStages(stages, s.cfg.IterDiv)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		opts := core.DefaultOptions(s.proc)
		o, err := core.New(opts, s.target)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := o.Run(context.Background(), scaled); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRecipeFast(b *testing.B)  { benchRecipe(b, core.FastM1()) }
func BenchmarkRecipeExact(b *testing.B) { benchRecipe(b, core.ExactM1()) }

// Extension experiments (process window, schedule ablation).

func BenchmarkWindowTable(b *testing.B)      { runExperiment(b, "window") }
func BenchmarkConvergenceTable(b *testing.B) { runExperiment(b, "convergence") }

func BenchmarkViaSweepTable(b *testing.B) { runExperiment(b, "viasweep") }

func BenchmarkVerifyClaims(b *testing.B) { runExperiment(b, "verify") }

func BenchmarkSourcesTable(b *testing.B) { runExperiment(b, "sources") }

func BenchmarkBossungTable(b *testing.B) { runExperiment(b, "bossung") }
func BenchmarkKernelsTable(b *testing.B) { runExperiment(b, "kernels") }
