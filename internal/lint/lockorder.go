package lint

// LockOrder enforces the lock-discipline half of the concurrency-protocol
// layer. All the real work — per-function lock-acquisition summaries
// folded bottom-up over the Tarjan SCCs, the global lock-order graph, the
// inversion-cycle search and the held-across-blocking scan — happens once,
// serially, in concsummary.go while the Program is built: the lock graph
// is global (an inversion can span packages), so computing it inside the
// parallel per-package passes would either duplicate the work per worker
// or race on shared state. Each pass therefore only emits the findings
// precomputed for its package, which keeps `-json` output byte-identical
// at any `-workers` setting.
//
// Two findings:
//
//   - lock-order inversion: two (or more) locks are acquired in opposing
//     orders somewhere in the module — a potential deadlock the race
//     detector only sees when a test happens to interleave the two paths.
//     The message prints the full cycle with one witness position per
//     edge: "A -> B at file:line, B -> A at file:line". A self-edge
//     (acquiring a lock already held, including a recursive RLock, which
//     deadlocks against a queued writer) is reported separately.
//   - lock held across a blocking operation on a server-reachable path:
//     a channel send/receive, a default-less select, sync.Cond.Wait /
//     WaitGroup.Wait, or recognizable network/file I/O executed with a
//     mutex held. A blocked holder stalls every other acquirer — on the
//     serving arc that turns one slow peer into a daemon-wide stall.
//
// Locks are identified by stable source paths (field, package-level var,
// embedded type, or function-local), deliberately conflating instances of
// the same field: a per-object lock in a pool still documents one
// acquisition order worth auditing. Deliberate exceptions are recorded
// with //lint:ignore lockorder <reason> at the witness site.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "flags lock-order inversion cycles across the module and locks held across blocking operations (channel ops, cond/WaitGroup waits, network/file I/O) on server-reachable paths",
	Run:  runLockOrder,
}

func runLockOrder(pass *Pass) {
	prog := pass.Prog
	if prog == nil || prog.ConcFindings == nil {
		return
	}
	pkg := prog.packageOf(pass.Pkg)
	if pkg == nil {
		return
	}
	for _, f := range prog.ConcFindings[pkg.Path] {
		if f.rule != "lockorder" {
			continue
		}
		pass.Report(f.pos, nil, "%s", f.msg)
	}
}
