package lint

import (
	"bufio"
	"fmt"
	"go/ast"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// This file implements the lint.hot manifest: the checked-in declaration of
// which functions are performance-critical enough that the compiler-fact
// analyzers (bce, escape, inline — gcrules.go) guard them. The manifest is
// the contract boundary: everything inside a listed function ratchets,
// everything outside is free to allocate and bounds-check.
//
// Format, one entry per line:
//
//	# comment
//	<import-path> <function>     one function of the package
//	<import-path> *              every function of the package
//
// where <function> is the declaration's name as the compiler prints it:
// "Name" for package-level functions, "(*Recv).Name" / "(Recv).Name" for
// methods. Blank lines and #-comments are ignored. See DESIGN.md,
// "Performance invariants".

// A HotManifest is the parsed lint.hot file: per import path, the set of
// declared-hot function names ("*" marks the whole package). The flat
// entries list keeps source lines so rot — an entry no longer naming a
// live function — can be reported at the manifest line that decayed.
type HotManifest struct {
	name    string
	pkgs    map[string]map[string]bool
	entries []hotEntry
}

// A hotEntry is one non-comment manifest line.
type hotEntry struct {
	path, fn string
	line     int
}

// ParseHotManifest reads manifest lines from src; name is used in errors.
func ParseHotManifest(src []byte, name string) (*HotManifest, error) {
	m := &HotManifest{name: name, pkgs: map[string]map[string]bool{}}
	sc := bufio.NewScanner(strings.NewReader(string(src)))
	for ln := 1; sc.Scan(); ln++ {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("%s:%d: want \"<import-path> <function>\", got %q", name, ln, line)
		}
		path, fn := fields[0], fields[1]
		if m.pkgs[path] == nil {
			m.pkgs[path] = map[string]bool{}
		}
		m.pkgs[path][fn] = true
		m.entries = append(m.entries, hotEntry{path: path, fn: fn, line: ln})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s: %v", name, err)
	}
	return m, nil
}

// rotDiagnostics checks every manifest entry against the loaded packages
// and reports the ones that no longer resolve to a live function. A hot
// region that is renamed or deleted silently drops out of the bce/escape/
// inline ratchet; the "hotmanifest" diagnostic makes that decay loud at
// the manifest line that went stale. Entries whose import path is not
// among the loaded packages are skipped — a narrowed pattern is not rot —
// as are "*" entries on loaded packages (the whole package is the region).
func rotDiagnostics(m *HotManifest, pkgs []*Package) []Diagnostic {
	loaded := map[string]*Package{}
	for _, p := range pkgs {
		loaded[p.Path] = p
	}
	file := m.name
	if abs, err := filepath.Abs(file); err == nil {
		file = abs
	}
	var out []Diagnostic
	for _, e := range m.entries {
		pkg, ok := loaded[e.path]
		if !ok || e.fn == "*" {
			continue
		}
		found := false
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				if fd, isFn := decl.(*ast.FuncDecl); isFn && declName(fd) == e.fn {
					found = true
				}
			}
		}
		if !found {
			out = append(out, Diagnostic{
				Pos:  token.Position{Filename: file, Line: e.line, Column: 1},
				Rule: "hotmanifest",
				Message: fmt.Sprintf(
					"hot manifest entry %q names no function in %s: the hot region was renamed or deleted and has silently left the bce/escape/inline ratchet — update or remove the entry (hotmanifest)",
					e.fn, e.path),
			})
		}
	}
	return out
}

// LoadHotManifestFile parses the manifest at path. A missing file returns
// (nil, nil): the gc analyzers simply have nothing to guard.
func LoadHotManifestFile(path string) (*HotManifest, error) {
	src, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	return ParseHotManifest(src, path)
}

// Packages lists the manifest's import paths in sorted order.
func (m *HotManifest) Packages() []string {
	out := make([]string, 0, len(m.pkgs))
	for p := range m.pkgs {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Covers reports whether the manifest declares the named function of pkg
// hot. fn uses the compiler's spelling ("Name", "(*Recv).Name").
func (m *HotManifest) Covers(pkgPath, fn string) bool {
	fns, ok := m.pkgs[pkgPath]
	if !ok {
		return false
	}
	return fns["*"] || fns[fn]
}

// declName renders fd's name in the manifest/compiler spelling.
func declName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	switch rt := unparenType(fd.Recv.List[0].Type).(type) {
	case *ast.StarExpr:
		if id, ok := unparenType(rt.X).(*ast.Ident); ok {
			return "(*" + id.Name + ")." + fd.Name.Name
		}
	case *ast.Ident:
		return "(" + rt.Name + ")." + fd.Name.Name
	}
	return fd.Name.Name
}

func unparenType(e ast.Expr) ast.Expr {
	for {
		pe, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = pe.X
	}
}

// A hotRegion is one manifest-covered function resolved to source lines.
type hotRegion struct {
	fd        *ast.FuncDecl
	name      string // compiler spelling, for messages
	file      string // absolute path, matching compiler output
	from, to  int    // inclusive line range of the declaration
	bodyStart int    // line of the opening brace: facts before it are signature-level
}

// hotRegionsOf resolves the manifest against one package's files. Regions
// come back sorted by (file, from) for deterministic iteration.
func hotRegionsOf(pass *Pass, m *HotManifest) []hotRegion {
	var out []hotRegion
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			name := declName(fd)
			if !m.Covers(pass.Pkg.Path(), name) {
				continue
			}
			from := pass.Fset.Position(fd.Pos())
			to := pass.Fset.Position(fd.End())
			body := pass.Fset.Position(fd.Body.Pos())
			out = append(out, hotRegion{
				fd: fd, name: name, file: from.Filename,
				from: from.Line, to: to.Line, bodyStart: body.Line,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].file != out[j].file {
			return out[i].file < out[j].file
		}
		return out[i].from < out[j].from
	})
	return out
}

// regionAt finds the innermost region containing file:line, or nil.
// Function declarations do not nest in Go, so first hit wins.
func regionAt(regions []hotRegion, file string, line int) *hotRegion {
	for i := range regions {
		r := &regions[i]
		if r.file == file && r.from <= line && line <= r.to {
			return r
		}
	}
	return nil
}
