package lint

import (
	"go/ast"
	"go/types"
)

// A Summary is one function's interprocedural facts, computed bottom-up
// over the call graph (callees first, SCCs iterated to a fixpoint) so an
// analyzer can follow an invariant through a call without re-walking the
// callee. Parameter indices refer to declared parameters in order;
// receivers are not summarized (no repo invariant travels through one).
type Summary struct {
	NumParams int

	// Lease facts (leasepath, scratchalias hand-off discipline):
	// Releases[i] — the function Puts parameter i back to its pool on
	// every path (a "release helper"); Returns[i] — some return statement
	// hands parameter i (or an alias) back to the caller; Escapes[i] —
	// some path stores parameter i beyond the call (field, global,
	// channel, container, or an escaping callee position).
	Releases []bool
	Returns  []bool
	Escapes  []bool

	// CallsParam[i] — the function invokes its i-th parameter;
	// CallsParamGo[i] — it does so on a spawned goroutine (the
	// grid.ParallelFor body shape). Feeds goroutine-reachability.
	CallsParam   []bool
	CallsParamGo []bool

	// Grid-resolution facts (gridres): SameRes constraints the body
	// imposes between grid-typed parameters, and the resolution level of
	// each result relative to a parameter, when derivable.
	SameRes []ResConstraint
	Results []ResultRes
}

// A ResConstraint requires level(param J) == level(param I) + Delta,
// where level counts coarsening steps (AvgPoolDown +1, Upsample −1).
type ResConstraint struct {
	I, J  int
	Delta int
}

// A ResultRes ties one result's resolution level to a parameter's:
// level(result) == level(param Param) + Delta.
type ResultRes struct {
	Result int
	Param  int
	Delta  int
}

// paramIndex returns the declared-parameter index of obj in fd (flattened
// across grouped fields), or -1.
func paramIndex(info *types.Info, fd *ast.FuncDecl, obj types.Object) int {
	if fd.Type.Params == nil {
		return -1
	}
	i := 0
	for _, field := range fd.Type.Params.List {
		if len(field.Names) == 0 {
			i++
			continue
		}
		for _, name := range field.Names {
			if info.Defs[name] == obj {
				return i
			}
			i++
		}
	}
	return -1
}

func numParams(fd *ast.FuncDecl) int {
	if fd.Type.Params == nil {
		return 0
	}
	n := 0
	for _, field := range fd.Type.Params.List {
		if len(field.Names) == 0 {
			n++
		} else {
			n += len(field.Names)
		}
	}
	return n
}

func numResults(fd *ast.FuncDecl) int {
	if fd.Type.Results == nil {
		return 0
	}
	n := 0
	for _, field := range fd.Type.Results.List {
		if len(field.Names) == 0 {
			n++
		} else {
			n += len(field.Names)
		}
	}
	return n
}

// computeSummaries runs the bottom-up fixpoint: strongly connected
// components of the static call graph are processed callees-first, and
// each component is re-summarized until its facts stop changing (facts are
// monotone — booleans only flip one way, constraints only accumulate — so
// termination is structural, with a belt-and-braces iteration cap).
func computeSummaries(prog *Program) {
	for _, key := range prog.sortedFuncKeys() {
		fi := prog.Funcs[key]
		fi.Summary = newSummary(numParams(fi.Decl))
	}
	for _, scc := range prog.sccOrder() {
		for iter := 0; iter < len(scc)+1; iter++ {
			changed := false
			for _, key := range scc {
				fi := prog.Funcs[key]
				next := summarize(prog, fi)
				if !fi.Summary.equal(next) {
					fi.Summary = next
					changed = true
				}
			}
			if !changed {
				break
			}
		}
	}
}

func newSummary(n int) *Summary {
	return &Summary{
		NumParams:    n,
		Releases:     make([]bool, n),
		Returns:      make([]bool, n),
		Escapes:      make([]bool, n),
		CallsParam:   make([]bool, n),
		CallsParamGo: make([]bool, n),
	}
}

func (s *Summary) equal(o *Summary) bool {
	if s == nil || o == nil {
		return s == o
	}
	eqBools := func(a, b []bool) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if !eqBools(s.Releases, o.Releases) || !eqBools(s.Returns, o.Returns) ||
		!eqBools(s.Escapes, o.Escapes) || !eqBools(s.CallsParam, o.CallsParam) ||
		!eqBools(s.CallsParamGo, o.CallsParamGo) {
		return false
	}
	if len(s.SameRes) != len(o.SameRes) || len(s.Results) != len(o.Results) {
		return false
	}
	for i := range s.SameRes {
		if s.SameRes[i] != o.SameRes[i] {
			return false
		}
	}
	for i := range s.Results {
		if s.Results[i] != o.Results[i] {
			return false
		}
	}
	return true
}

// summarize computes one function's summary against the current summaries
// of its callees.
func summarize(prog *Program, fi *FuncInfo) *Summary {
	n := numParams(fi.Decl)
	sum := newSummary(n)

	// Lease facts: seed every parameter as a tracked lease and observe
	// what each path does with it. leakObserved[i] is set when some exit
	// leaves parameter i neither released nor handed off.
	lw := newLeaseWalker(prog, fi.Pkg, fi.Decl, nil)
	for i := 0; i < n; i++ {
		i := i
		lw.seedParam(fi.Decl, i,
			func() { sum.Returns[i] = true },
			func() { sum.Escapes[i] = true })
	}
	leaked := lw.walk()
	for i := 0; i < n; i++ {
		sum.Releases[i] = !leaked[i] && !sum.Returns[i] && !sum.Escapes[i]
	}

	// Parameter invocation (direct and through callees like ParallelFor).
	collectParamCalls(prog, fi, sum)

	// Grid-resolution constraints and result deltas.
	gridResSummary(prog, fi, sum)

	return sum
}

// collectParamCalls records which function-typed parameters the body
// invokes, and whether the invocation happens on a spawned goroutine —
// directly (`go body(i)` inside the function, or a call inside a go'd
// closure) or transitively (the parameter is passed into a callee position
// the callee invokes on a goroutine).
func collectParamCalls(prog *Program, fi *FuncInfo, sum *Summary) {
	info := fi.Pkg.Info
	var walk func(n ast.Node, spawned bool)
	handleCall := func(call *ast.CallExpr, spawned bool) {
		// Direct invocation of a parameter.
		if id, ok := unparen(call.Fun).(*ast.Ident); ok {
			if obj := info.ObjectOf(id); obj != nil {
				if i := paramIndex(info, fi.Decl, obj); i >= 0 {
					sum.CallsParam[i] = true
					if spawned {
						sum.CallsParamGo[i] = true
					}
				}
			}
		}
		// A parameter handed to a callee that invokes its own parameter.
		callee := prog.Funcs[staticCalleeKey(info, call)]
		if callee == nil || callee.Summary == nil {
			return
		}
		for ai, a := range call.Args {
			if ai >= len(callee.Summary.CallsParam) || !callee.Summary.CallsParam[ai] {
				continue
			}
			id, ok := unparen(a).(*ast.Ident)
			if !ok {
				continue
			}
			obj := info.ObjectOf(id)
			if obj == nil {
				continue
			}
			if i := paramIndex(info, fi.Decl, obj); i >= 0 {
				sum.CallsParam[i] = true
				if spawned || callee.Summary.CallsParamGo[ai] {
					sum.CallsParamGo[i] = true
				}
			}
		}
	}
	walk = func(n ast.Node, spawned bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.GoStmt:
				handleCall(m.Call, true)
				if lit, ok := unparen(m.Call.Fun).(*ast.FuncLit); ok {
					walk(lit.Body, true)
				}
				for _, a := range m.Call.Args {
					walk(a, true)
				}
				return false
			case *ast.CallExpr:
				handleCall(m, spawned)
			}
			return true
		})
	}
	walk(fi.Decl.Body, false)
}
