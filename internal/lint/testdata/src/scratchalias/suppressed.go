package scratchalias

import "repro/internal/grid"

// A documented handoff: the single caller Puts the buffer back. The
// directive records why the escape is intentional.
func documentedHandoff(p *grid.CMatPool, n int) *grid.CMat {
	buf := p.Get(n, n)
	//lint:ignore scratchalias the sole caller Puts this buffer back; the lease transfers, it does not leak
	return buf
}
