// Package scratchalias is a lint fixture: every pool lease below escapes
// its call scope and must fire the scratchalias analyzer.
package scratchalias

import (
	"sync"

	"repro/internal/grid"
)

var leaked *grid.CMat

type holder struct {
	buf *grid.Mat
}

// Returning a leased buffer hands pool memory to the caller.
func escapeReturn(p *grid.CMatPool, n int) *grid.CMat {
	buf := p.Get(n, n)
	return buf // want "escapes via return"
}

// Storing a lease in a struct field outlives the call.
func escapeField(p *grid.MatPool, h *holder, n int) {
	h.buf = p.Get(n, n) // want "escapes into field or variable h.buf"
}

// Package-level variables are the widest possible escape.
func escapeGlobal(p *grid.CMatPool, n int) {
	leaked = p.Get(n, n) // want "package-level variable leaked"
}

// A channel send publishes the lease to another goroutine.
func escapeSend(p *grid.CMatPool, ch chan *grid.CMat, n int) {
	ch <- p.Get(n, n) // want "sent on a channel"
}

// Taint flows through calls that may return their argument.
func escapeThroughCall(p *grid.CMatPool, n int) *grid.CMat {
	buf := p.Get(n, n)
	out := passthrough(buf)
	return out // want "escapes via return"
}

func passthrough(m *grid.CMat) *grid.CMat { return m }

// sync.Pool leases are held to the same contract as the grid pools.
func escapeSyncPool(p *sync.Pool) any {
	v := p.Get()
	return v // want "escapes via return"
}
