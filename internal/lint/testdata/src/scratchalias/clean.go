package scratchalias

import "repro/internal/grid"

// The lease contract: Get, use, Put — all within one call. Copying
// elements out is fine; only the buffer itself must not escape.
func leaseScoped(p *grid.CMatPool, n int) complex128 {
	buf := p.Get(n, n)
	defer p.Put(buf)
	for i := range buf.Data {
		buf.Data[i] = complex(float64(i), 0)
	}
	return buf.Data[0] // element copy, not an alias
}

// Clean reassignment kills the taint: the returned buffer is a fresh
// allocation, not the lease.
func reassigned(p *grid.CMatPool, n int, keep bool) *grid.CMat {
	buf := p.Get(n, n)
	sum := buf.Data[0]
	p.Put(buf)
	if keep {
		buf = grid.NewCMat(n, n)
		buf.Data[0] = sum
		return buf
	}
	return nil
}

// The branch-sensitive walk keeps the pooled branch guarded while the
// allocating branch may escape.
func branchy(p *grid.MatPool, n int, escape bool) *grid.Mat {
	var out *grid.Mat
	if escape {
		out = grid.NewMat(n, n)
	}
	tmp := p.Get(n, n)
	tmp.Data[0] = 1
	p.Put(tmp)
	return out
}
