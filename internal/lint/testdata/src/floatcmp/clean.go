package floatcmp

import "math"

const eps = 1e-12

const zeroThreshold = 0.0

// Constant-zero sentinels are the repo idiom and stay exempt, including
// through a named constant.
func sentinels(x float64, data []float64) int {
	n := 0
	if x == 0 {
		n++
	}
	for _, v := range data {
		if v != 0 {
			n++
		}
		if v == zeroThreshold {
			n--
		}
	}
	return n
}

// An explicit tolerance is the sanctioned comparison for computed values.
func tolerance(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < eps
}

// Bit comparison is uint64 equality — exactly what the fix produces.
func bits(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

func ints(a, b int) bool { return a == b }
