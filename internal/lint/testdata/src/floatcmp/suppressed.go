package floatcmp

// A stand-alone directive with a reason guards the next line.
func suppressedStandalone(a, b float64) bool {
	//lint:ignore floatcmp both operands are drawn from the same quantized ladder, so equality is exact
	return a == b
}

// A trailing directive with a reason guards its own line.
func suppressedTrailing(a, b float64) bool {
	return a == b //lint:ignore floatcmp ladder values compare bit-identically by construction
}

// A directive without a reason suppresses nothing and is itself reported.
// want+1 "directive needs a reason"
//lint:ignore floatcmp
func unsuppressed(a, b float64) bool {
	return a == b // want "float equality"
}
