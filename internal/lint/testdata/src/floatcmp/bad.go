// Package floatcmp is a lint fixture: every comparison in this file must
// fire the floatcmp analyzer.
package floatcmp

import "math"

// Both operands computed: the canonical violation, fixable because math is
// imported and both sides are float64.
func computed(a, b float64) bool {
	return a == b // want "float equality: == on float64 operands"
}

// A nonzero constant is not a sentinel: 2.5 is exactly representable, but
// the computed left side may be 2.4999999999999996.
func nonzeroConst(x float64) bool {
	return x != 2.5 // want "float equality: != on float64 operands"
}

func complexCmp(a, b complex128) bool {
	return a == b // want "float equality: == on complex operands"
}

// Narrow floats get no Float64bits fix but still report.
func narrow(a, b float32) bool {
	return a != b // want "float equality: != on float32 operands"
}

var _ = math.Pi // keep the math import live for the fix path
