// Package unreached repeats the violating shapes outside the serving
// surface: nothing with a server/core path segment calls it, so ctxflow
// must stay silent — a batch CLI may sleep and mint contexts freely.
package unreached

import (
	"context"
	"time"
)

// Batch drops its context and sleeps; still not a finding here.
func Batch(ctx context.Context) {
	run(context.Background())
	time.Sleep(time.Millisecond)
}

func run(ctx context.Context) {
	_ = ctx
}
