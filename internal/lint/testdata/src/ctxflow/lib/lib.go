// Package lib is compute code with no server path segment of its own: its
// findings exist only because package server's call graph reaches it.
package lib

import (
	"context"
	"time"
)

// Process consumes a request context.
func Process(ctx context.Context) {
	_ = ctx
}

// Work is server-reachable through server.Handle; its retry sleep blocks
// a serving path that cannot cancel it.
func Work(n int) {
	for i := 0; i < n; i++ {
		time.Sleep(time.Millisecond) // want "cannot be cancelled: plumb the request context"
	}
}
