// Package server is the ctxflow fixture's serving surface: its import
// path carries a "server" segment, so everything here (and everything it
// calls) is server-reachable.
package server

import (
	"context"
	"time"

	"repro/internal/lint/testdata/src/ctxflow/lib"
)

// Handle severs its own request context and blocks uninterruptibly.
func Handle(ctx context.Context, d time.Duration) {
	lib.Process(context.Background()) // want "severs the request context"
	time.Sleep(d)                     // want "ignores the context in scope"
	lib.Process(ctx)
	lib.Work(3)
}

// Detached has no context at all: the sleep finding asks for plumbing.
func Detached() {
	time.Sleep(time.Millisecond) // want "cannot be cancelled: plumb the request context"
}

// Spawn's goroutine closure inherits the enclosing context scope.
func Spawn(ctx context.Context) {
	go func() {
		lib.Process(context.TODO()) // want "severs the request context"
	}()
}

// Audit's detach is deliberate and carries a reasoned suppression.
func Audit(ctx context.Context) {
	//lint:ignore ctxflow the audit write must survive request cancellation
	lib.Process(context.Background())
}

// NewRoot creates a root context without one in scope — not a finding:
// entry points legitimately mint the first context.
func NewRoot() context.Context {
	return context.Background()
}
