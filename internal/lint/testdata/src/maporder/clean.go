package maporder

import (
	"fmt"
	"io"
	"sort"
)

// The sanctioned pattern: collect the keys, sort, then iterate.
func sortedDump(w io.Writer, m map[string]float64) float64 {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var total float64
	for _, k := range keys {
		total += m[k]
		fmt.Fprintf(w, "%s=%g\n", k, m[k])
	}
	return total
}

// Integer accumulation is order-free and stays legal.
func count(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// Building an intermediate in map order is fine as long as no output or
// float fold happens before sorting.
func collect(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
