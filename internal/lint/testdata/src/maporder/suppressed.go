package maporder

// A reasoned directive accepts a deliberate exception.
func suppressedSum(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		//lint:ignore maporder every caller passes single-entry maps, so there is no order to vary
		total += v
	}
	return total
}
