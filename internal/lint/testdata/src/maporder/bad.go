// Package maporder is a lint fixture: map-ordered output and map-ordered
// float reductions in this file must fire the maporder analyzer.
package maporder

import (
	"fmt"
	"io"
)

// Float accumulation in map order: the sum depends on visit order.
func sum(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		total += v // want "floating-point reduction"
	}
	return total
}

// The spelled-out self-assignment form of the same reduction.
func selfAssign(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total = total + v // want "floating-point reduction"
	}
	return total
}

// fmt output in map order randomizes the stream.
func dump(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want "map iteration order reaches output through fmt.Fprintf"
	}
}

// Writer methods are sinks too.
func raw(w io.Writer, m map[string][]byte) error {
	for _, v := range m {
		if _, err := w.Write(v); err != nil { // want "map iteration order reaches output through Writer.Write"
			return err
		}
	}
	return nil
}
