// Package hotdiag exercises the compiler-fact analyzers (bce, escape,
// inline) against the lint.hot manifest beside it: hotKernel, hotGather
// and hotScratch are declared hot; coldKernel repeats the same shapes
// outside the manifest and must stay silent.
package hotdiag

var sink []float64

// add is far under the inlining budget: its call sites inline, so they
// are not findings.
func add(a, b float64) float64 { return a + b }

// big is far over the inlining budget: no call site can inline it.
func big(x float64) float64 {
	x = x*1.0000001 + 0.5
	x = x/1.0000002 - 0.25
	x = x*1.0000003 + 0.125
	x = x/1.0000004 - 0.0625
	x = x*1.0000005 + 0.03125
	x = x/1.0000006 - 0.015625
	x = x*1.0000007 + 0.0078125
	x = x/1.0000008 - 0.00390625
	x = x*1.0000009 + 0.001953125
	x = x/1.0000010 - 0.0009765625
	x = x*1.0000011 + 0.00048828125
	x = x/1.0000012 - 0.000244140625
	x = x*1.0000013 + 0.0001220703125
	x = x/1.0000014 - 0.00006103515625
	x = x*1.0000015 + 0.000030517578125
	x = x/1.0000016 - 0.0000152587890625
	x = x*1.0000017 + 0.00000762939453125
	x = x/1.0000018 - 0.000003814697265625
	x = x*1.0000019 + 0.0000019073486328125
	x = x/1.0000020 - 0.00000095367431640625
	return x
}

// hotKernel: the unproven index keeps its bounds check, and the big
// callee falls out of the budget. The add call inlines: clean.
func hotKernel(xs []float64, i int) float64 {
	v := xs[i] // want "bounds check survives in hot function hotKernel"
	v = add(v, 1)
	return big(v) // want "call to hotdiag.big is not inlined in hot function hotKernel"
}

// hotGather: the slab allocation escapes through the package-level sink.
// The range-indexed stores are BCE-proven: clean.
func hotGather(n int) {
	buf := make([]float64, n) // want "heap allocation in hot function hotGather"
	for i := range buf {
		buf[i] = float64(i)
	}
	sink = buf
}

// hotScratch: the escape is deliberate (the slab outlives the call by
// design), so it carries a reasoned suppression.
func hotScratch(n int) []float64 {
	//lint:ignore escape call-lifetime slab: the caller owns and reuses it
	s := make([]float64, n)
	return s
}

// hotPanicPath: operands boxed for a panic message are not hot-path
// allocations — the path is already crashing.
func hotPanicPath(xs []float64, n int) float64 {
	if len(xs) != n {
		panic(n)
	}
	var t float64
	for i := range xs {
		t = add(t, xs[i])
	}
	return t
}

// coldKernel repeats every violating shape outside the manifest: silent.
func coldKernel(xs []float64, i int) float64 {
	buf := make([]float64, i)
	sink = buf
	return big(xs[i])
}
