// Command errcheck is a lint fixture: a main package where every dropped
// error return must fire, not just the Close/Flush/Sync paths.
package main

import (
	"fmt"
	"os"
)

func work() error { return nil }

func main() {
	f, err := os.Create("out.txt")
	if err != nil {
		return
	}
	fmt.Fprintln(f, "data") // fmt output to a stream is exempt
	work()                  // want "unchecked error returned by work in a main package"
	f.Close()               // want "unchecked error returned by f.Close"

	checked()
	suppressed(f)
}

// The accepted spellings: handle the error or assign it away deliberately.
func checked() {
	if err := work(); err != nil {
		fmt.Fprintln(os.Stderr, err)
	}
	_ = work()
}

func suppressed(f *os.File) {
	//lint:ignore errcheck best-effort cleanup on a path that already failed
	f.Close()
}
