// Package b is the caller side of the cross-package fixture: findings
// here exist only because the analyzers follow facts into package a.
package b

import (
	"errors"

	"repro/internal/grid"
	"repro/internal/lint/testdata/src/interproc/a"
)

// Clean: the lease flows through a pass-through helper and is released by
// a cross-package two-hop chain.
func CleanChain(p *grid.CMatPool, n int) {
	buf := a.Touch(p.Get(n, n))
	a.DoneTwice(p, buf)
}

// The happy path releases via the helper, but the error path drops the
// lease.
func LeakyChain(p *grid.CMatPool, n int, fail bool) error {
	buf := p.Get(n, n) // want "not released on every path"
	if fail {
		return errors.New("fail")
	}
	a.Done(p, buf)
	return nil
}

// Cross-package resolution mixing: Half's result delta meets Overlap's
// same-resolution constraint.
func MixAcrossPackages(z *grid.Mat) float64 {
	zs := a.Half(z)
	return a.Overlap(zs, z) // want "grid resolution mismatch"
}

// Clean: both arguments arrive at Overlap one level down.
func CleanAcrossPackages(z *grid.Mat) float64 {
	zs := a.Half(z)
	zt := a.Half(z)
	return a.Overlap(zs, zt)
}
