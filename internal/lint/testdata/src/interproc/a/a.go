// Package a is the callee side of the cross-package fixture: helpers whose
// summaries (release, pass-through, result resolution, same-res
// constraints) must be visible from package b through the call-graph
// fixpoint.
package a

import "repro/internal/grid"

// Done always releases m: callers may rely on it.
func Done(p *grid.CMatPool, m *grid.CMat) {
	p.Put(m)
}

// DoneTwice releases through Done — a two-hop chain the bottom-up
// summary order must resolve.
func DoneTwice(p *grid.CMatPool, m *grid.CMat) {
	Done(p, m)
}

// Touch returns its argument: a pass-through, not a release.
func Touch(m *grid.CMat) *grid.CMat {
	m.Data[0] = 0
	return m
}

// Overlap pairs its parameters elementwise, so its summary constrains
// them to one resolution.
func Overlap(x, y *grid.Mat) float64 {
	var t float64
	for i := range x.Data {
		t += x.Data[i] * y.Data[i]
	}
	return t
}

// Half's result is one coarsening level above its input.
func Half(m *grid.Mat) *grid.Mat {
	return grid.AvgPoolDown(m, 2)
}
