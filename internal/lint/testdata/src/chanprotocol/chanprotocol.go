// Package chanprotocol seeds the close-discipline fixture: double-close
// and send-after-close on one path, the close-ownership heuristic for
// channel parameters, and the branch shapes that must stay silent. These
// checks run everywhere — a close panic is a panic in a CLI too — while
// the unbuffered-send findings live in the server subpackage.
package chanprotocol

// DoubleClose closes the same channel twice on a straight line.
func DoubleClose() {
	ch := make(chan int)
	close(ch)
	close(ch) // want "second close"
}

// SendAfterClose panics unconditionally at the send.
func SendAfterClose() {
	ch := make(chan int, 4)
	close(ch)
	ch <- 1 // want "send on channel ch after it is closed"
}

// BranchClose closes on each arm exactly once — clean: the arms are
// exclusive paths.
func BranchClose(b bool) {
	ch := make(chan int)
	if b {
		close(ch)
	} else {
		close(ch)
	}
}

// MergedClose closes on both arms and then again after the join: the
// second close is reached on every path.
func MergedClose(b bool) {
	ch := make(chan int)
	if b {
		close(ch)
	} else {
		close(ch)
	}
	close(ch) // want "second close"
}

// Reborn reassigns the channel between closes — clean: the second close
// targets a fresh channel value.
func Reborn() {
	ch := make(chan int)
	close(ch)
	ch = make(chan int)
	close(ch)
}

// CloseParam closes a bidirectional channel it was handed: the ownership
// heuristic — the owner closes, and ownership is declared in the type.
func CloseParam(ch chan int) {
	close(ch) // want "bidirectional channel parameter"
}

// CloseOwned declares ownership with a send-only parameter — clean: the
// producer side closing its own channel is the convention.
func CloseOwned(out chan<- int) {
	for i := 0; i < 4; i++ {
		out <- i
	}
	close(out)
}

// Shutdown's close is protocol-sanctioned and carries the reason.
func Shutdown(ch chan int) {
	//lint:ignore chanprotocol the hub transfers channel ownership to the drainer by protocol
	close(ch)
}
