// Package server is the chanprotocol fixture's serving surface: the
// unbuffered-send-without-escape findings fire only on server-reachable
// paths, where a parked handler goroutine leaks per request.
package server

import "context"

// Hub fans events out on an unbuffered channel and acks on a buffered one.
type Hub struct {
	events chan string
	acks   chan struct{}
}

// NewHub's make-sites decide each channel's bufferedness for the whole
// package: events is unbuffered, acks has capacity.
func NewHub() *Hub {
	return &Hub{
		events: make(chan string),
		acks:   make(chan struct{}, 8),
	}
}

// Notify sends bare on the unbuffered channel: no receiver, no escape —
// the handler blocks forever.
func (h *Hub) Notify(msg string) {
	h.events <- msg // want "unbuffered channel"
}

// NotifyCtx escapes through the request context — clean.
func (h *Hub) NotifyCtx(ctx context.Context, msg string) {
	select {
	case h.events <- msg:
	case <-ctx.Done():
	}
}

// TryNotify escapes through default — clean.
func (h *Hub) TryNotify(msg string) bool {
	select {
	case h.events <- msg:
		return true
	default:
		return false
	}
}

// Ack sends on the buffered channel — clean up to capacity, and not an
// unbuffered finding either way.
func (h *Hub) Ack() {
	h.acks <- struct{}{}
}

// Broadcast wraps the send in a select that cannot escape: a single comm
// case without default or a done-channel is the bare send in disguise.
func (h *Hub) Broadcast(msg string) {
	select {
	case h.events <- msg: // want "unbuffered channel"
	}
}
