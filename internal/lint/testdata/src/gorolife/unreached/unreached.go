// Package unreached shows the scoping: the same unbounded spawn is silent
// off the serving surface — a batch tool may detach a worker for its own
// lifetime without leaking per-request goroutines.
package unreached

func work() {}

func spin() {
	for {
		work()
	}
}

// Spawn is the shape Monitor flags in the server package — no finding
// here.
func Spawn() {
	go spin()
}
