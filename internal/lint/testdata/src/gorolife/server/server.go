// Package server is the gorolife fixture's serving surface: spawn sites
// whose goroutine can spin forever fire here, while the same shapes in
// the unreached sibling package stay silent.
package server

import "context"

func work() {}

// Monitor spawns a bare forever-loop: nothing ever ends it.
func Monitor() {
	go func() { // want "may never exit"
		for {
			work()
		}
	}()
}

// MonitorCtx ties the loop's exit to the request context — clean.
func MonitorCtx(ctx context.Context) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			default:
				work()
			}
		}
	}()
}

// Drain ranges the channel: the loop ends when the owner closes it —
// clean.
func Drain(ch chan int) {
	go func() {
		for range ch {
			work()
		}
	}()
}

// QuitLoop exits on the quit-channel close — clean: the receive's comma-ok
// loop has a return.
func QuitLoop(quit chan struct{}) {
	go func() {
		for {
			select {
			case <-quit:
				return
			default:
				work()
			}
		}
	}()
}

// spin is an unbounded named target: its summary carries the fact to
// every spawn site.
func spin() {
	for {
		work()
	}
}

// SpawnSpin launches it: the finding lands on the go statement, where the
// fix (plumb a context or a quit channel into spin) belongs.
func SpawnSpin() {
	go spin() // want "may never exit"
}

// SpawnNested reaches spin through a wrapper: the Unbounded fact
// propagates through the call graph.
func runForever() {
	spin()
}

func SpawnNested() {
	go runForever() // want "may never exit"
}

// Pump is the process-lifetime stats pump; its unbounded spawn is by
// design and the suppression records it.
func Pump() {
	//lint:ignore gorolife the stats pump runs for the whole process lifetime by design
	go spin()
}
