// Suppression: a documented //lint:ignore silences gridres on its target
// line; a reasonless directive is itself an "ignore" finding (covered by
// the driver fixture).
package gridres

import "repro/internal/grid"

func sanctioned(z *grid.Mat, s int) {
	zs := grid.AvgPoolDown(z, s)
	//lint:ignore gridres fixture demonstrates a deliberate cross-level accumulation
	zs.Add(z)
}
