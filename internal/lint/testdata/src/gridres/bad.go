// Package gridres is a lint fixture: every elementwise operation below
// mixes grids at different coarsening levels and must fire the gridres
// analyzer.
package gridres

import "repro/internal/grid"

// Direct mixing: a pooled-down mask against its fine source.
func mixDirect(z *grid.Mat, s int) {
	zs := grid.AvgPoolDown(z, s)
	zs.Add(z) // want "grid resolution mismatch"
}

// down's result is one level coarser than its input — a call-graph fact.
func down(m *grid.Mat) *grid.Mat { return grid.AvgPoolDown(m, 2) }

// Mixing through the helper's result delta.
func mixViaHelper(z *grid.Mat) {
	d := down(z)
	d.Sub(z) // want "grid resolution mismatch"
}

// Two helper hops: the fixpoint must compose the deltas.
func down2(m *grid.Mat) *grid.Mat { return down(down(m)) }

func mixTwoHops(z *grid.Mat) {
	d := down2(z)
	d.CopyFrom(z) // want "grid resolution mismatch"
}

// dot pairs its parameters elementwise, so its summary constrains them to
// one resolution.
func dot(a, b *grid.Mat) float64 {
	var t float64
	for i := range a.Data {
		t += a.Data[i] * b.Data[i]
	}
	return t
}

// Mixing through the callee's same-resolution constraint.
func mixViaConstraint(z *grid.Mat, s int) float64 {
	zs := grid.AvgPoolDown(z, s)
	return dot(zs, z) // want "grid resolution mismatch"
}

// Raw paired-index loop mixing, no helper involved.
func mixRawLoop(z *grid.Mat, s int) {
	zs := grid.UpsampleNearest(z, s)
	for i := range zs.Data {
		zs.Data[i] += z.Data[i] // want "grid resolution mismatch"
	}
}
