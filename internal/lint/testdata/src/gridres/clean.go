// Clean cases: every operation matches levels, or the relation between
// operands is unknown — gridres must stay silent on all of it.
package gridres

import "repro/internal/grid"

// Downsample, operate coarse-with-coarse, upsample, operate fine-with-fine.
func roundTrip(z *grid.Mat, s int) *grid.Mat {
	zs := grid.AvgPoolDown(z, s)
	zt := grid.AvgPoolDown(z, s)
	zs.Add(zt)
	up := grid.UpsampleNearest(zs, s)
	up.Sub(z)
	return up
}

// The adjoint pair cancels: down then adjoint-down is back at the source
// level.
func adjointPair(g *grid.Mat, s int) {
	gs := grid.AvgPoolDown(g, s)
	back := grid.AvgPoolDownAdjoint(gs, s)
	back.AddScaled(1.0, g)
}

// Different bases: the relation between a and b is unknown, so pooling
// both and mixing is not flaggable.
func unknownRelation(a, b *grid.Mat, s int) {
	as := grid.AvgPoolDown(a, s)
	as.Add(grid.AvgPoolDown(b, s))
}

// SmoothPool is level-preserving.
func smooth(z *grid.Mat) {
	sm := grid.SmoothPool(z, 3)
	sm.Sub(z)
}

// Clone stays at its receiver's level.
func cloned(z *grid.Mat, s int) float64 {
	zs := grid.AvgPoolDown(z, s)
	c := zs.Clone()
	return c.Dot(zs)
}
