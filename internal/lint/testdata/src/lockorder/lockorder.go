// Package lockorder seeds the lock-order fixture: two mutexes acquired in
// opposing orders across two functions — the inversion cycle the analyzer
// must stitch together from per-function summaries — plus a self-deadlock
// through a helper and the clean shapes that must stay silent.
package lockorder

import "sync"

// A and B each carry a field mutex; the lock graph keys them as
// lockorder.(A).mu and lockorder.(B).mu.
type A struct {
	mu sync.Mutex
	n  int
}

type B struct {
	mu sync.Mutex
	n  int
}

var globalA A
var globalB B

// TakeAB acquires A then B: one direction of the seeded inversion. The
// cycle is reported once, at this witness edge, with both positions.
func TakeAB() {
	globalA.mu.Lock()
	defer globalA.mu.Unlock()
	globalB.mu.Lock() // want "lock-order inversion"
	defer globalB.mu.Unlock()
	globalA.n++
	globalB.n++
}

// TakeBA acquires B then A — the opposing direction that closes the cycle.
func TakeBA() {
	globalB.mu.Lock()
	defer globalB.mu.Unlock()
	globalA.mu.Lock()
	defer globalA.mu.Unlock()
	globalB.n++
	globalA.n++
}

// lockA is a lock helper: it acquires globalA.mu and leaves it held for
// the caller (HoldsOnExit in its summary).
func lockA() {
	globalA.mu.Lock()
}

// Reacquire calls the helper while already holding the same lock: a
// guaranteed self-deadlock, found through the callee summary.
func Reacquire() {
	globalA.mu.Lock()
	lockA() // want "while already held"
	globalA.mu.Unlock()
}

// UseHelper takes the lock through the helper and releases it — the
// hand-off shape stays clean.
func UseHelper() {
	lockA()
	globalA.n++
	globalA.mu.Unlock()
}

// C and D seed a second inversion whose report site carries a reasoned
// suppression — the deliberate-exception path every rule must support.
type C struct {
	mu sync.Mutex
}

type D struct {
	mu sync.Mutex
}

var globalC C
var globalD D

// TakeCD holds the suppressed witness edge of the C/D cycle.
func TakeCD() {
	globalC.mu.Lock()
	defer globalC.mu.Unlock()
	//lint:ignore lockorder the D pool is quiesced before C is ever taken here
	globalD.mu.Lock()
	defer globalD.mu.Unlock()
}

// TakeDC closes the suppressed cycle.
func TakeDC() {
	globalD.mu.Lock()
	defer globalD.mu.Unlock()
	globalC.mu.Lock()
	defer globalC.mu.Unlock()
}

// WithBranch takes B under A in a branch — consistent with TakeAB's
// order, so it adds no new cycle. (Its name deliberately sorts after
// TakeAB: the first witness of the A->B edge, in sorted function order,
// anchors the cycle report.)
func WithBranch(flip bool) {
	globalA.mu.Lock()
	if flip {
		globalB.mu.Lock()
		globalB.mu.Unlock()
	}
	globalA.mu.Unlock()
}
