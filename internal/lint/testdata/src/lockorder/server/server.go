// Package server is the lockorder fixture's serving surface: the
// held-across-blocking findings fire only here, because a batch tool may
// hold a lock across I/O without stalling anyone's request.
package server

import (
	"os"
	"sync"
)

// Registry guards a map with a mutex and publishes updates on a channel.
type Registry struct {
	mu    sync.Mutex
	items map[string]int
	ch    chan int
}

// Publish sends with the lock held: a missing receiver parks this
// goroutine inside the critical section and every other method stalls.
func (r *Registry) Publish(v int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.items["last"] = v
	r.ch <- v // want "held across channel send"
}

// Snapshot moves the send outside the critical section — clean.
func (r *Registry) Snapshot(v int) {
	r.mu.Lock()
	n := r.items["last"]
	r.mu.Unlock()
	r.ch <- n + v
}

// Persist does file I/O inside the critical section.
func (r *Registry) Persist(path string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return os.WriteFile(path, []byte("snapshot"), 0o644) // want "held across os.WriteFile"
}

// Queue is the canonical condition-variable consumer: Wait parks holding
// only the cond's own locker, which Wait atomically releases — clean.
type Queue struct {
	mu    sync.Mutex
	cond  *sync.Cond
	items []int
}

// NewQueue couples the cond to its locker; the analyzer resolves the
// association from this NewCond site.
func NewQueue() *Queue {
	q := &Queue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// Pop is the correct Wait loop — no finding.
func (q *Queue) Pop() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 {
		q.cond.Wait()
	}
	v := q.items[0]
	q.items = q.items[1:]
	return v
}

// PopHolding parks while also holding a foreign lock: Wait releases only
// its own locker, so the registry stays locked for the whole sleep.
func (q *Queue) PopHolding(r *Registry) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 {
		q.cond.Wait() // want "held across sync.Cond.Wait"
	}
	return q.items[0]
}
