// Clean cases: typed atomics make mixed access unrepresentable, and
// consistent function-style atomic access is the contract satisfied.
package atomicfield

import "sync/atomic"

type stats struct {
	ops  atomic.Int64
	name string
}

func (s *stats) inc() int64  { return s.ops.Add(1) }
func (s *stats) read() int64 { return s.ops.Load() }
func (s *stats) label() string {
	return s.name
}

type flag struct{ v uint32 }

// Every access to v goes through sync/atomic: no finding.
func (f *flag) set()        { atomic.StoreUint32(&f.v, 1) }
func (f *flag) isSet() bool { return atomic.LoadUint32(&f.v) == 1 }
