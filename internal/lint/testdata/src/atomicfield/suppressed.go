// Suppression: pre-publication initialization is single-threaded by
// construction; the documented directive silences the finding.
package atomicfield

import "sync/atomic"

type gauge struct{ v int64 }

func (g *gauge) set(x int64) { atomic.StoreInt64(&g.v, x) }

func newGauge(x int64) *gauge {
	g := &gauge{}
	//lint:ignore atomicfield single-threaded before publication, no concurrent reader yet
	g.v = x
	return g
}
