// Package atomicfield is a lint fixture: the counter field n is updated
// through sync/atomic in one place and accessed plainly in others — every
// plain access must fire the atomicfield analyzer.
package atomicfield

import "sync/atomic"

type counter struct {
	n    int64
	hits int64 // never touched atomically: plain access is fine
}

func (c *counter) inc() {
	atomic.AddInt64(&c.n, 1)
}

func (c *counter) read() int64 {
	return c.n // want "mixed plain/atomic access is a data race"
}

// bump runs on a spawned goroutine (see spawn), so its plain access is a
// live race, and the report says so.
func (c *counter) spawn() {
	go c.bump()
}

func (c *counter) bump() {
	c.n++ // want "goroutine-reachable, so the race is live"
}

func (c *counter) plainOK() int64 {
	return c.hits
}
