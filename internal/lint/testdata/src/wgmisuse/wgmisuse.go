// Package wgmisuse seeds the WaitGroup/lock-copy fixture: Add racing the
// spawn (directly and through a callee), Add racing an async Wait, sync
// state copied into callees that lock it, and the correct shapes that
// must stay silent.
package wgmisuse

import "sync"

func work() {}

// AddInside runs Add on the spawned goroutine: the spawner's Wait can
// observe zero before any Add lands.
func AddInside(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		go func() {
			wg.Add(1) // want "Add inside the spawned goroutine"
			defer wg.Done()
			work()
		}()
	}
	wg.Wait()
}

// AddBefore is the correct shape — clean.
func AddBefore(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work()
		}()
	}
	wg.Wait()
}

// runWorker Adds on the group it is handed — fine in itself (the caller
// decides when it runs); its summary records AddsWGParam[0].
func runWorker(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
}

// SpawnWorker moves runWorker itself onto a goroutine: the Add inside it
// now races the Wait, a fact only the callee summary exposes.
func SpawnWorker() {
	var wg sync.WaitGroup
	go runWorker(&wg) // want "calls Add on it"
	wg.Wait()
}

// CallWorker invokes the Add-ing callee synchronously — clean: Add is
// ordered before Wait.
func CallWorker() {
	var wg sync.WaitGroup
	runWorker(&wg)
	wg.Wait()
}

// AddAfterAsyncWait hands Wait to a watcher goroutine and then keeps
// Adding: the watcher may already have seen zero and moved on.
func AddAfterAsyncWait(done chan struct{}) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		wg.Wait()
		close(done)
	}()
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Add(1) // want "already Waiting"
	go func() {
		defer wg.Done()
		work()
	}()
}

// Counter carries a mutex by value in its struct.
type Counter struct {
	mu sync.Mutex
	n  int
}

// bump locks its by-value parameter: its summary records SyncsParam[0].
func bump(c Counter) {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// bumpPtr is the correct signature.
func bumpPtr(c *Counter) {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// CopyLock passes the counter by value to a callee that locks it: the
// callee synchronizes on a copy, protecting nothing.
func CopyLock() {
	var c Counter
	bump(c) // want "passed by value"
	bumpPtr(&c)
}

// Gauge's value-receiver method locks receiver state: every call locks a
// fresh copy.
type Gauge struct {
	mu sync.Mutex
	v  float64
}

func (g Gauge) Set(v float64) {
	g.mu.Lock() // want "value receiver"
	g.v = v
	g.mu.Unlock()
}

// GaugePtr is the pointer-receiver twin — clean.
type GaugePtr struct {
	mu sync.Mutex
	v  float64
}

func (g *GaugePtr) Set(v float64) {
	g.mu.Lock()
	g.v = v
	g.mu.Unlock()
}

// LateJoin's in-goroutine Add is deliberate and gated elsewhere; the
// suppression records why.
func LateJoin(gate chan struct{}) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		<-gate // the spawner parks on gate until this Add is visible
		//lint:ignore wgmisuse the gate channel orders this Add before the spawner's Wait
		wg.Add(1)
		defer wg.Done()
		work()
	}()
	wg.Wait()
}
