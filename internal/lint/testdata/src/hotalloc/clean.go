package hotalloc

import (
	"fmt"

	"repro/internal/telemetry"
)

// The sanctioned idiom: the Enabled() guard keeps every allocation off the
// disabled path — this is what the suggested fix produces.
func guardedEmit(rec *telemetry.Recorder, n int) {
	for i := 0; i < n; i++ {
		if rec.Enabled() {
			rec.Emit("iter", telemetry.Fields{"i": i})
		}
	}
}

// A nil check is an equivalent guard.
func nilGuarded(rec *telemetry.Recorder, n int) {
	for i := 0; i < n; i++ {
		if rec != nil {
			rec.Progressf("step %d", i)
		}
	}
}

// Error construction on the way out of the loop is an exit path, not a
// per-iteration cost.
func errorExit(rec *telemetry.Recorder, vals []float64) error {
	for i, v := range vals {
		sp := rec.StartSpan("check")
		sp.End()
		if v < 0 {
			return fmt.Errorf("negative value at index %d", i)
		}
	}
	return nil
}

// Loops without telemetry are not hot: ordinary code stays unlinted.
func coldLoop(items []string) []string {
	out := make([]string, 0, len(items))
	for i, s := range items {
		out = append(out, fmt.Sprintf("%d:%s", i, s))
	}
	return out
}
