package hotalloc

import "repro/internal/telemetry"

// A reasoned directive accepts a deliberate per-iteration allocation.
func suppressedEmit(rec *telemetry.Recorder, stages int) {
	for s := 0; s < stages; s++ {
		//lint:ignore hotalloc this loop runs once per stage, not per pixel; the Fields map is negligible
		rec.Emit("stage", telemetry.Fields{"stage": s})
	}
}
