// Package hotalloc is a lint fixture: every allocation below sits inside
// a telemetry-instrumented loop without the Enabled() guard and must fire.
package hotalloc

import (
	"fmt"

	"repro/internal/telemetry"
)

// An unguarded Fields literal allocates a map per iteration even when the
// recorder is disabled.
func unguardedEmit(rec *telemetry.Recorder, n int) {
	for i := 0; i < n; i++ {
		rec.Emit("iter", telemetry.Fields{"i": i}) // want "map literal allocates per iteration"
	}
}

// Progressf boxes its ...any arguments on every pass.
func unguardedProgress(rec *telemetry.Recorder, n int) {
	for i := 0; i < n; i++ {
		rec.Progressf("step %d of %d", i, n) // want "Progressf boxes its arguments"
	}
}

// Sprintf builds a string per iteration; the span makes the loop hot.
func sprintInLoop(rec *telemetry.Recorder, items []string) []string {
	out := make([]string, 0, len(items))
	for i, s := range items {
		sp := rec.StartSpan("format")
		out = append(out, fmt.Sprintf("%d:%s", i, s)) // want "fmt.Sprintf allocates per iteration"
		sp.End()
	}
	return out
}

// A closure literal is a per-iteration heap allocation once it captures.
func closureInLoop(rec *telemetry.Recorder, n int) {
	total := 0
	for i := 0; i < n; i++ {
		add := func() int { return i } // want "closure allocated per iteration"
		total += add()
		rec.Add("calls", 1)
	}
	_ = total
}
