// Package server carries the driver golden's serving-era violations: its
// path segment makes everything here server-reachable for ctxflow,
// timerleak, and the four concurrency-protocol rules.
package server

import (
	"context"
	"os"
	"sync"
	"time"
)

// ctxflow: Background severs the context already in scope.
func Handle(ctx context.Context) {
	process(context.Background())
	process(ctx)
}

func process(ctx context.Context) {
	_ = ctx
}

// timerleak: the early return drops the ticker.
func Poll(fail bool) {
	t := time.NewTicker(time.Second)
	if fail {
		return
	}
	t.Stop()
}

// lockorder: the config mutex is held across the file write.
type cfg struct {
	mu   sync.Mutex
	path string
}

func (c *cfg) save(data []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	_ = os.WriteFile(c.path, data, 0o644)
}

// chanprotocol: events is unbuffered (the make site votes) and the send
// has no default or ctx.Done escape.
type hub struct{ events chan int }

func newHub() *hub { return &hub{events: make(chan int)} }

func (h *hub) notify(v int) {
	h.events <- v
}

// wgmisuse: Add runs on the spawned goroutine, racing the Wait.
func fanout(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		go func() {
			wg.Add(1)
			defer wg.Done()
			process(context.Background())
		}()
	}
	wg.Wait()
}

// gorolife: the pump loops forever with no exit tied to anything.
func pump(h *hub) {
	go func() {
		for {
			h.notify(1)
		}
	}()
}
