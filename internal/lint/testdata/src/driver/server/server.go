// Package server carries the driver golden's serving-era violations: its
// path segment makes everything here server-reachable for ctxflow.
package server

import (
	"context"
	"time"
)

// ctxflow: Background severs the context already in scope.
func Handle(ctx context.Context) {
	process(context.Background())
	process(ctx)
}

func process(ctx context.Context) {
	_ = ctx
}

// timerleak: the early return drops the ticker.
func Poll(fail bool) {
	t := time.NewTicker(time.Second)
	if fail {
		return
	}
	t.Stop()
}
