// Package driver is the cmd/iltlint golden fixture: one violation per
// rule, so a full seventeen-analyzer run exercises the JSON schema, the
// deterministic ordering, and the fixable flag in one load. The serving
// rules (ctxflow, timerleak's driver case, lockorder, chanprotocol,
// wgmisuse, gorolife) live in the server subpackage; the compiler-fact
// rules (bce, escape, inline) read the lint.hot manifest beside this
// file.
package driver

import (
	"fmt"
	"math"
	"os"
	"sync/atomic"

	"repro/internal/grid"
	"repro/internal/telemetry"
)

// floatcmp (fixable: math is imported, both operands float64).
func converged(prev, cur float64) bool {
	return prev == cur
}

// maporder: float fold in map order.
func fold(weights map[string]float64) float64 {
	var total float64
	for _, w := range weights {
		total += w
	}
	return total
}

// scratchalias: the lease escapes via return.
func lease(p *grid.CMatPool, n int) *grid.CMat {
	buf := p.Get(n, n)
	return buf
}

// hotalloc: unguarded Fields literal in a telemetry-instrumented loop.
func instrument(rec *telemetry.Recorder, n int) {
	for i := 0; i < n; i++ {
		rec.Emit("iter", telemetry.Fields{"i": i})
	}
}

// errcheck: dropped Close error.
func drop(f *os.File) {
	f.Close()
}

// gridres: a coarse result meets its fine source in an elementwise op.
func mix(z *grid.Mat, s int) {
	zs := grid.AvgPoolDown(z, s)
	zs.Add(z)
}

// leasepath: the early return drops the lease.
func leak(p *grid.CMatPool, n int, fail bool) {
	buf := p.Get(n, n)
	if fail {
		return
	}
	p.Put(buf)
}

// atomicfield: n is atomic in bump, plain in read.
type ctr struct{ n int64 }

func bump(c *ctr) { atomic.AddInt64(&c.n, 1) }

func read(c *ctr) int64 { return c.n }

var sink []float64

// bce: i is unproven, so the index keeps its bounds check (hotIndex is in
// lint.hot).
func hotIndex(xs []float64, i int) float64 {
	return xs[i]
}

// escape: the slab escapes through the package-level sink.
func hotEscape(n int) {
	sink = make([]float64, n)
}

// inline: recurse can never be inlined (stable reason across toolchains).
func hotCall(n int) int {
	return recurse(n)
}

func recurse(n int) int {
	if n <= 1 {
		return 1
	}
	return n * recurse(n-1)
}

var _ = fmt.Sprintf
var _ = math.Pi
