// Package driver is the cmd/iltlint golden fixture: one violation per
// rule, so a full eight-analyzer run exercises the JSON schema, the
// deterministic ordering, and the fixable flag in one package.
package driver

import (
	"fmt"
	"math"
	"os"
	"sync/atomic"

	"repro/internal/grid"
	"repro/internal/telemetry"
)

// floatcmp (fixable: math is imported, both operands float64).
func converged(prev, cur float64) bool {
	return prev == cur
}

// maporder: float fold in map order.
func fold(weights map[string]float64) float64 {
	var total float64
	for _, w := range weights {
		total += w
	}
	return total
}

// scratchalias: the lease escapes via return.
func lease(p *grid.CMatPool, n int) *grid.CMat {
	buf := p.Get(n, n)
	return buf
}

// hotalloc: unguarded Fields literal in a telemetry-instrumented loop.
func instrument(rec *telemetry.Recorder, n int) {
	for i := 0; i < n; i++ {
		rec.Emit("iter", telemetry.Fields{"i": i})
	}
}

// errcheck: dropped Close error.
func drop(f *os.File) {
	f.Close()
}

// gridres: a coarse result meets its fine source in an elementwise op.
func mix(z *grid.Mat, s int) {
	zs := grid.AvgPoolDown(z, s)
	zs.Add(z)
}

// leasepath: the early return drops the lease.
func leak(p *grid.CMatPool, n int, fail bool) {
	buf := p.Get(n, n)
	if fail {
		return
	}
	p.Put(buf)
}

// atomicfield: n is atomic in bump, plain in read.
type ctr struct{ n int64 }

func bump(c *ctr) { atomic.AddInt64(&c.n, 1) }

func read(c *ctr) int64 { return c.n }

var _ = fmt.Sprintf
var _ = math.Pi
