// Package errchecklib is a lint fixture: outside main packages only
// dropped Close/Flush/Sync errors fire — that is where lost writes hide.
package errchecklib

import (
	"bufio"
	"os"
)

func compute() error { return nil }

// Non-closeish dropped errors are tolerated in libraries (vet and review
// handle them); errcheck-lite stays narrow to keep its signal high.
func tolerated() {
	compute()
}

func flushDropped(w *bufio.Writer) {
	w.Flush() // want "unchecked error returned by w.Flush"
}

func closeDropped(f *os.File) {
	f.Close() // want "unchecked error returned by f.Close"
}

// defer f.Close() on read paths is accepted idiom.
func deferred(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return compute()
}

// Folding the Close error into the function result is the sanctioned
// write-path pattern.
func folded(path string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err = f.WriteString("data\n"); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}
