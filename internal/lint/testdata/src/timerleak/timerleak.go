// Package timerleak exercises the timerleak rule's branch-sensitive
// must-release semantics: tickers/timers owe a Stop and context cancel
// funcs owe a call on every path, with the same hand-off discipline as
// leasepath.
package timerleak

import (
	"context"
	"time"
)

// The early return drops the ticker.
func leakTicker(fail bool) {
	t := time.NewTicker(time.Second) // want "time.NewTicker result is not Stopped on every path"
	if fail {
		return
	}
	t.Stop()
}

// Deferred Stop covers every exit: clean.
func cleanTicker(work func()) {
	t := time.NewTicker(time.Second)
	defer t.Stop()
	work()
}

// The error path forgets cancel.
func leakCancel(ctx context.Context, fail bool) error {
	ctx, cancel := context.WithTimeout(ctx, time.Second) // want "cancel func from context.WithTimeout is not called on every path"
	if fail {
		return use(ctx)
	}
	cancel()
	return nil
}

// Deferred cancel: clean.
func cleanCancel(ctx context.Context) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	return use(ctx)
}

// A deferred closure releasing both obligations: clean.
func cleanClosure(ctx context.Context) {
	t := time.NewTimer(time.Second)
	_, cancel := context.WithCancel(ctx)
	defer func() {
		t.Stop()
		cancel()
	}()
	<-t.C
}

// Both arms of the branch release: clean.
func branches(ctx context.Context, which bool) error {
	ctx, cancel := context.WithCancel(ctx)
	if which {
		cancel()
		return nil
	}
	defer cancel()
	return use(ctx)
}

// Returning the ticker hands ownership to the caller: clean.
func handOff() *time.Ticker {
	return time.NewTicker(time.Second)
}

type poller struct {
	t      *time.Ticker
	cancel context.CancelFunc
}

// Storing into the constructed value is a hand-off — poller's own Close
// owns the obligations now: clean here.
func newPoller(ctx context.Context) *poller {
	_, cancel := context.WithCancel(ctx)
	return &poller{t: time.NewTicker(time.Second), cancel: cancel}
}

// Passing the cancel func to a helper is a hand-off: clean.
func delegate(ctx context.Context, register func(context.CancelFunc)) {
	_, cancel := context.WithCancel(ctx)
	register(cancel)
}

// time.Tick's ticker is unreachable: always a finding.
func tick() <-chan time.Time {
	return time.Tick(time.Second) // want "can never be Stopped"
}

// Discarding the cancel func leaks it on every path.
func discard(ctx context.Context) context.Context {
	ctx, _ = context.WithTimeout(ctx, time.Second) // want "cancel func from context.WithTimeout is not called on every path"
	return ctx
}

// Suppressed: a deliberate process-lifetime ticker.
func forever(work func()) {
	//lint:ignore timerleak process-lifetime ticker, never stopped by design
	t := time.NewTicker(time.Minute)
	go func() {
		for range t.C {
			work()
		}
	}()
}

func use(ctx context.Context) error {
	<-ctx.Done()
	return ctx.Err()
}
