// Clean cases: every lease below is released, deferred, handed off, or
// deliberately untrackable — leasepath must stay silent on all of it.
package leasepath

import (
	"errors"
	"sync"

	"repro/internal/grid"
)

// Straight-line Get/use/Put.
func simple(p *grid.CMatPool, n int) {
	buf := p.Get(n, n)
	buf.Data[0] = 1
	p.Put(buf)
}

// A deferred Put covers every exit, including the error return.
func deferred(p *grid.CMatPool, n int, fail bool) error {
	buf := p.Get(n, n)
	defer p.Put(buf)
	if fail {
		return errors.New("boom")
	}
	return nil
}

// A deferred closure releasing the lease counts too.
func deferredClosure(p *grid.MatPool, n int, fail bool) error {
	buf := p.Get(n, n)
	defer func() {
		p.Put(buf)
	}()
	if fail {
		return errors.New("boom")
	}
	return nil
}

// release is a helper whose summary proves it always Puts its parameter.
func release(p *grid.CMatPool, buf *grid.CMat) {
	p.Put(buf)
}

// Released through the helper on every path.
func viaHelper(p *grid.CMatPool, n int) {
	buf := p.Get(n, n)
	buf.Data[0] = 1
	release(p, buf)
}

// passthrough returns its argument: the caller keeps the release duty.
func passthrough(m *grid.CMat) *grid.CMat {
	m.Data[0] = 0
	return m
}

func viaPassthrough(p *grid.CMatPool, n int) {
	buf := passthrough(p.Get(n, n))
	p.Put(buf)
}

// Returning the lease is an explicit hand-off to the caller; whether that
// hand-off is legal is scratchalias's finding, not a leak.
func lend(p *grid.CMatPool, n int) *grid.CMat {
	return p.Get(n, n)
}

// Path-correlated acquire/release: the lease is born on one arm only, so
// tracking ends at the join rather than raising a false alarm.
func correlated(p *grid.CMatPool, n int, banded bool) {
	var prod *grid.CMat
	if banded {
		prod = p.Get(n, n)
	}
	if prod != nil {
		p.Put(prod)
	}
}

// The sanctioned fan-out: leases parked in a container and drained by the
// same function.
func fanOut(p *grid.MatPool, k, n int) {
	acc := make([]*grid.Mat, k)
	for i := 0; i < k; i++ {
		acc[i] = p.Get(n, n)
	}
	for _, m := range acc {
		p.Put(m)
	}
}

// sync.Pool leases follow the same contract, through the type assertion.
func syncPool(p *sync.Pool, fail bool) error {
	bp := p.Get().(*[]byte)
	if fail {
		p.Put(bp)
		return errors.New("boom")
	}
	p.Put(bp)
	return nil
}
