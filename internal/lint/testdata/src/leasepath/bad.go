// Package leasepath is a lint fixture: every function below drops or
// mishandles a pool lease on some path and must fire the leasepath
// analyzer.
package leasepath

import (
	"errors"

	"repro/internal/grid"
)

// The classic: an early error return between Get and Put.
func earlyReturn(p *grid.CMatPool, n int, fail bool) error {
	buf := p.Get(n, n) // want "not released on every path"
	if fail {
		return errors.New("boom")
	}
	p.Put(buf)
	return nil
}

// Rebinding the only alias drops the lease without a Put.
func rebound(p *grid.MatPool, n int) *grid.Mat {
	buf := p.Get(n, n) // want "not released on every path"
	buf = grid.NewMat(n, n)
	return buf
}

// Released in the loop body only: zero iterations leak it.
func loopOnly(p *grid.CMatPool, n, iters int) {
	buf := p.Get(n, n) // want "not released on every path"
	for i := 0; i < iters; i++ {
		p.Put(buf)
	}
}

type cache struct{ m *grid.Mat }

func (c *cache) keep(m *grid.Mat) { c.m = m }

// A helper that stores its parameter: the lease escapes through the call.
func escapesViaHelper(p *grid.MatPool, c *cache, n int) {
	buf := p.Get(n, n)
	c.keep(buf) // want "escapes through this call"
}

// One Put covers one alias; the second lease on the else-arm has no
// release on the return path.
func halfReleased(p *grid.CMatPool, n int, wide bool) {
	a := p.Get(n, n)
	b := p.Get(n, n) // want "not released on every path"
	p.Put(a)
	if wide {
		p.Put(b)
	}
}
