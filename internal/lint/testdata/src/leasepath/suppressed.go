// Suppression: a documented //lint:ignore on the Get line (where leasepath
// anchors its report) silences the finding.
package leasepath

import "repro/internal/grid"

func suppressed(p *grid.CMatPool, n int, fail bool) {
	//lint:ignore leasepath fixture demonstrates an accepted leak on the failure path
	buf := p.Get(n, n)
	if fail {
		return
	}
	p.Put(buf)
}
