package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// LeasePath is the interprocedural upgrade of scratchalias: a pool lease
// (grid.CMatPool/MatPool or sync.Pool Get) must be released or handed off
// on every path out of the function that acquired it — including paths
// that leave early through an error return, and releases that happen
// inside helpers or deferred closures.
//
// Where scratchalias asks "does the lease alias memory beyond this call?",
// leasepath asks the dual question: "does every path dispose of the
// lease?" A lease is disposed by a Put (direct, deferred, inside a
// deferred closure, or inside a callee whose summary proves it always
// releases that parameter), by being returned to the caller (an explicit
// hand-off — scratchalias decides whether that is legal), or by being
// stored into a container for a later drain (the sanctioned ParallelFor
// fan-out). A path that simply drops the lease — the classic
// `if err != nil { return nil, err }` between Get and Put — leaks pool
// memory and, once the pool refills from elsewhere, silently degrades the
// zero-alloc steady state the perf PRs measured.
//
// The analysis is a branch-sensitive must-release walk over each function,
// consulting per-function summaries (summary.go) at call sites so release
// helpers and pass-through functions (fft.ApplyKernelBand returning its
// dst) are followed through the call graph. A lease acquired on only one
// arm of a conditional stops being tracked at the join — path correlation
// like `if banded { prod = Get } … if prod != nil { Put(prod) }` is beyond
// a linter, and a false positive here would train people to ignore the
// rule. Calls into packages outside the analysis set likewise end
// tracking.
var LeasePath = &Analyzer{
	Name: "leasepath",
	Doc:  "flags pool leases (grid pools, sync.Pool) not released or handed off on every path, following helpers and deferred closures",
	Run:  runLeasePath,
}

func runLeasePath(pass *Pass) {
	if pass.Prog == nil {
		return
	}
	if strings.HasSuffix(pass.Pkg.Path(), "internal/grid") {
		// The pool implementation itself hands leases out; the contract
		// binds its clients.
		return
	}
	pkg := pass.Prog.packageOf(pass.Pkg)
	if pkg == nil {
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			lw := newLeaseWalker(pass.Prog, pkg, fd, pass)
			lw.seedGets = true
			lw.walk()
		}
	}
}

// A lease is one tracked pool acquisition (or, in summary mode, one
// tracked parameter).
type lease struct {
	id     int
	pos    token.Pos // Get site (or parameter declaration)
	name   string
	param  int // parameter index in summary mode, -1 for Get leases
	depth  int // function-literal nesting depth at the seed site
	leaked bool

	onReturn func()
	onEscape func()
}

// leaseState is one control-flow path's view: which objects currently
// alias which lease, and which leases are still live (present and true) or
// disposed (present and false). A lease absent from live is untracked on
// this path.
type leaseState struct {
	bind map[types.Object]int
	live map[int]bool
}

func newLeaseState() *leaseState {
	return &leaseState{bind: map[types.Object]int{}, live: map[int]bool{}}
}

func (s *leaseState) clone() *leaseState {
	c := newLeaseState()
	for k, v := range s.bind {
		c.bind[k] = v
	}
	for k, v := range s.live {
		c.live[k] = v
	}
	return c
}

// mergeMust joins two branch states under must-release semantics: a lease
// is disposed only when both arms disposed it, and a lease tracked on only
// one arm (born inside it) becomes untracked — see the analyzer comment on
// path correlation.
func mergeMust(a, b *leaseState) *leaseState {
	m := newLeaseState()
	for id, la := range a.live {
		lb, ok := b.live[id]
		if !ok {
			continue // tracked on one arm only: drop
		}
		m.live[id] = la || lb // live on either arm → still owed a release
	}
	for obj, id := range a.bind {
		if _, ok := m.live[id]; ok {
			m.bind[obj] = id
		}
	}
	for obj, id := range b.bind {
		if _, ok := m.bind[obj]; !ok {
			if _, tracked := m.live[id]; tracked {
				m.bind[obj] = id
			}
		}
	}
	return m
}

type leaseWalker struct {
	prog *Program
	pkg  *Package
	fd   *ast.FuncDecl
	pass *Pass // analyzer mode: leak/escape reporting; nil in summary mode

	seedGets bool
	leases   []*lease
	seeded   *leaseState // pre-seeded parameter bindings (summary mode)
	depth    int         // current function-literal nesting depth
	noExit   int         // >0 while inside a deferred closure: suppress exit checks

	// timerMode repurposes the walker for the timerleak rule: acquisitions
	// are time.NewTicker/NewTimer and the context.With* family instead of
	// pool Gets, disposal is Stop()/invoking the cancel func instead of
	// Put. The must-release path semantics — branches, defers, hand-offs —
	// are identical, which is the point of sharing the walker.
	timerMode bool
	// pendingID/pendingResult carry an acquisition whose obligation lands
	// on a non-first result (context.WithCancel's cancel func is result 1)
	// from the call expression to the enclosing multi-assign.
	pendingID     int
	pendingResult int
}

func newLeaseWalker(prog *Program, pkg *Package, fd *ast.FuncDecl, pass *Pass) *leaseWalker {
	return &leaseWalker{prog: prog, pkg: pkg, fd: fd, pass: pass, seeded: newLeaseState(), pendingID: -1}
}

// seedParam registers parameter i as a tracked lease (summary mode), with
// hooks fired when a path returns or escapes it.
func (w *leaseWalker) seedParam(fd *ast.FuncDecl, i int, onReturn, onEscape func()) {
	obj := paramObject(w.pkg.Info, fd, i)
	if obj == nil {
		return
	}
	l := &lease{id: len(w.leases), pos: obj.Pos(), name: obj.Name(), param: i,
		onReturn: onReturn, onEscape: onEscape}
	w.leases = append(w.leases, l)
	w.seeded.bind[obj] = l.id
	w.seeded.live[l.id] = true
}

// paramObject returns the types.Object of declared parameter i of fd.
func paramObject(info *types.Info, fd *ast.FuncDecl, i int) types.Object {
	if fd.Type.Params == nil {
		return nil
	}
	n := 0
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if n == i {
				return info.Defs[name]
			}
			n++
		}
		if len(field.Names) == 0 {
			n++
		}
	}
	return nil
}

// walk runs the analysis and returns, per parameter index, whether some
// path left that parameter's lease neither released nor handed off.
func (w *leaseWalker) walk() []bool {
	st := w.seeded.clone()
	w.stmt(w.fd.Body, st)
	w.exitCheck(w.fd.Body.End(), st)

	leaked := make([]bool, numParams(w.fd))
	for _, l := range w.leases {
		if l.param >= 0 && l.param < len(leaked) && l.leaked {
			leaked[l.param] = true
		}
	}
	return leaked
}

// exitCheck fires at every path exit: any lease still live that was seeded
// at the current literal depth (or shallower, for the function body's own
// exit) leaks on this path.
func (w *leaseWalker) exitCheck(pos token.Pos, st *leaseState) {
	if w.noExit > 0 {
		return
	}
	for id, live := range st.live {
		if !live {
			continue
		}
		l := w.leases[id]
		if l.depth < w.depth {
			continue // an outer lease is not leaked by an inner return
		}
		if !l.leaked {
			l.leaked = true
			if w.pass != nil && l.param < 0 {
				exit := w.pass.Fset.Position(pos)
				if w.timerMode {
					w.pass.Report(l.pos, nil, timerLeakMsg(l.name), l.name, exit.Line)
				} else {
					w.pass.Report(l.pos, nil,
						"pool lease %s is not released on every path: the exit at line %d neither Puts it nor hands it off (leasepath contract, DESIGN.md)",
						l.name, exit.Line)
				}
			}
		}
	}
}

// newLease seeds a fresh Get-site lease on the current path.
func (w *leaseWalker) newLease(pos token.Pos, name string, st *leaseState) int {
	l := &lease{id: len(w.leases), pos: pos, name: name, param: -1, depth: w.depth}
	w.leases = append(w.leases, l)
	st.live[l.id] = true
	return l.id
}

func (w *leaseWalker) dispose(id int, st *leaseState) {
	if _, ok := st.live[id]; ok {
		st.live[id] = false
	}
}

func (w *leaseWalker) escape(id int, st *leaseState) {
	l := w.leases[id]
	if l.onEscape != nil {
		l.onEscape()
	}
	w.dispose(id, st)
}

// isPoolGet mirrors scratchalias's source set.
func isPoolGet(info *types.Info, call *ast.CallExpr) bool {
	mi, ok := methodInfoOf(info, call)
	if !ok || mi.name != "Get" {
		return false
	}
	if mi.pkg == "sync" && mi.typ == "Pool" {
		return true
	}
	return strings.HasSuffix(mi.pkg, "internal/grid") && (mi.typ == "CMatPool" || mi.typ == "MatPool")
}

func isPoolPut(info *types.Info, call *ast.CallExpr) bool {
	mi, ok := methodInfoOf(info, call)
	if !ok || mi.name != "Put" {
		return false
	}
	if mi.pkg == "sync" && mi.typ == "Pool" {
		return true
	}
	return strings.HasSuffix(mi.pkg, "internal/grid") && (mi.typ == "CMatPool" || mi.typ == "MatPool")
}

// expr evaluates e for lease identity: the returned id is the lease e
// aliases, or -1. Sub-expressions with call effects are processed.
func (w *leaseWalker) expr(e ast.Expr, st *leaseState) int {
	switch e := e.(type) {
	case nil:
		return -1
	case *ast.Ident:
		if obj := w.pkg.Info.ObjectOf(e); obj != nil {
			if id, ok := st.bind[obj]; ok {
				if live, tracked := st.live[id]; tracked && live {
					return id
				}
			}
		}
		return -1
	case *ast.ParenExpr:
		return w.expr(e.X, st)
	case *ast.CallExpr:
		return w.call(e, st)
	case *ast.UnaryExpr:
		w.expr(e.X, st)
		return -1
	case *ast.StarExpr:
		w.expr(e.X, st)
		return -1
	case *ast.SelectorExpr:
		w.expr(e.X, st)
		return -1
	case *ast.IndexExpr:
		w.expr(e.X, st)
		w.expr(e.Index, st)
		return -1
	case *ast.SliceExpr:
		w.expr(e.X, st)
		return -1
	case *ast.TypeAssertExpr:
		// v.(*grid.CMat) preserves identity for sync.Pool leases.
		return w.expr(e.X, st)
	case *ast.BinaryExpr:
		w.expr(e.X, st)
		w.expr(e.Y, st)
		return -1
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if id := w.expr(el, st); id >= 0 {
				// A lease captured in a composite literal is handed off to
				// whatever owns the literal.
				w.escape(id, st)
			}
		}
		return -1
	case *ast.FuncLit:
		// The closure runs in this scope (ParallelFor worker bodies):
		// analyze against the shared state, one literal level deeper.
		w.depth++
		w.stmt(e.Body, st)
		w.depth--
		return -1
	}
	return -1
}

// call processes one call expression: pool Get/Put, summary-informed
// helper effects, and lease pass-through.
func (w *leaseWalker) call(call *ast.CallExpr, st *leaseState) int {
	if w.timerMode {
		return w.timerCall(call, st)
	}
	info := w.pkg.Info
	w.expr(call.Fun, st) // selector bases, inline literals

	if isPoolGet(info, call) {
		for _, a := range call.Args {
			w.expr(a, st)
		}
		if w.seedGets {
			return w.newLease(call.Pos(), exprText(call.Fun), st)
		}
		return -1
	}
	if isPoolPut(info, call) && len(call.Args) == 1 {
		if id := w.expr(call.Args[0], st); id >= 0 {
			w.dispose(id, st)
		}
		return -1
	}

	// Evaluate arguments, remembering which carry leases.
	argLease := make([]int, len(call.Args))
	any := false
	for i, a := range call.Args {
		argLease[i] = w.expr(a, st)
		if argLease[i] >= 0 {
			any = true
		}
	}
	if !any {
		return -1
	}

	sum := w.prog.SummaryFor(w.pkg, call)
	if sum == nil {
		// A callee outside the analysis set (or a dynamic call) swallows
		// the lease: assume a hand-off rather than accuse unseen code.
		for _, id := range argLease {
			if id >= 0 {
				w.dispose(id, st)
			}
		}
		return -1
	}
	result := -1
	for i, id := range argLease {
		if id < 0 {
			continue
		}
		si := i
		if si >= sum.NumParams { // variadic tail collapses onto the last
			si = sum.NumParams - 1
		}
		if si < 0 {
			continue
		}
		switch {
		case sum.Releases[si]:
			w.dispose(id, st)
		case sum.Escapes[si]:
			l := w.leases[id]
			if w.pass != nil && l.param < 0 && !l.leaked {
				l.leaked = true
				w.pass.Report(call.Pos(), nil,
					"pool lease %s escapes through this call: %s stores its parameter %d beyond the call (leasepath contract, DESIGN.md)",
					l.name, calleeText(call), si)
			}
			w.escape(id, st)
		case sum.Returns[si]:
			// Pass-through: the result aliases the same lease (the
			// fft.ApplyKernelBand shape). The argument keeps it too.
			result = id
		}
	}
	return result
}

func calleeText(call *ast.CallExpr) string {
	return exprText(call.Fun)
}

// assign binds or escapes the flow of a lease into one assignment target.
func (w *leaseWalker) assign(lhs ast.Expr, id int, st *leaseState) {
	switch lhs := lhs.(type) {
	case *ast.Ident:
		if lhs.Name == "_" {
			return
		}
		obj := w.pkg.Info.ObjectOf(lhs)
		if obj == nil {
			return
		}
		if id >= 0 {
			if isPackageLevel(obj) {
				w.escape(id, st)
				return
			}
			st.bind[obj] = id
		} else {
			delete(st.bind, obj)
		}
	case *ast.SelectorExpr:
		w.expr(lhs.X, st)
		if id >= 0 {
			w.escape(id, st) // field store: scratchalias's finding to make
		}
	case *ast.IndexExpr:
		w.expr(lhs.X, st)
		w.expr(lhs.Index, st)
		if id >= 0 {
			// Container hand-off: the sanctioned fan-out (contribs[k] = c,
			// drained and Put by the enclosing function).
			w.escape(id, st)
		}
	case *ast.StarExpr:
		w.expr(lhs.X, st)
		if id >= 0 {
			w.escape(id, st)
		}
	}
}

// stmt walks one statement under must-release semantics.
func (w *leaseWalker) stmt(s ast.Stmt, st *leaseState) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, sub := range s.List {
			w.stmt(sub, st)
		}
	case *ast.ExprStmt:
		w.expr(s.X, st)
		// A path ending in panic crashes out; pool state is moot there.
		if call, ok := unparen(s.X).(*ast.CallExpr); ok {
			if id, ok := unparen(call.Fun).(*ast.Ident); ok {
				if _, isBuiltin := w.pkg.Info.ObjectOf(id).(*types.Builtin); isBuiltin && id.Name == "panic" {
					for lid := range st.live {
						st.live[lid] = false
					}
				}
			}
		}
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
			w.pendingID = -1
			id := w.expr(s.Rhs[0], st)
			// Multi-assign from one call: the lease (if any) lands on the
			// first alias-capable target — unless the acquisition declared
			// a different result index (context.WithCancel's cancel func,
			// result 1), carried here via pendingID/pendingResult.
			target := 0
			if id < 0 && w.pendingID >= 0 {
				id, target = w.pendingID, w.pendingResult
				w.pendingID = -1
			}
			for i, l := range s.Lhs {
				if i == target {
					w.assign(l, id, st)
				} else {
					w.assign(l, -1, st)
				}
			}
			return
		}
		for i, l := range s.Lhs {
			if i < len(s.Rhs) {
				w.assign(l, w.expr(s.Rhs[i], st), st)
			}
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				if len(vs.Values) == 1 && len(vs.Names) > 1 {
					w.pendingID = -1
					id := w.expr(vs.Values[0], st)
					target := 0
					if id < 0 && w.pendingID >= 0 {
						id, target = w.pendingID, w.pendingResult
						w.pendingID = -1
					}
					for i, name := range vs.Names {
						if i == target {
							w.assign(name, id, st)
						} else {
							w.assign(name, -1, st)
						}
					}
					continue
				}
				for i, name := range vs.Names {
					if i < len(vs.Values) {
						w.assign(name, w.expr(vs.Values[i], st), st)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			if id := w.expr(r, st); id >= 0 {
				l := w.leases[id]
				if l.onReturn != nil {
					l.onReturn()
				}
				w.dispose(id, st) // hand-off to the caller
			}
		}
		w.exitCheck(s.Pos(), st)
	case *ast.SendStmt:
		w.expr(s.Chan, st)
		if id := w.expr(s.Value, st); id >= 0 {
			w.escape(id, st) // scratchalias reports the send itself
		}
	case *ast.IfStmt:
		w.stmt(s.Init, st)
		w.expr(s.Cond, st)
		thenSt := st.clone()
		w.stmt(s.Body, thenSt)
		elseSt := st.clone()
		w.stmt(s.Else, elseSt)
		*st = *mergeMust(thenSt, elseSt)
	case *ast.ForStmt:
		w.stmt(s.Init, st)
		w.expr(s.Cond, st)
		body := st.clone()
		w.stmt(s.Body, body)
		w.stmt(s.Post, body)
		*st = *mergeMust(st, body)
	case *ast.RangeStmt:
		w.expr(s.X, st)
		body := st.clone()
		for _, v := range []ast.Expr{s.Key, s.Value} {
			if v != nil {
				w.assign(v, -1, body)
			}
		}
		w.stmt(s.Body, body)
		*st = *mergeMust(st, body)
	case *ast.SwitchStmt:
		w.stmt(s.Init, st)
		w.expr(s.Tag, st)
		w.branches(st, caseBodies(s.Body), hasDefaultClause(s.Body))
	case *ast.TypeSwitchStmt:
		w.stmt(s.Init, st)
		w.stmt(s.Assign, st)
		w.branches(st, caseBodies(s.Body), hasDefaultClause(s.Body))
	case *ast.SelectStmt:
		var bodies [][]ast.Stmt
		def := false
		for _, c := range s.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			if cc.Comm == nil {
				def = true
			}
			bodies = append(bodies, append([]ast.Stmt{}, cc.Body...))
		}
		w.branches(st, bodies, def)
	case *ast.DeferStmt:
		// A deferred Put (or release helper, or closure containing one)
		// runs at every subsequent exit: apply its release effects now.
		// Exit checks inside a deferred closure are suppressed — its
		// returns end the defer, not the function.
		w.noExit++
		if lit, ok := unparen(s.Call.Fun).(*ast.FuncLit); ok {
			w.depth++
			w.stmt(lit.Body, st)
			w.depth--
		} else {
			w.expr(s.Call, st)
		}
		w.noExit--
	case *ast.GoStmt:
		if lit, ok := unparen(s.Call.Fun).(*ast.FuncLit); ok {
			w.depth++
			w.stmt(lit.Body, st)
			w.depth--
		} else {
			w.expr(s.Call, st)
		}
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, st)
	case *ast.IncDecStmt:
		w.expr(s.X, st)
	}
}

// branches merges a set of alternative bodies. Without a default clause
// the fall-through (no case taken) path keeps the incoming state in the
// merge; with one, some body always runs.
func (w *leaseWalker) branches(st *leaseState, bodies [][]ast.Stmt, hasDefault bool) {
	var merged *leaseState
	for _, body := range bodies {
		branch := st.clone()
		for _, sub := range body {
			w.stmt(sub, branch)
		}
		if merged == nil {
			merged = branch
		} else {
			merged = mergeMust(merged, branch)
		}
	}
	if merged == nil {
		return
	}
	if !hasDefault {
		merged = mergeMust(merged, st)
	}
	*st = *merged
}

func caseBodies(body *ast.BlockStmt) [][]ast.Stmt {
	var out [][]ast.Stmt
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok {
			out = append(out, cc.Body)
		}
	}
	return out
}

func hasDefaultClause(body *ast.BlockStmt) bool {
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}

// methodInfoOf is the Pass-free form of Pass.method (callgraph and
// summaries run before any Pass exists).
func methodInfoOf(info *types.Info, call *ast.CallExpr) (methodInfo, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return methodInfo{}, false
	}
	fn, ok := info.ObjectOf(sel.Sel).(*types.Func)
	if !ok {
		return methodInfo{}, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return methodInfo{}, false
	}
	rt := sig.Recv().Type()
	if ptr, ok := rt.(*types.Pointer); ok {
		rt = ptr.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok {
		return methodInfo{}, false
	}
	mi := methodInfo{typ: named.Obj().Name(), name: fn.Name()}
	if named.Obj().Pkg() != nil {
		mi.pkg = named.Obj().Pkg().Path()
	}
	return mi, true
}
