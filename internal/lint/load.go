package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"repro/internal/grid"
)

// Package is one parsed, type-checked, in-module package ready for
// analysis.
type Package struct {
	Path  string
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	// GoFiles are the package's source file base names in build order —
	// exactly what `go tool compile` must be handed to reproduce the
	// compiler's view of the package (gcdiag.go).
	GoFiles []string
	// Exports maps every import path in the load's dependency closure to
	// its compiler export-data file. Shared by all packages of one load;
	// gcdiag.go turns it into an -importcfg.
	Exports map[string]string
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load locates the packages matching patterns with `go list` (run in dir;
// "" means the current directory), parses their non-test sources and
// type-checks them from source. Imports — including the standard library —
// resolve through the compiler export data `go list -export` leaves in the
// build cache, so no dependency is ever re-checked and the module needs no
// loader dependency.
//
// Test files are deliberately excluded: they are where bit-exactness
// assertions and fixture abuse legitimately live, and the invariants the
// analyzers guard are production-path contracts.
func Load(dir string, patterns ...string) ([]*Package, *token.FileSet, error) {
	return LoadWorkers(dir, 1, patterns...)
}

// LoadWorkers is Load with parsing fanned out across workers goroutines
// per the repo's Workers convention (≤ 0 means GOMAXPROCS). Parsing
// dominates load time and each file is independent; a token.FileSet is
// safe for concurrent use, so files land in the shared set from any
// worker. Type-checking stays serial: packages must check in dependency
// order against one importer, and the importer's export-data cache is not
// synchronized.
func LoadWorkers(dir string, workers int, patterns ...string) ([]*Package, *token.FileSet, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-e", "-deps", "-export",
		"-json=ImportPath,Dir,Name,GoFiles,Export,Standard,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := map[string]string{}
	var roots []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("decoding go list output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if p.DepOnly || p.Standard {
			continue
		}
		if p.Error != nil {
			return nil, nil, fmt.Errorf("loading %s: %s", p.ImportPath, p.Error.Err)
		}
		if len(p.GoFiles) == 0 {
			continue // test-only directory
		}
		roots = append(roots, p)
	}
	if len(roots) == 0 {
		return nil, nil, fmt.Errorf("no packages matched %s", strings.Join(patterns, " "))
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		e, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(e)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	// Parse every root file in parallel; results keep source order.
	type parseJob struct {
		pkg, file int
		path      string
	}
	var jobs []parseJob
	parsed := make([][]*ast.File, len(roots))
	for pi, p := range roots {
		parsed[pi] = make([]*ast.File, len(p.GoFiles))
		for fi, name := range p.GoFiles {
			jobs = append(jobs, parseJob{pkg: pi, file: fi, path: filepath.Join(p.Dir, name)})
		}
	}
	parseErrs := make([]error, len(jobs))
	grid.ParallelFor(workers, len(jobs), func(i int) {
		j := jobs[i]
		af, err := parser.ParseFile(fset, j.path, nil,
			parser.ParseComments|parser.SkipObjectResolution)
		parsed[j.pkg][j.file] = af
		parseErrs[i] = err
	})
	for _, err := range parseErrs {
		if err != nil {
			return nil, nil, err
		}
	}

	var pkgs []*Package
	for pi, p := range roots {
		files := parsed[pi]
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		}
		var typeErrs []string
		conf := types.Config{
			Importer: imp,
			Error: func(err error) {
				if len(typeErrs) < 10 {
					typeErrs = append(typeErrs, err.Error())
				}
			},
		}
		tpkg, err := conf.Check(p.ImportPath, fset, files, info)
		if len(typeErrs) > 0 {
			return nil, nil, fmt.Errorf("type-checking %s:\n  %s", p.ImportPath, strings.Join(typeErrs, "\n  "))
		}
		if err != nil {
			return nil, nil, fmt.Errorf("type-checking %s: %v", p.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			Path:    p.ImportPath,
			Dir:     p.Dir,
			Files:   files,
			Types:   tpkg,
			Info:    info,
			GoFiles: p.GoFiles,
			Exports: exports,
		})
	}
	return pkgs, fset, nil
}
