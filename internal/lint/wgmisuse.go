package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// WGMisuse flags the WaitGroup and lock-copy mistakes `go vet`'s
// intraprocedural copylocks pass cannot see, using the interprocedural
// ConcSummaries (concsummary.go):
//
//   - WaitGroup.Add inside the spawned goroutine (directly, or by passing
//     the WaitGroup to a callee whose summary says it Adds): the spawner
//     can reach Wait before the goroutine has run Add, so Wait returns
//     while work is still in flight. Add must happen on the spawning
//     side, before the `go`.
//   - Add after a goroutine is already Waiting on the group (the Wait
//     lives inside an earlier `go` closure in the same function): Wait
//     may have observed zero and returned; reuse races. Sequential
//     Add-after-Wait is legal WaitGroup reuse and is not flagged.
//   - a value whose type (transitively) contains a sync.Mutex, RWMutex,
//     WaitGroup, Cond or Once passed by value to a callee that
//     synchronizes on that parameter: the callee locks a copy, so the
//     synchronization protects nothing. vet's copylocks sees the copy;
//     only the summary knows the callee actually syncs on it.
//   - a value-receiver method that locks or Adds on receiver state: every
//     call synchronizes on a fresh copy of the receiver.
var WGMisuse = &Analyzer{
	Name: "wgmisuse",
	Doc:  "flags WaitGroup.Add inside the spawned goroutine, Add racing an async Wait, and lock/WaitGroup values copied into callees that synchronize on them (interprocedural, beyond vet copylocks)",
	Run:  runWGMisuse,
}

func runWGMisuse(pass *Pass) {
	prog := pass.Prog
	if prog == nil {
		return
	}
	pkg := prog.packageOf(pass.Pkg)
	if pkg == nil {
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkValueReceiverSync(pass, fd)
			checkWGFlow(pass, prog, fd)
		}
	}
}

// containsSyncLock reports whether t transitively holds sync state that
// must not be copied. Pointers, maps, channels and interfaces break the
// chain — copying a reference is fine.
func containsSyncLock(t types.Type) bool {
	seen := map[types.Type]bool{}
	var walk func(t types.Type) bool
	walk = func(t types.Type) bool {
		if t == nil || seen[t] {
			return false
		}
		seen[t] = true
		switch name := syncTypeName(t); name {
		case "Mutex", "RWMutex", "WaitGroup", "Cond", "Once":
			// A *sync.Mutex value is a reference; only the bare type counts.
			if _, isPtr := t.(*types.Pointer); !isPtr {
				return true
			}
			return false
		}
		switch u := t.Underlying().(type) {
		case *types.Struct:
			for i := 0; i < u.NumFields(); i++ {
				if walk(u.Field(i).Type()) {
					return true
				}
			}
		case *types.Array:
			return walk(u.Elem())
		}
		return false
	}
	return walk(t)
}

// checkValueReceiverSync flags a value-receiver method whose body performs
// a sync operation on receiver state of a lock-containing type.
func checkValueReceiverSync(pass *Pass, fd *ast.FuncDecl) {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return
	}
	if _, isPtr := fd.Recv.List[0].Type.(*ast.StarExpr); isPtr {
		return
	}
	recvObj := pass.Info.Defs[fd.Recv.List[0].Names[0]]
	if recvObj == nil || !containsSyncLock(recvObj.Type()) {
		return
	}
	reported := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || reported {
			return !reported
		}
		var recv ast.Expr
		if _, r, isMu := mutexOp(pass.Info, call); isMu {
			recv = r
		} else if _, r, isWG := wgOp(pass.Info, call); isWG {
			recv = r
		} else {
			return true
		}
		if baseIdentObj(pass.Info, recv) == recvObj {
			reported = true
			pass.Report(call.Pos(), nil,
				"method %s has a value receiver but synchronizes on receiver state: every call locks a fresh copy, protecting nothing — use a pointer receiver (wgmisuse)",
				fd.Name.Name)
			return false
		}
		return true
	})
}

// derefText renders an argument for messages with any leading & stripped:
// the finding is about the WaitGroup, not the pointer to it.
func derefText(e ast.Expr) string {
	if u, ok := unparen(e).(*ast.UnaryExpr); ok && u.Op == token.AND {
		return exprText(u.X)
	}
	return exprText(e)
}

// wgAddSite is one non-spawned WaitGroup.Add observed during the flow walk.
type wgAddSite struct {
	obj types.Object
	pos token.Pos
}

// checkWGFlow walks one function tracking spawned-goroutine context for
// the Add-in-goroutine and Add-after-async-Wait rules and the
// copied-lock-argument rule.
func checkWGFlow(pass *Pass, prog *Program, fd *ast.FuncDecl) {
	var adds []wgAddSite
	asyncWait := map[types.Object]token.Pos{} // wg obj -> pos of the `go` spawning its Waiter

	declaredOutside := func(obj types.Object, lit *ast.FuncLit) bool {
		return obj != nil && (obj.Pos() < lit.Pos() || obj.Pos() >= lit.End())
	}

	// checkCall handles a call in context: copied-lock args always, and
	// the interprocedural Add when the call runs on a spawned goroutine.
	checkCall := func(call *ast.CallExpr, goLit *ast.FuncLit, isGoCall bool) {
		callee := prog.Funcs[staticCalleeKey(pass.Info, call)]
		if callee == nil || callee.Conc == nil {
			return
		}
		cs := callee.Conc
		for i, a := range call.Args {
			if i >= len(cs.SyncsParam) {
				break
			}
			if cs.SyncsParam[i] {
				if t := pass.TypeOf(a); t != nil && containsSyncLock(t) {
					pass.Report(a.Pos(), nil,
						"%s is passed by value to %s, which synchronizes on that parameter: the callee locks a copy — pass a pointer (wgmisuse)",
						derefText(a), callee.Decl.Name.Name)
				}
			}
			if cs.AddsWGParam[i] && (isGoCall || goLit != nil) {
				obj := baseIdentObj(pass.Info, a)
				if isGoCall || declaredOutside(obj, goLit) {
					pass.Report(a.Pos(), nil,
						"WaitGroup %s reaches %s, which calls Add on it, from inside the spawned goroutine: the spawner can Wait before Add runs — Add before the go statement (wgmisuse)",
						derefText(a), callee.Decl.Name.Name)
				}
			}
		}
	}

	var walk func(n ast.Node, goLit *ast.FuncLit)
	walk = func(n ast.Node, goLit *ast.FuncLit) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.GoStmt:
				if lit, ok := unparen(m.Call.Fun).(*ast.FuncLit); ok {
					walk(lit.Body, lit)
				} else {
					checkCall(m.Call, goLit, true)
					for _, a := range m.Call.Args {
						walk(a, goLit)
					}
				}
				return false
			case *ast.FuncLit:
				// A non-go literal inherits the current context: a helper
				// closure defined inside a spawned goroutine still runs
				// there.
				walk(m.Body, goLit)
				return false
			case *ast.CallExpr:
				if name, recv, ok := wgOp(pass.Info, m); ok {
					obj := baseIdentObj(pass.Info, recv)
					switch name {
					case "Add":
						if goLit != nil && declaredOutside(obj, goLit) {
							pass.Report(m.Pos(), nil,
								"WaitGroup.Add inside the spawned goroutine: the spawner can Wait before this Add runs and return with work in flight — Add before the go statement (wgmisuse)")
						} else if goLit == nil && obj != nil {
							adds = append(adds, wgAddSite{obj: obj, pos: m.Pos()})
						}
					case "Wait":
						if goLit != nil && obj != nil {
							if _, ok := asyncWait[obj]; !ok {
								asyncWait[obj] = goLit.Pos()
							}
						}
					}
					return true
				}
				checkCall(m, goLit, false)
				return true
			}
			return true
		})
	}
	walk(fd.Body, nil)

	for _, add := range adds {
		if goPos, ok := asyncWait[add.obj]; ok && add.pos > goPos {
			pass.Report(add.pos, nil,
				"WaitGroup.Add after a goroutine is already Waiting on the group: Wait may have observed zero and returned — Add every count before the Waiter starts (wgmisuse)")
		}
	}
}
