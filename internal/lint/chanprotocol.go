package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ChanProtocol enforces the channel conventions the serving arc depends
// on (DESIGN.md, "Concurrency invariants"):
//
//   - an unbuffered channel send on a server-reachable path must carry an
//     escape — a `default` clause or a ctx.Done()/quit-channel case in the
//     enclosing select. A bare send blocks the handler forever the moment
//     its receiver is gone; on the serving arc that is a leaked goroutine
//     per request.
//   - a channel is closed exactly once, by its owner. Two closes on the
//     same path (must-semantics: both arms of a branch closing is fine,
//     a straight-line second close is not) panic at runtime; a close of a
//     bidirectional channel parameter closes a channel the function was
//     handed, not one it owns — the owner keeps `chan T` and hands
//     receivers `<-chan T`, or the closer declares ownership by taking
//     `chan<- T`.
//   - a send after a close on the same path panics unconditionally.
//
// Bufferedness is resolved from make-sites within the analyzed package:
// a channel object every observed make-site declares unbuffered (no
// capacity, or constant 0) is unbuffered; conflicting or non-constant
// sites make it unknown and exempt. Closes deferred to function exit are
// not path-tracked — `defer close(done)` is the ownership idiom, not a
// hazard.
var ChanProtocol = &Analyzer{
	Name: "chanprotocol",
	Doc:  "flags unbuffered sends without a default/ctx.Done() escape on server-reachable paths, double-close and send-after-close on one path, and close of a bidirectional channel parameter (ownership heuristic)",
	Run:  runChanProtocol,
}

func runChanProtocol(pass *Pass) {
	prog := pass.Prog
	if prog == nil {
		return
	}
	pkg := prog.packageOf(pass.Pkg)
	if pkg == nil {
		return
	}
	buf := scanChanBuffering(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fi := prog.FuncOf(pkg, fd)
			if fi != nil && prog.ServerReachable[fi.Key] {
				checkUnbufferedSends(pass, fd, buf)
			}
			cw := &closeWalker{pass: pass, fd: fd}
			cw.stmt(fd.Body, map[types.Object]token.Pos{})
		}
	}
}

// chanObjOf resolves the channel operand to its variable or field object.
func chanObjOf(info *types.Info, e ast.Expr) types.Object {
	switch e := unparen(e).(type) {
	case *ast.Ident:
		return info.ObjectOf(e)
	case *ast.SelectorExpr:
		return info.ObjectOf(e.Sel)
	}
	return nil
}

// bufState is what the make-sites of one package say about a channel.
type bufState int

const (
	bufUnbuffered bufState = iota + 1
	bufBuffered
	bufUnknown
)

// scanChanBuffering maps channel objects to their observed bufferedness:
// every assignment, declaration and composite-literal field whose value is
// a make(chan ...) site votes; disagreeing votes make the object unknown.
func scanChanBuffering(pass *Pass) map[types.Object]bufState {
	out := map[types.Object]bufState{}
	vote := func(obj types.Object, s bufState) {
		if obj == nil || s == 0 {
			return
		}
		if prev, ok := out[obj]; ok && prev != s {
			out[obj] = bufUnknown
			return
		}
		out[obj] = s
	}
	makeState := func(e ast.Expr) bufState {
		call, ok := unparen(e).(*ast.CallExpr)
		if !ok {
			return 0
		}
		id, ok := unparen(call.Fun).(*ast.Ident)
		if !ok || id.Name != "make" || len(call.Args) == 0 {
			return 0
		}
		if _, isChan := pass.TypeOf(call.Args[0]).(*types.Chan); !isChan {
			return 0
		}
		if len(call.Args) == 1 {
			return bufUnbuffered
		}
		tv, ok := pass.Info.Types[call.Args[1]]
		if !ok || tv.Value == nil {
			return bufUnknown
		}
		if tv.Value.String() == "0" {
			return bufUnbuffered
		}
		return bufBuffered
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) != len(n.Rhs) {
					return true
				}
				for i := range n.Lhs {
					vote(chanObjOf(pass.Info, n.Lhs[i]), makeState(n.Rhs[i]))
				}
			case *ast.ValueSpec:
				if len(n.Names) != len(n.Values) {
					return true
				}
				for i := range n.Names {
					vote(pass.Info.ObjectOf(n.Names[i]), makeState(n.Values[i]))
				}
			case *ast.KeyValueExpr:
				if key, ok := n.Key.(*ast.Ident); ok {
					vote(pass.Info.ObjectOf(key), makeState(n.Value))
				}
			}
			return true
		})
	}
	return out
}

// checkUnbufferedSends reports sends on known-unbuffered channels in one
// server-reachable function unless the enclosing select carries an escape.
// Sends in a select clause body are ordinary bare sends — only the comm
// position is protected by the select.
func checkUnbufferedSends(pass *Pass, fd *ast.FuncDecl, buf map[types.Object]bufState) {
	report := func(send *ast.SendStmt) {
		obj := chanObjOf(pass.Info, send.Chan)
		if obj == nil || buf[obj] != bufUnbuffered {
			return
		}
		pass.Report(send.Arrow, nil,
			"send on unbuffered channel %s on a server-reachable path has no default or ctx.Done() escape: a missing receiver blocks this goroutine forever — select with a cancellation case, or buffer the channel (chanprotocol contract, DESIGN.md)",
			exprText(send.Chan))
	}
	var visit func(n ast.Node)
	visit = func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.SelectStmt:
				esc := selectHasEscape(pass, m)
				for _, c := range m.Body.List {
					cc, ok := c.(*ast.CommClause)
					if !ok {
						continue
					}
					if send, isSend := cc.Comm.(*ast.SendStmt); isSend && !esc {
						report(send)
					}
					for _, b := range cc.Body {
						visit(b)
					}
				}
				return false
			case *ast.SendStmt:
				report(m)
				return true
			}
			return true
		})
	}
	visit(fd.Body)
}

// selectHasEscape reports whether sel can always make progress: a default
// clause, or a receive case on a cancellation signal (ctx.Done(), or a
// channel whose name says done/quit/stop/cancel/closing).
func selectHasEscape(pass *Pass, sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		if cc.Comm == nil {
			return true // default
		}
		if recvEscapeChan(pass, cc.Comm) {
			return true
		}
	}
	return false
}

// recvEscapeChan reports whether comm is a receive from a cancellation
// channel.
func recvEscapeChan(pass *Pass, comm ast.Stmt) bool {
	var recv ast.Expr
	switch c := comm.(type) {
	case *ast.ExprStmt:
		recv = c.X
	case *ast.AssignStmt:
		if len(c.Rhs) == 1 {
			recv = c.Rhs[0]
		}
	}
	u, ok := unparen(recv).(*ast.UnaryExpr)
	if !ok || u.Op != token.ARROW {
		return false
	}
	switch x := unparen(u.X).(type) {
	case *ast.CallExpr:
		// <-ctx.Done() and friends: any method named Done on any receiver.
		if sel, ok := x.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
			return true
		}
	case *ast.Ident:
		return isCancelName(x.Name)
	case *ast.SelectorExpr:
		return isCancelName(x.Sel.Name)
	}
	return false
}

func isCancelName(name string) bool {
	lower := strings.ToLower(name)
	for _, w := range []string{"done", "quit", "stop", "cancel", "closing", "shutdown"} {
		if strings.Contains(lower, w) {
			return true
		}
	}
	return false
}

// A closeWalker tracks which channels are must-closed along the current
// path: closed on every way to reach this point. Branch arms walk clones;
// a channel joins the post-branch set only when every arm closed it, so
// an if/else that closes on exactly one side stays clean.
type closeWalker struct {
	pass *Pass
	fd   *ast.FuncDecl
}

func cloneClosed(m map[types.Object]token.Pos) map[types.Object]token.Pos {
	c := make(map[types.Object]token.Pos, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

// mergeClosed folds the arm results into base: an object closed in every
// arm (and absent from base) becomes closed after the join.
func mergeClosed(base map[types.Object]token.Pos, arms []map[types.Object]token.Pos) {
	if len(arms) == 0 {
		return
	}
	for obj, pos := range arms[0] {
		if _, ok := base[obj]; ok {
			continue
		}
		inAll := true
		for _, a := range arms[1:] {
			if _, ok := a[obj]; !ok {
				inAll = false
				break
			}
		}
		if inAll {
			base[obj] = pos
		}
	}
}

func (w *closeWalker) stmt(s ast.Stmt, closed map[types.Object]token.Pos) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, sub := range s.List {
			w.stmt(sub, closed)
		}
	case *ast.ExprStmt:
		w.expr(s.X, closed)
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			w.expr(r, closed)
		}
		// Reassigning a closed channel revives it: make(chan) on the rhs
		// means the old closed value is gone.
		for i, l := range s.Lhs {
			if i < len(s.Rhs) {
				if obj := chanObjOf(w.pass.Info, l); obj != nil {
					delete(closed, obj)
				}
			}
		}
	case *ast.SendStmt:
		if obj := chanObjOf(w.pass.Info, s.Chan); obj != nil {
			if _, isClosed := closed[obj]; isClosed {
				w.pass.Report(s.Arrow, nil,
					"send on channel %s after it is closed on this path: panics at runtime — the owner closes only after the last send (chanprotocol contract, DESIGN.md)",
					exprText(s.Chan))
			}
		}
		w.expr(s.Value, closed)
	case *ast.IfStmt:
		w.stmt(s.Init, closed)
		w.expr(s.Cond, closed)
		thenC := cloneClosed(closed)
		w.stmt(s.Body, thenC)
		if s.Else != nil {
			elseC := cloneClosed(closed)
			w.stmt(s.Else, elseC)
			mergeClosed(closed, []map[types.Object]token.Pos{thenC, elseC})
		}
	case *ast.ForStmt:
		w.stmt(s.Init, closed)
		w.expr(s.Cond, closed)
		body := cloneClosed(closed)
		w.stmt(s.Body, body)
		w.stmt(s.Post, body)
	case *ast.RangeStmt:
		w.expr(s.X, closed)
		w.stmt(s.Body, cloneClosed(closed))
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		var body *ast.BlockStmt
		switch sw := s.(type) {
		case *ast.SwitchStmt:
			w.stmt(sw.Init, closed)
			w.expr(sw.Tag, closed)
			body = sw.Body
		case *ast.TypeSwitchStmt:
			w.stmt(sw.Init, closed)
			body = sw.Body
		case *ast.SelectStmt:
			body = sw.Body
		}
		for _, c := range body.List {
			arm := cloneClosed(closed)
			switch cc := c.(type) {
			case *ast.CaseClause:
				for _, sub := range cc.Body {
					w.stmt(sub, arm)
				}
			case *ast.CommClause:
				w.stmt(cc.Comm, arm)
				for _, sub := range cc.Body {
					w.stmt(sub, arm)
				}
			}
		}
	case *ast.GoStmt:
		// The goroutine observes the closes that happened before the spawn;
		// its own closes do not order against the spawner's continuation.
		if lit, ok := unparen(s.Call.Fun).(*ast.FuncLit); ok {
			w.stmt(lit.Body, cloneClosed(closed))
		} else {
			for _, a := range s.Call.Args {
				w.expr(a, closed)
			}
		}
	case *ast.DeferStmt:
		// `defer close(done)` is the ownership idiom — it runs at exit,
		// after every path-tracked statement, so it is not path-tracked.
		for _, a := range s.Call.Args {
			w.expr(a, closed)
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.expr(r, closed)
		}
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, closed)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.expr(v, closed)
					}
				}
			}
		}
	case *ast.IncDecStmt:
		w.expr(s.X, closed)
	}
}

func (w *closeWalker) expr(e ast.Expr, closed map[types.Object]token.Pos) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := unparen(n.Fun).(*ast.Ident); ok && id.Name == "close" && len(n.Args) == 1 {
				if _, isBuiltin := w.pass.Info.ObjectOf(id).(*types.Builtin); isBuiltin {
					w.close(n, closed)
					return false
				}
			}
			return true
		case *ast.FuncLit:
			// Execution time of a stored closure is unknown; its closes do
			// not flow back.
			w.stmt(n.Body, cloneClosed(closed))
			return false
		}
		return true
	})
}

// close handles one close(ch) call: double-close on the path, then the
// ownership heuristic for bidirectional channel parameters.
func (w *closeWalker) close(call *ast.CallExpr, closed map[types.Object]token.Pos) {
	arg := call.Args[0]
	obj := chanObjOf(w.pass.Info, arg)
	if obj == nil {
		return
	}
	if _, isClosed := closed[obj]; isClosed {
		w.pass.Report(call.Pos(), nil,
			"second close of channel %s on this path: close panics on a closed channel — a channel is closed exactly once, by its owner (chanprotocol contract, DESIGN.md)",
			exprText(arg))
	} else {
		closed[obj] = call.Pos()
	}
	if w.isBidiParam(obj) {
		w.pass.Report(call.Pos(), nil,
			"close of bidirectional channel parameter %s: the callee does not own a channel it was handed — the owner should pass receivers <-chan, or this signature should declare ownership with chan<- (chanprotocol contract, DESIGN.md)",
			exprText(arg))
	}
}

// isBidiParam reports whether obj is a parameter of the walked function
// with an unrestricted (bidirectional) channel type.
func (w *closeWalker) isBidiParam(obj types.Object) bool {
	if w.fd == nil || paramIndex(w.pass.Info, w.fd, obj) < 0 {
		return false
	}
	ch, ok := obj.Type().Underlying().(*types.Chan)
	return ok && ch.Dir() == types.SendRecv
}
