package lint

import (
	"go/ast"
	"go/types"
)

// ErrCheck is a deliberately narrow unchecked-error analyzer ("errcheck-
// lite"): it flags call statements that drop an error return
//
//   - anywhere, when the callee is named Close, Flush or Sync — the paths
//     where a dropped error silently truncates a trace, a manifest, a PNG
//     or a layout file; and
//   - throughout main packages (cmd/, examples/), where a dropped error
//     is the difference between a failing exit code and silent garbage.
//
// fmt.Print/Fprint-to-stream calls are exempt (their error is interactive
// I/O), and an explicit `_ =` assignment is accepted as a statement that
// the error was considered. Deferred calls are not flagged: `defer
// f.Close()` on read paths is accepted idiom, and write paths flush
// explicitly before returning.
var ErrCheck = &Analyzer{
	Name: "errcheck",
	Doc:  "flags unchecked error returns on Close/Flush/Sync paths and in main packages",
	Run:  runErrCheck,
}

var closeishNames = map[string]bool{"Close": true, "Flush": true, "Sync": true}

func runErrCheck(pass *Pass) {
	isMain := pass.Pkg.Name() == "main"
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			es, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := es.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !returnsError(pass, call) {
				return true
			}
			name, closeish := calleeName(pass, call)
			if pkg, fn, ok := pass.pkgFunc(call); ok && pkg == "fmt" && fmtOutputFuncs[fn] {
				return true
			}
			if closeish {
				pass.Report(call.Pos(), nil,
					"unchecked error returned by %s; Close/Flush/Sync errors are where lost writes hide — handle or fold into the function's error", name)
				return true
			}
			if isMain {
				pass.Report(call.Pos(), nil,
					"unchecked error returned by %s in a main package; handle it or assign to _ deliberately", name)
			}
			return true
		})
	}
}

// returnsError reports whether the call yields at least one error value.
func returnsError(pass *Pass, call *ast.CallExpr) bool {
	t := pass.TypeOf(call)
	if t == nil {
		return false
	}
	if tup, ok := t.(*types.Tuple); ok {
		for i := 0; i < tup.Len(); i++ {
			if isErrorType(tup.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isErrorType(t)
}

var errorType = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool {
	return types.Identical(t, errorType)
}

// calleeName renders the callee for messages and classifies Close/Flush/
// Sync method or function names.
func calleeName(pass *Pass, call *ast.CallExpr) (string, bool) {
	if mi, ok := pass.method(call); ok {
		return exprText(call.Fun), closeishNames[mi.name]
	}
	if _, name, ok := pass.pkgFunc(call); ok {
		return exprText(call.Fun), closeishNames[name]
	}
	return exprText(call.Fun), false
}
