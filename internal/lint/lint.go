// Package lint is a repo-specific static-analysis framework built entirely
// on the standard library: packages are located with `go list -json -deps
// -export`, parsed with go/parser and type-checked with go/types against
// the compiler's export data, so the module stays zero-dependency.
//
// The analyzers in this package mechanically enforce the invariants the
// perf PRs proved by hand and that reviewer vigilance alone would lose:
//
//   - floatcmp      — no ==/!= on float/complex operands (bit-exactness
//     contract of the parallel SOCS and band-pruned FFT equivalence work)
//   - maporder      — no map-iteration order reaching trace events, JSON
//     or file output, and no float reductions folded in map order
//     (determinism contract)
//   - scratchalias  — pool-leased scratch (grid.CMatPool/MatPool,
//     sync.Pool) must not escape its call scope
//   - hotalloc      — no Sprintf/closures/map-or-slice literals inside
//     telemetry-instrumented hot loops unless guarded by
//     Recorder.Enabled() (AllocsPerRun=0 contract)
//   - errcheck      — unchecked error returns in main packages and on
//     Close/Flush/Sync paths everywhere
//   - gridres       — coarse (s-reduced) and fine grids must not meet in
//     an elementwise operation without an explicit resample (multi-level
//     contract, Eq. 7/8), followed through calls via summaries
//   - leasepath     — a pool lease must be released or handed off on
//     every path, including through helpers and deferred closures
//   - atomicfield   — a field accessed via function-style sync/atomic
//     anywhere must be accessed that way everywhere, across packages
//   - bce           — no new surviving compiler bounds checks inside
//     lint.hot-declared hot functions (perf ratchet)
//   - escape        — no new compiler-proven heap escapes inside hot
//     functions (zero-alloc steady-state ratchet)
//   - inline        — no hot-path call falling out of the inlining
//     budget (call-overhead ratchet)
//   - ctxflow       — no context.Background()/TODO() or uninterruptible
//     time.Sleep on server/core-reachable call paths
//   - timerleak     — tickers, timers and context cancel funcs must be
//     Stopped/called on every path, branch-sensitive like leasepath
//   - lockorder     — no lock-order inversion cycles anywhere in the
//     module (potential deadlocks, reported with the full cycle and a
//     witness position per edge), and no lock held across a blocking
//     operation on a server-reachable path
//   - chanprotocol  — unbuffered sends on server-reachable paths need a
//     default/ctx.Done() escape; a channel is closed once, by its owner,
//     and never sent on after a close on the same path
//   - wgmisuse      — no WaitGroup.Add inside the spawned goroutine or
//     racing an async Wait, and no lock/WaitGroup copied by value into a
//     callee that synchronizes on it (beyond vet's copylocks)
//   - gorolife      — goroutines spawned on server-reachable paths must
//     have a bounded lifetime: an exit tied to ctx.Done(), a quit-channel
//     close, or a loop bounded by construction
//
// gridres, leasepath and atomicfield are interprocedural: they consult a
// package-set call graph and bottom-up per-function summaries
// (callgraph.go, summary.go) built once per run and shared through
// Pass.Prog; ctxflow reuses the same graph for server-reachability. The
// concurrency-protocol layer (lockorder, chanprotocol, wgmisuse,
// gorolife) adds a second summary pass over the same SCC order —
// per-function lock/WaitGroup/lifetime facts (concsummary.go) folded into
// a global lock-order graph whose findings are precomputed before the
// parallel passes start, preserving output determinism. The
// bce/escape/inline trio reads a second fact source entirely — the
// compiler's own -m/-d=ssa/check_bce diagnostic stream (gcdiag.go),
// scoped by the checked-in lint.hot manifest (hotmanifest.go) and held in
// check by the committed lint-perf.baseline ratchet.
//
// A finding can be suppressed with a mandatory-reason directive on the
// same line or the line above:
//
//	//lint:ignore <rule>[,<rule>...] <reason>
//
// A directive without a reason suppresses nothing and is itself reported
// under the rule name "ignore". See DESIGN.md, "Static analysis".
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one named rule: a documentation string plus a Run function
// invoked once per type-checked package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// All is the registry of analyzers shipped with the suite, in the order
// they run. cmd/iltlint selects from this set with -rules.
var All = []*Analyzer{FloatCmp, MapOrder, ScratchAlias, HotAlloc, ErrCheck, GridRes, LeasePath, AtomicField,
	BCE, Escape, Inline, CtxFlow, TimerLeak,
	LockOrder, ChanProtocol, WGMisuse, GoroLife}

// Lookup resolves a comma-separated rule list against the registry.
func Lookup(rules string) ([]*Analyzer, error) {
	if rules == "" || rules == "all" {
		return All, nil
	}
	var out []*Analyzer
	for _, name := range strings.Split(rules, ",") {
		name = strings.TrimSpace(name)
		found := false
		for _, a := range All {
			if a.Name == name {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown rule %q (have %s)", name, strings.Join(RuleNames(), ", "))
		}
	}
	return out, nil
}

// RuleNames lists the registered rule names in registry order.
func RuleNames() []string {
	names := make([]string, len(All))
	for i, a := range All {
		names[i] = a.Name
	}
	return names
}

// A Diagnostic is one finding: a resolved position, the rule that fired,
// a message, and an optional mechanical fix.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
	Fix     *Fix
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Rule)
}

// A Fix is a set of textual edits that mechanically resolves a diagnostic.
type Fix struct {
	Message string
	Edits   []Edit
}

// An Edit replaces source in [Pos, End) with New. Pos == End inserts.
type Edit struct {
	Pos, End token.Pos
	New      string
}

// A Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	// Prog is the interprocedural view of the whole run (call graph,
	// summaries, program-wide fact sets). Nil only when a Pass is built
	// outside the runner.
	Prog *Program

	diags *[]Diagnostic
}

// Report records a finding at pos, optionally carrying a fix.
func (p *Pass) Report(pos token.Pos, fix *Fix, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     p.Fset.Position(pos),
		Rule:    p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
		Fix:     fix,
	})
}

// TypeOf returns the type of e, or nil when e was not type-checked.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if tv, ok := p.Info.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := p.Info.ObjectOf(id); obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// FileFor returns the *ast.File of the pass containing pos.
func (p *Pass) FileFor(pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}

// Imports reports whether file f imports path.
func (p *Pass) Imports(f *ast.File, path string) bool {
	for _, im := range f.Imports {
		if strings.Trim(im.Path.Value, `"`) == path {
			return true
		}
	}
	return false
}

// methodInfo describes a resolved method call: the receiver's defining
// package path and type name (pointers stripped) plus the method name.
type methodInfo struct {
	pkg, typ, name string
}

// method resolves call as a method invocation, returning ok=false for
// plain function calls, conversions and builtins.
func (p *Pass) method(call *ast.CallExpr) (methodInfo, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return methodInfo{}, false
	}
	fn, ok := p.Info.ObjectOf(sel.Sel).(*types.Func)
	if !ok {
		return methodInfo{}, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return methodInfo{}, false
	}
	rt := sig.Recv().Type()
	if ptr, ok := rt.(*types.Pointer); ok {
		rt = ptr.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok {
		return methodInfo{}, false
	}
	mi := methodInfo{typ: named.Obj().Name(), name: fn.Name()}
	if named.Obj().Pkg() != nil {
		mi.pkg = named.Obj().Pkg().Path()
	}
	return mi, true
}

// pkgFunc resolves call as a package-level function call, returning the
// package path and function name ("fmt", "Sprintf").
func (p *Pass) pkgFunc(call *ast.CallExpr) (pkg, name string, ok bool) {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		id, isID := fun.X.(*ast.Ident)
		if !isID {
			return "", "", false
		}
		pn, isPkg := p.Info.ObjectOf(id).(*types.PkgName)
		if !isPkg {
			return "", "", false
		}
		return pn.Imported().Path(), fun.Sel.Name, true
	case *ast.Ident:
		fn, isFn := p.Info.ObjectOf(fun).(*types.Func)
		if !isFn || fn.Pkg() == nil {
			return "", "", false
		}
		return fn.Pkg().Path(), fn.Name(), true
	}
	return "", "", false
}

// sortDiags orders diagnostics deterministically: file, line, column,
// rule, message. Every output mode (text, JSON, golden tests) sees this
// order.
func sortDiags(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
}
