package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file builds the interprocedural substrate the cross-function
// analyzers (gridres, leasepath, atomicfield) stand on: a call graph over
// the loaded package set plus the bookkeeping needed to compute
// per-function summaries bottom-up (see summary.go).
//
// Identity. Packages are type-checked independently against compiler
// export data (see load.go), so one function has *different* types.Func
// objects depending on whether it is seen from its defining package's
// source or through an importer. Nodes are therefore keyed by FuncKey — a
// stable, printable name derived from the package path, receiver type and
// function name — and every resolution goes through keyOf. String keys
// also make summaries and diagnostics trivially deterministic.
//
// Dynamic calls. A call through an interface is resolved against the
// method sets of the loaded packages: every in-module concrete method with
// the same name and an identical parameter/result signature (compared as
// package-path-qualified strings, which survives the split type universes)
// becomes a candidate edge. Candidate edges participate in
// goroutine-reachability but deliberately not in summary lookup — with
// several candidates the facts would have to be merged pessimistically,
// which in practice dissolves them.

// A FuncKey canonically names a function or method across the package set:
// "pkg/path.Name" for functions, "pkg/path.(Recv).Name" for methods.
type FuncKey string

// keyOf derives the canonical key of fn, or "" when fn has no package
// (builtins, error.Error on the universe interface).
func keyOf(fn *types.Func) FuncKey {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		rt := sig.Recv().Type()
		if ptr, isPtr := rt.(*types.Pointer); isPtr {
			rt = ptr.Elem()
		}
		if named, isNamed := rt.(*types.Named); isNamed {
			return FuncKey(fn.Pkg().Path() + ".(" + named.Obj().Name() + ")." + fn.Name())
		}
		// Interface receiver or unnamed receiver type: key on the method
		// name alone under its package; these are resolution sources, not
		// graph nodes.
		return FuncKey(fn.Pkg().Path() + ".(?)." + fn.Name())
	}
	return FuncKey(fn.Pkg().Path() + "." + fn.Name())
}

// A FuncInfo is one call-graph node: a function or method declared in one
// of the loaded packages.
type FuncInfo struct {
	Key  FuncKey
	Decl *ast.FuncDecl
	Pkg  *Package

	// Callees holds the static out-edges; the value records whether some
	// call site spawns the callee on a new goroutine (`go f(...)`, or a
	// call inside a go'd closure).
	Callees map[FuncKey]bool
	// Dynamic holds method-set-resolved candidate targets of interface
	// calls made by this function.
	Dynamic map[FuncKey]bool
	// Spawns reports whether the body contains any `go` statement.
	Spawns bool

	// Summary holds the bottom-up facts; populated by computeSummaries.
	Summary *Summary
	// Conc holds the concurrency-protocol facts (locks acquired/held,
	// WaitGroup parameter operations, unbounded loops); populated by
	// computeConcSummaries. See concsummary.go.
	Conc *ConcSummary
}

// A Program is the interprocedural view of one analysis run: every loaded
// package, the call graph over them, and program-wide fact sets.
type Program struct {
	Fset  *token.FileSet
	Pkgs  []*Package
	Funcs map[FuncKey]*FuncInfo

	// GoroutineReachable marks functions that can run off the spawning
	// goroutine: transitive static callees of any `go` site or of a
	// function-typed parameter a callee invokes on a goroutine
	// (grid.ParallelFor's body).
	GoroutineReachable map[FuncKey]bool

	// ServerReachable marks functions on the serving surface: everything
	// declared in a package whose import path has a "server" or "core"
	// segment, plus the transitive static and candidate callees. The
	// ctxflow analyzer scopes its context-discipline checks to this set —
	// a CLI batch tool may sleep and detach freely; a daemon may not.
	ServerReachable map[FuncKey]bool

	// Hot is the lint.hot manifest of the run, nil when none was found;
	// GCFacts holds the parsed compiler diagnostics per manifest-covered
	// import path. Both are attached by the runner before passes start
	// (see Run) and consumed by the bce/escape/inline analyzers.
	Hot     *HotManifest
	GCFacts map[string]*GCFacts

	// AtomicFields maps a field key ("pkg/path.Type.Field") to the
	// positions where it is accessed through a sync/atomic call, across
	// the whole package set. See atomicfield.go.
	AtomicFields map[string][]token.Position

	// ConcFindings holds the precomputed lockorder diagnostics (lock-order
	// inversion cycles, locks held across blocking operations), keyed by
	// the import path of the package whose pass reports them. The lock
	// graph is global — an inversion can span packages — so the findings
	// are computed once, serially, before the parallel passes start; each
	// pass only copies out its own package's slice, which keeps the output
	// deterministic at any worker count. See concsummary.go.
	ConcFindings map[string][]concFinding

	// CondLockers maps a sync.Cond's stable key to its locker's lock key,
	// resolved from sync.NewCond(&mu) sites across the package set:
	// Cond.Wait atomically releases its own locker, so that lock is
	// exempt from the held-across-blocking check.
	CondLockers map[string]string
}

// BuildProgram constructs the call graph and computes summaries for the
// loaded packages. It is deterministic: iteration over packages and files
// follows load order, and every map consumed for output is sorted. dir is
// the base directory of the run, used to relativize the source positions
// embedded in lock-order cycle messages.
func BuildProgram(pkgs []*Package, fset *token.FileSet, dir string) *Program {
	prog := &Program{
		Fset:               fset,
		Pkgs:               pkgs,
		Funcs:              map[FuncKey]*FuncInfo{},
		GoroutineReachable: map[FuncKey]bool{},
		ServerReachable:    map[FuncKey]bool{},
		AtomicFields:       map[string][]token.Position{},
	}

	// Nodes: every declared function/method in the loaded set.
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				key := keyOf(fn)
				if key == "" {
					continue
				}
				prog.Funcs[key] = &FuncInfo{
					Key: key, Decl: fd, Pkg: pkg,
					Callees: map[FuncKey]bool{},
					Dynamic: map[FuncKey]bool{},
				}
			}
		}
	}

	// Edges + atomic-field collection.
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				node := prog.Funcs[keyOf(fn)]
				if node == nil {
					continue
				}
				prog.collectEdges(node, fd.Body, false)
			}
		}
		prog.collectAtomicFields(pkg)
	}

	computeSummaries(prog)
	prog.computeGoroutineReachable()
	prog.computeServerReachable()
	computeConcSummaries(prog)
	collectConcFindings(prog, dir)
	return prog
}

// computeServerReachable floods the call graph from every function whose
// package path carries a "server" or "core" segment: the serving arc's
// entry surface plus everything it can execute.
func (p *Program) computeServerReachable() {
	var queue []FuncKey
	mark := func(k FuncKey) {
		if k != "" && !p.ServerReachable[k] {
			if _, ok := p.Funcs[k]; ok {
				p.ServerReachable[k] = true
				queue = append(queue, k)
			}
		}
	}
	for _, key := range p.sortedFuncKeys() {
		if hasPathSegment(p.Funcs[key].Pkg.Path, "server", "core") {
			mark(key)
		}
	}
	for len(queue) > 0 {
		k := queue[0]
		queue = queue[1:]
		fi := p.Funcs[k]
		for callee := range fi.Callees {
			mark(callee)
		}
		for callee := range fi.Dynamic {
			mark(callee)
		}
	}
}

// hasPathSegment reports whether any "/"-separated segment of an import
// path equals one of segs.
func hasPathSegment(path string, segs ...string) bool {
	for _, part := range strings.Split(path, "/") {
		for _, s := range segs {
			if part == s {
				return true
			}
		}
	}
	return false
}

// collectEdges walks body recording call edges of node. spawned marks the
// walk as running on a new goroutine (inside a go'd closure): every edge
// found there is a spawn edge.
func (p *Program) collectEdges(node *FuncInfo, body ast.Node, spawned bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			p.recordCall(node, n.Call, true)
			if lit, ok := unparen(n.Call.Fun).(*ast.FuncLit); ok {
				p.collectEdges(node, lit.Body, true)
			} else {
				for _, a := range n.Call.Args {
					p.collectEdges(node, a, true)
				}
			}
			return false
		case *ast.CallExpr:
			p.recordCall(node, n, spawned)
			return true
		}
		return true
	})
}

// recordCall resolves one call site to static or dynamic edges.
func (p *Program) recordCall(node *FuncInfo, call *ast.CallExpr, spawned bool) {
	if spawned {
		node.Spawns = true
	}
	info := node.Pkg.Info
	fun := unparen(call.Fun)
	switch fun := fun.(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			p.addEdge(node, keyOf(fn), spawned)
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			fn, ok := sel.Obj().(*types.Func)
			if !ok {
				return
			}
			if types.IsInterface(sel.Recv()) {
				for _, target := range p.methodSetTargets(fn) {
					node.Dynamic[target] = true
					if spawned {
						// An interface call from a spawned context still
						// reaches its candidates on that goroutine.
						p.addEdge(node, target, true)
					}
				}
				return
			}
			p.addEdge(node, keyOf(fn), spawned)
			return
		}
		// Package-qualified function: pkg.F(...).
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			p.addEdge(node, keyOf(fn), spawned)
		}
	}
}

func (p *Program) addEdge(node *FuncInfo, callee FuncKey, spawned bool) {
	if callee == "" {
		return
	}
	if _, inModule := p.Funcs[callee]; !inModule {
		return
	}
	if spawned {
		node.Callees[callee] = true
	} else if _, seen := node.Callees[callee]; !seen {
		node.Callees[callee] = false
	}
}

// methodSetTargets resolves an interface method to every in-module
// concrete method with the same name and signature. Signatures are
// compared as package-path-qualified strings because the candidate and the
// interface method live in different type-checker universes, where
// types.Identical is too strict.
func (p *Program) methodSetTargets(ifaceMethod *types.Func) []FuncKey {
	wantName := ifaceMethod.Name()
	wantSig := sigString(ifaceMethod)
	var out []FuncKey
	for key, fi := range p.Funcs {
		if fi.Decl.Recv == nil || fi.Decl.Name.Name != wantName {
			continue
		}
		fn, ok := fi.Pkg.Info.Defs[fi.Decl.Name].(*types.Func)
		if !ok || sigString(fn) != wantSig {
			continue
		}
		out = append(out, key)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// sigString renders a function's parameter and result types (receiver
// excluded) with full package paths, stable across type universes.
func sigString(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return ""
	}
	qual := func(pkg *types.Package) string { return pkg.Path() }
	var b strings.Builder
	b.WriteByte('(')
	for i := 0; i < sig.Params().Len(); i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(types.TypeString(sig.Params().At(i).Type(), qual))
	}
	b.WriteString(")(")
	for i := 0; i < sig.Results().Len(); i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(types.TypeString(sig.Results().At(i).Type(), qual))
	}
	b.WriteByte(')')
	return b.String()
}

// computeGoroutineReachable floods the call graph from every spawn edge:
// a function is goroutine-reachable when some call path ends in a `go`
// site targeting it, or when it is invoked as a function-typed argument of
// a callee that runs its parameter on a goroutine (CallsParamGo — the
// grid.ParallelFor shape).
func (p *Program) computeGoroutineReachable() {
	var queue []FuncKey
	mark := func(k FuncKey) {
		if k != "" && !p.GoroutineReachable[k] {
			if _, ok := p.Funcs[k]; ok {
				p.GoroutineReachable[k] = true
				queue = append(queue, k)
			}
		}
	}
	// Roots: direct spawn edges, plus function-literal/param hand-offs to
	// callees that invoke their parameter on a goroutine.
	keys := p.sortedFuncKeys()
	for _, key := range keys {
		fi := p.Funcs[key]
		for callee, spawned := range fi.Callees {
			if spawned {
				mark(callee)
			}
		}
	}
	for _, key := range keys {
		fi := p.Funcs[key]
		p.markParamGoHandoffs(fi, mark)
	}
	// Flood: everything a goroutine-reachable function calls is too.
	for len(queue) > 0 {
		k := queue[0]
		queue = queue[1:]
		fi := p.Funcs[k]
		for callee := range fi.Callees {
			mark(callee)
		}
		for callee := range fi.Dynamic {
			mark(callee)
		}
	}
}

// markParamGoHandoffs finds call sites in fi passing a named in-module
// function where the callee's summary says that parameter is invoked on a
// goroutine, and marks the passed function. Function literals are covered
// separately: their bodies' edges were attributed to the enclosing
// function, which markBodyGoroutine handles during summary use.
func (p *Program) markParamGoHandoffs(fi *FuncInfo, mark func(FuncKey)) {
	info := fi.Pkg.Info
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		calleeKey := staticCalleeKey(info, call)
		callee := p.Funcs[calleeKey]
		if callee == nil || callee.Summary == nil {
			return true
		}
		for i, a := range call.Args {
			if i >= len(callee.Summary.CallsParamGo) || !callee.Summary.CallsParamGo[i] {
				continue
			}
			switch arg := unparen(a).(type) {
			case *ast.Ident:
				if fn, ok := info.Uses[arg].(*types.Func); ok {
					mark(keyOf(fn))
				}
			case *ast.SelectorExpr:
				if fn, ok := info.Uses[arg.Sel].(*types.Func); ok {
					mark(keyOf(fn))
				}
			case *ast.FuncLit:
				// The literal's call edges already live on fi; re-walk the
				// literal body marking its static callees as reachable.
				ast.Inspect(arg.Body, func(m ast.Node) bool {
					if c, ok := m.(*ast.CallExpr); ok {
						if k := staticCalleeKey(info, c); k != "" {
							mark(k)
						}
					}
					return true
				})
			}
		}
		return true
	})
}

// staticCalleeKey resolves call to an in-module function key, or "".
func staticCalleeKey(info *types.Info, call *ast.CallExpr) FuncKey {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return keyOf(fn)
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok && !types.IsInterface(sel.Recv()) {
				return keyOf(fn)
			}
			return ""
		}
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return keyOf(fn)
		}
	}
	return ""
}

// sortedFuncKeys returns every node key in sorted order: the deterministic
// iteration base for everything derived from the Funcs map.
func (p *Program) sortedFuncKeys() []FuncKey {
	keys := make([]FuncKey, 0, len(p.Funcs))
	for k := range p.Funcs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// sccOrder returns the strongly connected components of the static call
// graph in bottom-up (callees before callers) order, via Tarjan's
// algorithm seeded in sorted key order for determinism.
func (p *Program) sccOrder() [][]FuncKey {
	index := map[FuncKey]int{}
	low := map[FuncKey]int{}
	onStack := map[FuncKey]bool{}
	var stack []FuncKey
	var sccs [][]FuncKey
	next := 0

	var strongconnect func(v FuncKey)
	strongconnect = func(v FuncKey) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true

		fi := p.Funcs[v]
		callees := make([]FuncKey, 0, len(fi.Callees))
		for c := range fi.Callees {
			callees = append(callees, c)
		}
		sort.Slice(callees, func(i, j int) bool { return callees[i] < callees[j] })
		for _, w := range callees {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}

		if low[v] == index[v] {
			var scc []FuncKey
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sccs = append(sccs, scc)
		}
	}
	for _, k := range p.sortedFuncKeys() {
		if _, seen := index[k]; !seen {
			strongconnect(k)
		}
	}
	// Tarjan emits components in reverse topological order of the
	// condensation — exactly the bottom-up order summaries need.
	return sccs
}

// packageOf maps a *types.Package back to its loaded Package, or nil.
func (p *Program) packageOf(tp *types.Package) *Package {
	for _, pkg := range p.Pkgs {
		if pkg.Types == tp {
			return pkg
		}
	}
	return nil
}

// FuncOf resolves the node enclosing pos within pkg, or nil.
func (p *Program) FuncOf(pkg *Package, fd *ast.FuncDecl) *FuncInfo {
	fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return nil
	}
	return p.Funcs[keyOf(fn)]
}

// SummaryFor returns the summary of an in-module static callee of call, or
// nil: the single hook analyzers use to follow facts through a call.
func (p *Program) SummaryFor(pkg *Package, call *ast.CallExpr) *Summary {
	fi := p.Funcs[staticCalleeKey(pkg.Info, call)]
	if fi == nil {
		return nil
	}
	return fi.Summary
}

func unparen(e ast.Expr) ast.Expr {
	for {
		pe, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = pe.X
	}
}
