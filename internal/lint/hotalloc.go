package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotAlloc flags per-iteration allocation sites inside telemetry-
// instrumented hot loops that are not behind the Recorder.Enabled() guard.
//
// The telemetry work (PR 2) guarantees a nil Recorder costs zero
// allocations on the instrumented paths (AllocsPerRun = 0 in the litho and
// telemetry test suites). That guarantee is defeated at the call site, not
// in the recorder: a telemetry.Fields{...} literal, an fmt.Sprintf, a
// closure, or a Progressf (whose ...any arguments box) inside the loop
// allocates on every iteration whether or not the recorder is enabled.
// The sanctioned idiom is the guard the optimizer's iteration loop uses:
//
//	if rec.Enabled() {
//	    rec.Emit("iter", telemetry.Fields{...})
//	}
//
// A loop counts as hot when its body records telemetry (StartSpan, Add,
// Emit, Progressf on a Recorder, or Span.End). The suggested fix wraps an
// unguarded Emit/Progressf statement in the Enabled() guard.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "flags Sprintf/closures/map-slice literals and unguarded Emit/Progressf inside telemetry-instrumented loops",
	Run:  runHotAlloc,
}

const telemetryPkg = "repro/internal/telemetry"

var recorderMethods = map[string]bool{
	"StartSpan": true, "Add": true, "Emit": true, "Progressf": true,
}

var sprintFuncs = map[string]bool{
	"Sprintf": true, "Sprint": true, "Sprintln": true, "Errorf": true,
}

func runHotAlloc(pass *Pass) {
	reported := map[token.Pos]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch loop := n.(type) {
			case *ast.ForStmt:
				body = loop.Body
			case *ast.RangeStmt:
				body = loop.Body
			default:
				return true
			}
			if !containsTelemetry(pass, body) {
				return true
			}
			checkHotBody(pass, body, reported)
			return true
		})
	}
}

// containsTelemetry reports whether body records telemetry somewhere.
func containsTelemetry(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if mi, ok := pass.method(call); ok && mi.pkg == telemetryPkg {
			if (mi.typ == "Recorder" && recorderMethods[mi.name]) || (mi.typ == "Span" && mi.name == "End") {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// checkHotBody walks one hot loop body with an explicit ancestor stack so
// each allocation site can be tested for an Enabled() guard between it and
// the loop.
func checkHotBody(pass *Pass, body *ast.BlockStmt, reported map[token.Pos]bool) {
	var stack []ast.Node
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			report(pass, reported, n.Pos(), nil,
				"closure allocated per iteration of a telemetry-instrumented hot loop; hoist it out of the loop (zero-alloc contract, PR 2)")
			// Do not descend: the closure body runs when called, and its
			// own loops are analyzed independently.
			return false
		case *ast.CompositeLit:
			if isMapOrSliceLit(pass, n) && !guarded(pass, stack) {
				fix := guardFix(pass, stack, n)
				report(pass, reported, n.Pos(), fix,
					"%s literal allocates per iteration of a telemetry-instrumented hot loop; guard it with Recorder.Enabled() (zero-alloc contract, PR 2)",
					litKind(pass, n))
			}
		case *ast.CallExpr:
			if pkg, name, ok := pass.pkgFunc(n); ok && pkg == "fmt" && sprintFuncs[name] {
				// Error construction on the way out of the loop is an exit
				// path, not a per-iteration cost.
				if !guarded(pass, stack) && !underReturn(stack) {
					report(pass, reported, n.Pos(), nil,
						"fmt.%s allocates per iteration of a telemetry-instrumented hot loop; guard it with Recorder.Enabled() or hoist it", name)
				}
			}
			if mi, ok := pass.method(n); ok && mi.pkg == telemetryPkg && mi.typ == "Recorder" && mi.name == "Progressf" {
				if !guarded(pass, stack) {
					report(pass, reported, n.Pos(), guardFix(pass, stack, n),
						"Progressf boxes its arguments per iteration of a hot loop; guard it with Recorder.Enabled() (zero-alloc contract, PR 2)")
				}
			}
		}
		stack = append(stack, n)
		return true
	}
	for _, s := range body.List {
		ast.Inspect(s, visit)
	}
}

func report(pass *Pass, reported map[token.Pos]bool, pos token.Pos, fix *Fix, format string, args ...any) {
	if reported[pos] {
		return // site already flagged via an enclosing hot loop
	}
	reported[pos] = true
	pass.Report(pos, fix, format, args...)
}

// isMapOrSliceLit reports whether lit allocates a map or slice (named
// types like telemetry.Fields included). Arrays and structs are
// stack-allocatable and stay legal.
func isMapOrSliceLit(pass *Pass, lit *ast.CompositeLit) bool {
	t := pass.TypeOf(lit)
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Map, *types.Slice:
		return true
	}
	return false
}

func litKind(pass *Pass, lit *ast.CompositeLit) string {
	t := pass.TypeOf(lit)
	if t == nil {
		return "composite"
	}
	if _, ok := t.Underlying().(*types.Map); ok {
		return "map"
	}
	return "slice"
}

// guarded reports whether any ancestor if-statement's condition consults a
// telemetry Recorder — rec.Enabled() or rec != nil — which is the idiom
// that keeps the allocation off the disabled path.
func guarded(pass *Pass, stack []ast.Node) bool {
	for _, n := range stack {
		ifStmt, ok := n.(*ast.IfStmt)
		if !ok {
			continue
		}
		isGuard := false
		ast.Inspect(ifStmt.Cond, func(c ast.Node) bool {
			switch c := c.(type) {
			case *ast.CallExpr:
				if mi, ok := pass.method(c); ok && mi.pkg == telemetryPkg && mi.typ == "Recorder" && mi.name == "Enabled" {
					isGuard = true
					return false
				}
			case *ast.BinaryExpr:
				if c.Op == token.NEQ && (isRecorderExpr(pass, c.X) || isRecorderExpr(pass, c.Y)) {
					isGuard = true
					return false
				}
			}
			return true
		})
		if isGuard {
			return true
		}
	}
	return false
}

// underReturn reports whether the node under inspection sits inside a
// return statement (its ancestors include one).
func underReturn(stack []ast.Node) bool {
	for _, n := range stack {
		if _, ok := n.(*ast.ReturnStmt); ok {
			return true
		}
	}
	return false
}

func isRecorderExpr(pass *Pass, e ast.Expr) bool {
	t := pass.TypeOf(e)
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == telemetryPkg && named.Obj().Name() == "Recorder"
}

// guardFix wraps the statement enclosing the flagged node in an Enabled()
// guard when that statement is a plain rec.Emit(...)/rec.Progressf(...)
// call on a side-effect-free receiver chain. Formatting is restored by
// gofmt after the edit.
func guardFix(pass *Pass, stack []ast.Node, flagged ast.Node) *Fix {
	// Innermost enclosing ExprStmt.
	var es *ast.ExprStmt
	for i := len(stack) - 1; i >= 0; i-- {
		if s, ok := stack[i].(*ast.ExprStmt); ok {
			es = s
			break
		}
	}
	if es == nil {
		return nil
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return nil
	}
	mi, ok := pass.method(call)
	if !ok || mi.pkg != telemetryPkg || mi.typ != "Recorder" || (mi.name != "Emit" && mi.name != "Progressf") {
		return nil
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !pureChain(sel.X) {
		return nil
	}
	recv := exprText(sel.X)
	return &Fix{
		Message: "wrap in if " + recv + ".Enabled() { ... }",
		Edits: []Edit{
			{Pos: es.Pos(), End: es.Pos(), New: "if " + recv + ".Enabled() {\n"},
			{Pos: es.End(), End: es.End(), New: "\n}"},
		},
	}
}

// pureChain accepts identifiers and selector chains (rec, o.Recorder,
// opt.Process.Recorder) — receivers safe to evaluate twice.
func pureChain(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		return true
	case *ast.SelectorExpr:
		return pureChain(e.X)
	}
	return false
}
