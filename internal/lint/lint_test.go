package lint

import (
	"bufio"
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// A want is one expected diagnostic, parsed from a fixture comment:
//
//	expr // want "regex"
//	// want+1 "regex"   (diagnostic expected on the next line)
//
// Several quoted regexes on one line expect several diagnostics there.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

var wantRe = regexp.MustCompile(`// want(\+\d+)? (.+)$`)
var wantArgRe = regexp.MustCompile(`"([^"]*)"`)

// parseWants scans every .go file of a fixture directory for want comments.
func parseWants(t *testing.T, dir string) []*want {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		t.Fatal(err)
	}
	nested, err := filepath.Glob(filepath.Join(dir, "*", "*.go"))
	if err != nil {
		t.Fatal(err)
	}
	files = append(files, nested...)
	if len(files) == 0 {
		t.Fatalf("no fixture files in %s", dir)
	}
	var wants []*want
	for _, path := range files {
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			m := wantRe.FindStringSubmatch(sc.Text())
			if m == nil {
				continue
			}
			target := line
			if m[1] != "" {
				fmt.Sscanf(m[1], "+%d", &target)
				target += line
			}
			args := wantArgRe.FindAllStringSubmatch(m[2], -1)
			if len(args) == 0 {
				t.Errorf("%s:%d: want comment without a quoted regex", path, line)
			}
			for _, a := range args {
				re, err := regexp.Compile(a[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want regex %q: %v", path, line, a[1], err)
				}
				wants = append(wants, &want{file: filepath.Base(path), line: target, re: re})
			}
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	return wants
}

// testFixture runs one or more analyzers over a fixture tree and checks
// the diagnostics against the // want annotations: every diagnostic must
// match exactly one unconsumed want and every want must be consumed.
// Fixture files are matched by base name, which covers the multi-package
// fixtures' subdirectories.
func testFixture(t *testing.T, a *Analyzer, dir string) {
	t.Helper()
	testFixturePatterns(t, []*Analyzer{a}, dir, ".")
}

func testFixturePatterns(t *testing.T, analyzers []*Analyzer, dir string, patterns ...string) {
	t.Helper()
	res, err := Run(Options{Dir: dir, Patterns: patterns, Analyzers: analyzers})
	if err != nil {
		t.Fatalf("lint run over %s: %v", dir, err)
	}
	wants := parseWants(t, dir)
	for _, d := range res.Diags {
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == filepath.Base(d.Pos.Filename) && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q was not reported", w.file, w.line, w.re)
		}
	}
}

func TestFloatCmpFixture(t *testing.T)     { testFixture(t, FloatCmp, "testdata/src/floatcmp") }
func TestMapOrderFixture(t *testing.T)     { testFixture(t, MapOrder, "testdata/src/maporder") }
func TestScratchAliasFixture(t *testing.T) { testFixture(t, ScratchAlias, "testdata/src/scratchalias") }
func TestHotAllocFixture(t *testing.T)     { testFixture(t, HotAlloc, "testdata/src/hotalloc") }
func TestErrCheckMainFixture(t *testing.T) { testFixture(t, ErrCheck, "testdata/src/errcheck") }
func TestErrCheckLibFixture(t *testing.T)  { testFixture(t, ErrCheck, "testdata/src/errchecklib") }
func TestGridResFixture(t *testing.T)      { testFixture(t, GridRes, "testdata/src/gridres") }
func TestLeasePathFixture(t *testing.T)    { testFixture(t, LeasePath, "testdata/src/leasepath") }
func TestAtomicFieldFixture(t *testing.T)  { testFixture(t, AtomicField, "testdata/src/atomicfield") }

// TestHotDiagFixture drives the three compiler-fact ratchets over a
// fixture with its own lint.hot manifest: surviving bounds checks, heap
// escapes, and non-inlined calls fire only inside declared hot regions,
// and the panic-path/ignore escapes stay silent.
func TestHotDiagFixture(t *testing.T) {
	testFixturePatterns(t, []*Analyzer{BCE, Escape, Inline}, "testdata/src/hotdiag", ".")
}

// TestCtxFlowFixture checks the server-reachability scoping: the same
// context-severing shapes fire in the server package and its callees but
// stay silent in the unreached batch package.
func TestCtxFlowFixture(t *testing.T) {
	testFixturePatterns(t, []*Analyzer{CtxFlow}, "testdata/src/ctxflow", "./...")
}

func TestTimerLeakFixture(t *testing.T) { testFixture(t, TimerLeak, "testdata/src/timerleak") }

// TestLockOrderFixture drives the lock-order graph end to end: the seeded
// A/B inversion cycle, a self-deadlock through a lock helper, the
// held-across-blocking findings scoped to the server subpackage, and the
// sync.Cond locker exemption.
func TestLockOrderFixture(t *testing.T) {
	testFixturePatterns(t, []*Analyzer{LockOrder}, "testdata/src/lockorder", "./...")
}

// TestLockOrderCycleMessage pins the acceptance shape of a cycle report:
// the full cycle with one relativized witness position per edge —
// "A -> B at file:line, B -> A at file:line".
func TestLockOrderCycleMessage(t *testing.T) {
	res, err := Run(Options{Dir: "testdata/src/lockorder", Patterns: []string{"./..."}, Analyzers: []*Analyzer{LockOrder}})
	if err != nil {
		t.Fatal(err)
	}
	cycleRe := regexp.MustCompile(
		`lock-order inversion \(potential deadlock\): ` +
			`lockorder\.\(A\)\.mu -> lockorder\.\(B\)\.mu at lockorder\.go:\d+, ` +
			`lockorder\.\(B\)\.mu -> lockorder\.\(A\)\.mu at lockorder\.go:\d+`)
	found := false
	for _, d := range res.Diags {
		if cycleRe.MatchString(d.Message) {
			found = true
		}
		if strings.Contains(d.Message, string(filepath.Separator)+"root"+string(filepath.Separator)) {
			t.Errorf("cycle message leaks an absolute path: %s", d.Message)
		}
	}
	if !found {
		t.Errorf("no diagnostic matched the full-cycle format %q; got:\n%v", cycleRe, res.Diags)
	}
}

// TestChanProtocolFixture covers the close discipline (double-close,
// send-after-close, parameter-close ownership) everywhere and the
// unbuffered-send escapes on the server subpackage.
func TestChanProtocolFixture(t *testing.T) {
	testFixturePatterns(t, []*Analyzer{ChanProtocol}, "testdata/src/chanprotocol", "./...")
}

// TestWGMisuseFixture covers Add-in-goroutine (direct and through a
// callee summary), Add racing an async Wait, and sync state copied into
// callees that lock it.
func TestWGMisuseFixture(t *testing.T) { testFixture(t, WGMisuse, "testdata/src/wgmisuse") }

// TestGoroLifeFixture covers unbounded spawns (closure, named target, and
// through a wrapper) on the serving surface and their silence off it.
func TestGoroLifeFixture(t *testing.T) {
	testFixturePatterns(t, []*Analyzer{GoroLife}, "testdata/src/gorolife", "./...")
}

// TestInterprocFixture loads a two-package fixture in one run: the
// findings in package b exist only because summaries computed for package
// a (release chains, result resolution deltas, same-res constraints)
// survive the cross-package call-graph fixpoint.
func TestInterprocFixture(t *testing.T) {
	testFixturePatterns(t, []*Analyzer{GridRes, LeasePath}, "testdata/src/interproc", "./...")
}

// TestWorkersDeterminism pins the parallel pipeline's contract: the -json
// byte stream is identical at any worker count.
func TestWorkersDeterminism(t *testing.T) {
	runAt := func(workers int) []byte {
		res, err := Run(Options{Dir: "testdata/src/driver", Patterns: []string{"./..."}, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var buf bytes.Buffer
		if err := WriteJSON(&buf, res.Diags); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial := runAt(1)
	for _, w := range []int{2, 8, 0} {
		if got := runAt(w); !bytes.Equal(serial, got) {
			t.Errorf("workers=%d output differs from serial:\n--- serial\n%s--- workers=%d\n%s", w, serial, w, got)
		}
	}
}

// TestDriverJSONGolden runs the full seventeen-analyzer suite over the
// driver fixture — one violation per rule — and pins the -json byte
// stream: the schema, the (file, line, col, rule) ordering, and
// run-to-run determinism.
func TestDriverJSONGolden(t *testing.T) {
	runJSON := func() []byte {
		res, err := Run(Options{Dir: "testdata/src/driver", Patterns: []string{"./..."}})
		if err != nil {
			t.Fatalf("lint run: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteJSON(&buf, res.Diags); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	first, second := runJSON(), runJSON()
	if !bytes.Equal(first, second) {
		t.Fatalf("two runs over the same tree differ:\n--- first\n%s--- second\n%s", first, second)
	}

	rules := map[string]bool{}
	for _, a := range All {
		rules[a.Name] = true
	}
	for name := range rules {
		if !strings.Contains(string(first), `"rule": "`+name+`"`) {
			t.Errorf("driver fixture did not exercise rule %s:\n%s", name, first)
		}
	}

	golden := filepath.Join("testdata", "driver.golden.json")
	if *update {
		if err := os.WriteFile(golden, first, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	wantBytes, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/lint -run Golden -update` to create it)", err)
	}
	if !bytes.Equal(first, wantBytes) {
		t.Errorf("JSON output diverged from %s (re-run with -update if intended):\ngot:\n%s\nwant:\n%s",
			golden, first, wantBytes)
	}
}

// TestHotManifestRot seeds a manifest whose last entry names a function
// the driver fixture does not declare and pins the runner-level
// diagnostic: the rule, the manifest line it lands on, and the decayed
// name in the message. The live entry and the skipped foreign-path entry
// stay silent.
func TestHotManifestRot(t *testing.T) {
	dir := t.TempDir()
	manifest := filepath.Join(dir, "lint.hot")
	src := "# seeded rot below\n" +
		"repro/internal/lint/testdata/src/driver hotIndex\n" +
		"repro/internal/unloaded/pkg anything\n" +
		"repro/internal/lint/testdata/src/driver vanishedKernel\n"
	if err := os.WriteFile(manifest, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := Run(Options{Dir: "testdata/src/driver", Patterns: []string{"./..."}, HotManifest: manifest})
	if err != nil {
		t.Fatal(err)
	}
	var rot []Diagnostic
	for _, d := range res.Diags {
		if d.Rule == "hotmanifest" {
			rot = append(rot, d)
		}
	}
	if len(rot) != 1 {
		t.Fatalf("want exactly one hotmanifest diagnostic, got %d: %+v", len(rot), rot)
	}
	if !strings.Contains(rot[0].Message, `"vanishedKernel"`) {
		t.Errorf("message does not name the rotten entry: %s", rot[0].Message)
	}
	if rot[0].Pos.Line != 4 {
		t.Errorf("rot reported at manifest line %d, want 4", rot[0].Pos.Line)
	}
}

// TestBaselineRatchet records a baseline over the driver fixture and
// verifies the filter: a full baseline absorbs everything, a truncated one
// lets exactly the dropped finding through.
func TestBaselineRatchet(t *testing.T) {
	res, err := Run(Options{Dir: "testdata/src/driver", Patterns: []string{"./..."}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Diags) < len(All) {
		t.Fatalf("driver fixture should fire every rule, got %d findings", len(res.Diags))
	}

	b := NewBaseline(res.Diags)
	fresh, absorbed := b.Filter(res.Diags)
	if len(fresh) != 0 || absorbed != len(res.Diags) {
		t.Errorf("full baseline: fresh=%d absorbed=%d, want 0/%d", len(fresh), absorbed, len(res.Diags))
	}

	trimmed := &Baseline{Entries: b.Entries[:len(b.Entries)-1]}
	fresh, absorbed = trimmed.Filter(res.Diags)
	if len(fresh) != 1 || absorbed != len(res.Diags)-1 {
		t.Errorf("trimmed baseline: fresh=%d absorbed=%d, want 1/%d", len(fresh), absorbed, len(res.Diags)-1)
	}

	// Round-trip through the file form.
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := WriteBaselineFile(path, res.Diags); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadBaselineFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if fresh, absorbed := loaded.Filter(res.Diags); len(fresh) != 0 || absorbed != len(res.Diags) {
		t.Errorf("round-tripped baseline: fresh=%d absorbed=%d, want 0/%d", len(fresh), absorbed, len(res.Diags))
	}
}

// writeFixModule creates a throwaway module with one fixable floatcmp
// finding and returns its directory, file path, and original source.
func writeFixModule(t *testing.T) (dir, path, src string) {
	t.Helper()
	dir = t.TempDir()
	src = `package main

import "math"

func main() {
	a, b := math.Sqrt(2), math.Sqrt(3)
	if a == b {
		println("equal")
	}
}
`
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module fixtest\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	path = filepath.Join(dir, "main.go")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir, path, src
}

// TestFormatFixDiffs verifies -diff's engine: the preview shows the fix as
// a unified diff and leaves the file on disk untouched.
func TestFormatFixDiffs(t *testing.T) {
	dir, path, src := writeFixModule(t)
	res, err := Run(Options{Dir: dir, Patterns: []string{"."}, Analyzers: []*Analyzer{FloatCmp}})
	if err != nil {
		t.Fatal(err)
	}
	out, err := FormatFixDiffs(res.Fset, res.Diags)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"--- ", "+++ ", "@@ ", "-\tif a == b {", "+\tif math.Float64bits(a) == math.Float64bits(b) {"} {
		if !strings.Contains(out, want) {
			t.Errorf("diff output missing %q:\n%s", want, out)
		}
	}
	onDisk, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(onDisk) != src {
		t.Errorf("-diff modified the file:\n%s", onDisk)
	}
}

// TestFixIdempotent pins the -fix contract: applying fixes twice is a
// no-op — the second pass finds nothing fixable and changes no bytes.
func TestFixIdempotent(t *testing.T) {
	dir, path, _ := writeFixModule(t)
	opts := Options{Dir: dir, Patterns: []string{"."}, Analyzers: []*Analyzer{FloatCmp}}

	res, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ApplyFixes(res.Fset, res.Diags); err != nil {
		t.Fatal(err)
	}
	afterFirst, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	res, err = Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if n := res.Fixable(); n != 0 {
		t.Errorf("second pass still sees %d fixable finding(s)", n)
	}
	counts, err := ApplyFixes(res.Fset, res.Diags)
	if err != nil {
		t.Fatal(err)
	}
	if len(counts) != 0 {
		t.Errorf("second ApplyFixes applied %v, want nothing", counts)
	}
	afterSecond, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(afterFirst, afterSecond) {
		t.Errorf("second -fix changed bytes:\n--- first\n%s--- second\n%s", afterFirst, afterSecond)
	}
}

// TestApplyFixesFloatCmp runs the floatcmp fix end to end against a
// throwaway module: lint, apply, re-lint — the finding must be gone and
// the rewrite must be gofmt-clean.
func TestApplyFixesFloatCmp(t *testing.T) {
	dir := t.TempDir()
	src := `package main

import "math"

func main() {
	a, b := math.Sqrt(2), math.Sqrt(3)
	if a == b {
		println("equal")
	}
}
`
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module fixtest\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "main.go")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}

	opts := Options{Dir: dir, Patterns: []string{"."}, Analyzers: []*Analyzer{FloatCmp}}
	res, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Diags) != 1 || res.Diags[0].Fix == nil {
		t.Fatalf("want 1 fixable diagnostic, got %v", res.Diags)
	}
	fixed, err := ApplyFixes(res.Fset, res.Diags)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, n := range fixed {
		total += n
	}
	if total != 1 {
		t.Errorf("fixed = %v, want exactly 1 applied fix", fixed)
	}
	out, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), "math.Float64bits(a) == math.Float64bits(b)") {
		t.Errorf("fix not applied:\n%s", out)
	}
	res, err = Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Diags) != 0 {
		t.Errorf("diagnostics survive the fix: %v", res.Diags)
	}
}
