package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// FloatCmp flags == and != between floating-point or complex operands.
//
// The parallel SOCS reductions (PR 1) and the band-pruned FFT engine
// (PR 3) are proven bit-identical, and that proof is only meaningful if
// "identical" is tested bit-exactly: a plain float == silently conflates
// +0/-0, disagrees with itself under NaN, and invites tolerance drift. In
// production code a comparison must either go through math.Float64bits
// (bit-exact by construction) or use an explicit tolerance. Test files are
// not linted — that is where tolerance-0 assertions legitimately live.
//
// Comparisons against a constant zero are exempt: `x == 0` is the
// repo-wide sentinel idiom (division guards, skip-zero sparsity in the
// TCC eigensolver, "empty tile" checks) and zero is exactly representable,
// so the comparison means what it says. Every other comparison — two
// computed values, or a computed value against a nonzero constant — is
// where rounding drift silently breaks the bit-identical contract.
var FloatCmp = &Analyzer{
	Name: "floatcmp",
	Doc:  "flags ==/!= on float or complex operands (constant-zero sentinels exempt); compare math.Float64bits values or use a tolerance",
	Run:  runFloatCmp,
}

func runFloatCmp(pass *Pass) {
	for _, f := range pass.Files {
		hasMath := pass.Imports(f, "math")
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			xt, xok := pass.Info.Types[be.X]
			yt, yok := pass.Info.Types[be.Y]
			if !xok || !yok {
				return true
			}
			if !isFloaty(xt.Type) && !isFloaty(yt.Type) {
				return true
			}
			if xt.Value != nil && yt.Value != nil {
				return true // constant-folded at compile time
			}
			if isZeroConst(xt) || isZeroConst(yt) {
				return true // sentinel comparison against exact zero
			}
			var fix *Fix
			if hasMath && isFloat64(xt.Type) && isFloat64(yt.Type) {
				// Insert-only edits: math.Float64bits( X ) op math.Float64bits( Y ).
				// This is the bit-exact reading of the comparison; it
				// distinguishes ±0 and makes NaN compare equal to itself.
				fix = &Fix{
					Message: "compare math.Float64bits values (bit-exact; distinguishes ±0, NaN equals itself)",
					Edits: []Edit{
						{Pos: be.X.Pos(), End: be.X.Pos(), New: "math.Float64bits("},
						{Pos: be.X.End(), End: be.X.End(), New: ")"},
						{Pos: be.Y.Pos(), End: be.Y.Pos(), New: "math.Float64bits("},
						{Pos: be.Y.End(), End: be.Y.End(), New: ")"},
					},
				}
			}
			pass.Report(be.OpPos, fix,
				"float equality: %s on %s operands is not bit-exact-safe; compare math.Float64bits values or use an explicit tolerance",
				be.Op, floatLabel(xt.Type, yt.Type))
			return true
		})
	}
}

// isZeroConst reports whether the operand is a compile-time constant equal
// to zero (0, 0.0, 0i, or a named constant with that value).
func isZeroConst(tv types.TypeAndValue) bool {
	if tv.Value == nil {
		return false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(tv.Value) == 0
	case constant.Complex:
		return constant.Sign(constant.Real(tv.Value)) == 0 && constant.Sign(constant.Imag(tv.Value)) == 0
	}
	return false
}

func isFloaty(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}

func isFloat64(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Float64 || b.Kind() == types.UntypedFloat)
}

// floatLabel names the wider of the two operand types for the message.
func floatLabel(x, y types.Type) string {
	for _, t := range []types.Type{x, y} {
		if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsComplex != 0 {
			return "complex"
		}
	}
	for _, t := range []types.Type{x, y} {
		if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsFloat != 0 {
			return b.Name()
		}
	}
	return "float"
}
