package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ScratchAlias flags pool-leased scratch buffers that escape the scope of
// the function that leased them.
//
// The parallel SOCS loops (PR 1) and the dirty-band FFT paths (PR 3) stay
// zero-alloc by leasing scratch from grid.CMatPool / grid.MatPool (and
// sync.Pool inside the FFT plans). The lease contract is strictly scoped:
// Get, use, Put — all within one call. A leased buffer that is returned,
// stored in a struct field or package variable, or sent on a channel
// aliases memory the pool will hand to another goroutine, which is a
// silent data race the moment the pool recycles it.
//
// The analysis is a branch-sensitive taint walk: a variable assigned from
// a pool Get (directly or through a call that received leased scratch as
// an argument, like fft.ApplyKernelBand returning its dst) is tainted;
// reassigning it from a clean source clears the taint on that path, so
// `if keepAmps { amp = grid.NewCMat(...); f.Amps[k] = amp }` is correctly
// accepted while the pooled branch stays guarded.
var ScratchAlias = &Analyzer{
	Name: "scratchalias",
	Doc:  "flags pool-leased scratch (grid pools, sync.Pool) escaping via return, field/global store, or channel send",
	Run:  runScratchAlias,
}

func runScratchAlias(pass *Pass) {
	if strings.HasSuffix(pass.Pkg.Path(), "internal/grid") {
		// The pool implementation itself necessarily returns leased
		// memory from Get; the contract binds the pools' clients.
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			w := &aliasWalker{pass: pass, reported: map[token.Pos]bool{}}
			w.stmt(fd.Body, taintState{})
		}
	}
}

// taintState maps local objects to "currently holds pool-leased scratch".
type taintState map[types.Object]bool

func (s taintState) clone() taintState {
	c := make(taintState, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

// merge unions o into s (join point of two control-flow branches: tainted
// on either path means tainted after).
func (s taintState) merge(o taintState) {
	for k, v := range o {
		if v {
			s[k] = true
		}
	}
}

type aliasWalker struct {
	pass *Pass
	// reported dedupes findings: loop bodies are walked twice for the
	// fixpoint, which must not double-report one escape site.
	reported map[token.Pos]bool
}

func (w *aliasWalker) report(pos token.Pos, format string, args ...any) {
	if w.reported[pos] {
		return
	}
	w.reported[pos] = true
	w.pass.Report(pos, nil, format, args...)
}

// taintedValue reports whether e currently aliases pool-leased memory:
// the expression must both carry taint and have a type through which the
// lease can escape (an element copy like m.Data[i] = buf[y] moves a
// float, not an alias).
func (w *aliasWalker) taintedValue(e ast.Expr, st taintState) bool {
	return w.expr(e, st) && refLike(w.pass.TypeOf(e))
}

// isScratchSource reports whether call leases scratch from a pool.
func (w *aliasWalker) isScratchSource(call *ast.CallExpr) bool {
	mi, ok := w.pass.method(call)
	if !ok || mi.name != "Get" {
		return false
	}
	if mi.pkg == "sync" && mi.typ == "Pool" {
		return true
	}
	return strings.HasSuffix(mi.pkg, "internal/grid") && (mi.typ == "CMatPool" || mi.typ == "MatPool")
}

// refLike reports whether values of t can alias pooled memory.
func refLike(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Interface:
		return true
	}
	return false
}

// expr evaluates taint for e under st, walking func-literal bodies it
// encounters (closures share the enclosing state: they run in this scope).
func (w *aliasWalker) expr(e ast.Expr, st taintState) bool {
	switch e := e.(type) {
	case nil:
		return false
	case *ast.Ident:
		if obj := w.pass.Info.ObjectOf(e); obj != nil {
			return st[obj]
		}
		return false
	case *ast.CallExpr:
		if w.isScratchSource(e) {
			// Arguments still evaluated for nested sources/closures.
			for _, a := range e.Args {
				w.expr(a, st)
			}
			return true
		}
		tainted := false
		for _, a := range e.Args {
			if w.expr(a, st) {
				tainted = true
			}
		}
		w.expr(e.Fun, st) // func literals called inline, selector bases
		// A call that received leased scratch may return it (e.g.
		// fft.ApplyKernelBand returns its dst); propagate only when a
		// result can alias. Multi-value results surface as a tuple here
		// and assignTo filters per-target by refLike.
		if !tainted {
			return false
		}
		t := w.pass.TypeOf(e)
		if tup, ok := t.(*types.Tuple); ok {
			for i := 0; i < tup.Len(); i++ {
				if refLike(tup.At(i).Type()) {
					return true
				}
			}
			return false
		}
		return refLike(t)
	case *ast.ParenExpr:
		return w.expr(e.X, st)
	case *ast.UnaryExpr:
		return w.expr(e.X, st)
	case *ast.StarExpr:
		return w.expr(e.X, st)
	case *ast.SelectorExpr:
		return w.expr(e.X, st)
	case *ast.IndexExpr:
		w.expr(e.Index, st)
		return w.expr(e.X, st)
	case *ast.SliceExpr:
		return w.expr(e.X, st)
	case *ast.TypeAssertExpr:
		return w.expr(e.X, st)
	case *ast.CompositeLit:
		tainted := false
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if w.expr(el, st) {
				tainted = true
			}
		}
		return tainted
	case *ast.BinaryExpr:
		w.expr(e.X, st)
		w.expr(e.Y, st)
		return false
	case *ast.FuncLit:
		// The closure runs in this scope (worker bodies passed to
		// grid.ParallelFor); analyze it against the shared state.
		w.stmt(e.Body, st)
		return false
	}
	return false
}

// assignTo records or reports the flow of a (possibly tainted) value into
// one assignment target.
func (w *aliasWalker) assignTo(lhs ast.Expr, tainted bool, st taintState) {
	switch lhs := lhs.(type) {
	case *ast.Ident:
		if lhs.Name == "_" {
			return
		}
		obj := w.pass.Info.ObjectOf(lhs)
		if obj == nil {
			return
		}
		if isPackageLevel(obj) {
			if tainted {
				w.report(lhs.Pos(),
					"pool-leased scratch stored in package-level variable %s; the lease must stay within its call scope (zero-alloc contract, DESIGN.md)", lhs.Name)
			}
			return
		}
		if tainted && refLike(obj.Type()) {
			st[obj] = true
		} else {
			delete(st, obj) // clean reassignment kills the taint on this path
		}
	case *ast.SelectorExpr:
		w.expr(lhs.X, st)
		if tainted {
			w.report(lhs.Pos(),
				"pool-leased scratch escapes into field or variable %s; Get/Put leases must not outlive the call (aliasing contract, DESIGN.md)", exprText(lhs))
		}
	case *ast.IndexExpr:
		// contribs[k] = c with contribs a local is the sanctioned
		// fan-out pattern (the slice is drained and Put back before
		// return); the container is marked tainted so returning it later
		// still trips the return check. Indexing through a field or
		// global is an escape.
		switch base := lhs.X.(type) {
		case *ast.Ident:
			obj := w.pass.Info.ObjectOf(base)
			if obj != nil && isPackageLevel(obj) {
				if tainted {
					w.report(lhs.Pos(),
						"pool-leased scratch stored into package-level container %s; the lease must stay within its call scope", base.Name)
				}
				return
			}
			if tainted && obj != nil {
				st[obj] = true
			}
		case *ast.SelectorExpr:
			if tainted {
				w.report(lhs.Pos(),
					"pool-leased scratch stored into %s; Get/Put leases must not outlive the call (aliasing contract, DESIGN.md)", exprText(base))
			}
		default:
			w.expr(lhs.X, st)
		}
	case *ast.StarExpr:
		// *p = v stores through a pointer whose target is unknown; the
		// value-copy form (*dst = *src) does not alias, and the repo has
		// no **Mat indirection, so this stays unflagged.
		w.expr(lhs.X, st)
	}
}

// stmt walks one statement, updating st and reporting escapes.
func (w *aliasWalker) stmt(s ast.Stmt, st taintState) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, sub := range s.List {
			w.stmt(sub, st)
		}
	case *ast.ExprStmt:
		w.expr(s.X, st)
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
			// x, y := call(): taint every alias-capable target if the
			// call result is tainted.
			tainted := w.expr(s.Rhs[0], st)
			for _, l := range s.Lhs {
				t := tainted && refLike(w.pass.TypeOf(l))
				w.assignTo(l, t, st)
			}
			return
		}
		for i, l := range s.Lhs {
			if i < len(s.Rhs) {
				w.assignTo(l, w.taintedValue(s.Rhs[i], st), st)
			}
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				if len(vs.Values) == 1 && len(vs.Names) > 1 {
					tainted := w.expr(vs.Values[0], st)
					for _, name := range vs.Names {
						w.assignTo(name, tainted && refLike(w.pass.TypeOf(name)), st)
					}
					continue
				}
				for i, name := range vs.Names {
					if i < len(vs.Values) {
						w.assignTo(name, w.taintedValue(vs.Values[i], st), st)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			if w.taintedValue(r, st) {
				w.report(s.Pos(),
					"pool-leased scratch escapes via return; Put it and return a copy, or allocate the result (aliasing contract, DESIGN.md)")
			}
		}
	case *ast.SendStmt:
		w.expr(s.Chan, st)
		if w.taintedValue(s.Value, st) {
			w.report(s.Pos(),
				"pool-leased scratch sent on a channel escapes its call scope (aliasing contract, DESIGN.md)")
		}
	case *ast.IfStmt:
		w.stmt(s.Init, st)
		w.expr(s.Cond, st)
		thenSt := st.clone()
		w.stmt(s.Body, thenSt)
		elseSt := st.clone()
		w.stmt(s.Else, elseSt)
		st.merge(thenSt)
		st.merge(elseSt)
	case *ast.ForStmt:
		w.stmt(s.Init, st)
		w.expr(s.Cond, st)
		// Two passes approximate the loop fixpoint: taint introduced at
		// the bottom of the body is visible at the top on pass two.
		w.stmt(s.Body, st)
		w.stmt(s.Post, st)
		w.stmt(s.Body, st)
		w.stmt(s.Post, st)
	case *ast.RangeStmt:
		tainted := w.expr(s.X, st)
		for _, v := range []ast.Expr{s.Key, s.Value} {
			if v != nil {
				w.assignTo(v, tainted && refLike(w.pass.TypeOf(v)), st)
			}
		}
		w.stmt(s.Body, st)
		w.stmt(s.Body, st)
	case *ast.SwitchStmt:
		w.stmt(s.Init, st)
		w.expr(s.Tag, st)
		w.caseClauses(s.Body, st)
	case *ast.TypeSwitchStmt:
		w.stmt(s.Init, st)
		w.stmt(s.Assign, st)
		w.caseClauses(s.Body, st)
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			branch := st.clone()
			w.stmt(cc.Comm, branch)
			for _, sub := range cc.Body {
				w.stmt(sub, branch)
			}
			st.merge(branch)
		}
	case *ast.DeferStmt:
		w.expr(s.Call, st)
	case *ast.GoStmt:
		w.expr(s.Call, st)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, st)
	case *ast.IncDecStmt:
		w.expr(s.X, st)
	}
}

func (w *aliasWalker) caseClauses(body *ast.BlockStmt, st taintState) {
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		branch := st.clone()
		for _, sub := range cc.Body {
			w.stmt(sub, branch)
		}
		st.merge(branch)
	}
}

func isPackageLevel(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	return v.Parent() != nil && v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// exprText renders a simple ident/selector chain for messages.
func exprText(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprText(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprText(e.X) + "[...]"
	case *ast.CallExpr:
		return exprText(e.Fun) + "(...)"
	case *ast.StarExpr:
		return "*" + exprText(e.X)
	}
	return "expression"
}
