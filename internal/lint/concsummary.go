package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// This file is the concurrency-protocol substrate the serving-era rules
// (lockorder, chanprotocol, wgmisuse, gorolife) stand on. It rides the same
// Tarjan-SCC bottom-up machinery as summary.go: per-function ConcSummaries
// are computed callees-first with an in-SCC fixpoint, then one final pass
// folds every function's lock-acquisition order into a global lock-order
// graph whose inversion cycles are reported as potential deadlocks.
//
// Lock identity. Mutexes are keyed by stable source paths, not instances:
// a field lock is "pkg/path.(Type).field", a package-level lock is
// "pkg/path.name", a mutex embedded in a named type is "pkg/path.(Type)",
// and a local or parameter mutex is "<funcKey>.$name". Type-level keying
// deliberately conflates two instances of the same field (per-job locks in
// a pool); that is the standard static-deadlock trade-off — a reported
// cycle over one instance path is worth auditing even when the instances
// at runtime differ, and a reasoned //lint:ignore records the audit.
//
// Held-set semantics. The walk tracks a may-held set: cloned at branches
// and merged by union, so a lock acquired on either arm is considered held
// after the join. Deferred Unlocks (direct or inside a deferred closure)
// discharge the hold at function exit but keep it held through the body —
// exactly the `mu.Lock(); defer mu.Unlock()` idiom. A `go` closure runs on
// its own goroutine: it starts with an empty held set and its acquisitions
// do not count as acquisitions of the spawning function (no ordering edge
// exists between a spawner's locks and its goroutine's).

// A ConcSummary is one function's bottom-up concurrency facts.
type ConcSummary struct {
	// Acquires maps every lock key the function may acquire — directly or
	// through any in-module callee — to a witness position (the acquire
	// site, or the call site that reaches it).
	Acquires map[string]token.Pos
	// HoldsOnExit maps lock keys that may still be held when the function
	// returns (a Lock with no Unlock and no deferred Unlock): the
	// "lock helper" shape callers must account for.
	HoldsOnExit map[string]token.Pos
	// SyncsParam[i] — the function (transitively) performs a sync
	// operation (mutex Lock/RLock, WaitGroup Add/Wait/Done) on parameter i
	// or one of its fields. wgmisuse uses it to flag lock-bearing values
	// copied into a callee that then synchronizes on the copy.
	SyncsParam []bool
	// AddsWGParam[i] — the function (transitively) calls WaitGroup.Add on
	// parameter i. Feeds the Add-inside-spawned-goroutine rule across
	// calls.
	AddsWGParam []bool
	// Unbounded — some path may never return: an infinite `for` with no
	// return/break/goto/panic escape, or a call to an unbounded callee.
	// gorolife reports `go` sites whose target is unbounded.
	Unbounded bool
}

func newConcSummary(n int) *ConcSummary {
	return &ConcSummary{
		Acquires:    map[string]token.Pos{},
		HoldsOnExit: map[string]token.Pos{},
		SyncsParam:  make([]bool, n),
		AddsWGParam: make([]bool, n),
	}
}

func (s *ConcSummary) equalConc(o *ConcSummary) bool {
	if s == nil || o == nil {
		return s == o
	}
	if len(s.Acquires) != len(o.Acquires) || len(s.HoldsOnExit) != len(o.HoldsOnExit) ||
		s.Unbounded != o.Unbounded {
		return false
	}
	for k := range s.Acquires {
		if _, ok := o.Acquires[k]; !ok {
			return false
		}
	}
	for k := range s.HoldsOnExit {
		if _, ok := o.HoldsOnExit[k]; !ok {
			return false
		}
	}
	for i := range s.SyncsParam {
		if s.SyncsParam[i] != o.SyncsParam[i] || s.AddsWGParam[i] != o.AddsWGParam[i] {
			return false
		}
	}
	return true
}

// A lockEdge is one witnessed acquisition order: while key From was held,
// key To was acquired (directly, or through the call at Pos).
type lockEdge struct {
	From, To string
	Pos      token.Pos
	Fn       FuncKey // function containing the witness
	Read     bool    // both sides are read-acquisitions (RLock)
}

// A concFinding is one precomputed lockorder diagnostic, assigned to the
// package whose pass will report it.
type concFinding struct {
	pos  token.Pos
	rule string
	msg  string
}

// stripPtr removes pointer layers.
func stripPtr(t types.Type) types.Type {
	for {
		p, ok := t.(*types.Pointer)
		if !ok {
			return t
		}
		t = p.Elem()
	}
}

// syncTypeName returns the sync package type name of t (pointers stripped),
// or "" when t is not a sync type.
func syncTypeName(t types.Type) string {
	named, ok := stripPtr(t).(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return ""
	}
	return obj.Name()
}

// namedKey renders "pkg/path.(Type)" for a named type, or "".
func namedKey(t types.Type) string {
	named, ok := stripPtr(t).(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	return named.Obj().Pkg().Path() + ".(" + named.Obj().Name() + ")"
}

// lockKeyOf derives the stable identity of the lock expression e (the
// receiver of a Lock/Unlock call): field path, package-level var, embedded
// named type, or function-scoped local/parameter. "" means untrackable.
func lockKeyOf(info *types.Info, fnKey FuncKey, e ast.Expr) string {
	e = unparen(e)
	switch e := e.(type) {
	case *ast.SelectorExpr:
		obj := info.ObjectOf(e.Sel)
		v, ok := obj.(*types.Var)
		if !ok {
			return ""
		}
		if !v.IsField() {
			// Package-qualified package-level var: otherpkg.Mu.
			if v.Pkg() != nil && isPackageLevel(v) {
				return v.Pkg().Path() + "." + v.Name()
			}
			return ""
		}
		if sel, ok := info.Selections[e]; ok {
			if key := namedKey(sel.Recv()); key != "" {
				return key + "." + v.Name()
			}
		}
		return ""
	case *ast.Ident:
		v, ok := info.ObjectOf(e).(*types.Var)
		if !ok {
			return ""
		}
		if isPackageLevel(v) {
			if v.Pkg() == nil {
				return ""
			}
			return v.Pkg().Path() + "." + v.Name()
		}
		if syncTypeName(v.Type()) == "" {
			// A named type embedding the mutex: s.Lock() resolves to the
			// embedded sync.Mutex; the lock's identity is the type itself.
			return namedKey(v.Type())
		}
		// Local or parameter mutex: identity scoped to this function.
		return string(fnKey) + ".$" + v.Name()
	}
	return ""
}

// mutexOp classifies call as a sync.Mutex/RWMutex method invocation.
// op is one of "lock", "rlock", "unlock", "runlock"; recv is the receiver
// expression carrying the lock's identity.
func mutexOp(info *types.Info, call *ast.CallExpr) (op string, recv ast.Expr, ok bool) {
	mi, isMethod := methodInfoOf(info, call)
	if !isMethod || mi.pkg != "sync" || (mi.typ != "Mutex" && mi.typ != "RWMutex") {
		return "", nil, false
	}
	sel, isSel := unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", nil, false
	}
	switch mi.name {
	case "Lock":
		return "lock", sel.X, true
	case "RLock":
		return "rlock", sel.X, true
	case "Unlock":
		return "unlock", sel.X, true
	case "RUnlock":
		return "runlock", sel.X, true
	}
	// TryLock/TryRLock acquire only on one branch of their result; tracking
	// them as unconditional acquisitions would fabricate held state.
	return "", nil, false
}

// wgOp classifies call as a sync.WaitGroup method invocation.
func wgOp(info *types.Info, call *ast.CallExpr) (name string, recv ast.Expr, ok bool) {
	mi, isMethod := methodInfoOf(info, call)
	if !isMethod || mi.pkg != "sync" || mi.typ != "WaitGroup" {
		return "", nil, false
	}
	sel, isSel := unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", nil, false
	}
	return mi.name, sel.X, true
}

// baseIdentObj resolves the leftmost identifier of e (&s.mu → s, wg → wg),
// or nil.
func baseIdentObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := unparen(e).(type) {
		case *ast.Ident:
			return info.ObjectOf(x)
		case *ast.SelectorExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// blockingCall classifies call as a blocking operation a lock must not be
// held across on a serving path: condition waits, WaitGroup waits, and the
// recognizable network/file I/O surface. The list is deliberately a
// heuristic vocabulary, not a completeness claim.
func blockingCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	if mi, ok := methodInfoOf(info, call); ok {
		switch {
		case mi.pkg == "sync" && mi.typ == "WaitGroup" && mi.name == "Wait":
			return "sync.WaitGroup.Wait", true
		case mi.pkg == "net/http" && mi.typ == "Client":
			switch mi.name {
			case "Do", "Get", "Post", "PostForm", "Head":
				return "http.Client." + mi.name, true
			}
		case mi.pkg == "os" && mi.typ == "File":
			switch mi.name {
			case "Read", "ReadAt", "Write", "WriteAt", "Sync", "ReadFrom", "WriteTo":
				return "os.File." + mi.name, true
			}
		}
		return "", false
	}
	if pkg, name, ok := pkgFuncOf(info, call); ok {
		switch pkg {
		case "net":
			switch name {
			case "Dial", "DialTimeout", "Listen", "ListenPacket":
				return "net." + name, true
			}
		case "net/http":
			switch name {
			case "Get", "Post", "PostForm", "Head":
				return "http." + name, true
			}
		case "os":
			switch name {
			case "ReadFile", "WriteFile", "Open", "OpenFile", "Create":
				return "os." + name, true
			}
		case "io":
			switch name {
			case "Copy", "CopyN", "ReadAll":
				return "io." + name, true
			}
		}
	}
	return "", false
}

// heldLock is one entry of the may-held set.
type heldLock struct {
	pos  token.Pos
	read bool
}

func cloneHeld(h map[string]heldLock) map[string]heldLock {
	c := make(map[string]heldLock, len(h))
	for k, v := range h {
		c[k] = v
	}
	return c
}

// unionHeld merges two branch states under may-held semantics; a's witness
// wins on conflict.
func unionHeld(a, b map[string]heldLock) map[string]heldLock {
	m := cloneHeld(a)
	for k, v := range b {
		if _, ok := m[k]; !ok {
			m[k] = v
		}
	}
	return m
}

// sortedHeld returns the held keys in sorted order for deterministic edge
// and message generation.
func sortedHeld(h map[string]heldLock) []string {
	keys := make([]string, 0, len(h))
	for k := range h {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// A concWalker walks one function's body tracking the may-held lock set.
// Phase one (emit=false) builds the ConcSummary; phase two (emit=true)
// re-walks against converged summaries, recording lock-order edges and
// held-across-blocking findings.
type concWalker struct {
	prog *Program
	fi   *FuncInfo
	sum  *ConcSummary

	emit         bool
	serverReach  bool
	edges        *[]lockEdge
	findings     *[]concFinding
	deferRelease map[string]bool
	noExit       int // >0 inside closures whose returns are not function exits
}

func newConcWalker(prog *Program, fi *FuncInfo, sum *ConcSummary) *concWalker {
	return &concWalker{prog: prog, fi: fi, sum: sum, deferRelease: map[string]bool{}}
}

func (w *concWalker) walk() {
	held := map[string]heldLock{}
	w.stmt(w.fi.Decl.Body, held, false)
	w.exit(held)
}

// exit records which locks may still be held when the function returns.
func (w *concWalker) exit(held map[string]heldLock) {
	if w.noExit > 0 {
		return
	}
	for k, h := range held {
		if w.deferRelease[k] {
			continue
		}
		if _, ok := w.sum.HoldsOnExit[k]; !ok {
			w.sum.HoldsOnExit[k] = h.pos
		}
	}
}

// acquire registers taking key at pos with the current held set: edges from
// every held lock (phase two), summary facts (phase one), and the new hold.
func (w *concWalker) acquire(key string, pos token.Pos, read, spawned bool, held map[string]heldLock) {
	if w.emit {
		for _, h := range sortedHeld(held) {
			*w.edges = append(*w.edges, lockEdge{
				From: h, To: key, Pos: pos, Fn: w.fi.Key,
				Read: read && held[h].read,
			})
		}
	}
	if !spawned {
		if _, ok := w.sum.Acquires[key]; !ok {
			w.sum.Acquires[key] = pos
		}
	}
	if _, ok := held[key]; !ok {
		held[key] = heldLock{pos: pos, read: read}
	}
}

// blocking reports op at pos when any lock is held on a server-reachable
// path (phase two only).
func (w *concWalker) blocking(pos token.Pos, op string, held map[string]heldLock) {
	if !w.emit || !w.serverReach || len(held) == 0 {
		return
	}
	keys := sortedHeld(held)
	label := shortLockKey(keys[0])
	if len(keys) > 1 {
		label += " (+" + itoa(len(keys)-1) + " more)"
	}
	*w.findings = append(*w.findings, concFinding{
		pos:  pos,
		rule: "lockorder",
		msg: "lock " + label + " is held across " + op +
			" on a server-reachable path: a blocked holder stalls every other acquirer — release the lock first or bound the wait (lockorder contract, DESIGN.md)",
	})
}

// shortLockKey trims the import-path prefix for readable messages:
// "repro/internal/server.(Job).mu" → "server.(Job).mu".
func shortLockKey(key string) string {
	// The key's function-local form embeds a FuncKey; both forms shorten
	// the same way — keep everything after the last path separator.
	if i := strings.LastIndex(key, "/"); i >= 0 {
		return key[i+1:]
	}
	return key
}

// markSyncParam records a sync operation on parameter i of the function.
func (w *concWalker) markSyncParam(recv ast.Expr, wgAdd bool) {
	obj := baseIdentObj(w.fi.Pkg.Info, recv)
	if obj == nil {
		return
	}
	i := paramIndex(w.fi.Pkg.Info, w.fi.Decl, obj)
	if i < 0 {
		return
	}
	if i < len(w.sum.SyncsParam) {
		w.sum.SyncsParam[i] = true
	}
	if wgAdd && i < len(w.sum.AddsWGParam) {
		w.sum.AddsWGParam[i] = true
	}
}

// call processes one call expression against the current held set.
func (w *concWalker) call(call *ast.CallExpr, held map[string]heldLock, spawned bool) {
	info := w.fi.Pkg.Info
	for _, a := range call.Args {
		w.expr(a, held, spawned)
	}

	if op, recv, ok := mutexOp(info, call); ok {
		key := lockKeyOf(info, w.fi.Key, recv)
		if key == "" {
			return
		}
		switch op {
		case "lock", "rlock":
			w.acquire(key, call.Pos(), op == "rlock", spawned, held)
			w.markSyncParam(recv, false)
		case "unlock", "runlock":
			delete(held, key)
		}
		return
	}
	if name, recv, ok := wgOp(info, call); ok {
		w.markSyncParam(recv, name == "Add")
		if name == "Wait" {
			w.blocking(call.Pos(), "sync.WaitGroup.Wait", held)
		}
		return
	}
	if mi, ok := methodInfoOf(info, call); ok && mi.pkg == "sync" && mi.typ == "Cond" && mi.name == "Wait" {
		// Cond.Wait atomically unlocks its own locker while parked, so
		// only *other* held locks are a stall hazard. An unresolvable
		// cond (no NewCond site seen) conservatively exempts nothing.
		heldOther := held
		if sel, isSel := unparen(call.Fun).(*ast.SelectorExpr); isSel {
			condKey := lockKeyOf(info, w.fi.Key, sel.X)
			if locker, ok := w.prog.CondLockers[condKey]; ok {
				heldOther = cloneHeld(held)
				delete(heldOther, locker)
			}
		}
		w.blocking(call.Pos(), "sync.Cond.Wait", heldOther)
		return
	}
	if op, ok := blockingCall(info, call); ok {
		w.blocking(call.Pos(), op, held)
		return
	}

	callee := w.prog.Funcs[staticCalleeKey(info, call)]
	if callee == nil || callee.Conc == nil {
		return
	}
	cs := callee.Conc
	if w.emit && len(held) > 0 && len(cs.Acquires) > 0 {
		acq := make([]string, 0, len(cs.Acquires))
		for k := range cs.Acquires {
			acq = append(acq, k)
		}
		sort.Strings(acq)
		for _, h := range sortedHeld(held) {
			for _, to := range acq {
				*w.edges = append(*w.edges, lockEdge{From: h, To: to, Pos: call.Pos(), Fn: w.fi.Key, Read: held[h].read})
			}
		}
	}
	if !spawned {
		for k := range cs.Acquires {
			if _, ok := w.sum.Acquires[k]; !ok {
				w.sum.Acquires[k] = call.Pos()
			}
		}
		if cs.Unbounded && w.noExit == 0 {
			w.sum.Unbounded = true
		}
	}
	// Locks a callee leaves held (lock helpers) join the caller's held set.
	for k := range cs.HoldsOnExit {
		if _, ok := held[k]; !ok {
			held[k] = heldLock{pos: call.Pos()}
		}
	}
	// Parameter sync facts travel through the call.
	for ai, a := range call.Args {
		if ai >= len(cs.SyncsParam) {
			break
		}
		if !cs.SyncsParam[ai] && !cs.AddsWGParam[ai] {
			continue
		}
		obj := baseIdentObj(info, a)
		if obj == nil {
			continue
		}
		if i := paramIndex(info, w.fi.Decl, obj); i >= 0 {
			if cs.SyncsParam[ai] && i < len(w.sum.SyncsParam) {
				w.sum.SyncsParam[i] = true
			}
			if cs.AddsWGParam[ai] && i < len(w.sum.AddsWGParam) {
				w.sum.AddsWGParam[i] = true
			}
		}
	}
}

// expr walks an expression, dispatching calls, receives, and closures.
func (w *concWalker) expr(e ast.Expr, held map[string]heldLock, spawned bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			w.call(n, held, spawned)
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				w.blocking(n.Pos(), "channel receive", held)
			}
			return true
		case *ast.FuncLit:
			// A plain literal runs synchronously in the common callback
			// shapes; walk it against the current held set, but its returns
			// are not function exits.
			w.noExit++
			w.stmt(n.Body, held, spawned)
			w.noExit--
			return false
		}
		return true
	})
}

// stmt walks one statement under may-held semantics.
func (w *concWalker) stmt(s ast.Stmt, held map[string]heldLock, spawned bool) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, sub := range s.List {
			w.stmt(sub, held, spawned)
		}
	case *ast.ExprStmt:
		w.expr(s.X, held, spawned)
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			w.expr(r, held, spawned)
		}
		for _, l := range s.Lhs {
			w.expr(l, held, spawned)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.expr(v, held, spawned)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.expr(r, held, spawned)
		}
		w.exit(held)
	case *ast.SendStmt:
		w.expr(s.Chan, held, spawned)
		w.expr(s.Value, held, spawned)
		w.blocking(s.Arrow, "channel send", held)
	case *ast.IfStmt:
		w.stmt(s.Init, held, spawned)
		w.expr(s.Cond, held, spawned)
		thenHeld := cloneHeld(held)
		w.stmt(s.Body, thenHeld, spawned)
		elseHeld := cloneHeld(held)
		w.stmt(s.Else, elseHeld, spawned)
		merged := unionHeld(thenHeld, elseHeld)
		for k := range held {
			delete(held, k)
		}
		for k, v := range merged {
			held[k] = v
		}
	case *ast.ForStmt:
		// An infinite loop makes this function unbounded only on its own
		// control flow — not inside a spawned goroutine (that is the
		// goroutine's lifetime, judged at its own spawn site) and not
		// inside a stored closure.
		if s.Cond == nil && !spawned && w.noExit == 0 && !loopEscapes(s) {
			w.sum.Unbounded = true
		}
		w.stmt(s.Init, held, spawned)
		w.expr(s.Cond, held, spawned)
		body := cloneHeld(held)
		w.stmt(s.Body, body, spawned)
		w.stmt(s.Post, body, spawned)
		for k, v := range body {
			if _, ok := held[k]; !ok {
				held[k] = v
			}
		}
	case *ast.RangeStmt:
		w.expr(s.X, held, spawned)
		body := cloneHeld(held)
		w.stmt(s.Body, body, spawned)
		for k, v := range body {
			if _, ok := held[k]; !ok {
				held[k] = v
			}
		}
	case *ast.SwitchStmt:
		w.stmt(s.Init, held, spawned)
		w.expr(s.Tag, held, spawned)
		w.caseArms(s.Body, held, spawned, nil)
	case *ast.TypeSwitchStmt:
		w.stmt(s.Init, held, spawned)
		w.stmt(s.Assign, held, spawned)
		w.caseArms(s.Body, held, spawned, nil)
	case *ast.SelectStmt:
		hasDefault := false
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			w.blocking(s.Select, "select", held)
		}
		var arms []*ast.CommClause
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				arms = append(arms, cc)
			}
		}
		var merged map[string]heldLock
		for _, cc := range arms {
			arm := cloneHeld(held)
			// The comm op itself: sends/receives in comms are covered by
			// the select-level blocking report, so walk only nested calls.
			if cc.Comm != nil {
				w.commExprs(cc.Comm, arm, spawned)
			}
			for _, sub := range cc.Body {
				w.stmt(sub, arm, spawned)
			}
			if merged == nil {
				merged = arm
			} else {
				merged = unionHeld(merged, arm)
			}
		}
		if merged != nil {
			for k, v := range merged {
				if _, ok := held[k]; !ok {
					held[k] = v
				}
			}
		}
	case *ast.DeferStmt:
		if op, recv, ok := mutexOp(w.fi.Pkg.Info, s.Call); ok && (op == "unlock" || op == "runlock") {
			if key := lockKeyOf(w.fi.Pkg.Info, w.fi.Key, recv); key != "" {
				w.deferRelease[key] = true
			}
			return
		}
		if lit, ok := unparen(s.Call.Fun).(*ast.FuncLit); ok {
			// Unlocks anywhere in a deferred closure discharge the hold at
			// exit; the closure's other effects run against a throwaway
			// clone (it executes after the body).
			ast.Inspect(lit.Body, func(n ast.Node) bool {
				call, isCall := n.(*ast.CallExpr)
				if !isCall {
					return true
				}
				if op, recv, ok := mutexOp(w.fi.Pkg.Info, call); ok && (op == "unlock" || op == "runlock") {
					if key := lockKeyOf(w.fi.Pkg.Info, w.fi.Key, recv); key != "" {
						w.deferRelease[key] = true
					}
				}
				return true
			})
			w.noExit++
			w.stmt(lit.Body, cloneHeld(held), spawned)
			w.noExit--
			return
		}
		for _, a := range s.Call.Args {
			w.expr(a, held, spawned)
		}
	case *ast.GoStmt:
		// The goroutine starts with no locks held and its acquisitions are
		// not the spawner's; only its internal ordering is recorded.
		if lit, ok := unparen(s.Call.Fun).(*ast.FuncLit); ok {
			w.noExit++
			w.stmt(lit.Body, map[string]heldLock{}, true)
			w.noExit--
		} else {
			for _, a := range s.Call.Args {
				w.expr(a, held, spawned)
			}
		}
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, held, spawned)
	case *ast.IncDecStmt:
		w.expr(s.X, held, spawned)
	}
}

// caseArms merges switch clause bodies under may-held union.
func (w *concWalker) caseArms(body *ast.BlockStmt, held map[string]heldLock, spawned bool, _ []ast.Stmt) {
	var merged map[string]heldLock
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		arm := cloneHeld(held)
		for _, sub := range cc.Body {
			w.stmt(sub, arm, spawned)
		}
		if merged == nil {
			merged = arm
		} else {
			merged = unionHeld(merged, arm)
		}
	}
	if merged != nil {
		for k, v := range merged {
			if _, ok := held[k]; !ok {
				held[k] = v
			}
		}
	}
}

// commExprs walks the nested expressions of a select comm op without
// re-reporting the comm itself as a blocking site.
func (w *concWalker) commExprs(comm ast.Stmt, held map[string]heldLock, spawned bool) {
	switch c := comm.(type) {
	case *ast.SendStmt:
		w.expr(c.Chan, held, spawned)
		w.expr(c.Value, held, spawned)
	case *ast.ExprStmt:
		if u, ok := unparen(c.X).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
			w.expr(u.X, held, spawned)
			return
		}
		w.expr(c.X, held, spawned)
	case *ast.AssignStmt:
		for _, r := range c.Rhs {
			if u, ok := unparen(r).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				w.expr(u.X, held, spawned)
				continue
			}
			w.expr(r, held, spawned)
		}
	}
}

// loopEscapes reports whether an infinite `for` loop has any way out:
// a return, an unlabeled break addressing this loop, any labeled branch,
// a goto, or a terminating call (panic, os.Exit, runtime.Goexit,
// log.Fatal*). Nested function literals are opaque — their returns do not
// exit the loop.
func loopEscapes(loop *ast.ForStmt) bool {
	found := false
	var walk func(n ast.Node, depth int)
	walk = func(n ast.Node, depth int) {
		if found || n == nil {
			return
		}
		ast.Inspect(n, func(m ast.Node) bool {
			if found {
				return false
			}
			switch m := m.(type) {
			case *ast.FuncLit:
				return false
			case *ast.ReturnStmt:
				found = true
				return false
			case *ast.BranchStmt:
				if m.Label != nil {
					found = true // conservatively an escape
					return false
				}
				if m.Tok == token.BREAK && depth == 0 {
					found = true
					return false
				}
				return false
			case *ast.ForStmt:
				walkNested(m, depth, walk)
				return false
			case *ast.RangeStmt:
				walk(m.Body, depth+1)
				return false
			case *ast.SwitchStmt:
				walk(m.Body, depth+1)
				return false
			case *ast.TypeSwitchStmt:
				walk(m.Body, depth+1)
				return false
			case *ast.SelectStmt:
				walk(m.Body, depth+1)
				return false
			case *ast.CallExpr:
				if isTerminatingCall(m) {
					found = true
					return false
				}
				return true
			}
			return true
		})
	}
	walk(loop.Body, 0)
	return found
}

// walkNested descends into a nested for loop: breaks inside it address it,
// not the outer loop, but returns still escape.
func walkNested(m *ast.ForStmt, depth int, walk func(ast.Node, int)) {
	walk(m.Init, depth)
	walk(m.Post, depth)
	walk(m.Body, depth+1)
}

// isTerminatingCall recognizes calls that never return normally.
func isTerminatingCall(call *ast.CallExpr) bool {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			switch {
			case id.Name == "os" && fun.Sel.Name == "Exit",
				id.Name == "runtime" && fun.Sel.Name == "Goexit",
				id.Name == "log" && strings.HasPrefix(fun.Sel.Name, "Fatal"),
				id.Name == "log" && strings.HasPrefix(fun.Sel.Name, "Panic"):
				return true
			}
		}
	}
	return false
}

// collectCondLockers resolves every sync.NewCond(&lock) site in the
// package set to a (cond key -> locker key) pair, using the same stable
// key vocabulary as the lock graph. Conds whose locker expression is
// untrackable (or constructed indirectly) simply stay unresolved.
func collectCondLockers(prog *Program) map[string]string {
	out := map[string]string{}
	note := func(info *types.Info, target, value ast.Expr) {
		call, ok := unparen(value).(*ast.CallExpr)
		if !ok {
			return
		}
		pkg, name, ok := pkgFuncOf(info, call)
		if !ok || pkg != "sync" || name != "NewCond" || len(call.Args) != 1 {
			return
		}
		u, ok := unparen(call.Args[0]).(*ast.UnaryExpr)
		if !ok || u.Op != token.AND {
			return
		}
		locker := lockKeyOf(info, "", u.X)
		condKey := lockKeyOf(info, "", target)
		if locker != "" && condKey != "" {
			out[condKey] = locker
		}
	}
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					if len(n.Lhs) != len(n.Rhs) {
						return true
					}
					for i := range n.Lhs {
						note(pkg.Info, n.Lhs[i], n.Rhs[i])
					}
				case *ast.ValueSpec:
					for i, name := range n.Names {
						if i < len(n.Values) {
							note(pkg.Info, name, n.Values[i])
						}
					}
				case *ast.KeyValueExpr:
					if key, ok := n.Key.(*ast.Ident); ok {
						note(pkg.Info, key, n.Value)
					}
				}
				return true
			})
		}
	}
	return out
}

// computeConcSummaries runs the bottom-up fixpoint for the concurrency
// facts, mirroring computeSummaries.
func computeConcSummaries(prog *Program) {
	for _, key := range prog.sortedFuncKeys() {
		fi := prog.Funcs[key]
		fi.Conc = newConcSummary(numParams(fi.Decl))
	}
	for _, scc := range prog.sccOrder() {
		for iter := 0; iter < len(scc)+1; iter++ {
			changed := false
			for _, key := range scc {
				fi := prog.Funcs[key]
				next := newConcSummary(numParams(fi.Decl))
				w := newConcWalker(prog, fi, next)
				w.walk()
				if !fi.Conc.equalConc(next) {
					fi.Conc = next
					changed = true
				}
			}
			if !changed {
				break
			}
		}
	}
}

// collectConcFindings re-walks every function against the converged
// summaries, records the global lock-order edges, reports blocking sites,
// and folds edge inversions into per-package cycle diagnostics. dir is the
// base against which message positions are rendered.
func collectConcFindings(prog *Program, dir string) {
	prog.ConcFindings = map[string][]concFinding{}
	prog.CondLockers = collectCondLockers(prog)
	var edges []lockEdge
	for _, key := range prog.sortedFuncKeys() {
		fi := prog.Funcs[key]
		var findings []concFinding
		w := newConcWalker(prog, fi, newConcSummary(numParams(fi.Decl)))
		w.emit = true
		w.serverReach = prog.ServerReachable[key]
		w.edges = &edges
		w.findings = &findings
		w.walk()
		if len(findings) > 0 {
			path := fi.Pkg.Path
			prog.ConcFindings[path] = append(prog.ConcFindings[path], findings...)
		}
	}
	reportLockCycles(prog, edges, dir)
}

// relPos renders pos as "file:line" relative to dir, matching the runner's
// diagnostic relativization so cycle messages are stable across checkouts.
func relPos(prog *Program, dir string, pos token.Pos) string {
	p := prog.Fset.Position(pos)
	name := p.Filename
	if dir == "" {
		dir = "."
	}
	if abs, err := filepath.Abs(dir); err == nil {
		if rel, err := filepath.Rel(abs, name); err == nil && !strings.HasPrefix(rel, "..") {
			name = filepath.ToSlash(rel)
		}
	}
	return name + ":" + itoa(p.Line)
}

// reportLockCycles finds strongly connected components of the lock-order
// graph and reports each once, with the full cycle and every edge's witness
// position. A self-edge (a lock acquired while already held) is its own
// finding unless both acquisitions are read-locks taken at the same site
// vocabulary — recursive RLock is still reported, since a concurrent writer
// deadlocks it, but with its own message.
func reportLockCycles(prog *Program, edges []lockEdge, dir string) {
	// First witness per (From, To) pair wins; input order is deterministic.
	first := map[[2]string]lockEdge{}
	var keys []string
	seen := map[string]bool{}
	note := func(k string) {
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	for _, e := range edges {
		pair := [2]string{e.From, e.To}
		if _, ok := first[pair]; !ok {
			first[pair] = e
		}
		note(e.From)
		note(e.To)
	}
	sort.Strings(keys)

	addFinding := func(e lockEdge, msg string) {
		fi := prog.Funcs[e.Fn]
		if fi == nil {
			return
		}
		path := fi.Pkg.Path
		prog.ConcFindings[path] = append(prog.ConcFindings[path], concFinding{
			pos: e.Pos, rule: "lockorder", msg: msg,
		})
	}

	// Self-deadlock: acquiring a lock already held on the same goroutine.
	for _, k := range keys {
		if e, ok := first[[2]string{k, k}]; ok {
			kind := "sync.Mutex self-deadlock"
			if e.Read {
				kind = "recursive RLock (deadlocks against a waiting writer)"
			}
			addFinding(e, "lock "+shortLockKey(k)+" is acquired at "+relPos(prog, dir, e.Pos)+
				" while already held: "+kind+" (lockorder contract, DESIGN.md)")
		}
	}

	// Order inversions: SCCs of the graph with more than one lock.
	adj := map[string][]string{}
	for pair := range first {
		if pair[0] != pair[1] {
			adj[pair[0]] = append(adj[pair[0]], pair[1])
		}
	}
	for k := range adj {
		sort.Strings(adj[k])
	}
	for _, scc := range lockSCCs(keys, adj) {
		if len(scc) < 2 {
			continue
		}
		cycle := findCycle(scc, adj)
		if len(cycle) == 0 {
			continue
		}
		var b strings.Builder
		b.WriteString("lock-order inversion (potential deadlock): ")
		for i := range cycle {
			from := cycle[i]
			to := cycle[(i+1)%len(cycle)]
			e := first[[2]string{from, to}]
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(shortLockKey(from) + " -> " + shortLockKey(to) +
				" at " + relPos(prog, dir, e.Pos))
		}
		b.WriteString(" (lockorder contract, DESIGN.md)")
		firstEdge := first[[2]string{cycle[0], cycle[1%len(cycle)]}]
		addFinding(firstEdge, b.String())
	}
}

// lockSCCs is Tarjan over the lock graph, seeded in sorted key order.
func lockSCCs(keys []string, adj map[string][]string) [][]string {
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	var sccs [][]string
	next := 0
	var connect func(v string)
	connect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, ok := index[w]; !ok {
				connect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sort.Strings(scc)
			sccs = append(sccs, scc)
		}
	}
	for _, k := range keys {
		if _, ok := index[k]; !ok {
			connect(k)
		}
	}
	sort.Slice(sccs, func(i, j int) bool { return sccs[i][0] < sccs[j][0] })
	return sccs
}

// findCycle returns one cycle through the SCC starting from its smallest
// node, following sorted edges restricted to the component.
func findCycle(scc []string, adj map[string][]string) []string {
	in := map[string]bool{}
	for _, k := range scc {
		in[k] = true
	}
	start := scc[0]
	var path []string
	onPath := map[string]bool{}
	var dfs func(v string) []string
	dfs = func(v string) []string {
		path = append(path, v)
		onPath[v] = true
		for _, w := range adj[v] {
			if !in[w] {
				continue
			}
			if w == start && len(path) > 1 {
				out := append([]string{}, path...)
				path = path[:len(path)-1]
				onPath[v] = false
				return out
			}
			if !onPath[w] {
				if out := dfs(w); out != nil {
					return out
				}
			}
		}
		path = path[:len(path)-1]
		onPath[v] = false
		return nil
	}
	return dfs(start)
}
