package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// The three compiler-fact analyzers. Each scopes itself to the hot regions
// the lint.hot manifest declares (hotmanifest.go) and reads the positioned
// facts gcdiag.go parsed out of `go tool compile -m -d=ssa/check_bce`.
//
// Ratchet keying. Diagnostic messages deliberately name the hot function
// but never a line number: the baseline (baseline.go) keys entries on
// (file, rule, message) with a count, so "N surviving bounds checks in
// (*Plan).inversePruned4" is absorbed while check N+1 — a new bounds check
// introduced by an edit anywhere in that function — surfaces as fresh even
// when every line number in the file shifted.

// BCE flags index/slice expressions whose bounds check survived SSA
// optimization inside a declared hot function.
var BCE = &Analyzer{
	Name: "bce",
	Doc:  "flags surviving compiler bounds checks (ssa/check_bce) inside lint.hot-declared hot functions",
	Run:  runBCE,
}

// Escape flags values the compiler moved to the heap inside a declared hot
// function.
var Escape = &Analyzer{
	Name: "escape",
	Doc:  "flags compiler-proven heap escapes (-m) inside lint.hot-declared hot functions",
	Run:  runEscape,
}

// Inline flags calls inside a declared hot function that the compiler did
// not inline.
var Inline = &Analyzer{
	Name: "inline",
	Doc:  "flags in-module calls inside lint.hot-declared hot functions that fell out of the inlining budget",
	Run:  runInline,
}

// gcSetup fetches the shared pieces every gc analyzer needs, reporting
// ok=false when the run has no manifest or this package is not covered.
func gcSetup(pass *Pass) (facts *GCFacts, regions []hotRegion, ok bool) {
	prog := pass.Prog
	if prog == nil || prog.Hot == nil {
		return nil, nil, false
	}
	facts = prog.GCFacts[pass.Pkg.Path()]
	if facts == nil {
		return nil, nil, false
	}
	regions = hotRegionsOf(pass, prog.Hot)
	return facts, regions, len(regions) > 0
}

// factPos resolves a compiler-reported (line, col) inside region to a
// token.Pos in the loader's FileSet. The compiler was handed the same
// absolute paths the parser loaded, so the region's token.File is the
// right coordinate system.
func factPos(pass *Pass, region *hotRegion, f GCFact) token.Pos {
	tf := pass.Fset.File(region.fd.Pos())
	if tf == nil || f.Line < 1 || f.Line > tf.LineCount() {
		return region.fd.Pos()
	}
	p := tf.LineStart(f.Line) + token.Pos(f.Col-1)
	if p < token.Pos(tf.Base()) || p > token.Pos(tf.Base()+tf.Size()) {
		return tf.LineStart(f.Line)
	}
	return p
}

func runBCE(pass *Pass) {
	facts, regions, ok := gcSetup(pass)
	if !ok {
		return
	}
	for _, f := range facts.BoundsChecks {
		r := regionAt(regions, f.File, f.Line)
		if r == nil {
			continue
		}
		pass.Report(factPos(pass, r, f), nil,
			"bounds check survives in hot function %s (%s): reslice or hoist the bound so the compiler can drop it (bce ratchet, lint.hot)",
			r.name, f.Text)
	}
}

// panicIntervals collects the source intervals of panic(...) calls in fd:
// escapes confined to a panic argument (operand boxing, Sprintf of the
// message) happen on a path that is already crashing and would drown the
// real findings.
func panicIntervals(pass *Pass, fd *ast.FuncDecl) [][2]token.Pos {
	var out [][2]token.Pos
	ast.Inspect(fd, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
			if _, isBuiltin := pass.Info.ObjectOf(id).(*types.Builtin); isBuiltin {
				out = append(out, [2]token.Pos{call.Pos(), call.End()})
			}
		}
		return true
	})
	return out
}

func runEscape(pass *Pass) {
	facts, regions, ok := gcSetup(pass)
	if !ok {
		return
	}
	panics := map[*ast.FuncDecl][][2]token.Pos{}
	for _, f := range facts.Escapes {
		r := regionAt(regions, f.File, f.Line)
		if r == nil {
			continue
		}
		pos := factPos(pass, r, f)
		iv, cached := panics[r.fd]
		if !cached {
			iv = panicIntervals(pass, r.fd)
			panics[r.fd] = iv
		}
		onPanicPath := false
		for _, p := range iv {
			if p[0] <= pos && pos < p[1] {
				onPanicPath = true
				break
			}
		}
		if onPanicPath {
			continue
		}
		pass.Report(pos, nil,
			"heap allocation in hot function %s: %s — hoist it out of the hot path or pool it (escape ratchet, lint.hot)",
			r.name, f.Text)
	}
}

func runInline(pass *Pass) {
	facts, regions, ok := gcSetup(pass)
	if !ok {
		return
	}
	prog := pass.Prog
	pkg := prog.packageOf(pass.Pkg)
	if pkg == nil {
		return
	}
	for ri := range regions {
		r := &regions[ri]
		self := prog.FuncOf(pkg, r.fd)

		// Calls under go/defer are never inlined by the compiler; skip them.
		skip := map[*ast.CallExpr]bool{}
		ast.Inspect(r.fd, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				skip[n.Call] = true
			case *ast.DeferStmt:
				skip[n.Call] = true
			}
			return true
		})

		ast.Inspect(r.fd, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || skip[call] {
				return true
			}
			calleeKey := staticCalleeKey(pkg.Info, call)
			callee := prog.Funcs[calleeKey]
			if callee == nil {
				return true // out-of-module, dynamic, builtin, conversion: no budget to guard
			}
			if self != nil && callee.Key == self.Key {
				return true // direct recursion can never inline
			}
			lp := pass.Fset.Position(call.Lparen)
			if facts.Inlined[fmt.Sprintf("%s:%d:%d", lp.Filename, lp.Line, lp.Column)] {
				return true
			}
			name := string(callee.Key)
			if i := strings.LastIndex(name, "/"); i >= 0 {
				name = name[i+1:]
			}
			pass.Report(call.Lparen, nil,
				"call to %s is not inlined in hot function %s%s (inline ratchet, lint.hot)",
				name, r.name, inlineReason(prog, callee))
			return true
		})
	}
}

// inlineReason looks up the compiler's cannot-inline verdict for callee in
// its own package's facts, when that package was compiled too.
func inlineReason(prog *Program, callee *FuncInfo) string {
	facts := prog.GCFacts[callee.Pkg.Path]
	if facts == nil {
		return ""
	}
	pos := prog.Fset.Position(callee.Decl.Name.Pos())
	if reason, ok := facts.CannotInline[fmt.Sprintf("%s:%d", pos.Filename, pos.Line)]; ok {
		return ": " + reason
	}
	return " (callee is inlinable; this site is not)"
}
