package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// TimerLeak is leasepath's serving-era sibling: where a pool lease owes a
// Put, a time.Ticker owes a Stop and a context.WithCancel/WithTimeout/
// WithDeadline owes its cancel call — on every path out of the acquiring
// function. An unstopped ticker leaks a goroutine that fires forever; an
// uncancelled WithTimeout parks its timer (and everything the context
// retains) until the deadline even when the work finished early; both are
// exactly the slow-leak class a long-running daemon (PR 6) cannot afford
// and a one-shot CLI never noticed.
//
// The rule reuses the leasepath walker in timerMode (leasepath.go): the
// same branch-sensitive must-release semantics, clone-per-arm merging,
// deferred-closure handling and hand-off discipline, with the acquire/
// dispose vocabulary swapped. Disposal is t.Stop() or invoking the bound
// cancel func (directly, deferred, or inside a deferred closure);
// hand-offs — returning the timer, storing it or the cancel func into a
// struct/container, passing either to a callee — end tracking, mirroring
// leasepath's "don't accuse unseen code" stance. time.Tick is reported
// unconditionally: its ticker is unreachable, so no path can ever stop it.
var TimerLeak = &Analyzer{
	Name: "timerleak",
	Doc:  "flags time.Ticker/time.Timer values and context cancel funcs not Stopped/called on every path, branch-sensitive like leasepath",
	Run:  runTimerLeak,
}

func runTimerLeak(pass *Pass) {
	if pass.Prog == nil {
		return
	}
	pkg := pass.Prog.packageOf(pass.Pkg)
	if pkg == nil {
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			lw := newLeaseWalker(pass.Prog, pkg, fd, pass)
			lw.seedGets = true
			lw.timerMode = true
			lw.walk()
		}
	}
}

// timerLeakMsg picks the exit-leak message format for one acquisition
// source; the two %s/%d verbs are (source, exit line).
func timerLeakMsg(src string) string {
	if strings.HasPrefix(src, "context.") {
		return "the cancel func from %s is not called on every path: the exit at line %d leaks the context's timer and retained values (timerleak contract, DESIGN.md)"
	}
	return "the %s result is not Stopped on every path: the exit at line %d leaks its timer goroutine (timerleak contract, DESIGN.md)"
}

// timerAcquire recognizes a tracked acquisition and reports which result
// index carries the release obligation.
func timerAcquire(info *types.Info, call *ast.CallExpr) (src string, result int, ok bool) {
	pkg, name, ok := pkgFuncOf(info, call)
	if !ok {
		return "", 0, false
	}
	switch pkg {
	case "time":
		if name == "NewTicker" || name == "NewTimer" {
			return "time." + name, 0, true
		}
	case "context":
		switch name {
		case "WithCancel", "WithTimeout", "WithDeadline",
			"WithCancelCause", "WithTimeoutCause", "WithDeadlineCause":
			return "context." + name, 1, true
		}
	}
	return "", 0, false
}

// identLease resolves e to a live tracked lease when e is a plain
// identifier, with no side effects (safe to probe before evaluation).
func (w *leaseWalker) identLease(e ast.Expr, st *leaseState) int {
	id, ok := unparen(e).(*ast.Ident)
	if !ok {
		return -1
	}
	obj := w.pkg.Info.ObjectOf(id)
	if obj == nil {
		return -1
	}
	if lid, bound := st.bind[obj]; bound {
		if live, tracked := st.live[lid]; tracked && live {
			return lid
		}
	}
	return -1
}

// timerCall is the timerMode body of leaseWalker.call: disposals first
// (cancel(), t.Stop()), then acquisitions, then generic hand-off of any
// tracked argument.
func (w *leaseWalker) timerCall(call *ast.CallExpr, st *leaseState) int {
	info := w.pkg.Info

	// cancel(): invoking a tracked value discharges its obligation.
	if id := w.identLease(call.Fun, st); id >= 0 {
		for _, a := range call.Args {
			w.expr(a, st)
		}
		w.dispose(id, st)
		return -1
	}
	// t.Stop() discharges a ticker/timer. (Reset deliberately does not:
	// the timer stays armed and still owes its Stop.)
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Stop" {
		if id := w.identLease(sel.X, st); id >= 0 {
			for _, a := range call.Args {
				w.expr(a, st)
			}
			w.dispose(id, st)
			return -1
		}
	}

	w.expr(call.Fun, st) // selector bases, inline literals

	if pkg, name, ok := pkgFuncOf(info, call); ok && pkg == "time" && name == "Tick" {
		if w.pass != nil {
			w.pass.Report(call.Pos(), nil,
				"time.Tick's Ticker can never be Stopped: use time.NewTicker with a deferred Stop (timerleak contract, DESIGN.md)")
		}
	}

	if src, res, ok := timerAcquire(info, call); ok {
		for _, a := range call.Args {
			w.expr(a, st)
		}
		if !w.seedGets {
			return -1
		}
		id := w.newLease(call.Pos(), src, st)
		if res == 0 {
			return id
		}
		w.pendingID, w.pendingResult = id, res
		return -1
	}

	// Any other call: a tracked argument is handed off to the callee
	// (helper shutdowns, cleanup registries) — tracking ends.
	for _, a := range call.Args {
		if id := w.expr(a, st); id >= 0 {
			w.dispose(id, st)
		}
	}
	return -1
}
