package lint

import (
	"go/ast"
)

// GoroLife guards goroutine lifetimes on the serving arc, complementing
// timerleak: a daemon that spawns a goroutine per request (or per job)
// must tie each one's exit to something — the request context, a quit
// channel whose close it observes, or a loop that is bounded by
// construction (`for range ch` ends when the owner closes ch). A `go`
// site whose target can spin forever with no such exit accumulates one
// leaked goroutine per trigger; under load that is the slow memory leak
// the soak test exists to catch, found statically instead.
//
// The analyzer reports `go` statements in server-reachable functions
// whose target is Unbounded per its ConcSummary (concsummary.go): the
// body — or an in-module callee on the body's path — contains an infinite
// `for` with no return, no break addressing it, no goto, and no
// terminating call (panic, os.Exit, runtime.Goexit, log.Fatal). A
// `for { select { case <-ctx.Done(): return ... } }` loop is bounded (the
// return escapes); a `for range ch` loop is bounded by the channel's
// close; a bare `for { work() }` is not. Deliberate daemon loops that
// outlive the spawner by design are recorded with
// //lint:ignore gorolife <reason> at the spawn site.
var GoroLife = &Analyzer{
	Name: "gorolife",
	Doc:  "flags goroutine spawns on server-reachable paths whose target can loop forever with no ctx.Done()/quit-channel return or bounded loop to end it",
	Run:  runGoroLife,
}

func runGoroLife(pass *Pass) {
	prog := pass.Prog
	if prog == nil {
		return
	}
	pkg := prog.packageOf(pass.Pkg)
	if pkg == nil {
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fi := prog.FuncOf(pkg, fd)
			if fi == nil || !prog.ServerReachable[fi.Key] {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				if target, unbounded := goTargetUnbounded(pass, prog, g); unbounded {
					pass.Report(g.Pos(), nil,
						"goroutine started here may never exit: %s loops forever with no return tied to ctx.Done(), a quit-channel close, or a bounded range — one leaked goroutine per trigger on a serving path (gorolife contract, DESIGN.md)",
						target)
				}
				return true
			})
		}
	}
}

// goTargetUnbounded classifies the target of one go statement.
func goTargetUnbounded(pass *Pass, prog *Program, g *ast.GoStmt) (string, bool) {
	if lit, ok := unparen(g.Call.Fun).(*ast.FuncLit); ok {
		return "the closure", litUnbounded(pass, prog, lit)
	}
	callee := prog.Funcs[staticCalleeKey(pass.Info, g.Call)]
	if callee == nil || callee.Conc == nil {
		return "", false
	}
	return callee.Decl.Name.Name, callee.Conc.Unbounded
}

// litUnbounded reports whether a go'd closure can spin forever: an
// infinite escape-less `for` in its body, or a body-path call to an
// in-module callee whose summary is Unbounded. Nested literals are
// separate goroutine candidates (or stored closures) and are not this
// spawn's lifetime.
func litUnbounded(pass *Pass, prog *Program, lit *ast.FuncLit) bool {
	unbounded := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if unbounded {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.GoStmt:
			return false
		case *ast.ForStmt:
			if n.Cond == nil && !loopEscapes(n) {
				unbounded = true
				return false
			}
		case *ast.CallExpr:
			if fi := prog.Funcs[staticCalleeKey(pass.Info, n)]; fi != nil && fi.Conc != nil && fi.Conc.Unbounded {
				unbounded = true
				return false
			}
		}
		return true
	})
	return unbounded
}
