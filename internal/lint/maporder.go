package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder flags `range` loops over maps whose bodies feed output sinks
// (trace events, JSON encoders, writers, printf-to-writer) or fold
// floating-point reductions, both of which inherit Go's randomized map
// iteration order.
//
// The determinism contract from PRs 1–2 — bit-identical results at any
// worker count, byte-identical traces given a deterministic clock — dies
// the moment map order reaches an output stream or a float accumulation
// (float addition is not associative, so the sum depends on visit order).
// Collect the keys, sort them, then iterate.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "flags map-ordered output (events, writers, encoders) and map-ordered floating-point reductions",
	Run:  runMapOrder,
}

// mapSinkMethods are method names that move bytes or events toward an
// output stream regardless of receiver: calling one in map order makes the
// stream order nondeterministic.
var mapSinkMethods = map[string]bool{
	"Emit": true, "Encode": true, "Progressf": true,
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
}

// fmtOutputFuncs are fmt functions that write to a stream (Sprint* only
// builds a value and is left to hotalloc).
var fmtOutputFuncs = map[string]bool{
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Print": true, "Printf": true, "Println": true,
}

func runMapOrder(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok || !isMapRange(pass, rs) {
				return true
			}
			checkMapRangeBody(pass, rs)
			return true
		})
	}
}

func isMapRange(pass *Pass, rs *ast.RangeStmt) bool {
	t := pass.TypeOf(rs.X)
	if t == nil {
		return false
	}
	_, isMap := t.Underlying().(*types.Map)
	return isMap
}

// checkMapRangeBody scans one map-range body. Nested map ranges are
// skipped here — they are visited and checked on their own, which keeps
// each finding attributed to the innermost map loop.
func checkMapRangeBody(pass *Pass, rs *ast.RangeStmt) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if n != rs && isMapRange(pass, n) {
				return false
			}
		case *ast.CallExpr:
			if name, ok := sinkCall(pass, n); ok {
				pass.Report(n.Pos(), nil,
					"map iteration order reaches output through %s; collect and sort the keys first (determinism contract, DESIGN.md)",
					name)
			}
		case *ast.AssignStmt:
			checkFloatReduction(pass, n)
		}
		return true
	})
}

// sinkCall reports whether call is an output sink and names it.
func sinkCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	if mi, ok := pass.method(call); ok {
		if mapSinkMethods[mi.name] {
			return mi.typ + "." + mi.name, true
		}
		return "", false
	}
	if pkg, name, ok := pass.pkgFunc(call); ok && pkg == "fmt" && fmtOutputFuncs[name] {
		return "fmt." + name, true
	}
	return "", false
}

// checkFloatReduction flags `x += v` / `x = x + v` (and -, *, /) where x
// is floating-point or complex: accumulation order follows the map.
func checkFloatReduction(pass *Pass, as *ast.AssignStmt) {
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		if len(as.Lhs) == 1 && isFloaty(typeOrNil(pass, as.Lhs[0])) {
			pass.Report(as.TokPos, nil,
				"floating-point reduction %s in map iteration order is nondeterministic (float ops are not associative); accumulate over sorted keys",
				as.Tok)
		}
	case token.ASSIGN:
		if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return
		}
		be, ok := as.Rhs[0].(*ast.BinaryExpr)
		if !ok {
			return
		}
		switch be.Op {
		case token.ADD, token.SUB, token.MUL, token.QUO:
		default:
			return
		}
		if !isFloaty(typeOrNil(pass, as.Lhs[0])) {
			return
		}
		if sameIdentExpr(as.Lhs[0], be.X) || sameIdentExpr(as.Lhs[0], be.Y) {
			pass.Report(as.TokPos, nil,
				"floating-point reduction x = x %s v in map iteration order is nondeterministic; accumulate over sorted keys",
				be.Op)
		}
	}
}

func typeOrNil(pass *Pass, e ast.Expr) types.Type {
	t := pass.TypeOf(e)
	if t == nil {
		return types.Typ[types.Invalid]
	}
	return t
}

// sameIdentExpr reports whether a and b are the same plain identifier or
// the same one-level selector chain (x.f) — enough to recognize the
// self-accumulation shape.
func sameIdentExpr(a, b ast.Expr) bool {
	switch a := a.(type) {
	case *ast.Ident:
		bi, ok := b.(*ast.Ident)
		return ok && a.Name == bi.Name
	case *ast.SelectorExpr:
		bs, ok := b.(*ast.SelectorExpr)
		return ok && a.Sel.Name == bs.Sel.Name && sameIdentExpr(a.X, bs.X)
	}
	return false
}
