package lint

import (
	"path/filepath"
	"testing"
)

func TestParseHotManifest(t *testing.T) {
	src := `# hot kernels
repro/internal/fft Forward
repro/internal/fft (*Plan).Execute
repro/internal/grid *

repro/internal/litho (Mask).Area
`
	m, err := ParseHotManifest([]byte(src), "lint.hot")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"repro/internal/fft", "repro/internal/grid", "repro/internal/litho"}
	got := m.Packages()
	if len(got) != len(want) {
		t.Fatalf("Packages = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Packages = %v, want %v (sorted)", got, want)
		}
	}
	cases := []struct {
		pkg, fn string
		covered bool
	}{
		{"repro/internal/fft", "Forward", true},
		{"repro/internal/fft", "(*Plan).Execute", true},
		{"repro/internal/fft", "Inverse", false},
		{"repro/internal/grid", "Anything", true}, // wildcard
		{"repro/internal/litho", "(Mask).Area", true},
		{"repro/internal/litho", "Area", false}, // method spelling is exact
		{"repro/internal/server", "Handle", false},
	}
	for _, c := range cases {
		if got := m.Covers(c.pkg, c.fn); got != c.covered {
			t.Errorf("Covers(%s, %s) = %v, want %v", c.pkg, c.fn, got, c.covered)
		}
	}
}

func TestParseHotManifestErrors(t *testing.T) {
	for _, bad := range []string{
		"repro/internal/fft\n",                  // missing function field
		"repro/internal/fft Forward Inverse\n",  // too many fields
		"# fine\nrepro/internal/fft\n# trail\n", // error names the offending line
	} {
		if _, err := ParseHotManifest([]byte(bad), "lint.hot"); err == nil {
			t.Errorf("ParseHotManifest(%q) succeeded, want line-shape error", bad)
		}
	}
}

// TestLoadHotManifestFileMissing pins the missing-manifest contract: a tree
// with no lint.hot gets (nil, nil) and the gc analyzers simply idle.
func TestLoadHotManifestFileMissing(t *testing.T) {
	m, err := LoadHotManifestFile(filepath.Join(t.TempDir(), "lint.hot"))
	if err != nil {
		t.Fatalf("missing manifest should not error: %v", err)
	}
	if m != nil {
		t.Fatalf("missing manifest should be nil, got %+v", m)
	}
}
