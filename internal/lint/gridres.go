package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// GridRes enforces the paper's multi-level contract: values living on the
// coarse (s-reduced, Eq. 7/8) grid and values on the fine grid must never
// meet in an elementwise operation without an explicit resample
// (grid.AvgPoolDown / UpsampleNearest / their adjoints). Dimension checks
// catch most violations at runtime — but only when the sizes happen to
// differ. Two grids pooled by different factors from different bases can
// agree in size and silently produce a wrong loss or gradient, the exact
// bug class that degrades EPE without failing a single assertion.
//
// The analysis is a typestate walk. Each value carries a resolution level
// relative to a root (the expression it was resampled from, or a
// parameter): AvgPoolDown adds a coarsening level, UpsampleNearest removes
// one, the adjoints invert that, SmoothPool is level-preserving. Mixing is
// flagged when two operands of a same-resolution operation share a root
// but disagree on level — at grid.Mat/CMat elementwise methods, at raw
// paired `.Data[i]` loops, and at calls whose callee summary (summary.go)
// constrains two parameters to matching resolution (loss kernels, FFT
// apply helpers — any function whose body pairs its parameters
// elementwise, found transitively through the call-graph fixpoint).
// Values whose relation is unknown (different roots, or a hop through an
// unsummarized call) are never flagged: silence is cheap, a false alarm
// here would be fatal to the rule's credibility.
var GridRes = &Analyzer{
	Name: "gridres",
	Doc:  "flags coarse/fine grid mixing without an explicit resample (multi-level contract), interprocedurally via call summaries",
	Run:  runGridRes,
}

func runGridRes(pass *Pass) {
	if pass.Prog == nil {
		return
	}
	if strings.HasSuffix(pass.Pkg.Path(), "internal/grid") {
		// The resample implementation crosses levels by definition.
		return
	}
	pkg := pass.Prog.packageOf(pass.Pkg)
	if pkg == nil {
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			w := &resWalker{prog: pass.Prog, pkg: pkg, fd: fd, pass: pass, reported: map[token.Pos]bool{}}
			w.run()
		}
	}
}

// gridResSummary derives the resolution facts of fi for its summary:
// SameRes constraints between parameters and per-result level deltas.
func gridResSummary(prog *Program, fi *FuncInfo, sum *Summary) {
	if strings.HasSuffix(fi.Pkg.Path, "internal/grid") {
		return
	}
	w := &resWalker{prog: prog, pkg: fi.Pkg, fd: fi.Decl, sum: sum, reported: map[token.Pos]bool{}}
	w.run()
}

// A resVal is one value's resolution level: off coarsening steps above its
// root. Roots are parameter slots ("param:0"), local objects, or selector
// chains ("sel:o.target").
type resVal struct {
	root string
	off  int
}

// resState carries the typestate along one control-flow path.
type resState struct {
	vars map[types.Object]resVal
	sels map[string]resVal
}

func newResState() *resState {
	return &resState{vars: map[types.Object]resVal{}, sels: map[string]resVal{}}
}

func (s *resState) clone() *resState {
	c := newResState()
	for k, v := range s.vars {
		c.vars[k] = v
	}
	for k, v := range s.sels {
		c.sels[k] = v
	}
	return c
}

// mergeRes intersects two branch states: only facts both arms agree on
// survive the join.
func mergeRes(a, b *resState) *resState {
	m := newResState()
	for k, v := range a.vars {
		if bv, ok := b.vars[k]; ok && bv == v {
			m.vars[k] = v
		}
	}
	for k, v := range a.sels {
		if bv, ok := b.sels[k]; ok && bv == v {
			m.sels[k] = v
		}
	}
	return m
}

type resWalker struct {
	prog     *Program
	pkg      *Package
	fd       *ast.FuncDecl
	pass     *Pass    // analyzer mode: report mixing
	sum      *Summary // summary mode: record constraints and result deltas
	reported map[token.Pos]bool

	// results accumulates per-result-index deltas across return sites;
	// conflicting sites poison the entry.
	results map[int]*ResultRes
	poisons map[int]bool
}

func (w *resWalker) run() {
	st := newResState()
	// Parameters are roots at level 0.
	n := numParams(w.fd)
	for i := 0; i < n; i++ {
		obj := paramObject(w.pkg.Info, w.fd, i)
		if obj != nil && isGridType(obj.Type()) {
			st.vars[obj] = resVal{root: "param:" + itoa(i), off: 0}
		}
	}
	w.results = map[int]*ResultRes{}
	w.poisons = map[int]bool{}
	w.stmt(w.fd.Body, st)
	if w.sum != nil {
		for k, r := range w.results {
			if !w.poisons[k] {
				w.sum.Results = append(w.sum.Results, *r)
			}
		}
		sortResults(w.sum.Results)
		sortConstraints(w.sum.SameRes)
	}
}

func itoa(i int) string {
	if i < 10 {
		return string(rune('0' + i))
	}
	return itoa(i/10) + itoa(i%10)
}

// isGridType reports whether t is *grid.Mat or *grid.CMat.
func isGridType(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	if !strings.HasSuffix(named.Obj().Pkg().Path(), "internal/grid") {
		return false
	}
	return named.Obj().Name() == "Mat" || named.Obj().Name() == "CMat"
}

// resampleDelta maps grid's resolution-changing functions to the level
// step their result takes relative to their first argument.
var resampleDelta = map[string]int{
	"AvgPoolDown":            +1,
	"AvgPoolDownAdjoint":     -1,
	"UpsampleNearest":        -1,
	"UpsampleNearestAdjoint": +1,
	"SmoothPool":             0,
	"SmoothPoolAdjoint":      0,
}

// levelPreservingMethods yield a value at their receiver's level.
var levelPreservingMethods = map[string]bool{
	"Clone": true, "Threshold": true, "Real": true, "AbsSq": true,
}

// sameResMethods maps a grid.Mat/CMat method to the argument indices that
// must share the receiver's resolution.
var sameResMethods = map[string][]int{
	"Add": {0}, "Sub": {0}, "MulElem": {0}, "AddScaled": {1},
	"CopyFrom": {0}, "Dot": {0}, "Equal": {0}, "MaxAbsDiff": {0},
	"SetReal": {0}, "AbsSqScaledInto": {0}, "AddAbsSqScaled": {0},
}

// rootKey returns a stable root identity for e, or "".
func (w *resWalker) rootKey(e ast.Expr) string {
	switch e := unparen(e).(type) {
	case *ast.Ident:
		if obj := w.pkg.Info.ObjectOf(e); obj != nil {
			return "obj:" + itoaPos(obj.Pos())
		}
	case *ast.SelectorExpr:
		if pureChain(e.X) {
			return "sel:" + exprText(e)
		}
	}
	return ""
}

func itoaPos(p token.Pos) string {
	n := int(p)
	if n < 0 {
		n = 0
	}
	if n < 10 {
		return string(rune('0' + n))
	}
	return itoaPos(token.Pos(n/10)) + string(rune('0'+n%10))
}

// valOf looks e up (without seeding); ok is false when untracked.
func (w *resWalker) valOf(e ast.Expr, st *resState) (resVal, bool) {
	e = unparen(e)
	switch e := e.(type) {
	case *ast.Ident:
		if obj := w.pkg.Info.ObjectOf(e); obj != nil {
			v, ok := st.vars[obj]
			return v, ok
		}
	case *ast.SelectorExpr:
		if pureChain(e.X) {
			v, ok := st.sels["sel:"+exprText(e)]
			return v, ok
		}
	case *ast.CallExpr:
		vals := w.callVals(e, st)
		if len(vals) == 1 {
			return vals[0].val, vals[0].ok
		}
	}
	return resVal{}, false
}

// seedOf looks e up, seeding untracked grid-typed idents/selectors at
// level 0 of their own root so later resamples of the same base relate.
func (w *resWalker) seedOf(e ast.Expr, st *resState) (resVal, bool) {
	if v, ok := w.valOf(e, st); ok {
		return v, true
	}
	e = unparen(e)
	t := typeOf(w.pkg.Info, e)
	if !isGridType(t) {
		return resVal{}, false
	}
	key := w.rootKey(e)
	if key == "" {
		return resVal{}, false
	}
	v := resVal{root: key, off: 0}
	switch e := e.(type) {
	case *ast.Ident:
		if obj := w.pkg.Info.ObjectOf(e); obj != nil {
			st.vars[obj] = v
		}
	case *ast.SelectorExpr:
		st.sels[key] = v
	}
	return v, true
}

func typeOf(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := info.ObjectOf(id); obj != nil {
			return obj.Type()
		}
	}
	return nil
}

type maybeVal struct {
	val resVal
	ok  bool
}

// callVals evaluates a call's per-result resolution values and runs the
// call-site checks (same-res methods, callee SameRes constraints).
func (w *resWalker) callVals(call *ast.CallExpr, st *resState) []maybeVal {
	info := w.pkg.Info

	// grid.<Resample>(x, s): level step relative to x.
	if pkg, name, ok := pkgFuncOf(info, call); ok && strings.HasSuffix(pkg, "internal/grid") {
		if delta, isResample := resampleDelta[name]; isResample && len(call.Args) >= 1 {
			if v, ok := w.seedOf(call.Args[0], st); ok {
				return []maybeVal{{resVal{v.root, v.off + delta}, true}}
			}
			return []maybeVal{{resVal{}, false}}
		}
	}

	// grid.Mat/CMat methods: level-preserving producers and same-res checks.
	if mi, ok := methodInfoOf(info, call); ok && strings.HasSuffix(mi.pkg, "internal/grid") {
		sel, _ := call.Fun.(*ast.SelectorExpr)
		if sel != nil {
			if args, isCheck := sameResMethods[mi.name]; isCheck {
				rv, rok := w.seedOf(sel.X, st)
				for _, ai := range args {
					if ai >= len(call.Args) {
						continue
					}
					av, aok := w.seedOf(call.Args[ai], st)
					if rok && aok {
						w.requireSame(call.Pos(), rv, av, 0, sel.X, call.Args[ai])
					}
				}
				return nil
			}
			if levelPreservingMethods[mi.name] {
				if v, ok := w.valOf(sel.X, st); ok {
					return []maybeVal{{v, true}}
				}
				return []maybeVal{{resVal{}, false}}
			}
		}
		return nil
	}

	// In-module callee: apply its SameRes constraints and map results.
	sum := w.prog.SummaryFor(w.pkg, call)
	if sum == nil {
		return nil
	}
	argVal := func(i int) (resVal, bool) {
		if i < 0 || i >= len(call.Args) {
			return resVal{}, false
		}
		return w.seedOf(call.Args[i], st)
	}
	for _, c := range sum.SameRes {
		vi, oki := argVal(c.I)
		vj, okj := argVal(c.J)
		if oki && okj {
			w.requireSame(call.Pos(), vi, vj, c.Delta, argExpr(call, c.I), argExpr(call, c.J))
		}
	}
	if len(sum.Results) == 0 {
		return nil
	}
	nres := maxResultIndex(sum.Results) + 1
	out := make([]maybeVal, nres)
	for _, r := range sum.Results {
		if v, ok := argVal(r.Param); ok {
			out[r.Result] = maybeVal{resVal{v.root, v.off + r.Delta}, true}
		}
	}
	return out
}

func argExpr(call *ast.CallExpr, i int) ast.Expr {
	if i >= 0 && i < len(call.Args) {
		return call.Args[i]
	}
	return call
}

func maxResultIndex(rs []ResultRes) int {
	m := 0
	for _, r := range rs {
		if r.Result > m {
			m = r.Result
		}
	}
	return m
}

// requireSame enforces level(b) == level(a) + delta. With a shared root
// the check is decidable: disagreement is reported (analyzer mode). With
// two distinct parameter roots the requirement becomes a constraint of the
// enclosing function's summary.
func (w *resWalker) requireSame(pos token.Pos, a, b resVal, delta int, ea, eb ast.Expr) {
	if a.root == b.root {
		if b.off != a.off+delta && w.pass != nil && !w.reported[pos] {
			w.reported[pos] = true
			w.pass.Report(pos, nil,
				"grid resolution mismatch: %s is %d coarsening level(s) from %s but the operation requires them to match (multi-level contract Eq. 7/8; resample with grid.AvgPoolDown/UpsampleNearest first)",
				exprText(unparen(eb)), b.off-(a.off+delta), exprText(unparen(ea)))
		}
		return
	}
	if w.sum == nil {
		return
	}
	pi, iok := paramRoot(a.root)
	pj, jok := paramRoot(b.root)
	if !iok || !jok {
		return
	}
	// level(pj) + b.off == level(pi) + a.off + delta
	// → level(pj) == level(pi) + (a.off + delta - b.off)
	c := ResConstraint{I: pi, J: pj, Delta: a.off + delta - b.off}
	for _, have := range w.sum.SameRes {
		if have == c {
			return
		}
	}
	w.sum.SameRes = append(w.sum.SameRes, c)
}

func paramRoot(root string) (int, bool) {
	s, ok := strings.CutPrefix(root, "param:")
	if !ok {
		return 0, false
	}
	n := 0
	for _, r := range s {
		if r < '0' || r > '9' {
			return 0, false
		}
		n = n*10 + int(r-'0')
	}
	return n, true
}

// assign records the flow of a resolution value into one target.
func (w *resWalker) assign(lhs ast.Expr, v maybeVal, st *resState) {
	switch lhs := unparen(lhs).(type) {
	case *ast.Ident:
		if lhs.Name == "_" {
			return
		}
		obj := w.pkg.Info.ObjectOf(lhs)
		if obj == nil {
			return
		}
		if v.ok {
			st.vars[obj] = v.val
		} else {
			delete(st.vars, obj)
		}
	case *ast.SelectorExpr:
		if pureChain(lhs.X) {
			key := "sel:" + exprText(lhs)
			if v.ok {
				st.sels[key] = v.val
			} else {
				delete(st.sels, key)
			}
		}
	}
}

// exprVal evaluates e for assignment purposes, running call-site checks on
// the way.
func (w *resWalker) exprVal(e ast.Expr, st *resState) maybeVal {
	if e == nil {
		return maybeVal{}
	}
	e = unparen(e)
	switch e := e.(type) {
	case *ast.CallExpr:
		w.exprEffects(e, st)
		vals := w.callVals(e, st)
		if len(vals) >= 1 {
			return vals[0]
		}
		return maybeVal{}
	case *ast.Ident, *ast.SelectorExpr:
		if v, ok := w.valOf(e, st); ok {
			return maybeVal{v, true}
		}
		return maybeVal{}
	default:
		w.exprEffects(e, st)
		return maybeVal{}
	}
}

// exprEffects walks nested calls (and function literals) inside e for
// their check side effects, without needing a value.
func (w *resWalker) exprEffects(e ast.Expr, st *resState) {
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			w.callVals(n, st)
			return true
		case *ast.FuncLit:
			w.stmt(n.Body, st)
			return false
		}
		return true
	})
}

// dataPairs scans one loop for paired <base>.Data[idx] accesses sharing an
// index variable (including the range key) and requires every pair to sit
// at one resolution.
func (w *resWalker) dataPairs(loop ast.Node, st *resState) {
	groups := map[types.Object][]ast.Expr{} // index object → .Data bases
	add := func(idxObj types.Object, base ast.Expr) {
		if idxObj == nil || base == nil {
			return
		}
		for _, have := range groups[idxObj] {
			if exprText(have) == exprText(base) {
				return
			}
		}
		groups[idxObj] = append(groups[idxObj], base)
	}
	var rangeKey types.Object
	if r, ok := loop.(*ast.RangeStmt); ok {
		if id, ok := r.Key.(*ast.Ident); ok {
			rangeKey = w.pkg.Info.ObjectOf(id)
		}
		if base := dataBase(r.X); base != nil {
			add(rangeKey, base)
		}
	}
	var body *ast.BlockStmt
	switch l := loop.(type) {
	case *ast.ForStmt:
		body = l.Body
	case *ast.RangeStmt:
		body = l.Body
	}
	if body == nil {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		ix, ok := n.(*ast.IndexExpr)
		if !ok {
			return true
		}
		id, ok := unparen(ix.Index).(*ast.Ident)
		if !ok {
			return true
		}
		if base := dataBase(ix.X); base != nil {
			add(w.pkg.Info.ObjectOf(id), base)
		}
		return true
	})
	for _, bases := range groups {
		if len(bases) < 2 {
			continue
		}
		first, fok := w.seedOf(bases[0], st)
		if !fok {
			continue
		}
		for _, b := range bases[1:] {
			if v, ok := w.seedOf(b, st); ok {
				w.requireSame(b.Pos(), first, v, 0, bases[0], b)
			}
		}
	}
}

// dataBase unwraps <base>.Data to its grid-typed base expression.
func dataBase(e ast.Expr) ast.Expr {
	sel, ok := unparen(e).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Data" {
		return nil
	}
	return sel.X
}

// stmt walks one statement, threading the typestate.
func (w *resWalker) stmt(s ast.Stmt, st *resState) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, sub := range s.List {
			w.stmt(sub, st)
		}
	case *ast.ExprStmt:
		w.exprVal(s.X, st)
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
			var vals []maybeVal
			if call, ok := unparen(s.Rhs[0]).(*ast.CallExpr); ok {
				vals = w.callVals(call, st)
			}
			for i, l := range s.Lhs {
				var v maybeVal
				if i < len(vals) {
					v = vals[i]
				}
				w.assign(l, v, st)
			}
			return
		}
		for i, l := range s.Lhs {
			if i < len(s.Rhs) {
				w.assign(l, w.exprVal(s.Rhs[i], st), st)
			}
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				if len(vs.Values) == 1 && len(vs.Names) > 1 {
					var vals []maybeVal
					if call, ok := unparen(vs.Values[0]).(*ast.CallExpr); ok {
						vals = w.callVals(call, st)
					}
					for i, name := range vs.Names {
						var v maybeVal
						if i < len(vals) {
							v = vals[i]
						}
						w.assign(name, v, st)
					}
					continue
				}
				for i, name := range vs.Names {
					if i < len(vs.Values) {
						w.assign(name, w.exprVal(vs.Values[i], st), st)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for k, r := range s.Results {
			v := w.exprVal(r, st)
			if w.sum == nil {
				continue
			}
			pi, ok := 0, false
			if v.ok {
				pi, ok = paramRoot(v.val.root)
			}
			if !ok {
				if _, tracked := w.results[k]; tracked {
					w.poisons[k] = true
				}
				continue
			}
			entry := ResultRes{Result: k, Param: pi, Delta: v.val.off}
			if have, tracked := w.results[k]; tracked {
				if *have != entry {
					w.poisons[k] = true
				}
			} else {
				w.results[k] = &entry
			}
		}
	case *ast.IfStmt:
		w.stmt(s.Init, st)
		w.exprVal(s.Cond, st)
		thenSt := st.clone()
		w.stmt(s.Body, thenSt)
		elseSt := st.clone()
		w.stmt(s.Else, elseSt)
		*st = *mergeRes(thenSt, elseSt)
	case *ast.ForStmt:
		w.stmt(s.Init, st)
		w.exprVal(s.Cond, st)
		w.dataPairs(s, st)
		body := st.clone()
		w.stmt(s.Body, body)
		w.stmt(s.Post, body)
		*st = *mergeRes(st, body)
	case *ast.RangeStmt:
		w.exprVal(s.X, st)
		w.dataPairs(s, st)
		body := st.clone()
		for _, v := range []ast.Expr{s.Key, s.Value} {
			if v != nil {
				w.assign(v, maybeVal{}, body)
			}
		}
		w.stmt(s.Body, body)
		*st = *mergeRes(st, body)
	case *ast.SwitchStmt:
		w.stmt(s.Init, st)
		w.exprVal(s.Tag, st)
		w.resBranches(st, caseBodies(s.Body))
	case *ast.TypeSwitchStmt:
		w.stmt(s.Init, st)
		w.stmt(s.Assign, st)
		w.resBranches(st, caseBodies(s.Body))
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				branch := st.clone()
				w.stmt(cc.Comm, branch)
				for _, sub := range cc.Body {
					w.stmt(sub, branch)
				}
				*st = *mergeRes(st, branch)
			}
		}
	case *ast.DeferStmt:
		w.exprVal(s.Call, st)
	case *ast.GoStmt:
		w.exprVal(s.Call, st)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, st)
	case *ast.SendStmt:
		w.exprVal(s.Chan, st)
		w.exprVal(s.Value, st)
	case *ast.IncDecStmt:
		w.exprVal(s.X, st)
	}
}

func (w *resWalker) resBranches(st *resState, bodies [][]ast.Stmt) {
	var merged *resState
	for _, body := range bodies {
		branch := st.clone()
		for _, sub := range body {
			w.stmt(sub, branch)
		}
		if merged == nil {
			merged = branch
		} else {
			merged = mergeRes(merged, branch)
		}
	}
	if merged != nil {
		*st = *mergeRes(st, merged)
	}
}

// pkgFuncOf is the Pass-free form of Pass.pkgFunc.
func pkgFuncOf(info *types.Info, call *ast.CallExpr) (pkg, name string, ok bool) {
	switch fun := unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		id, isID := fun.X.(*ast.Ident)
		if !isID {
			return "", "", false
		}
		pn, isPkg := info.ObjectOf(id).(*types.PkgName)
		if !isPkg {
			return "", "", false
		}
		return pn.Imported().Path(), fun.Sel.Name, true
	case *ast.Ident:
		fn, isFn := info.ObjectOf(fun).(*types.Func)
		if !isFn || fn.Pkg() == nil {
			return "", "", false
		}
		sig, isSig := fn.Type().(*types.Signature)
		if !isSig || sig.Recv() != nil {
			return "", "", false
		}
		return fn.Pkg().Path(), fn.Name(), true
	}
	return "", "", false
}

func sortResults(rs []ResultRes) {
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && lessResult(rs[j], rs[j-1]); j-- {
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
}

func lessResult(a, b ResultRes) bool {
	if a.Result != b.Result {
		return a.Result < b.Result
	}
	if a.Param != b.Param {
		return a.Param < b.Param
	}
	return a.Delta < b.Delta
}

func sortConstraints(cs []ResConstraint) {
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0 && lessConstraint(cs[j], cs[j-1]); j-- {
			cs[j], cs[j-1] = cs[j-1], cs[j]
		}
	}
}

func lessConstraint(a, b ResConstraint) bool {
	if a.I != b.I {
		return a.I < b.I
	}
	if a.J != b.J {
		return a.J < b.J
	}
	return a.Delta < b.Delta
}
