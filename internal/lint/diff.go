package lint

import (
	"fmt"
	"go/format"
	"go/token"
	"os"
	"sort"
	"strings"
)

// FormatFixDiffs renders every suggested fix in diags as unified diffs
// against the files on disk, without writing anything — the review mode
// behind `iltlint -diff`. Files are emitted in sorted order, each with
// conventional ---/+++ headers and 3 lines of hunk context, so the output
// is stable and pipeable into a patch viewer.
func FormatFixDiffs(fset *token.FileSet, diags []Diagnostic) (string, error) {
	perFile := planFixes(fset, diags)
	files := make([]string, 0, len(perFile))
	for f := range perFile {
		files = append(files, f)
	}
	sort.Strings(files)

	var b strings.Builder
	for _, file := range files {
		src, err := os.ReadFile(file)
		if err != nil {
			return "", err
		}
		out, err := applyEdits(src, perFile[file].edits)
		if err != nil {
			return "", fmt.Errorf("%s: %v", file, err)
		}
		if formatted, err := format.Source(out); err == nil {
			out = formatted
		}
		hunks := unifiedDiff(splitLines(src), splitLines(out), 3)
		if hunks == "" {
			continue
		}
		fmt.Fprintf(&b, "--- %s\n+++ %s (fixed)\n%s", file, file, hunks)
	}
	return b.String(), nil
}

func splitLines(src []byte) []string {
	lines := strings.SplitAfter(string(src), "\n")
	if len(lines) > 0 && lines[len(lines)-1] == "" {
		lines = lines[:len(lines)-1]
	}
	return lines
}

// unifiedDiff renders the hunks of a line-level LCS diff between a and b
// with ctx lines of context. Returns "" when the inputs are identical.
func unifiedDiff(a, b []string, ctx int) string {
	type op struct {
		kind byte // ' ', '-', '+'
		line string
	}
	// LCS table; fixture- and repo-sized files keep n*m comfortably small.
	n, m := len(a), len(b)
	lcs := make([][]int, n+1)
	for i := range lcs {
		lcs[i] = make([]int, m+1)
	}
	for i := n - 1; i >= 0; i-- {
		for j := m - 1; j >= 0; j-- {
			if a[i] == b[j] {
				lcs[i][j] = lcs[i+1][j+1] + 1
			} else if lcs[i+1][j] >= lcs[i][j+1] {
				lcs[i][j] = lcs[i+1][j]
			} else {
				lcs[i][j] = lcs[i][j+1]
			}
		}
	}
	var ops []op
	changed := false
	for i, j := 0, 0; i < n || j < m; {
		switch {
		case i < n && j < m && a[i] == b[j]:
			ops = append(ops, op{' ', a[i]})
			i++
			j++
		case j < m && (i == n || lcs[i][j+1] >= lcs[i+1][j]):
			ops = append(ops, op{'+', b[j]})
			j++
			changed = true
		default:
			ops = append(ops, op{'-', a[i]})
			i++
			changed = true
		}
	}
	if !changed {
		return ""
	}
	// Within each maximal run of changed ops, order deletions before
	// insertions — the conventional unified-diff rendering of a
	// replacement. Which lines match is fixed by the LCS; the order inside
	// a change block is free, and the backtrack above doesn't guarantee it.
	for i := 0; i < len(ops); {
		if ops[i].kind == ' ' {
			i++
			continue
		}
		j := i
		for j < len(ops) && ops[j].kind != ' ' {
			j++
		}
		block := make([]op, 0, j-i)
		for _, o := range ops[i:j] {
			if o.kind == '-' {
				block = append(block, o)
			}
		}
		for _, o := range ops[i:j] {
			if o.kind == '+' {
				block = append(block, o)
			}
		}
		copy(ops[i:j], block)
		i = j
	}

	// Group ops into hunks separated by > 2*ctx unchanged lines.
	var out strings.Builder
	aLine, bLine := 1, 1
	i := 0
	for i < len(ops) {
		// Skip the equal run before the next change.
		start := i
		for i < len(ops) && ops[i].kind == ' ' {
			i++
		}
		if i == len(ops) {
			break
		}
		hunkStart := start
		if i-start > ctx {
			hunkStart = i - ctx
		}
		aLine += hunkStart - start // equal lines skipped before the hunk
		bLine += hunkStart - start
		// Extend the hunk until an equal run long enough to split on.
		hunkEnd := i
		for hunkEnd < len(ops) {
			if ops[hunkEnd].kind != ' ' {
				hunkEnd++
				continue
			}
			run := hunkEnd
			for run < len(ops) && ops[run].kind == ' ' {
				run++
			}
			if run == len(ops) || run-hunkEnd > 2*ctx {
				break
			}
			hunkEnd = run
		}
		tail := hunkEnd
		for tail < len(ops) && ops[tail].kind == ' ' && tail-hunkEnd < ctx {
			tail++
		}

		aStart, bStart := aLine, bLine
		aCount, bCount := 0, 0
		var body strings.Builder
		for _, o := range ops[hunkStart:tail] {
			body.WriteByte(o.kind)
			body.WriteString(strings.TrimSuffix(o.line, "\n"))
			body.WriteByte('\n')
			if o.kind != '+' {
				aCount++
				aLine++
			}
			if o.kind != '-' {
				bCount++
				bLine++
			}
		}
		fmt.Fprintf(&out, "@@ -%d,%d +%d,%d @@\n%s", aStart, aCount, bStart, bCount, body.String())
		i = tail
	}
	return out.String()
}
