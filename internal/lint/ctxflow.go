package lint

import (
	"go/ast"
	"go/types"
)

// CtxFlow guards the serving arc's context discipline. A request context
// carries the deadline, the cancellation signal and the trace identity of
// one job; the moment a call chain reaches for context.Background() (or
// TODO), or blocks in a way no cancellation can interrupt, the daemon's
// drain guarantees stop holding. The analyzer scopes itself to
// Program.ServerReachable — functions in or transitively callable from a
// package with a "server" or "core" path segment — because the same
// patterns are perfectly fine in a batch CLI.
//
// Two findings:
//
//   - a server-reachable function that already has a context.Context in
//     scope (own parameter or an enclosing closure's) passes
//     context.Background()/TODO() to a callee: the fresh root context
//     severs the cancellation chain, including for `go f(context.
//     Background())` spawns;
//   - a server-reachable function calls time.Sleep: an uninterruptible
//     block on a serving path. With a context in scope the fix is a
//     select on ctx.Done() and a timer; without one the fix is plumbing
//     the context this far first.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "flags context.Background()/TODO() and uninterruptible blocking (time.Sleep) on server/core-reachable call paths that should stay on the request context",
	Run:  runCtxFlow,
}

func runCtxFlow(pass *Pass) {
	prog := pass.Prog
	if prog == nil {
		return
	}
	pkg := prog.packageOf(pass.Pkg)
	if pkg == nil {
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fi := prog.FuncOf(pkg, fd)
			if fi == nil || !prog.ServerReachable[fi.Key] {
				continue
			}
			checkCtxFlow(pass, fd)
		}
	}
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// hasCtxParam reports whether ft declares a context.Context parameter.
func hasCtxParam(pass *Pass, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if t := pass.TypeOf(field.Type); t != nil && isContextType(t) {
			return true
		}
	}
	return false
}

// checkCtxFlow walks one server-reachable function. ctxDepth tracks how
// many nested function scopes currently have a Context parameter in
// scope: a closure inherits its enclosing function's context.
func checkCtxFlow(pass *Pass, fd *ast.FuncDecl) {
	var walk func(n ast.Node, ctxInScope bool)
	walk = func(n ast.Node, ctxInScope bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncLit:
				walk(m.Body, ctxInScope || hasCtxParam(pass, m.Type))
				return false
			case *ast.CallExpr:
				if p, name, ok := pass.pkgFunc(m); ok {
					if p == "time" && name == "Sleep" {
						if ctxInScope {
							pass.Report(m.Pos(), nil,
								"time.Sleep on a server-reachable path ignores the context in scope: select on ctx.Done() and a time.Timer instead (ctxflow)")
						} else {
							pass.Report(m.Pos(), nil,
								"time.Sleep on a server-reachable path cannot be cancelled: plumb the request context here and select on ctx.Done() (ctxflow)")
						}
					}
				}
				if !ctxInScope {
					return true
				}
				for _, a := range m.Args {
					ac, ok := unparen(a).(*ast.CallExpr)
					if !ok {
						continue
					}
					if p, name, ok := pass.pkgFunc(ac); ok && p == "context" && (name == "Background" || name == "TODO") {
						pass.Report(ac.Pos(), nil,
							"context.%s() severs the request context that is already in scope: pass ctx (or a context derived from it) instead (ctxflow)", name)
					}
				}
				return true
			}
			return true
		})
	}
	walk(fd.Body, hasCtxParam(pass, fd.Type))
}
