package lint

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// A Baseline is a recorded set of accepted findings: the ratchet that lets
// a new rule land while the tree still carries legacy findings. Entries
// are keyed by (file, rule, message) with a count — deliberately not by
// line, so unrelated edits above a finding don't invalidate the baseline —
// and a run filtered through a baseline fails only on findings beyond the
// recorded budget for that key.
type Baseline struct {
	Entries []BaselineEntry `json:"entries"`
}

// A BaselineEntry is one accepted (file, rule, message) class and how many
// identical findings of it were recorded.
type BaselineEntry struct {
	File    string `json:"file"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
	Count   int    `json:"count"`
}

func baselineKey(d Diagnostic) BaselineEntry {
	return BaselineEntry{File: d.Pos.Filename, Rule: d.Rule, Message: d.Message}
}

// NewBaseline records diags as a baseline.
func NewBaseline(diags []Diagnostic) *Baseline {
	counts := map[BaselineEntry]int{}
	for _, d := range diags {
		counts[baselineKey(d)]++
	}
	b := &Baseline{Entries: make([]BaselineEntry, 0, len(counts))}
	for k, n := range counts {
		k.Count = n
		b.Entries = append(b.Entries, k)
	}
	sort.Slice(b.Entries, func(i, j int) bool {
		a, c := b.Entries[i], b.Entries[j]
		if a.File != c.File {
			return a.File < c.File
		}
		if a.Rule != c.Rule {
			return a.Rule < c.Rule
		}
		return a.Message < c.Message
	})
	return b
}

// Write emits the baseline as stable, indented JSON.
func (b *Baseline) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// WriteBaselineFile records diags at path.
func WriteBaselineFile(path string, diags []Diagnostic) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := NewBaseline(diags).Write(f)
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	return cerr
}

// ReadBaselineFile loads a baseline written by WriteBaselineFile.
func ReadBaselineFile(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	b := new(Baseline)
	if err := json.Unmarshal(data, b); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return b, nil
}

// Filter splits diags into the findings not covered by the baseline (in
// input order) and the number it absorbed. Each entry absorbs up to Count
// findings of its key.
func (b *Baseline) Filter(diags []Diagnostic) (fresh []Diagnostic, absorbed int) {
	budget := map[BaselineEntry]int{}
	for _, e := range b.Entries {
		k := e
		k.Count = 0
		budget[k] += e.Count
	}
	for _, d := range diags {
		k := baselineKey(d)
		if budget[k] > 0 {
			budget[k]--
			absorbed++
			continue
		}
		fresh = append(fresh, d)
	}
	return fresh, absorbed
}
