package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"io"
	"path/filepath"
	"strings"

	"repro/internal/grid"
)

// Options configures one analysis run.
type Options struct {
	// Dir is where `go list` runs and the base against which diagnostic
	// file paths are relativized; "" means the current directory.
	Dir string
	// Patterns are go package patterns; empty means ./...
	Patterns []string
	// Analyzers to run; empty means All.
	Analyzers []*Analyzer
	// Workers bounds load/analyze parallelism per the repo convention
	// (grid.ParallelFor): ≤ 0 means GOMAXPROCS, 1 is fully serial. Output
	// is byte-identical at every setting — packages keep load order and
	// diagnostics are sorted after the merge.
	Workers int
	// HotManifest is the lint.hot path for the compiler-fact analyzers
	// (bce/escape/inline). "" looks for Dir/lint.hot and silently skips
	// those analyzers when it does not exist; a non-"" path must exist.
	HotManifest string
}

// Result is the outcome of a run: suppression-filtered, deterministically
// ordered diagnostics plus the FileSet needed to apply fixes.
type Result struct {
	Diags []Diagnostic
	Fset  *token.FileSet
}

// Fixable counts diagnostics carrying a suggested fix.
func (r *Result) Fixable() int {
	n := 0
	for _, d := range r.Diags {
		if d.Fix != nil {
			n++
		}
	}
	return n
}

// Run loads the requested packages and applies every analyzer to each,
// then filters the findings through //lint:ignore directives and sorts
// them (file, line, column, rule, message) so repeated runs over the same
// tree produce byte-identical output.
func Run(opts Options) (*Result, error) {
	analyzers := opts.Analyzers
	if len(analyzers) == 0 {
		analyzers = All
	}
	workers := opts.Workers
	pkgs, fset, err := LoadWorkers(opts.Dir, workers, opts.Patterns...)
	if err != nil {
		return nil, err
	}

	// The interprocedural substrate is built once, serially, and shared
	// read-only by every pass.
	prog := BuildProgram(pkgs, fset, opts.Dir)

	// The compiler-fact substrate (gcdiag.go) is loaded only when a gc
	// analyzer is selected AND a lint.hot manifest is present: compiling
	// the hot packages costs real wall time, and a run without bce/escape/
	// inline must not pay it. Rot in the manifest (entries that stopped
	// resolving to a live function) is reported here too, as runner-level
	// "hotmanifest" diagnostics — like "ignore", it is not an analyzer.
	var extraDiags []Diagnostic
	if needsGCFacts(analyzers) {
		hotPath := opts.HotManifest
		explicit := hotPath != ""
		if !explicit {
			hotPath = filepath.Join(orDot(opts.Dir), "lint.hot")
		}
		hot, err := LoadHotManifestFile(hotPath)
		if err != nil {
			return nil, err
		}
		if hot == nil && explicit {
			return nil, fmt.Errorf("hot manifest %s does not exist", hotPath)
		}
		if hot != nil {
			extraDiags = rotDiagnostics(hot, pkgs)
			facts, err := LoadGCDiagnostics(pkgs, hot, workers)
			if err != nil {
				return nil, err
			}
			prog.Hot = hot
			prog.GCFacts = facts
		}
	}

	// Packages are independent analysis units: fan out across workers,
	// each accumulating into its own slot, then merge in load order so
	// the result stream is identical at any worker count.
	perPkgDiags := make([][]Diagnostic, len(pkgs))
	perPkgIgnores := make([][]ignoreDirective, len(pkgs))
	grid.ParallelFor(workers, len(pkgs), func(i int) {
		pkg := pkgs[i]
		for _, f := range pkg.Files {
			perPkgIgnores[i] = append(perPkgIgnores[i], scanIgnores(fset, f)...)
		}
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				Prog:     prog,
				diags:    &perPkgDiags[i],
			}
			a.Run(pass)
		}
	})
	var diags []Diagnostic
	var ignores []ignoreDirective
	for i := range pkgs {
		diags = append(diags, perPkgDiags[i]...)
		ignores = append(ignores, perPkgIgnores[i]...)
	}
	diags = append(diags, extraDiags...)

	diags = applyIgnores(diags, ignores)
	relativize(diags, opts.Dir)
	sortDiags(diags)
	return &Result{Diags: diags, Fset: fset}, nil
}

// needsGCFacts reports whether any selected analyzer consumes compiler
// diagnostics.
func needsGCFacts(analyzers []*Analyzer) bool {
	for _, a := range analyzers {
		if a == BCE || a == Escape || a == Inline {
			return true
		}
	}
	return false
}

func orDot(dir string) string {
	if dir == "" {
		return "."
	}
	return dir
}

// An ignoreDirective is one parsed //lint:ignore comment. It suppresses
// diagnostics of the named rules on targetLine of its file — the directive's
// own line for a trailing comment, the following line for a comment that
// stands alone. A directive without a reason suppresses nothing and is
// reported itself.
type ignoreDirective struct {
	pos        token.Position
	rules      []string
	hasReason  bool
	targetLine int
}

// scanIgnores extracts //lint:ignore directives from one file.
func scanIgnores(fset *token.FileSet, f *ast.File) []ignoreDirective {
	// Lines on which non-comment code starts, to distinguish trailing
	// directives from stand-alone ones.
	codeLines := map[int]bool{}
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if _, isComment := n.(*ast.Comment); isComment {
			return false
		}
		if _, isGroup := n.(*ast.CommentGroup); isGroup {
			return false
		}
		codeLines[fset.Position(n.Pos()).Line] = true
		return true
	})

	var out []ignoreDirective
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
			if !ok {
				continue
			}
			pos := fset.Position(c.Pos())
			d := ignoreDirective{pos: pos, targetLine: pos.Line}
			fields := strings.Fields(text)
			if len(fields) > 0 {
				d.rules = strings.Split(fields[0], ",")
				d.hasReason = len(fields) > 1
			}
			// A directive with no code before it on its line guards the
			// next line instead.
			if !codeLines[pos.Line] || pos.Column == 1 {
				d.targetLine = pos.Line + 1
			}
			out = append(out, d)
		}
	}
	return out
}

// applyIgnores drops diagnostics matched by a well-formed directive and
// reports malformed directives under the "ignore" rule.
func applyIgnores(diags []Diagnostic, ignores []ignoreDirective) []Diagnostic {
	var out []Diagnostic
	for _, d := range diags {
		suppressed := false
		for _, ig := range ignores {
			if !ig.hasReason || ig.pos.Filename != d.Pos.Filename || ig.targetLine != d.Pos.Line {
				continue
			}
			for _, r := range ig.rules {
				if r == d.Rule {
					suppressed = true
					break
				}
			}
			if suppressed {
				break
			}
		}
		if !suppressed {
			out = append(out, d)
		}
	}
	for _, ig := range ignores {
		if !ig.hasReason {
			out = append(out, Diagnostic{
				Pos:     ig.pos,
				Rule:    "ignore",
				Message: "//lint:ignore directive needs a reason: //lint:ignore <rule>[,<rule>] <reason>",
			})
		}
	}
	return out
}

// relativize rewrites diagnostic file paths relative to dir so output is
// stable across checkouts and machines.
func relativize(diags []Diagnostic, dir string) {
	if dir == "" {
		dir = "."
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return
	}
	for i := range diags {
		if rel, err := filepath.Rel(abs, diags[i].Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			diags[i].Pos.Filename = filepath.ToSlash(rel)
		}
	}
}

// jsonDiag is the stable wire form of one diagnostic. Field order is the
// schema; see README ("iltlint").
type jsonDiag struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
	Fixable bool   `json:"fixable"`
}

// WriteJSON emits {"count": N, "diagnostics": [...]} with diagnostics in
// the runner's deterministic order. The byte stream is identical across
// runs over the same tree.
func WriteJSON(w io.Writer, diags []Diagnostic) error {
	payload := struct {
		Count       int        `json:"count"`
		Diagnostics []jsonDiag `json:"diagnostics"`
	}{Count: len(diags), Diagnostics: make([]jsonDiag, 0, len(diags))}
	for _, d := range diags {
		payload.Diagnostics = append(payload.Diagnostics, jsonDiag{
			File: d.Pos.Filename, Line: d.Pos.Line, Col: d.Pos.Column,
			Rule: d.Rule, Message: d.Message, Fixable: d.Fix != nil,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(payload)
}

// WriteText emits one "file:line:col: message (rule)" line per diagnostic.
func WriteText(w io.Writer, diags []Diagnostic) {
	for _, d := range diags {
		fmt.Fprintln(w, d.String())
	}
}
