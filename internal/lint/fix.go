package lint

import (
	"fmt"
	"go/format"
	"go/token"
	"os"
	"sort"
)

// offsetEdit is an Edit resolved to byte offsets within one file.
type offsetEdit struct {
	start, end int
	new        string
}

// fileEdits is the per-file plan of accepted fix edits.
type fileEdits struct {
	edits   []offsetEdit
	applied int
}

// planFixes resolves every suggested fix in diags to per-file edit plans.
// Fixes whose edits overlap an already-accepted edit in the same file are
// skipped (first-come in diagnostic order wins).
func planFixes(fset *token.FileSet, diags []Diagnostic) map[string]*fileEdits {
	perFile := map[string]*fileEdits{}
	for _, d := range diags {
		if d.Fix == nil {
			continue
		}
		var resolved []offsetEdit
		file := ""
		ok := true
		for _, e := range d.Fix.Edits {
			tf := fset.File(e.Pos)
			if tf == nil || (e.End != token.NoPos && fset.File(e.End) != tf) {
				ok = false
				break
			}
			if file == "" {
				file = tf.Name()
			} else if file != tf.Name() {
				ok = false // a fix must stay within one file
				break
			}
			end := e.End
			if end == token.NoPos {
				end = e.Pos
			}
			resolved = append(resolved, offsetEdit{tf.Offset(e.Pos), tf.Offset(end), e.New})
		}
		if !ok || file == "" {
			continue
		}
		fe := perFile[file]
		if fe == nil {
			fe = &fileEdits{}
			perFile[file] = fe
		}
		if overlaps(fe.edits, resolved) {
			continue
		}
		fe.edits = append(fe.edits, resolved...)
		fe.applied++
	}
	return perFile
}

// ApplyFixes applies every suggested fix in diags to the files on disk and
// gofmts the results. It returns the number of fixes applied per file.
func ApplyFixes(fset *token.FileSet, diags []Diagnostic) (map[string]int, error) {
	perFile := planFixes(fset, diags)
	counts := map[string]int{}
	for file, fe := range perFile {
		src, err := os.ReadFile(file)
		if err != nil {
			return counts, err
		}
		out, err := applyEdits(src, fe.edits)
		if err != nil {
			return counts, fmt.Errorf("%s: %v", file, err)
		}
		if formatted, err := format.Source(out); err == nil {
			out = formatted
		}
		if err := os.WriteFile(file, out, 0o644); err != nil {
			return counts, err
		}
		counts[file] = fe.applied
	}
	return counts, nil
}

// overlaps reports whether any edit in next intersects an edit in have.
// Pure insertions at the same offset count as overlapping: their order
// would be ambiguous.
func overlaps(have, next []offsetEdit) bool {
	for _, a := range have {
		for _, b := range next {
			if a.start == b.start {
				return true
			}
			lo, hi := a, b
			if b.start < a.start {
				lo, hi = b, a
			}
			if hi.start < lo.end {
				return true
			}
		}
	}
	return false
}

// applyEdits splices the edits into src, validating bounds and ordering.
func applyEdits(src []byte, edits []offsetEdit) ([]byte, error) {
	sorted := make([]offsetEdit, len(edits))
	copy(sorted, edits)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].start < sorted[j].start })
	var out []byte
	prev := 0
	for _, e := range sorted {
		if e.start < prev || e.end < e.start || e.end > len(src) {
			return nil, fmt.Errorf("conflicting or out-of-range edit at offset %d", e.start)
		}
		out = append(out, src[prev:e.start]...)
		out = append(out, e.new...)
		prev = e.end
	}
	out = append(out, src[prev:]...)
	return out, nil
}
