package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// AtomicField enforces all-or-nothing atomicity: a struct field that any
// function in the package set touches through a function-style sync/atomic
// call (atomic.AddInt64(&s.n, 1), atomic.LoadUint32(&s.flag), ...) must be
// accessed that way everywhere — a single plain read or write of the same
// field is a data race the moment the atomic site runs on another
// goroutine, and with the parallel SOCS/tiling paths (PR 1) and telemetry
// counters (PR 2) almost every function here can. The collection side runs
// program-wide during BuildProgram (collectAtomicFields below), so a plain
// access in package A is flagged against an atomic site in package B; the
// report notes when the offending function is goroutine-reachable per the
// call graph, which is when the race is live rather than latent.
//
// Typed atomics (atomic.Int64 et al.) make this mistake unrepresentable
// and are what the repo itself uses; this rule exists to keep the
// function-style escape hatch honest wherever it appears.
var AtomicField = &Analyzer{
	Name: "atomicfield",
	Doc:  "flags plain accesses of struct fields that are accessed via sync/atomic elsewhere in the package set",
	Run:  runAtomicField,
}

// atomicCallFieldKey returns the field key accessed by call when call is a
// function-style sync/atomic operation on &x.F, plus the selector node.
func atomicCallFieldKey(info *types.Info, call *ast.CallExpr) (string, *ast.SelectorExpr, bool) {
	fun, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", nil, false
	}
	id, ok := fun.X.(*ast.Ident)
	if !ok {
		return "", nil, false
	}
	pn, ok := info.ObjectOf(id).(*types.PkgName)
	if !ok || pn.Imported().Path() != "sync/atomic" {
		return "", nil, false
	}
	name := fun.Sel.Name
	if !strings.HasPrefix(name, "Add") && !strings.HasPrefix(name, "Load") &&
		!strings.HasPrefix(name, "Store") && !strings.HasPrefix(name, "Swap") &&
		!strings.HasPrefix(name, "CompareAndSwap") {
		return "", nil, false
	}
	if len(call.Args) == 0 {
		return "", nil, false
	}
	addr, ok := unparen(call.Args[0]).(*ast.UnaryExpr)
	if !ok || addr.Op != token.AND {
		return "", nil, false
	}
	sel, ok := unparen(addr.X).(*ast.SelectorExpr)
	if !ok {
		return "", nil, false
	}
	key, ok := fieldKeyOf(info, sel)
	if !ok {
		return "", nil, false
	}
	return key, sel, true
}

// fieldKeyOf names the struct field selected by sel as
// "pkg/path.Type.Field", or ok=false when sel is not a field selection on
// a named type.
func fieldKeyOf(info *types.Info, sel *ast.SelectorExpr) (string, bool) {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return "", false
	}
	fld, ok := s.Obj().(*types.Var)
	if !ok || !fld.IsField() {
		return "", false
	}
	rt := s.Recv()
	if ptr, isPtr := rt.(*types.Pointer); isPtr {
		rt = ptr.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return "", false
	}
	return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + fld.Name(), true
}

// collectAtomicFields records, program-wide, every field reached through a
// function-style sync/atomic call. Runs once per package during
// BuildProgram, before any analyzer.
func (p *Program) collectAtomicFields(pkg *Package) {
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if key, sel, ok := atomicCallFieldKey(pkg.Info, call); ok {
				p.AtomicFields[key] = append(p.AtomicFields[key], p.Fset.Position(sel.Pos()))
			}
			return true
		})
	}
	for _, positions := range p.AtomicFields {
		sort.Slice(positions, func(i, j int) bool {
			a, b := positions[i], positions[j]
			if a.Filename != b.Filename {
				return a.Filename < b.Filename
			}
			if a.Line != b.Line {
				return a.Line < b.Line
			}
			return a.Column < b.Column
		})
	}
}

func runAtomicField(pass *Pass) {
	if pass.Prog == nil || len(pass.Prog.AtomicFields) == 0 {
		return
	}
	info := pass.Info
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			// Selectors consumed by an atomic call in this body are the
			// sanctioned accesses; everything else that resolves to a
			// collected field is a violation.
			sanctioned := map[*ast.SelectorExpr]bool{}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if _, sel, ok := atomicCallFieldKey(info, call); ok {
						sanctioned[sel] = true
					}
				}
				return true
			})
			reachable := false
			if pkg := pass.Prog.packageOf(pass.Pkg); pkg != nil {
				if fi := pass.Prog.FuncOf(pkg, fd); fi != nil {
					reachable = pass.Prog.GoroutineReachable[fi.Key]
				}
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok || sanctioned[sel] {
					return true
				}
				key, ok := fieldKeyOf(info, sel)
				if !ok {
					return true
				}
				sites, hot := pass.Prog.AtomicFields[key]
				if !hot {
					return true
				}
				note := ""
				if reachable {
					note = "; this function is goroutine-reachable, so the race is live"
				}
				pass.Report(sel.Sel.Pos(), nil,
					"field %s is accessed with sync/atomic at %s:%d but plainly here — mixed plain/atomic access is a data race%s (atomicfield contract, DESIGN.md)",
					key, shortFile(sites[0].Filename), sites[0].Line, note)
				return true
			})
		}
	}
}

// shortFile trims a position filename to its base for stable messages
// regardless of the absolute checkout path.
func shortFile(name string) string {
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		return name[i+1:]
	}
	return name
}
