// Package tracestat turns the JSONL traces written by the instrumented
// pipeline (iltopt -trace, the server's SSE stream replayed to a file) into
// offline analytics: per-phase wall-time tables, per-iteration loss/step/
// retry series, latency quantiles, and a critical-path summary. Its A/B
// mode compares two traces of the same workload and flags per-phase
// regressions, which is what the `make trace-stat` lane gates on.
//
// The renderer is deliberately byte-deterministic for a given trace: all
// aggregation iterates in sorted order and every float is printed with a
// fixed format, so a golden-file test can pin the full report.
package tracestat

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// IterRec is one "iter" event: a single optimizer step.
type IterRec struct {
	Stage   int
	Iter    int
	Loss    float64
	Step    float64
	Sec     float64
	Retries int
}

// StageRec folds a "stage.start"/"stage.end" pair.
type StageRec struct {
	Stage    int
	Scale    int
	Budget   int     // iteration budget from stage.start
	ItersRun int     // from stage.end (0 if the trace was truncated)
	BestLoss float64 // from stage.end
	Sec      float64 // from stage.end
}

// PhaseRec is one phase timer from the close-time "phases" event.
type PhaseRec struct {
	Name  string
	Sec   float64
	Count int64
}

// HistRec is one latency-histogram summary from the "phases" event.
type HistRec struct {
	Name  string
	Count int64
	Sum   float64
	P50   float64
	P95   float64
	P99   float64
}

// Trace is the parsed, aggregated form of one JSONL trace.
type Trace struct {
	Events   int
	Tool     string
	Name     string
	Recipe   string
	WallSec  float64
	ILTSec   float64
	Iters    []IterRec
	Stages   []StageRec // sorted by stage index
	Phases   []PhaseRec // sorted by name
	Hists    []HistRec  // sorted by name
	Counters map[string]int64
}

// PhaseSec returns the summed phase seconds (the coverage numerator).
func (t *Trace) PhaseSec() float64 {
	var s float64
	for _, p := range t.Phases {
		s += p.Sec
	}
	return s
}

// ReadFile parses the JSONL trace at path.
func ReadFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	t, err := Read(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return t, nil
}

// Read parses a JSONL trace stream. It is schema-light by design — full
// schema validation is tracecheck's job; Read only needs the fields it
// aggregates and tolerates events it does not know.
func Read(r io.Reader) (*Trace, error) {
	t := &Trace{Counters: map[string]int64{}}
	stages := map[int]*StageRec{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var obj map[string]any
		if err := json.Unmarshal(sc.Bytes(), &obj); err != nil {
			return nil, fmt.Errorf("line %d: invalid JSON: %w", line, err)
		}
		name, _ := obj["event"].(string)
		if name == "" {
			return nil, fmt.Errorf("line %d: missing event name", line)
		}
		t.Events++
		switch name {
		case "run.start":
			t.Tool, _ = obj["tool"].(string)
			t.Name, _ = obj["name"].(string)
			t.Recipe, _ = obj["recipe"].(string)
		case "stage.start":
			s := stageAt(stages, num(obj, "stage"))
			s.Scale = int(obj["scale"].(float64))
			s.Budget = num(obj, "iters")
		case "iter":
			t.Iters = append(t.Iters, IterRec{
				Stage:   num(obj, "stage"),
				Iter:    num(obj, "iter"),
				Loss:    fnum(obj, "loss"),
				Step:    fnum(obj, "step"),
				Sec:     fnum(obj, "sec"),
				Retries: num(obj, "retries"),
			})
		case "stage.end":
			s := stageAt(stages, num(obj, "stage"))
			s.ItersRun = num(obj, "iters_run")
			s.BestLoss = fnum(obj, "best_loss")
			s.Sec = fnum(obj, "sec")
		case "run.end":
			t.WallSec = fnum(obj, "wall_sec")
			t.ILTSec = fnum(obj, "ilt_sec")
		case "phases":
			t.readPhases(obj)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if t.Events == 0 {
		return nil, fmt.Errorf("trace is empty")
	}
	for _, s := range stages {
		t.Stages = append(t.Stages, *s)
	}
	sort.Slice(t.Stages, func(i, j int) bool { return t.Stages[i].Stage < t.Stages[j].Stage })
	return t, nil
}

// readPhases unpacks the close-time "phases" event: phase timers are the
// sub-objects carrying a "sec" field, "counters" and "histograms" are
// dedicated blocks, everything else (event/seq/ts) is envelope.
func (t *Trace) readPhases(obj map[string]any) {
	for _, k := range sortedKeys(obj) {
		switch k {
		case "event", "seq", "ts":
		case "counters":
			cm, ok := obj[k].(map[string]any)
			if !ok {
				continue
			}
			for _, ck := range sortedKeys(cm) {
				if v, ok := cm[ck].(float64); ok {
					t.Counters[ck] = int64(v)
				}
			}
		case "histograms":
			hm, ok := obj[k].(map[string]any)
			if !ok {
				continue
			}
			for _, hk := range sortedKeys(hm) {
				m, ok := hm[hk].(map[string]any)
				if !ok {
					continue
				}
				t.Hists = append(t.Hists, HistRec{
					Name:  hk,
					Count: int64(fnum(m, "count")),
					Sum:   fnum(m, "sum"),
					P50:   fnum(m, "p50"),
					P95:   fnum(m, "p95"),
					P99:   fnum(m, "p99"),
				})
			}
		default:
			m, ok := obj[k].(map[string]any)
			if !ok {
				continue
			}
			sec, ok := m["sec"].(float64)
			if !ok {
				continue
			}
			t.Phases = append(t.Phases, PhaseRec{
				Name:  k,
				Sec:   sec,
				Count: int64(fnum(m, "count")),
			})
		}
	}
	sort.Slice(t.Phases, func(i, j int) bool { return t.Phases[i].Name < t.Phases[j].Name })
}

func stageAt(m map[int]*StageRec, i int) *StageRec {
	s, ok := m[i]
	if !ok {
		s = &StageRec{Stage: i}
		m[i] = s
	}
	return s
}

func num(obj map[string]any, key string) int {
	v, _ := obj[key].(float64)
	return int(v)
}

func fnum(obj map[string]any, key string) float64 {
	v, _ := obj[key].(float64)
	return v
}

func sortedKeys(m map[string]any) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// quantile returns the nearest-rank q-quantile (0 < q <= 1) of vs, which it
// sorts in place. Nearest-rank keeps golden reports exact: the answer is
// always one of the observed values, never an interpolation.
func quantile(vs []float64, q float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	sort.Float64s(vs)
	rank := int(q*float64(len(vs)) + 0.9999999)
	if rank < 1 {
		rank = 1
	}
	if rank > len(vs) {
		rank = len(vs)
	}
	return vs[rank-1]
}
