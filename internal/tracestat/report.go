package tracestat

import (
	"fmt"
	"io"
	"sort"
)

// Render writes the human-readable analytics report for one trace. Output
// is byte-deterministic for a given trace: section order, row order, and
// float formats are all fixed (see the golden-file test).
func Render(w io.Writer, t *Trace) {
	name := t.Name
	if name == "" {
		name = "(unnamed)"
	}
	fmt.Fprintf(w, "trace report: %s (tool %s, recipe %s)\n", name, orDash(t.Tool), orDash(t.Recipe))
	fmt.Fprintf(w, "  %d events, %d iterations over %d stages, wall %.3fs, ilt %.3fs\n",
		t.Events, len(t.Iters), len(t.Stages), t.WallSec, t.ILTSec)

	renderIters(w, t)
	renderStages(w, t)
	renderPhases(w, t)
	renderHists(w, t)
}

func renderIters(w io.Writer, t *Trace) {
	if len(t.Iters) == 0 {
		return
	}
	secs := make([]float64, 0, len(t.Iters))
	steps := make([]float64, 0, len(t.Iters))
	var total float64
	retries := 0
	for _, it := range t.Iters {
		secs = append(secs, it.Sec)
		steps = append(steps, it.Step)
		total += it.Sec
		retries += it.Retries
	}
	fmt.Fprintf(w, "\niteration latency\n")
	fmt.Fprintf(w, "  count %d  p50 %.6fs  p95 %.6fs  p99 %.6fs  mean %.6fs  total %.6fs\n",
		len(secs), quantile(secs, 0.50), quantile(secs, 0.95), quantile(secs, 0.99),
		total/float64(len(secs)), total)
	fmt.Fprintf(w, "  line-search retries %d  step p50 %.4f\n", retries, quantile(steps, 0.50))
}

func renderStages(w io.Writer, t *Trace) {
	if len(t.Stages) == 0 {
		return
	}
	// Loss series per stage come from the iter events; the stage records
	// carry the budget and the stage.end summary.
	firstLoss := map[int]float64{}
	lastLoss := map[int]float64{}
	seen := map[int]bool{}
	for _, it := range t.Iters {
		if !seen[it.Stage] {
			firstLoss[it.Stage] = it.Loss
			seen[it.Stage] = true
		}
		lastLoss[it.Stage] = it.Loss
	}
	fmt.Fprintf(w, "\nloss by stage\n")
	fmt.Fprintf(w, "  %-5s %-5s %-11s %-12s %-12s %-12s %s\n",
		"stage", "scale", "iters", "first_loss", "best_loss", "last_loss", "sec")
	for _, s := range t.Stages {
		fmt.Fprintf(w, "  %-5d %-5d %-11s %-12.6g %-12.6g %-12.6g %.6f\n",
			s.Stage, s.Scale, fmt.Sprintf("%d/%d", s.ItersRun, s.Budget),
			firstLoss[s.Stage], s.BestLoss, lastLoss[s.Stage], s.Sec)
	}
}

func renderPhases(w io.Writer, t *Trace) {
	if len(t.Phases) == 0 {
		return
	}
	// Critical path: phases sorted by wall time, heaviest first (name as a
	// deterministic tie-break), with per-call means and wall-clock shares.
	byTime := make([]PhaseRec, len(t.Phases))
	copy(byTime, t.Phases)
	sort.Slice(byTime, func(i, j int) bool {
		if byTime[i].Sec > byTime[j].Sec {
			return true
		}
		if byTime[i].Sec < byTime[j].Sec {
			return false
		}
		return byTime[i].Name < byTime[j].Name
	})
	fmt.Fprintf(w, "\nphases by wall time (critical path)\n")
	fmt.Fprintf(w, "  %-24s %-11s %-7s %-11s %s\n", "phase", "sec", "calls", "mean_ms", "share")
	for _, p := range byTime {
		share := 0.0
		if t.WallSec > 0 {
			share = 100 * p.Sec / t.WallSec
		}
		mean := 0.0
		if p.Count > 0 {
			mean = 1000 * p.Sec / float64(p.Count)
		}
		fmt.Fprintf(w, "  %-24s %-11.6f %-7d %-11.3f %.1f%%\n", p.Name, p.Sec, p.Count, mean, share)
	}
	if t.WallSec > 0 {
		fmt.Fprintf(w, "  phase coverage: %.3fs of %.3fs wall = %.1f%%\n",
			t.PhaseSec(), t.WallSec, 100*t.PhaseSec()/t.WallSec)
	}
}

func renderHists(w io.Writer, t *Trace) {
	if len(t.Hists) == 0 {
		return
	}
	fmt.Fprintf(w, "\nlatency histograms\n")
	fmt.Fprintf(w, "  %-24s %-7s %-11s %-11s %-11s %s\n", "name", "count", "p50", "p95", "p99", "sum")
	for _, h := range t.Hists {
		fmt.Fprintf(w, "  %-24s %-7d %-11.6f %-11.6f %-11.6f %.6f\n",
			h.Name, h.Count, h.P50, h.P95, h.P99, h.Sum)
	}
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
