package tracestat

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// CompareRow is one phase's A/B verdict. The gate is the per-call mean, not
// the total: a run that simply does more calls (longer budget, more stages)
// is not a regression, a run whose calls got slower is.
type CompareRow struct {
	Phase     string
	OldSec    float64
	NewSec    float64
	OldCalls  int64
	NewCalls  int64
	Delta     float64 // (newMean - oldMean) / oldMean; only when both sides exist
	Status    string  // "ok" | "REGRESSED" | "new" | "gone"
	Regressed bool
}

// CompareResult is the full A/B table plus the gate outcome.
type CompareResult struct {
	Threshold   float64
	Rows        []CompareRow // sorted by phase name
	Regressions int
}

// Compare builds the per-phase A/B table between two traces of the same
// workload. A phase regresses when its per-call mean grew by at least
// threshold (a ratio: 0.10 means +10%). Phases present on only one side
// are reported but never gate — a new instrumentation point or a removed
// phase is a code change, not a slowdown.
func Compare(oldT, newT *Trace, threshold float64) *CompareResult {
	res := &CompareResult{Threshold: threshold}
	oldBy := map[string]PhaseRec{}
	for _, p := range oldT.Phases {
		oldBy[p.Name] = p
	}
	newBy := map[string]PhaseRec{}
	for _, p := range newT.Phases {
		newBy[p.Name] = p
	}
	names := map[string]bool{}
	for n := range oldBy {
		names[n] = true
	}
	for n := range newBy {
		names[n] = true
	}
	for _, n := range sortedNames(names) {
		o, haveOld := oldBy[n]
		nw, haveNew := newBy[n]
		row := CompareRow{Phase: n, OldSec: o.Sec, NewSec: nw.Sec, OldCalls: o.Count, NewCalls: nw.Count}
		switch {
		case !haveOld:
			row.Status = "new"
		case !haveNew:
			row.Status = "gone"
		default:
			oldMean := mean(o.Sec, o.Count)
			newMean := mean(nw.Sec, nw.Count)
			if oldMean > 0 {
				row.Delta = (newMean - oldMean) / oldMean
			}
			if oldMean > 0 && row.Delta >= threshold {
				row.Status = "REGRESSED"
				row.Regressed = true
				res.Regressions++
			} else {
				row.Status = "ok"
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// Render writes the A/B table. Like the single-trace report it is
// byte-deterministic.
func (res *CompareResult) Render(w io.Writer, oldLabel, newLabel string) {
	fmt.Fprintf(w, "trace compare: %s -> %s (threshold +%.1f%% per-call mean)\n",
		oldLabel, newLabel, 100*res.Threshold)
	fmt.Fprintf(w, "  %-24s %-11s %-11s %-9s %-9s %-9s %s\n",
		"phase", "old_sec", "new_sec", "old_n", "new_n", "delta", "status")
	for _, r := range res.Rows {
		delta := "-"
		if r.Status == "ok" || r.Status == "REGRESSED" {
			delta = fmt.Sprintf("%+.1f%%", 100*r.Delta)
		}
		fmt.Fprintf(w, "  %-24s %-11.6f %-11.6f %-9d %-9d %-9s %s\n",
			r.Phase, r.OldSec, r.NewSec, r.OldCalls, r.NewCalls, delta, r.Status)
	}
	if res.Regressions > 0 {
		fmt.Fprintf(w, "  RESULT: %d phase(s) regressed\n", res.Regressions)
	} else {
		fmt.Fprintf(w, "  RESULT: no per-phase regressions\n")
	}
}

// ParseThreshold accepts "10%" or a plain ratio like "0.1".
func ParseThreshold(s string) (float64, error) {
	pct := strings.HasSuffix(s, "%")
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		return 0, fmt.Errorf("threshold %q: %w", s, err)
	}
	if pct {
		v /= 100
	}
	if v < 0 {
		return 0, fmt.Errorf("threshold %q is negative", s)
	}
	return v, nil
}

func mean(sec float64, calls int64) float64 {
	if calls <= 0 {
		return 0
	}
	return sec / float64(calls)
}

func sortedNames(set map[string]bool) []string {
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
