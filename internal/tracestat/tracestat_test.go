package tracestat

import (
	"bytes"
	"math"
	"os"
	"strings"
	"testing"
)

// TestGoldenReport pins the full report byte-for-byte: the renderer promises
// deterministic output for a given trace, and this is the contract the
// trace-stat CI lane depends on.
func TestGoldenReport(t *testing.T) {
	tr, err := ReadFile("testdata/golden.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile("testdata/golden_report.txt")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	Render(&buf, tr)
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("report drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s",
			buf.String(), want)
	}
	// A second render of the same trace is identical.
	var buf2 bytes.Buffer
	Render(&buf2, tr)
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("renderer is not deterministic")
	}
}

func TestReadGolden(t *testing.T) {
	tr, err := ReadFile("testdata/golden.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	if tr.Tool != "iltopt" || tr.Name != "case1" || tr.Recipe != "exact" {
		t.Errorf("run identity = %q/%q/%q", tr.Tool, tr.Name, tr.Recipe)
	}
	if tr.Events != 12 || len(tr.Iters) != 5 || len(tr.Stages) != 2 {
		t.Errorf("events %d, iters %d, stages %d", tr.Events, len(tr.Iters), len(tr.Stages))
	}
	if math.Abs(tr.WallSec-3.0) > 1e-12 || math.Abs(tr.ILTSec-2.5) > 1e-12 {
		t.Errorf("wall %g ilt %g", tr.WallSec, tr.ILTSec)
	}
	s0 := tr.Stages[0]
	if s0.Scale != 4 || s0.Budget != 3 || s0.ItersRun != 3 || math.Abs(s0.BestLoss-6.5) > 1e-12 {
		t.Errorf("stage 0 = %+v", s0)
	}
	// Phases arrive sorted by name; heaviest is litho.socs at 1.2s/10 calls.
	if len(tr.Phases) != 3 || tr.Phases[0].Name != "litho.adjoint" {
		t.Fatalf("phases = %+v", tr.Phases)
	}
	var socs PhaseRec
	for _, p := range tr.Phases {
		if p.Name == "litho.socs" {
			socs = p
		}
	}
	if socs.Count != 10 || math.Abs(socs.Sec-1.2) > 1e-12 {
		t.Errorf("litho.socs = %+v", socs)
	}
	if math.Abs(tr.PhaseSec()-2.4) > 1e-12 {
		t.Errorf("phase sec = %g, want 2.4", tr.PhaseSec())
	}
	if tr.Counters["litho.plan_builds"] != 2 || tr.Counters["litho.forward_sims"] != 15 {
		t.Errorf("counters = %v", tr.Counters)
	}
	if len(tr.Hists) != 2 || tr.Hists[0].Name != "core.iter" || tr.Hists[0].Count != 5 {
		t.Errorf("histograms = %+v", tr.Hists)
	}
}

func TestCompareDetectsRegression(t *testing.T) {
	oldT, err := ReadFile("testdata/compare_old.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	newT, err := ReadFile("testdata/compare_new.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	res := Compare(oldT, newT, 0.10)
	if res.Regressions != 1 {
		t.Fatalf("regressions = %d, want 1 (%+v)", res.Regressions, res.Rows)
	}
	byName := map[string]CompareRow{}
	for _, r := range res.Rows {
		byName[r.Phase] = r
	}
	// litho.socs: 100ms/call → 120ms/call = +20%, past the 10% gate.
	socs := byName["litho.socs"]
	if !socs.Regressed || socs.Status != "REGRESSED" || math.Abs(socs.Delta-0.20) > 1e-9 {
		t.Errorf("litho.socs = %+v", socs)
	}
	// litho.adjoint: +2% stays under the gate.
	if adj := byName["litho.adjoint"]; adj.Regressed || adj.Status != "ok" {
		t.Errorf("litho.adjoint = %+v", adj)
	}
	// A phase only the new trace has is informational, never a regression.
	if pb := byName["fft.plan_build"]; pb.Regressed || pb.Status != "new" {
		t.Errorf("fft.plan_build = %+v", pb)
	}

	// A slacker threshold passes the same pair.
	if res := Compare(oldT, newT, 0.25); res.Regressions != 0 {
		t.Errorf("threshold 25%% still finds %d regressions", res.Regressions)
	}

	// The rendered verdict names the regression and is deterministic.
	var buf bytes.Buffer
	res2 := Compare(oldT, newT, 0.10)
	res2.Render(&buf, "old", "new")
	out := buf.String()
	for _, want := range []string{"REGRESSED", "+20.0%", "RESULT: 1 phase(s) regressed"} {
		if !strings.Contains(out, want) {
			t.Errorf("compare report missing %q:\n%s", want, out)
		}
	}
}

func TestParseThreshold(t *testing.T) {
	for in, want := range map[string]float64{
		"10%": 0.10, "0.1": 0.1, "7.5%": 0.075, "0": 0,
	} {
		got, err := ParseThreshold(in)
		if err != nil || math.Abs(got-want) > 1e-12 {
			t.Errorf("ParseThreshold(%q) = %g, %v; want %g", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "x%", "-5%"} {
		if _, err := ParseThreshold(bad); err == nil {
			t.Errorf("ParseThreshold(%q) accepted", bad)
		}
	}
}

func TestQuantileNearestRank(t *testing.T) {
	vs := []float64{0.1, 0.12, 0.1, 0.2, 0.21}
	if q := quantile(append([]float64(nil), vs...), 0.50); math.Abs(q-0.12) > 1e-12 {
		t.Errorf("p50 = %g, want 0.12", q)
	}
	if q := quantile(append([]float64(nil), vs...), 0.95); math.Abs(q-0.21) > 1e-12 {
		t.Errorf("p95 = %g, want 0.21", q)
	}
	if q := quantile([]float64{7}, 0.99); math.Abs(q-7) > 1e-12 {
		t.Errorf("single-element p99 = %g", q)
	}
	if q := quantile(nil, 0.5); q != 0 {
		t.Errorf("empty quantile = %g", q)
	}
}

func TestReadErrors(t *testing.T) {
	if _, err := Read(strings.NewReader("")); err == nil {
		t.Error("empty trace accepted")
	}
	if _, err := Read(strings.NewReader("not json\n")); err == nil {
		t.Error("invalid JSON accepted")
	}
	if _, err := Read(strings.NewReader(`{"seq":1,"ts":0.1}` + "\n")); err == nil {
		t.Error("event-less line accepted")
	}
}
