package core

import (
	"context"
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/litho"
	"repro/internal/mask"
	"repro/internal/metrics"
	"repro/internal/optics"
)

var (
	procOnce sync.Once
	procVal  *litho.Process
)

func process(t testing.TB) *litho.Process {
	t.Helper()
	procOnce.Do(func() {
		m, err := optics.BuildModel(optics.TestScale())
		if err != nil {
			panic(err)
		}
		procVal = litho.NewProcess(m)
	})
	return procVal
}

// testTarget builds a 128×128 target with two bars — small enough for fast
// tests, large enough to print.
func testTarget() *grid.Mat {
	tgt := grid.NewMat(128, 128)
	geom.FillRect(tgt, geom.Rect{X0: 32, Y0: 40, X1: 88, Y1: 56}, 1)
	geom.FillRect(tgt, geom.Rect{X0: 32, Y0: 72, X1: 88, Y1: 88}, 1)
	return tgt
}

func TestLossTermsAndGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 8
	zi, zo, zt := grid.NewMat(n, n), grid.NewMat(n, n), grid.NewMat(n, n)
	for i := 0; i < n*n; i++ {
		zi.Data[i] = rng.Float64()
		zo.Data[i] = rng.Float64()
		zt.Data[i] = float64(rng.Intn(2))
	}
	terms, gIn, gOut := Loss(zi, zo, zt)
	if terms.Total() != terms.L2+terms.PVB {
		t.Error("Total != L2+PVB")
	}

	eval := func() float64 {
		tm, _, _ := Loss(zi, zo, zt)
		return tm.Total()
	}
	const eps = 1e-6
	for trial := 0; trial < 5; trial++ {
		i := rng.Intn(n * n)
		// dL/dZ_in
		orig := zi.Data[i]
		zi.Data[i] = orig + eps
		lp := eval()
		zi.Data[i] = orig - eps
		lm := eval()
		zi.Data[i] = orig
		if fd := (lp - lm) / (2 * eps); math.Abs(fd-gIn.Data[i]) > 1e-6*(1+math.Abs(fd)) {
			t.Errorf("dL/dZin[%d]: analytic %g fd %g", i, gIn.Data[i], fd)
		}
		// dL/dZ_out
		orig = zo.Data[i]
		zo.Data[i] = orig + eps
		lp = eval()
		zo.Data[i] = orig - eps
		lm = eval()
		zo.Data[i] = orig
		if fd := (lp - lm) / (2 * eps); math.Abs(fd-gOut.Data[i]) > 1e-6*(1+math.Abs(fd)) {
			t.Errorf("dL/dZout[%d]: analytic %g fd %g", i, gOut.Data[i], fd)
		}
	}
}

func TestLossShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("loss shape mismatch did not panic")
		}
	}()
	Loss(grid.NewMat(4, 4), grid.NewMat(4, 4), grid.NewMat(8, 8))
}

// stepLoss evaluates the stage loss for finite-difference checking.
func stepLoss(t *testing.T, o *Optimizer, mp *grid.Mat, st Stage, ztS *grid.Mat) float64 {
	t.Helper()
	terms, _, err := o.step(mp, st, ztS, false)
	if err != nil {
		t.Fatal(err)
	}
	return terms.Total()
}

// TestStepGradientFiniteDifference validates the complete Algorithm 1
// gradient chain (binary function → smoothing pool → Hopkins → sigmoid
// resist → pooled loss) against finite differences for both branches.
func TestStepGradientFiniteDifference(t *testing.T) {
	p := process(t)
	tgt := testTarget()
	for _, tc := range []struct {
		name string
		st   Stage
	}{
		{"lowres-s4", Stage{Scale: 4, Iters: 1}},
		{"highres-s8", Stage{Scale: 8, Iters: 1, HighRes: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			opts := DefaultOptions(p)
			o, err := New(opts, tgt)
			if err != nil {
				t.Fatal(err)
			}
			ztS := grid.AvgPoolDown(tgt, tc.st.Scale)
			mp := grid.AvgPoolDown(tgt, tc.st.Scale)
			// Perturb away from the flat init so gradients are generic.
			rng := rand.New(rand.NewSource(2))
			for i := range mp.Data {
				mp.Data[i] += 0.3 * rng.NormFloat64()
			}
			_, g, err := o.step(mp, tc.st, ztS, true)
			if err != nil {
				t.Fatal(err)
			}
			const eps = 1e-5
			for trial := 0; trial < 5; trial++ {
				i := rng.Intn(len(mp.Data))
				orig := mp.Data[i]
				mp.Data[i] = orig + eps
				lp := stepLoss(t, o, mp, tc.st, ztS)
				mp.Data[i] = orig - eps
				lm := stepLoss(t, o, mp, tc.st, ztS)
				mp.Data[i] = orig
				fd := (lp - lm) / (2 * eps)
				if math.Abs(fd-g.Data[i]) > 2e-4*(1+math.Abs(fd)) {
					t.Errorf("%s dL/dM'[%d]: analytic %g fd %g", tc.name, i, g.Data[i], fd)
				}
			}
		})
	}
}

func TestRunImprovesLoss(t *testing.T) {
	p := process(t)
	tgt := testTarget()
	o, err := New(DefaultOptions(p), tgt)
	if err != nil {
		t.Fatal(err)
	}
	res, err := o.Run(context.Background(), []Stage{{Scale: 4, Iters: 12}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) != 12 || res.Iterations != 12 {
		t.Fatalf("history %d, iterations %d", len(res.History), res.Iterations)
	}
	first := res.History[0].Loss.Total()
	best := first
	for _, h := range res.History {
		if h.Loss.Total() < best {
			best = h.Loss.Total()
		}
	}
	if best >= first {
		t.Errorf("loss never improved: first %g best %g", first, best)
	}
}

func TestRunMultiLevelEndToEnd(t *testing.T) {
	p := process(t)
	tgt := testTarget()
	o, err := New(DefaultOptions(p), tgt)
	if err != nil {
		t.Fatal(err)
	}
	res, err := o.Run(context.Background(), []Stage{
		{Scale: 4, Iters: 15},
		{Scale: 8, Iters: 3, HighRes: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mask.W != 128 || res.Params.W != 128 {
		t.Fatalf("final sizes mask %d params %d, want 128", res.Mask.W, res.Params.W)
	}
	for _, v := range res.Mask.Data {
		if v != 0 && v != 1 {
			t.Fatal("final mask is not binary")
		}
	}
	if res.ILTSeconds <= 0 {
		t.Error("ILT time not recorded")
	}

	// The optimized mask must beat the raw target mask on the contest L2.
	rawRep, err := metrics.Evaluate(p, tgt, tgt, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	optRep, err := metrics.Evaluate(p, res.Mask, tgt, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	if optRep.L2 >= rawRep.L2 {
		t.Errorf("ILT did not improve L2: raw %v optimized %v", rawRep.L2, optRep.L2)
	}
}

func TestEarlyStoppingTerminates(t *testing.T) {
	p := process(t)
	tgt := testTarget()
	opts := DefaultOptions(p)
	opts.Patience = 3
	// An absurd learning rate guarantees the loss stops improving quickly.
	opts.LearningRate = 1e4
	o, err := New(opts, tgt)
	if err != nil {
		t.Fatal(err)
	}
	res, err := o.Run(context.Background(), []Stage{{Scale: 4, Iters: 200}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations >= 200 {
		t.Errorf("early stopping did not trigger: ran %d iterations", res.Iterations)
	}
}

func TestRegionConstraintRespected(t *testing.T) {
	p := process(t)
	tgt := testTarget()
	region, err := mask.Region(tgt, mask.Option1, 8)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions(p)
	opts.Region = region
	o, err := New(opts, tgt)
	if err != nil {
		t.Fatal(err)
	}
	res, err := o.Run(context.Background(), []Stage{{Scale: 4, Iters: 8}})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range region.Data {
		if r < 0.5 && res.Mask.Data[i] != 0 {
			t.Fatal("mask opened a pixel outside the optimizing region")
		}
	}
}

// TestImprovedBinaryFunctionProducesSRAFs reproduces the mechanism behind
// Fig. 4: after the same low-resolution iteration budget, the T_R = 0.5
// binary function opens assist features away from the main pattern while
// T_R = 0 keeps the far field opaque.
func TestImprovedBinaryFunctionProducesSRAFs(t *testing.T) {
	p := process(t)
	tgt := testTarget()
	// "Far" region: more than 12 px from any feature.
	far := geom.DilateBox(tgt, 12)

	srafArea := func(tr float64) float64 {
		opts := DefaultOptions(p)
		opts.Binary = mask.Sigmoid{Beta: mask.DefaultBeta, TR: tr}
		if tr == 0 {
			// Conventional ILT also outputs with the same T_R.
			opts.OutputTR = 0
		}
		o, err := New(opts, tgt)
		if err != nil {
			t.Fatal(err)
		}
		res, err := o.Run(context.Background(), []Stage{{Scale: 4, Iters: 40}})
		if err != nil {
			t.Fatal(err)
		}
		var area float64
		for i := range res.Mask.Data {
			if far.Data[i] < 0.5 && res.Mask.Data[i] == 1 {
				area++
			}
		}
		return area
	}

	withImproved := srafArea(0.5)
	conventional := srafArea(0)
	if withImproved <= conventional {
		t.Errorf("T_R=0.5 SRAF area %v not larger than T_R=0 area %v", withImproved, conventional)
	}
	if withImproved == 0 {
		t.Error("improved binary function produced no SRAFs at all")
	}
}

func TestResampleParams(t *testing.T) {
	m := grid.NewMat(4, 4)
	m.Fill(0.5)
	up, err := resampleParams(m, 8, 4)
	if err != nil || up.W != 8 {
		t.Fatalf("refine: %v, size %d", err, up.W)
	}
	down, err := resampleParams(m, 4, 8)
	if err != nil || down.W != 2 {
		t.Fatalf("coarsen: %v, size %d", err, down.W)
	}
	same, err := resampleParams(m, 4, 4)
	if err != nil || same != m {
		t.Fatal("same-scale resample should be a no-op")
	}
	if _, err := resampleParams(m, 6, 4); err == nil {
		t.Error("non-integer refinement ratio accepted")
	}
}

func TestNewValidation(t *testing.T) {
	p := process(t)
	tgt := testTarget()
	good := DefaultOptions(p)

	if _, err := New(Options{}, tgt); err == nil {
		t.Error("missing process accepted")
	}
	if _, err := New(good, grid.NewMat(128, 64)); err == nil {
		t.Error("non-square target accepted")
	}
	if _, err := New(good, grid.NewMat(96, 96)); err == nil {
		t.Error("non-power-of-two target accepted")
	}
	bad := good
	bad.LearningRate = 0
	if _, err := New(bad, tgt); err == nil {
		t.Error("zero learning rate accepted")
	}
	bad = good
	bad.SmoothWindow = 4
	if _, err := New(bad, tgt); err == nil {
		t.Error("even smoothing window accepted")
	}
	bad = good
	bad.Region = grid.NewMat(64, 64)
	if _, err := New(bad, tgt); err == nil {
		t.Error("mismatched region accepted")
	}
}

func TestStageValidation(t *testing.T) {
	p := process(t)
	o, err := New(DefaultOptions(p), testTarget())
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range []Stage{
		{Scale: 0, Iters: 1},
		{Scale: 3, Iters: 1},  // 128/3 not integral
		{Scale: 32, Iters: 1}, // working size 4 < kernel support
		{Scale: 4, Iters: -1},
	} {
		if _, err := o.Run(context.Background(), []Stage{st}); err == nil {
			t.Errorf("invalid stage %+v accepted", st)
		}
	}
	if _, err := o.Run(context.Background(), nil); err == nil {
		t.Error("empty schedule accepted")
	}
}

func TestRecipesShape(t *testing.T) {
	fast, exact, via := FastM1(), ExactM1(), Via()
	if len(fast) != 2 || fast[0].Scale != 4 || fast[0].Iters != 35 || !fast[1].HighRes || fast[1].Scale != 8 {
		t.Errorf("FastM1 = %+v", fast)
	}
	if len(exact) != 2 || exact[0].Iters != 80 || exact[1].Iters != 10 {
		t.Errorf("ExactM1 = %+v", exact)
	}
	if len(via) != 4 || via[0].Scale != 8 || via[2].Scale != 2 || !via[3].HighRes {
		t.Errorf("Via = %+v", via)
	}
}

func TestScaleStages(t *testing.T) {
	scaled := ScaleStages(ExactM1(), 10)
	if scaled[0].Iters != 8 || scaled[1].Iters != 1 {
		t.Errorf("ScaleStages = %+v", scaled)
	}
	if got := ScaleStages(ExactM1(), 1); got[0].Iters != 80 {
		t.Error("div=1 must not change budgets")
	}
}

// TestSmoothingPoolTradeoff reproduces the Fig. 6 mechanism: disabling the
// smoothing pool yields a mask with at least as many shots (more ragged
// contours) at comparable loss.
func TestSmoothingPoolTradeoff(t *testing.T) {
	p := process(t)
	tgt := testTarget()

	run := func(window int) (*Result, metrics.Report) {
		opts := DefaultOptions(p)
		opts.SmoothWindow = window
		o, err := New(opts, tgt)
		if err != nil {
			t.Fatal(err)
		}
		res, err := o.Run(context.Background(), []Stage{{Scale: 4, Iters: 30}})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := metrics.Evaluate(p, res.Mask, tgt, 10, 4)
		if err != nil {
			t.Fatal(err)
		}
		return res, rep
	}
	_, withPool := run(3)
	_, noPool := run(0)
	if withPool.Shots > noPool.Shots {
		t.Errorf("smoothing pool increased shots: with %d, without %d", withPool.Shots, noPool.Shots)
	}
}
