package core

import (
	"fmt"

	"repro/internal/grid"
)

// Penalty is an optional differentiable regularizer on the (incompletely)
// binarized mask M_s, added to the Eq. (5) loss. The related work the paper
// compares against regularizes this way: Neural-ILT [4] adds a mask
// complexity term and DevelSet [5] a curvature term. The multi-level flow
// itself does not need them (pooling plays that role), but they are
// available for ablations and for running those baselines faithfully.
type Penalty interface {
	// Name identifies the penalty in traces.
	Name() string
	// Eval returns the penalty value and its gradient with respect to the
	// mask image it was given.
	Eval(m *grid.Mat) (float64, *grid.Mat)
}

// TVPenalty is an anisotropic total-variation penalty in the smoothed form
//
//	P = λ · Σ [ (M(x+1,y) − M(x,y))² + (M(x,y+1) − M(x,y))² ],
//
// penalising jagged contours and isolated pixels — a differentiable proxy
// for the shot-count/complexity terms of [4].
type TVPenalty struct {
	// Lambda is the penalty weight.
	Lambda float64
}

// Name implements Penalty.
func (TVPenalty) Name() string { return "tv" }

// Eval implements Penalty.
func (p TVPenalty) Eval(m *grid.Mat) (float64, *grid.Mat) {
	g := grid.NewMat(m.W, m.H)
	var total float64
	for y := 0; y < m.H; y++ {
		for x := 0; x < m.W; x++ {
			v := m.At(x, y)
			if x+1 < m.W {
				d := m.At(x+1, y) - v
				total += d * d
				g.Data[y*m.W+x] -= 2 * d
				g.Data[y*m.W+x+1] += 2 * d
			}
			if y+1 < m.H {
				d := m.At(x, y+1) - v
				total += d * d
				g.Data[y*m.W+x] -= 2 * d
				g.Data[(y+1)*m.W+x] += 2 * d
			}
		}
	}
	g.Scale(p.Lambda)
	return p.Lambda * total, g
}

// CurvaturePenalty penalises boundary curvature via the discrete Laplacian,
//
//	P = λ · Σ (ΔM)²,   ΔM = 4M(x,y) − M(x±1,y) − M(x,y±1),
//
// the quadratic form behind the curvature term of [5]; straight edges have
// zero Laplacian inside/outside and constant response along the edge, while
// corners and wiggles are charged quadratically.
type CurvaturePenalty struct {
	// Lambda is the penalty weight.
	Lambda float64
}

// Name implements Penalty.
func (CurvaturePenalty) Name() string { return "curvature" }

// Eval implements Penalty.
func (p CurvaturePenalty) Eval(m *grid.Mat) (float64, *grid.Mat) {
	lap := laplacian(m)
	var total float64
	for _, v := range lap.Data {
		total += v * v
	}
	// Gradient of Σ(Lm)² is 2·Lᵀ(Lm); the 5-point Laplacian with replicated
	// borders is self-adjoint up to boundary terms, which the replicated
	// stencil keeps consistent.
	g := laplacian(lap)
	g.Scale(2 * p.Lambda)
	return p.Lambda * total, g
}

// laplacian applies the 5-point stencil with replicated borders.
func laplacian(m *grid.Mat) *grid.Mat {
	out := grid.NewMat(m.W, m.H)
	at := func(x, y int) float64 {
		if x < 0 {
			x = 0
		}
		if x >= m.W {
			x = m.W - 1
		}
		if y < 0 {
			y = 0
		}
		if y >= m.H {
			y = m.H - 1
		}
		return m.Data[y*m.W+x]
	}
	for y := 0; y < m.H; y++ {
		for x := 0; x < m.W; x++ {
			out.Data[y*m.W+x] = 4*at(x, y) - at(x-1, y) - at(x+1, y) - at(x, y-1) - at(x, y+1)
		}
	}
	return out
}

// applyPenalties evaluates every configured penalty on the binarized mask
// and folds the gradients into gMask (the dL/dM_s accumulator). It returns
// the total penalty value for the loss trace.
func (o *Optimizer) applyPenalties(ms *grid.Mat, gMask *grid.Mat) (float64, error) {
	var total float64
	for _, p := range o.opts.Penalties {
		v, g := p.Eval(ms)
		if g.W != gMask.W || g.H != gMask.H {
			return 0, fmt.Errorf("core: penalty %q gradient %dx%d does not match mask %dx%d",
				p.Name(), g.W, g.H, gMask.W, gMask.H)
		}
		gMask.Add(g)
		total += v
	}
	return total, nil
}
