// Package core implements the paper's primary contribution: multi-level ILT
// (Algorithm 1). It contains the Eq. (5) loss and its analytic gradient, the
// high-resolution ILT branch (flag = 1: coarse mask parameters, upsampled
// exact simulation, pooled wafer loss), the low-resolution ILT branch
// (flag = 0: everything at reduced size, with the 3×3 smoothing pool of
// Section III-D), the multi-stage scheduler with early stopping, and the
// fast/exact/via recipes evaluated in Section IV.
package core

import (
	"fmt"

	"repro/internal/grid"
)

// LossTerms breaks Eq. (5) into its components:
// L = L_l2 + L_pvb with L_l2 = ‖Z_out − Z_t‖² and L_pvb = ‖Z_in − Z_out‖².
// (The optimization loss replaces Z_norm with Z_out, as the paper does to
// halve the number of simulations per iteration.) Penalty carries the value
// of any configured mask regularizers (zero in the paper's own flow).
type LossTerms struct {
	L2      float64
	PVB     float64
	Penalty float64
}

// Total returns L = L_l2 + L_pvb (+ penalties).
func (l LossTerms) Total() float64 { return l.L2 + l.PVB + l.Penalty }

// Loss3 evaluates the unshortened variant of Eq. (5) in which the L2 term
// uses the nominal-dose wafer image Z_norm (Definition 1) instead of Z_out:
//
//	L = ‖Z_norm − Z_t‖² + ‖Z_in − Z_out‖²
//
// The paper replaces Z_norm by Z_out to save one simulation per iteration;
// Options.UseNominalL2 restores the full form for ablation. Gradients:
//
//	dL/dZ_norm = 2(Z_norm − Z_t)
//	dL/dZ_out  = −2(Z_in − Z_out)
//	dL/dZ_in   =  2(Z_in − Z_out)
func Loss3(zNorm, zIn, zOut, zt *grid.Mat) (LossTerms, *grid.Mat, *grid.Mat, *grid.Mat) {
	if zNorm.W != zOut.W || zNorm.H != zOut.H {
		panic(fmt.Sprintf("core: loss3 shape mismatch norm=%dx%d out=%dx%d",
			zNorm.W, zNorm.H, zOut.W, zOut.H))
	}
	var terms LossTerms
	gNorm := grid.NewMat(zNorm.W, zNorm.H)
	gOut := grid.NewMat(zOut.W, zOut.H)
	gIn := grid.NewMat(zIn.W, zIn.H)
	if zIn.W != zOut.W || zIn.H != zOut.H || zt.W != zOut.W || zt.H != zOut.H {
		panic(fmt.Sprintf("core: loss3 shape mismatch in=%dx%d t=%dx%d out=%dx%d",
			zIn.W, zIn.H, zt.W, zt.H, zOut.W, zOut.H))
	}
	for i := range zOut.Data {
		dl2 := zNorm.Data[i] - zt.Data[i]
		dpvb := zIn.Data[i] - zOut.Data[i]
		terms.L2 += dl2 * dl2
		terms.PVB += dpvb * dpvb
		gNorm.Data[i] = 2 * dl2
		gOut.Data[i] = -2 * dpvb
		gIn.Data[i] = 2 * dpvb
	}
	return terms, gNorm, gIn, gOut
}

// Loss evaluates Eq. (5) and its gradients with respect to the two wafer
// images. All images share one shape (the working resolution of the current
// ILT level):
//
//	dL/dZ_out = 2(Z_out − Z_t) − 2(Z_in − Z_out)
//	dL/dZ_in  = 2(Z_in − Z_out)
func Loss(zIn, zOut, zt *grid.Mat) (LossTerms, *grid.Mat, *grid.Mat) {
	if zIn.W != zOut.W || zIn.H != zOut.H || zt.W != zOut.W || zt.H != zOut.H {
		panic(fmt.Sprintf("core: loss shape mismatch in=%dx%d out=%dx%d t=%dx%d",
			zIn.W, zIn.H, zOut.W, zOut.H, zt.W, zt.H))
	}
	var terms LossTerms
	gOut := grid.NewMat(zOut.W, zOut.H)
	gIn := grid.NewMat(zIn.W, zIn.H)
	for i := range zOut.Data {
		dl2 := zOut.Data[i] - zt.Data[i]
		dpvb := zIn.Data[i] - zOut.Data[i]
		terms.L2 += dl2 * dl2
		terms.PVB += dpvb * dpvb
		gOut.Data[i] = 2*dl2 - 2*dpvb
		gIn.Data[i] = 2 * dpvb
	}
	return terms, gIn, gOut
}
