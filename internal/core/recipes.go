package core

// Recipes of Section IV. Scale factors follow the paper exactly; iteration
// budgets are the paper's upper bounds.

// FastM1 is the "Our-fast" schedule: 35 low-resolution iterations at s = 4
// followed by 5 high-resolution iterations at s = 8.
func FastM1() []Stage {
	return []Stage{
		{Scale: 4, Iters: 35},
		{Scale: 8, Iters: 5, HighRes: true},
	}
}

// ExactM1 is the "Our-exact" schedule: 80 low-resolution iterations at
// s = 4 plus 10 high-resolution iterations at s = 8.
func ExactM1() []Stage {
	return []Stage{
		{Scale: 4, Iters: 80},
		{Scale: 8, Iters: 10, HighRes: true},
	}
}

// Via is the via-layer schedule of Section IV-C: 100, 100 and 50
// low-resolution iterations at scale factors 8, 4 and 2, then 15
// high-resolution iterations at s = 8. The budgets are upper bounds — run
// it with Options.Patience = ViaPatience to reproduce the paper's early
// exit ("we exit early when ILT cannot obtain a new minimum loss within 15
// iterations").
func Via() []Stage {
	return []Stage{
		{Scale: 8, Iters: 100},
		{Scale: 4, Iters: 100},
		{Scale: 2, Iters: 50},
		{Scale: 8, Iters: 15, HighRes: true},
	}
}

// ViaPatience is the early-stopping window of the via flow.
const ViaPatience = 15

// ScaleStages divides every iteration budget by the given factor (rounding
// up, minimum 1 iteration). Reduced-size harnesses and benchmarks use it to
// keep the schedule shape while shrinking wall-clock cost.
func ScaleStages(stages []Stage, div int) []Stage {
	if div <= 1 {
		return stages
	}
	out := make([]Stage, len(stages))
	for i, st := range stages {
		st.Iters = (st.Iters + div - 1) / div
		if st.Iters < 1 {
			st.Iters = 1
		}
		out[i] = st
	}
	return out
}
