package core

import (
	"context"
	"testing"

	"repro/internal/telemetry"
)

type eventSink struct{ events []telemetry.Event }

func (s *eventSink) Emit(e telemetry.Event) { s.events = append(s.events, e) }
func (s *eventSink) Flush() error           { return nil }

// The optimizer streams one stage.start / iter* / stage.end bracket per
// stage, and the iter payload carries the loss decomposition the console and
// trace sinks render. IterRecord mirrors the same data for library callers.
func TestRunStageEmitsIterationEvents(t *testing.T) {
	p := process(t)
	sink := &eventSink{}
	rec := telemetry.New(telemetry.WithSink(sink))
	opts := DefaultOptions(p)
	opts.Recorder = rec
	o, err := New(opts, testTarget())
	if err != nil {
		t.Fatal(err)
	}
	stages := []Stage{{Scale: 4, Iters: 3}, {Scale: 4, HighRes: true, Iters: 2}}
	res, err := o.Run(context.Background(), stages)
	if err != nil {
		t.Fatal(err)
	}

	iters := map[int]int{}
	var order []string
	for _, e := range sink.events {
		order = append(order, e.Name)
		switch e.Name {
		case "stage.start":
			if _, ok := e.Fields["scale"]; !ok {
				t.Errorf("stage.start missing scale: %v", e.Fields)
			}
		case "iter":
			st, _ := e.Fields["stage"].(int)
			iters[st]++
			for _, k := range []string{"iter", "loss", "l2", "pvb", "step", "retries", "sec"} {
				if _, ok := e.Fields[k]; !ok {
					t.Fatalf("iter event missing %q: %v", k, e.Fields)
				}
			}
		}
	}
	want := []string{"stage.start", "iter", "iter", "iter", "stage.end",
		"stage.start", "iter", "iter", "stage.end"}
	if len(order) != len(want) {
		t.Fatalf("event order %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("event order %v, want %v", order, want)
		}
	}
	if iters[0] != 3 || iters[1] != 2 {
		t.Errorf("per-stage iter counts %v, want 3 and 2", iters)
	}
	if len(res.History) != 5 {
		t.Fatalf("history has %d records, want 5", len(res.History))
	}
	for i, h := range res.History {
		if h.Seconds <= 0 {
			t.Errorf("history[%d] missing per-iteration wall time", i)
		}
		if i < 3 && (h.Stage != 0 || h.Scale != 4 || h.HighRes) {
			t.Errorf("history[%d] = %+v, want stage 0 s=4 low-res", i, h)
		}
		if i >= 3 && (h.Stage != 1 || !h.HighRes) {
			t.Errorf("history[%d] = %+v, want stage 1 high-res", i, h)
		}
	}
}

// A nil recorder must leave Run behaviour identical (same history shape, no
// events, no panics) — the disabled default for every existing caller.
func TestRunWithoutRecorder(t *testing.T) {
	p := process(t)
	opts := DefaultOptions(p)
	o, err := New(opts, testTarget())
	if err != nil {
		t.Fatal(err)
	}
	res, err := o.Run(context.Background(), []Stage{{Scale: 4, Iters: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) != 2 {
		t.Fatalf("history %d, want 2", len(res.History))
	}
}
