package core

import (
	"context"
	"errors"
	"testing"

	"repro/internal/grid"
)

// A context cancelled before Run starts must stop the optimizer before the
// first simulation: no iterations recorded, the context's error surfaced.
func TestRunPreCancelledContext(t *testing.T) {
	p := process(t)
	o, err := New(DefaultOptions(p), testTarget())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := o.Run(ctx, []Stage{{Scale: 4, Iters: 10}})
	if res != nil {
		t.Fatalf("cancelled run returned a result with %d iterations", res.Iterations)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// Cancelling mid-run stops after the in-flight iteration completes: the
// GradHook fires once per iteration, so cancelling inside it on call k
// bounds the executed iterations to exactly k.
func TestRunCancelMidStage(t *testing.T) {
	p := process(t)
	ctx, cancel := context.WithCancel(context.Background())
	opts := DefaultOptions(p)
	calls := 0
	const cancelAt = 3
	opts.GradHook = func(_ *grid.Mat, _ Stage) {
		calls++
		if calls == cancelAt {
			cancel()
		}
	}
	o, err := New(opts, testTarget())
	if err != nil {
		t.Fatal(err)
	}
	res, err := o.Run(ctx, []Stage{{Scale: 4, Iters: 50}})
	if res != nil {
		t.Fatalf("cancelled run returned a result after %d iterations", res.Iterations)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls != cancelAt {
		t.Fatalf("ran %d iterations after cancellation at %d, want no more", calls, cancelAt)
	}
}

// Cancellation inside the line-search retry loop must also exit promptly —
// the retry path is where an iteration spends most of its simulations.
func TestRunCancelDuringLineSearch(t *testing.T) {
	p := process(t)
	ctx, cancel := context.WithCancel(context.Background())
	opts := DefaultOptions(p)
	opts.LineSearch = true
	opts.GradHook = func(_ *grid.Mat, _ Stage) { cancel() } // before the search runs
	o, err := New(opts, testTarget())
	if err != nil {
		t.Fatal(err)
	}
	_, err = o.Run(ctx, []Stage{{Scale: 4, Iters: 50}})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
