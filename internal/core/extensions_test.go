package core

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/grid"
	"repro/internal/mask"
)

// The extension knobs: pluggable binary functions (the cosine of [11]),
// heavy-ball momentum, and the backtracking line search of [12].

func TestCosineBinaryRuns(t *testing.T) {
	p := process(t)
	tgt := testTarget()
	opts := DefaultOptions(p)
	opts.Binary = mask.Cosine{}
	// The cosine binary maps M′=0 → fully transparent, so seed sensitivity
	// differs; a smaller learning rate keeps it stable (the periodicity
	// that motivated the sigmoid switch in Section III-C).
	opts.LearningRate = 0.2
	o, err := New(opts, tgt)
	if err != nil {
		t.Fatal(err)
	}
	res, err := o.Run(context.Background(), []Stage{{Scale: 4, Iters: 10}})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Mask.Data {
		if v != 0 && v != 1 {
			t.Fatal("cosine-binary final mask is not binary")
		}
	}
}

func TestNilBinaryRejected(t *testing.T) {
	p := process(t)
	opts := DefaultOptions(p)
	opts.Binary = nil
	if _, err := New(opts, testTarget()); err == nil {
		t.Error("nil binary function accepted")
	}
}

func TestMomentumValidation(t *testing.T) {
	p := process(t)
	for _, mu := range []float64{-0.1, 1.0, 1.5} {
		opts := DefaultOptions(p)
		opts.Momentum = mu
		if _, err := New(opts, testTarget()); err == nil {
			t.Errorf("momentum %g accepted", mu)
		}
	}
}

func TestMomentumConvergesComparably(t *testing.T) {
	p := process(t)
	tgt := testTarget()
	run := func(mu float64) float64 {
		opts := DefaultOptions(p)
		opts.Momentum = mu
		o, err := New(opts, tgt)
		if err != nil {
			t.Fatal(err)
		}
		res, err := o.Run(context.Background(), []Stage{{Scale: 4, Iters: 15}})
		if err != nil {
			t.Fatal(err)
		}
		best := res.History[0].Loss.Total()
		for _, h := range res.History {
			if v := h.Loss.Total(); v < best {
				best = v
			}
		}
		return best
	}
	plain := run(0)
	heavy := run(0.5)
	// Momentum must not blow up: within 2× of plain GD's best loss on this
	// easy problem (usually it is better).
	if heavy > 2*plain {
		t.Errorf("momentum best loss %g vs plain %g", heavy, plain)
	}
}

// TestLineSearchNeverIncreasesLossMuch: with line search on, consecutive
// recorded losses are (near-)monotone even at an aggressive base step where
// plain gradient descent oscillates.
func TestLineSearchStabilizesAggressiveStep(t *testing.T) {
	p := process(t)
	tgt := testTarget()

	worstJump := func(lineSearch bool) float64 {
		opts := DefaultOptions(p)
		opts.LearningRate = 50 // deliberately too large for plain GD
		opts.LineSearch = lineSearch
		o, err := New(opts, tgt)
		if err != nil {
			t.Fatal(err)
		}
		res, err := o.Run(context.Background(), []Stage{{Scale: 4, Iters: 10}})
		if err != nil {
			t.Fatal(err)
		}
		worst := 0.0
		for i := 1; i < len(res.History); i++ {
			if d := res.History[i].Loss.Total() - res.History[i-1].Loss.Total(); d > worst {
				worst = d
			}
		}
		return worst
	}
	plain := worstJump(false)
	searched := worstJump(true)
	if searched > plain {
		t.Errorf("line search worst loss increase %g exceeds plain GD's %g", searched, plain)
	}
}

func TestLineSearchImprovesFinalMask(t *testing.T) {
	p := process(t)
	tgt := testTarget()
	opts := DefaultOptions(p)
	opts.LineSearch = true
	o, err := New(opts, tgt)
	if err != nil {
		t.Fatal(err)
	}
	res, err := o.Run(context.Background(), []Stage{{Scale: 4, Iters: 10}})
	if err != nil {
		t.Fatal(err)
	}
	first := res.History[0].Loss.Total()
	last := res.History[len(res.History)-1].Loss.Total()
	if last >= first {
		t.Errorf("line-search run did not improve: first %g last %g", first, last)
	}
}

// TestUseNominalL2GradientFiniteDifference validates the three-corner loss
// chain end to end for both branches.
func TestUseNominalL2GradientFiniteDifference(t *testing.T) {
	p := process(t)
	tgt := testTarget()
	for _, tc := range []struct {
		name string
		st   Stage
	}{
		{"lowres", Stage{Scale: 4, Iters: 1}},
		{"highres", Stage{Scale: 8, Iters: 1, HighRes: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			opts := DefaultOptions(p)
			opts.UseNominalL2 = true
			o, err := New(opts, tgt)
			if err != nil {
				t.Fatal(err)
			}
			ztS := gridAvg(tgt, tc.st.Scale)
			mp := gridAvg(tgt, tc.st.Scale)
			rng := newRng(21)
			for i := range mp.Data {
				mp.Data[i] += 0.3 * rng.NormFloat64()
			}
			_, g, err := o.step(mp, tc.st, ztS, true)
			if err != nil {
				t.Fatal(err)
			}
			const eps = 1e-5
			for trial := 0; trial < 4; trial++ {
				i := rng.Intn(len(mp.Data))
				orig := mp.Data[i]
				mp.Data[i] = orig + eps
				tp, _, err := o.step(mp, tc.st, ztS, false)
				if err != nil {
					t.Fatal(err)
				}
				mp.Data[i] = orig - eps
				tm, _, err := o.step(mp, tc.st, ztS, false)
				if err != nil {
					t.Fatal(err)
				}
				mp.Data[i] = orig
				fd := (tp.Total() - tm.Total()) / (2 * eps)
				if abs64(fd-g.Data[i]) > 5e-4*(1+abs64(fd)) {
					t.Errorf("%s 3-corner dL/dM'[%d]: analytic %g fd %g", tc.name, i, g.Data[i], fd)
				}
			}
		})
	}
}

// TestUseNominalL2Improves: the unshortened loss also optimizes fine.
func TestUseNominalL2Improves(t *testing.T) {
	p := process(t)
	tgt := testTarget()
	opts := DefaultOptions(p)
	opts.UseNominalL2 = true
	o, err := New(opts, tgt)
	if err != nil {
		t.Fatal(err)
	}
	res, err := o.Run(context.Background(), []Stage{{Scale: 4, Iters: 10}})
	if err != nil {
		t.Fatal(err)
	}
	first := res.History[0].Loss.Total()
	last := res.History[len(res.History)-1].Loss.Total()
	if last >= first {
		t.Errorf("3-corner loss did not improve: %g → %g", first, last)
	}
}

func gridAvg(m *grid.Mat, s int) *grid.Mat { return grid.AvgPoolDown(m, s) }

func newRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func abs64(v float64) float64 { return math.Abs(v) }
