package core

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/grid"
	"repro/internal/metrics"
)

func randPenaltyMat(seed int64, w, h int) *grid.Mat {
	rng := rand.New(rand.NewSource(seed))
	m := grid.NewMat(w, h)
	for i := range m.Data {
		m.Data[i] = rng.Float64()
	}
	return m
}

func TestTVPenaltyValueOnKnownPatterns(t *testing.T) {
	p := TVPenalty{Lambda: 1}
	flat := grid.NewMat(4, 4)
	flat.Fill(0.7)
	if v, _ := p.Eval(flat); v != 0 {
		t.Errorf("TV of constant image = %v, want 0", v)
	}
	// A single vertical step of height 1 across a 4x4 image: 4 horizontal
	// unit differences.
	step := grid.NewMat(4, 4)
	for y := 0; y < 4; y++ {
		step.Set(2, y, 1)
		step.Set(3, y, 1)
	}
	if v, _ := p.Eval(step); v != 4 {
		t.Errorf("TV of step = %v, want 4", v)
	}
}

func penaltyGradCheck(t *testing.T, p Penalty, seed int64) {
	t.Helper()
	m := randPenaltyMat(seed, 6, 5)
	_, g := p.Eval(m)
	const eps = 1e-6
	rng := rand.New(rand.NewSource(seed + 1))
	for trial := 0; trial < 8; trial++ {
		i := rng.Intn(len(m.Data))
		orig := m.Data[i]
		m.Data[i] = orig + eps
		vp, _ := p.Eval(m)
		m.Data[i] = orig - eps
		vm, _ := p.Eval(m)
		m.Data[i] = orig
		fd := (vp - vm) / (2 * eps)
		if math.Abs(fd-g.Data[i]) > 1e-5*(1+math.Abs(fd)) {
			t.Errorf("%s grad[%d]: analytic %g fd %g", p.Name(), i, g.Data[i], fd)
		}
	}
}

func TestTVPenaltyGradient(t *testing.T) {
	penaltyGradCheck(t, TVPenalty{Lambda: 0.7}, 11)
}

func TestCurvaturePenaltyGradient(t *testing.T) {
	penaltyGradCheck(t, CurvaturePenalty{Lambda: 0.3}, 12)
}

func TestCurvaturePenaltyPrefersStraightEdges(t *testing.T) {
	p := CurvaturePenalty{Lambda: 1}
	straight := grid.NewMat(12, 12)
	for y := 0; y < 12; y++ {
		for x := 0; x < 6; x++ {
			straight.Set(x, y, 1)
		}
	}
	jagged := straight.Clone()
	for y := 0; y < 12; y += 2 {
		jagged.Set(6, y, 1) // saw-tooth the edge
	}
	vs, _ := p.Eval(straight)
	vj, _ := p.Eval(jagged)
	if vj <= vs {
		t.Errorf("curvature penalty: jagged %v not above straight %v", vj, vs)
	}
}

// TestStepGradientWithPenalties re-runs the end-to-end finite-difference
// check with both penalties active — the full chain including regularizer
// gradients must stay consistent.
func TestStepGradientWithPenalties(t *testing.T) {
	p := process(t)
	tgt := testTarget()
	opts := DefaultOptions(p)
	opts.Penalties = []Penalty{TVPenalty{Lambda: 0.05}, CurvaturePenalty{Lambda: 0.01}}
	o, err := New(opts, tgt)
	if err != nil {
		t.Fatal(err)
	}
	st := Stage{Scale: 4, Iters: 1}
	ztS := grid.AvgPoolDown(tgt, st.Scale)
	mp := grid.AvgPoolDown(tgt, st.Scale)
	rng := rand.New(rand.NewSource(13))
	for i := range mp.Data {
		mp.Data[i] += 0.3 * rng.NormFloat64()
	}
	terms, g, err := o.step(mp, st, ztS, true)
	if err != nil {
		t.Fatal(err)
	}
	if terms.Penalty <= 0 {
		t.Error("penalty value not recorded in loss terms")
	}
	const eps = 1e-5
	for trial := 0; trial < 5; trial++ {
		i := rng.Intn(len(mp.Data))
		orig := mp.Data[i]
		mp.Data[i] = orig + eps
		tp, _, err := o.step(mp, st, ztS, false)
		if err != nil {
			t.Fatal(err)
		}
		mp.Data[i] = orig - eps
		tm, _, err := o.step(mp, st, ztS, false)
		if err != nil {
			t.Fatal(err)
		}
		mp.Data[i] = orig
		fd := (tp.Total() - tm.Total()) / (2 * eps)
		if math.Abs(fd-g.Data[i]) > 5e-4*(1+math.Abs(fd)) {
			t.Errorf("penalized dL/dM'[%d]: analytic %g fd %g", i, g.Data[i], fd)
		}
	}
}

// TestTVPenaltyReducesShots: the complexity regularizer must deliver the
// effect [4] uses it for — simpler masks — at modest quality cost.
func TestTVPenaltyReducesShots(t *testing.T) {
	p := process(t)
	tgt := testTarget()

	run := func(lambda float64) metrics.Report {
		opts := DefaultOptions(p)
		opts.SmoothWindow = 0 // isolate the penalty's effect
		if lambda > 0 {
			opts.Penalties = []Penalty{TVPenalty{Lambda: lambda}}
		}
		o, err := New(opts, tgt)
		if err != nil {
			t.Fatal(err)
		}
		res, err := o.Run(context.Background(), []Stage{{Scale: 4, Iters: 25}})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := metrics.Evaluate(p, res.Mask, tgt, 10, 4)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	plain := run(0)
	regularized := run(0.5)
	if regularized.Shots > plain.Shots {
		t.Errorf("TV penalty increased shots: %d vs %d", regularized.Shots, plain.Shots)
	}
}
