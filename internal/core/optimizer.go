package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/grid"
	"repro/internal/litho"
	"repro/internal/mask"
	"repro/internal/telemetry"
)

// Options configures the multi-level ILT optimizer. Zero values are not
// usable; start from DefaultOptions.
type Options struct {
	// Process supplies the forward model and its corners.
	Process *litho.Process
	// Binary is the optimization binary function (paper: sigmoid with
	// β = 4, T_R = 0.5; conventional ILT uses T_R = 0; the cosine of
	// Poonawala & Milanfar is available as mask.Cosine).
	Binary mask.BinaryFunc
	// OutputTR is the T_R used to regenerate the mask for the final hard
	// binarization (paper: 0.4, smaller than the optimization T_R so weak
	// SRAFs survive Eq. 12).
	OutputTR float64
	// FinalThreshold is t_m of Eq. (12).
	FinalThreshold float64
	// LearningRate is the gradient-descent step (paper's ablation: 1).
	LearningRate float64
	// SmoothWindow is the stride-1 average-pooling window applied to the
	// binarized mask in low-resolution iterations (paper: 3; 0 disables,
	// reproducing the "without pooling" column of Fig. 6).
	SmoothWindow int
	// Region constrains optimization to a full-resolution 0/1 region
	// (Fig. 7); nil allows the whole tile.
	Region *grid.Mat
	// Patience > 0 enables early stopping: a stage exits when the loss has
	// not reached a new minimum for Patience iterations (the via flow
	// uses 15).
	Patience int
	// Momentum adds a heavy-ball term to the update (0 disables): the
	// velocity buffer is reset at stage transitions because the parameter
	// grid changes size.
	Momentum float64
	// LineSearch enables the backtracking line search of Zhao & Chu [12]:
	// each step starts from LearningRate and halves (up to 4 times) until
	// the Eq. (5) loss decreases; the last candidate is taken if none do.
	LineSearch bool
	// UseNominalL2 restores the unshortened Eq. (5): the L2 term compares
	// Z_norm (nominal dose) to the target, costing a third simulation per
	// iteration. The paper's shortcut (off) uses Z_out instead.
	UseNominalL2 bool
	// KeepAmpsLimit caches per-kernel amplitudes for gradient reuse when
	// the working grid is at most this size (memory/speed trade-off).
	KeepAmpsLimit int
	// GradHook, when set, can reshape the raw dL/dM′ in place before the
	// region mask and the update are applied. Baselines use it to inject
	// their gradient conditioning (e.g. A2-ILT's spatial attention).
	GradHook func(g *grid.Mat, st Stage)
	// Penalties are optional mask regularizers (TV, curvature) added to the
	// Eq. (5) loss; see Penalty.
	Penalties []Penalty
	// Workers bounds the per-kernel fan-out of the SOCS simulation loops.
	// 0 leaves the process simulator's current setting (whose own default
	// is GOMAXPROCS); a positive value is copied onto Process.Sim by New.
	// Because the simulator is shared, optimizers running concurrently over
	// one Process must agree on this value. Results are bit-identical for
	// every setting.
	Workers int
	// Engine selects the simulator's FFT engine by name ("batch", "band",
	// "band-inverse", "reference"; see litho.ParseEngine). Empty leaves
	// the process simulator's current setting. Like Workers, concurrent
	// optimizers sharing one Process must agree on it.
	Engine string
	// Recorder receives per-iteration trace events (stage index, scale,
	// loss terms, step size, line-search retries, wall time) and stage
	// start/end markers, and is propagated to the process simulator for
	// phase timers. Nil (the default) disables telemetry at zero cost.
	// Like Workers, concurrent optimizers sharing one Process must agree
	// on it; the recorder itself is safe for concurrent use.
	Recorder *telemetry.Recorder
}

// DefaultOptions returns the paper's settings over a process.
func DefaultOptions(p *litho.Process) Options {
	return Options{
		Process:        p,
		Binary:         mask.Sigmoid{Beta: mask.DefaultBeta, TR: 0.5},
		OutputTR:       0.4,
		FinalThreshold: mask.DefaultFinalThreshold,
		LearningRate:   1,
		SmoothWindow:   3,
		KeepAmpsLimit:  256,
	}
}

// Stage is one level of the multi-level schedule.
type Stage struct {
	// Scale is the resolution scale factor s (1 = full resolution).
	Scale int
	// Iters is the iteration budget of the stage.
	Iters int
	// HighRes selects the flag = 1 branch of Algorithm 1 (coarse mask,
	// exact full-resolution simulation, pooled loss); false selects the
	// flag = 0 low-resolution branch.
	HighRes bool
}

// IterRecord is one point of the optimization trace.
type IterRecord struct {
	Stage int
	Iter  int
	Loss  LossTerms
	// Scale and HighRes identify the stage's resolution level.
	Scale   int
	HighRes bool
	// Step is the committed step size (after line-search halvings) and
	// Retries the number of halvings taken (0 without line search).
	Step    float64
	Retries int
	// Seconds is the iteration's wall time.
	Seconds float64
}

// Result is the outcome of a multi-level ILT run.
type Result struct {
	// Params is the final parameter image M′ upsampled to full resolution.
	Params *grid.Mat
	// Mask is the manufactured mask M_out (Eq. 12 with the output T_R).
	Mask *grid.Mat
	// History traces the optimization loss (Eq. 5, at each stage's own
	// working resolution).
	History []IterRecord
	// ILTSeconds is the wall-clock time spent in ILT iterations
	// (post-processing is accounted separately, as in the paper's TAT
	// breakdown).
	ILTSeconds float64
	// Iterations is the total number of executed iterations.
	Iterations int
}

// Optimizer runs multi-level ILT for one target.
type Optimizer struct {
	opts   Options
	target *grid.Mat // full-resolution target Z_t
	n      int
}

// New validates the configuration and builds an optimizer for the target.
func New(opts Options, target *grid.Mat) (*Optimizer, error) {
	if opts.Process == nil {
		return nil, fmt.Errorf("core: Options.Process is required")
	}
	if target.W != target.H {
		return nil, fmt.Errorf("core: target must be square, got %dx%d", target.W, target.H)
	}
	if target.W&(target.W-1) != 0 {
		return nil, fmt.Errorf("core: target size %d is not a power of two", target.W)
	}
	if opts.Binary == nil {
		return nil, fmt.Errorf("core: Options.Binary is required")
	}
	if opts.LearningRate <= 0 {
		return nil, fmt.Errorf("core: learning rate must be positive, got %g", opts.LearningRate)
	}
	if opts.Momentum < 0 || opts.Momentum >= 1 {
		return nil, fmt.Errorf("core: momentum %g outside [0, 1)", opts.Momentum)
	}
	if opts.SmoothWindow < 0 || (opts.SmoothWindow > 0 && opts.SmoothWindow%2 == 0) {
		return nil, fmt.Errorf("core: smoothing window must be 0 or odd, got %d", opts.SmoothWindow)
	}
	if opts.Region != nil && (opts.Region.W != target.W || opts.Region.H != target.H) {
		return nil, fmt.Errorf("core: region %dx%d does not match target %dx%d",
			opts.Region.W, opts.Region.H, target.W, target.H)
	}
	if opts.Workers < 0 {
		return nil, fmt.Errorf("core: workers %d must be ≥ 0", opts.Workers)
	}
	if opts.Workers > 0 && opts.Process.Sim.Workers != opts.Workers {
		// Write only on change: optimizers built concurrently over a shared
		// Process (the fullchip tile pool) all carry the pre-applied value
		// and must not race on the simulator's knob.
		opts.Process.Sim.Workers = opts.Workers
	}
	if opts.Engine != "" {
		eng, err := litho.ParseEngine(opts.Engine)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		if opts.Process.Sim.Engine != eng {
			// Write-on-change, as with Workers above.
			opts.Process.Sim.Engine = eng
		}
	}
	if opts.Recorder.Enabled() && opts.Process.Sim.Recorder != opts.Recorder {
		// Same write-on-change discipline as Workers: concurrent tile
		// optimizers share the pre-applied recorder.
		opts.Process.Sim.Recorder = opts.Recorder
	}
	return &Optimizer{opts: opts, target: target, n: target.W}, nil
}

// Run executes the stages in order (Fig. 2: low-resolution levels from
// coarse to fine, then high-resolution fine-tuning) and assembles the final
// mask.
//
// Cancelling ctx stops the optimization promptly: the context is checked
// before every iteration and before every line-search retry (the two
// places a stage spends its time), so at most one simulation pass runs
// after cancellation and no scratch leases outlive the call. Run returns
// ctx.Err() (wrapped) in that case. Batch callers pass
// context.Background(); the ILT server threads each job's request context
// through here.
func (o *Optimizer) Run(ctx context.Context, stages []Stage) (*Result, error) {
	if len(stages) == 0 {
		return nil, fmt.Errorf("core: no stages")
	}
	for i, st := range stages {
		if err := o.validateStage(st); err != nil {
			return nil, fmt.Errorf("core: stage %d: %w", i, err)
		}
	}
	start := time.Now()
	res := &Result{}

	// Algorithm 1 lines 2–3: M′_s is seeded with the pooled target.
	cur := grid.AvgPoolDown(o.target, stages[0].Scale)
	curScale := stages[0].Scale

	for i, st := range stages {
		var err error
		cur, err = resampleParams(cur, curScale, st.Scale)
		if err != nil {
			return nil, fmt.Errorf("core: stage %d transition: %w", i, err)
		}
		curScale = st.Scale
		cur, err = o.runStage(ctx, cur, st, i, res)
		if err != nil {
			return nil, fmt.Errorf("core: stage %d: %w", i, err)
		}
	}
	res.ILTSeconds = time.Since(start).Seconds()

	res.Params = grid.UpsampleNearest(cur, curScale)
	if sig, ok := o.opts.Binary.(mask.Sigmoid); ok {
		// The paper's two-T_R scheme: regenerate with the (smaller) output
		// T_R before the hard threshold so weak SRAFs survive.
		res.Mask = mask.FinalOutput(res.Params, sig.Beta, o.opts.OutputTR, o.opts.FinalThreshold)
	} else {
		res.Mask = mask.Binarize(o.opts.Binary.Apply(res.Params), o.opts.FinalThreshold)
	}
	if o.opts.Region != nil {
		// Pixels outside the optimizing region are never opened.
		for i, r := range o.opts.Region.Data {
			if r < 0.5 {
				res.Mask.Data[i] = 0
			}
		}
	}
	return res, nil
}

func (o *Optimizer) validateStage(st Stage) error {
	if st.Scale < 1 {
		return fmt.Errorf("scale %d must be ≥ 1", st.Scale)
	}
	if o.n%st.Scale != 0 {
		return fmt.Errorf("scale %d does not divide grid %d", st.Scale, o.n)
	}
	m := o.n / st.Scale
	if m&(m-1) != 0 {
		return fmt.Errorf("working size %d is not a power of two", m)
	}
	p := o.opts.Process.Sim.Model.Nominal.P
	if m < p {
		return fmt.Errorf("working size %d below kernel support %d", m, p)
	}
	if st.Iters < 0 {
		return fmt.Errorf("negative iteration budget %d", st.Iters)
	}
	return nil
}

// resampleParams moves M′ between scale factors (nearest upsample towards
// finer levels, average pooling towards coarser ones).
func resampleParams(mp *grid.Mat, from, to int) (*grid.Mat, error) {
	switch {
	case from == to:
		return mp, nil
	case from > to:
		if from%to != 0 {
			return nil, fmt.Errorf("core: cannot refine params from scale %d to %d", from, to)
		}
		return grid.UpsampleNearest(mp, from/to), nil
	default:
		if to%from != 0 {
			return nil, fmt.Errorf("core: cannot coarsen params from scale %d to %d", from, to)
		}
		return grid.AvgPoolDown(mp, to/from), nil
	}
}

// runStage executes one stage, returning the parameters that achieved the
// best loss (which is also what early stopping resumes from).
func (o *Optimizer) runStage(ctx context.Context, mp *grid.Mat, st Stage, stageIdx int, res *Result) (*grid.Mat, error) {
	ztS := grid.AvgPoolDown(o.target, st.Scale)
	var regionS *grid.Mat
	if o.opts.Region != nil {
		regionS = grid.AvgPoolDown(o.opts.Region, st.Scale)
	}

	best := mp.Clone()
	bestLoss := 0.0
	haveBest := false
	sinceBest := 0
	var velocity *grid.Mat
	if o.opts.Momentum > 0 {
		velocity = grid.NewMat(mp.W, mp.H)
	}

	rec := o.opts.Recorder
	rec.Emit("stage.start", telemetry.Fields{
		"stage": stageIdx, "scale": st.Scale, "highres": st.HighRes, "iters": st.Iters,
	})
	stageStart := time.Now()
	itersRun := 0
	// Resolved once per stage: Observe in the loop is then lock- and
	// allocation-free (and a nil no-op when telemetry is off).
	hIter := rec.Histogram("core.iter", telemetry.HistDuration)

	for it := 0; it < st.Iters; it++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		iterStart := time.Now()
		terms, g, err := o.step(mp, st, ztS, true)
		if err != nil {
			return nil, err
		}
		if o.opts.GradHook != nil {
			o.opts.GradHook(g, st)
		}
		if regionS != nil {
			mask.ApplyRegion(g, regionS)
		}
		if velocity != nil {
			velocity.Scale(o.opts.Momentum)
			velocity.Add(g)
			g = velocity
		}
		step := o.opts.LearningRate
		retries := 0
		if o.opts.LineSearch {
			step, retries, err = o.lineSearchStep(ctx, mp, g, st, ztS, terms.Total())
			if err != nil {
				return nil, err
			}
		} else {
			mp.AddScaled(-o.opts.LearningRate, g)
		}

		iterDur := time.Since(iterStart)
		hIter.ObserveDuration(iterDur)
		record := IterRecord{
			Stage: stageIdx, Iter: it, Loss: terms,
			Scale: st.Scale, HighRes: st.HighRes,
			Step: step, Retries: retries,
			Seconds: iterDur.Seconds(),
		}
		res.History = append(res.History, record)
		res.Iterations++
		itersRun++
		if rec.Enabled() { // guard: the Fields literal would allocate per iteration
			rec.Emit("iter", telemetry.Fields{
				"stage": stageIdx, "iter": it, "scale": st.Scale,
				"loss": terms.Total(), "l2": terms.L2, "pvb": terms.PVB, "penalty": terms.Penalty,
				"step": step, "retries": retries, "sec": record.Seconds,
			})
		}

		if !haveBest || terms.Total() < bestLoss {
			bestLoss = terms.Total()
			best.CopyFrom(mp)
			haveBest = true
			sinceBest = 0
		} else {
			sinceBest++
			if o.opts.Patience > 0 && sinceBest >= o.opts.Patience {
				break
			}
		}
	}
	rec.Emit("stage.end", telemetry.Fields{
		"stage": stageIdx, "iters_run": itersRun, "best_loss": bestLoss,
		"sec": time.Since(stageStart).Seconds(),
	})
	if !haveBest {
		return mp, nil
	}
	return best, nil
}

// lineSearchStep applies the backtracking rule of [12]: starting from the
// configured learning rate, halve the step until the loss at the candidate
// parameters drops below the current loss (up to 4 halvings); the final
// candidate is committed either way. It returns the committed step size
// and the number of halvings taken (for the iteration trace). The context
// is checked before each retry so a cancelled job exits the search without
// paying for the remaining halvings.
func (o *Optimizer) lineSearchStep(ctx context.Context, mp, g *grid.Mat, st Stage, ztS *grid.Mat, curLoss float64) (float64, int, error) {
	step := o.opts.LearningRate
	cand := mp.Clone()
	for try := 0; ; try++ {
		if err := ctx.Err(); err != nil {
			return 0, try, err
		}
		cand.CopyFrom(mp)
		cand.AddScaled(-step, g)
		terms, _, err := o.step(cand, st, ztS, false)
		if err != nil {
			return 0, try, err
		}
		if terms.Total() < curLoss || try >= 4 {
			mp.CopyFrom(cand)
			return step, try, nil
		}
		step /= 2
	}
}

// step performs one Algorithm 1 iteration at the stage's level and returns
// the loss terms and, when wantGrad is set, dL/dM′ at the stage's parameter
// resolution (nil otherwise — the loss-only path costs roughly half).
func (o *Optimizer) step(mp *grid.Mat, st Stage, ztS *grid.Mat, wantGrad bool) (LossTerms, *grid.Mat, error) {
	binary := o.opts.Binary

	// Line 5: M_s = f_binary(M′_s).
	ms := binary.Apply(mp)

	if st.HighRes {
		return o.stepHighRes(mp, ms, st, ztS, wantGrad)
	}

	// Low-resolution branch (flag = 0).
	sim := ms
	smoothed := false
	if o.opts.SmoothWindow > 1 {
		// Line 11: stride-1 smoothing pool on the binarized mask.
		sim = grid.SmoothPool(ms, o.opts.SmoothWindow)
		smoothed = true
	}
	keep := wantGrad && sim.W <= o.opts.KeepAmpsLimit

	terms, corners, err := o.simulateLoss(sim, ztS, keep)
	if err != nil {
		return LossTerms{}, nil, err
	}
	if !wantGrad {
		for _, pn := range o.opts.Penalties {
			v, _ := pn.Eval(ms)
			terms.Penalty += v
		}
		return terms, nil, nil
	}

	gSim, err := o.maskGradient(corners)
	if err != nil {
		return LossTerms{}, nil, err
	}
	if smoothed {
		gSim = grid.SmoothPoolAdjoint(gSim, o.opts.SmoothWindow)
	}
	pen, err := o.applyPenalties(ms, gSim)
	if err != nil {
		return LossTerms{}, nil, err
	}
	terms.Penalty = pen
	gSim.MulElem(binary.Grad(mp, ms))
	return terms, gSim, nil
}

// stepHighRes is the flag = 1 branch: coarse parameters, nearest-neighbour
// upsampling, exact simulation, pooled wafer loss (Algorithm 1 lines 7–9).
func (o *Optimizer) stepHighRes(mp, ms *grid.Mat, st Stage, ztS *grid.Mat, wantGrad bool) (LossTerms, *grid.Mat, error) {
	s := st.Scale

	// Line 7: M = Upsample(M_s).
	m := grid.UpsampleNearest(ms, s)
	keep := wantGrad && m.W <= o.opts.KeepAmpsLimit

	// Lines 8–9 fold into simulateLoss: exact simulation at full size with
	// the wafer images pooled down before the loss; the pooling adjoint is
	// applied to the per-corner dL/dZ before the Hopkins adjoint.
	terms, corners, err := o.simulateLossPooled(m, ztS, s, keep)
	if err != nil {
		return LossTerms{}, nil, err
	}
	if !wantGrad {
		for _, pn := range o.opts.Penalties {
			v, _ := pn.Eval(ms)
			terms.Penalty += v
		}
		return terms, nil, nil
	}

	gM, err := o.maskGradient(corners)
	if err != nil {
		return LossTerms{}, nil, err
	}
	// Adjoint of the upsampling back to the coarse parameter grid.
	gMs := grid.UpsampleNearestAdjoint(gM, s)
	pen, err := o.applyPenalties(ms, gMs)
	if err != nil {
		return LossTerms{}, nil, err
	}
	terms.Penalty = pen
	gMs.MulElem(o.opts.Binary.Grad(mp, ms))
	return terms, gMs, nil
}

// cornerTerm carries one simulated corner through the adjoint chain.
type cornerTerm struct {
	field *litho.Field
	z     *grid.Mat // sigmoid wafer image at the working resolution
	gZ    *grid.Mat // dL/dZ at the field's resolution (post pooling adjoint)
}

// simulateLoss runs the corner set of Eq. (5) on a mask at its own
// resolution and returns the loss terms plus the per-corner adjoint inputs.
func (o *Optimizer) simulateLoss(sim *grid.Mat, ztS *grid.Mat, keep bool) (LossTerms, []cornerTerm, error) {
	p := o.opts.Process
	fIn, zIn, err := p.PrintSigmoid(sim, p.Inner(), keep)
	if err != nil {
		return LossTerms{}, nil, err
	}
	fOut, zOut, err := p.PrintSigmoid(sim, p.Outer(), keep)
	if err != nil {
		return LossTerms{}, nil, err
	}
	if o.opts.UseNominalL2 {
		fNom, zNom, err := p.PrintSigmoid(sim, p.Nominal(), keep)
		if err != nil {
			return LossTerms{}, nil, err
		}
		terms, gZNorm, gZIn, gZOut := Loss3(zNom, zIn, zOut, ztS)
		return terms, []cornerTerm{
			{fNom, zNom, gZNorm}, {fIn, zIn, gZIn}, {fOut, zOut, gZOut},
		}, nil
	}
	terms, gZIn, gZOut := Loss(zIn, zOut, ztS)
	return terms, []cornerTerm{{fIn, zIn, gZIn}, {fOut, zOut, gZOut}}, nil
}

// simulateLossPooled is the high-resolution variant: simulate at full size,
// pool the wafer images by s before the loss, and lift each dL/dZ back to
// full resolution with the pooling adjoint.
func (o *Optimizer) simulateLossPooled(m *grid.Mat, ztS *grid.Mat, s int, keep bool) (LossTerms, []cornerTerm, error) {
	terms, corners, err := o.simulateLossAt(m, ztS, s, keep)
	return terms, corners, err
}

func (o *Optimizer) simulateLossAt(m *grid.Mat, ztS *grid.Mat, s int, keep bool) (LossTerms, []cornerTerm, error) {
	p := o.opts.Process
	type sim struct {
		field *litho.Field
		z     *grid.Mat
		zS    *grid.Mat
	}
	runCorner := func(c litho.Corner) (sim, error) {
		f, z, err := p.PrintSigmoid(m, c, keep)
		if err != nil {
			return sim{}, err
		}
		return sim{f, z, grid.AvgPoolDown(z, s)}, nil
	}
	in, err := runCorner(p.Inner())
	if err != nil {
		return LossTerms{}, nil, err
	}
	out, err := runCorner(p.Outer())
	if err != nil {
		return LossTerms{}, nil, err
	}
	if o.opts.UseNominalL2 {
		nom, err := runCorner(p.Nominal())
		if err != nil {
			return LossTerms{}, nil, err
		}
		terms, gN, gI, gO := Loss3(nom.zS, in.zS, out.zS, ztS)
		return terms, []cornerTerm{
			{nom.field, nom.z, grid.AvgPoolDownAdjoint(gN, s)},
			{in.field, in.z, grid.AvgPoolDownAdjoint(gI, s)},
			{out.field, out.z, grid.AvgPoolDownAdjoint(gO, s)},
		}, nil
	}
	terms, gI, gO := Loss(in.zS, out.zS, ztS)
	return terms, []cornerTerm{
		{in.field, in.z, grid.AvgPoolDownAdjoint(gI, s)},
		{out.field, out.z, grid.AvgPoolDownAdjoint(gO, s)},
	}, nil
}

// maskGradient chains each corner's dL/dZ through the sigmoid resist and
// the Hopkins adjoint and sums the contributions.
func (o *Optimizer) maskGradient(corners []cornerTerm) (*grid.Mat, error) {
	p := o.opts.Process
	var total *grid.Mat
	for _, c := range corners {
		dI := litho.ResistSigmoidGrad(c.z, p.Alpha)
		dI.MulElem(c.gZ)
		g, err := p.Sim.Gradient(c.field, dI)
		if err != nil {
			return nil, err
		}
		if total == nil {
			total = g
		} else {
			total.Add(g)
		}
	}
	return total, nil
}
