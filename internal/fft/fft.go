// Package fft implements the fast Fourier transforms used by the Hopkins
// lithography model: an iterative radix-2 complex FFT with precomputed
// twiddle factors, 2-D transforms parallelised across rows/columns, and the
// frequency-domain truncation/embedding helpers behind the paper's Eq. (7).
//
// Conventions: the forward transform is unnormalised,
//
//	X[k] = Σ_n x[n]·exp(-2πi·kn/N),
//
// and the inverse carries the full 1/N (1/(W·H) in 2-D) factor, so
// Inverse(Forward(x)) == x. With this convention the aerial-image intensity
// produced by the simulator is invariant under the multi-level resolution
// changes of Algorithm 1 (see DESIGN.md, "Numerical scheme notes").
package fft

import (
	"fmt"
	"math"
	"math/bits"
	"sync"
)

// Plan holds the precomputed state for transforms of a fixed power-of-two
// length: the bit-reversal permutation and per-stage twiddle factors.
// A Plan is safe for concurrent use; all methods operate on caller-supplied
// buffers.
type Plan struct {
	n       int
	logN    int
	rev     []int32
	twidF   []complex128 // forward twiddles, all stages concatenated
	twidI   []complex128 // inverse twiddles
	stageAt []int        // offset of each stage's twiddles
	bands   sync.Map     // int (band half-width) → *bandTable, see band.go
}

// NewPlan creates a plan for length-n transforms. n must be a power of two
// and at least 1.
func NewPlan(n int) (*Plan, error) {
	if n < 1 || n&(n-1) != 0 {
		return nil, fmt.Errorf("fft: length %d is not a positive power of two", n)
	}
	p := &Plan{n: n, logN: bits.TrailingZeros(uint(n))}
	p.rev = make([]int32, n)
	shift := 64 - uint(p.logN)
	for i := 0; i < n; i++ {
		p.rev[i] = int32(bits.Reverse64(uint64(i)) >> shift)
	}
	// Stage s (s = 1..logN) uses half-block size m = 2^(s-1) twiddles
	// w^j = exp(∓2πi·j/2^s), j = 0..m-1.
	total := 0
	p.stageAt = make([]int, p.logN+1)
	for s := 1; s <= p.logN; s++ {
		p.stageAt[s] = total
		total += 1 << (s - 1)
	}
	p.twidF = make([]complex128, total)
	p.twidI = make([]complex128, total)
	for s := 1; s <= p.logN; s++ {
		m := 1 << (s - 1)
		base := p.stageAt[s]
		for j := 0; j < m; j++ {
			ang := -math.Pi * float64(j) / float64(m)
			p.twidF[base+j] = complex(math.Cos(ang), math.Sin(ang))
			p.twidI[base+j] = complex(math.Cos(ang), -math.Sin(ang))
		}
	}
	return p, nil
}

// N returns the transform length of the plan.
func (p *Plan) N() int { return p.n }

// Forward computes the in-place unnormalised DFT of x. len(x) must equal N.
func (p *Plan) Forward(x []complex128) { p.transform(x, p.twidF, false) }

// Inverse computes the in-place inverse DFT of x, including the 1/N factor.
func (p *Plan) Inverse(x []complex128) { p.transform(x, p.twidI, true) }

func (p *Plan) transform(x []complex128, twid []complex128, normalize bool) {
	if len(x) != p.n {
		panic(fmt.Sprintf("fft: buffer length %d != plan length %d", len(x), p.n))
	}
	// Bit-reversal permutation.
	for i, r := range p.rev {
		if int32(i) < r {
			x[i], x[r] = x[r], x[i]
		}
	}
	// Iterative Cooley-Tukey butterflies.
	for s := 1; s <= p.logN; s++ {
		m := 1 << (s - 1) // half block
		blk := m << 1
		tw := twid[p.stageAt[s] : p.stageAt[s]+m]
		for k := 0; k < p.n; k += blk {
			for j := 0; j < m; j++ {
				t := tw[j] * x[k+j+m]
				u := x[k+j]
				x[k+j] = u + t
				x[k+j+m] = u - t
			}
		}
	}
	if normalize {
		inv := complex(1/float64(p.n), 0)
		for i := range x {
			x[i] *= inv
		}
	}
}
