// Package fft implements the fast Fourier transforms used by the Hopkins
// lithography model: an iterative radix-2 complex FFT with precomputed
// twiddle factors, 2-D transforms parallelised across rows/columns, and the
// frequency-domain truncation/embedding helpers behind the paper's Eq. (7).
//
// Conventions: the forward transform is unnormalised,
//
//	X[k] = Σ_n x[n]·exp(-2πi·kn/N),
//
// and the inverse carries the full 1/N (1/(W·H) in 2-D) factor, so
// Inverse(Forward(x)) == x. With this convention the aerial-image intensity
// produced by the simulator is invariant under the multi-level resolution
// changes of Algorithm 1 (see DESIGN.md, "Numerical scheme notes").
//
// Callers that fold the 1/N factor into an earlier per-element multiply
// (see FoldInverseScale) use the NoNorm inverse variants, which skip the
// normalisation pass entirely.
package fft

import (
	"fmt"
)

// Plan holds the precomputed state for transforms of a fixed power-of-two
// length. The bit-reversal permutation, twiddle factors and band skip
// tables live in a process-wide table set shared by every Plan of the same
// length (see tables.go). A Plan is safe for concurrent use; all methods
// operate on caller-supplied buffers.
type Plan struct {
	n    int
	logN int
	tab  *planTables
}

// NewPlan creates a plan for length-n transforms. n must be a power of two
// and at least 1.
func NewPlan(n int) (*Plan, error) {
	if n < 1 || n&(n-1) != 0 {
		return nil, fmt.Errorf("fft: length %d is not a positive power of two", n)
	}
	tab := tablesFor(n)
	return &Plan{n: n, logN: tab.logN, tab: tab}, nil
}

// N returns the transform length of the plan.
func (p *Plan) N() int { return p.n }

// Forward computes the in-place unnormalised DFT of x. len(x) must equal N.
func (p *Plan) Forward(x []complex128) { p.transform(x, p.tab.twidF, false) }

// Inverse computes the in-place inverse DFT of x, including the 1/N factor.
func (p *Plan) Inverse(x []complex128) { p.transform(x, p.tab.twidI, true) }

// InverseNoNorm computes the in-place inverse DFT of x without the 1/N
// factor — for callers that folded the normalisation into an earlier
// multiply (FoldInverseScale).
func (p *Plan) InverseNoNorm(x []complex128) { p.transform(x, p.tab.twidI, false) }

func (p *Plan) transform(x []complex128, twid []complex128, normalize bool) {
	if len(x) != p.n {
		panic(fmt.Sprintf("fft: buffer length %d != plan length %d", len(x), p.n))
	}
	// Bit-reversal permutation.
	for i, r := range p.tab.rev {
		if int32(i) < r {
			x[i], x[r] = x[r], x[i]
		}
	}
	// Iterative Cooley-Tukey butterflies.
	for s := 1; s <= p.logN; s++ {
		m := 1 << (s - 1) // half block
		blk := m << 1
		tw := twid[p.tab.stageAt[s] : p.tab.stageAt[s]+m]
		for k := 0; k < p.n; k += blk {
			for j := 0; j < m; j++ {
				t := tw[j] * x[k+j+m]
				u := x[k+j]
				x[k+j] = u + t
				x[k+j+m] = u - t
			}
		}
	}
	if normalize {
		inv := complex(1/float64(p.n), 0)
		for i := range x {
			x[i] *= inv
		}
	}
}

// FoldInverseScale folds the 1/(w·h) normalisation of a w×h inverse
// transform into a frequency-domain scale factor: multiplying every
// spectrum cell by the returned value and running the NoNorm inverse yields
// the same result as scaling by `scale` and running the normalised inverse,
// up to one rounding difference per cell. For powers of two the fold itself
// is exact (1/(w·h) is a power of two), and every engine that folds uses
// this one helper so the folded products agree bit-for-bit across engines.
func FoldInverseScale(scale complex128, w, h int) complex128 {
	return scale * complex(1/(float64(w)*float64(h)), 0)
}
