package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/grid"
)

func randVec(rng *rand.Rand, n int) []complex128 {
	v := make([]complex128, n)
	for i := range v {
		v[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return v
}

// naiveDFT is the O(n²) reference transform.
func naiveDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var s complex128
		for j := 0; j < n; j++ {
			ang := -2 * math.Pi * float64(k) * float64(j) / float64(n)
			s += x[j] * cmplx.Exp(complex(0, ang))
		}
		out[k] = s
	}
	return out
}

func maxDiff(a, b []complex128) float64 {
	var d float64
	for i := range a {
		if v := cmplx.Abs(a[i] - b[i]); v > d {
			d = v
		}
	}
	return d
}

func TestNewPlanRejectsBadLengths(t *testing.T) {
	for _, n := range []int{0, -4, 3, 6, 100} {
		if _, err := NewPlan(n); err == nil {
			t.Errorf("NewPlan(%d) succeeded, want error", n)
		}
	}
}

func TestForwardMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 4, 8, 16, 64} {
		p, err := NewPlan(n)
		if err != nil {
			t.Fatal(err)
		}
		x := randVec(rng, n)
		want := naiveDFT(x)
		got := append([]complex128(nil), x...)
		p.Forward(got)
		if d := maxDiff(got, want); d > 1e-9 {
			t.Errorf("n=%d: max diff vs naive DFT %g", n, d)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << (1 + rng.Intn(9)) // 2..512
		p, err := NewPlan(n)
		if err != nil {
			return false
		}
		x := randVec(rng, n)
		y := append([]complex128(nil), x...)
		p.Forward(y)
		p.Inverse(y)
		return maxDiff(x, y) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestParseval(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 128
	p, _ := NewPlan(n)
	x := randVec(rng, n)
	var eTime float64
	for _, v := range x {
		eTime += real(v)*real(v) + imag(v)*imag(v)
	}
	y := append([]complex128(nil), x...)
	p.Forward(y)
	var eFreq float64
	for _, v := range y {
		eFreq += real(v)*real(v) + imag(v)*imag(v)
	}
	if math.Abs(eFreq/float64(n)-eTime) > 1e-9*eTime {
		t.Errorf("Parseval violated: time %g, freq/N %g", eTime, eFreq/float64(n))
	}
}

func TestLinearity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 64
	p, _ := NewPlan(n)
	a := randVec(rng, n)
	b := randVec(rng, n)
	sum := make([]complex128, n)
	for i := range sum {
		sum[i] = 2*a[i] + 3*b[i]
	}
	fa := append([]complex128(nil), a...)
	fb := append([]complex128(nil), b...)
	fs := append([]complex128(nil), sum...)
	p.Forward(fa)
	p.Forward(fb)
	p.Forward(fs)
	for i := range fs {
		want := 2*fa[i] + 3*fb[i]
		if cmplx.Abs(fs[i]-want) > 1e-9 {
			t.Fatalf("linearity violated at bin %d", i)
		}
	}
}

func TestBufferLengthPanics(t *testing.T) {
	p, _ := NewPlan(8)
	defer func() {
		if recover() == nil {
			t.Fatal("wrong buffer length did not panic")
		}
	}()
	p.Forward(make([]complex128, 4))
}

func rand2D(rng *rand.Rand, w, h int) *grid.CMat {
	m := grid.NewCMat(w, h)
	for i := range m.Data {
		m.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return m
}

func TestPlan2RoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, dims := range [][2]int{{8, 8}, {16, 4}, {4, 32}, {64, 64}} {
		p, err := NewPlan2(dims[0], dims[1])
		if err != nil {
			t.Fatal(err)
		}
		m := rand2D(rng, dims[0], dims[1])
		c := m.Clone()
		p.Forward(c)
		p.Inverse(c)
		if d := m.MaxAbsDiff(c); d > 1e-9 {
			t.Errorf("%dx%d: round-trip max diff %g", dims[0], dims[1], d)
		}
	}
}

func TestPlan2MatchesNaive2D(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const w, h = 8, 4
	p, _ := NewPlan2(w, h)
	m := rand2D(rng, w, h)
	got := m.Clone()
	p.Forward(got)
	for ky := 0; ky < h; ky++ {
		for kx := 0; kx < w; kx++ {
			var s complex128
			for y := 0; y < h; y++ {
				for x := 0; x < w; x++ {
					ang := -2 * math.Pi * (float64(kx*x)/float64(w) + float64(ky*y)/float64(h))
					s += m.At(x, y) * cmplx.Exp(complex(0, ang))
				}
			}
			if cmplx.Abs(got.At(kx, ky)-s) > 1e-9 {
				t.Fatalf("2D DFT mismatch at (%d,%d): got %v want %v", kx, ky, got.At(kx, ky), s)
			}
		}
	}
}

// TestConvolutionTheorem: circular convolution in space equals element-wise
// product in frequency. This is the identity the Hopkins model relies on.
func TestConvolutionTheorem(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	const n = 16
	p, _ := NewPlan2(n, n)
	a := rand2D(rng, n, n)
	b := rand2D(rng, n, n)

	// Direct circular convolution.
	direct := grid.NewCMat(n, n)
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			var s complex128
			for v := 0; v < n; v++ {
				for u := 0; u < n; u++ {
					s += a.At(u, v) * b.At(((x-u)%n+n)%n, ((y-v)%n+n)%n)
				}
			}
			direct.Set(x, y, s)
		}
	}

	fa, fb := a.Clone(), b.Clone()
	p.Forward(fa)
	p.Forward(fb)
	fa.MulElem(fb)
	p.Inverse(fa)
	if d := fa.MaxAbsDiff(direct); d > 1e-7 {
		t.Errorf("convolution theorem violated: max diff %g", d)
	}
}

func TestTruncateCenteredKeepsLowFrequencies(t *testing.T) {
	const n, m = 16, 8
	spec := grid.NewCMat(n, n)
	// Tag each signed frequency with a recognisable value.
	for fy := -n / 2; fy < n/2; fy++ {
		for fx := -n / 2; fx < n/2; fx++ {
			spec.Set((fx+n)%n, (fy+n)%n, complex(float64(fx), float64(fy)))
		}
	}
	tr := TruncateCentered(spec, m)
	for fy := -m / 2; fy < m/2; fy++ {
		for fx := -m / 2; fx < m/2; fx++ {
			got := tr.At((fx+m)%m, (fy+m)%m)
			if got != complex(float64(fx), float64(fy)) {
				t.Fatalf("truncated bin (%d,%d) = %v", fx, fy, got)
			}
		}
	}
}

func TestTruncateEmbedRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n, m = 32, 8
	spec := rand2D(rng, m, m)
	emb := EmbedCentered(spec, n)
	back := TruncateCentered(emb, m)
	if d := spec.MaxAbsDiff(back); d > 0 {
		t.Errorf("Truncate(Embed(x)) != x: diff %g", d)
	}
}

// TestTruncationEqualsSubsampling: the core identity of Eq. (7). For a
// band-limited signal, inverse-transforming the (1/s²-scaled) truncated
// spectrum at size n/s reproduces the full-size inverse transform sampled
// every s pixels.
func TestTruncationEqualsSubsampling(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	const n, s = 32, 4
	const m = n / s
	// Build a spectrum supported only on |f| < m/2 (band-limited).
	spec := grid.NewCMat(n, n)
	for fy := -m/2 + 1; fy < m/2; fy++ {
		for fx := -m/2 + 1; fx < m/2; fx++ {
			spec.Set((fx+n)%n, (fy+n)%n, complex(rng.NormFloat64(), rng.NormFloat64()))
		}
	}
	pn, _ := NewPlan2(n, n)
	pm, _ := NewPlan2(m, m)

	full := spec.Clone()
	pn.Inverse(full)

	small := TruncateCentered(spec, m)
	small.Scale(complex(1/float64(s*s), 0))
	// Undo the extra normalisation difference: Inverse at size m divides by
	// m², Inverse at size n divides by n² = m²·s². The 1/s² scale accounts
	// for it, matching Eq. (7).
	pm.Inverse(small)

	var d float64
	for y := 0; y < m; y++ {
		for x := 0; x < m; x++ {
			if v := cmplx.Abs(small.At(x, y) - full.At(x*s, y*s)); v > d {
				d = v
			}
		}
	}
	if d > 1e-9 {
		t.Errorf("Eq.(7) identity violated: max diff %g", d)
	}
}

func TestApplyKernelMatchesManualProduct(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const n, p = 16, 5
	spec := rand2D(rng, n, n)
	ker := rand2D(rng, p, p)
	out := ApplyKernel(nil, spec, ker, n, 1)
	h := p / 2
	for fy := -n / 2; fy < n/2; fy++ {
		for fx := -n / 2; fx < n/2; fx++ {
			got := out.At((fx+n)%n, (fy+n)%n)
			var want complex128
			if fx >= -h && fx <= h && fy >= -h && fy <= h {
				want = ker.At(fx+h, fy+h) * spec.At((fx+n)%n, (fy+n)%n)
			}
			if cmplx.Abs(got-want) > 1e-12 {
				t.Fatalf("ApplyKernel bin (%d,%d): got %v want %v", fx, fy, got, want)
			}
		}
	}
}

func TestApplyKernelTruncatedEqualsTruncateOfProduct(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	const n, m, p = 32, 8, 5
	spec := rand2D(rng, n, n)
	ker := rand2D(rng, p, p)
	direct := ApplyKernel(nil, spec, ker, m, complex(0.25, 0))
	fullProduct := ApplyKernel(nil, spec, ker, n, complex(0.25, 0))
	viaTrunc := TruncateCentered(fullProduct, m)
	if d := direct.MaxAbsDiff(viaTrunc); d > 1e-12 {
		t.Errorf("truncated ApplyKernel differs from Truncate(product): %g", d)
	}
}

// TestApplyKernelAdjointProperty verifies ⟨K·x, y⟩ = ⟨x, Kᴴ·y⟩ over the
// complex inner product (real part), which the gradient assembly relies on.
func TestApplyKernelAdjointProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const n, m, p = 16, 8, 5
	x := rand2D(rng, n, n)
	y := rand2D(rng, m, m)
	ker := rand2D(rng, p, p)
	kx := ApplyKernel(nil, x, ker, m, 1)
	// ⟨Kx, y⟩ = Σ conj(Kx)·y
	var lhs complex128
	for i := range kx.Data {
		v := kx.Data[i]
		lhs += complex(real(v), -imag(v)) * y.Data[i]
	}
	acc := grid.NewCMat(n, n)
	AccumulateKernelAdjoint(acc, y, ker, 1)
	var rhs complex128
	for i := range x.Data {
		v := x.Data[i]
		rhs += complex(real(v), -imag(v)) * acc.Data[i]
	}
	if cmplx.Abs(lhs-rhs) > 1e-9 {
		t.Errorf("kernel adjoint identity violated: lhs %v rhs %v", lhs, rhs)
	}
}

func TestShiftInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	m := rand2D(rng, 8, 8)
	back := Shift(Shift(m))
	if d := m.MaxAbsDiff(back); d > 0 {
		t.Errorf("Shift∘Shift != identity: %g", d)
	}
}

func TestShiftMovesDCToCenter(t *testing.T) {
	m := grid.NewCMat(8, 8)
	m.Set(0, 0, 1)
	s := Shift(m)
	if s.At(4, 4) != 1 {
		t.Errorf("DC not moved to center: %v", s.At(4, 4))
	}
}
