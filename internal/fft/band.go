package fft

import (
	"fmt"

	"repro/internal/grid"
)

// Band-limited transforms. ApplyKernel fills only the P×P kernel-support
// band of an m×m spectrum — at production sizes (P = 35, m = 1024) about 97%
// of the rows handed to the per-kernel inverse FFT are exact zeros. The code
// in this file makes that structure explicit: ApplyKernelBand returns a
// BandSpec describing the populated band, and Plan2.InverseBand consumes it
// to transform only the rows (and, inside each row and column, only the
// butterfly blocks) that can carry data.
//
// Bit-exactness: a skipped butterfly block would only ever combine inputs
// that are structurally +0. IEEE-754 evaluates those butterflies to exactly
// +0 again (u ± tw·0 with u = +0 yields +0 for every twiddle), so leaving
// the zeros untouched produces the same bits the dense transform would have
// written. InverseBand is therefore bit-for-bit identical to Inverse on a
// densely zero-padded copy of the same band — the equivalence the property
// tests in band_test.go assert with Float64bits.

// BandSpec describes the populated band of a DC-at-zero spectrum: rows and
// columns with signed frequency |f| ≤ Half — indices [0, Half] and
// [m-Half, m-1] — may carry data. The consumer contract is asymmetric in
// the two axes: populated *rows* must be exactly +0 outside the band
// *columns*, while rows outside the band are never read at all and may hold
// garbage (which is what lets ApplyKernelBand skip the full-buffer memset
// when reusing pooled scratch).
type BandSpec struct {
	Half int
}

// BandNone marks a buffer with no populated cells, e.g. freshly leased pool
// scratch whose previous contents are unknown.
var BandNone = BandSpec{Half: -1}

// None reports whether the band is empty.
func (b BandSpec) None() bool { return b.Half < 0 }

// Rows returns how many rows (equally, columns) of an m-length axis the band
// populates.
func (b BandSpec) Rows(m int) int {
	if b.None() {
		return 0
	}
	if r := 2*b.Half + 1; r < m {
		return r
	}
	return m
}

// Covers reports whether the band spans the whole axis of length m, i.e. no
// pruning is possible.
func (b BandSpec) Covers(m int) bool { return !b.None() && 2*b.Half+1 >= m }

// Row maps a populated-row ordinal i (0 ≤ i < Rows(m)) to its matrix row:
// first the non-negative frequencies 0..Half, then m-Half..m-1.
func (b BandSpec) Row(i, m int) int {
	if i <= b.Half {
		return i
	}
	return m - (b.Rows(m) - i)
}

// ZeroRows writes +0 to every cell of the band's rows of m (full rows, all
// columns). Accumulators that are filled by band-cell += updates (e.g.
// AddKernelPatch) and then handed to InverseBand only need this P·m clear
// instead of a full m² Zero.
func (b BandSpec) ZeroRows(m *grid.CMat) {
	if b.None() {
		return
	}
	rows := b.Rows(m.H)
	for i := 0; i < rows; i++ {
		y := b.Row(i, m.H)
		row := m.Data[y*m.W : (y+1)*m.W]
		for x := range row {
			row[x] = 0
		}
	}
}

// ApplyKernelBand is ApplyKernel with an explicit band contract: dst is
// assumed to hold the band product of a previous call described by dirty
// (BandNone for fresh or pool-leased scratch), and only the rows of the new
// band are (re)initialised — a P·m clear instead of ApplyKernel's full m²
// Zero. Cells outside the returned band's rows are left untouched and must
// be ignored by the consumer; InverseBand does exactly that. When the new
// band equals dirty, even the row clear is skipped (every band cell is
// overwritten). Pass nil dst to allocate. Returns dst and the band that now
// describes it.
func ApplyKernelBand(dst *grid.CMat, dirty BandSpec, spec *grid.CMat, kernel *grid.CMat, m int, scale complex128) (*grid.CMat, BandSpec) {
	if spec.W != spec.H {
		panic(fmt.Sprintf("fft: ApplyKernelBand needs a square spectrum, got %dx%d", spec.W, spec.H))
	}
	if kernel.W != kernel.H || kernel.W%2 == 0 {
		panic(fmt.Sprintf("fft: kernel must be odd square, got %dx%d", kernel.W, kernel.H))
	}
	n := spec.W
	p := kernel.W
	if p > m || m > n {
		panic(fmt.Sprintf("fft: ApplyKernelBand sizes P=%d m=%d n=%d violate P ≤ m ≤ n", p, m, n))
	}
	h := p / 2
	band := BandSpec{Half: h}
	switch {
	case dst == nil || dst.W != m || dst.H != m:
		dst = grid.NewCMat(m, m)
	case dirty.Half != band.Half:
		// New band rows must be zero outside the band columns; the write
		// loop below only touches band columns, so clear the rows first.
		// A same-band reuse skips this: those zeros are still in place and
		// every band cell is overwritten.
		band.ZeroRows(dst)
	}
	for fy := -h; fy <= h; fy++ {
		sy := (fy + n) % n
		oy := (fy + m) % m
		ky := (fy + h) * p
		for fx := -h; fx <= h; fx++ {
			sx := (fx + n) % n
			ox := (fx + m) % m
			dst.Data[oy*m+ox] = scale * kernel.Data[ky+fx+h] * spec.Data[sy*n+sx]
		}
	}
	return dst, band
}

// bandTable caches, per butterfly stage, which blocks can hold nonzero data
// when the transform input is populated only at the band positions (mapped
// through the bit-reversal permutation). Blocks whose inputs are all
// structural zeros are skipped; see the bit-exactness note at the top of
// this file.
type bandTable struct {
	stages []stageMask
}

type stageMask struct {
	dense bool   // every block can be nonzero — run the stage unpruned
	nz    []bool // otherwise: nz[b] marks block b as potentially nonzero
}

// bandTable returns the skip table for a band of the given half-width, or
// nil when the band covers the whole length (no pruning possible). Tables
// are built once per (length, half) and shared by every plan of that length
// through the process-wide table set.
func (p *Plan) bandTable(half int) *bandTable {
	if half < 0 || 2*half+1 >= p.n {
		return nil
	}
	if v, ok := p.tab.bands.Load(half); ok {
		return v.(*bandTable)
	}
	bt := &bandTable{stages: make([]stageMask, p.logN)}
	// Populated input positions after the bit-reversal permutation.
	pos := make([]int, 0, 2*half+1)
	for f := -half; f <= half; f++ {
		pos = append(pos, int(p.tab.rev[(f+p.n)%p.n]))
	}
	bytes := 0
	for s := 1; s <= p.logN; s++ {
		// Stage s butterflies stay within blocks of 2^s elements, so block
		// b can be nonzero iff some populated input lies in [b·2^s, (b+1)·2^s).
		blocks := p.n >> s
		nz := make([]bool, blocks)
		cnt := 0
		for _, q := range pos {
			if b := q >> s; !nz[b] {
				nz[b] = true
				cnt++
			}
		}
		if cnt == blocks {
			bt.stages[s-1] = stageMask{dense: true}
		} else {
			bt.stages[s-1] = stageMask{nz: nz}
			bytes += blocks
		}
	}
	v, loaded := p.tab.bands.LoadOrStore(half, bt)
	if !loaded {
		tableBytes.Add(int64(bytes))
	}
	return v.(*bandTable)
}

// inversePruned is the inverse transform for inputs that are exactly +0
// outside the band positions [0, half] ∪ [n-half, n-1] encoded in bt:
// butterfly blocks whose inputs are all structural zeros are skipped.
// Bit-for-bit identical to the equivalent dense inverse (the skipped
// butterflies would have recomputed the same +0s). A nil bt falls back to
// the dense transform. normalize selects whether the 1/N factor is applied.
func (p *Plan) inversePruned(x []complex128, bt *bandTable, normalize bool) {
	if bt == nil {
		if normalize {
			p.Inverse(x)
		} else {
			p.InverseNoNorm(x)
		}
		return
	}
	if len(x) != p.n {
		panic(fmt.Sprintf("fft: buffer length %d != plan length %d", len(x), p.n))
	}
	for i, r := range p.tab.rev {
		if int32(i) < r {
			x[i], x[r] = x[r], x[i]
		}
	}
	for s := 1; s <= p.logN; s++ {
		m := 1 << (s - 1) // half block
		blk := m << 1
		tw := p.tab.twidI[p.tab.stageAt[s] : p.tab.stageAt[s]+m]
		sm := &bt.stages[s-1]
		for k := 0; k < p.n; k += blk {
			if !sm.dense && !sm.nz[k>>uint(s)] {
				continue
			}
			for j := 0; j < m; j++ {
				t := tw[j] * x[k+j+m]
				u := x[k+j]
				x[k+j] = u + t
				x[k+j+m] = u - t
			}
		}
	}
	if normalize {
		inv := complex(1/float64(p.n), 0)
		for i := range x {
			x[i] *= inv
		}
	}
}

// InverseBand computes the inverse 2-D DFT of the band-limited spectrum src
// into dst (out of place; src is left untouched, dst is fully overwritten).
// src must satisfy the BandSpec contract: band rows exactly +0 outside the
// band columns, rows outside the band ignored entirely. The row pass runs
// only the Rows(h) populated rows — every other row inverts to zeros, which
// the column pass injects structurally — and both passes skip butterfly
// blocks whose inputs are all structural zeros. The result is bit-for-bit
// identical to Inverse on a dense copy of the band.
func (p *Plan2) InverseBand(dst, src *grid.CMat, band BandSpec) {
	p.inverseBand(dst, src, band, true)
}

// InverseBandNoNorm is InverseBand without the 1/(W·H) normalisation — for
// spectra whose scale was folded at multiply time (FoldInverseScale).
func (p *Plan2) InverseBandNoNorm(dst, src *grid.CMat, band BandSpec) {
	p.inverseBand(dst, src, band, false)
}

func (p *Plan2) inverseBand(dst, src *grid.CMat, band BandSpec, normalize bool) {
	if src.W != p.w || src.H != p.h || dst.W != p.w || dst.H != p.h {
		panic(fmt.Sprintf("fft: matrices %dx%d/%dx%d do not match plan %dx%d",
			src.W, src.H, dst.W, dst.H, p.w, p.h))
	}
	if band.None() {
		dst.Zero() // the inverse of an all-zero spectrum
		return
	}
	if band.Covers(p.h) && band.Covers(p.w) {
		copy(dst.Data, src.Data)
		p.transform(dst, true, normalize)
		return
	}
	rowBT := p.rowP.bandTable(band.Half) // prune inside each populated row
	colBT := p.colP.bandTable(band.Half) // prune each column over the band rows
	rows := band.Rows(p.h)
	workers := p.workersFor(p.h)

	if workers <= 1 {
		for i := 0; i < rows; i++ {
			y := band.Row(i, p.h)
			row := dst.Data[y*p.w : (y+1)*p.w]
			copy(row, src.Data[y*p.w:(y+1)*p.w])
			p.rowP.inversePruned(row, rowBT, normalize)
		}
		bp := p.colBufs.Get().(*[]complex128)
		buf := *bp
		for x := 0; x < p.w; x++ {
			p.inverseBandColumn(dst, buf, x, band, colBT, normalize)
		}
		p.colBufs.Put(bp)
		return
	}

	grid.ParallelFor(workers, rows, func(i int) {
		y := band.Row(i, p.h)
		row := dst.Data[y*p.w : (y+1)*p.w]
		copy(row, src.Data[y*p.w:(y+1)*p.w])
		p.rowP.inversePruned(row, rowBT, normalize)
	})
	grid.ParallelFor(workers, p.w, func(x int) {
		bp := p.colBufs.Get().(*[]complex128)
		p.inverseBandColumn(dst, *bp, x, band, colBT, normalize)
		p.colBufs.Put(bp)
	})
}

// inverseBandColumn gathers column x's band rows from m (zero-filling the
// structurally empty middle), runs the pruned column inverse and scatters
// all h values back — fully initialising the column, whatever dst held.
func (p *Plan2) inverseBandColumn(m *grid.CMat, buf []complex128, x int, band BandSpec, colBT *bandTable, normalize bool) {
	for y := 0; y <= band.Half; y++ {
		buf[y] = m.Data[y*p.w+x]
	}
	for y := band.Half + 1; y < p.h-band.Half; y++ {
		buf[y] = 0
	}
	for y := p.h - band.Half; y < p.h; y++ {
		buf[y] = m.Data[y*p.w+x]
	}
	p.colP.inversePruned(buf, colBT, normalize)
	for y := 0; y < p.h; y++ {
		m.Data[y*p.w+x] = buf[y]
	}
}

// ForwardReal computes the unnormalised 2-D DFT of the real matrix src into
// dst, exploiting realness with the classic two-for-one trick: row pairs
// (2i, 2i+1) are packed as a + i·b into one complex row transform and the
// two spectra are separated afterwards through Hermitian symmetry
// (F(a)[k] = (Z[k] + conj(Z[-k]))/2, F(b)[k] = (Z[k] − conj(Z[-k]))/(2i)),
// halving the row pass. The column pass is the ordinary dense forward pass.
//
// Unlike InverseBand this is NOT bit-identical to ComplexFromReal+Forward:
// the packed transform associates the same arithmetic differently, so
// results agree only to rounding (relative error at the few-ulp level). The
// litho engine exposes this as the only non-bit-exact substitution of its
// default mode; see DESIGN.md, "FFT engine".
func (p *Plan2) ForwardReal(dst *grid.CMat, src *grid.Mat) {
	if src.W != p.w || src.H != p.h || dst.W != p.w || dst.H != p.h {
		panic(fmt.Sprintf("fft: matrices %dx%d/%dx%d do not match plan %dx%d",
			src.W, src.H, dst.W, dst.H, p.w, p.h))
	}
	pairs := p.h / 2
	workers := p.workersFor(pairs)

	if workers <= 1 {
		bp := p.rowBufs.Get().(*[]complex128)
		buf := *bp
		for i := 0; i < pairs; i++ {
			p.forwardRealPair(dst, src, buf, i)
		}
		p.rowBufs.Put(bp)
	} else {
		grid.ParallelFor(workers, pairs, func(i int) {
			bp := p.rowBufs.Get().(*[]complex128)
			p.forwardRealPair(dst, src, *bp, i)
			p.rowBufs.Put(bp)
		})
	}
	if p.h%2 == 1 {
		// Odd-height tail row has no partner: dense row transform.
		y := p.h - 1
		row := dst.Data[y*p.w : (y+1)*p.w]
		for x := 0; x < p.w; x++ {
			row[x] = complex(src.Data[y*p.w+x], 0)
		}
		p.rowP.Forward(row)
	}
	if workers <= 1 {
		p.colPassSerial(dst, false, false)
	} else {
		p.colPassParallel(dst, false, false, p.workersFor(p.w))
	}
}

// forwardRealPair transforms source rows 2i and 2i+1 through one packed
// complex row transform and unpacks the two spectra into dst.
func (p *Plan2) forwardRealPair(dst *grid.CMat, src *grid.Mat, buf []complex128, i int) {
	ya, yb := 2*i, 2*i+1
	ra := src.Data[ya*p.w : (ya+1)*p.w]
	rb := src.Data[yb*p.w : (yb+1)*p.w]
	for x := 0; x < p.w; x++ {
		buf[x] = complex(ra[x], rb[x])
	}
	p.rowP.Forward(buf)
	da := dst.Data[ya*p.w : (ya+1)*p.w]
	db := dst.Data[yb*p.w : (yb+1)*p.w]
	mask := p.w - 1 // p.w is a power of two: -k mod w == (w-k) & (w-1)
	for k := 0; k < p.w; k++ {
		zk := buf[k]
		zm := buf[(p.w-k)&mask]
		zmc := complex(real(zm), -imag(zm))
		da[k] = (zk + zmc) * 0.5
		db[k] = (zk - zmc) * complex(0, -0.5)
	}
}
