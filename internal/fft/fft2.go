package fft

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/grid"
)

// Plan2 performs 2-D transforms on W×H complex matrices whose dimensions are
// powers of two. Row and column passes are parallelised across
// runtime.GOMAXPROCS workers. A Plan2 is safe for concurrent use.
type Plan2 struct {
	w, h       int
	rowP, colP *Plan
	// colBufs recycles column-gather scratch across transforms (and across
	// the workers of one transform), so a warm plan performs no allocation.
	colBufs sync.Pool
	// rowBufs recycles the row-pair packing scratch of ForwardReal.
	rowBufs sync.Pool
	// batchBufs recycles the interleaved row-product buffer of
	// MulRowsBatch; sizes vary with the kernel count and band, so entries
	// grow on demand (see batchLease).
	batchBufs sync.Pool
	// colBufs4 and intBufs recycle the 4-column gather scratch of
	// BatchInverse.InverseColumns (complex amplitudes and real intensity).
	colBufs4 sync.Pool
	intBufs  sync.Pool
	// biPool recycles the BatchInverse shell itself: the struct is
	// single-use by contract, so InverseColumns returns it here and the
	// chunked gradient's repeated MulRowsBatch calls stop allocating it.
	biPool sync.Pool
}

// NewPlan2 creates a 2-D plan for w×h matrices.
func NewPlan2(w, h int) (*Plan2, error) {
	rp, err := NewPlan(w)
	if err != nil {
		return nil, fmt.Errorf("fft: row plan: %w", err)
	}
	cp := rp
	if h != w {
		cp, err = NewPlan(h)
		if err != nil {
			return nil, fmt.Errorf("fft: column plan: %w", err)
		}
	}
	p := &Plan2{w: w, h: h, rowP: rp, colP: cp}
	// Pool pointers, not slices: storing a bare slice in a sync.Pool boxes
	// its header on every Put, which alone dominated the transform's
	// allocation profile.
	p.colBufs.New = func() any { b := make([]complex128, h); return &b }
	p.rowBufs.New = func() any { b := make([]complex128, w); return &b }
	p.batchBufs.New = func() any { b := []complex128(nil); return &b }
	p.colBufs4.New = func() any { b := make([]complex128, 4*h); return &b }
	p.intBufs.New = func() any { b := make([]float64, 4*h); return &b }
	p.biPool.New = func() any { return new(BatchInverse) }
	return p, nil
}

// workersFor resolves the worker count for a pass over `limit` units.
func (p *Plan2) workersFor(limit int) int {
	workers := runtime.GOMAXPROCS(0)
	if workers > limit {
		workers = limit
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// W returns the plan width.
func (p *Plan2) W() int { return p.w }

// H returns the plan height.
func (p *Plan2) H() int { return p.h }

// Forward computes the in-place unnormalised 2-D DFT of m.
func (p *Plan2) Forward(m *grid.CMat) { p.transform(m, false, false) }

// Inverse computes the in-place inverse 2-D DFT of m (with 1/(W·H) factor).
func (p *Plan2) Inverse(m *grid.CMat) { p.transform(m, true, true) }

// InverseNoNorm computes the in-place inverse 2-D DFT of m without the
// 1/(W·H) factor — for callers that folded the normalisation into the
// spectrum (FoldInverseScale).
func (p *Plan2) InverseNoNorm(m *grid.CMat) { p.transform(m, true, false) }

func (p *Plan2) transform(m *grid.CMat, inverse, normalize bool) {
	if m.W != p.w || m.H != p.h {
		panic(fmt.Sprintf("fft: matrix %dx%d does not match plan %dx%d", m.W, m.H, p.w, p.h))
	}
	workers := p.workersFor(p.h)

	if workers <= 1 {
		// Serial fast path: plain loops, no closures, one scratch buffer —
		// the transform allocates nothing once the plan's pool is warm.
		for y := 0; y < p.h; y++ {
			row := m.Data[y*p.w : (y+1)*p.w]
			p.rowP.transform1(row, inverse, normalize)
		}
		p.colPassSerial(m, inverse, normalize)
		return
	}

	// Row pass. The forward/inverse split keeps normalisation in one place:
	// the inverse row pass applies 1/W, the inverse column pass 1/H (both
	// skipped on the NoNorm path).
	grid.ParallelFor(workers, p.h, func(y int) {
		row := m.Data[y*p.w : (y+1)*p.w]
		p.rowP.transform1(row, inverse, normalize)
	})
	p.colPassParallel(m, inverse, normalize, workers)
}

// transform1 dispatches one 1-D pass by direction and normalisation.
func (p *Plan) transform1(x []complex128, inverse, normalize bool) {
	switch {
	case !inverse:
		p.Forward(x)
	case normalize:
		p.Inverse(x)
	default:
		p.InverseNoNorm(x)
	}
}

// colPassSerial transforms every column of m in place on the calling
// goroutine, recycling one gather buffer from the plan pool.
func (p *Plan2) colPassSerial(m *grid.CMat, inverse, normalize bool) {
	bp := p.colBufs.Get().(*[]complex128)
	buf := *bp
	for x := 0; x < p.w; x++ {
		for y := 0; y < p.h; y++ {
			buf[y] = m.Data[y*p.w+x]
		}
		p.colP.transform1(buf, inverse, normalize)
		for y := 0; y < p.h; y++ {
			m.Data[y*p.w+x] = buf[y]
		}
	}
	p.colBufs.Put(bp)
}

// colPassParallel is colPassSerial fanned out across workers: gather each
// column into a scratch buffer, transform, scatter back. Scratch buffers are
// per-worker, recycled on the plan.
func (p *Plan2) colPassParallel(m *grid.CMat, inverse, normalize bool, workers int) {
	grid.ParallelFor(workers, p.w, func(x int) {
		bp := p.colBufs.Get().(*[]complex128)
		buf := *bp
		for y := 0; y < p.h; y++ {
			buf[y] = m.Data[y*p.w+x]
		}
		p.colP.transform1(buf, inverse, normalize)
		for y := 0; y < p.h; y++ {
			m.Data[y*p.w+x] = buf[y]
		}
		p.colBufs.Put(bp)
	})
}
