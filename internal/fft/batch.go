package fft

import (
	"fmt"
	"math"

	"repro/internal/grid"
)

// Batched multi-kernel inverse transforms — the fused MulInverseBand path.
// The SOCS loop runs K kernel-multiply + band-pruned inverse pairs against
// one mask spectrum; doing them one kernel at a time re-reads the twiddle
// and skip tables K times and touches every amplitude twice more than
// necessary (once to write the product, once to normalise). The batched
// engine instead runs the whole kernel set through two passes:
//
//	MulRowsBatch      kernel multiply (scale folded, see FoldInverseScale)
//	                  + the pruned inverse ROW transforms, for all K kernels
//	BatchInverse.     the pruned inverse COLUMN transforms, fused with the
//	InverseColumns    |A_k|² intensity accumulation and/or amplitude output
//
// Memory layout: the intermediate holds only the band rows (R = 2·Half+1
// of them) of each kernel's product, interleaved in groups of four rows —
// group g of kernel k stores rows 4g..4g+3 as buf[((k·G+g)·m + x)·4 + lane].
// Four rows (and later four columns) advance through the transform in
// lockstep: each butterfly loads its twiddle once and applies it to four
// lanes sitting in one 64-byte cache line. Since every lane performs
// exactly the per-element operation sequence of the one-kernel pruned
// inverse, the batched result is bit-for-bit identical to the
// ApplyKernelBand + InverseBandNoNorm pair it replaces. The column pass
// walks blocks of four columns, so the gather from the row intermediate,
// the scatter into the amplitude and the intensity accumulation all touch
// full cache lines instead of one value in eight.
//
// Real-input symmetry: when the caller marks the spectrum Hermitian and a
// kernel is *exactly* Hermitian (H(-f) == conj(H(f)) bit-for-bit), the
// product rows come in conjugate pairs, so MulRowsBatch computes only the
// fy ≥ 0 rows and mirrors the rest: row(-fy) = conj(row(fy)) after the row
// transform. Complex multiplication commutes with conjugation exactly in
// IEEE-754, so the mirror is exact when the spectrum is exactly Hermitian;
// for a ForwardReal spectrum (Hermitian only to rounding) the mirrored
// rows deviate at the ulp level — documented in DESIGN.md, "FFT engine
// v2". Physical SOCS kernels are not exactly Hermitian (they carry
// defocus/aberration phase), so on the production path the gate stays
// closed and batched output is bit-identical to the band engine.

// BatchInverse is the retained state between MulRowsBatch and
// InverseColumns: the row-transformed band products of every kernel. It is
// single-use — InverseColumns consumes it and returns its buffer to the
// plan pool. Not safe for concurrent use (the two calls happen on one
// goroutine; the parallelism lives inside each call).
type BatchInverse struct {
	p       *Plan2
	band    BandSpec
	rows    int // band rows per kernel (= band.Rows(m), m not covered)
	groups  int // ⌈rows/4⌉ interleaved row groups per kernel
	nk      int
	workers int
	colBT   *bandTable
	bufp    *[]complex128
	buf     []complex128
}

// MulRowsBatch multiplies spec by every kernel (scale folded into the
// product — pass FoldInverseScale(scale, m, m) to absorb the inverse
// normalisation) and runs the pruned inverse row transforms for the whole
// batch, interleaved four rows at a time. spec is n×n with n ≥ m (Eq. 7
// truncation happens through the frequency indexing, as in
// ApplyKernelBand); kernels must share one odd support P ≤ m.
// specHermitian declares that spec came from a real mask, enabling the
// conjugate-mirror row halving for exactly-Hermitian kernels.
//
// Returns nil when the batch layout does not apply — m not a multiple of
// four, or the kernel band covers the whole grid — and the caller should
// fall back to the per-kernel path.
func (p *Plan2) MulRowsBatch(spec *grid.CMat, kernels []*grid.CMat, scale complex128, specHermitian bool, workers int) *BatchInverse {
	m := p.w
	if p.h != m {
		panic(fmt.Sprintf("fft: MulRowsBatch needs a square plan, got %dx%d", p.w, p.h))
	}
	if spec.W != spec.H {
		panic(fmt.Sprintf("fft: MulRowsBatch needs a square spectrum, got %dx%d", spec.W, spec.H))
	}
	nk := len(kernels)
	if nk == 0 || m%4 != 0 {
		return nil
	}
	pk := kernels[0].W
	for _, k := range kernels {
		if k.W != k.H || k.W%2 == 0 || k.W != pk {
			panic(fmt.Sprintf("fft: batch kernels must share one odd square support, got %dx%d vs %d", k.W, k.H, pk))
		}
	}
	n := spec.W
	if pk > m || m > n {
		panic(fmt.Sprintf("fft: MulRowsBatch sizes P=%d m=%d n=%d violate P ≤ m ≤ n", pk, m, n))
	}
	half := pk / 2
	band := BandSpec{Half: half}
	if band.Covers(m) {
		return nil
	}
	rows := band.Rows(m) // = 2·half+1 < m
	groups := (rows + 3) / 4
	if workers < 1 {
		workers = 1
	}

	b := p.biPool.Get().(*BatchInverse)
	*b = BatchInverse{
		p: p, band: band, rows: rows, groups: groups, nk: nk, workers: workers,
		colBT: p.colP.bandTable(half),
	}
	//lint:ignore scratchalias the batch API is two-phase by design: the row slab leased here is consumed and Put by InverseColumns, which every caller must invoke (or the nil-return fallback path never leases)
	b.bufp = p.batchBufs.Get().(*[]complex128)
	need := nk * groups * 4 * m
	if cap(*b.bufp) < need {
		//lint:ignore escape grow-on-miss of the pooled row slab; amortized to zero once the plan is warm
		*b.bufp = make([]complex128, need)
	}
	//lint:ignore scratchalias the slab view lives inside the leased shell on purpose: InverseColumns consumes both and Puts both
	b.buf = (*b.bufp)[:need]

	rowBT := p.rowP.bandTable(half)
	hermOK := specHermitian && imag(scale) == 0
	sd := spec.Data
	grid.ParallelFor(min(workers, nk), nk, func(k int) {
		kd := kernels[k].Data
		base := k * groups * 4 * m
		herm := hermOK && kernelHermitianExact(kernels[k])
		fillGroups := groups
		if herm {
			fillGroups = (half + 1 + 3) / 4 // groups holding the fy ≥ 0 rows
		}
		for g := 0; g < fillGroups; g++ {
			slab := b.buf[base+g*4*m : base+(g+1)*4*m]
			for i := range slab {
				slab[i] = 0
			}
			for j := 0; j < 4; j++ {
				ord := g*4 + j
				if ord >= rows {
					break
				}
				if herm && ord > half {
					continue // filled by the mirror below
				}
				fy := ord
				if ord > half {
					fy = ord - rows // the negative frequencies
				}
				sy := (fy + n) % n
				ky := (fy + half) * pk
				for fx := -half; fx <= half; fx++ {
					sx := (fx + n) % n
					ox := (fx + m) % m
					slab[ox*4+j] = scale * kd[ky+fx+half] * sd[sy*n+sx]
				}
			}
			p.rowP.inversePruned4(slab, rowBT)
		}
		if herm {
			// After the row transform, row(-fy)[x] = conj(row(fy)[x]) for a
			// conjugate-symmetric product. Mirror ordinal i (fy = i-rows < 0)
			// from ordinal rows-i (fy = rows-i > 0).
			for ord := half + 1; ord < rows; ord++ {
				src := base + ((rows-ord)>>2)*4*m + ((rows - ord) & 3)
				dst := base + (ord>>2)*4*m + (ord & 3)
				for x := 0; x < m; x++ {
					v := b.buf[src+x*4]
					b.buf[dst+x*4] = complex(real(v), -imag(v))
				}
			}
		}
	})
	//lint:ignore scratchalias the pooled shell is handed to the caller by contract; InverseColumns (mandatory, single-use) returns it to biPool
	return b
}

// InverseColumns finishes the batched inverse: for each block of four
// columns it gathers every kernel's band rows from the row intermediate,
// runs the pruned column transforms in lockstep, and — fused in the same
// L2-resident pass — scatters amplitudes into outs[k] (when outs is
// non-nil, fully overwriting each m×m matrix) and accumulates
// weights[k]·|A_k|² into intensity (when non-nil). The intensity fold is
// per element I += weights[k]·(re²+im²) in ascending k — the exact
// AbsSqScaledInto+Add sequence of the per-kernel path, so results are
// bit-identical to it and independent of the worker count. The batch's
// buffer is released; b must not be used again.
func (b *BatchInverse) InverseColumns(outs []*grid.CMat, weights []float64, intensity *grid.Mat) {
	p := b.p
	m := p.w
	if outs != nil && len(outs) != b.nk {
		panic(fmt.Sprintf("fft: %d outs for %d batched kernels", len(outs), b.nk))
	}
	if (weights == nil) != (intensity == nil) {
		panic("fft: InverseColumns needs weights and intensity together")
	}
	if weights != nil && len(weights) != b.nk {
		panic(fmt.Sprintf("fft: %d weights for %d batched kernels", len(weights), b.nk))
	}
	half := b.band.Half
	blocks := m / 4
	grid.ParallelFor(min(b.workers, blocks), blocks, func(bx int) {
		x0 := bx * 4
		cbp := p.colBufs4.Get().(*[]complex128)
		cb := *cbp
		var ib []float64
		var ibp *[]float64
		if intensity != nil {
			ibp = p.intBufs.Get().(*[]float64)
			ib = *ibp
			for y := 0; y < m; y++ {
				copy(ib[y*4:y*4+4], intensity.Data[y*m+x0:y*m+x0+4])
			}
		}
		for k := 0; k < b.nk; k++ {
			kbase := k*b.groups*4*m + x0*4
			for ord := 0; ord < b.rows; ord++ {
				y := b.band.Row(ord, m)
				src := kbase + (ord>>2)*4*m + (ord & 3)
				cb[y*4] = b.buf[src]
				cb[y*4+1] = b.buf[src+4]
				cb[y*4+2] = b.buf[src+8]
				cb[y*4+3] = b.buf[src+12]
			}
			for y := half + 1; y < m-half; y++ {
				cb[y*4], cb[y*4+1], cb[y*4+2], cb[y*4+3] = 0, 0, 0, 0
			}
			p.colP.inversePruned4(cb, b.colBT)
			if outs != nil {
				od := outs[k].Data
				for y := 0; y < m; y++ {
					copy(od[y*m+x0:y*m+x0+4], cb[y*4:y*4+4])
				}
			}
			if intensity != nil {
				wk := weights[k]
				for i := 0; i < 4*m; i++ {
					re, im := real(cb[i]), imag(cb[i])
					ib[i] += wk * (re*re + im*im)
				}
			}
		}
		if intensity != nil {
			for y := 0; y < m; y++ {
				copy(intensity.Data[y*m+x0:y*m+x0+4], ib[y*4:y*4+4])
			}
			p.intBufs.Put(ibp)
		}
		p.colBufs4.Put(cbp)
	})
	p.batchBufs.Put(b.bufp)
	*b = BatchInverse{}
	p.biPool.Put(b)
}

// inversePruned4 is inversePruned over four interleaved lanes: x holds 4·N
// values laid out x[4·i+lane], and each lane undergoes exactly the
// per-element operation sequence of the one-lane transform — same stage
// order, same twiddles, same skipped blocks — so each lane's result is
// bit-identical to inversePruned on that lane alone. No normalisation
// (batch callers fold it via FoldInverseScale). A nil bt runs all blocks.
func (p *Plan) inversePruned4(x []complex128, bt *bandTable) {
	if len(x) != 4*p.n {
		panic(fmt.Sprintf("fft: buffer length %d != 4×plan length %d", len(x), p.n))
	}
	for i, r := range p.tab.rev {
		if int32(i) < r {
			// Length-4-capped reslices: the compiler proves xa[0..3]/xb[0..3]
			// in bounds, so each lane swap costs one slice check instead of
			// eight element checks (bce ratchet).
			a, b := 4*i, 4*int(r)
			xa := x[a : a+4 : a+4]
			xb := x[b : b+4 : b+4]
			xa[0], xb[0] = xb[0], xa[0]
			xa[1], xb[1] = xb[1], xa[1]
			xa[2], xb[2] = xb[2], xa[2]
			xa[3], xb[3] = xb[3], xa[3]
		}
	}
	for s := 1; s <= p.logN; s++ {
		m := 1 << (s - 1) // half block
		blk := m << 1
		tw := p.tab.twidI[p.tab.stageAt[s] : p.tab.stageAt[s]+m]
		var sm *stageMask
		if bt != nil {
			sm = &bt.stages[s-1]
		}
		for k := 0; k < p.n; k += blk {
			if sm != nil && !sm.dense && !sm.nz[k>>uint(s)] {
				continue
			}
			for j := 0; j < m; j++ {
				twj := tw[j]
				// Same reslice trick as the bit-reverse pass: two slice
				// checks per butterfly instead of sixteen element checks.
				a, b := 4*(k+j), 4*(k+j+m)
				xa := x[a : a+4 : a+4]
				xb := x[b : b+4 : b+4]
				t0 := twj * xb[0]
				t1 := twj * xb[1]
				t2 := twj * xb[2]
				t3 := twj * xb[3]
				u0, u1, u2, u3 := xa[0], xa[1], xa[2], xa[3]
				xa[0] = u0 + t0
				xa[1] = u1 + t1
				xa[2] = u2 + t2
				xa[3] = u3 + t3
				xb[0] = u0 - t0
				xb[1] = u1 - t1
				xb[2] = u2 - t2
				xb[3] = u3 - t3
			}
		}
	}
}

// kernelHermitianExact reports whether K(-fy,-fx) == conj(K(fy,fx)) holds
// bit-for-bit for every cell of the DC-centred kernel. For an odd square
// kernel the (-fy,-fx) cell of index i is index P²-1-i.
func kernelHermitianExact(k *grid.CMat) bool {
	d := k.Data
	n := len(d)
	for i, j := 0, n-1; i <= j; i, j = i+1, j-1 {
		a, b := d[i], d[j]
		if i == j {
			// Self-conjugate centre cell: its imaginary part must be a
			// (±)zero; masking the sign bit accepts both encodings.
			if math.Float64bits(imag(a))<<1 != 0 {
				return false
			}
			continue
		}
		if math.Float64bits(real(a)) != math.Float64bits(real(b)) ||
			math.Float64bits(imag(a)) != math.Float64bits(-imag(b)) {
			return false
		}
	}
	return true
}
