package fft

import (
	"sync"
	"testing"
)

// A PlanCache must construct exactly one plan per size under concurrent
// first access, report the build to exactly one caller, and hand every
// goroutine the same instance.
func TestPlanCacheSingleflight(t *testing.T) {
	var c PlanCache
	const goroutines = 16
	plans := make([]*Plan2, goroutines)
	builds := make([]bool, goroutines)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			p, built, err := c.Get(64)
			if err != nil {
				t.Error(err)
				return
			}
			plans[g], builds[g] = p, built
		}(g)
	}
	close(start)
	wg.Wait()

	nbuilds := 0
	for g := 0; g < goroutines; g++ {
		if builds[g] {
			nbuilds++
		}
		if plans[g] != plans[0] {
			t.Fatalf("goroutine %d got a different plan instance", g)
		}
	}
	if nbuilds != 1 {
		t.Errorf("%d goroutines observed built=true, want exactly 1", nbuilds)
	}
	if c.Builds() != 1 {
		t.Errorf("Builds() = %d, want 1", c.Builds())
	}
	if c.Sizes() != 1 {
		t.Errorf("Sizes() = %d, want 1", c.Sizes())
	}

	// A second size builds exactly one more; a repeat hit builds nothing.
	if _, built, err := c.Get(32); err != nil || !built {
		t.Fatalf("Get(32) = built %v, err %v; want a fresh build", built, err)
	}
	if _, built, err := c.Get(64); err != nil || built {
		t.Fatalf("repeat Get(64) = built %v, err %v; want a cache hit", built, err)
	}
	if c.Builds() != 2 || c.Sizes() != 2 {
		t.Errorf("after second size: Builds() = %d, Sizes() = %d, want 2, 2", c.Builds(), c.Sizes())
	}
}
