package fft

import (
	"sync"
	"sync/atomic"
)

// PlanCache is a concurrency-safe, singleflight cache of square 2-D FFT
// plans keyed by size. Plans are pure functions of their size (twiddle and
// bit-reversal tables), so one cache can safely back any number of
// simulators: the long-running ILT server shares a single PlanCache across
// every concurrent job, amortizing plan construction the same way one
// litho.Sim amortizes it across iterations.
//
// The zero value is ready to use. Concurrent first requests for one size
// share a single construction — no goroutine ever observes a half-built
// plan, and losers of the race never build a plan that is thrown away.
type PlanCache struct {
	plans  sync.Map // int → *planSlot
	builds atomic.Int64
}

// planSlot is the singleflight slot for one plan size.
type planSlot struct {
	once sync.Once
	plan *Plan2
	err  error
}

// Get returns the m×m plan, constructing it exactly once per size no
// matter how many goroutines ask concurrently. The second result reports
// whether this call performed the construction, so callers can maintain
// their own build accounting (litho.Sim counts builds it triggered into
// its telemetry recorder).
func (c *PlanCache) Get(m int) (*Plan2, bool, error) {
	v, ok := c.plans.Load(m)
	if !ok {
		v, _ = c.plans.LoadOrStore(m, &planSlot{})
	}
	s := v.(*planSlot)
	built := false
	s.once.Do(func() {
		c.builds.Add(1)
		built = true
		s.plan, s.err = NewPlan2(m, m)
	})
	return s.plan, built, s.err
}

// Builds reports how many plan constructions the cache has performed.
func (c *PlanCache) Builds() int64 { return c.builds.Load() }

// Sizes returns the number of distinct sizes the cache has slots for
// (including sizes whose construction failed).
func (c *PlanCache) Sizes() int {
	n := 0
	c.plans.Range(func(_, _ any) bool { n++; return true })
	return n
}
