package fft

import (
	"expvar"
	"math"
	"math/bits"
	"sync"
)

// Shared transform tables. Every Plan of one length uses the same
// bit-reversal permutation, per-stage twiddle factors and band skip tables,
// so they are built once per process per length and shared — a Sim, a
// server job and a test helper all pointing plans at size 1024 hold one
// table set between them. Tables are immutable after construction (the band
// skip tables extend through a LoadOrStore-guarded sync.Map), which is what
// makes the sharing safe without locks on the transform path.
//
// Observability: the package exports two expvars, mirrored into /metrics by
// the server — fft.table_bytes, the total payload bytes of all tables built
// so far (a gauge that only grows: tables live for the process), and
// fft.table_reuse, the number of NewPlan calls that found their tables
// already built.

// planTables is the immutable per-length table set shared by all Plans of
// one transform length.
type planTables struct {
	n       int
	logN    int
	rev     []int32
	twidF   []complex128 // forward twiddles, all stages concatenated
	twidI   []complex128 // inverse twiddles
	stageAt []int        // offset of each stage's twiddles
	bands   sync.Map     // int (band half-width) → *bandTable, see band.go
}

type tableSlot struct {
	once sync.Once
	tab  *planTables
}

var (
	tableCache sync.Map // int (length) → *tableSlot
	tableBytes = expvar.NewInt("fft.table_bytes")
	tableReuse = expvar.NewInt("fft.table_reuse")
)

// TableBytes returns the total payload bytes of all shared FFT tables built
// by this process (twiddles, bit-reversal permutations, band skip masks).
func TableBytes() int64 { return tableBytes.Value() }

// TableReuse returns how many NewPlan calls were served by an
// already-built shared table set.
func TableReuse() int64 { return tableReuse.Value() }

// tablesFor returns the shared table set for length n (a power of two,
// validated by the caller), building it exactly once per process.
func tablesFor(n int) *planTables {
	if v, ok := tableCache.Load(n); ok {
		slot := v.(*tableSlot)
		slot.once.Do(func() { slot.tab = buildTables(n) }) // lost race before build finished
		tableReuse.Add(1)
		return slot.tab
	}
	v, loaded := tableCache.LoadOrStore(n, &tableSlot{})
	slot := v.(*tableSlot)
	slot.once.Do(func() { slot.tab = buildTables(n) })
	if loaded {
		tableReuse.Add(1)
	}
	return slot.tab
}

func buildTables(n int) *planTables {
	t := &planTables{n: n, logN: bits.TrailingZeros(uint(n))}
	t.rev = make([]int32, n)
	shift := 64 - uint(t.logN)
	for i := 0; i < n; i++ {
		t.rev[i] = int32(bits.Reverse64(uint64(i)) >> shift)
	}
	// Stage s (s = 1..logN) uses half-block size m = 2^(s-1) twiddles
	// w^j = exp(∓2πi·j/2^s), j = 0..m-1.
	total := 0
	t.stageAt = make([]int, t.logN+1)
	for s := 1; s <= t.logN; s++ {
		t.stageAt[s] = total
		total += 1 << (s - 1)
	}
	t.twidF = make([]complex128, total)
	t.twidI = make([]complex128, total)
	for s := 1; s <= t.logN; s++ {
		m := 1 << (s - 1)
		base := t.stageAt[s]
		for j := 0; j < m; j++ {
			ang := -math.Pi * float64(j) / float64(m)
			t.twidF[base+j] = complex(math.Cos(ang), math.Sin(ang))
			t.twidI[base+j] = complex(math.Cos(ang), -math.Sin(ang))
		}
	}
	tableBytes.Add(int64(4*len(t.rev) + 8*len(t.stageAt) + 16*(len(t.twidF)+len(t.twidI))))
	return t
}
