package fft

import (
	"math/rand"
	"testing"

	"repro/internal/grid"
)

func benchMatrix(n int) *grid.CMat {
	rng := rand.New(rand.NewSource(1))
	m := grid.NewCMat(n, n)
	for i := range m.Data {
		m.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return m
}

func benchmark2D(b *testing.B, n int) {
	p, err := NewPlan2(n, n)
	if err != nil {
		b.Fatal(err)
	}
	m := benchMatrix(n)
	b.SetBytes(int64(n * n * 16))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Forward(m)
		p.Inverse(m)
	}
}

func BenchmarkFFT2_64(b *testing.B)   { benchmark2D(b, 64) }
func BenchmarkFFT2_256(b *testing.B)  { benchmark2D(b, 256) }
func BenchmarkFFT2_1024(b *testing.B) { benchmark2D(b, 1024) }

func BenchmarkFFT1D_4096(b *testing.B) {
	p, err := NewPlan(4096)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	x := make([]complex128, 4096)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Forward(x)
		p.Inverse(x)
	}
}

func BenchmarkApplyKernel(b *testing.B) {
	spec := benchMatrix(256)
	ker := benchMatrix(35)
	var dst *grid.CMat
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = ApplyKernel(dst, spec, ker, 64, complex(1.0/16, 0))
	}
}

// bandProduct builds a P-band-limited m×m spectrum the way the simulator
// does (ApplyKernelBand output over pool scratch).
func bandProduct(m, p int) (*grid.CMat, BandSpec) {
	spec := benchMatrix(m)
	ker := benchMatrix(p)
	return ApplyKernelBand(nil, BandNone, spec, ker, m, 1)
}

func benchmarkInverseBand(b *testing.B, m, p int) {
	plan, err := NewPlan2(m, m)
	if err != nil {
		b.Fatal(err)
	}
	src, band := bandProduct(m, p)
	dst := grid.NewCMat(m, m)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan.InverseBand(dst, src, band)
	}
}

func benchmarkInverseDense(b *testing.B, m, p int) {
	plan, err := NewPlan2(m, m)
	if err != nil {
		b.Fatal(err)
	}
	spec := benchMatrix(m)
	ker := benchMatrix(p)
	var dst *grid.CMat
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = ApplyKernel(dst, spec, ker, m, 1)
		plan.Inverse(dst)
	}
}

// The pruned per-kernel inverse vs the dense reference pipeline it replaces
// (product + inverse, since the band path folds the clear into the product).
func BenchmarkInverseBand_1024_P35(b *testing.B)  { benchmarkInverseBand(b, 1024, 35) }
func BenchmarkInverseDense_1024_P35(b *testing.B) { benchmarkInverseDense(b, 1024, 35) }
func BenchmarkInverseBand_256_P13(b *testing.B)   { benchmarkInverseBand(b, 256, 13) }
func BenchmarkInverseDense_256_P13(b *testing.B)  { benchmarkInverseDense(b, 256, 13) }

func BenchmarkForwardReal_1024(b *testing.B) {
	plan, err := NewPlan2(1024, 1024)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	mask := grid.NewMat(1024, 1024)
	for i := range mask.Data {
		mask.Data[i] = rng.Float64()
	}
	dst := grid.NewCMat(1024, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan.ForwardReal(dst, mask)
	}
}

func BenchmarkForwardDense_1024(b *testing.B) {
	plan, err := NewPlan2(1024, 1024)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	mask := grid.NewMat(1024, 1024)
	for i := range mask.Data {
		mask.Data[i] = rng.Float64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst := grid.ComplexFromReal(mask)
		plan.Forward(dst)
	}
}

// The satellite fix: ApplyKernel's reuse path pays a full m² memset per
// kernel (visible at m = 2048), ApplyKernelBand's same-band reuse clears
// nothing and a band change clears only P rows.
func BenchmarkApplyKernelReuseFull_2048(b *testing.B) {
	spec := benchMatrix(2048)
	ker := benchMatrix(35)
	var dst *grid.CMat
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = ApplyKernel(dst, spec, ker, 2048, 1)
	}
}

func BenchmarkApplyKernelReuseBand_2048(b *testing.B) {
	spec := benchMatrix(2048)
	ker := benchMatrix(35)
	var dst *grid.CMat
	dirty := BandNone
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst, dirty = ApplyKernelBand(dst, dirty, spec, ker, 2048, 1)
	}
}
