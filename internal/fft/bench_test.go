package fft

import (
	"math/rand"
	"testing"

	"repro/internal/grid"
)

func benchMatrix(n int) *grid.CMat {
	rng := rand.New(rand.NewSource(1))
	m := grid.NewCMat(n, n)
	for i := range m.Data {
		m.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return m
}

func benchmark2D(b *testing.B, n int) {
	p, err := NewPlan2(n, n)
	if err != nil {
		b.Fatal(err)
	}
	m := benchMatrix(n)
	b.SetBytes(int64(n * n * 16))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Forward(m)
		p.Inverse(m)
	}
}

func BenchmarkFFT2_64(b *testing.B)   { benchmark2D(b, 64) }
func BenchmarkFFT2_256(b *testing.B)  { benchmark2D(b, 256) }
func BenchmarkFFT2_1024(b *testing.B) { benchmark2D(b, 1024) }

func BenchmarkFFT1D_4096(b *testing.B) {
	p, err := NewPlan(4096)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	x := make([]complex128, 4096)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Forward(x)
		p.Inverse(x)
	}
}

func BenchmarkApplyKernel(b *testing.B) {
	spec := benchMatrix(256)
	ker := benchMatrix(35)
	var dst *grid.CMat
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = ApplyKernel(dst, spec, ker, 64, complex(1.0/16, 0))
	}
}
