package fft

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/grid"
)

// bandSpectrum builds an m×m spectrum populated only on the band (random
// values on band rows × band cols). Band rows are exact +0 outside the band
// columns; rows outside the band are filled with NaN, which the BandSpec
// contract says the consumer must never read.
func bandSpectrum(rng *rand.Rand, m, half int) (*grid.CMat, BandSpec) {
	band := BandSpec{Half: half}
	src := grid.NewCMat(m, m)
	nan := complex(math.NaN(), math.NaN())
	for i := range src.Data {
		src.Data[i] = nan
	}
	rows := band.Rows(m)
	for i := 0; i < rows; i++ {
		y := band.Row(i, m)
		for x := 0; x < m; x++ {
			src.Data[y*m+x] = 0
		}
		for j := 0; j < rows; j++ {
			x := band.Row(j, m)
			src.Data[y*m+x] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
	}
	return src, band
}

// denseCopy extracts the band content into a fully dense (zero elsewhere)
// matrix — the input the reference Inverse would have been handed.
func denseCopy(src *grid.CMat, band BandSpec) *grid.CMat {
	m := src.W
	out := grid.NewCMat(m, m)
	rows := band.Rows(m)
	for i := 0; i < rows; i++ {
		y := band.Row(i, m)
		copy(out.Data[y*m:(y+1)*m], src.Data[y*m:(y+1)*m])
	}
	return out
}

// equalBits reports the first element where a and b differ in raw IEEE-754
// bits (so +0 vs -0 and NaN payloads count as differences).
func equalBits(a, b *grid.CMat) (int, bool) {
	for i := range a.Data {
		if math.Float64bits(real(a.Data[i])) != math.Float64bits(real(b.Data[i])) ||
			math.Float64bits(imag(a.Data[i])) != math.Float64bits(imag(b.Data[i])) {
			return i, false
		}
	}
	return 0, true
}

// The tentpole guarantee: InverseBand is bit-for-bit the dense Inverse, for
// every kernel-support/grid combination the kernel sets produce (P = 13 at
// test scale, 35 at paper scale) plus edge halves.
func TestInverseBandBitIdenticalToInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, m := range []int{32, 64, 128, 256} {
		for _, p := range []int{1, 5, 13, 35, 63} {
			if p > m {
				continue
			}
			half := p / 2
			plan, err := NewPlan2(m, m)
			if err != nil {
				t.Fatal(err)
			}
			src, band := bandSpectrum(rng, m, half)
			want := denseCopy(src, band)
			plan.Inverse(want)

			// dst starts as NaN-poisoned pool garbage: InverseBand must
			// fully overwrite it.
			got := grid.NewCMat(m, m)
			nan := complex(math.NaN(), math.NaN())
			for i := range got.Data {
				got.Data[i] = nan
			}
			srcBefore := src.Clone()
			plan.InverseBand(got, src, band)
			if i, ok := equalBits(got, want); !ok {
				t.Errorf("m=%d P=%d: InverseBand differs from Inverse at %d: %v vs %v",
					m, p, i, got.Data[i], want.Data[i])
			}
			if i, ok := equalBits(src, srcBefore); !ok {
				t.Errorf("m=%d P=%d: InverseBand modified src at %d", m, p, i)
			}
		}
	}
}

func TestInverseBandFullCoverAndEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	const m = 32
	plan, err := NewPlan2(m, m)
	if err != nil {
		t.Fatal(err)
	}
	// A band wide enough to cover every row degrades to the dense path.
	src := rand2D(rng, m, m)
	want := src.Clone()
	plan.Inverse(want)
	got := grid.NewCMat(m, m)
	plan.InverseBand(got, src, BandSpec{Half: m / 2})
	if i, ok := equalBits(got, want); !ok {
		t.Errorf("full-cover InverseBand differs from Inverse at %d", i)
	}
	// BandNone means "nothing populated": the result is the all-zero image.
	for i := range got.Data {
		got.Data[i] = complex(math.NaN(), 0)
	}
	plan.InverseBand(got, src, BandNone)
	for i, v := range got.Data {
		if v != 0 {
			t.Fatalf("InverseBand(BandNone) left %v at %d", v, i)
		}
	}
}

func TestBandSpecRowMapping(t *testing.T) {
	b := BandSpec{Half: 2}
	const m = 16
	if got := b.Rows(m); got != 5 {
		t.Fatalf("Rows = %d, want 5", got)
	}
	want := []int{0, 1, 2, 14, 15}
	for i, w := range want {
		if got := b.Row(i, m); got != w {
			t.Errorf("Row(%d) = %d, want %d", i, got, w)
		}
	}
	if BandNone.Rows(m) != 0 || !BandNone.None() {
		t.Error("BandNone should be empty")
	}
	if !(BandSpec{Half: 8}).Covers(m) || (BandSpec{Half: 7}).Covers(m) {
		t.Error("Covers boundary wrong")
	}
}

// ForwardReal agrees with ComplexFromReal+Forward to rounding: the packed
// two-for-one transform reassociates the same arithmetic, so the comparison
// is tolerance-based (scaled by the spectrum magnitude), not bitwise.
func TestForwardRealMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, m := range []int{2, 8, 16, 64, 128} {
		plan, err := NewPlan2(m, m)
		if err != nil {
			t.Fatal(err)
		}
		mask := grid.NewMat(m, m)
		for i := range mask.Data {
			mask.Data[i] = rng.Float64()
		}
		want := grid.ComplexFromReal(mask)
		plan.Forward(want)
		got := grid.NewCMat(m, m)
		plan.ForwardReal(got, mask)

		var maxMag float64
		for _, v := range want.Data {
			if a := math.Hypot(real(v), imag(v)); a > maxMag {
				maxMag = a
			}
		}
		tol := 1e-13 * maxMag * float64(plan.rowP.logN+2)
		if d := got.MaxAbsDiff(want); d > tol {
			t.Errorf("m=%d: ForwardReal differs from reference by %g (tol %g)", m, d, tol)
		}
	}
}

func TestForwardRealZeroMaskIsExactlyZero(t *testing.T) {
	const m = 32
	plan, err := NewPlan2(m, m)
	if err != nil {
		t.Fatal(err)
	}
	got := grid.NewCMat(m, m)
	for i := range got.Data {
		got.Data[i] = complex(math.NaN(), math.NaN())
	}
	plan.ForwardReal(got, grid.NewMat(m, m))
	for i, v := range got.Data {
		if math.Float64bits(real(v)) != 0 || math.Float64bits(imag(v)) != 0 {
			t.Fatalf("zero mask produced %v at %d", v, i)
		}
	}
}

// ApplyKernelBand must leave every *band row* bitwise equal to ApplyKernel's
// full output across reuse sequences that shrink, grow and repeat the kernel
// support — the dirty-band clearing logic under test.
func TestApplyKernelBandMatchesApplyKernelAcrossReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	const n, m = 64, 64
	spec := rand2D(rng, n, n)
	kernel := func(p int) *grid.CMat {
		k := grid.NewCMat(p, p)
		for i := range k.Data {
			k.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		return k
	}
	k5, k13 := kernel(5), kernel(13)
	scale := complex(0.25, 0)

	var dst *grid.CMat
	dirty := BandNone
	for step, k := range []*grid.CMat{k13, k5, k13, k13, k5, k5} {
		dst, dirty = ApplyKernelBand(dst, dirty, spec, k, m, scale)
		want := ApplyKernel(nil, spec, k, m, scale)
		if dirty.Half != k.W/2 {
			t.Fatalf("step %d: band half %d, want %d", step, dirty.Half, k.W/2)
		}
		rows := dirty.Rows(m)
		for i := 0; i < rows; i++ {
			y := dirty.Row(i, m)
			for x := 0; x < m; x++ {
				g, w := dst.Data[y*m+x], want.Data[y*m+x]
				if math.Float64bits(real(g)) != math.Float64bits(real(w)) ||
					math.Float64bits(imag(g)) != math.Float64bits(imag(w)) {
					t.Fatalf("step %d (P=%d): band row %d col %d: %v != %v",
						step, k.W, y, x, g, w)
				}
			}
		}
	}
}

// The combination actually used by the simulator: ApplyKernelBand into a
// reused scratch buffer, then InverseBand — bitwise equal to the dense
// ApplyKernel + Inverse pipeline.
func TestApplyKernelBandPlusInverseBandPipeline(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	const n, m = 128, 64
	spec := rand2D(rng, n, n)
	plan, err := NewPlan2(m, m)
	if err != nil {
		t.Fatal(err)
	}
	k := grid.NewCMat(13, 13)
	for i := range k.Data {
		k.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	scale := complex(0.25, 0) // Eq. 7 truncation scale for s = 2

	prod, band := ApplyKernelBand(nil, BandNone, spec, k, m, scale)
	got := grid.NewCMat(m, m)
	plan.InverseBand(got, prod, band)

	want := ApplyKernel(nil, spec, k, m, scale)
	plan.Inverse(want)
	if i, ok := equalBits(got, want); !ok {
		t.Fatalf("pipeline differs from dense at %d: %v vs %v", i, got.Data[i], want.Data[i])
	}
}

func TestZeroRows(t *testing.T) {
	const m = 16
	mat := grid.NewCMat(m, m)
	for i := range mat.Data {
		mat.Data[i] = 1
	}
	b := BandSpec{Half: 1}
	b.ZeroRows(mat)
	for y := 0; y < m; y++ {
		inBand := y <= 1 || y >= m-1
		for x := 0; x < m; x++ {
			v := mat.Data[y*m+x]
			if inBand && v != 0 {
				t.Fatalf("band row %d not cleared", y)
			}
			if !inBand && v != 1 {
				t.Fatalf("non-band row %d touched", y)
			}
		}
	}
}
