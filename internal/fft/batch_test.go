package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"repro/internal/grid"
)

func randCMatFFT(rng *rand.Rand, w, h int) *grid.CMat {
	m := grid.NewCMat(w, h)
	for i := range m.Data {
		m.Data[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
	}
	return m
}

// hermitize makes a DC-at-zero n×n spectrum exactly Hermitian in place:
// S(-fy,-fx) = conj(S(fy,fx)) bit-for-bit, self-conjugate cells real.
func hermitize(s *grid.CMat) {
	n := s.W
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			my, mx := (n-y)%n, (n-x)%n
			i, j := y*n+x, my*n+mx
			if i < j {
				s.Data[j] = complex(real(s.Data[i]), -imag(s.Data[i]))
			} else if i == j {
				s.Data[i] = complex(real(s.Data[i]), 0)
			}
		}
	}
}

// hermitizeKernel makes a DC-centred odd kernel exactly Hermitian:
// K(-fy,-fx) = conj(K(fy,fx)), i.e. cell i pairs with cell P²-1-i.
func hermitizeKernel(k *grid.CMat) {
	d := k.Data
	n := len(d)
	for i, j := 0, n-1; i < j; i, j = i+1, j-1 {
		d[j] = complex(real(d[i]), -imag(d[i]))
	}
	mid := n / 2
	d[mid] = complex(real(d[mid]), 0)
}

// perKernelFolded runs the non-batched folded path — ApplyKernelBand with
// the folded scale, InverseBandNoNorm, AbsSqScaledInto+Add intensity fold
// in ascending k — the sequence the batch must reproduce bit-for-bit.
func perKernelFolded(t *testing.T, plan *Plan2, spec *grid.CMat, kernels []*grid.CMat, scale complex128, weights []float64) ([]*grid.CMat, *grid.Mat) {
	t.Helper()
	m := plan.W()
	outs := make([]*grid.CMat, len(kernels))
	intensity := grid.NewMat(m, m)
	contrib := grid.NewMat(m, m)
	var prod *grid.CMat
	dirty := BandNone
	for k, kern := range kernels {
		var band BandSpec
		prod, band = ApplyKernelBand(prod, dirty, spec, kern, m, scale)
		dirty = band
		outs[k] = grid.NewCMat(m, m)
		plan.InverseBandNoNorm(outs[k], prod, band)
		outs[k].AbsSqScaledInto(contrib, weights[k])
		intensity.Add(contrib)
	}
	return outs, intensity
}

func batchRun(t *testing.T, plan *Plan2, spec *grid.CMat, kernels []*grid.CMat, scale complex128, weights []float64, specHerm bool, workers int, keepAmps bool) ([]*grid.CMat, *grid.Mat) {
	t.Helper()
	m := plan.W()
	b := plan.MulRowsBatch(spec, kernels, scale, specHerm, workers)
	if b == nil {
		t.Fatalf("MulRowsBatch returned nil for m=%d P=%d", m, kernels[0].W)
	}
	var outs []*grid.CMat
	if keepAmps {
		outs = make([]*grid.CMat, len(kernels))
		for k := range outs {
			outs[k] = grid.NewCMat(m, m)
		}
	}
	intensity := grid.NewMat(m, m)
	b.InverseColumns(outs, weights, intensity)
	return outs, intensity
}

// kernelSupportFor picks an odd kernel support that does not cover size m.
func kernelSupportFor(m int) int {
	p := 35
	if 2*(p/2)+1 >= m {
		p = m/2 - 1
		if p%2 == 0 {
			p--
		}
	}
	return p
}

// TestBatchMatchesPerKernelBitExact: the batched MulRowsBatch +
// InverseColumns pair must reproduce the per-kernel folded band path
// bit-for-bit — amplitudes and the k-ordered intensity fold — across the
// size sweep m ∈ {8…2048} with a general (non-Hermitian) spectrum.
func TestBatchMatchesPerKernelBitExact(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, m := range []int{8, 16, 32, 64, 128, 256, 512, 1024, 2048} {
		nk := 6
		if m >= 512 {
			nk = 3
		}
		pk := kernelSupportFor(m)
		plan, err := NewPlan2(m, m)
		if err != nil {
			t.Fatal(err)
		}
		spec := randCMatFFT(rng, m, m)
		kernels := make([]*grid.CMat, nk)
		weights := make([]float64, nk)
		for k := range kernels {
			kernels[k] = randCMatFFT(rng, pk, pk)
			weights[k] = rng.Float64() + 0.1
		}
		scale := FoldInverseScale(1, m, m)
		wantAmps, wantI := perKernelFolded(t, plan, spec, kernels, scale, weights)
		for _, keep := range []bool{false, true} {
			gotAmps, gotI := batchRun(t, plan, spec, kernels, scale, weights, false, 4, keep)
			if !gotI.Equal(wantI, 0) {
				t.Errorf("m=%d P=%d keep=%v: batched intensity differs from per-kernel fold", m, pk, keep)
			}
			if keep {
				for k := range kernels {
					if gotAmps[k].MaxAbsDiff(wantAmps[k]) != 0 {
						t.Errorf("m=%d P=%d: batched amplitude %d differs from per-kernel", m, pk, k)
					}
				}
			}
		}
	}
}

// TestBatchEq7Spectrum: the batch consumes an n×n spectrum at reduced size
// m < n (the Eq. 7 truncation) identically to ApplyKernelBand.
func TestBatchEq7Spectrum(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n, m, pk, nk := 256, 64, 17, 4
	plan, err := NewPlan2(m, m)
	if err != nil {
		t.Fatal(err)
	}
	spec := randCMatFFT(rng, n, n)
	kernels := make([]*grid.CMat, nk)
	weights := make([]float64, nk)
	for k := range kernels {
		kernels[k] = randCMatFFT(rng, pk, pk)
		weights[k] = rng.Float64() + 0.1
	}
	scale := FoldInverseScale(complex(0.25, 0), m, m)
	wantAmps, wantI := perKernelFolded(t, plan, spec, kernels, scale, weights)
	gotAmps, gotI := batchRun(t, plan, spec, kernels, scale, weights, false, 3, true)
	if !gotI.Equal(wantI, 0) {
		t.Error("batched Eq7 intensity differs from per-kernel fold")
	}
	for k := range kernels {
		if gotAmps[k].MaxAbsDiff(wantAmps[k]) != 0 {
			t.Errorf("batched Eq7 amplitude %d differs", k)
		}
	}
}

// TestBatchWorkerDeterminism: every worker count produces the same bits —
// the column-block fold is k-ordered within each block and blocks are
// disjoint.
func TestBatchWorkerDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	m, pk, nk := 128, 35, 8
	plan, err := NewPlan2(m, m)
	if err != nil {
		t.Fatal(err)
	}
	spec := randCMatFFT(rng, m, m)
	kernels := make([]*grid.CMat, nk)
	weights := make([]float64, nk)
	for k := range kernels {
		kernels[k] = randCMatFFT(rng, pk, pk)
		weights[k] = rng.Float64() + 0.1
	}
	scale := FoldInverseScale(1, m, m)
	wantAmps, wantI := batchRun(t, plan, spec, kernels, scale, weights, false, 1, true)
	for _, w := range []int{2, 3, 7, 16} {
		gotAmps, gotI := batchRun(t, plan, spec, kernels, scale, weights, false, w, true)
		if !gotI.Equal(wantI, 0) {
			t.Errorf("workers=%d: intensity differs from serial batch", w)
		}
		for k := range kernels {
			if gotAmps[k].MaxAbsDiff(wantAmps[k]) != 0 {
				t.Errorf("workers=%d: amplitude %d differs from serial batch", w, k)
			}
		}
	}
}

// TestBatchHermitianGateClosed: specHermitian=true with kernels that are
// NOT exactly Hermitian must leave the mirror gate closed — output stays
// bit-identical to the per-kernel path.
func TestBatchHermitianGateClosed(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	m, pk, nk := 64, 9, 3
	plan, err := NewPlan2(m, m)
	if err != nil {
		t.Fatal(err)
	}
	spec := randCMatFFT(rng, m, m)
	hermitize(spec)
	kernels := make([]*grid.CMat, nk)
	weights := make([]float64, nk)
	for k := range kernels {
		kernels[k] = randCMatFFT(rng, pk, pk) // generic: not Hermitian
		weights[k] = 1
	}
	scale := FoldInverseScale(1, m, m)
	wantAmps, wantI := perKernelFolded(t, plan, spec, kernels, scale, weights)
	gotAmps, gotI := batchRun(t, plan, spec, kernels, scale, weights, true, 2, true)
	if !gotI.Equal(wantI, 0) {
		t.Error("closed Hermitian gate: intensity differs from per-kernel fold")
	}
	for k := range kernels {
		if gotAmps[k].MaxAbsDiff(wantAmps[k]) != 0 {
			t.Errorf("closed Hermitian gate: amplitude %d differs", k)
		}
	}
}

// TestBatchHermitianMirror: with an exactly Hermitian spectrum AND exactly
// Hermitian kernels the conjugate-mirror row halving engages. The mirrored
// rows take a different (but algebraically equal) arithmetic route, so the
// comparison is at documented ulp-level relative tolerance, and the result
// must also be (exactly) real-valued amplitude symmetry: A = conj-symmetric
// product of Hermitian spectra is real, checked loosely too.
func TestBatchHermitianMirror(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	for _, m := range []int{32, 128} {
		pk, nk := 11, 3
		plan, err := NewPlan2(m, m)
		if err != nil {
			t.Fatal(err)
		}
		spec := randCMatFFT(rng, m, m)
		hermitize(spec)
		kernels := make([]*grid.CMat, nk)
		weights := make([]float64, nk)
		for k := range kernels {
			kernels[k] = randCMatFFT(rng, pk, pk)
			hermitizeKernel(kernels[k])
			if !kernelHermitianExact(kernels[k]) {
				t.Fatal("hermitizeKernel did not produce an exactly Hermitian kernel")
			}
			weights[k] = 1
		}
		scale := FoldInverseScale(1, m, m)
		wantAmps, _ := perKernelFolded(t, plan, spec, kernels, scale, weights)
		gotAmps, _ := batchRun(t, plan, spec, kernels, scale, weights, true, 2, true)
		for k := range kernels {
			ref := 0.0
			for _, v := range wantAmps[k].Data {
				if a := cmplx.Abs(v); a > ref {
					ref = a
				}
			}
			if d := gotAmps[k].MaxAbsDiff(wantAmps[k]); d > 1e-12*ref {
				t.Errorf("m=%d: mirrored amplitude %d deviates %g (ref %g) beyond ulp tolerance", m, k, d, ref)
			}
		}
	}
}

// TestBatchFallbacks: layouts the batch cannot take return nil so callers
// fall back to the per-kernel path.
func TestBatchFallbacks(t *testing.T) {
	plan, err := NewPlan2(16, 16)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(46))
	spec := randCMatFFT(rng, 16, 16)
	if b := plan.MulRowsBatch(spec, nil, 1, false, 1); b != nil {
		t.Error("empty kernel set should return nil")
	}
	// A band one short of covering (P = 15 on m = 16 — an odd P ≤ m can
	// never actually cover a power-of-two m) still takes the batch path.
	nearly := []*grid.CMat{randCMatFFT(rng, 15, 15)}
	weights := []float64{1}
	scale := FoldInverseScale(1, 16, 16)
	wantAmps, wantI := perKernelFolded(t, plan, spec, nearly, scale, weights)
	gotAmps, gotI := batchRun(t, plan, spec, nearly, scale, weights, false, 2, true)
	if !gotI.Equal(wantI, 0) || gotAmps[0].MaxAbsDiff(wantAmps[0]) != 0 {
		t.Error("near-covering band batch differs from per-kernel path")
	}
}

// TestSharedTables: plans of one length share one table set, the reuse
// counter advances, and the byte gauge is positive and stable across
// reuse.
func TestSharedTables(t *testing.T) {
	p1, err := NewPlan(512)
	if err != nil {
		t.Fatal(err)
	}
	reuse0 := TableReuse()
	bytes0 := TableBytes()
	if bytes0 <= 0 {
		t.Fatalf("table_bytes %d after building a plan", bytes0)
	}
	p2, err := NewPlan(512)
	if err != nil {
		t.Fatal(err)
	}
	if p1.tab != p2.tab {
		t.Error("two plans of one length do not share tables")
	}
	if TableReuse() != reuse0+1 {
		t.Errorf("table_reuse %d, want %d", TableReuse(), reuse0+1)
	}
	if TableBytes() != bytes0 {
		t.Errorf("table_bytes changed on reuse: %d → %d", bytes0, TableBytes())
	}
	// The shared tables must still produce a correct round trip.
	x := make([]complex128, 512)
	want := make([]complex128, 512)
	rng := rand.New(rand.NewSource(47))
	for i := range x {
		x[i] = complex(rng.Float64(), rng.Float64())
		want[i] = x[i]
	}
	p2.Forward(x)
	p1.Inverse(x)
	for i := range x {
		if math.Abs(real(x[i])-real(want[i])) > 1e-12 || math.Abs(imag(x[i])-imag(want[i])) > 1e-12 {
			t.Fatalf("round trip through shared tables diverged at %d", i)
		}
	}
}
