package fft

import (
	"fmt"

	"repro/internal/grid"
)

// Frequency-domain helpers. All spectra follow the standard FFT layout with
// DC at index (0, 0); a signed frequency f ∈ [-n/2, n/2) lives at index
// (f mod n). Optical kernels, by contrast, are small P×P arrays stored
// *centered*, with DC at (P/2, P/2); the helpers below translate between the
// two layouts.

// TruncateCentered extracts the m×m low-frequency block of an n×n spectrum
// (both in DC-at-zero layout): signed frequencies in [-m/2, m/2). This is
// the "reduction of the spatial domain equals truncation of the frequency
// domain" step of Eq. (7). m must be even, ≤ n, and divide n is not required.
func TruncateCentered(spec *grid.CMat, m int) *grid.CMat {
	if spec.W != spec.H {
		panic(fmt.Sprintf("fft: TruncateCentered needs a square spectrum, got %dx%d", spec.W, spec.H))
	}
	n := spec.W
	if m <= 0 || m > n || m%2 != 0 {
		panic(fmt.Sprintf("fft: TruncateCentered m=%d invalid for n=%d", m, n))
	}
	out := grid.NewCMat(m, m)
	for fy := -m / 2; fy < m/2; fy++ {
		sy := (fy + n) % n
		oy := (fy + m) % m
		for fx := -m / 2; fx < m/2; fx++ {
			sx := (fx + n) % n
			ox := (fx + m) % m
			out.Data[oy*m+ox] = spec.Data[sy*n+sx]
		}
	}
	return out
}

// EmbedCentered zero-pads an m×m spectrum into an n×n one, the inverse
// placement of TruncateCentered (used by adjoint computations).
func EmbedCentered(spec *grid.CMat, n int) *grid.CMat {
	if spec.W != spec.H {
		panic(fmt.Sprintf("fft: EmbedCentered needs a square spectrum, got %dx%d", spec.W, spec.H))
	}
	m := spec.W
	if n < m || m%2 != 0 {
		panic(fmt.Sprintf("fft: EmbedCentered n=%d invalid for m=%d", n, m))
	}
	out := grid.NewCMat(n, n)
	for fy := -m / 2; fy < m/2; fy++ {
		sy := (fy + m) % m
		oy := (fy + n) % n
		for fx := -m / 2; fx < m/2; fx++ {
			sx := (fx + m) % m
			ox := (fx + n) % n
			out.Data[oy*n+ox] = spec.Data[sy*m+sx]
		}
	}
	return out
}

// ApplyKernel multiplies a centered P×P kernel into an n×n spectrum and
// writes the product into an m×m spectrum (all square), zeroing everything
// outside the kernel support:
//
//	out[f] = scale · K[f] · spec[f]   for |f_x|,|f_y| ≤ P/2, else 0.
//
// With m == n this is the per-kernel product of Eq. (3); with m == n/s and
// scale = 1/s² it is exactly Eq. (7)'s truncated product (the kernel support
// already lies inside the retained band, so nothing is lost). dst is reused
// if it has the right size; pass nil to allocate. P must be odd and ≤ m.
func ApplyKernel(dst *grid.CMat, spec *grid.CMat, kernel *grid.CMat, m int, scale complex128) *grid.CMat {
	if spec.W != spec.H {
		panic(fmt.Sprintf("fft: ApplyKernel needs a square spectrum, got %dx%d", spec.W, spec.H))
	}
	if kernel.W != kernel.H || kernel.W%2 == 0 {
		panic(fmt.Sprintf("fft: kernel must be odd square, got %dx%d", kernel.W, kernel.H))
	}
	n := spec.W
	p := kernel.W
	if p > m || m > n {
		panic(fmt.Sprintf("fft: ApplyKernel sizes P=%d m=%d n=%d violate P ≤ m ≤ n", p, m, n))
	}
	if dst == nil || dst.W != m || dst.H != m {
		dst = grid.NewCMat(m, m)
	} else {
		dst.Zero()
	}
	h := p / 2
	for fy := -h; fy <= h; fy++ {
		sy := (fy + n) % n
		oy := (fy + m) % m
		ky := (fy + h) * p
		for fx := -h; fx <= h; fx++ {
			sx := (fx + n) % n
			ox := (fx + m) % m
			dst.Data[oy*m+ox] = scale * kernel.Data[ky+fx+h] * spec.Data[sy*n+sx]
		}
	}
	return dst
}

// AccumulateKernelAdjoint scatters conj(K)·g (g an m×m spectrum) back into
// an n×n spectrum accumulator, the adjoint of ApplyKernel. Used to assemble
// the mask gradient in the frequency domain.
func AccumulateKernelAdjoint(acc *grid.CMat, g *grid.CMat, kernel *grid.CMat, scale complex128) {
	if acc.W != acc.H || g.W != g.H {
		panic("fft: AccumulateKernelAdjoint needs square matrices")
	}
	n, m, p := acc.W, g.W, kernel.W
	if p > m || m > n {
		panic(fmt.Sprintf("fft: AccumulateKernelAdjoint sizes P=%d m=%d n=%d violate P ≤ m ≤ n", p, m, n))
	}
	h := p / 2
	for fy := -h; fy <= h; fy++ {
		gy := (fy + m) % m
		ay := (fy + n) % n
		ky := (fy + h) * p
		for fx := -h; fx <= h; fx++ {
			gx := (fx + m) % m
			ax := (fx + n) % n
			k := kernel.Data[ky+fx+h]
			acc.Data[ay*n+ax] += scale * complex(real(k), -imag(k)) * g.Data[gy*m+gx]
		}
	}
}

// KernelAdjointPatch gathers the per-kernel adjoint product of
// AccumulateKernelAdjoint into a dense P×P patch (centered layout, like the
// kernel itself) instead of scattering it into the accumulator:
//
//	patch[fy+h, fx+h] = scale · conj(K[f]) · g[f]   for |f_x|,|f_y| ≤ h = P/2.
//
// AddKernelPatch then scatters patch += into an n×n spectrum. Splitting the
// adjoint this way lets the per-kernel products run in parallel while the
// accumulation stays a strictly ordered (hence deterministic) serial fold:
// compute-then-add performs the identical floating-point operations as the
// fused AccumulateKernelAdjoint loop. dst is reused if it has the right
// size; pass nil to allocate.
func KernelAdjointPatch(dst *grid.CMat, g *grid.CMat, kernel *grid.CMat, scale complex128) *grid.CMat {
	if g.W != g.H {
		panic("fft: KernelAdjointPatch needs a square spectrum")
	}
	m, p := g.W, kernel.W
	if kernel.W != kernel.H || p%2 == 0 || p > m {
		panic(fmt.Sprintf("fft: KernelAdjointPatch sizes P=%d m=%d invalid", p, m))
	}
	if dst == nil || dst.W != p || dst.H != p {
		dst = grid.NewCMat(p, p)
	}
	h := p / 2
	for fy := -h; fy <= h; fy++ {
		gy := (fy + m) % m
		ky := (fy + h) * p
		for fx := -h; fx <= h; fx++ {
			gx := (fx + m) % m
			k := kernel.Data[ky+fx+h]
			dst.Data[ky+fx+h] = scale * complex(real(k), -imag(k)) * g.Data[gy*m+gx]
		}
	}
	return dst
}

// AddKernelPatch accumulates a centered P×P patch (as produced by
// KernelAdjointPatch) into an n×n DC-at-zero spectrum.
func AddKernelPatch(acc *grid.CMat, patch *grid.CMat) {
	if acc.W != acc.H || patch.W != patch.H || patch.W%2 == 0 {
		panic("fft: AddKernelPatch needs a square accumulator and an odd square patch")
	}
	n, p := acc.W, patch.W
	if p > n {
		panic(fmt.Sprintf("fft: AddKernelPatch patch %d larger than spectrum %d", p, n))
	}
	h := p / 2
	for fy := -h; fy <= h; fy++ {
		ay := (fy + n) % n
		ky := (fy + h) * p
		for fx := -h; fx <= h; fx++ {
			ax := (fx + n) % n
			acc.Data[ay*n+ax] += patch.Data[ky+fx+h]
		}
	}
}

// Shift returns the spectrum with DC moved to the center (for display) or
// back (the operation is an involution for even sizes).
func Shift(m *grid.CMat) *grid.CMat {
	out := grid.NewCMat(m.W, m.H)
	hw, hh := m.W/2, m.H/2
	for y := 0; y < m.H; y++ {
		yy := (y + hh) % m.H
		for x := 0; x < m.W; x++ {
			xx := (x + hw) % m.W
			out.Data[yy*m.W+xx] = m.Data[y*m.W+x]
		}
	}
	return out
}
