// Package imgio writes the mask/wafer images behind the paper's figures as
// grayscale PNG or PGM files. Values are clamped to [0, 1] and mapped to
// 8-bit gray (1 = white = transparent mask / printed resist).
package imgio

import (
	"bufio"
	"fmt"
	"image"
	"image/color"
	"image/png"
	"os"
	"path/filepath"

	"repro/internal/grid"
)

func toGray(m *grid.Mat) *image.Gray {
	img := image.NewGray(image.Rect(0, 0, m.W, m.H))
	for y := 0; y < m.H; y++ {
		for x := 0; x < m.W; x++ {
			v := m.At(x, y)
			if v < 0 {
				v = 0
			}
			if v > 1 {
				v = 1
			}
			img.SetGray(x, y, color.Gray{Y: uint8(v*255 + 0.5)})
		}
	}
	return img
}

// WritePNG saves the matrix as a grayscale PNG, creating directories as
// needed.
func WritePNG(path string, m *grid.Mat) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("imgio: %w", err)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("imgio: %w", err)
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	if err := png.Encode(w, toGray(m)); err != nil {
		return fmt.Errorf("imgio: encode %s: %w", path, err)
	}
	if err := w.Flush(); err != nil {
		return fmt.Errorf("imgio: flush %s: %w", path, err)
	}
	return f.Close()
}

// WritePGM saves the matrix as a binary (P5) PGM file — trivially parseable
// by downstream scripts without an image library.
func WritePGM(path string, m *grid.Mat) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("imgio: %w", err)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("imgio: %w", err)
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	fmt.Fprintf(w, "P5\n%d %d\n255\n", m.W, m.H)
	buf := make([]byte, m.W)
	for y := 0; y < m.H; y++ {
		for x := 0; x < m.W; x++ {
			v := m.At(x, y)
			if v < 0 {
				v = 0
			}
			if v > 1 {
				v = 1
			}
			buf[x] = uint8(v*255 + 0.5)
		}
		if _, err := w.Write(buf); err != nil {
			return fmt.Errorf("imgio: write %s: %w", path, err)
		}
	}
	if err := w.Flush(); err != nil {
		return fmt.Errorf("imgio: flush %s: %w", path, err)
	}
	return f.Close()
}

// ReadPGM loads a binary (P5) PGM file back into a matrix with values in
// [0, 1]; it round-trips WritePGM output.
func ReadPGM(path string) (*grid.Mat, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("imgio: %w", err)
	}
	defer f.Close()
	r := bufio.NewReader(f)
	var magic string
	var w, h, maxv int
	if _, err := fmt.Fscan(r, &magic, &w, &h, &maxv); err != nil {
		return nil, fmt.Errorf("imgio: %s: bad PGM header: %w", path, err)
	}
	if magic != "P5" || w <= 0 || h <= 0 || maxv <= 0 || maxv > 255 {
		return nil, fmt.Errorf("imgio: %s: unsupported PGM (%s, %dx%d, max %d)", path, magic, w, h, maxv)
	}
	if _, err := r.ReadByte(); err != nil { // single whitespace after header
		return nil, fmt.Errorf("imgio: %s: %w", path, err)
	}
	m := grid.NewMat(w, h)
	row := make([]byte, w)
	for y := 0; y < h; y++ {
		if _, err := readFull(r, row); err != nil {
			return nil, fmt.Errorf("imgio: %s: row %d: %w", path, y, err)
		}
		for x, b := range row {
			m.Set(x, y, float64(b)/float64(maxv))
		}
	}
	return m, nil
}

func readFull(r *bufio.Reader, buf []byte) (int, error) {
	total := 0
	for total < len(buf) {
		n, err := r.Read(buf[total:])
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}
