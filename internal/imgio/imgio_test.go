package imgio

import (
	"image/png"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/grid"
)

func gradientMat() *grid.Mat {
	m := grid.NewMat(16, 8)
	for y := 0; y < m.H; y++ {
		for x := 0; x < m.W; x++ {
			m.Set(x, y, float64(x)/float64(m.W-1))
		}
	}
	return m
}

func TestWritePNGCreatesDecodableFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sub", "m.png")
	if err := WritePNG(path, gradientMat()); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	img, err := png.Decode(f)
	if err != nil {
		t.Fatal(err)
	}
	if img.Bounds().Dx() != 16 || img.Bounds().Dy() != 8 {
		t.Errorf("decoded size %v", img.Bounds())
	}
}

func TestPGMRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.pgm")
	src := gradientMat()
	// Add out-of-range values to exercise clamping.
	src.Set(0, 0, -0.5)
	src.Set(1, 0, 1.5)
	if err := WritePGM(path, src); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPGM(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.W != src.W || back.H != src.H {
		t.Fatalf("round-trip size %dx%d", back.W, back.H)
	}
	if back.At(0, 0) != 0 {
		t.Errorf("negative value not clamped to 0: %v", back.At(0, 0))
	}
	if back.At(1, 0) != 1 {
		t.Errorf("overflow value not clamped to 1: %v", back.At(1, 0))
	}
	for x := 2; x < src.W; x++ {
		want := src.At(x, 3)
		if got := back.At(x, 3); got < want-1.0/255-1e-9 || got > want+1.0/255+1e-9 {
			t.Fatalf("quantisation error at x=%d: %v vs %v", x, got, want)
		}
	}
}

func TestReadPGMRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.pgm")
	if err := os.WriteFile(path, []byte("P6\n4 4\n255\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadPGM(path); err == nil {
		t.Error("P6 file accepted as PGM")
	}
	if _, err := ReadPGM(filepath.Join(dir, "missing.pgm")); err == nil {
		t.Error("missing file did not error")
	}
	// Truncated pixel data.
	if err := os.WriteFile(path, []byte("P5\n4 4\n255\nab"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadPGM(path); err == nil {
		t.Error("truncated PGM accepted")
	}
}
