package report_test

import (
	"fmt"

	"repro/internal/report"
)

func ExampleTable() {
	t := report.NewTable("Demo", "case", "L2", "ratio")
	t.Add("case1", report.F(49712, 0), report.Ratio(49712, 49712))
	t.Add("case2", report.F(43792, 0), report.Ratio(43792, 49712))
	fmt.Print(t.String())
	// Output:
	// Demo
	// case   L2     ratio
	// -------------------
	// case1  49712  1.000
	// case2  43792  0.881
}

func ExampleTable_csv() {
	t := report.NewTable("", "a", "b")
	t.Add("1", "x,y")
	fmt.Print(t.CSV())
	// Output:
	// a,b
	// 1,"x,y"
}
