// Package report renders the experiment tables and CSV series of the
// reproduction: aligned-text tables with the row/column layout of the
// paper's Tables I–IV, ratio rows, and simple CSV emission for figure data.
package report

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// Add appends a row; missing cells are blank, extras are dropped.
func (t *Table) Add(cells ...string) {
	row := make([]string, len(t.Header))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// Note appends a footnote line printed below the table.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total-2))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (header + rows; cells
// containing commas or quotes are quoted).
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
			}
			b.WriteString(c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// SaveCSV writes the CSV form to path, creating directories as needed.
func (t *Table) SaveCSV(path string) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("report: %w", err)
	}
	if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
		return fmt.Errorf("report: %w", err)
	}
	return nil
}

// F formats a float with the given number of decimals, trimming to integers
// cleanly (the tables mix counts and measurements).
func F(v float64, decimals int) string {
	return fmt.Sprintf("%.*f", decimals, v)
}

// I formats an int.
func I(v int) string { return fmt.Sprintf("%d", v) }

// Ratio formats v/base, the paper's "Ratio" rows ("-" when base is zero).
func Ratio(v, base float64) string {
	if base == 0 {
		return "-"
	}
	return fmt.Sprintf("%.3f", v/base)
}

// Series is a named list of (x, y) points for figure data (Fig. 5 curves,
// convergence traces).
type Series struct {
	Name string
	X, Y []float64
}

// Append adds one point.
func (s *Series) Append(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// SaveSeriesCSV writes multiple series sharing an X column to a CSV file.
// All series must have the same length as the first.
func SaveSeriesCSV(path string, series ...*Series) error {
	if len(series) == 0 {
		return fmt.Errorf("report: no series")
	}
	n := len(series[0].X)
	for _, s := range series {
		if len(s.X) != n || len(s.Y) != n {
			return fmt.Errorf("report: series %q length mismatch", s.Name)
		}
	}
	var b strings.Builder
	b.WriteString("x")
	for _, s := range series {
		b.WriteByte(',')
		b.WriteString(s.Name)
	}
	b.WriteByte('\n')
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "%g", series[0].X[i])
		for _, s := range series {
			fmt.Fprintf(&b, ",%g", s.Y[i])
		}
		b.WriteByte('\n')
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("report: %w", err)
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}
