package report

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestTableStringAlignment(t *testing.T) {
	tb := NewTable("T", "name", "L2", "PVB")
	tb.Add("case1", "123", "456")
	tb.Add("case10", "7", "8")
	tb.Note("units: px²")
	s := tb.String()
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if lines[0] != "T" {
		t.Errorf("title line %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "name") {
		t.Errorf("header line %q", lines[1])
	}
	// Column starts align between header and rows.
	idx := strings.Index(lines[1], "L2")
	if idx < 0 || lines[3][idx:idx+3] != "123" {
		t.Errorf("column misaligned:\n%s", s)
	}
	if !strings.Contains(s, "note: units: px²") {
		t.Error("note missing")
	}
}

func TestTableAddPadsAndTruncates(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.Add("1")
	tb.Add("1", "2", "3")
	if tb.Rows[0][1] != "" {
		t.Error("missing cell not padded")
	}
	if len(tb.Rows[1]) != 2 {
		t.Error("extra cell not dropped")
	}
}

func TestCSVQuoting(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.Add(`x,y`, `say "hi"`)
	csv := tb.CSV()
	want := "a,b\n\"x,y\",\"say \"\"hi\"\"\"\n"
	if csv != want {
		t.Errorf("CSV = %q, want %q", csv, want)
	}
}

func TestSaveCSV(t *testing.T) {
	dir := t.TempDir()
	tb := NewTable("", "a")
	tb.Add("1")
	path := filepath.Join(dir, "sub", "t.csv")
	if err := tb.SaveCSV(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "a\n1\n" {
		t.Errorf("file content %q", data)
	}
}

func TestFormatters(t *testing.T) {
	if F(3.14159, 2) != "3.14" {
		t.Error("F broken")
	}
	if I(42) != "42" {
		t.Error("I broken")
	}
	if Ratio(3, 2) != "1.500" {
		t.Error("Ratio broken")
	}
	if Ratio(3, 0) != "-" {
		t.Error("Ratio by zero should be '-'")
	}
}

func TestSaveSeriesCSV(t *testing.T) {
	dir := t.TempDir()
	s1 := &Series{Name: "tr0"}
	s2 := &Series{Name: "tr05"}
	for i := 0; i < 3; i++ {
		s1.Append(float64(i), float64(i*i))
		s2.Append(float64(i), float64(-i))
	}
	path := filepath.Join(dir, "fig5.csv")
	if err := SaveSeriesCSV(path, s1, s2); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want := "x,tr0,tr05\n0,0,0\n1,1,-1\n2,4,-2\n"
	if string(data) != want {
		t.Errorf("series CSV %q, want %q", data, want)
	}

	bad := &Series{Name: "short"}
	bad.Append(0, 0)
	if err := SaveSeriesCSV(path, s1, bad); err == nil {
		t.Error("length mismatch accepted")
	}
	if err := SaveSeriesCSV(path); err == nil {
		t.Error("empty series list accepted")
	}
}
