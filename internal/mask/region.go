package mask

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/grid"
)

// Optimization regions (Fig. 7 of the paper). Every baseline restricts mask
// edits to a region around the target; the two conventions in the
// literature differ in how much room they leave for SRAFs:
//
//   - Option 1 (Neural-ILT, A2-ILT): a tight region hugging each feature —
//     modelled here as the Chebyshev dilation of the target by a margin.
//   - Option 2 (GLS-ILT, DevelSet): one large region around the whole
//     layout — modelled as the dilated union bounding box of all features.
//
// A region is a 0/1 matrix; gradients are zeroed outside it, so pixels
// beyond the region keep their initial value.

// RegionOption identifies the optimizing-region convention.
type RegionOption int

const (
	// Option1 is the tight per-feature region.
	Option1 RegionOption = 1
	// Option2 is the loose whole-layout region.
	Option2 RegionOption = 2
)

// Region builds the optimization region for a target under the given
// option. Margins are in pixels; the paper's figures suggest roughly
// 40–60 nm for option 1 and twice that for option 2 at 1 nm/px.
func Region(target *grid.Mat, opt RegionOption, marginPx int) (*grid.Mat, error) {
	switch opt {
	case Option1:
		return geom.DilateBox(target, marginPx), nil
	case Option2:
		comps := geom.Components(target)
		out := grid.NewMat(target.W, target.H)
		if len(comps) == 0 {
			return out, nil
		}
		bb := comps[0].BBox
		for _, c := range comps[1:] {
			bb = bb.Union(c.BBox)
		}
		bb.X0 -= marginPx
		bb.Y0 -= marginPx
		bb.X1 += marginPx
		bb.Y1 += marginPx
		geom.FillRect(out, bb, 1)
		return out, nil
	default:
		return nil, fmt.Errorf("mask: unknown region option %d", opt)
	}
}

// ApplyRegion zeroes g outside the region in place (the gradient mask of
// the constrained update).
func ApplyRegion(g, region *grid.Mat) {
	if g.W != region.W || g.H != region.H {
		panic(fmt.Sprintf("mask: gradient %dx%d vs region %dx%d", g.W, g.H, region.W, region.H))
	}
	for i, r := range region.Data {
		if r < 0.5 {
			g.Data[i] = 0
		}
	}
}

// ClampOutsideRegion forces the mask parameter to a constant outside the
// region (used when re-initialising between resolution levels so that
// out-of-region pixels stay opaque).
func ClampOutsideRegion(mp, region *grid.Mat, value float64) {
	if mp.W != region.W || mp.H != region.H {
		panic(fmt.Sprintf("mask: parameter %dx%d vs region %dx%d", mp.W, mp.H, region.W, region.H))
	}
	for i, r := range region.Data {
		if r < 0.5 {
			mp.Data[i] = value
		}
	}
}
