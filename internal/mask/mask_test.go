package mask

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/grid"
)

func TestSigmoidPaperInitialValues(t *testing.T) {
	// Section III-C: with M′ ∈ {0, 1} (the target seed) and β = 4, the
	// binarized mask starts at {0.5, ≈0.98} for T_R = 0 and {≈0.12, ≈0.88}
	// for T_R = 0.5 — the "{≈0.1, ≈0.9}" the paper quotes.
	mp := grid.FromSlice(2, 1, []float64{0, 1})

	m0 := Sigmoid{Beta: DefaultBeta, TR: 0}.Apply(mp)
	if math.Abs(m0.Data[0]-0.5) > 1e-12 {
		t.Errorf("T_R=0: f(0) = %v, want 0.5", m0.Data[0])
	}
	if math.Abs(m0.Data[1]-0.982) > 0.001 {
		t.Errorf("T_R=0: f(1) = %v, want ≈0.982", m0.Data[1])
	}

	m5 := Sigmoid{Beta: DefaultBeta, TR: 0.5}.Apply(mp)
	if math.Abs(m5.Data[0]-0.119) > 0.001 || math.Abs(m5.Data[1]-0.881) > 0.001 {
		t.Errorf("T_R=0.5: f({0,1}) = {%v, %v}, want ≈{0.12, 0.88}", m5.Data[0], m5.Data[1])
	}
	// Symmetry around T_R: f(0) + f(1) = 1 for T_R = 0.5.
	if math.Abs(m5.Data[0]+m5.Data[1]-1) > 1e-12 {
		t.Error("T_R=0.5 not symmetric around 0.5")
	}
}

func TestSigmoidGradMatchesFiniteDifference(t *testing.T) {
	f := func(v, tr float64) bool {
		v = math.Mod(v, 3)
		tr = math.Mod(tr, 1)
		s := Sigmoid{Beta: DefaultBeta, TR: tr}
		mp := grid.FromSlice(1, 1, []float64{v})
		m := s.Apply(mp)
		g := s.Grad(mp, m)
		const eps = 1e-6
		p := s.Apply(grid.FromSlice(1, 1, []float64{v + eps}))
		q := s.Apply(grid.FromSlice(1, 1, []float64{v - eps}))
		fd := (p.Data[0] - q.Data[0]) / (2 * eps)
		return math.Abs(fd-g.Data[0]) < 1e-6*(1+math.Abs(fd))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSigmoidGradientPeakAtTR(t *testing.T) {
	// Fig. 5(b): the gradient is largest at M′ = T_R. With T_R = 0 the
	// opaque pixels (M′ = 0) sit exactly on the peak, which is what drives
	// them strongly negative after the first iteration.
	s := Sigmoid{Beta: DefaultBeta, TR: 0.5}
	grad := func(v float64) float64 {
		mp := grid.FromSlice(1, 1, []float64{v})
		return s.Grad(mp, s.Apply(mp)).Data[0]
	}
	gPeak := grad(0.5)
	for _, v := range []float64{-1, 0, 0.2, 0.8, 1, 2} {
		if grad(v) > gPeak+1e-12 {
			t.Errorf("gradient at %v exceeds peak at T_R", v)
		}
	}
	if math.Abs(gPeak-DefaultBeta/4) > 1e-12 {
		t.Errorf("peak gradient %v, want β/4 = %v", gPeak, DefaultBeta/4)
	}
}

func TestCosineApplyAndGrad(t *testing.T) {
	var c Cosine
	mp := grid.FromSlice(3, 1, []float64{0, math.Pi / 2, math.Pi})
	m := c.Apply(mp)
	want := []float64{1, 0.5, 0}
	for i, w := range want {
		if math.Abs(m.Data[i]-w) > 1e-12 {
			t.Errorf("cosine apply[%d] = %v, want %v", i, m.Data[i], w)
		}
	}
	g := c.Grad(mp, m)
	const eps = 1e-6
	for i, v := range mp.Data {
		p := c.Apply(grid.FromSlice(1, 1, []float64{v + eps}))
		q := c.Apply(grid.FromSlice(1, 1, []float64{v - eps}))
		fd := (p.Data[0] - q.Data[0]) / (2 * eps)
		if math.Abs(fd-g.Data[i]) > 1e-6 {
			t.Errorf("cosine grad[%d] = %v, fd %v", i, g.Data[i], fd)
		}
	}
}

func TestCosinePeriodicityMotivatesSigmoid(t *testing.T) {
	// The paper's stated reason for the sigmoid: the cosine is periodic, so
	// two distinct parameters map to the same mask value.
	var c Cosine
	a := c.Apply(grid.FromSlice(1, 1, []float64{1}))
	b := c.Apply(grid.FromSlice(1, 1, []float64{1 + 2*math.Pi}))
	if math.Abs(a.Data[0]-b.Data[0]) > 1e-12 {
		t.Error("cosine not periodic?")
	}
}

func TestBinarizeAndFinalOutput(t *testing.T) {
	m := grid.FromSlice(3, 1, []float64{0.3, 0.5, 0.7})
	b := Binarize(m, DefaultFinalThreshold)
	if b.Data[0] != 0 || b.Data[1] != 1 || b.Data[2] != 1 {
		t.Errorf("Binarize = %v", b.Data)
	}

	// A weak SRAF at M′ = 0.45: lost with output T_R = 0.5, kept with 0.4.
	mp := grid.FromSlice(1, 1, []float64{0.45})
	strict := FinalOutput(mp, DefaultBeta, 0.5, DefaultFinalThreshold)
	relaxed := FinalOutput(mp, DefaultBeta, 0.4, DefaultFinalThreshold)
	if strict.Data[0] != 0 {
		t.Error("T_R=0.5 output unexpectedly kept the weak SRAF")
	}
	if relaxed.Data[0] != 1 {
		t.Error("T_R=0.4 output lost the weak SRAF the paper's scheme keeps")
	}
}

func TestInitFromTargetIsCopy(t *testing.T) {
	tgt := grid.FromSlice(2, 1, []float64{0, 1})
	mp := InitFromTarget(tgt)
	mp.Set(0, 0, 9)
	if tgt.At(0, 0) != 0 {
		t.Error("InitFromTarget aliases the target")
	}
}

func TestRegionOption1HugsFeatures(t *testing.T) {
	tgt := grid.NewMat(32, 32)
	geom.FillRect(tgt, geom.Rect{X0: 10, Y0: 10, X1: 14, Y1: 14}, 1)
	r, err := Region(tgt, Option1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.At(7, 7) != 1 || r.At(16, 16) != 1 {
		t.Error("option 1 region does not include the margin")
	}
	if r.At(2, 2) != 0 || r.At(25, 25) != 0 {
		t.Error("option 1 region extends too far")
	}
}

func TestRegionOption2CoversLayoutBox(t *testing.T) {
	tgt := grid.NewMat(32, 32)
	geom.FillRect(tgt, geom.Rect{X0: 4, Y0: 4, X1: 6, Y1: 6}, 1)
	geom.FillRect(tgt, geom.Rect{X0: 24, Y0: 24, X1: 26, Y1: 26}, 1)
	r2, err := Region(tgt, Option2, 2)
	if err != nil {
		t.Fatal(err)
	}
	// The gap between the two features is inside option 2...
	if r2.At(15, 15) != 1 {
		t.Error("option 2 region does not cover the layout interior")
	}
	// ...but outside option 1 with the same margin.
	r1, err := Region(tgt, Option1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r1.At(15, 15) != 0 {
		t.Error("option 1 region unexpectedly covers the layout interior")
	}
	// Option 2 must be a superset of option 1.
	for i := range r1.Data {
		if r1.Data[i] > r2.Data[i] {
			t.Fatal("option 1 region not contained in option 2")
		}
	}
}

func TestRegionEmptyTargetAndBadOption(t *testing.T) {
	empty := grid.NewMat(8, 8)
	r, err := Region(empty, Option2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.Sum() != 0 {
		t.Error("empty target produced a nonzero option-2 region")
	}
	if _, err := Region(empty, RegionOption(7), 2); err == nil {
		t.Error("unknown region option accepted")
	}
}

func TestApplyRegionZeroesOutside(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := grid.NewMat(8, 8)
	for i := range g.Data {
		g.Data[i] = rng.NormFloat64()
	}
	region := grid.NewMat(8, 8)
	geom.FillRect(region, geom.Rect{X0: 2, Y0: 2, X1: 6, Y1: 6}, 1)
	ApplyRegion(g, region)
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			inside := x >= 2 && x < 6 && y >= 2 && y < 6
			if !inside && g.At(x, y) != 0 {
				t.Fatalf("gradient outside region not zeroed at (%d,%d)", x, y)
			}
		}
	}
}

func TestClampOutsideRegion(t *testing.T) {
	mp := grid.NewMat(4, 4)
	mp.Fill(0.7)
	region := grid.NewMat(4, 4)
	region.Set(1, 1, 1)
	ClampOutsideRegion(mp, region, -0.25)
	if mp.At(1, 1) != 0.7 {
		t.Error("in-region value clobbered")
	}
	if mp.At(0, 0) != -0.25 {
		t.Error("out-of-region value not clamped")
	}
}

func TestApplyRegionShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("shape mismatch did not panic")
		}
	}()
	ApplyRegion(grid.NewMat(4, 4), grid.NewMat(8, 8))
}
