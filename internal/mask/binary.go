// Package mask implements the mask parametrisation of pixel-based ILT: the
// differentiable binary functions that squash the unconstrained parameter
// image M′ into (0, 1) transmission values (Section III-C of the paper),
// the final hard binarization (Eq. 12), mask initialisation from the target,
// and the optimization-region options of Fig. 7.
package mask

import (
	"math"

	"repro/internal/grid"
)

// BinaryFunc is a differentiable elementwise map from the optimization
// parameter M′ to the (incompletely) binarized mask M ∈ (0, 1).
type BinaryFunc interface {
	// Apply returns M = f(M′).
	Apply(mp *grid.Mat) *grid.Mat
	// Grad returns dM/dM′ evaluated elementwise, given both M′ and the
	// already-computed M (so sigmoid-style functions avoid re-evaluation).
	Grad(mp, m *grid.Mat) *grid.Mat
}

// Sigmoid is the monotone binary function of Eq. (11):
// M = 1 / (1 + exp(−β(M′ − T_R))). The paper's contribution is the choice
// T_R = 0.5 during optimization (SRAFs emerge in opaque regions) and
// T_R = 0.4 for the final output (keeps more SRAFs after thresholding);
// conventional pixel ILT uses T_R = 0.
type Sigmoid struct {
	Beta float64 // steepness β (paper: 4)
	TR   float64 // translation T_R
}

// DefaultBeta is the steepness used by most pixel-based ILTs and the paper.
const DefaultBeta = 4.0

// Apply implements BinaryFunc.
func (s Sigmoid) Apply(mp *grid.Mat) *grid.Mat {
	out := grid.NewMat(mp.W, mp.H)
	for i, v := range mp.Data {
		x := s.Beta * (v - s.TR)
		if x >= 0 {
			out.Data[i] = 1 / (1 + math.Exp(-x))
		} else {
			e := math.Exp(x)
			out.Data[i] = e / (1 + e)
		}
	}
	return out
}

// Grad implements BinaryFunc: dM/dM′ = β·M·(1−M).
func (s Sigmoid) Grad(_, m *grid.Mat) *grid.Mat {
	out := grid.NewMat(m.W, m.H)
	for i, v := range m.Data {
		out.Data[i] = s.Beta * v * (1 - v)
	}
	return out
}

// Cosine is the periodic binary function of Eq. (10), M = (1 + cos M′)/2,
// used by Poonawala & Milanfar. It is kept as a baseline: its periodicity
// is why the sigmoid replaced it (Section III-C).
type Cosine struct{}

// Apply implements BinaryFunc.
func (Cosine) Apply(mp *grid.Mat) *grid.Mat {
	out := grid.NewMat(mp.W, mp.H)
	for i, v := range mp.Data {
		out.Data[i] = (1 + math.Cos(v)) / 2
	}
	return out
}

// Grad implements BinaryFunc: dM/dM′ = −sin(M′)/2.
func (Cosine) Grad(mp, _ *grid.Mat) *grid.Mat {
	out := grid.NewMat(mp.W, mp.H)
	for i, v := range mp.Data {
		out.Data[i] = -math.Sin(v) / 2
	}
	return out
}

// DefaultFinalThreshold is t_m of Eq. (12).
const DefaultFinalThreshold = 0.5

// Binarize applies the final hard threshold of Eq. (12), producing the
// complete binarized mask M_out ∈ {0, 1}.
func Binarize(m *grid.Mat, tm float64) *grid.Mat {
	return m.Threshold(tm)
}

// FinalOutput produces the manufactured mask from the optimization
// parameter M′ using the paper's two-T_R scheme: the sigmoid is
// re-evaluated with outputTR (0.4 in the paper, smaller than the
// optimization T_R of 0.5 so that weak SRAFs survive) and then hard
// thresholded at t_m.
func FinalOutput(mp *grid.Mat, beta, outputTR, tm float64) *grid.Mat {
	return Binarize(Sigmoid{Beta: beta, TR: outputTR}.Apply(mp), tm)
}

// InitFromTarget returns the initial parameter image M′ of Algorithm 1
// line 3: M′ is seeded directly with the (pooled) target.
func InitFromTarget(target *grid.Mat) *grid.Mat {
	return target.Clone()
}
