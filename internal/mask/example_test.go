package mask_test

import (
	"fmt"

	"repro/internal/grid"
	"repro/internal/mask"
)

func ExampleSigmoid() {
	// The paper's improved binary function: β = 4, T_R = 0.5 maps the
	// target seed {0, 1} to {≈0.12, ≈0.88} (Section III-C).
	s := mask.Sigmoid{Beta: mask.DefaultBeta, TR: 0.5}
	mp := grid.FromSlice(2, 1, []float64{0, 1})
	m := s.Apply(mp)
	fmt.Printf("f(0)=%.3f f(1)=%.3f\n", m.Data[0], m.Data[1])
	// Output:
	// f(0)=0.119 f(1)=0.881
}

func ExampleFinalOutput() {
	// A weak SRAF at M' = 0.45 survives the paper's output T_R = 0.4 but
	// not the optimization T_R = 0.5.
	mp := grid.FromSlice(1, 1, []float64{0.45})
	strict := mask.FinalOutput(mp, mask.DefaultBeta, 0.5, mask.DefaultFinalThreshold)
	relaxed := mask.FinalOutput(mp, mask.DefaultBeta, 0.4, mask.DefaultFinalThreshold)
	fmt.Printf("T_R=0.5 keeps: %v, T_R=0.4 keeps: %v\n", strict.Data[0] == 1, relaxed.Data[0] == 1)
	// Output:
	// T_R=0.5 keeps: false, T_R=0.4 keeps: true
}
