package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/fft"
	"repro/internal/grid"
	"repro/internal/layout"
	"repro/internal/litho"
	"repro/internal/metrics"
	"repro/internal/telemetry"
)

// Config sizes a Server. The zero value selects the defaults noted per
// field.
type Config struct {
	// QueueCap bounds the number of *waiting* jobs; submissions beyond it
	// get 429 with a Retry-After hint (default 16).
	QueueCap int
	// Executors is the number of jobs run concurrently (default 2).
	Executors int
	// Limits bounds individual job requests.
	Limits Limits
	// Recorder receives server-level counters and is exported at
	// /debug/vars and /metrics. Nil creates a private recorder.
	Recorder *telemetry.Recorder
	// Now substitutes the clock used for job recorders (tests pin it for
	// golden event streams). Nil means time.Now.
	Now func() time.Time
}

// Server is the long-running ILT service: an http.Handler exposing job
// submission, status, cancellation, SSE progress streams, health and
// metrics, over a bounded two-priority queue and a fixed executor pool.
//
// Shared across jobs: the kernel-model cache (keyed by optics config),
// one fft.PlanCache, and the server recorder. Per job: process, simulator
// (with its scratch pools), optimizer, recorder, event log — see the
// package comment for the re-entrancy contract.
type Server struct {
	cfg    Config
	mux    *http.ServeMux
	rec    *telemetry.Recorder
	models modelCache
	plans  fft.PlanCache
	queue  *jobQueue

	// Server-level latency distributions, resolved once at New so the
	// executor/SSE paths observe without registry lookups.
	histQueueWait *telemetry.Histogram
	histRun       *telemetry.Histogram
	histSSEFlush  *telemetry.Histogram

	mu     sync.Mutex
	jobs   map[string]*Job
	nextID int64

	draining  atomic.Bool
	executors sync.WaitGroup
	accepted  sync.WaitGroup // one unit per accepted, not-yet-terminal job
}

// New builds a Server and starts its executor pool. Callers must Drain
// (or Close) it to stop the executors.
func New(cfg Config) *Server {
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 16
	}
	if cfg.Executors <= 0 {
		cfg.Executors = 2
	}
	cfg.Limits = cfg.Limits.withDefaults()
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	rec := cfg.Recorder
	if rec == nil {
		rec = telemetry.New()
	}
	s := &Server{
		cfg:   cfg,
		rec:   rec,
		queue: newJobQueue(cfg.QueueCap),
		jobs:  map[string]*Job{},

		histQueueWait: rec.Histogram("server.queue_wait", telemetry.HistDuration),
		histRun:       rec.Histogram("server.run", telemetry.HistDuration),
		histSSEFlush:  rec.Histogram("server.sse_flush", telemetry.HistDuration),
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /jobs", s.handleList)
	s.mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /jobs/{id}/mask", s.handleMask)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	telemetry.AttachDebug(s.mux, rec)

	for i := 0; i < cfg.Executors; i++ {
		s.executors.Add(1)
		go s.executor()
	}
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Drain performs the SIGTERM shutdown: new submissions are rejected with
// 503, every already-accepted job (queued or running) is finished, then
// the executors exit. If ctx expires first, all outstanding jobs are
// cancelled, the drain completes with whatever that leaves, and ctx's
// error is returned. Idempotent.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	s.queue.close()

	finished := make(chan struct{})
	go func() {
		s.executors.Wait()
		s.accepted.Wait()
		close(finished)
	}()
	select {
	case <-finished:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for _, j := range s.jobs {
			if !j.State().Terminal() {
				j.Cancel()
			}
		}
		s.mu.Unlock()
		<-finished
		return ctx.Err()
	}
}

// Close cancels everything and drains immediately.
func (s *Server) Close() error {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := s.Drain(ctx)
	if err == context.Canceled {
		err = nil
	}
	return err
}

// Draining reports whether the server has begun shutting down.
func (s *Server) Draining() bool { return s.draining.Load() }

// Job looks up a job by ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// --- submission -----------------------------------------------------------

// submitReply is the JSON body of a successful POST /jobs.
type submitReply struct {
	ID       string   `json:"id"`
	State    JobState `json:"state"`
	Priority string   `json:"priority"`
	Queued   int      `json:"queued"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		httpError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.Limits.MaxBodyBytes))
	if err != nil {
		httpError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	spec, err := ParseJobRequest(body, s.cfg.Limits)
	if err != nil {
		s.rec.Add("server.jobs_rejected_invalid", 1)
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}

	j := s.newJob(spec)
	if err := s.queue.push(j); err != nil {
		s.forgetJob(j)
		switch err {
		case ErrQueueFull:
			s.rec.Add("server.jobs_rejected_full", 1)
			w.Header().Set("Retry-After", "1")
			httpError(w, http.StatusTooManyRequests, "queue full (%d waiting)", s.cfg.QueueCap)
		default:
			httpError(w, http.StatusServiceUnavailable, "server is draining")
		}
		return
	}
	s.rec.Add("server.jobs_submitted", 1)
	qi, qb := s.queue.depth()
	writeJSON(w, http.StatusAccepted, submitReply{
		ID: j.ID, State: StateQueued, Priority: j.Priority.String(), Queued: qi + qb,
	})
}

// newJob registers a job with its recorder, context and accounting. The
// job's recorder uses the server clock and feeds the job's event log; its
// first event records acceptance so SSE streams always open with one line.
func (s *Server) newJob(spec *JobSpec) *Job {
	ctx, cancel := context.WithCancel(context.Background())
	j := &Job{
		Name:     spec.Name,
		Priority: spec.Priority,
		spec:     spec,
		ctx:      ctx,
		cancel:   cancel,
		state:    StateQueued,
		created:  time.Now(),
		done:     make(chan struct{}),
	}
	j.events.init()
	j.rec = telemetry.New(
		telemetry.WithClock(s.cfg.Now),
		telemetry.WithSink(&j.events),
	)

	s.mu.Lock()
	s.nextID++
	j.ID = "job-" + strconv.FormatInt(s.nextID, 10)
	s.jobs[j.ID] = j
	s.mu.Unlock()
	s.accepted.Add(1)
	go func() {
		<-j.done
		s.accepted.Done()
	}()

	j.rec.Emit("job.accepted", telemetry.Fields{
		"id": j.ID, "name": j.Name, "priority": j.Priority.String(),
		"n": j.spec.Target.W, "stages": len(j.spec.Stages),
	})
	return j
}

// forgetJob rolls back newJob for a submission the queue rejected.
func (s *Server) forgetJob(j *Job) {
	s.mu.Lock()
	delete(s.jobs, j.ID)
	s.mu.Unlock()
	j.cancel()
	j.closeEvents() // releases the accepted-WaitGroup unit
}

// --- execution ------------------------------------------------------------

func (s *Server) executor() {
	defer s.executors.Done()
	for {
		j, ok := s.queue.pop()
		if !ok {
			return
		}
		if !j.markRunning() {
			continue // canceled while queued
		}
		s.histQueueWait.ObserveDuration(time.Since(j.created))
		s.runJob(j)
	}
}

// runJob executes one job end to end on the calling executor goroutine.
// Everything it constructs — process, simulator, optimizer — is private to
// the job; the only shared inputs are the immutable kernel model, the
// singleflight plan cache and the server recorder's atomic counters.
func (s *Server) runJob(j *Job) {
	rec := j.rec
	spec := j.spec
	rec.Emit("run.start", telemetry.Fields{
		"tool": "iltserver", "name": j.Name, "id": j.ID,
		"n": spec.Target.W, "field_nm": spec.Optics.FieldNM, "kernels": spec.Optics.NumKernels,
	})

	model, built, err := s.models.get(spec.Optics)
	if err != nil {
		s.finishJob(j, StateFailed, fmt.Sprintf("optics: %v", err), nil, nil)
		return
	}
	if built {
		s.rec.Add("server.model_builds", 1)
	} else {
		s.rec.Add("server.model_hits", 1)
	}

	p := litho.NewProcess(model)
	p.Sim.Plans = &s.plans
	p.Sim.Workers = spec.Req.Workers
	// Engine validity was checked at submit time (resolveJob).
	p.Sim.Engine, _ = litho.ParseEngine(spec.Req.Engine)
	p.Sim.Recorder = rec

	opts := core.DefaultOptions(p)
	opts.Recorder = rec
	opts.Workers = spec.Req.Workers
	opts.Momentum = spec.Req.Momentum
	opts.LineSearch = spec.Req.LineSearch
	opts.Patience = spec.Req.Patience
	if spec.Req.TV > 0 {
		opts.Penalties = append(opts.Penalties, core.TVPenalty{Lambda: spec.Req.TV})
	}
	if spec.Req.Curvature > 0 {
		opts.Penalties = append(opts.Penalties, core.CurvaturePenalty{Lambda: spec.Req.Curvature})
	}

	o, err := core.New(opts, spec.Target)
	if err != nil {
		s.finishJob(j, StateFailed, err.Error(), nil, nil)
		return
	}
	res, err := o.Run(j.ctx, spec.Stages)
	if err != nil {
		if j.ctx.Err() != nil {
			s.finishJob(j, StateCanceled, "canceled", nil, nil)
		} else {
			s.finishJob(j, StateFailed, err.Error(), nil, nil)
		}
		return
	}

	result := &JobResult{
		Iterations: res.Iterations,
		ILTSeconds: res.ILTSeconds,
		MaskSHA256: maskFingerprint(res.Mask),
	}
	if n := len(res.History); n > 0 {
		result.FinalLoss = res.History[n-1].Loss.Total()
	}
	if spec.Req.Metrics {
		px := spec.Optics.FieldNM / float64(spec.Target.W)
		spacing, thr := epeParams(px)
		rep, err := metrics.Evaluate(p, res.Mask, spec.Target, spacing, thr)
		if err != nil {
			s.finishJob(j, StateFailed, fmt.Sprintf("metrics: %v", err), nil, nil)
			return
		}
		rep = rep.Scale(px)
		result.L2, result.PVB = &rep.L2, &rep.PVB
		result.EPE, result.Shots = &rep.EPE, &rep.Shots
	}
	rec.Emit("run.end", telemetry.Fields{
		"wall_sec": rec.Elapsed(), "ilt_sec": res.ILTSeconds,
		"iterations": res.Iterations, "mask_sha256": result.MaskSHA256,
	})
	s.finishJob(j, StateDone, "", result, res.Mask)
}

// finishJob closes the job's recorder (flushing the phases event into the
// SSE log), folds the job's aggregates into the server recorder so /metrics
// reports cross-job phase totals and latency distributions, records the
// terminal state and bumps the server counters.
func (s *Server) finishJob(j *Job, state JobState, errMsg string, res *JobResult, m *grid.Mat) {
	_ = j.rec.Close() // sinks are in-memory; Close cannot fail, but errcheck keeps us honest
	s.rec.Merge(j.rec)
	if started := j.startedAt(); !started.IsZero() {
		s.histRun.ObserveDuration(time.Since(started))
	}
	j.finish(state, errMsg, res, m)
	switch state {
	case StateDone:
		s.rec.Add("server.jobs_completed", 1)
	case StateFailed:
		s.rec.Add("server.jobs_failed", 1)
	case StateCanceled:
		s.rec.Add("server.jobs_canceled", 1)
	}
}

func epeParams(pixelNM float64) (spacingPx, thrPx int) {
	spacingPx = int(math.Round(metrics.EPESpacingNM / pixelNM))
	if spacingPx < 1 {
		spacingPx = 1
	}
	thrPx = int(math.Round(metrics.EPEThresholdNM / pixelNM))
	if thrPx < 1 {
		thrPx = 1
	}
	return spacingPx, thrPx
}

// --- status / cancel / artifacts ------------------------------------------

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	ids := make([]string, 0, len(s.jobs))
	for id := range s.jobs {
		ids = append(ids, id)
	}
	jobs := make([]*Job, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()

	out := make([]statusJSON, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.status())
	}
	// Deterministic order: job-N ids sort by the numeric suffix.
	sort.Slice(out, func(a, b int) bool { return jobSeq(out[a].ID) < jobSeq(out[b].ID) })
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	if j.Cancel() {
		s.rec.Add("server.jobs_canceled", 1)
	}
	writeJSON(w, http.StatusOK, j.status())
}

func (s *Server) handleMask(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	j.mu.Lock()
	m := j.mask
	state := j.state
	j.mu.Unlock()
	if m == nil {
		httpError(w, http.StatusConflict, "job %s has no mask (state %s)", j.ID, state)
		return
	}
	px := j.spec.Optics.FieldNM / float64(m.W)
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if err := layout.FromMask(m, px).Write(w); err != nil {
		// Too late for a status change; the client sees a short read.
		return
	}
}

// --- SSE ------------------------------------------------------------------

// handleEvents streams the job's event log as server-sent events: each
// telemetry event becomes one SSE frame with the event name, the seq as
// the SSE id, and the trace-sink JSON object as data. The stream replays
// history first, then follows live until the job reaches a terminal state
// (the final frame is "event: end") or the client disconnects.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	sent := 0
	for {
		lines, names, done, changed := j.events.wait(sent)
		flushStart := time.Now()
		for i, b := range lines {
			fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", sent+i+1, names[i], b)
		}
		sent += len(lines)
		fl.Flush()
		if len(lines) > 0 { // empty wakeups would only measure the latch
			s.histSSEFlush.ObserveDuration(time.Since(flushStart))
		}
		if done {
			fmt.Fprint(w, "event: end\ndata: {}\n\n")
			fl.Flush()
			return
		}
		select {
		case <-changed:
		case <-r.Context().Done():
			return
		}
	}
}

// --- health / metrics -----------------------------------------------------

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.draining.Load() {
		status = "draining"
	}
	qi, qb := s.queue.depth()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":    status,
		"queued":    qi + qb,
		"executors": s.cfg.Executors,
	})
}

// metricsJSON is the GET /metrics document: the server recorder snapshot
// (the same data the "ilt" expvar exports) plus queue and runtime gauges.
type metricsJSON struct {
	ElapsedSec   float64        `json:"elapsed_sec"`
	QueueDepth   int            `json:"queue_depth"`
	QueueHigh    int            `json:"queue_interactive"`
	Jobs         map[string]int `json:"jobs_by_state"`
	CachedModels int            `json:"cached_models"`
	CachedPlans  int            `json:"cached_fft_plans"`
	// Shared FFT transform-table dedup (see internal/fft tables.go): total
	// payload bytes of the tables built by this process, and how many plan
	// constructions reused an existing set.
	FFTTableBytes int64                  `json:"fft_table_bytes"`
	FFTTableReuse int64                  `json:"fft_table_reuse"`
	Counters      map[string]int64       `json:"counters"`
	Phases        []telemetry.PhaseStat  `json:"phases,omitempty"`
	Histograms    []telemetry.HistStat   `json:"histograms,omitempty"`
	Runtime       telemetry.RuntimeStats `json:"runtime"`
}

// handleMetrics negotiates on the Accept header: Prometheus scrapers (which
// send text/plain or application/openmetrics-text) get the text exposition;
// everything else — including header-less curl and the existing tests —
// keeps the JSON document.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if accept := r.Header.Get("Accept"); strings.Contains(accept, "text/plain") ||
		strings.Contains(accept, "application/openmetrics-text") {
		s.writePrometheusMetrics(w)
		return
	}
	qi, qb := s.queue.depth()
	writeJSON(w, http.StatusOK, metricsJSON{
		ElapsedSec:    s.rec.Elapsed(),
		QueueDepth:    qi + qb,
		QueueHigh:     qi,
		Jobs:          s.jobsByState(),
		CachedModels:  s.models.size(),
		CachedPlans:   s.plans.Sizes(),
		FFTTableBytes: fft.TableBytes(),
		FFTTableReuse: fft.TableReuse(),
		Counters:      s.rec.Counters(),
		Phases:        s.rec.Phases(),
		Histograms:    s.rec.Histograms(),
		Runtime:       telemetry.ReadRuntime(),
	})
}

func (s *Server) jobsByState() map[string]int {
	byState := map[string]int{}
	s.mu.Lock()
	for _, j := range s.jobs {
		byState[string(j.State())]++
	}
	s.mu.Unlock()
	return byState
}

// writePrometheusMetrics renders the text exposition: queue/cache/job
// gauges, then the recorder's counters, phase totals and histogram series,
// then the runtime block. The jobs gauge always emits all five lifecycle
// states so the series set is stable from boot.
func (s *Server) writePrometheusMetrics(w http.ResponseWriter) {
	byState := s.jobsByState()
	qi, qb := s.queue.depth()

	var buf bytes.Buffer
	telemetry.WriteGauge(&buf, "ilt_queue_depth", float64(qi+qb))
	telemetry.WriteGauge(&buf, "ilt_queue_interactive", float64(qi))
	telemetry.WriteGauge(&buf, "ilt_cached_models", float64(s.models.size()))
	telemetry.WriteGauge(&buf, "ilt_cached_fft_plans", float64(s.plans.Sizes()))
	telemetry.WriteGauge(&buf, "ilt_fft_table_bytes", float64(fft.TableBytes()))
	fmt.Fprintf(&buf, "# TYPE ilt_fft_table_reuse_total counter\nilt_fft_table_reuse_total %d\n", fft.TableReuse())
	telemetry.WriteGauge(&buf, "ilt_elapsed_seconds", s.rec.Elapsed())
	fmt.Fprint(&buf, "# TYPE ilt_jobs gauge\n")
	for _, st := range []JobState{StateQueued, StateRunning, StateDone, StateFailed, StateCanceled} {
		fmt.Fprintf(&buf, "ilt_jobs{state=%q} %d\n", string(st), byState[string(st)])
	}
	s.rec.WritePrometheus(&buf)
	telemetry.ReadRuntime().WritePrometheus(&buf)

	w.Header().Set("Content-Type", telemetry.PrometheusContentType)
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(buf.Bytes()) // a failed write is the client's disconnect
}

// --- helpers --------------------------------------------------------------

// jobSeq extracts the numeric suffix of a "job-N" id (0 on mismatch).
func jobSeq(id string) int64 {
	n, _ := strconv.ParseInt(strings.TrimPrefix(id, "job-"), 10, 64)
	return n
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // a failed write is the client's disconnect
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}
