package server

import (
	"sync"

	"repro/internal/optics"
)

// modelCache is a singleflight cache of SOCS kernel models keyed by the
// (comparable) optics configuration. Building a model — source
// discretisation, TCC assembly, eigendecomposition — is by far the most
// expensive per-process setup step; jobs sharing process parameters share
// one build, and concurrent first requests block on a single construction
// instead of racing duplicate ones. Models are immutable after
// construction, so handing one *optics.Model to many concurrent jobs is
// safe (the fullchip tile pool has relied on this since PR 1).
type modelCache struct {
	slots sync.Map // optics.Config → *modelSlot
}

type modelSlot struct {
	once  sync.Once
	model *optics.Model
	err   error
}

// get returns the cached model for cfg, building it exactly once. The
// second result reports whether this call performed the build (for the
// server's cache-hit accounting).
func (c *modelCache) get(cfg optics.Config) (*optics.Model, bool, error) {
	v, ok := c.slots.Load(cfg)
	if !ok {
		v, _ = c.slots.LoadOrStore(cfg, &modelSlot{})
	}
	s := v.(*modelSlot)
	built := false
	s.once.Do(func() {
		built = true
		s.model, s.err = optics.BuildModel(cfg)
	})
	return s.model, built, s.err
}

// size reports the number of distinct configurations cached (including
// failed builds, which are negative-cached deliberately: a config that
// cannot build will never build).
func (c *modelCache) size() int {
	n := 0
	c.slots.Range(func(_, _ any) bool { n++; return true })
	return n
}
