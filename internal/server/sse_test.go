package server_test

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/telemetry"
)

// fakeClock is a deterministic telemetry clock: every reading advances one
// millisecond from a fixed epoch, so two identical runs see identical
// timestamps whenever their clock-call sequences match.
func fakeClock() func() time.Time {
	var n atomic.Int64
	base := time.Unix(1700000000, 0)
	return func() time.Time {
		return base.Add(time.Duration(n.Add(1)) * time.Millisecond)
	}
}

// sseFrame is one parsed server-sent event.
type sseFrame struct {
	ID    int
	Event string
	Data  string
}

// streamSSE collects a job's whole event stream through the terminal "end"
// frame.
func streamSSE(t *testing.T, base, id string) []sseFrame {
	t.Helper()
	resp, err := http.Get(base + "/jobs/" + id + "/events")
	if err != nil {
		t.Fatalf("events: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events: HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events: Content-Type %q", ct)
	}
	var frames []sseFrame
	cur := sseFrame{ID: -1}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if cur.Event != "" {
				frames = append(frames, cur)
				if cur.Event == "end" {
					return frames
				}
			}
			cur = sseFrame{ID: -1}
		case strings.HasPrefix(line, "id: "):
			fmt.Sscanf(line, "id: %d", &cur.ID)
		case strings.HasPrefix(line, "event: "):
			cur.Event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.Data = strings.TrimPrefix(line, "data: ")
		}
	}
	t.Fatalf("stream ended without an end frame (%d frames, err %v)", len(frames), sc.Err())
	return nil
}

// normalizeFrame zeroes wall-clock-valued fields (at any nesting depth) so
// two runs of the same job can be compared exactly: everything numeric
// that is *not* timing — losses, steps, seq, iteration indices, counters —
// must be bit-identical; timing may not be.
func normalizeFrame(t *testing.T, f sseFrame) sseFrame {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal([]byte(f.Data), &m); err != nil {
		t.Fatalf("frame %d (%s): data is not JSON: %v", f.ID, f.Event, err)
	}
	scrubTiming(m)
	b, err := json.Marshal(m) // map keys marshal sorted: canonical form
	if err != nil {
		t.Fatal(err)
	}
	f.Data = string(b)
	return f
}

func scrubTiming(v any) {
	m, ok := v.(map[string]any)
	if !ok {
		return
	}
	for k, val := range m {
		switch k {
		case "ts", "sec", "wall_sec", "ilt_sec",
			"sum", "p50", "p95", "p99": // histogram summaries are wall-clock-valued
			m[k] = 0.0
		default:
			scrubTiming(val)
		}
	}
}

// runSSEJob runs smallJob on a fresh deterministic-clock server and
// returns its full event stream.
func runSSEJob(t *testing.T) []sseFrame {
	t.Helper()
	_, base := newTestServer(t, server.Config{Executors: 1, Now: fakeClock()})
	code, id, _ := submit(t, base, smallJob)
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	frames := streamSSE(t, base, id)
	waitState(t, base, id, "done", time.Minute)
	return frames
}

// TestSSEGoldenStream pins the serving contract end to end: the stream has
// the documented envelope, its data lines form a trace that passes the
// repo's trace validator, and an identical job replayed on a fresh server
// produces an identical stream modulo timing fields — the determinism the
// soak test asserts on fingerprints, here asserted on every event payload.
func TestSSEGoldenStream(t *testing.T) {
	first := runSSEJob(t)
	second := runSSEJob(t)

	// Envelope: opens with job acceptance, runs 5 iterations over 2 stages,
	// closes with run.end, the recorder's phases flush, then the end frame.
	names := make([]string, len(first))
	for i, f := range first {
		names[i] = f.Event
	}
	want := []string{
		"job.accepted", "run.start",
		"stage.start", "iter", "iter", "iter", "stage.end",
		"stage.start", "iter", "iter", "stage.end",
		"run.end", "phases", "end",
	}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("event sequence:\n got %v\nwant %v", names, want)
	}
	for i, f := range first[:len(first)-1] { // "end" carries no id
		if f.ID != i+1 {
			t.Errorf("frame %d has SSE id %d, want %d", i, f.ID, i+1)
		}
	}

	// The data lines are exactly the trace-sink JSONL encoding: the stream,
	// replayed as a file, must satisfy the tracecheck invariants (seq
	// contiguous from 1, ts non-decreasing, schema fields present).
	var trace strings.Builder
	for _, f := range first {
		if f.Event == "end" {
			continue
		}
		trace.WriteString(f.Data)
		trace.WriteByte('\n')
	}
	stats, err := telemetry.ValidateTrace(strings.NewReader(trace.String()))
	if err != nil {
		t.Fatalf("SSE stream fails trace validation: %v", err)
	}
	if stats.Iters != 5 {
		t.Errorf("trace stats report %d iters, want 5", stats.Iters)
	}

	// Determinism: frame-by-frame equality once timing is scrubbed. Losses,
	// steps and every other numeric payload must match to the last bit.
	if len(first) != len(second) {
		t.Fatalf("stream lengths differ: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i].Event == "end" {
			continue
		}
		a, b := normalizeFrame(t, first[i]), normalizeFrame(t, second[i])
		if a != b {
			t.Errorf("frame %d differs between runs:\n run1: %+v\n run2: %+v", i, a, b)
		}
	}
}

// TestSSEReplayAfterCompletion: a client connecting after the job finished
// still receives the full history and an immediate end frame.
func TestSSEReplayAfterCompletion(t *testing.T) {
	_, base := newTestServer(t, server.Config{Executors: 1})
	code, id, _ := submit(t, base, smallJob)
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	waitState(t, base, id, "done", time.Minute)

	frames := streamSSE(t, base, id)
	if len(frames) < 3 {
		t.Fatalf("replay returned %d frames", len(frames))
	}
	if frames[0].Event != "job.accepted" || frames[len(frames)-1].Event != "end" {
		t.Errorf("replay envelope wrong: first %q last %q",
			frames[0].Event, frames[len(frames)-1].Event)
	}
}
