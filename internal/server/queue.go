package server

import (
	"errors"
	"sync"
)

// ErrQueueFull is returned by push when the queue holds its capacity of
// waiting jobs; the HTTP layer maps it to 429 with a Retry-After hint.
var ErrQueueFull = errors.New("server: job queue full")

// ErrQueueClosed is returned by push after close — the server is draining
// and accepts no new work; the HTTP layer maps it to 503.
var ErrQueueClosed = errors.New("server: job queue closed")

// jobQueue is a bounded, two-priority FIFO. Capacity bounds only the
// *waiting* jobs — running jobs have already left the queue, so the
// admission bound and the concurrency bound (the executor count) compose
// independently. All methods are safe for concurrent use.
type jobQueue struct {
	mu          sync.Mutex
	nonEmpty    *sync.Cond
	capacity    int
	interactive []*Job
	batch       []*Job
	closed      bool
}

func newJobQueue(capacity int) *jobQueue {
	q := &jobQueue{capacity: capacity}
	q.nonEmpty = sync.NewCond(&q.mu)
	return q
}

// push enqueues a job in its priority class, rejecting when full or closed.
func (q *jobQueue) push(j *Job) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrQueueClosed
	}
	if len(q.interactive)+len(q.batch) >= q.capacity {
		return ErrQueueFull
	}
	if j.Priority == PriorityInteractive {
		q.interactive = append(q.interactive, j)
	} else {
		q.batch = append(q.batch, j)
	}
	q.nonEmpty.Signal()
	return nil
}

// pop blocks until a job is available (interactive before batch, FIFO
// within a class) or the queue is closed and empty, reporting ok=false in
// the latter case. A closed queue still hands out its remaining jobs —
// drain semantics: accepted work is finished, new work is rejected.
func (q *jobQueue) pop() (*Job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.interactive) == 0 && len(q.batch) == 0 && !q.closed {
		q.nonEmpty.Wait()
	}
	if len(q.interactive) > 0 {
		j := q.interactive[0]
		q.interactive = q.interactive[1:]
		return j, true
	}
	if len(q.batch) > 0 {
		j := q.batch[0]
		q.batch = q.batch[1:]
		return j, true
	}
	return nil, false // closed and empty
}

// depth reports the waiting counts per class.
func (q *jobQueue) depth() (interactive, batch int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.interactive), len(q.batch)
}

// close stops admission and wakes every blocked pop so executors can
// drain the remaining jobs and exit.
func (q *jobQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.nonEmpty.Broadcast()
}
