package server_test

import (
	"testing"

	"repro/internal/server"
)

// FuzzParseJobRequest drives arbitrary bytes through the submission parser.
// The contract under fuzz: never panic, never accept garbage — any spec
// that comes back error-free must be fully resolved (target raster, a
// non-empty validated schedule, in-range knobs), because executors run it
// without further checks.
func FuzzParseJobRequest(f *testing.F) {
	seeds := []string{
		// Valid shapes, so the fuzzer explores the deep paths too.
		`{"case":1}`,
		`{"case":7,"n":256,"field_nm":1024,"kernels":12,"recipe":"exact","iterdiv":10}`,
		`{"via":3,"recipe":"via","priority":"interactive","metrics":true}`,
		`{"case":1,"n":128,"field_nm":512,"kernels":8,"workers":1,"stages":[{"scale":4,"iters":3},{"scale":2,"iters":2}]}`,
		`{"layout":"SIZE 128\nPIXEL 4\nRECT 10 10 50 30\n"}`,
		`{"case":2,"momentum":0.9,"linesearch":true,"tv":0.001,"curvature":0.0005,"patience":5}`,
		// Malformed / hostile shapes.
		``,
		`null`,
		`[]`,
		`{"case":1,"unknown_field":true}`,
		`{"case":1} trailing`,
		`{"case":1,"n":-128}`,
		`{"case":1,"n":1073741824}`,
		`{"case":1,"n":127}`,
		`{"case":1,"field_nm":1e308}`,
		`{"case":1,"field_nm":-5}`,
		`{"case":1,"momentum":1.0}`,
		`{"case":1,"kernels":100000}`,
		`{"case":21}`,
		`{"case":1,"via":1}`,
		`{"case":1,"recipe":"fast","stages":[{"scale":1,"iters":1}]}`,
		`{"case":1,"stages":[{"scale":0,"iters":1}]}`,
		`{"case":1,"stages":[{"scale":4,"iters":-1}]}`,
		`{"case":1,"n":128,"field_nm":512,"stages":[{"scale":64,"iters":1}]}`,
		`{"case":1,"iterdiv":0}`,
		`{"case":1,"iterdiv":-3}`,
		`{"case":1,"workers":-1}`,
		`{"case":1,"priority":"asap"}`,
		`{"layout":"SIZE 0\n"}`,
		`{"layout":"RECT 1 2 3"}`,
		`{"layout":"SIZE 128\nRECT -5 -5 byte overflow\n"}`,
		`{"case":1,"stages":[` + repeatStage(40) + `{"scale":1,"iters":1}]}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	lim := server.Limits{MaxN: 1024} // small cap keeps fuzz iterations cheap
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := server.ParseJobRequest(data, lim)
		if err != nil {
			if spec != nil {
				t.Fatalf("error %v alongside a non-nil spec", err)
			}
			return
		}
		if spec.Target == nil || spec.Target.W < 64 || spec.Target.W > 1024 {
			t.Fatalf("accepted spec with bad target: %+v", spec.Target)
		}
		if len(spec.Stages) == 0 || len(spec.Stages) > 16 {
			t.Fatalf("accepted spec with %d stages", len(spec.Stages))
		}
		total := 0
		for _, st := range spec.Stages {
			if st.Scale < 1 || spec.Target.W%st.Scale != 0 {
				t.Fatalf("accepted stage with scale %d for n=%d", st.Scale, spec.Target.W)
			}
			total += st.Iters
		}
		if total > 2000 {
			t.Fatalf("accepted %d total iterations over the default budget", total)
		}
		if err := spec.Optics.Validate(); err != nil {
			t.Fatalf("accepted invalid optics config: %v", err)
		}
		if spec.Req.Momentum < 0 || spec.Req.Momentum >= 1 {
			t.Fatalf("accepted momentum %g", spec.Req.Momentum)
		}
	})
}

func repeatStage(n int) string {
	out := ""
	for i := 0; i < n; i++ {
		out += `{"scale":1,"iters":1},`
	}
	return out
}
