package server

import (
	"errors"
	"testing"
)

func qjob(p Priority) *Job { return &Job{Priority: p} }

func TestQueuePriorityOrdering(t *testing.T) {
	q := newJobQueue(8)
	b1, b2 := qjob(PriorityBatch), qjob(PriorityBatch)
	i1, i2 := qjob(PriorityInteractive), qjob(PriorityInteractive)
	for _, j := range []*Job{b1, i1, b2, i2} {
		if err := q.push(j); err != nil {
			t.Fatalf("push: %v", err)
		}
	}
	// Interactive drains first, FIFO within each class.
	want := []*Job{i1, i2, b1, b2}
	for k, w := range want {
		j, ok := q.pop()
		if !ok || j != w {
			t.Fatalf("pop %d: got %p ok=%v, want %p", k, j, ok, w)
		}
	}
}

func TestQueueFull(t *testing.T) {
	q := newJobQueue(2)
	if err := q.push(qjob(PriorityBatch)); err != nil {
		t.Fatalf("push 1: %v", err)
	}
	if err := q.push(qjob(PriorityInteractive)); err != nil {
		t.Fatalf("push 2: %v", err)
	}
	// Capacity is shared across classes: a third job of either class bounces.
	if err := q.push(qjob(PriorityInteractive)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("push beyond capacity: err = %v, want ErrQueueFull", err)
	}
}

func TestQueueCloseDrainsRemaining(t *testing.T) {
	q := newJobQueue(4)
	j1, j2 := qjob(PriorityBatch), qjob(PriorityBatch)
	if err := q.push(j1); err != nil {
		t.Fatal(err)
	}
	if err := q.push(j2); err != nil {
		t.Fatal(err)
	}
	q.close()
	// Closed queue rejects new work but still hands out accepted work.
	if err := q.push(qjob(PriorityBatch)); !errors.Is(err, ErrQueueClosed) {
		t.Fatalf("push after close: err = %v, want ErrQueueClosed", err)
	}
	if j, ok := q.pop(); !ok || j != j1 {
		t.Fatalf("pop after close: got %p ok=%v, want %p", j, ok, j1)
	}
	if j, ok := q.pop(); !ok || j != j2 {
		t.Fatalf("pop after close: got %p ok=%v, want %p", j, ok, j2)
	}
	if _, ok := q.pop(); ok {
		t.Fatal("pop on closed empty queue reported ok")
	}
}

func TestQueueCloseWakesBlockedPop(t *testing.T) {
	q := newJobQueue(1)
	done := make(chan bool)
	go func() {
		_, ok := q.pop()
		done <- ok
	}()
	q.close()
	if ok := <-done; ok {
		t.Fatal("blocked pop returned a job after close of an empty queue")
	}
}
