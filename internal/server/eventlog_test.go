package server

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/telemetry"
)

// TestEventLogConcurrentReplay races several producers appending into one
// eventLog against followers running the SSE reader's exact
// replay-then-follow loop (wait, consume, park on changed). Under -race it
// pins the log's locking discipline; the asserts pin replay completeness
// (every follower sees every line exactly once, in the same order) and
// the one-shot markDone contract.
func TestEventLogConcurrentReplay(t *testing.T) {
	const producers = 4
	const perProducer = 200
	const readers = 3

	var l eventLog
	l.init()

	var prod sync.WaitGroup
	for p := 0; p < producers; p++ {
		prod.Add(1)
		go func(p int) {
			defer prod.Done()
			for i := 0; i < perProducer; i++ {
				l.Emit(telemetry.Event{
					Name:   fmt.Sprintf("p%d", p),
					Fields: telemetry.Fields{"i": i},
				})
			}
		}(p)
	}

	got := make([][]string, readers)
	var follow sync.WaitGroup
	for r := 0; r < readers; r++ {
		follow.Add(1)
		go func(r int) {
			defer follow.Done()
			from := 0
			for {
				lines, names, done, changed := l.wait(from)
				if len(lines) != len(names) {
					t.Errorf("reader %d: %d lines but %d names", r, len(lines), len(names))
					return
				}
				for i := range lines {
					if len(lines[i]) == 0 {
						t.Errorf("reader %d: empty marshaled line at %d", r, from+i)
					}
					got[r] = append(got[r], names[i])
				}
				from += len(lines)
				if done {
					return
				}
				<-changed
			}
		}(r)
	}

	prod.Wait()
	if !l.markDone() {
		t.Error("first markDone returned false")
	}
	if l.markDone() {
		t.Error("second markDone returned true; seal must be one-shot")
	}
	follow.Wait()

	const total = producers * perProducer
	if n := l.len(); n != total {
		t.Fatalf("log holds %d lines, want %d", n, total)
	}
	for r := 0; r < readers; r++ {
		if len(got[r]) != total {
			t.Fatalf("reader %d replayed %d events, want %d", r, len(got[r]), total)
		}
	}
	// Every follower observed the one true append order.
	for r := 1; r < readers; r++ {
		for i := range got[0] {
			if got[r][i] != got[0][i] {
				t.Fatalf("reader %d diverges from reader 0 at %d: %s vs %s",
					r, i, got[r][i], got[0][i])
			}
		}
	}
	// And that order interleaves, rather than drops, every producer.
	counts := map[string]int{}
	for _, name := range got[0] {
		counts[name]++
	}
	for p := 0; p < producers; p++ {
		if c := counts[fmt.Sprintf("p%d", p)]; c != perProducer {
			t.Errorf("producer p%d contributed %d events, want %d", p, c, perProducer)
		}
	}
}
