package server_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/server"
)

// smallJob finishes in tens of milliseconds on one CPU: a 128-px grid with
// 8 kernels and a five-iteration two-level schedule. workers=1 keeps the
// event stream fully deterministic.
const smallJob = `{"case":1,"n":128,"field_nm":512,"kernels":8,"workers":1,
	"stages":[{"scale":4,"iters":3},{"scale":2,"iters":2}]}`

// longJob runs ~1500 coarse iterations — long enough that tests can observe
// and interrupt it mid-flight, short enough to finish if nobody does.
const longJob = `{"case":2,"n":128,"field_nm":512,"kernels":8,"workers":1,
	"stages":[{"scale":4,"iters":1500}]}`

// jobStatus mirrors the wire form of GET /jobs/{id}.
type jobStatus struct {
	ID     string `json:"id"`
	State  string `json:"state"`
	Error  string `json:"error,omitempty"`
	Events int    `json:"events"`
	Result *struct {
		Iterations int     `json:"iterations"`
		FinalLoss  float64 `json:"final_loss"`
		MaskSHA256 string  `json:"mask_sha256"`
	} `json:"result,omitempty"`
}

type metricsDoc struct {
	QueueDepth   int              `json:"queue_depth"`
	Jobs         map[string]int   `json:"jobs_by_state"`
	CachedModels int              `json:"cached_models"`
	CachedPlans  int              `json:"cached_fft_plans"`
	Counters     map[string]int64 `json:"counters"`
}

// newTestServer starts a Server behind httptest and tears both down in the
// right order (drain jobs first so SSE streams end, then close the listener).
func newTestServer(t *testing.T, cfg server.Config) (*server.Server, string) {
	t.Helper()
	s := server.New(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		if err := s.Close(); err != nil {
			t.Errorf("server close: %v", err)
		}
		ts.Close()
		http.DefaultClient.CloseIdleConnections()
	})
	return s, ts.URL
}

// submit POSTs a job body and returns the HTTP response and decoded reply.
func submit(t *testing.T, base, body string) (code int, id string, hdr http.Header) {
	t.Helper()
	resp, err := http.Post(base+"/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	defer resp.Body.Close()
	var reply struct {
		ID string `json:"id"`
	}
	_ = json.NewDecoder(resp.Body).Decode(&reply)
	return resp.StatusCode, reply.ID, resp.Header
}

func getStatus(t *testing.T, base, id string) jobStatus {
	t.Helper()
	resp, err := http.Get(base + "/jobs/" + id)
	if err != nil {
		t.Fatalf("status %s: %v", id, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %s: HTTP %d", id, resp.StatusCode)
	}
	var st jobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("status %s: decode: %v", id, err)
	}
	return st
}

func getMetrics(t *testing.T, base string) metricsDoc {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	defer resp.Body.Close()
	var m metricsDoc
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("metrics: decode: %v", err)
	}
	return m
}

// waitState polls a job until it reaches want (fatal on a different
// terminal state or timeout).
func waitState(t *testing.T, base, id, want string, timeout time.Duration) jobStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		st := getStatus(t, base, id)
		if st.State == want {
			return st
		}
		terminal := st.State == "done" || st.State == "failed" || st.State == "canceled"
		if terminal || time.Now().After(deadline) {
			t.Fatalf("job %s: state %q (error %q), want %q", id, st.State, st.Error, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// goldenSHA runs smallJob serially on a private server and returns its mask
// fingerprint — the reference every concurrent run must reproduce exactly.
func goldenSHA(t *testing.T) string {
	t.Helper()
	_, base := newTestServer(t, server.Config{Executors: 1})
	code, id, _ := submit(t, base, smallJob)
	if code != http.StatusAccepted {
		t.Fatalf("golden submit: HTTP %d", code)
	}
	st := waitState(t, base, id, "done", 2*time.Minute)
	if st.Result == nil || st.Result.MaskSHA256 == "" {
		t.Fatalf("golden job has no result: %+v", st)
	}
	return st.Result.MaskSHA256
}

// TestSoakConcurrentJobs is the load test the issue asks for: many
// concurrent jobs through a shared server must all complete, every result
// bit-identical to the serial golden run, with bounded heap growth and no
// leaked goroutines.
func TestSoakConcurrentJobs(t *testing.T) {
	const jobs = 12

	baselineGoroutines := runtime.NumGoroutine()
	golden := goldenSHA(t)

	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	s, base := newTestServer(t, server.Config{QueueCap: jobs + 4, Executors: 4})

	ids := make([]string, jobs)
	var wg sync.WaitGroup
	errs := make(chan error, jobs)
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := smallJob
			if i%3 == 0 { // mix priority classes; results must not change
				body = strings.Replace(body, `"workers":1,`, `"workers":1,"priority":"interactive",`, 1)
			}
			code, id, _ := submit(t, base, body)
			if code != http.StatusAccepted {
				errs <- fmt.Errorf("job %d: HTTP %d", i, code)
				return
			}
			ids[i] = id
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	for i, id := range ids {
		st := waitState(t, base, id, "done", 2*time.Minute)
		if st.Result == nil {
			t.Fatalf("job %d (%s): done without result", i, id)
		}
		if st.Result.MaskSHA256 != golden {
			t.Errorf("job %d (%s): mask %s differs from serial golden %s",
				i, id, st.Result.MaskSHA256, golden)
		}
	}

	m := getMetrics(t, base)
	if m.Jobs["done"] != jobs {
		t.Errorf("jobs_by_state = %v, want %d done", m.Jobs, jobs)
	}
	// All jobs share one optics config: the kernel model must have been
	// built exactly once and shared, likewise one FFT-plan set.
	if m.CachedModels != 1 {
		t.Errorf("cached_models = %d, want 1", m.CachedModels)
	}
	if m.Counters["server.model_builds"] != 1 {
		t.Errorf("server.model_builds = %d, want 1", m.Counters["server.model_builds"])
	}
	if hits := m.Counters["server.model_hits"]; hits != jobs-1 {
		t.Errorf("server.model_hits = %d, want %d", hits, jobs-1)
	}
	if m.CachedPlans == 0 {
		t.Errorf("cached_fft_plans = 0, want the shared plan cache populated")
	}

	if err := s.Close(); err != nil {
		t.Fatalf("drain: %v", err)
	}

	// Heap budget: a dozen 128-px jobs should settle far below 64 MiB of
	// retained growth once their scratch is released.
	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	if growth := int64(after.HeapAlloc) - int64(before.HeapAlloc); growth > 64<<20 {
		t.Errorf("heap grew by %d bytes across the soak (budget 64 MiB)", growth)
	}

	// Goroutine accounting: executors exited, per-job watchers fired. Allow
	// a little slack for the HTTP server's teardown to finish.
	deadline := time.Now().Add(5 * time.Second)
	for {
		http.DefaultClient.CloseIdleConnections()
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= baselineGoroutines+3 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines: %d now vs %d at start\n%s",
				n, baselineGoroutines, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestQueueBackpressure fills the queue behind a deliberately slow job and
// checks the documented overflow behavior: 429 with a Retry-After hint, a
// rejection counter, and no phantom job registered.
func TestQueueBackpressure(t *testing.T) {
	const queueCap = 2
	_, base := newTestServer(t, server.Config{QueueCap: queueCap, Executors: 1})

	code, blocker, _ := submit(t, base, longJob)
	if code != http.StatusAccepted {
		t.Fatalf("blocker submit: HTTP %d", code)
	}
	waitState(t, base, blocker, "running", time.Minute)

	// The executor is busy: these occupy the whole waiting queue.
	queued := make([]string, 0, queueCap)
	for i := 0; i < queueCap; i++ {
		code, id, _ := submit(t, base, smallJob)
		if code != http.StatusAccepted {
			t.Fatalf("filler %d: HTTP %d", i, code)
		}
		queued = append(queued, id)
	}

	code, _, hdr := submit(t, base, smallJob)
	if code != http.StatusTooManyRequests {
		t.Fatalf("overflow submit: HTTP %d, want 429", code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("429 response is missing Retry-After")
	}
	m := getMetrics(t, base)
	if m.Counters["server.jobs_rejected_full"] != 1 {
		t.Errorf("jobs_rejected_full = %d, want 1", m.Counters["server.jobs_rejected_full"])
	}
	if m.QueueDepth != queueCap {
		t.Errorf("queue_depth = %d, want %d", m.QueueDepth, queueCap)
	}

	// Unblock: cancel the long job; the queued jobs then run to completion,
	// proving a rejected submission did not poison the queue.
	req, _ := http.NewRequest(http.MethodDelete, base+"/jobs/"+blocker, nil)
	if _, err := http.DefaultClient.Do(req); err != nil {
		t.Fatalf("cancel blocker: %v", err)
	}
	for _, id := range queued {
		waitState(t, base, id, "done", 2*time.Minute)
	}
}

// TestSubmitRejectsInvalid spot-checks the 400 surface (the fuzz target
// covers the no-panic property exhaustively).
func TestSubmitRejectsInvalid(t *testing.T) {
	_, base := newTestServer(t, server.Config{})
	cases := []struct {
		name, body string
	}{
		{"empty object", `{}`},
		{"unknown field", `{"case":1,"bogus":true}`},
		{"two sources", `{"case":1,"via":2}`},
		{"case out of range", `{"case":99}`},
		{"n not a power of two", `{"case":1,"n":100}`},
		{"n over limit", `{"case":1,"n":65536}`},
		{"bad recipe", `{"case":1,"recipe":"warp"}`},
		{"recipe and stages", `{"case":1,"recipe":"fast","stages":[{"scale":1,"iters":1}]}`},
		{"scale does not divide", `{"case":1,"n":128,"stages":[{"scale":48,"iters":1}]}`},
		{"momentum out of range", `{"case":1,"momentum":1.5}`},
		{"negative tv", `{"case":1,"tv":-1}`},
		{"bad priority", `{"case":1,"priority":"urgent"}`},
		{"bad engine", `{"case":1,"engine":"warp"}`},
		{"engine wrong case", `{"case":1,"engine":"Batch"}`},
		{"trailing data", `{"case":1} {"case":2}`},
		{"not json", `hello`},
		{"grid below kernel support", `{"case":1,"n":128,"field_nm":512,"stages":[{"scale":32,"iters":1}]}`},
		{"budget overflow", `{"case":1,"stages":[{"scale":1,"iters":999999}]}`},
	}
	for _, tc := range cases {
		code, id, _ := submit(t, base, tc.body)
		if code != http.StatusBadRequest {
			t.Errorf("%s: HTTP %d, want 400", tc.name, code)
		}
		if id != "" {
			t.Errorf("%s: rejected submission returned job id %q", tc.name, id)
		}
	}
	m := getMetrics(t, base)
	if got := m.Counters["server.jobs_rejected_invalid"]; got != int64(len(cases)) {
		t.Errorf("jobs_rejected_invalid = %d, want %d", got, len(cases))
	}
	if len(m.Jobs) != 0 {
		t.Errorf("jobs_by_state = %v, want empty after only rejected submissions", m.Jobs)
	}
}

// TestMaskEndpoint checks the artifact download: 409 before completion,
// layout text after.
func TestMaskEndpoint(t *testing.T) {
	_, base := newTestServer(t, server.Config{Executors: 1})

	code, running, _ := submit(t, base, longJob)
	if code != http.StatusAccepted {
		t.Fatalf("submit blocker: HTTP %d", code)
	}
	waitState(t, base, running, "running", time.Minute)
	resp0, err := http.Get(base + "/jobs/" + running + "/mask")
	if err != nil {
		t.Fatal(err)
	}
	resp0.Body.Close()
	if resp0.StatusCode != http.StatusConflict {
		t.Errorf("mask of a running job: HTTP %d, want 409", resp0.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodDelete, base+"/jobs/"+running, nil)
	if _, err := http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	}

	code, id, _ := submit(t, base, smallJob)
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	waitState(t, base, id, "done", 2*time.Minute)
	resp, err := http.Get(base + "/jobs/" + id + "/mask")
	if err != nil {
		t.Fatalf("mask: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mask: HTTP %d", resp.StatusCode)
	}
	buf := make([]byte, 64)
	n, _ := resp.Body.Read(buf)
	if !strings.Contains(string(buf[:n]), "SIZE 128") {
		t.Errorf("mask body does not carry a layout SIZE header: %q", buf[:n])
	}

	resp2, err := http.Get(base + "/jobs/does-not-exist/mask")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Errorf("mask of unknown job: HTTP %d, want 404", resp2.StatusCode)
	}
}
