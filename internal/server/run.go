package server

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
	"sync"
	"time"

	"repro/internal/grid"
	"repro/internal/telemetry"
)

// JobState is the lifecycle of a job. Transitions:
// queued → running → {done, failed, canceled}; queued → canceled.
type JobState string

const (
	StateQueued   JobState = "queued"
	StateRunning  JobState = "running"
	StateDone     JobState = "done"
	StateFailed   JobState = "failed"
	StateCanceled JobState = "canceled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// JobResult is the JSON summary of a finished job.
type JobResult struct {
	Iterations int     `json:"iterations"`
	ILTSeconds float64 `json:"ilt_sec"`
	FinalLoss  float64 `json:"final_loss"`
	// MaskSHA256 fingerprints the final mask bit-for-bit (dimensions plus
	// the IEEE-754 bits of every pixel), so clients — and the soak test —
	// can assert determinism without downloading the mask.
	MaskSHA256 string `json:"mask_sha256"`
	// Contest metrics, present only when the job requested them.
	L2    *float64 `json:"l2_nm2,omitempty"`
	PVB   *float64 `json:"pvb_nm2,omitempty"`
	EPE   *int     `json:"epe,omitempty"`
	Shots *int     `json:"shots,omitempty"`
}

// maskFingerprint hashes a mask's exact bit pattern.
func maskFingerprint(m *grid.Mat) string {
	h := sha256.New()
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:8], uint64(m.W))
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(m.H))
	h.Write(hdr[:])
	var buf [8]byte
	for _, v := range m.Data {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Job is one accepted optimization. The mutable fields are guarded by mu;
// the event log has its own lock so SSE readers never contend with state
// transitions.
type Job struct {
	ID       string
	Name     string
	Priority Priority

	spec   *JobSpec
	ctx    context.Context
	cancel context.CancelFunc
	rec    *telemetry.Recorder
	events eventLog

	mu       sync.Mutex
	state    JobState
	errMsg   string
	result   *JobResult
	mask     *grid.Mat
	pixelNM  float64
	created  time.Time
	started  time.Time
	finished time.Time

	done chan struct{}
}

// State returns the current lifecycle state.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Cancel requests cancellation. Queued jobs transition immediately (the
// executor will skip them); running jobs transition when the optimizer
// observes the context, which happens within one iteration. Terminal jobs
// are unaffected. Reports whether this call itself terminated a queued job
// (running jobs are accounted for when the executor observes the
// cancellation, so callers never double-count).
func (j *Job) Cancel() bool {
	j.mu.Lock()
	direct := j.state == StateQueued
	if direct {
		j.state = StateCanceled
		j.finished = time.Now()
	}
	j.mu.Unlock()
	j.cancel()
	if direct {
		j.closeEvents()
	}
	return direct
}

// Done exposes the completion channel (closed on any terminal state).
func (j *Job) Done() <-chan struct{} { return j.done }

// startedAt returns when the executor picked the job up (zero if it never
// ran).
func (j *Job) startedAt() time.Time {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.started
}

// markRunning moves queued → running; returns false if the job was
// canceled while waiting in the queue.
func (j *Job) markRunning() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	j.started = time.Now()
	return true
}

// finish records the terminal state and wakes waiters exactly once.
func (j *Job) finish(state JobState, errMsg string, res *JobResult, mask *grid.Mat) {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return
	}
	j.state = state
	j.errMsg = errMsg
	j.result = res
	j.mask = mask
	j.finished = time.Now()
	j.mu.Unlock()
	j.closeEvents()
}

// closeEvents marks the event stream complete and closes done. Idempotent
// via the event log's own latch.
func (j *Job) closeEvents() {
	if j.events.markDone() {
		close(j.done)
	}
}

// statusJSON is the wire form of GET /jobs/{id}.
type statusJSON struct {
	ID         string     `json:"id"`
	Name       string     `json:"name"`
	State      JobState   `json:"state"`
	Priority   string     `json:"priority"`
	Error      string     `json:"error,omitempty"`
	Result     *JobResult `json:"result,omitempty"`
	CreatedSec float64    `json:"age_sec"`
	Events     int        `json:"events"`
}

func (j *Job) status() statusJSON {
	j.mu.Lock()
	defer j.mu.Unlock()
	return statusJSON{
		ID:         j.ID,
		Name:       j.Name,
		State:      j.state,
		Priority:   j.Priority.String(),
		Error:      j.errMsg,
		Result:     j.result,
		CreatedSec: time.Since(j.created).Seconds(),
		Events:     j.events.len(),
	}
}

// eventLog buffers a job's telemetry events as pre-marshaled JSON lines
// (the telemetry.MarshalEvent encoding, which ValidateTrace accepts) and
// lets any number of SSE readers replay-then-follow. Emit is invoked under
// the recorder's event lock; readers take only the log's own lock.
type eventLog struct {
	mu      sync.Mutex
	lines   [][]byte
	names   []string
	done    bool
	changed chan struct{} // closed and replaced on every append / markDone
}

func (l *eventLog) init() {
	l.changed = make(chan struct{})
}

// Emit implements telemetry.Sink.
func (l *eventLog) Emit(e telemetry.Event) {
	b := telemetry.MarshalEvent(e)
	l.mu.Lock()
	l.lines = append(l.lines, b)
	l.names = append(l.names, e.Name)
	l.signalLocked()
	l.mu.Unlock()
}

// Flush implements telemetry.Sink.
func (l *eventLog) Flush() error { return nil }

func (l *eventLog) signalLocked() {
	close(l.changed)
	l.changed = make(chan struct{})
}

// markDone seals the log; returns true on the first call.
func (l *eventLog) markDone() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.done {
		return false
	}
	l.done = true
	l.signalLocked()
	return true
}

func (l *eventLog) len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.lines)
}

// wait returns the lines and names from index `from` on, whether the log
// is sealed, and a channel that is closed on the next change (for
// followers to select on alongside their client's context).
func (l *eventLog) wait(from int) (lines [][]byte, names []string, done bool, changed <-chan struct{}) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if from < len(l.lines) {
		lines = l.lines[from:]
		names = l.names[from:]
	}
	return lines, names, l.done, l.changed
}
