// Package server turns the batch multi-level ILT pipeline into a
// long-running HTTP/JSON service: a bounded two-priority job queue with
// backpressure, per-job cancellation threaded as context.Context through
// the optimizer's stage loop, per-iteration progress streamed as
// server-sent events from the telemetry recorder, shared SOCS-kernel and
// FFT-plan caches keyed by process parameters, and graceful drain.
//
// Re-entrancy contract (see DESIGN.md, "Serving"): concurrent jobs share
// only immutable or concurrency-safe state — the optics.Model kernel sets
// (read-only after construction) and the fft.PlanCache (singleflight).
// Everything mutable is per job: each job gets its own litho.Process and
// Sim (whose scratch pools lease buffers only inside that job's
// simulations), its own core.Optimizer, and its own telemetry.Recorder
// feeding that job's event log. No package-level state exists.
package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"strings"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/layout"
	"repro/internal/litho"
	"repro/internal/optics"
)

// Priority is a job's scheduling class. Interactive jobs are dequeued
// before batch jobs; within a class the queue is FIFO.
type Priority int

const (
	// PriorityBatch is the default class.
	PriorityBatch Priority = iota
	// PriorityInteractive jumps ahead of every queued batch job.
	PriorityInteractive
)

// String implements fmt.Stringer.
func (p Priority) String() string {
	if p == PriorityInteractive {
		return "interactive"
	}
	return "batch"
}

// StageSpec is the wire form of one multi-level stage.
type StageSpec struct {
	Scale   int  `json:"scale"`
	Iters   int  `json:"iters"`
	HighRes bool `json:"highres,omitempty"`
}

// JobRequest is the submission payload of POST /jobs. Exactly one target
// source (layout, case, via) must be set; recipe and stages are mutually
// exclusive (recipe defaults to "fast" when both are absent).
type JobRequest struct {
	// Layout is an inline layout in the text format of internal/layout.
	Layout string `json:"layout,omitempty"`
	// Case selects a synthetic paper benchmark case (1-20).
	Case int `json:"case,omitempty"`
	// Via selects a synthetic via-layer case (≥ 1).
	Via int `json:"via,omitempty"`

	// N is the simulation grid side (power of two). Defaults to the
	// layout's declared size, or 512 for synthetic cases.
	N int `json:"n,omitempty"`
	// FieldNM is the physical tile size in nm (default 2048).
	FieldNM float64 `json:"field_nm,omitempty"`
	// Kernels is the SOCS kernel count N_k (default 24).
	Kernels int `json:"kernels,omitempty"`

	// Recipe names a paper schedule: fast | exact | via.
	Recipe string `json:"recipe,omitempty"`
	// Stages is an explicit schedule, overriding Recipe.
	Stages []StageSpec `json:"stages,omitempty"`
	// IterDiv divides every stage budget (rounding up, min 1).
	IterDiv int `json:"iterdiv,omitempty"`

	// Workers bounds the per-kernel simulation fan-out inside this job
	// (0 = GOMAXPROCS). Results are bit-identical for every value.
	Workers int `json:"workers,omitempty"`
	// Engine selects the simulator's FFT engine by name: "batch" (the
	// default, also selected by ""), "band", "band-inverse" or
	// "reference". See litho.ParseEngine.
	Engine string `json:"engine,omitempty"`
	// Priority is "batch" (default) or "interactive".
	Priority string `json:"priority,omitempty"`

	// Momentum, LineSearch, TV, Curvature and Patience mirror the
	// core.Options knobs of the same names.
	Momentum   float64 `json:"momentum,omitempty"`
	LineSearch bool    `json:"linesearch,omitempty"`
	TV         float64 `json:"tv,omitempty"`
	Curvature  float64 `json:"curvature,omitempty"`
	Patience   int     `json:"patience,omitempty"`

	// Metrics additionally evaluates the contest metrics (L2, PVB, EPE,
	// shots) on the final mask — three extra exact simulations.
	Metrics bool `json:"metrics,omitempty"`
}

// Limits bounds what a single job may ask for. The zero value selects the
// defaults noted per field.
type Limits struct {
	// MaxN caps the simulation grid side (default 2048).
	MaxN int
	// MaxKernels caps N_k (default 64).
	MaxKernels int
	// MaxIters caps the total iteration budget across stages after
	// IterDiv (default 2000).
	MaxIters int
	// MaxBodyBytes caps the request body (default 8 MiB).
	MaxBodyBytes int64
}

func (l Limits) withDefaults() Limits {
	if l.MaxN <= 0 {
		l.MaxN = 2048
	}
	if l.MaxKernels <= 0 {
		l.MaxKernels = 64
	}
	if l.MaxIters <= 0 {
		l.MaxIters = 2000
	}
	if l.MaxBodyBytes <= 0 {
		l.MaxBodyBytes = 8 << 20
	}
	return l
}

// JobSpec is a validated, fully-resolved job: everything an executor needs
// except the shared caches. Building it performs every check that can fail
// on malformed input, so executors only see errors from the numerics.
type JobSpec struct {
	Req      JobRequest
	Name     string // human label: layout / case-N / via-N
	Target   *grid.Mat
	Stages   []core.Stage
	Optics   optics.Config
	Priority Priority
}

// ParseJobRequest decodes and validates a job submission. Every error is a
// client error (HTTP 400): unknown fields, malformed JSON, out-of-range or
// non-finite numerics, oversized grids, schedules that violate the
// multi-level invariants (including the kernel-support bound m ≥ P, which
// is predicted from the optics configuration without building kernels).
// It never panics on arbitrary input — FuzzParseJobRequest enforces that.
func ParseJobRequest(data []byte, lim Limits) (*JobSpec, error) {
	lim = lim.withDefaults()
	if int64(len(data)) > lim.MaxBodyBytes {
		return nil, fmt.Errorf("request body %d bytes exceeds limit %d", len(data), lim.MaxBodyBytes)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var req JobRequest
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("invalid JSON: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("trailing data after JSON object")
	}
	return resolveJob(req, lim)
}

func resolveJob(req JobRequest, lim Limits) (*JobSpec, error) {
	spec := &JobSpec{Req: req}

	// Every float knob must be finite before any of them is interpreted.
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"field_nm", req.FieldNM}, {"momentum", req.Momentum},
		{"tv", req.TV}, {"curvature", req.Curvature},
	} {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			return nil, fmt.Errorf("%s must be finite, got %g", f.name, f.v)
		}
	}

	sources := 0
	if req.Layout != "" {
		sources++
	}
	if req.Case != 0 {
		sources++
	}
	if req.Via != 0 {
		sources++
	}
	if sources != 1 {
		return nil, fmt.Errorf("exactly one of layout, case, via must be set (got %d)", sources)
	}

	n := req.N
	if req.Layout != "" {
		l, err := layout.Parse(strings.NewReader(req.Layout))
		if err != nil {
			return nil, fmt.Errorf("layout: %w", err)
		}
		if n == 0 {
			n = l.Size
		} else if n != l.Size {
			return nil, fmt.Errorf("n = %d does not match layout SIZE %d", n, l.Size)
		}
		if err := checkGridSize(n, lim); err != nil {
			return nil, err
		}
		target, err := l.Rasterize()
		if err != nil {
			return nil, fmt.Errorf("layout: %w", err)
		}
		spec.Target, spec.Name = target, "layout"
	} else if n == 0 {
		n = 512
	}
	if err := checkGridSize(n, lim); err != nil {
		return nil, err
	}

	field := req.FieldNM
	if field == 0 {
		field = 2048
	}
	if field <= 0 || field > 1e6 {
		return nil, fmt.Errorf("field_nm = %g outside (0, 1e6]", field)
	}
	kernels := req.Kernels
	if kernels == 0 {
		kernels = 24
	}
	if kernels < 1 || kernels > lim.MaxKernels {
		return nil, fmt.Errorf("kernels = %d outside [1, %d]", kernels, lim.MaxKernels)
	}

	switch {
	case req.Case != 0:
		if req.Case < 1 || req.Case > 20 {
			return nil, fmt.Errorf("case = %d outside [1, 20]", req.Case)
		}
		cs, err := bench.PaperCase(n, field, req.Case)
		if err != nil {
			return nil, err
		}
		spec.Target, spec.Name = cs.Target, cs.Name
	case req.Via != 0:
		if req.Via < 1 || req.Via > 20 {
			return nil, fmt.Errorf("via = %d outside [1, 20]", req.Via)
		}
		cs, err := bench.ViaCase(n, field, req.Via, 6+(req.Via%5)*3)
		if err != nil {
			return nil, err
		}
		spec.Target, spec.Name = cs.Target, cs.Name
	}

	oc := optics.Default()
	oc.FieldNM = field
	oc.NumKernels = kernels
	if err := oc.Validate(); err != nil {
		return nil, err
	}
	spec.Optics = oc

	stages, err := resolveStages(req, n, oc.P(), lim)
	if err != nil {
		return nil, err
	}
	spec.Stages = stages

	switch req.Priority {
	case "", "batch":
		spec.Priority = PriorityBatch
	case "interactive":
		spec.Priority = PriorityInteractive
	default:
		return nil, fmt.Errorf("priority %q is not batch or interactive", req.Priority)
	}

	if req.Momentum < 0 || req.Momentum >= 1 {
		return nil, fmt.Errorf("momentum = %g outside [0, 1)", req.Momentum)
	}
	if req.TV < 0 || req.Curvature < 0 {
		return nil, fmt.Errorf("penalty weights must be ≥ 0 (tv %g, curvature %g)", req.TV, req.Curvature)
	}
	if req.Patience < 0 {
		return nil, fmt.Errorf("patience = %d must be ≥ 0", req.Patience)
	}
	if req.Workers < 0 || req.Workers > 256 {
		return nil, fmt.Errorf("workers = %d outside [0, 256]", req.Workers)
	}
	if _, err := litho.ParseEngine(req.Engine); err != nil {
		return nil, err
	}
	return spec, nil
}

func checkGridSize(n int, lim Limits) error {
	if n < 64 || n > lim.MaxN || n&(n-1) != 0 {
		return fmt.Errorf("n = %d must be a power of two in [64, %d]", n, lim.MaxN)
	}
	return nil
}

// resolveStages turns the recipe/stages request fields into a validated
// core schedule, applying IterDiv and enforcing the same invariants
// core.Optimizer checks (plus the server-side budget cap) so bad
// schedules are rejected at submission with a 400, not at execution.
func resolveStages(req JobRequest, n, p int, lim Limits) ([]core.Stage, error) {
	iterdiv := req.IterDiv
	if iterdiv == 0 {
		iterdiv = 1
	}
	if iterdiv < 1 || iterdiv > 1000 {
		return nil, fmt.Errorf("iterdiv = %d outside [1, 1000]", iterdiv)
	}

	var stages []core.Stage
	if len(req.Stages) > 0 {
		if req.Recipe != "" {
			return nil, fmt.Errorf("recipe and stages are mutually exclusive")
		}
		if len(req.Stages) > 16 {
			return nil, fmt.Errorf("%d stages exceed the limit of 16", len(req.Stages))
		}
		for i, ss := range req.Stages {
			if ss.Scale < 1 || ss.Scale > 64 {
				return nil, fmt.Errorf("stage %d: scale %d outside [1, 64]", i, ss.Scale)
			}
			if ss.Iters < 0 {
				return nil, fmt.Errorf("stage %d: negative iters %d", i, ss.Iters)
			}
			stages = append(stages, core.Stage{Scale: ss.Scale, Iters: ss.Iters, HighRes: ss.HighRes})
		}
	} else {
		switch req.Recipe {
		case "", "fast":
			stages = core.FastM1()
		case "exact":
			stages = core.ExactM1()
		case "via":
			stages = core.Via()
		default:
			return nil, fmt.Errorf("recipe %q is not fast, exact or via", req.Recipe)
		}
	}
	stages = core.ScaleStages(stages, iterdiv)

	total := 0
	for i, st := range stages {
		if n%st.Scale != 0 {
			return nil, fmt.Errorf("stage %d: scale %d does not divide grid %d", i, st.Scale, n)
		}
		m := n / st.Scale
		if m&(m-1) != 0 {
			return nil, fmt.Errorf("stage %d: working size %d is not a power of two", i, m)
		}
		if m < p {
			return nil, fmt.Errorf("stage %d: working size %d below kernel support %d (shrink field_nm or raise n)", i, m, p)
		}
		total += st.Iters
	}
	if total > lim.MaxIters {
		return nil, fmt.Errorf("total iteration budget %d exceeds limit %d", total, lim.MaxIters)
	}
	return stages, nil
}
