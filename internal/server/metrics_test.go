package server_test

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/server"
)

// fullMetricsDoc decodes the parts of the JSON /metrics document the
// observability tests assert: runtime gauges and histogram snapshots ride
// next to the original fields (which metricsDoc still covers — proving the
// document stayed decode-compatible).
type fullMetricsDoc struct {
	metricsDoc
	Histograms []struct {
		Name  string  `json:"name"`
		Unit  string  `json:"unit"`
		Count int64   `json:"count"`
		Sum   float64 `json:"sum"`
		P99   float64 `json:"p99"`
	} `json:"histograms"`
	Runtime struct {
		Goroutines      int     `json:"goroutines"`
		HeapInuseBytes  uint64  `json:"heap_inuse_bytes"`
		GCPauseTotalSec float64 `json:"gc_pause_total_sec"`
	} `json:"runtime"`
}

// TestMetricsContentNegotiation: the JSON document stays the default (and
// gains runtime gauges + histograms), while an Accept header naming
// text/plain switches /metrics to the Prometheus text exposition.
func TestMetricsContentNegotiation(t *testing.T) {
	_, base := newTestServer(t, server.Config{Executors: 1})
	code, id, _ := submit(t, base, smallJob)
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	waitState(t, base, id, "done", 30*time.Second)

	// Default (no Accept): JSON, with the runtime and histogram blocks.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("default Content-Type %q, want application/json", ct)
	}
	var doc fullMetricsDoc
	err = json.NewDecoder(resp.Body).Decode(&doc)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("decode JSON metrics: %v", err)
	}
	if doc.Jobs["done"] != 1 || doc.Counters["server.jobs_submitted"] != 1 {
		t.Errorf("JSON document lost existing fields: %+v", doc.metricsDoc)
	}
	if doc.Runtime.Goroutines < 1 {
		t.Errorf("runtime.goroutines = %d, want ≥ 1", doc.Runtime.Goroutines)
	}
	if doc.Runtime.HeapInuseBytes == 0 {
		t.Error("runtime.heap_inuse_bytes = 0")
	}
	if doc.Runtime.GCPauseTotalSec < 0 {
		t.Errorf("runtime.gc_pause_total_sec = %g", doc.Runtime.GCPauseTotalSec)
	}
	byName := map[string]bool{}
	for _, h := range doc.Histograms {
		byName[h.Name] = h.Count > 0
	}
	// Server-side distributions observe directly; the job's core.iter
	// histogram arrives via the finish-time recorder merge.
	for _, want := range []string{"server.queue_wait", "server.run", "core.iter"} {
		if !byName[want] {
			t.Errorf("JSON histograms missing populated %q (have %v)", want, byName)
		}
	}

	// Prometheus scrape via content negotiation.
	req, err := http.NewRequest(http.MethodGet, base+"/metrics", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/plain")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Prometheus Content-Type %q", ct)
	}
	out := string(body)
	for _, want := range []string{
		"# TYPE ilt_queue_depth gauge",
		`ilt_jobs{state="done"} 1`,
		`ilt_jobs{state="failed"} 0`, // full state vocabulary from boot
		"ilt_server_jobs_submitted_total 1",
		"ilt_server_jobs_completed_total 1",
		`ilt_server_queue_wait_seconds_bucket{le="+Inf"} 1`,
		`ilt_server_run_seconds_bucket{le="+Inf"} 1`,
		"ilt_server_sse_flush_seconds_count",
		`ilt_core_iter_seconds_bucket{le="+Inf"} 5`, // 3+2 iterations, merged from the job
		`ilt_phase_seconds_total{phase="litho.socs"}`,
		"ilt_goroutines",
		"ilt_heap_inuse_bytes",
		"ilt_gc_pause_seconds_total",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Prometheus exposition missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("exposition:\n%s", out)
	}

	// An Accept that prefers JSON keeps the JSON document.
	req, err = http.NewRequest(http.MethodGet, base+"/metrics", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "application/json")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	ct := resp.Header.Get("Content-Type")
	resp.Body.Close()
	if ct != "application/json" {
		t.Errorf("Accept: application/json got Content-Type %q", ct)
	}
}
