package server_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/server"
)

// TestJobRequestEngineField pins the submit-time validation of the
// "engine" field: every litho.ParseEngine spelling is accepted verbatim
// (including the empty default), everything else — wrong case, stray
// whitespace, aliases — is rejected at ParseJobRequest with an error that
// names the four valid engines, so a bad job never reaches the queue.
func TestJobRequestEngineField(t *testing.T) {
	parse := func(engineJSON string) (*server.JobSpec, error) {
		t.Helper()
		body := fmt.Sprintf(`{"case":1,"engine":%q}`, engineJSON)
		return server.ParseJobRequest([]byte(body), server.Limits{})
	}

	for _, eng := range []string{"", "batch", "band", "band-inverse", "reference"} {
		spec, err := parse(eng)
		if err != nil {
			t.Errorf("engine %q rejected: %v", eng, err)
			continue
		}
		if spec.Req.Engine != eng {
			t.Errorf("engine %q resolved to spec engine %q; the spec must keep the submitted spelling", eng, spec.Req.Engine)
		}
	}

	for _, eng := range []string{
		"warp", "dense", "ref",
		"Batch", "BAND", "Band-Inverse", "REFERENCE",
		" batch", "batch ", "band_inverse", "bandinverse", "batch,band",
	} {
		spec, err := parse(eng)
		if err == nil {
			t.Errorf("engine %q accepted (spec %+v); want submit-time rejection", eng, spec.Req)
			continue
		}
		msg := err.Error()
		for _, want := range []string{"batch", "band", "band-inverse", "reference"} {
			if !strings.Contains(msg, want) {
				t.Errorf("engine %q: error %q does not name valid engine %q", eng, msg, want)
			}
		}
	}
}
