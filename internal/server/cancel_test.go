package server_test

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"testing"
	"time"

	"repro/internal/server"
)

func cancelJob(t *testing.T, base, id string) jobStatus {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, base+"/jobs/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("cancel %s: %v", id, err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel %s: HTTP %d", id, resp.StatusCode)
	}
	return getStatus(t, base, id)
}

// TestCancelQueuedJob cancels a job that is still waiting: the transition
// is immediate, the executor never touches it, and its SSE stream closes.
func TestCancelQueuedJob(t *testing.T) {
	s, base := newTestServer(t, server.Config{QueueCap: 4, Executors: 1})

	_, blocker, _ := submit(t, base, longJob)
	waitState(t, base, blocker, "running", time.Minute)

	_, queued, _ := submit(t, base, smallJob)
	if st := getStatus(t, base, queued); st.State != "queued" {
		t.Fatalf("filler state %q, want queued", st.State)
	}
	st := cancelJob(t, base, queued)
	if st.State != "canceled" {
		t.Fatalf("canceled queued job reports %q", st.State)
	}
	j, ok := s.Job(queued)
	if !ok {
		t.Fatal("job vanished")
	}
	select {
	case <-j.Done():
	case <-time.After(time.Second):
		t.Fatal("queued job's Done channel not closed after cancel")
	}
	m := getMetrics(t, base)
	if m.Counters["server.jobs_canceled"] != 1 {
		t.Errorf("jobs_canceled = %d, want 1 (no double count)", m.Counters["server.jobs_canceled"])
	}

	cancelJob(t, base, blocker)
	waitState(t, base, blocker, "canceled", time.Minute)
}

// TestCancelRunningJob interrupts a job mid-iteration and requires a prompt
// return: the optimizer must observe the context within one coarse
// iteration, not run out its 1500-iteration budget.
func TestCancelRunningJob(t *testing.T) {
	s, base := newTestServer(t, server.Config{Executors: 1})

	_, id, _ := submit(t, base, longJob)
	waitState(t, base, id, "running", time.Minute)
	// Let it actually iterate before pulling the plug.
	deadline := time.Now().Add(time.Minute)
	for getStatus(t, base, id).Events < 3 {
		if time.Now().After(deadline) {
			t.Fatal("job produced no iteration events")
		}
		time.Sleep(5 * time.Millisecond)
	}

	start := time.Now()
	cancelJob(t, base, id)
	st := waitState(t, base, id, "canceled", 30*time.Second)
	if took := time.Since(start); took > 10*time.Second {
		t.Errorf("cancellation took %v, want prompt return", took)
	}
	if st.Result != nil {
		t.Errorf("canceled job carries a result: %+v", st.Result)
	}

	j, _ := s.Job(id)
	select {
	case <-j.Done():
	case <-time.After(time.Second):
		t.Fatal("running job's Done channel not closed after cancel")
	}
	m := getMetrics(t, base)
	if m.Counters["server.jobs_canceled"] != 1 {
		t.Errorf("jobs_canceled = %d, want exactly 1", m.Counters["server.jobs_canceled"])
	}
	// Canceling a terminal job is a harmless no-op.
	if st := cancelJob(t, base, id); st.State != "canceled" {
		t.Errorf("second cancel flipped state to %q", st.State)
	}
	if m := getMetrics(t, base); m.Counters["server.jobs_canceled"] != 1 {
		t.Errorf("second cancel double-counted: %d", m.Counters["server.jobs_canceled"])
	}
}

// TestGracefulDrain is the SIGTERM path: running and already-queued jobs
// finish, new submissions bounce with 503, Drain returns cleanly.
func TestGracefulDrain(t *testing.T) {
	s, base := newTestServer(t, server.Config{QueueCap: 4, Executors: 1})

	_, running, _ := submit(t, base, smallJob)
	_, queued, _ := submit(t, base, smallJob)

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		defer cancel()
		drained <- s.Drain(ctx)
	}()
	for !s.Draining() {
		time.Sleep(time.Millisecond)
	}

	if code, _, _ := submit(t, base, smallJob); code != http.StatusServiceUnavailable {
		t.Errorf("submit during drain: HTTP %d, want 503", code)
	}

	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	for _, id := range []string{running, queued} {
		if st := getStatus(t, base, id); st.State != "done" {
			t.Errorf("job %s after drain: %q (error %q), want done", id, st.State, st.Error)
		}
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status string `json:"status"`
		Queued int    `json:"queued"`
	}
	errDecode := json.NewDecoder(resp.Body).Decode(&health)
	resp.Body.Close()
	if errDecode != nil {
		t.Fatal(errDecode)
	}
	if health.Status != "draining" || health.Queued != 0 {
		t.Errorf("healthz after drain = %+v, want draining with empty queue", health)
	}

	// Idempotent: a second drain returns immediately.
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Errorf("second drain: %v", err)
	}
}

// TestDrainDeadlineCancelsStragglers bounds the drain: when the context
// expires, outstanding jobs are cancelled rather than held onto forever.
func TestDrainDeadlineCancelsStragglers(t *testing.T) {
	s, base := newTestServer(t, server.Config{Executors: 1})

	_, id, _ := submit(t, base, longJob)
	waitState(t, base, id, "running", time.Minute)

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	err := s.Drain(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("drain past deadline: err = %v, want DeadlineExceeded", err)
	}
	// Drain returned only after the executor pool exited, so the job is
	// terminal now — no polling needed.
	if st := getStatus(t, base, id); st.State != "canceled" {
		t.Errorf("straggler state %q, want canceled", st.State)
	}
}
