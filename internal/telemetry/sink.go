package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// traceSink writes one JSON object per event (JSONL). Field keys are merged
// into the top-level object next to the reserved "event"/"seq"/"ts" keys;
// json.Marshal sorts map keys, so the byte stream is deterministic given a
// deterministic clock.
type traceSink struct {
	w *bufio.Writer
	c io.Closer // closed on Flush when the writer is closable
}

// WithTrace attaches a JSONL trace sink over w. If w is an io.Closer (a
// file), Recorder.Close closes it after flushing.
func WithTrace(w io.Writer) Option {
	s := &traceSink{w: bufio.NewWriter(w)}
	if c, ok := w.(io.Closer); ok {
		s.c = c
	}
	return WithSink(s)
}

func (s *traceSink) Emit(e Event) {
	s.w.Write(MarshalEvent(e))
	s.w.WriteByte('\n')
}

// MarshalEvent renders one event as the JSON object the trace sink writes:
// the payload fields merged next to the reserved "event"/"seq"/"ts" keys,
// with map keys sorted by json.Marshal so the bytes are deterministic given
// a deterministic clock. The ILT server reuses this encoding for its SSE
// data frames, so tracecheck's ValidateTrace accepts a captured event
// stream unchanged.
func MarshalEvent(e Event) []byte {
	obj := make(map[string]any, len(e.Fields)+3)
	for k, v := range e.Fields {
		obj[k] = v
	}
	obj["event"] = e.Name
	obj["seq"] = e.Seq
	obj["ts"] = e.TS
	b, err := json.Marshal(obj)
	if err != nil {
		// Unencodable field values are a caller bug; record it in-band
		// rather than dropping the line silently.
		b = []byte(fmt.Sprintf(`{"event":"encode_error","seq":%d,"ts":%g,"error":%q}`,
			e.Seq, e.TS, err.Error()))
	}
	return b
}

func (s *traceSink) Flush() error {
	err := s.w.Flush()
	if s.c != nil {
		if cerr := s.c.Close(); err == nil {
			err = cerr
		}
		s.c = nil
	}
	return err
}

// consoleSink renders selected events as human progress lines. Iteration
// events are throttled to every Nth (plus the first of each stage); phase
// totals print as an aligned breakdown at Close.
type consoleSink struct {
	w     io.Writer
	every int
}

// WithConsole attaches a human-readable progress sink (the -progress flag).
// Iteration lines print every 10th iteration.
func WithConsole(w io.Writer) Option {
	return WithSink(&consoleSink{w: w, every: 10})
}

func (s *consoleSink) Emit(e Event) {
	f := e.Fields
	switch e.Name {
	case "progress":
		fmt.Fprintf(s.w, "[%7.2fs] %s\n", e.TS, str(f, "msg"))
	case "run.start":
		fmt.Fprintf(s.w, "[%7.2fs] %s starting: %s\n", e.TS, str(f, "tool"), str(f, "name"))
	case "stage.start":
		mode := "low-res"
		if b, _ := f["highres"].(bool); b {
			mode = "high-res"
		}
		fmt.Fprintf(s.w, "[%7.2fs] stage %d: s=%d %s, budget %d iters\n",
			e.TS, num(f, "stage"), num(f, "scale"), mode, num(f, "iters"))
	case "iter":
		it := num(f, "iter")
		if s.every > 1 && it%int64(s.every) != 0 {
			return
		}
		fmt.Fprintf(s.w, "[%7.2fs]   stage %d iter %-4d loss %.6g (l2 %.4g, pvb %.4g) step %.3g retries %d %.0fms\n",
			e.TS, num(f, "stage"), it, flt(f, "loss"), flt(f, "l2"), flt(f, "pvb"),
			flt(f, "step"), num(f, "retries"), flt(f, "sec")*1000)
	case "stage.end":
		fmt.Fprintf(s.w, "[%7.2fs] stage %d done: %d iters, best loss %.6g, %.2fs\n",
			e.TS, num(f, "stage"), num(f, "iters_run"), flt(f, "best_loss"), flt(f, "sec"))
	case "tile":
		if b, _ := f["skipped"].(bool); b {
			return
		}
		fmt.Fprintf(s.w, "[%7.2fs] tile (%d,%d): %.2fs\n",
			e.TS, num(f, "tx"), num(f, "ty"), flt(f, "sec"))
	case "run.end":
		fmt.Fprintf(s.w, "[%7.2fs] done: %s\n", e.TS, str(f, "summary"))
	case "phases":
		fmt.Fprintf(s.w, "[%7.2fs] phase breakdown:\n", e.TS)
		for _, k := range sortedKeys(f) {
			m, ok := f[k].(map[string]any)
			if !ok {
				continue
			}
			fmt.Fprintf(s.w, "  %-24s %9.3fs  ×%d\n", k, anyFlt(m["sec"]), anyNum(m["count"]))
		}
		if hf, ok := f["histograms"].(Fields); ok {
			fmt.Fprintf(s.w, "[%7.2fs] latency histograms:\n", e.TS)
			for _, k := range sortedKeys(hf) {
				m, ok := hf[k].(map[string]any)
				if !ok {
					continue
				}
				fmt.Fprintf(s.w, "  %-24s p50 %.3gs  p95 %.3gs  p99 %.3gs  ×%d\n",
					k, anyFlt(m["p50"]), anyFlt(m["p95"]), anyFlt(m["p99"]), anyNum(m["count"]))
			}
		}
	}
}

func (s *consoleSink) Flush() error { return nil }

// Field accessors tolerant of the types different emitters use (int,
// int64, float64 — and float64-only after a JSON round trip).

func num(f Fields, k string) int64   { return anyNum(f[k]) }
func flt(f Fields, k string) float64 { return anyFlt(f[k]) }

func str(f Fields, k string) string {
	s, _ := f[k].(string)
	return s
}

func anyNum(v any) int64 {
	switch n := v.(type) {
	case int:
		return int64(n)
	case int64:
		return n
	case float64:
		return int64(n)
	}
	return 0
}

func anyFlt(v any) float64 {
	switch n := v.(type) {
	case float64:
		return n
	case int:
		return float64(n)
	case int64:
		return float64(n)
	}
	return 0
}

func sortedKeys(f Fields) []string {
	keys := make([]string, 0, len(f))
	for k := range f {
		if _, ok := f[k].(map[string]any); ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}
