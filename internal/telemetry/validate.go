package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// TraceStats summarizes a validated JSONL trace.
type TraceStats struct {
	Events       int
	Iters        int
	StageIters   map[int]int // stage index → iteration events seen
	StagesOpened map[int]int // stage index → budget from stage.start
	WallSec      float64     // from the run.end event (0 if absent)
	PhaseSec     float64     // summed phase seconds from the phases event
	Phases       int         // distinct phases reported
}

// Coverage is the fraction of the reported wall time accounted for by
// phase timers (0 when the trace carries no run.end event).
func (s *TraceStats) Coverage() float64 {
	if s.WallSec <= 0 {
		return 0
	}
	return s.PhaseSec / s.WallSec
}

// ValidateTrace checks a JSONL event stream against the schema emitted by
// the instrumented pipeline:
//
//   - every line is a JSON object with a string "event", an integer "seq"
//     strictly increasing from 1, and a non-decreasing numeric "ts";
//   - "stage.start" events carry stage/scale/iters, "iter" events carry
//     stage/iter/loss, "tile" events carry tx/ty;
//   - every stage opened by a stage.start with a positive budget is
//     covered by at least one iter event.
//
// It returns aggregate stats so callers can apply run-level invariants
// (e.g. the phase-timer wall-clock coverage bound).
func ValidateTrace(r io.Reader) (*TraceStats, error) {
	stats := &TraceStats{StageIters: map[int]int{}, StagesOpened: map[int]int{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var lastSeq int64
	lastTS := -1.0
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var obj map[string]any
		if err := json.Unmarshal(sc.Bytes(), &obj); err != nil {
			return nil, fmt.Errorf("trace line %d: invalid JSON: %w", line, err)
		}
		name, ok := obj["event"].(string)
		if !ok || name == "" {
			return nil, fmt.Errorf("trace line %d: missing event name", line)
		}
		seqF, ok := obj["seq"].(float64)
		if !ok {
			return nil, fmt.Errorf("trace line %d (%s): missing seq", line, name)
		}
		seq := int64(seqF)
		if seq != lastSeq+1 {
			return nil, fmt.Errorf("trace line %d (%s): seq %d after %d (want contiguous, increasing)",
				line, name, seq, lastSeq)
		}
		lastSeq = seq
		ts, ok := obj["ts"].(float64)
		if !ok {
			return nil, fmt.Errorf("trace line %d (%s): missing ts", line, name)
		}
		if ts < lastTS {
			return nil, fmt.Errorf("trace line %d (%s): ts %g before %g", line, name, ts, lastTS)
		}
		lastTS = ts
		stats.Events++

		switch name {
		case "stage.start":
			stage, err := requireInt(obj, "stage", line, name)
			if err != nil {
				return nil, err
			}
			if _, err := requireInt(obj, "scale", line, name); err != nil {
				return nil, err
			}
			iters, err := requireInt(obj, "iters", line, name)
			if err != nil {
				return nil, err
			}
			stats.StagesOpened[stage] = iters
		case "iter":
			stage, err := requireInt(obj, "stage", line, name)
			if err != nil {
				return nil, err
			}
			if _, err := requireInt(obj, "iter", line, name); err != nil {
				return nil, err
			}
			if _, ok := obj["loss"].(float64); !ok {
				return nil, fmt.Errorf("trace line %d (iter): missing numeric loss", line)
			}
			stats.StageIters[stage]++
			stats.Iters++
		case "tile":
			if _, err := requireInt(obj, "tx", line, name); err != nil {
				return nil, err
			}
			if _, err := requireInt(obj, "ty", line, name); err != nil {
				return nil, err
			}
		case "run.end":
			if w, ok := obj["wall_sec"].(float64); ok {
				stats.WallSec = w
			}
		case "phases":
			for k, v := range obj {
				m, ok := v.(map[string]any)
				if !ok || k == "counters" {
					continue
				}
				if sec, ok := m["sec"].(float64); ok {
					stats.PhaseSec += sec
					stats.Phases++
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if stats.Events == 0 {
		return nil, fmt.Errorf("trace is empty")
	}
	for stage, budget := range stats.StagesOpened {
		if budget > 0 && stats.StageIters[stage] == 0 {
			return nil, fmt.Errorf("stage %d opened with budget %d but produced no iter events", stage, budget)
		}
	}
	return stats, nil
}

func requireInt(obj map[string]any, key string, line int, event string) (int, error) {
	v, ok := obj[key].(float64)
	if !ok {
		return 0, fmt.Errorf("trace line %d (%s): missing numeric %q", line, event, key)
	}
	return int(v), nil
}
