package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// TraceStats summarizes a validated JSONL trace.
type TraceStats struct {
	Events       int
	Iters        int
	Tiles        int         // tile events seen (all sweeps)
	StageIters   map[int]int // stage index → iteration events seen
	StagesOpened map[int]int // stage index → budget from stage.start
	WallSec      float64     // from the run.end event (0 if absent)
	PhaseSec     float64     // summed phase seconds from the phases event
	Phases       int         // distinct phases reported
}

// Coverage is the fraction of the reported wall time accounted for by
// phase timers (0 when the trace carries no run.end event).
func (s *TraceStats) Coverage() float64 {
	if s.WallSec <= 0 {
		return 0
	}
	return s.PhaseSec / s.WallSec
}

// ValidateTrace checks a JSONL event stream against the schema emitted by
// the instrumented pipeline:
//
//   - every line is a JSON object with a string "event", an integer "seq"
//     strictly increasing from 1, and a non-decreasing numeric "ts";
//   - "stage.start" events carry stage/scale/iters, "iter" events carry
//     stage/iter/loss, "tile" events carry tx/ty;
//   - tile events form a gapless row-major sweep: the first tile is (0,0)
//     and each successor is either (ty, tx+1) or (ty+1, 0). A
//     "fullchip.end" event closes the sweep, so a trace may hold several
//     full-chip runs. This pins down the determinism contract the tiled
//     executor promises: tiles may run concurrently, but the trace must
//     read as if they ran serially;
//   - every stage opened by a stage.start with a positive budget is
//     covered by at least one iter event.
//
// It returns aggregate stats so callers can apply run-level invariants
// (e.g. the phase-timer wall-clock coverage bound).
func ValidateTrace(r io.Reader) (*TraceStats, error) {
	stats := &TraceStats{StageIters: map[int]int{}, StagesOpened: map[int]int{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var lastSeq int64
	lastTS := -1.0
	lastTX, lastTY, haveTile := 0, 0, false
	sweepNX := 0 // learned at the first row wrap; 0 while still in row 0
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var obj map[string]any
		if err := json.Unmarshal(sc.Bytes(), &obj); err != nil {
			return nil, fmt.Errorf("trace line %d: invalid JSON: %w", line, err)
		}
		name, ok := obj["event"].(string)
		if !ok || name == "" {
			return nil, fmt.Errorf("trace line %d: missing event name", line)
		}
		seqF, ok := obj["seq"].(float64)
		if !ok {
			return nil, fmt.Errorf("trace line %d (%s): missing seq", line, name)
		}
		seq := int64(seqF)
		if seq != lastSeq+1 {
			return nil, fmt.Errorf("trace line %d (%s): seq %d after %d (want contiguous, increasing)",
				line, name, seq, lastSeq)
		}
		lastSeq = seq
		ts, ok := obj["ts"].(float64)
		if !ok {
			return nil, fmt.Errorf("trace line %d (%s): missing ts", line, name)
		}
		if ts < lastTS {
			return nil, fmt.Errorf("trace line %d (%s): ts %g before %g", line, name, ts, lastTS)
		}
		lastTS = ts
		stats.Events++

		switch name {
		case "stage.start":
			stage, err := requireInt(obj, "stage", line, name)
			if err != nil {
				return nil, err
			}
			if _, err := requireInt(obj, "scale", line, name); err != nil {
				return nil, err
			}
			iters, err := requireInt(obj, "iters", line, name)
			if err != nil {
				return nil, err
			}
			stats.StagesOpened[stage] = iters
		case "iter":
			stage, err := requireInt(obj, "stage", line, name)
			if err != nil {
				return nil, err
			}
			if _, err := requireInt(obj, "iter", line, name); err != nil {
				return nil, err
			}
			if _, ok := obj["loss"].(float64); !ok {
				return nil, fmt.Errorf("trace line %d (iter): missing numeric loss", line)
			}
			stats.StageIters[stage]++
			stats.Iters++
		case "tile":
			tx, err := requireInt(obj, "tx", line, name)
			if err != nil {
				return nil, err
			}
			ty, err := requireInt(obj, "ty", line, name)
			if err != nil {
				return nil, err
			}
			switch {
			case !haveTile:
				if tx != 0 || ty != 0 {
					return nil, fmt.Errorf("trace line %d: sweep starts at tile (%d,%d), want (0,0)", line, tx, ty)
				}
			case ty == lastTY && tx == lastTX+1:
				if sweepNX > 0 && tx >= sweepNX {
					return nil, fmt.Errorf("trace line %d: tile (%d,%d) past row width %d", line, tx, ty, sweepNX)
				}
			case ty == lastTY+1 && tx == 0:
				if sweepNX == 0 {
					sweepNX = lastTX + 1
				} else if lastTX+1 != sweepNX {
					return nil, fmt.Errorf("trace line %d: row %d ended after %d tiles, want %d",
						line, lastTY, lastTX+1, sweepNX)
				}
			default:
				return nil, fmt.Errorf("trace line %d: tile (%d,%d) out of row-major order after (%d,%d)",
					line, tx, ty, lastTX, lastTY)
			}
			lastTX, lastTY, haveTile = tx, ty, true
			stats.Tiles++
		case "fullchip.end":
			if haveTile && sweepNX > 0 && lastTX+1 != sweepNX {
				return nil, fmt.Errorf("trace line %d: sweep ended mid-row at tile (%d,%d), row width is %d",
					line, lastTX, lastTY, sweepNX)
			}
			haveTile, sweepNX = false, 0 // the sweep is closed; a later run restarts at (0,0)
		case "run.end":
			if w, ok := obj["wall_sec"].(float64); ok {
				stats.WallSec = w
			}
		case "phases":
			// Sorted keys: float addition is order-sensitive, and map
			// iteration order must never leak into a reported number.
			keys := make([]string, 0, len(obj))
			for k := range obj {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				m, ok := obj[k].(map[string]any)
				if !ok || k == "counters" {
					continue
				}
				if sec, ok := m["sec"].(float64); ok {
					stats.PhaseSec += sec
					stats.Phases++
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if stats.Events == 0 {
		return nil, fmt.Errorf("trace is empty")
	}
	for stage, budget := range stats.StagesOpened {
		if budget > 0 && stats.StageIters[stage] == 0 {
			return nil, fmt.Errorf("stage %d opened with budget %d but produced no iter events", stage, budget)
		}
	}
	return stats, nil
}

func requireInt(obj map[string]any, key string, line int, event string) (int, error) {
	v, ok := obj[key].(float64)
	if !ok {
		return 0, fmt.Errorf("trace line %d (%s): missing numeric %q", line, event, key)
	}
	return int(v), nil
}
