package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramBucketIndex(t *testing.T) {
	h := newHistogram("h", HistDuration)
	inf := len(h.buckets) - 1
	cases := []struct {
		v    int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 0},
		{1 << 10, 0},       // exactly the first upper bound
		{1<<10 + 1, 1},     // just past it
		{1 << 20, 10},      // exact power lands in its own bucket
		{1<<20 + 1, 11},    //
		{1 << 37, inf - 1}, // last finite bucket
		{1<<37 + 1, inf},   // overflow
		{math.MaxInt64, inf},
	}
	for _, c := range cases {
		if got := h.bucketIndex(c.v); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	// Every observation lands below or at its bucket's upper bound and
	// above the lower bound (in raw units).
	for _, v := range []int64{1, 999, 1 << 15, 3 << 20, 1 << 36} {
		i := h.bucketIndex(v)
		lo, hi := h.lowerBound(i)/h.scale(), h.upperBound(i)/h.scale()
		if float64(v) > hi || (i > 0 && float64(v) <= lo) {
			t.Errorf("v=%d landed in bucket %d (%g, %g]", v, i, lo, hi)
		}
	}
}

func TestHistogramStatAndQuantiles(t *testing.T) {
	h := newHistogram("iter", HistDuration)
	// 100 observations of 1ms, 10 of 100ms: p50 sits in the 1ms octave,
	// p95 and p99 in the 100ms octave.
	for i := 0; i < 100; i++ {
		h.ObserveDuration(time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		h.ObserveDuration(100 * time.Millisecond)
	}
	st := h.Stat()
	if st.Count != 110 {
		t.Fatalf("count = %d, want 110", st.Count)
	}
	wantSum := 100*0.001 + 10*0.1
	if math.Abs(st.Sum-wantSum) > 1e-9 {
		t.Errorf("sum = %g, want %g", st.Sum, wantSum)
	}
	// 1ms falls in the (2^19, 2^20] ns octave ≈ (0.524ms, 1.049ms];
	// 100ms in (2^26, 2^27] ns ≈ (67ms, 134ms].
	if st.P50 < 0.0005 || st.P50 > 0.0011 {
		t.Errorf("p50 = %g, want ≈ 1ms", st.P50)
	}
	if st.P95 < 0.067 || st.P95 > 0.135 {
		t.Errorf("p95 = %g, want ≈ 100ms", st.P95)
	}
	if st.P99 < st.P95 {
		t.Errorf("p99 %g < p95 %g", st.P99, st.P95)
	}
	if st.Unit != "seconds" {
		t.Errorf("unit = %q", st.Unit)
	}
	// Buckets are cumulative, trimmed to the populated range, and end at
	// the total count.
	if len(st.Buckets) == 0 {
		t.Fatal("no buckets in snapshot")
	}
	last := st.Buckets[len(st.Buckets)-1]
	if last.Count != 110 {
		t.Errorf("final cumulative count = %d, want 110", last.Count)
	}
	for i := 1; i < len(st.Buckets); i++ {
		if st.Buckets[i].Count < st.Buckets[i-1].Count || st.Buckets[i].LE <= st.Buckets[i-1].LE {
			t.Errorf("buckets not cumulative/increasing at %d: %+v", i, st.Buckets)
		}
	}
}

func TestHistogramEmptyAndNil(t *testing.T) {
	var h *Histogram
	h.Observe(5) // must not panic
	if st := h.Stat(); st.Count != 0 || st.P99 != 0 {
		t.Errorf("nil histogram stat = %+v", st)
	}
	empty := newHistogram("e", HistCount)
	if st := empty.Stat(); st.Count != 0 || st.Sum != 0 || len(st.Buckets) != 0 {
		t.Errorf("empty histogram stat = %+v", st)
	}
}

func TestRecorderHistogramRegistry(t *testing.T) {
	r := New(WithClock(newFakeClock().Now))
	a := r.Histogram("x", HistDuration)
	b := r.Histogram("x", HistDuration)
	if a != b {
		t.Fatal("same name returned distinct histograms")
	}
	r.Histogram("a", HistCount).Observe(3)
	a.ObserveDuration(time.Millisecond)
	hs := r.Histograms()
	if len(hs) != 2 || hs[0].Name != "a" || hs[1].Name != "x" {
		t.Fatalf("Histograms() = %+v, want [a x]", hs)
	}
	if hs[0].Unit != "count" || hs[0].Sum != 3 {
		t.Errorf("count histogram snapshot = %+v", hs[0])
	}

	var nilRec *Recorder
	if nilRec.Histogram("x", HistDuration) != nil {
		t.Error("nil recorder returned a live histogram")
	}
	if nilRec.Histograms() != nil {
		t.Error("nil recorder returned snapshots")
	}
}

func TestSpanHistogramOptIn(t *testing.T) {
	clk := newFakeClock()
	r := New(WithClock(clk.Now), WithSpanHistograms("hot"))
	for i := 0; i < 3; i++ {
		sp := r.StartSpan("hot")
		clk.Advance(2 * time.Millisecond)
		sp.End()
		sp = r.StartSpan("cold")
		clk.Advance(5 * time.Millisecond)
		sp.End()
	}
	hs := r.Histograms()
	if len(hs) != 1 || hs[0].Name != "hot" {
		t.Fatalf("Histograms() = %+v, want only the opted-in phase", hs)
	}
	if hs[0].Count != 3 || math.Abs(hs[0].Sum-0.006) > 1e-9 {
		t.Errorf("hot histogram = %+v, want 3 observations summing 6ms", hs[0])
	}
	// Phase totals accumulate for both phases regardless of opt-in.
	ph := r.Phases()
	if len(ph) != 2 {
		t.Fatalf("phases = %+v", ph)
	}
}

func TestCloseEmitsHistogramSummaries(t *testing.T) {
	clk := newFakeClock()
	cap := &captureSink{}
	r := New(WithClock(clk.Now), WithSink(cap))
	r.Histogram("core.iter", HistDuration).ObserveDuration(8 * time.Millisecond)
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	last := cap.events[len(cap.events)-1]
	if last.Name != "phases" {
		t.Fatalf("last event %q, want phases", last.Name)
	}
	hf, ok := last.Fields["histograms"].(Fields)
	if !ok {
		t.Fatalf("phases event has no histograms field: %v", last.Fields)
	}
	m, ok := hf["core.iter"].(map[string]any)
	if !ok || m["count"].(int64) != 1 {
		t.Fatalf("core.iter summary = %v", hf["core.iter"])
	}
	for _, k := range []string{"sum", "p50", "p95", "p99"} {
		if _, ok := m[k]; !ok {
			t.Errorf("summary missing %q: %v", k, m)
		}
	}

	// Without histograms the phases event must not grow the field (the
	// golden JSONL test depends on the exact bytes).
	cap2 := &captureSink{}
	r2 := New(WithClock(clk.Now), WithSink(cap2))
	r2.StartSpan("p").End()
	if err := r2.Close(); err != nil {
		t.Fatal(err)
	}
	last2 := cap2.events[len(cap2.events)-1]
	if _, ok := last2.Fields["histograms"]; ok {
		t.Error("histogram-free recorder emitted a histograms field")
	}
}

func TestRecorderMerge(t *testing.T) {
	clk := newFakeClock()
	src := New(WithClock(clk.Now), WithSpanHistograms("litho.adjoint"))
	sp := src.StartSpan("litho.adjoint")
	clk.Advance(3 * time.Millisecond)
	sp.End()
	src.Add("litho.forward_sims", 7)
	src.Histogram("core.iter", HistDuration).ObserveDuration(10 * time.Millisecond)

	dst := New(WithClock(clk.Now))
	dst.Add("litho.forward_sims", 1)
	dst.Histogram("core.iter", HistDuration).ObserveDuration(20 * time.Millisecond)
	dst.Merge(src)
	dst.Merge(nil) // no-op
	var nilRec *Recorder
	nilRec.Merge(src) // no-op

	if c := dst.Counters()["litho.forward_sims"]; c != 8 {
		t.Errorf("merged counter = %d, want 8", c)
	}
	ph := dst.Phases()
	if len(ph) != 1 || ph[0].Name != "litho.adjoint" || ph[0].Count != 1 ||
		math.Abs(ph[0].Seconds-0.003) > 1e-9 {
		t.Errorf("merged phases = %+v", ph)
	}
	hs := dst.Histograms()
	var iter HistStat
	for _, h := range hs {
		if h.Name == "core.iter" {
			iter = h
		}
	}
	if iter.Count != 2 || math.Abs(iter.Sum-0.030) > 1e-9 {
		t.Errorf("merged core.iter = %+v, want 2 observations summing 30ms", iter)
	}
	// The span histogram travels with the merge under its phase name.
	found := false
	for _, h := range hs {
		if h.Name == "litho.adjoint" && h.Count == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("merged histograms missing litho.adjoint: %+v", hs)
	}
}

// TestRecorderMergeConcurrent exercises Merge's documented contract under
// -race: each src is quiescent (its job finished before the merge starts)
// but the dst keeps absorbing other merges AND direct producer traffic the
// whole time — the exact shape of the server-level recorder aggregating
// finished jobs while live handlers observe into it. The final totals pin
// that no update was lost in the interleaving.
func TestRecorderMergeConcurrent(t *testing.T) {
	const jobs = 8
	const perJob = 100
	const writers = 4

	clk := newFakeClock()
	srcs := make([]*Recorder, jobs)
	for i := range srcs {
		src := New(WithClock(clk.Now))
		for k := 0; k < perJob; k++ {
			src.Add("jobs.iters", 1)
			src.Histogram("core.iter", HistDuration).ObserveDuration(time.Millisecond)
		}
		sp := src.StartSpan("litho.adjoint")
		clk.Advance(time.Millisecond)
		sp.End()
		srcs[i] = src
	}

	dst := New(WithClock(newFakeClock().Now))
	var wg sync.WaitGroup
	for _, src := range srcs {
		wg.Add(1)
		go func(src *Recorder) {
			defer wg.Done()
			dst.Merge(src)
		}(src)
	}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < perJob; k++ {
				dst.Add("jobs.iters", 1)
				dst.Histogram("core.iter", HistDuration).ObserveDuration(2 * time.Millisecond)
			}
		}()
	}
	wg.Wait()

	wantCount := int64((jobs + writers) * perJob)
	if c := dst.Counters()["jobs.iters"]; c != wantCount {
		t.Errorf("jobs.iters = %d after concurrent merges, want %d", c, wantCount)
	}
	var iter HistStat
	for _, h := range dst.Histograms() {
		if h.Name == "core.iter" {
			iter = h
		}
	}
	if iter.Count != int64((jobs+writers)*perJob) {
		t.Errorf("core.iter count = %d, want %d", iter.Count, (jobs+writers)*perJob)
	}
	wantSum := float64(jobs*perJob)*0.001 + float64(writers*perJob)*0.002
	if math.Abs(iter.Sum-wantSum) > 1e-9 {
		t.Errorf("core.iter sum = %v, want %v", iter.Sum, wantSum)
	}
	ph := dst.Phases()
	if len(ph) != 1 || ph[0].Name != "litho.adjoint" || ph[0].Count != jobs {
		t.Errorf("merged phases = %+v, want litho.adjoint x%d", ph, jobs)
	}
}

// TestHistogramObserveZeroAlloc is the hot-path contract: Observe allocates
// nothing on a live histogram, a nil histogram, and the full disabled-
// recorder resolution path — the same discipline the spans tests enforce.
func TestHistogramObserveZeroAlloc(t *testing.T) {
	live := New(WithClock(newFakeClock().Now)).Histogram("h", HistDuration)
	if n := testing.AllocsPerRun(1000, func() { live.Observe(123456) }); n != 0 {
		t.Errorf("live Observe allocates %v/op, want 0", n)
	}
	var nilHist *Histogram
	if n := testing.AllocsPerRun(1000, func() { nilHist.Observe(123456) }); n != 0 {
		t.Errorf("nil Observe allocates %v/op, want 0", n)
	}
	var nilRec *Recorder
	if n := testing.AllocsPerRun(1000, func() {
		nilRec.Histogram("h", HistDuration).Observe(123456)
	}); n != 0 {
		t.Errorf("disabled recorder histogram path allocates %v/op, want 0", n)
	}
}

func TestManifestCarriesHistograms(t *testing.T) {
	dir := t.TempDir()
	r := New(WithClock(newFakeClock().Now))
	r.Histogram("core.iter", HistDuration).ObserveDuration(time.Millisecond)
	m := NewManifest("test", nil)
	m.Finish(r)
	path := dir + "/manifest.json"
	if err := m.Write(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Histograms) != 1 || back.Histograms[0].Name != "core.iter" ||
		back.Histograms[0].Count != 1 {
		t.Fatalf("round-tripped histograms = %+v", back.Histograms)
	}
	if !strings.Contains(back.Histograms[0].Unit, "seconds") {
		t.Errorf("unit = %q", back.Histograms[0].Unit)
	}
}

// BenchmarkSpanEnd vs BenchmarkSpanEndWithHistogram: the opt-in must stay
// within noise of the spans-only baseline (one extra bounded atomic add).
func BenchmarkSpanEnd(b *testing.B) {
	r := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.StartSpan("p").End()
	}
}

func BenchmarkSpanEndWithHistogram(b *testing.B) {
	r := New(WithSpanHistograms("p"))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.StartSpan("p").End()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := New().Histogram("h", HistDuration)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i)<<10 + 1)
	}
}

func BenchmarkHistogramObserveDisabled(b *testing.B) {
	var r *Recorder
	h := r.Histogram("h", HistDuration)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}
