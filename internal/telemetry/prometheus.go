package telemetry

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// PrometheusContentType is the Content-Type of the text exposition format
// this package hand-rolls (no client library dependency).
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders the recorder's aggregates in the Prometheus text
// exposition format 0.0.4:
//
//   - counters as ilt_<name>_total
//   - phase timers as ilt_phase_seconds_total / ilt_phase_calls_total with
//     a phase="<name>" label
//   - histograms as <family>_bucket{le="..."} / _sum / _count, where the
//     family is ilt_<name>_seconds for durations and ilt_<name> for counts
//
// Label cardinality stays bounded by construction: the only labels are
// "le" (fixed bucket geometry) and "phase" (the fixed phase vocabulary of
// the instrumented code); nothing per-job or per-request ever becomes a
// label. Output order is deterministic (names sorted). Nil-safe.
func (r *Recorder) WritePrometheus(w io.Writer) {
	if r == nil {
		return
	}
	counters := r.Counters()
	names := make([]string, 0, len(counters))
	for name := range counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fam := promName(name) + "_total"
		fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", fam, fam, counters[name])
	}

	if phases := r.Phases(); len(phases) > 0 {
		fmt.Fprint(w, "# TYPE ilt_phase_seconds_total counter\n")
		for _, p := range phases {
			fmt.Fprintf(w, "ilt_phase_seconds_total{phase=%q} %s\n", p.Name, promFloat(p.Seconds))
		}
		fmt.Fprint(w, "# TYPE ilt_phase_calls_total counter\n")
		for _, p := range phases {
			fmt.Fprintf(w, "ilt_phase_calls_total{phase=%q} %d\n", p.Name, p.Count)
		}
	}

	var hists []*Histogram
	r.hists.Range(func(_, v any) bool {
		hists = append(hists, v.(*Histogram))
		return true
	})
	sort.Slice(hists, func(i, j int) bool { return hists[i].name < hists[j].name })
	for _, h := range hists {
		h.writePrometheus(w)
	}
}

// writePrometheus renders one histogram family with the full fixed bucket
// set (stable series across scrapes, which Prometheus rate math relies on).
func (h *Histogram) writePrometheus(w io.Writer) {
	fam := promName(h.name)
	if h.kind == HistDuration {
		fam += "_seconds"
	}
	fmt.Fprintf(w, "# TYPE %s histogram\n", fam)
	var cum int64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", fam, promLE(h.upperBound(i)), cum)
	}
	fmt.Fprintf(w, "%s_sum %s\n", fam, promFloat(float64(h.sum.Load())*h.scale()))
	fmt.Fprintf(w, "%s_count %d\n", fam, h.count.Load())
}

// RuntimeStats is the runtime-gauge block exported by /metrics (JSON and
// Prometheus) so dashboards can correlate ILT latency with scheduler and
// GC pressure.
type RuntimeStats struct {
	Goroutines      int     `json:"goroutines"`
	HeapInuseBytes  uint64  `json:"heap_inuse_bytes"`
	HeapAllocBytes  uint64  `json:"heap_alloc_bytes"`
	GCPauseTotalSec float64 `json:"gc_pause_total_sec"`
	NumGC           uint32  `json:"num_gc"`
}

// ReadRuntime samples the runtime gauges. runtime.ReadMemStats costs a
// brief stop-the-world; scrape-rate (not hot-path) use only.
func ReadRuntime() RuntimeStats {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return RuntimeStats{
		Goroutines:      runtime.NumGoroutine(),
		HeapInuseBytes:  ms.HeapInuse,
		HeapAllocBytes:  ms.HeapAlloc,
		GCPauseTotalSec: float64(ms.PauseTotalNs) * 1e-9,
		NumGC:           ms.NumGC,
	}
}

// WritePrometheus renders the runtime block: point-in-time values as
// gauges, monotonic totals as counters.
func (s RuntimeStats) WritePrometheus(w io.Writer) {
	WriteGauge(w, "ilt_goroutines", float64(s.Goroutines))
	WriteGauge(w, "ilt_heap_inuse_bytes", float64(s.HeapInuseBytes))
	WriteGauge(w, "ilt_heap_alloc_bytes", float64(s.HeapAllocBytes))
	fmt.Fprintf(w, "# TYPE ilt_gc_pause_seconds_total counter\nilt_gc_pause_seconds_total %s\n",
		promFloat(s.GCPauseTotalSec))
	fmt.Fprintf(w, "# TYPE ilt_gc_cycles_total counter\nilt_gc_cycles_total %d\n", s.NumGC)
}

// WriteGauge writes one unlabeled gauge sample in the text format.
func WriteGauge(w io.Writer, name string, v float64) {
	fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", name, name, promFloat(v))
}

// promName maps a recorder name ("litho.plan_builds") to a metric name
// ("ilt_litho_plan_builds"): the ilt_ namespace prefix plus every
// non-[a-zA-Z0-9_] byte replaced by '_'.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 4)
	b.WriteString("ilt_")
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promLE formats a bucket upper bound ("+Inf" for the overflow bucket).
func promLE(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return promFloat(v)
}

// promFloat is the shortest round-trip decimal rendering ('g', like
// expvar), deterministic for the fixed bucket bounds.
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
