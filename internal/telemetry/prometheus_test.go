package telemetry

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestWritePrometheusExposition(t *testing.T) {
	clk := newFakeClock()
	r := New(WithClock(clk.Now), WithSpanHistograms("litho.adjoint"))
	r.Add("server.jobs_submitted", 3)
	r.Add("litho.plan_builds", 2)
	sp := r.StartSpan("litho.adjoint")
	clk.Advance(4 * time.Millisecond)
	sp.End()
	r.Histogram("core.iter", HistDuration).ObserveDuration(2 * time.Millisecond)
	r.Histogram("queue.batch", HistCount).Observe(5)

	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	out := buf.String()

	for _, want := range []string{
		// counters: sorted, ilt_ namespace, _total suffix, dots sanitized
		"# TYPE ilt_litho_plan_builds_total counter\nilt_litho_plan_builds_total 2\n",
		"# TYPE ilt_server_jobs_submitted_total counter\nilt_server_jobs_submitted_total 3\n",
		// phase families with the phase label
		`ilt_phase_seconds_total{phase="litho.adjoint"} 0.004`,
		`ilt_phase_calls_total{phase="litho.adjoint"} 1`,
		// duration histogram: seconds family, +Inf bucket, sum/count
		"# TYPE ilt_core_iter_seconds histogram\n",
		`ilt_core_iter_seconds_bucket{le="+Inf"} 1`,
		"ilt_core_iter_seconds_sum 0.002",
		"ilt_core_iter_seconds_count 1",
		// the opted-in span phase exports as its own histogram family
		`ilt_litho_adjoint_seconds_bucket{le="+Inf"} 1`,
		// count histogram: no unit suffix
		`ilt_queue_batch_bucket{le="+Inf"} 1`,
		"ilt_queue_batch_sum 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n---\n%s", want, out)
		}
	}

	// The 2ms observation must be counted in every bucket at or above its
	// octave (cumulative semantics). 2ms = 2^21 ns → le=2^21ns ≈ 0.002097s.
	if !strings.Contains(out, `ilt_core_iter_seconds_bucket{le="0.002097152"} 1`) {
		t.Errorf("cumulative bucket for 2ms missing:\n%s", out)
	}
	if !strings.Contains(out, `ilt_core_iter_seconds_bucket{le="0.001048576"} 0`) {
		t.Errorf("bucket below 2ms should be 0:\n%s", out)
	}

	// Determinism: a second render is byte-identical.
	var buf2 bytes.Buffer
	r.WritePrometheus(&buf2)
	if buf.String() != buf2.String() {
		t.Error("exposition is not deterministic across renders")
	}

	// Nil recorder renders nothing.
	var nilRec *Recorder
	var buf3 bytes.Buffer
	nilRec.WritePrometheus(&buf3)
	if buf3.Len() != 0 {
		t.Errorf("nil recorder wrote %q", buf3.String())
	}
}

func TestRuntimeStatsPrometheus(t *testing.T) {
	s := ReadRuntime()
	if s.Goroutines < 1 {
		t.Errorf("goroutines = %d", s.Goroutines)
	}
	if s.HeapInuseBytes == 0 {
		t.Error("heap in-use reads 0")
	}
	var buf bytes.Buffer
	s.WritePrometheus(&buf)
	out := buf.String()
	for _, want := range []string{
		"# TYPE ilt_goroutines gauge\nilt_goroutines ",
		"# TYPE ilt_heap_inuse_bytes gauge\n",
		"# TYPE ilt_heap_alloc_bytes gauge\n",
		"# TYPE ilt_gc_pause_seconds_total counter\n",
		"# TYPE ilt_gc_cycles_total counter\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("runtime exposition missing %q\n---\n%s", want, out)
		}
	}
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"litho.plan_builds": "ilt_litho_plan_builds",
		"server.sse-flush":  "ilt_server_sse_flush",
		"a b/c":             "ilt_a_b_c",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}
