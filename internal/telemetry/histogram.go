package telemetry

import (
	"math"
	"math/bits"
	"sort"
	"sync/atomic"
	"time"
)

// HistKind selects the unit semantics of a Histogram.
type HistKind int

const (
	// HistDuration observations are nanoseconds (int64(time.Duration));
	// snapshots and the Prometheus exposition report seconds.
	HistDuration HistKind = iota
	// HistCount observations are dimensionless quantities (items, bytes);
	// reported unscaled.
	HistCount
)

// Unit names the exported unit of the kind.
func (k HistKind) Unit() string {
	if k == HistDuration {
		return "seconds"
	}
	return "count"
}

// Bucket geometry: one bucket per power of two ("octave") over a fixed,
// kind-dependent range, plus a +Inf overflow bucket. Fixed bounds keep the
// label set stable across scrapes (Prometheus rate math needs that) and
// make Observe a pure index computation — no resizing, no locking.
//
// Durations span ~1 µs to ~137 s: below the range sits in the first bucket
// (nothing we time is meaningfully under a microsecond), above it in +Inf.
const (
	histDurMinExp = 10 // 2^10 ns ≈ 1.02 µs
	histDurMaxExp = 37 // 2^37 ns ≈ 137.4 s
	histCntMinExp = 0  // ≤ 1
	histCntMaxExp = 30 // ≈ 1.07e9
)

func histRange(kind HistKind) (minExp, maxExp int) {
	if kind == HistDuration {
		return histDurMinExp, histDurMaxExp
	}
	return histCntMinExp, histCntMaxExp
}

// Histogram is a lock-free latency/size distribution: fixed log₂-scaled
// buckets over atomic counters. Observe is wait-free, allocation-free and
// safe for any number of concurrent writers; a nil *Histogram is the
// disabled no-op, so callers can resolve one unconditionally (possibly from
// a nil Recorder) and observe in hot loops without a guard.
type Histogram struct {
	name   string
	kind   HistKind
	minExp int
	count  atomic.Int64
	sum    atomic.Int64
	// buckets[i] counts observations in octave minExp+i (upper bound
	// 2^(minExp+i)); the final slot is the +Inf overflow bucket.
	buckets []atomic.Int64
}

func newHistogram(name string, kind HistKind) *Histogram {
	minExp, maxExp := histRange(kind)
	return &Histogram{
		name:    name,
		kind:    kind,
		minExp:  minExp,
		buckets: make([]atomic.Int64, maxExp-minExp+2),
	}
}

// Name returns the histogram's registry name.
func (h *Histogram) Name() string { return h.name }

// Kind returns the histogram's unit semantics.
func (h *Histogram) Kind() HistKind { return h.kind }

// Observe records one value (nanoseconds for HistDuration). Nil-safe,
// lock-free, and allocation-free — cheap enough for per-iteration and
// per-FFT call sites.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[h.bucketIndex(v)].Add(1)
}

// ObserveDuration records one wall-time sample into a duration histogram.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// bucketIndex maps v to the bucket whose upper bound 2^k is the smallest
// power of two ≥ v, clamped to the fixed range.
func (h *Histogram) bucketIndex(v int64) int {
	if v <= 1 {
		return 0
	}
	k := bits.Len64(uint64(v-1)) // ceil(log2 v)
	if k <= h.minExp {
		return 0
	}
	if i := k - h.minExp; i < len(h.buckets)-1 {
		return i
	}
	return len(h.buckets) - 1
}

// scale converts a raw observation to the exported unit.
func (h *Histogram) scale() float64 {
	if h.kind == HistDuration {
		return 1e-9
	}
	return 1
}

// upperBound returns bucket i's upper bound in exported units; the last
// bucket is +Inf.
func (h *Histogram) upperBound(i int) float64 {
	if i == len(h.buckets)-1 {
		return math.Inf(1)
	}
	return float64(int64(1)<<uint(h.minExp+i)) * h.scale()
}

// lowerBound returns bucket i's lower bound in exported units (0 for the
// first bucket).
func (h *Histogram) lowerBound(i int) float64 {
	if i == 0 {
		return 0
	}
	return float64(int64(1)<<uint(h.minExp+i-1)) * h.scale()
}

// HistBucket is one cumulative bucket of a snapshot: the count of
// observations ≤ LE (exported units). The final bucket of a full dump has
// LE = +Inf; JSON encodes it via the preceding finite buckets only, since
// the cumulative count there already equals Count.
type HistBucket struct {
	LE    float64 `json:"le"`
	Count int64   `json:"count"`
}

// HistStat is one histogram's snapshot: totals, interpolated quantiles and
// the non-empty cumulative buckets, all in exported units (seconds for
// HistDuration). It appears in run manifests, the expvar "ilt" variable and
// the /metrics JSON document.
type HistStat struct {
	Name    string       `json:"name"`
	Unit    string       `json:"unit"`
	Count   int64        `json:"count"`
	Sum     float64      `json:"sum"`
	P50     float64      `json:"p50"`
	P95     float64      `json:"p95"`
	P99     float64      `json:"p99"`
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// Stat snapshots the histogram. Concurrent Observes may land between the
// bucket reads; the snapshot is a consistent-enough monitoring view, not a
// barrier. Buckets are trimmed to the populated range (the cumulative count
// past the last non-empty bucket equals Count).
func (h *Histogram) Stat() HistStat {
	if h == nil {
		return HistStat{}
	}
	counts := make([]int64, len(h.buckets))
	var total int64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	st := HistStat{
		Name:  h.name,
		Unit:  h.kind.Unit(),
		Count: total,
		Sum:   float64(h.sum.Load()) * h.scale(),
		P50:   h.quantile(counts, total, 0.50),
		P95:   h.quantile(counts, total, 0.95),
		P99:   h.quantile(counts, total, 0.99),
	}
	first, last := -1, -1
	for i, c := range counts {
		if c > 0 {
			if first < 0 {
				first = i
			}
			last = i
		}
	}
	if first >= 0 {
		var cum int64
		for i := 0; i <= last; i++ {
			cum += counts[i]
			if i >= first {
				st.Buckets = append(st.Buckets, HistBucket{LE: h.upperBound(i), Count: cum})
			}
		}
	}
	return st
}

// quantile estimates the q-quantile (exported units) by linear
// interpolation inside the containing bucket — deterministic given the
// counts, exact to within one octave.
func (h *Histogram) quantile(counts []int64, total int64, q float64) float64 {
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		cum += c
		if cum < rank {
			continue
		}
		lo := h.lowerBound(i)
		hi := h.upperBound(i)
		if math.IsInf(hi, 1) {
			return lo // the overflow bucket has no finite upper edge
		}
		frac := float64(rank-(cum-c)) / float64(c)
		return lo + (hi-lo)*frac
	}
	return h.upperBound(len(counts) - 1)
}

// merge folds src's samples into h bucket-wise. Both histograms must share
// a kind (and therefore geometry); mismatches are dropped rather than
// corrupting the buckets.
func (h *Histogram) merge(src *Histogram) {
	if h == nil || src == nil || h.kind != src.kind || len(h.buckets) != len(src.buckets) {
		return
	}
	for i := range src.buckets {
		if n := src.buckets[i].Load(); n != 0 {
			h.buckets[i].Add(n)
		}
	}
	h.count.Add(src.count.Load())
	h.sum.Add(src.sum.Load())
}

// Histogram returns the named histogram, registering it on first use. On a
// nil recorder it returns nil — the disabled no-op — so call sites resolve
// once and Observe unconditionally. Asking for an existing name with a
// different kind returns the registered histogram unchanged (first kind
// wins); names are a per-recorder vocabulary, not user input.
func (r *Recorder) Histogram(name string, kind HistKind) *Histogram {
	if r == nil {
		return nil
	}
	if v, ok := r.hists.Load(name); ok {
		return v.(*Histogram)
	}
	v, _ := r.hists.LoadOrStore(name, newHistogram(name, kind))
	return v.(*Histogram)
}

// Histograms snapshots every registered histogram, sorted by name.
func (r *Recorder) Histograms() []HistStat {
	if r == nil {
		return nil
	}
	var out []HistStat
	r.hists.Range(func(_, v any) bool {
		out = append(out, v.(*Histogram).Stat())
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Merge folds src's phase timers, counters and histograms into r. The ILT
// server uses it to aggregate each finished job's recorder into the
// server-level recorder, so /metrics reports cross-job phase totals and
// latency distributions. src must be quiescent (its run finished); r keeps
// accepting concurrent updates.
func (r *Recorder) Merge(src *Recorder) {
	if r == nil || src == nil {
		return
	}
	src.phases.Range(func(k, v any) bool {
		p := v.(*phase)
		r.mergePhase(k.(string), p.nanos.Load(), p.count.Load())
		return true
	})
	src.counters.Range(func(k, v any) bool {
		r.Add(k.(string), v.(*atomic.Int64).Load())
		return true
	})
	src.hists.Range(func(k, v any) bool {
		sh := v.(*Histogram)
		r.Histogram(k.(string), sh.kind).merge(sh)
		return true
	})
}
