package telemetry

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock is a hand-advanced time source for deterministic traces.
type fakeClock struct {
	mu  sync.Mutex
	cur time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{cur: time.Unix(1700000000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cur
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.cur = c.cur.Add(d)
	c.mu.Unlock()
}

// captureSink retains every event for assertions.
type captureSink struct {
	events []Event
}

func (s *captureSink) Emit(e Event) { s.events = append(s.events, e) }
func (s *captureSink) Flush() error { return nil }

func TestNilRecorderIsSafeAndFree(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	// Every method must be callable on nil.
	sp := r.StartSpan("x")
	sp.End()
	r.Add("c", 1)
	r.Emit("e", Fields{"k": 1})
	r.Progressf("hello %d", 1)
	if r.Phases() != nil || r.Counters() != nil || r.Elapsed() != 0 {
		t.Error("nil recorder leaked state")
	}
	if err := r.Close(); err != nil {
		t.Errorf("nil Close: %v", err)
	}

	// The disabled fast path — exactly the calls the litho hot loops make —
	// must not allocate. (Emit with a Fields literal would; instrumented
	// code guards per-iteration literals behind Enabled.)
	allocs := testing.AllocsPerRun(1000, func() {
		sp := r.StartSpan("litho.fft_forward")
		sp.End()
		r.Add("litho.forward_sims", 1)
		r.Emit("e", nil)
	})
	if allocs != 0 {
		t.Errorf("disabled recorder path allocates %.1f per op, want 0", allocs)
	}
}

func TestSpanAggregationWithFakeClock(t *testing.T) {
	clk := newFakeClock()
	r := New(WithClock(clk.Now))

	// Nested spans: the outer span covers the inner one; each phase
	// accumulates its own wall time independently.
	outer := r.StartSpan("outer")
	clk.Advance(50 * time.Millisecond)
	inner := r.StartSpan("inner")
	clk.Advance(100 * time.Millisecond)
	inner.End()
	clk.Advance(50 * time.Millisecond)
	outer.End()

	inner2 := r.StartSpan("inner")
	clk.Advance(25 * time.Millisecond)
	inner2.End()

	stats := map[string]PhaseStat{}
	for _, p := range r.Phases() {
		stats[p.Name] = p
	}
	if got := stats["outer"]; got.Seconds != 0.2 || got.Count != 1 {
		t.Errorf("outer = %+v, want 0.2s ×1", got)
	}
	if got := stats["inner"]; got.Seconds != 0.125 || got.Count != 2 {
		t.Errorf("inner = %+v, want 0.125s ×2", got)
	}
	if r.Elapsed() != 0.225 {
		t.Errorf("elapsed %g, want 0.225", r.Elapsed())
	}
}

func TestConcurrentSpansCountersAndEmit(t *testing.T) {
	sink := &captureSink{}
	r := New(WithSink(sink))
	const workers, iters = 8, 200

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				sp := r.StartSpan("phase")
				r.Add("ops", 1)
				sp.End()
				r.Emit("tick", Fields{"worker": w, "i": i})
			}
		}(w)
	}
	wg.Wait()

	if got := r.Counters()["ops"]; got != workers*iters {
		t.Errorf("ops counter = %d, want %d", got, workers*iters)
	}
	var ph PhaseStat
	for _, p := range r.Phases() {
		if p.Name == "phase" {
			ph = p
		}
	}
	if ph.Count != workers*iters {
		t.Errorf("phase count = %d, want %d", ph.Count, workers*iters)
	}
	if len(sink.events) != workers*iters {
		t.Fatalf("captured %d events, want %d", len(sink.events), workers*iters)
	}
	// Seq must be contiguous and match delivery order even under contention.
	for i, e := range sink.events {
		if e.Seq != int64(i+1) {
			t.Fatalf("event %d has seq %d (delivery order must equal seq order)", i, e.Seq)
		}
	}
}

func TestTraceSinkGoldenJSONL(t *testing.T) {
	clk := newFakeClock()
	var buf bytes.Buffer
	r := New(WithClock(clk.Now), WithTrace(&buf))

	clk.Advance(250 * time.Millisecond)
	r.Emit("run.start", Fields{"tool": "iltopt", "name": "case1"})
	sp := r.StartSpan("litho.socs")
	clk.Advance(500 * time.Millisecond)
	sp.End()
	r.Emit("iter", Fields{"stage": 0, "iter": 0, "loss": 12.5})
	r.Add("sims", 3)
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	// json.Marshal sorts map keys, the clock is fake, seq is deterministic:
	// the byte stream is a stable golden.
	want := strings.Join([]string{
		`{"event":"run.start","name":"case1","seq":1,"tool":"iltopt","ts":0.25}`,
		`{"event":"iter","iter":0,"loss":12.5,"seq":2,"stage":0,"ts":0.75}`,
		`{"counters":{"sims":3},"event":"phases","litho.socs":{"count":1,"sec":0.5},"seq":3,"ts":0.75}`,
		``,
	}, "\n")
	if got := buf.String(); got != want {
		t.Errorf("trace mismatch:\ngot:\n%swant:\n%s", got, want)
	}

	// The golden stream round-trips through the validator.
	stats, err := ValidateTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("golden trace fails validation: %v", err)
	}
	if stats.Events != 3 || stats.Iters != 1 || stats.Phases != 1 || stats.PhaseSec != 0.5 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestConsoleSinkRendersAndThrottles(t *testing.T) {
	clk := newFakeClock()
	var buf bytes.Buffer
	r := New(WithClock(clk.Now), WithConsole(&buf))
	r.Emit("stage.start", Fields{"stage": 0, "scale": 4, "highres": false, "iters": 25})
	for i := 0; i < 25; i++ {
		r.Emit("iter", Fields{"stage": 0, "iter": i, "loss": 1.0, "l2": 0.9, "pvb": 0.1, "step": 1.0, "retries": 0, "sec": 0.01})
	}
	r.Progressf("checkpoint %d", 7)
	r.Close()

	out := buf.String()
	if got := strings.Count(out, "stage 0 iter "); got != 3 {
		// iters 0, 10, 20 print; the rest are throttled.
		t.Errorf("%d iteration lines, want 3 (every 10th):\n%s", got, out)
	}
	for _, want := range []string{"stage 0: s=4 low-res, budget 25 iters", "checkpoint 7", "phase breakdown"} {
		if !strings.Contains(out, want) {
			t.Errorf("console output missing %q:\n%s", want, out)
		}
	}
}

func TestValidateTraceRejects(t *testing.T) {
	cases := []struct {
		name  string
		trace string
		want  string
	}{
		{"empty", "", "empty"},
		{"bad json", "not json\n", "invalid JSON"},
		{"missing event", `{"seq":1,"ts":0}` + "\n", "missing event"},
		{"seq gap", `{"event":"a","seq":1,"ts":0}` + "\n" + `{"event":"b","seq":3,"ts":0}` + "\n", "seq 3 after 1"},
		{"ts regress", `{"event":"a","seq":1,"ts":5}` + "\n" + `{"event":"b","seq":2,"ts":4}` + "\n", "before"},
		{"iter missing loss", `{"event":"iter","seq":1,"ts":0,"stage":0,"iter":0}` + "\n", "loss"},
		{"tile missing coords", `{"event":"tile","seq":1,"ts":0,"tx":1}` + "\n", `"ty"`},
		{"uncovered stage", `{"event":"stage.start","seq":1,"ts":0,"stage":0,"scale":4,"iters":5}` + "\n", "no iter events"},
	}
	for _, tc := range cases {
		_, err := ValidateTrace(strings.NewReader(tc.trace))
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

// tileTrace renders a sequence of (tx,ty) tiles — with "end" closing a
// sweep — as a schema-valid JSONL trace.
func tileTrace(steps ...[2]int) string {
	var b strings.Builder
	for i, s := range steps {
		if s[0] < 0 {
			fmt.Fprintf(&b, `{"event":"fullchip.end","seq":%d,"ts":%d}`+"\n", i+1, i)
			continue
		}
		fmt.Fprintf(&b, `{"event":"tile","seq":%d,"ts":%d,"tx":%d,"ty":%d}`+"\n", i+1, i, s[0], s[1])
	}
	return b.String()
}

func TestValidateTraceTileOrder(t *testing.T) {
	end := [2]int{-1, -1}
	t.Run("row-major sweep accepted", func(t *testing.T) {
		trace := tileTrace([2]int{0, 0}, [2]int{1, 0}, [2]int{0, 1}, [2]int{1, 1}, end)
		stats, err := ValidateTrace(strings.NewReader(trace))
		if err != nil {
			t.Fatalf("valid 2×2 sweep rejected: %v", err)
		}
		if stats.Tiles != 4 {
			t.Errorf("Tiles = %d, want 4", stats.Tiles)
		}
	})
	t.Run("second sweep restarts at origin", func(t *testing.T) {
		trace := tileTrace([2]int{0, 0}, [2]int{1, 0}, end, [2]int{0, 0}, [2]int{1, 0}, end)
		if _, err := ValidateTrace(strings.NewReader(trace)); err != nil {
			t.Fatalf("back-to-back sweeps rejected: %v", err)
		}
	})

	rejects := []struct {
		name  string
		steps [][2]int
		want  string
	}{
		{"starts off origin", [][2]int{{1, 0}}, "want (0,0)"},
		{"skips a tile", [][2]int{{0, 0}, {1, 1}}, "out of row-major order"},
		{"repeats a tile", [][2]int{{0, 0}, {0, 0}}, "out of row-major order"},
		{"column-major walk", [][2]int{{0, 0}, {0, 1}, {1, 0}}, "out of row-major order"},
		{"short row", [][2]int{{0, 0}, {1, 0}, {0, 1}, {0, 2}}, "row 1 ended after 1 tiles, want 2"},
		{"long row", [][2]int{{0, 0}, {0, 1}, {1, 1}}, "past row width 1"},
		{"sweep ends mid-row", [][2]int{{0, 0}, {1, 0}, {0, 1}, {-1, -1}}, "ended mid-row"},
	}
	for _, tc := range rejects {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ValidateTrace(strings.NewReader(tileTrace(tc.steps...)))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestManifestRoundTrip(t *testing.T) {
	clk := newFakeClock()
	r := New(WithClock(clk.Now))
	sp := r.StartSpan("litho.socs")
	clk.Advance(time.Second)
	sp.End()
	r.Add("sims", 7)

	man := NewManifest("iltopt", map[string]any{"n": 256, "recipe": "exact"})
	man.SetMetric("l2_nm2", 17888)
	man.Finish(r)
	path := filepath.Join(t.TempDir(), "manifest.json")
	if err := man.Write(path); err != nil {
		t.Fatal(err)
	}

	got, err := ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Tool != "iltopt" || got.Schema != ManifestSchema {
		t.Errorf("tool/schema = %q/%d", got.Tool, got.Schema)
	}
	if got.Metrics["l2_nm2"] != 17888 {
		t.Errorf("metrics = %v", got.Metrics)
	}
	if got.DurationSec != 1 {
		t.Errorf("duration = %g, want 1", got.DurationSec)
	}
	if len(got.Phases) != 1 || got.Phases[0].Name != "litho.socs" || got.Phases[0].Seconds != 1 {
		t.Errorf("phases = %+v", got.Phases)
	}
	if got.Counters["sims"] != 7 {
		t.Errorf("counters = %v", got.Counters)
	}
	if got.Host.NumCPU < 1 || got.Host.OS == "" || got.Host.GoVersion == "" {
		t.Errorf("host block incomplete: %+v", got.Host)
	}
	// The repo is a git checkout, so the revision should resolve here.
	if got.GitRevision == "" {
		t.Log("git revision unresolved (acceptable outside a checkout)")
	}
}

func TestReadManifestRejectsWrongSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	for _, body := range []string{
		`{"schema":99,"tool":"x","host":{"os":"linux","num_cpu":4}}`,
		`{"schema":1,"tool":"","host":{"os":"linux","num_cpu":4}}`,
		`{"schema":1,"tool":"x","host":{"os":"","num_cpu":0}}`,
	} {
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadManifest(path); err == nil {
			t.Errorf("accepted invalid manifest %s", body)
		}
	}
}

func TestServeDebug(t *testing.T) {
	r := New()
	sp := r.StartSpan("litho.socs")
	sp.End()
	r.Add("sims", 1)

	addr, stop, err := ServeDebug("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	resp, err := http.Get(fmt.Sprintf("http://%s/debug/vars", addr))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/vars: %d", resp.StatusCode)
	}
	for _, want := range []string{`"ilt"`, "litho.socs", `"sims"`} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/debug/vars missing %q:\n%s", want, body)
		}
	}

	resp, err = http.Get(fmt.Sprintf("http://%s/debug/pprof/cmdline", addr))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline: %d", resp.StatusCode)
	}
}

func TestHostInfoPopulated(t *testing.T) {
	h := Host()
	if h.OS == "" || h.Arch == "" || h.NumCPU < 1 || h.GOMAXPROCS < 1 || h.GoVersion == "" {
		t.Errorf("host info incomplete: %+v", h)
	}
}
