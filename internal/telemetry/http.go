package telemetry

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
)

// debugRecorder is the recorder the expvar "ilt" variable snapshots.
// expvar.Publish is once-per-process, so the variable indirects through an
// atomic pointer and ServeDebug swaps in the active recorder.
var (
	debugRecorder atomic.Pointer[Recorder]
	publishOnce   sync.Once
)

// snapshot is the JSON shape of the expvar "ilt" variable.
type snapshot struct {
	ElapsedSec float64          `json:"elapsed_sec"`
	Phases     []PhaseStat      `json:"phases"`
	Counters   map[string]int64 `json:"counters"`
	Histograms []HistStat       `json:"histograms,omitempty"`
}

// AttachDebug registers the debug endpoints — /debug/vars (expvar, with
// the recorder's phases and counters as the "ilt" variable) and
// /debug/pprof/ — on an existing mux, and makes r the recorder the "ilt"
// expvar snapshots. The long-running ILT server mounts these next to its
// own API routes; ServeDebug wraps the same registration in a standalone
// listener for the batch CLIs.
func AttachDebug(mux *http.ServeMux, r *Recorder) {
	debugRecorder.Store(r)
	publishOnce.Do(func() {
		expvar.Publish("ilt", expvar.Func(func() any {
			rec := debugRecorder.Load()
			return snapshot{
				ElapsedSec: rec.Elapsed(),
				Phases:     rec.Phases(),
				Counters:   rec.Counters(),
				Histograms: rec.Histograms(),
			}
		}))
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// ServeDebug serves net/http/pprof and expvar on addr (e.g. "localhost:6060"
// or ":0" for an ephemeral port) in a background goroutine. The recorder's
// phases and counters appear as the "ilt" expvar at /debug/vars alongside
// the standard memstats. Returns the bound address and a shutdown func.
func ServeDebug(addr string, r *Recorder) (string, func() error, error) {
	mux := http.NewServeMux()
	AttachDebug(mux, r)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	return ln.Addr().String(), srv.Close, nil
}
