package telemetry

import (
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"strings"
)

// HostInfo is the host/CPU block of a run manifest. Benchmark artifacts
// (BENCH_WORKERS.json) embed the same block so timing files stay
// self-describing across machines.
type HostInfo struct {
	OS         string `json:"os"`
	Arch       string `json:"arch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	GoVersion  string `json:"go_version"`
	CPUModel   string `json:"cpu_model,omitempty"`
	Hostname   string `json:"hostname,omitempty"`
}

// Host snapshots the current host.
func Host() HostInfo {
	h := HostInfo{
		OS:         runtime.GOOS,
		Arch:       runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		CPUModel:   cpuModel(),
	}
	if name, err := os.Hostname(); err == nil {
		h.Hostname = name
	}
	return h
}

// cpuModel best-efforts the CPU model name (Linux /proc/cpuinfo; empty
// elsewhere — the field is omitempty).
func cpuModel() string {
	b, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(b), "\n") {
		if k, v, ok := strings.Cut(line, ":"); ok && strings.TrimSpace(k) == "model name" {
			return strings.TrimSpace(v)
		}
	}
	return ""
}

// GitRevision resolves the source revision of the running binary: first
// from the build info VCS stamp (present in `go build` of a checkout),
// falling back to reading .git/HEAD upward from the working directory
// (covers `go run` and `go test`, which skip VCS stamping).
func GitRevision() (rev string, dirty bool) {
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				dirty = s.Value == "true"
			}
		}
	}
	if rev != "" {
		return rev, dirty
	}
	dir, err := os.Getwd()
	if err != nil {
		return "", false
	}
	for d := dir; ; {
		if r := readGitHead(filepath.Join(d, ".git")); r != "" {
			return r, false
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", false
		}
		d = parent
	}
}

// readGitHead resolves HEAD inside one .git directory (direct hash,
// loose ref file, or packed-refs entry); empty when unresolvable.
func readGitHead(gitDir string) string {
	b, err := os.ReadFile(filepath.Join(gitDir, "HEAD"))
	if err != nil {
		return ""
	}
	head := strings.TrimSpace(string(b))
	ref, ok := strings.CutPrefix(head, "ref: ")
	if !ok {
		return head // detached HEAD: a bare hash
	}
	if rb, err := os.ReadFile(filepath.Join(gitDir, filepath.FromSlash(ref))); err == nil {
		return strings.TrimSpace(string(rb))
	}
	pb, err := os.ReadFile(filepath.Join(gitDir, "packed-refs"))
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(pb), "\n") {
		if hash, name, ok := strings.Cut(line, " "); ok && strings.TrimSpace(name) == ref {
			return hash
		}
	}
	return ""
}
