package telemetry

import (
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// ManifestSchema versions the manifest layout; bump on breaking changes.
const ManifestSchema = 1

// Manifest is the reproducibility record written next to a run's
// artifacts: what ran (tool, args, config), where (host/CPU), from which
// source revision, and what came out (metrics, phase timers, counters).
// Two manifests with equal config/host/revision blocks describe directly
// comparable runs.
type Manifest struct {
	Schema      int                `json:"schema"`
	Tool        string             `json:"tool"`
	Args        []string           `json:"args,omitempty"`
	Start       string             `json:"start"` // RFC3339
	DurationSec float64            `json:"duration_sec"`
	GitRevision string             `json:"git_revision,omitempty"`
	GitDirty    bool               `json:"git_dirty,omitempty"`
	Host        HostInfo           `json:"host"`
	Config      any                `json:"config,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
	Phases      []PhaseStat        `json:"phases,omitempty"`
	Counters    map[string]int64   `json:"counters,omitempty"`
	Histograms  []HistStat         `json:"histograms,omitempty"`
}

// NewManifest starts a manifest for the named tool: host and git metadata
// are captured now, Args from the process command line.
func NewManifest(tool string, config any) *Manifest {
	m := &Manifest{
		Schema: ManifestSchema,
		Tool:   tool,
		Args:   os.Args[1:],
		Start:  time.Now().Format(time.RFC3339),
		Host:   Host(),
		Config: config,
	}
	m.GitRevision, m.GitDirty = GitRevision()
	return m
}

// SetMetric records one final metric.
func (m *Manifest) SetMetric(name string, v float64) {
	if m.Metrics == nil {
		m.Metrics = map[string]float64{}
	}
	m.Metrics[name] = v
}

// Finish folds the recorder's aggregates (elapsed wall time, phase timers,
// counters) into the manifest. With a nil recorder the manifest stays
// valid, just without the timing blocks.
func (m *Manifest) Finish(r *Recorder) {
	if !r.Enabled() {
		return
	}
	m.DurationSec = r.Elapsed()
	m.Phases = r.Phases()
	if c := r.Counters(); len(c) > 0 {
		m.Counters = c
	}
	m.Histograms = r.Histograms()
}

// Write serializes the manifest (indented JSON, trailing newline) to path.
func (m *Manifest) Write(path string) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("telemetry: marshal manifest: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadManifest parses and sanity-checks a manifest file: schema version,
// tool name and a plausible host block are required.
func ReadManifest(path string) (*Manifest, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("telemetry: manifest %s: %w", path, err)
	}
	if m.Schema != ManifestSchema {
		return nil, fmt.Errorf("telemetry: manifest %s: schema %d, want %d", path, m.Schema, ManifestSchema)
	}
	if m.Tool == "" {
		return nil, fmt.Errorf("telemetry: manifest %s: missing tool", path)
	}
	if m.Host.NumCPU < 1 || m.Host.OS == "" {
		return nil, fmt.Errorf("telemetry: manifest %s: implausible host block", path)
	}
	return &m, nil
}
