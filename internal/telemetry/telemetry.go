// Package telemetry is the repo's zero-dependency observability layer: a
// concurrency-safe Recorder that aggregates phase timers (spans) and
// counters, and streams structured trace events to pluggable sinks (a JSONL
// writer for machines, a console renderer for humans). A nil *Recorder is
// the disabled default — every method is nil-safe and the disabled paths
// perform zero allocations, so hot loops (the per-kernel SOCS fan-out, the
// per-iteration optimizer step) can be instrumented unconditionally.
//
// Three kinds of signal, by cost:
//
//   - Spans (StartSpan/End) accumulate wall time and a call count into a
//     named phase. They never emit an event, so they are cheap enough for
//     the forward-FFT/kernel-loop/adjoint phases that run thousands of
//     times per optimization. Phase totals are flushed as one "phases"
//     event by Close and exported via expvar (see ServeDebug).
//   - Counters (Add) are atomic named tallies (simulations run, tiles
//     skipped, plan builds, ...).
//   - Events (Emit) are timestamped structured records delivered to every
//     sink in strict sequence order. The optimizer emits one per iteration;
//     fullchip emits one per tile.
//
// Spans measure wall time on the calling goroutine. When several
// optimizations run concurrently (the fullchip tile pool), phase totals sum
// the per-call wall times and may exceed elapsed process time — they remain
// comparable as a cost breakdown, which is what the multi-level timing
// argument (Eq. 7/8) needs.
package telemetry

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Fields carries the payload of one event. Values should be JSON-encodable
// (numbers, strings, bools, nested maps). The reserved keys "event", "seq"
// and "ts" are overwritten by the trace sink.
type Fields map[string]any

// Event is one structured trace record.
type Event struct {
	// Seq numbers events 1, 2, 3, ... in emission order (the order sinks
	// observe, even under concurrent emitters).
	Seq int64
	// TS is seconds since the recorder was created (monotonic).
	TS float64
	// Name identifies the event schema ("iter", "stage.start", "tile", ...).
	Name string
	// Fields is the event payload; may be nil.
	Fields Fields
}

// Sink consumes events. Emit is always invoked under the recorder's event
// lock, so implementations need no locking of their own but must not call
// back into the recorder.
type Sink interface {
	Emit(e Event)
	Flush() error
}

// phase is one named span accumulator. hist is non-nil only for phases the
// recorder opted into per-call latency distributions (WithSpanHistograms);
// it is resolved once when the phase is first seen, so non-opted phases pay
// a single nil check per span end.
type phase struct {
	nanos atomic.Int64
	count atomic.Int64
	hist  *Histogram
}

// Recorder aggregates spans/counters and fans events out to sinks. Safe for
// concurrent use. The zero value is not usable; a nil *Recorder is the
// no-op disabled recorder.
type Recorder struct {
	now   func() time.Time
	start time.Time

	mu    sync.Mutex // guards seq and sink emission order
	seq   int64
	sinks []Sink

	phases   sync.Map // string → *phase
	counters sync.Map // string → *atomic.Int64
	hists    sync.Map // string → *Histogram

	// spanHist names the phases whose spans also feed a latency histogram;
	// read-only after New.
	spanHist map[string]bool
}

// Option configures a Recorder.
type Option func(*Recorder)

// WithClock substitutes the time source (tests use a fake clock for golden
// traces). The first call stamps the recorder start time.
func WithClock(now func() time.Time) Option {
	return func(r *Recorder) { r.now = now }
}

// WithSink attaches a sink; events are delivered in Seq order.
func WithSink(s Sink) Option {
	return func(r *Recorder) { r.sinks = append(r.sinks, s) }
}

// WithSpanHistograms opts the named phases into per-call latency
// histograms: each span End for such a phase also lands one observation in
// a duration histogram of the same name. Opt-in keeps the default span cost
// at two atomic adds — the FFT phases run thousands of times per
// optimization, and most runs only need their totals.
func WithSpanHistograms(names ...string) Option {
	return func(r *Recorder) {
		if r.spanHist == nil {
			r.spanHist = make(map[string]bool, len(names))
		}
		for _, n := range names {
			r.spanHist[n] = true
		}
	}
}

// New builds an enabled recorder. With no sinks it still aggregates phases
// and counters (enough for a run manifest or the expvar endpoint).
func New(opts ...Option) *Recorder {
	r := &Recorder{now: time.Now}
	for _, o := range opts {
		o(r)
	}
	r.start = r.now()
	return r
}

// Enabled reports whether the recorder records anything (false on nil).
func (r *Recorder) Enabled() bool { return r != nil }

// Span is an in-flight phase timer. The zero Span (from a disabled
// recorder) is inert; End on it is a no-op.
type Span struct {
	r    *Recorder
	name string
	t0   time.Time
}

// StartSpan opens a phase timer. On a nil recorder it returns the zero Span
// without reading the clock or allocating.
func (r *Recorder) StartSpan(name string) Span {
	if r == nil {
		return Span{}
	}
	return Span{r: r, name: name, t0: r.now()}
}

// End closes the span, folding its wall time into the named phase.
func (sp Span) End() {
	if sp.r == nil {
		return
	}
	sp.r.addPhase(sp.name, sp.r.now().Sub(sp.t0))
}

func (r *Recorder) addPhase(name string, d time.Duration) {
	p := r.phase(name)
	p.nanos.Add(int64(d))
	p.count.Add(1)
	p.hist.Observe(int64(d)) // nil unless the phase opted in
}

// mergePhase folds an already-aggregated (nanos, count) pair into a phase;
// the per-call durations are gone, so no histogram observation is possible.
func (r *Recorder) mergePhase(name string, nanos, count int64) {
	p := r.phase(name)
	p.nanos.Add(nanos)
	p.count.Add(count)
}

// phase returns the named accumulator, creating (and, for opted-in names,
// attaching the histogram to) it on first use.
func (r *Recorder) phase(name string) *phase {
	v, ok := r.phases.Load(name)
	if !ok {
		p := &phase{}
		if r.spanHist[name] {
			p.hist = r.Histogram(name, HistDuration)
		}
		v, _ = r.phases.LoadOrStore(name, p)
	}
	return v.(*phase)
}

// Add increments a named counter. No-op (and allocation-free) when disabled.
func (r *Recorder) Add(name string, delta int64) {
	if r == nil {
		return
	}
	v, ok := r.counters.Load(name)
	if !ok {
		v, _ = r.counters.LoadOrStore(name, new(atomic.Int64))
	}
	v.(*atomic.Int64).Add(delta)
}

// Emit delivers an event to every sink, stamping Seq and TS. Events from
// concurrent goroutines are serialized; Seq order equals delivery order.
func (r *Recorder) Emit(name string, f Fields) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.seq++
	e := Event{Seq: r.seq, TS: r.now().Sub(r.start).Seconds(), Name: name, Fields: f}
	for _, s := range r.sinks {
		s.Emit(e)
	}
	r.mu.Unlock()
}

// Progressf emits a human-oriented "progress" event (rendered verbatim by
// the console sink). Disabled recorders drop it.
func (r *Recorder) Progressf(format string, args ...any) {
	if r == nil {
		return
	}
	r.Emit("progress", Fields{"msg": fmt.Sprintf(format, args...)})
}

// PhaseStat is one phase's aggregate.
type PhaseStat struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"sec"`
	Count   int64   `json:"count"`
}

// Phases returns the phase aggregates sorted by name.
func (r *Recorder) Phases() []PhaseStat {
	if r == nil {
		return nil
	}
	var out []PhaseStat
	r.phases.Range(func(k, v any) bool {
		p := v.(*phase)
		out = append(out, PhaseStat{
			Name:    k.(string),
			Seconds: time.Duration(p.nanos.Load()).Seconds(),
			Count:   p.count.Load(),
		})
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Counters returns a snapshot of every counter.
func (r *Recorder) Counters() map[string]int64 {
	if r == nil {
		return nil
	}
	out := map[string]int64{}
	r.counters.Range(func(k, v any) bool {
		out[k.(string)] = v.(*atomic.Int64).Load()
		return true
	})
	return out
}

// Elapsed is the wall time since the recorder was created.
func (r *Recorder) Elapsed() float64 {
	if r == nil {
		return 0
	}
	return r.now().Sub(r.start).Seconds()
}

// Close flushes the aggregates — one "phases" event carrying every phase
// ({sec, count} per name), counter, and histogram summary (count/sum/
// p50/p95/p99 per name, under "histograms", present only when histograms
// were recorded) — and flushes all sinks. Safe on nil.
func (r *Recorder) Close() error {
	if r == nil {
		return nil
	}
	f := Fields{}
	for _, p := range r.Phases() {
		f[p.Name] = map[string]any{"sec": p.Seconds, "count": p.Count}
	}
	if c := r.Counters(); len(c) > 0 {
		counters := Fields{}
		for k, v := range c {
			counters[k] = v
		}
		f["counters"] = counters
	}
	if hs := r.Histograms(); len(hs) > 0 {
		// Stored as Fields, not map[string]any: the console sink's phase
		// breakdown iterates map[string]any values only, so the summary maps
		// stay out of the per-phase table (same trick as "counters"). The
		// JSON encoding is identical either way. Bucket dumps stay out of
		// the event — manifests and /metrics carry them.
		hf := Fields{}
		for _, h := range hs {
			hf[h.Name] = map[string]any{
				"count": h.Count, "sum": h.Sum,
				"p50": h.P50, "p95": h.P95, "p99": h.P99,
			}
		}
		f["histograms"] = hf
	}
	r.Emit("phases", f)
	r.mu.Lock()
	defer r.mu.Unlock()
	var firstErr error
	for _, s := range r.sinks {
		if err := s.Flush(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
