package litho

import (
	"math"

	"repro/internal/grid"
)

// Resist parameters follow the ICCAD 2013 contest settings used by the
// paper: a constant-threshold model at I_th = 0.225 for evaluation and a
// sigmoid relaxation (Eq. 9) for optimization.
const (
	// DefaultThreshold is the printability threshold I_th of Eq. (1).
	DefaultThreshold = 0.225
	// DefaultAlpha is the sigmoid steepness α of Eq. (9).
	DefaultAlpha = 50.0
)

// ResistBinary applies the constant-threshold photoresist model of Eq. (1):
// Z = 1 where I ≥ I_th, else 0.
func ResistBinary(intensity *grid.Mat, ith float64) *grid.Mat {
	return intensity.Threshold(ith)
}

// ResistSigmoid applies the differentiable resist model of Eq. (9):
// Z = 1 / (1 + exp(−α(I − I_th))).
func ResistSigmoid(intensity *grid.Mat, ith, alpha float64) *grid.Mat {
	z := grid.NewMat(intensity.W, intensity.H)
	for i, v := range intensity.Data {
		z.Data[i] = sigmoid(alpha * (v - ith))
	}
	return z
}

// ResistSigmoidGrad returns dZ/dI = α·Z·(1−Z) element-wise for a wafer image
// already produced by ResistSigmoid.
func ResistSigmoidGrad(z *grid.Mat, alpha float64) *grid.Mat {
	g := grid.NewMat(z.W, z.H)
	for i, v := range z.Data {
		g.Data[i] = alpha * v * (1 - v)
	}
	return g
}

func sigmoid(x float64) float64 {
	// Branch keeps exp from overflowing for very negative x.
	if x >= 0 {
		return 1 / (1 + math.Exp(-x))
	}
	e := math.Exp(x)
	return e / (1 + e)
}
