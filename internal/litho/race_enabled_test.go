//go:build race

package litho

// raceEnabled reports whether the race detector is compiled in. Under -race,
// sync.Pool deliberately bypasses its cache at random, so allocation-count
// assertions are not meaningful there.
const raceEnabled = true
