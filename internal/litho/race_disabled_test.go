//go:build !race

package litho

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = false
