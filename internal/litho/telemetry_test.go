package litho

import (
	"testing"

	"repro/internal/grid"
	"repro/internal/telemetry"
)

// The forward/adjoint hot paths are instrumented unconditionally; with a nil
// recorder the instrumentation must cost nothing. The exact telemetry call
// sequence Forward makes (two spans plus a counter) is measured directly —
// Forward's own allocations vary with plan/pool warm-up state, so the
// overhead is what we pin to zero.
func TestDisabledRecorderZeroAllocInForwardPath(t *testing.T) {
	sim := NewSim(model(t))
	if sim.Recorder.Enabled() {
		t.Fatal("fresh Sim should have a disabled recorder")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		sp := sim.Recorder.StartSpan("litho.fft_forward")
		sp.End()
		sp = sim.Recorder.StartSpan("litho.socs")
		sp.End()
		sim.Recorder.Add("litho.forward_sims", 1)
	})
	if allocs != 0 {
		t.Errorf("disabled recorder adds %.1f allocs per Forward, want 0", allocs)
	}
}

// With a recorder attached, Forward/Gradient fold their time into the
// litho.* phases and bump the simulation counters.
func TestForwardAndGradientRecordPhases(t *testing.T) {
	sim := NewSim(model(t))
	rec := telemetry.New()
	sim.Recorder = rec

	const n = 64
	mask := grid.NewMat(n, n)
	mask.Fill(1)
	f, err := sim.Forward(mask, sim.Model.Nominal, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Gradient(f, mask); err != nil {
		t.Fatal(err)
	}

	phases := map[string]telemetry.PhaseStat{}
	for _, p := range rec.Phases() {
		phases[p.Name] = p
	}
	for _, name := range []string{"litho.fft_forward", "litho.socs", "litho.adjoint"} {
		if phases[name].Count == 0 {
			t.Errorf("phase %s not recorded (got %v)", name, rec.Phases())
		}
	}
	c := rec.Counters()
	if c["litho.forward_sims"] != 1 || c["litho.adjoint_calls"] != 1 {
		t.Errorf("counters = %v", c)
	}
}
