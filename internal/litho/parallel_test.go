package litho

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"repro/internal/grid"
)

// workerSweep is the worker-count grid of the equivalence tests: the serial
// path, an even split, a count that does not divide the kernel count, and
// whatever the host offers.
func workerSweep() []int {
	return []int{1, 2, 7, runtime.GOMAXPROCS(0)}
}

// TestParallelForwardMatchesSerial: the parallel SOCS loop must reproduce
// the serial path bit-for-bit — the reduction into the intensity is a fixed
// k-ordered fold regardless of the fan-out — for every grid size, worker
// count and keepAmps mode.
func TestParallelForwardMatchesSerial(t *testing.T) {
	mdl := model(t)
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{64, 128, 256} {
		mask := randMask(rng, n)
		for _, keep := range []bool{false, true} {
			ref := NewSim(mdl)
			ref.Workers = 1
			want, err := ref.Forward(mask, mdl.Nominal, 1.02, keep)
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range workerSweep() {
				sim := NewSim(mdl)
				sim.Workers = w
				got, err := sim.Forward(mask, mdl.Nominal, 1.02, keep)
				if err != nil {
					t.Fatal(err)
				}
				if !got.Intensity.Equal(want.Intensity, 0) {
					t.Errorf("n=%d workers=%d keep=%v: intensity differs from serial", n, w, keep)
				}
				if keep {
					if len(got.Amps) != len(want.Amps) {
						t.Fatalf("n=%d workers=%d: %d amps, want %d", n, w, len(got.Amps), len(want.Amps))
					}
					for k := range want.Amps {
						if got.Amps[k].MaxAbsDiff(want.Amps[k]) != 0 {
							t.Errorf("n=%d workers=%d: amplitude %d differs from serial", n, w, k)
						}
					}
				}
			}
		}
	}
}

// TestParallelForwardEq7MatchesSerial: same bit-identity for the truncated
// Eq. (7) forward path.
func TestParallelForwardEq7MatchesSerial(t *testing.T) {
	mdl := model(t)
	rng := rand.New(rand.NewSource(12))
	for _, n := range []int{128, 256} {
		mask := randMask(rng, n)
		ref := NewSim(mdl)
		ref.Workers = 1
		want, err := ref.ForwardEq7(mask, 2, mdl.Nominal, 0.98)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range workerSweep() {
			sim := NewSim(mdl)
			sim.Workers = w
			got, err := sim.ForwardEq7(mask, 2, mdl.Nominal, 0.98)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Intensity.Equal(want.Intensity, 0) {
				t.Errorf("n=%d workers=%d: Eq7 intensity differs from serial", n, w)
			}
		}
	}
}

// TestParallelGradientMatchesSerial: the adjoint pass must be bit-identical
// across worker counts for both the cached-amplitude and recompute paths.
func TestParallelGradientMatchesSerial(t *testing.T) {
	mdl := model(t)
	rng := rand.New(rand.NewSource(13))
	for _, n := range []int{64, 128, 256} {
		mask := randMask(rng, n)
		dLdI := randMask(rng, n)
		for _, keep := range []bool{false, true} {
			ref := NewSim(mdl)
			ref.Workers = 1
			fRef, err := ref.Forward(mask, mdl.Nominal, 1, keep)
			if err != nil {
				t.Fatal(err)
			}
			want, err := ref.Gradient(fRef, dLdI)
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range workerSweep() {
				sim := NewSim(mdl)
				sim.Workers = w
				f, err := sim.Forward(mask, mdl.Nominal, 1, keep)
				if err != nil {
					t.Fatal(err)
				}
				got, err := sim.Gradient(f, dLdI)
				if err != nil {
					t.Fatal(err)
				}
				if !got.Equal(want, 0) {
					t.Errorf("n=%d workers=%d keep=%v: gradient differs from serial", n, w, keep)
				}
			}
		}
	}
}

// TestPlanSingleflight: concurrent first calls for one size must construct
// exactly one plan (the duplicate-work race the old LoadOrStore cache had)
// and all callers must see the same instance.
func TestPlanSingleflight(t *testing.T) {
	sim := NewSim(model(t))
	const goroutines = 32
	plans := make([]any, goroutines)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			p, err := sim.Plan(64)
			if err != nil {
				t.Error(err)
				return
			}
			plans[g] = p
		}(g)
	}
	close(start)
	wg.Wait()
	if builds := sim.planBuilds.Load(); builds != 1 {
		t.Errorf("%d plan constructions for one size, want exactly 1", builds)
	}
	for g := 1; g < goroutines; g++ {
		if plans[g] != plans[0] {
			t.Fatalf("goroutine %d got a different plan instance", g)
		}
	}
	// A second size builds exactly one more.
	if _, err := sim.Plan(32); err != nil {
		t.Fatal(err)
	}
	if builds := sim.planBuilds.Load(); builds != 2 {
		t.Errorf("%d total constructions after second size, want 2", builds)
	}
}

// TestConcurrentForwardStress hammers one shared Sim from many goroutines
// with mixed sizes and keepAmps modes — primarily a race-detector target
// for the plan cache and the scratch arenas — and checks every result
// against serial references.
func TestConcurrentForwardStress(t *testing.T) {
	mdl := model(t)
	sim := NewSim(mdl)
	sim.Workers = 2

	rng := rand.New(rand.NewSource(14))
	masks := map[int]*grid.Mat{64: randMask(rng, 64), 128: randMask(rng, 128)}
	refs := make(map[int]*grid.Mat)
	for n, m := range masks {
		ref := NewSim(mdl)
		ref.Workers = 1
		f, err := ref.Forward(m, mdl.Nominal, 1, false)
		if err != nil {
			t.Fatal(err)
		}
		refs[n] = f.Intensity
	}

	const goroutines = 16
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			n := 64
			if g%2 == 1 {
				n = 128
			}
			for it := 0; it < 3; it++ {
				keep := (g+it)%2 == 0
				f, err := sim.Forward(masks[n], mdl.Nominal, 1, keep)
				if err != nil {
					t.Error(err)
					return
				}
				if !f.Intensity.Equal(refs[n], 0) {
					t.Errorf("goroutine %d: concurrent forward at n=%d diverged", g, n)
					return
				}
				if _, err := sim.Plan(256); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
