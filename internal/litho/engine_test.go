package litho

import (
	"math"
	"math/rand"
	"strconv"
	"strings"
	"testing"

	"repro/internal/grid"
	"repro/internal/telemetry"
)

// The old-vs-new contract of the band engine, split by guarantee strength:
//
//   - EngineBandInverse (pruned inverses, dense forward) is bit-identical
//     to EngineReference — tolerance 0, every worker count, every output.
//   - EngineBand additionally packs the real mask two-for-one in the
//     forward transform, which reassociates rounding; it must agree with
//     the reference to a tight scaled tolerance.

func newEngineSim(t *testing.T, e FFTEngine, workers int) *Sim {
	t.Helper()
	sim := NewSim(model(t))
	sim.Engine = e
	sim.Workers = workers
	return sim
}

// Tolerance-0 equivalence of Forward old-vs-new: the pruned engine must
// reproduce the dense reference bit-for-bit — intensity, spectrum and
// kept amplitudes — across grid sizes, worker counts and keepAmps modes.
func TestEngineBandInverseForwardBitIdentical(t *testing.T) {
	mdl := model(t)
	rng := rand.New(rand.NewSource(31))
	for _, n := range []int{64, 128, 256} {
		mask := randMask(rng, n)
		for _, keep := range []bool{false, true} {
			ref := newEngineSim(t, EngineReference, 1)
			want, err := ref.Forward(mask, mdl.Nominal, 1.02, keep)
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range workerSweep() {
				sim := newEngineSim(t, EngineBandInverse, w)
				got, err := sim.Forward(mask, mdl.Nominal, 1.02, keep)
				if err != nil {
					t.Fatal(err)
				}
				if !got.Intensity.Equal(want.Intensity, 0) {
					t.Errorf("n=%d workers=%d keep=%v: banded intensity differs from reference", n, w, keep)
				}
				if got.Spec.MaxAbsDiff(want.Spec) != 0 {
					t.Errorf("n=%d workers=%d: banded spectrum differs from reference", n, w)
				}
				if keep {
					for k := range want.Amps {
						if got.Amps[k].MaxAbsDiff(want.Amps[k]) != 0 {
							t.Errorf("n=%d workers=%d: banded amplitude %d differs", n, w, k)
						}
					}
				}
			}
		}
	}
}

// Same tolerance-0 equivalence for the truncated Eq. 7 simulation, where
// the pruning engages at the reduced size m = n/s.
func TestEngineBandInverseEq7BitIdentical(t *testing.T) {
	mdl := model(t)
	rng := rand.New(rand.NewSource(32))
	const n = 256
	mask := randMask(rng, n)
	for _, scale := range []int{1, 2, 4} {
		ref := newEngineSim(t, EngineReference, 1)
		want, err := ref.ForwardEq7(mask, scale, mdl.Nominal, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range workerSweep() {
			sim := newEngineSim(t, EngineBandInverse, w)
			got, err := sim.ForwardEq7(mask, scale, mdl.Nominal, 1)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Intensity.Equal(want.Intensity, 0) {
				t.Errorf("scale=%d workers=%d: banded Eq7 intensity differs from reference", scale, w)
			}
		}
	}
}

// Tolerance-0 equivalence of Gradient old-vs-new on both adjoint paths
// (kept amplitudes and the recompute path, which is where the pruned
// per-kernel inverses and the band-limited accumulator inverse run).
func TestEngineBandInverseGradientBitIdentical(t *testing.T) {
	mdl := model(t)
	rng := rand.New(rand.NewSource(33))
	for _, n := range []int{64, 128} {
		mask := randMask(rng, n)
		dLdI := randMask(rng, n)
		for _, keep := range []bool{false, true} {
			ref := newEngineSim(t, EngineReference, 1)
			rf, err := ref.Forward(mask, mdl.Nominal, 1, keep)
			if err != nil {
				t.Fatal(err)
			}
			want, err := ref.Gradient(rf, dLdI)
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range workerSweep() {
				sim := newEngineSim(t, EngineBandInverse, w)
				f, err := sim.Forward(mask, mdl.Nominal, 1, keep)
				if err != nil {
					t.Fatal(err)
				}
				got, err := sim.Gradient(f, dLdI)
				if err != nil {
					t.Fatal(err)
				}
				if !got.Equal(want, 0) {
					t.Errorf("n=%d workers=%d keep=%v: banded gradient differs from reference", n, w, keep)
				}
			}
		}
	}
}

// The default engine (ForwardReal packing on top of the pruned inverses)
// agrees with the reference to rounding. The tolerance scales with the
// intensity magnitude (O(1) under the open-frame normalisation): 1e-10 is
// ~6 decimal orders above the observed ulp-level deviation but far below
// any physically meaningful intensity difference.
func TestEngineBandMatchesReferenceClosely(t *testing.T) {
	mdl := model(t)
	rng := rand.New(rand.NewSource(34))
	const n, tol = 128, 1e-10
	mask := randMask(rng, n)
	dLdI := randMask(rng, n)

	ref := newEngineSim(t, EngineReference, 1)
	rf, err := ref.Forward(mask, mdl.Nominal, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	rg, err := ref.Gradient(rf, dLdI)
	if err != nil {
		t.Fatal(err)
	}

	sim := newEngineSim(t, EngineBand, 1)
	f, err := sim.Forward(mask, mdl.Nominal, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if !f.Intensity.Equal(rf.Intensity, tol) {
		t.Error("band-engine intensity outside rounding tolerance of reference")
	}
	g, err := sim.Gradient(f, dLdI)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(rg, tol) {
		t.Error("band-engine gradient outside rounding tolerance of reference")
	}

	e7ref, err := ref.ForwardEq7(mask, 2, mdl.Nominal, 1)
	if err != nil {
		t.Fatal(err)
	}
	e7, err := sim.ForwardEq7(mask, 2, mdl.Nominal, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !e7.Intensity.Equal(e7ref.Intensity, tol) {
		t.Error("band-engine Eq7 intensity outside rounding tolerance of reference")
	}
}

// The default engine stays bit-identical across worker counts — the band
// transforms preserve PR 1's determinism discipline.
func TestEngineBandDeterministicAcrossWorkers(t *testing.T) {
	mdl := model(t)
	rng := rand.New(rand.NewSource(35))
	const n = 128
	mask := randMask(rng, n)
	base := newEngineSim(t, EngineBand, 1)
	want, err := base.Forward(mask, mdl.Nominal, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range workerSweep() {
		sim := newEngineSim(t, EngineBand, w)
		got, err := sim.Forward(mask, mdl.Nominal, 1, false)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Intensity.Equal(want.Intensity, 0) {
			t.Errorf("workers=%d: band engine not bit-identical to serial", w)
		}
	}
}

// An all-zero mask must image to an exactly zero field under every engine
// (the dark-frame invariant other tests assume at tolerance 1e-12 holds
// exactly here).
func TestEnginesDarkFrameExactZero(t *testing.T) {
	mdl := model(t)
	const n = 64
	mask := grid.NewMat(n, n)
	for _, e := range []FFTEngine{EngineBatch, EngineBand, EngineBandInverse, EngineReference} {
		sim := newEngineSim(t, e, 1)
		f, err := sim.Forward(mask, mdl.Nominal, 1, false)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range f.Intensity.Data {
			if v != 0 || math.Signbit(v) {
				t.Fatalf("engine %d: dark frame pixel %d = %v, want +0", e, i, v)
			}
		}
	}
}

// The batched engine's two-sided contract, at every worker count: bit
// identity with EngineBand (each batch lane performs the band engine's
// exact operation sequence; physical kernels are not exactly Hermitian, so
// the conjugate-mirror gate stays closed), and rounding-level agreement
// with EngineReference (inherited from the ForwardReal packing, the only
// non-bit-exact substitution). Covers Forward (both keepAmps modes),
// ForwardEq7 and Gradient; runs under -race in the race lane.
func TestEngineBatchEquivalence(t *testing.T) {
	mdl := model(t)
	rng := rand.New(rand.NewSource(36))
	const tol = 1e-10
	for _, n := range []int{64, 128, 256} {
		mask := randMask(rng, n)
		dLdI := randMask(rng, n)
		ref := newEngineSim(t, EngineReference, 1)
		refF, err := ref.Forward(mask, mdl.Nominal, 1.02, false)
		if err != nil {
			t.Fatal(err)
		}
		refG, err := ref.Gradient(refF, dLdI)
		if err != nil {
			t.Fatal(err)
		}
		refE7, err := ref.ForwardEq7(mask, 2, mdl.Nominal, 0.98)
		if err != nil {
			t.Fatal(err)
		}
		for _, keep := range []bool{false, true} {
			band := newEngineSim(t, EngineBand, 1)
			wantF, err := band.Forward(mask, mdl.Nominal, 1.02, keep)
			if err != nil {
				t.Fatal(err)
			}
			wantG, err := band.Gradient(wantF, dLdI)
			if err != nil {
				t.Fatal(err)
			}
			wantE7, err := band.ForwardEq7(mask, 2, mdl.Nominal, 0.98)
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range workerSweep() {
				sim := newEngineSim(t, EngineBatch, w)
				got, err := sim.Forward(mask, mdl.Nominal, 1.02, keep)
				if err != nil {
					t.Fatal(err)
				}
				if !got.Intensity.Equal(wantF.Intensity, 0) {
					t.Errorf("n=%d workers=%d keep=%v: batched intensity differs from band engine", n, w, keep)
				}
				if !got.Intensity.Equal(refF.Intensity, tol) {
					t.Errorf("n=%d workers=%d keep=%v: batched intensity outside reference tolerance", n, w, keep)
				}
				if keep {
					for k := range wantF.Amps {
						if got.Amps[k].MaxAbsDiff(wantF.Amps[k]) != 0 {
							t.Errorf("n=%d workers=%d: batched amplitude %d differs from band engine", n, w, k)
						}
					}
				}
				g, err := sim.Gradient(got, dLdI)
				if err != nil {
					t.Fatal(err)
				}
				if !g.Equal(wantG, 0) {
					t.Errorf("n=%d workers=%d keep=%v: batched gradient differs from band engine", n, w, keep)
				}
				if !g.Equal(refG, tol) {
					t.Errorf("n=%d workers=%d keep=%v: batched gradient outside reference tolerance", n, w, keep)
				}
				e7, err := sim.ForwardEq7(mask, 2, mdl.Nominal, 0.98)
				if err != nil {
					t.Fatal(err)
				}
				if !e7.Intensity.Equal(wantE7.Intensity, 0) {
					t.Errorf("n=%d workers=%d: batched Eq7 intensity differs from band engine", n, w)
				}
				if !e7.Intensity.Equal(refE7.Intensity, tol) {
					t.Errorf("n=%d workers=%d: batched Eq7 intensity outside reference tolerance", n, w)
				}
			}
		}
	}
}

// The batched engine stays bit-identical across worker counts: the row
// pass partitions kernels, the column pass partitions disjoint column
// blocks, and every cross-kernel fold is ascending-k within a block.
func TestEngineBatchDeterministicAcrossWorkers(t *testing.T) {
	mdl := model(t)
	rng := rand.New(rand.NewSource(37))
	const n = 128
	mask := randMask(rng, n)
	dLdI := randMask(rng, n)
	base := newEngineSim(t, EngineBatch, 1)
	want, err := base.Forward(mask, mdl.Nominal, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	wantG, err := base.Gradient(want, dLdI)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range workerSweep() {
		sim := newEngineSim(t, EngineBatch, w)
		got, err := sim.Forward(mask, mdl.Nominal, 1, false)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Intensity.Equal(want.Intensity, 0) {
			t.Errorf("workers=%d: batched engine not bit-identical to serial", w)
		}
		g, err := sim.Gradient(got, dLdI)
		if err != nil {
			t.Fatal(err)
		}
		if !g.Equal(wantG, 0) {
			t.Errorf("workers=%d: batched gradient not bit-identical to serial", w)
		}
	}
}

// Engine string round trip plus the full rejection surface. ParseEngine
// is the validation point for every config path (flags,
// core.Options.Engine, the server's JobRequest.Engine), so the contract
// is pinned exhaustively: the "" = default convention, exact-match
// case-sensitive spellings, and an error that names all four valid
// engines so a typo in any config surface is self-explaining.
func TestParseEngine(t *testing.T) {
	valid := []struct {
		in   string
		want FFTEngine
	}{
		{"", EngineBatch}, // "" = leave-as-default convention
		{"batch", EngineBatch},
		{"band", EngineBand},
		{"band-inverse", EngineBandInverse},
		{"reference", EngineReference},
	}
	for _, tc := range valid {
		got, err := ParseEngine(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseEngine(%q) = %v, %v; want %v, nil", tc.in, got, err, tc.want)
		}
	}
	for _, e := range []FFTEngine{EngineBatch, EngineBand, EngineBandInverse, EngineReference} {
		got, err := ParseEngine(e.String())
		if err != nil || got != e {
			t.Errorf("round trip ParseEngine(%q) = %v, %v", e.String(), got, err)
		}
	}

	invalid := []struct{ name, in string }{
		{"unknown word", "warp"},
		{"legacy alias", "dense"},
		{"abbreviation", "ref"},
		{"capitalized", "Batch"},
		{"upper case", "BAND"},
		{"mixed case", "Band-Inverse"},
		{"upper reference", "REFERENCE"},
		{"leading space", " batch"},
		{"trailing space", "batch "},
		{"inner space", "band inverse"},
		{"underscore", "band_inverse"},
		{"no separator", "bandinverse"},
		{"list", "batch,band"},
		{"numeric", "0"},
		{"default keyword", "default"},
	}
	for _, tc := range invalid {
		got, err := ParseEngine(tc.in)
		if err == nil {
			t.Errorf("%s: ParseEngine(%q) = %v, accepted; want error", tc.name, tc.in, got)
			continue
		}
		if got != 0 {
			t.Errorf("%s: ParseEngine(%q) returned engine %v alongside the error", tc.name, tc.in, got)
		}
		msg := err.Error()
		if !strings.Contains(msg, strconv.Quote(tc.in)) {
			t.Errorf("%s: error %q does not echo the rejected input %q", tc.name, msg, tc.in)
		}
		// The error must name every valid spelling: it doubles as the help
		// text on each config surface.
		for _, want := range []string{"batch", "band", "band-inverse", "reference"} {
			if !strings.Contains(msg, want) {
				t.Errorf("%s: error %q does not name valid engine %q", tc.name, msg, want)
			}
		}
	}
}

// The batched engine preserves the phase vocabulary (litho.socs around the
// row pass, litho.fft_inverse around the column pass) and the kernel-FFT
// counter the observability stack depends on.
func TestBatchEngineTelemetry(t *testing.T) {
	mdl := model(t)
	sim := newEngineSim(t, EngineBatch, 1)
	rec := telemetry.New()
	sim.Recorder = rec

	const n = 64
	mask := grid.NewMat(n, n)
	mask.Fill(1)
	f, err := sim.Forward(mask, mdl.Nominal, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Gradient(f, mask); err != nil {
		t.Fatal(err)
	}

	phases := map[string]telemetry.PhaseStat{}
	for _, p := range rec.Phases() {
		phases[p.Name] = p
	}
	for _, name := range []string{"litho.socs", "litho.fft_inverse", "litho.fft_forward", "litho.adjoint"} {
		if phases[name].Count == 0 {
			t.Errorf("phase %s missing under the batched engine: %v", name, rec.Phases())
		}
	}
	nk := len(mdl.Nominal.Kernels)
	c := rec.Counters()
	// One forward SOCS pass plus the gradient recompute path: 2·nk.
	if c["litho.kernel_ffts"] != int64(2*nk) {
		t.Errorf("litho.kernel_ffts = %d, want %d", c["litho.kernel_ffts"], 2*nk)
	}
}

// The band engine records the per-kernel FFT counter and the fft_inverse
// phase (serial lane), keeping the litho.socs phase tracecheck depends on.
func TestBandEngineTelemetry(t *testing.T) {
	mdl := model(t)
	sim := newEngineSim(t, EngineBand, 1)
	rec := telemetry.New()
	sim.Recorder = rec

	const n = 64
	mask := grid.NewMat(n, n)
	mask.Fill(1)
	f, err := sim.Forward(mask, mdl.Nominal, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Gradient(f, mask); err != nil {
		t.Fatal(err)
	}

	phases := map[string]telemetry.PhaseStat{}
	for _, p := range rec.Phases() {
		phases[p.Name] = p
	}
	nk := len(mdl.Nominal.Kernels)
	if got := phases["litho.fft_inverse"].Count; got != int64(nk) {
		t.Errorf("litho.fft_inverse count = %d, want %d", got, nk)
	}
	if phases["litho.socs"].Count == 0 || phases["litho.fft_forward"].Count == 0 {
		t.Errorf("socs/fft_forward phases missing: %v", rec.Phases())
	}
	c := rec.Counters()
	// One forward SOCS pass plus the gradient recompute path: 2·nk.
	if c["litho.kernel_ffts"] != int64(2*nk) {
		t.Errorf("litho.kernel_ffts = %d, want %d", c["litho.kernel_ffts"], 2*nk)
	}
}
