package litho

import (
	"fmt"

	"repro/internal/grid"
	"repro/internal/optics"
)

// Corner is one process condition: a kernel set (focus state) plus a dose
// factor that scales the aerial intensity.
type Corner struct {
	Name string
	KS   *optics.KernelSet
	Dose float64
}

// Process bundles the simulator with the contest process-window settings.
// PVBand is measured between the Inner and Outer corners (Definition 2):
// inner = defocus & −2% dose, outer = nominal focus & +2% dose.
type Process struct {
	Sim       *Sim
	Threshold float64 // I_th
	Alpha     float64 // sigmoid steepness
	DoseDelta float64 // ±dose excursion (0.02 in the paper)
}

// NewProcess creates the paper's process description over a kernel model.
func NewProcess(model *optics.Model) *Process {
	return &Process{
		Sim:       NewSim(model),
		Threshold: DefaultThreshold,
		Alpha:     DefaultAlpha,
		DoseDelta: 0.02,
	}
}

// Nominal returns the nominal-focus, nominal-dose corner (used for Z_norm
// and the final L2 evaluation).
func (p *Process) Nominal() Corner {
	return Corner{Name: "nominal", KS: p.Sim.Model.Nominal, Dose: 1}
}

// Outer returns the max-CD corner: nominal focus, +2% dose.
func (p *Process) Outer() Corner {
	return Corner{Name: "outer", KS: p.Sim.Model.Nominal, Dose: 1 + p.DoseDelta}
}

// Inner returns the min-CD corner: defocus, −2% dose.
func (p *Process) Inner() Corner {
	return Corner{Name: "inner", KS: p.Sim.Model.Defocus, Dose: 1 - p.DoseDelta}
}

// Corners returns the three standard corners in (nominal, inner, outer) order.
func (p *Process) Corners() []Corner {
	return []Corner{p.Nominal(), p.Inner(), p.Outer()}
}

// Print runs the full binary print pipeline at one corner: exact forward
// simulation followed by the constant-threshold resist. This is the
// evaluation path (metrics are always computed on exact simulations).
func (p *Process) Print(mask *grid.Mat, c Corner) (*grid.Mat, error) {
	f, err := p.Sim.Forward(mask, c.KS, c.Dose, false)
	if err != nil {
		return nil, fmt.Errorf("litho: print at %s corner: %w", c.Name, err)
	}
	return ResistBinary(f.Intensity, p.Threshold), nil
}

// PrintSigmoid runs the differentiable print pipeline at one corner and
// returns both the field (for the adjoint) and the sigmoid wafer image.
func (p *Process) PrintSigmoid(mask *grid.Mat, c Corner, keepAmps bool) (*Field, *grid.Mat, error) {
	f, err := p.Sim.Forward(mask, c.KS, c.Dose, keepAmps)
	if err != nil {
		return nil, nil, fmt.Errorf("litho: sigmoid print at %s corner: %w", c.Name, err)
	}
	return f, ResistSigmoid(f.Intensity, p.Threshold, p.Alpha), nil
}
