// Package litho implements the forward lithography model of the paper:
// the Hopkins/SOCS aerial-image computation in its exact (Eq. 3),
// frequency-truncated low-resolution (Eq. 7) and approximate low-resolution
// (Eq. 8) forms, the constant-threshold (Eq. 1) and sigmoid (Eq. 9) resist
// models, the three process corners used for PVBand, and the adjoint of the
// aerial image with respect to the mask, which powers every gradient in the
// ILT optimizer.
//
// Normalisation convention (see DESIGN.md): the forward FFT is unnormalised
// and the inverse carries 1/n², which combined with open-frame-normalised
// kernels makes the aerial intensity invariant across resolution levels —
// the same I_th applies at every scale factor, exactly as Algorithm 1
// assumes.
//
// Concurrency (see DESIGN.md, "Concurrency model"): the per-kernel SOCS
// loops of Forward, ForwardEq7 and Gradient fan out across Workers
// goroutines with pool-backed private scratch, and every cross-kernel
// reduction is a strictly k-ordered fold of precomputed per-kernel
// contributions — so the result is bit-identical for every worker count,
// including the serial path.
package litho

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/fft"
	"repro/internal/grid"
	"repro/internal/optics"
	"repro/internal/telemetry"
)

// Sim owns the FFT plan cache and runs forward/adjoint simulations for one
// optical model. It is safe for concurrent use.
type Sim struct {
	Model *optics.Model
	// Workers bounds the per-kernel fan-out of the SOCS loops; ≤ 0 selects
	// runtime.GOMAXPROCS(0). Results are bit-identical for every value.
	// Set it before sharing the Sim across goroutines.
	Workers int
	// Recorder receives phase timers (litho.fft_forward, litho.socs,
	// litho.adjoint) and simulation counters. Nil (the default) disables
	// telemetry at zero cost — the instrumented paths perform no extra
	// allocations. Set it before sharing the Sim across goroutines.
	Recorder *telemetry.Recorder

	plans      sync.Map // int → *planEntry
	planBuilds atomic.Int32

	cscratch grid.CMatPool // complex per-worker scratch (amplitudes, spectra)
	mscratch grid.MatPool  // real per-kernel intensity contributions
}

// planEntry is the singleflight slot for one plan size: concurrent first
// calls for the same size share one construction instead of each building a
// Plan2 and discarding all but one.
type planEntry struct {
	once sync.Once
	plan *fft.Plan2
	err  error
}

// NewSim creates a simulator over a built kernel model.
func NewSim(model *optics.Model) *Sim {
	return &Sim{Model: model}
}

// Plan returns (building if needed) the 2-D FFT plan for size m. Plan
// construction happens exactly once per size, no matter how many goroutines
// ask concurrently.
func (s *Sim) Plan(m int) (*fft.Plan2, error) {
	v, ok := s.plans.Load(m)
	if !ok {
		v, _ = s.plans.LoadOrStore(m, &planEntry{})
	}
	e := v.(*planEntry)
	e.once.Do(func() {
		s.planBuilds.Add(1)
		s.Recorder.Add("litho.plan_builds", 1)
		e.plan, e.err = fft.NewPlan2(m, m)
	})
	return e.plan, e.err
}

// kernelWorkers resolves the effective fan-out for a k-kernel loop.
func (s *Sim) kernelWorkers(k int) int {
	w := s.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > k {
		w = k
	}
	return w
}

// Field is the retained state of one forward simulation, sufficient to run
// the adjoint pass. Amps is only populated when the forward call was asked
// to keep per-kernel amplitudes (cheaper gradients at the cost of memory);
// otherwise the gradient pass recomputes each amplitude from Spec.
type Field struct {
	M         int          // working grid size
	Spec      *grid.CMat   // unnormalised FFT of the input mask, m×m
	Amps      []*grid.CMat // per-kernel amplitude fields A_k, or nil
	Intensity *grid.Mat    // aerial image including the dose factor
	Dose      float64
	KS        *optics.KernelSet
}

func (s *Sim) checkMask(mask *grid.Mat, p int) error {
	if mask.W != mask.H {
		return fmt.Errorf("litho: mask must be square, got %dx%d", mask.W, mask.H)
	}
	if mask.W&(mask.W-1) != 0 {
		return fmt.Errorf("litho: mask size %d is not a power of two", mask.W)
	}
	if mask.W < p {
		return fmt.Errorf("litho: mask size %d smaller than kernel support %d", mask.W, p)
	}
	return nil
}

// accumulateSOCS runs the per-kernel SOCS loop shared by Forward and
// ForwardEq7: amplitude A_k = F⁻¹(scale·H_k ⊙ spec) at size m, intensity
// += dose·w_k·|A_k|². The amplitude work fans out across kernelWorkers
// goroutines; each kernel's intensity contribution lands in a pooled
// private buffer and the final fold into f.Intensity runs on the calling
// goroutine in ascending k — the floating-point reduction order is fixed,
// so any worker count produces the same bits.
func (s *Sim) accumulateSOCS(f *Field, plan *fft.Plan2, spec *grid.CMat, m int, scale complex128, keepAmps bool) {
	ks := f.KS
	nk := len(ks.Kernels)
	workers := s.kernelWorkers(nk)

	if workers <= 1 {
		// Serial fast path: one amplitude buffer and one contribution buffer
		// recycled across all kernels — O(1) scratch at any grid size.
		contrib := s.mscratch.Get(m, m)
		var buf *grid.CMat
		if !keepAmps {
			buf = s.cscratch.Get(m, m)
		}
		for k, h := range ks.Kernels {
			var amp *grid.CMat
			if keepAmps {
				amp = fft.ApplyKernel(nil, spec, h, m, scale)
				f.Amps[k] = amp
			} else {
				amp = fft.ApplyKernel(buf, spec, h, m, scale)
			}
			plan.Inverse(amp)
			amp.AbsSqScaledInto(contrib, f.Dose*ks.Weights[k])
			f.Intensity.Add(contrib)
		}
		if buf != nil {
			s.cscratch.Put(buf)
		}
		s.mscratch.Put(contrib)
		return
	}

	contribs := make([]*grid.Mat, nk)
	grid.ParallelFor(workers, nk, func(k int) {
		h := ks.Kernels[k]
		var amp *grid.CMat
		if keepAmps {
			amp = fft.ApplyKernel(nil, spec, h, m, scale)
			f.Amps[k] = amp
		} else {
			amp = fft.ApplyKernel(s.cscratch.Get(m, m), spec, h, m, scale)
		}
		plan.Inverse(amp)
		c := s.mscratch.Get(m, m)
		amp.AbsSqScaledInto(c, f.Dose*ks.Weights[k])
		contribs[k] = c
		if !keepAmps {
			s.cscratch.Put(amp)
		}
	})
	for _, c := range contribs {
		f.Intensity.Add(c)
		s.mscratch.Put(c)
	}
}

// Forward runs the exact SOCS simulation (Eq. 3) of the mask at its own
// resolution: I = dose · Σ_k w_k |F⁻¹(H_k ⊙ F(M))|². With a mask already
// downsampled by the caller this is exactly Eq. (8) of the paper — the
// approximation the low-resolution ILT optimises against. Set keepAmps when
// a gradient pass will follow and memory allows (24 complex fields).
func (s *Sim) Forward(mask *grid.Mat, ks *optics.KernelSet, dose float64, keepAmps bool) (*Field, error) {
	if err := s.checkMask(mask, ks.P); err != nil {
		return nil, err
	}
	m := mask.W
	plan, err := s.Plan(m)
	if err != nil {
		return nil, err
	}
	spec := grid.ComplexFromReal(mask)
	sp := s.Recorder.StartSpan("litho.fft_forward")
	plan.Forward(spec)
	sp.End()

	f := &Field{M: m, Spec: spec, Dose: dose, KS: ks, Intensity: grid.NewMat(m, m)}
	if keepAmps {
		f.Amps = make([]*grid.CMat, len(ks.Kernels))
	}
	sp = s.Recorder.StartSpan("litho.socs")
	s.accumulateSOCS(f, plan, spec, m, 1, keepAmps)
	sp.End()
	s.Recorder.Add("litho.forward_sims", 1)
	return f, nil
}

// ForwardEq7 runs the frequency-truncated low-resolution simulation of
// Eq. (7): the mask stays at full resolution n, its spectrum is multiplied
// by each kernel, truncated to m = n/s with the 1/s² scale, and
// inverse-transformed at size m. The result equals the exact aerial image
// sampled every s pixels (the kernel support lies inside the retained band).
func (s *Sim) ForwardEq7(mask *grid.Mat, scale int, ks *optics.KernelSet, dose float64) (*Field, error) {
	if err := s.checkMask(mask, ks.P); err != nil {
		return nil, err
	}
	if scale < 1 {
		return nil, fmt.Errorf("litho: scale %d must be ≥ 1", scale)
	}
	n := mask.W
	if n%scale != 0 {
		return nil, fmt.Errorf("litho: mask size %d not divisible by scale %d", n, scale)
	}
	m := n / scale
	if m < ks.P {
		return nil, fmt.Errorf("litho: reduced size %d smaller than kernel support %d", m, ks.P)
	}
	if m&(m-1) != 0 {
		return nil, fmt.Errorf("litho: reduced size %d is not a power of two", m)
	}
	planN, err := s.Plan(n)
	if err != nil {
		return nil, err
	}
	planM, err := s.Plan(m)
	if err != nil {
		return nil, err
	}
	spec := grid.ComplexFromReal(mask)
	sp := s.Recorder.StartSpan("litho.fft_forward")
	planN.Forward(spec)
	sp.End()

	f := &Field{M: m, Spec: spec, Dose: dose, KS: ks, Intensity: grid.NewMat(m, m)}
	sc := complex(1/float64(scale*scale), 0)
	sp = s.Recorder.StartSpan("litho.socs")
	s.accumulateSOCS(f, planM, spec, m, sc, false)
	sp.End()
	s.Recorder.Add("litho.eq7_sims", 1)
	return f, nil
}

// Gradient computes dL/dM for a Field produced by Forward, given dL/dI at
// the working resolution:
//
//	dL/dM = Σ_k 2·w_k·dose · Re[ F⁻¹( conj(H_k) ⊙ F( dLdI ⊙ A_k ) ) ].
//
// Amplitudes are taken from the field when kept, otherwise recomputed from
// the retained mask spectrum. The kernel-adjoint products are computed in
// parallel as dense P×P patches and folded into the frequency-domain
// accumulator in ascending k, so only one final inverse FFT is needed and
// the result is bit-identical for every worker count.
func (s *Sim) Gradient(f *Field, dLdI *grid.Mat) (*grid.Mat, error) {
	if dLdI.W != f.M || dLdI.H != f.M {
		return nil, fmt.Errorf("litho: dLdI size %dx%d != field size %d", dLdI.W, dLdI.H, f.M)
	}
	if f.Amps == nil && (f.Spec.W != f.M || f.Spec.H != f.M) {
		// Fields from ForwardEq7 keep the full-size spectrum; their adjoint
		// is not implemented (the optimizer only differentiates Forward).
		return nil, fmt.Errorf("litho: gradient of a truncated (Eq. 7) field is not supported")
	}
	plan, err := s.Plan(f.M)
	if err != nil {
		return nil, err
	}
	sp := s.Recorder.StartSpan("litho.adjoint")
	defer sp.End()
	s.Recorder.Add("litho.adjoint_calls", 1)
	nk := len(f.KS.Kernels)
	p := f.KS.P
	patches := make([]*grid.CMat, nk)
	grid.ParallelFor(s.kernelWorkers(nk), nk, func(k int) {
		h := f.KS.Kernels[k]
		var amp *grid.CMat
		recomputed := false
		if f.Amps != nil {
			amp = f.Amps[k]
		} else {
			amp = fft.ApplyKernel(s.cscratch.Get(f.M, f.M), f.Spec, h, f.M, 1)
			plan.Inverse(amp)
			recomputed = true
		}
		// B_k = dLdI ⊙ A_k
		prod := s.cscratch.Get(f.M, f.M)
		for i, v := range amp.Data {
			prod.Data[i] = v * complex(dLdI.Data[i], 0)
		}
		if recomputed {
			s.cscratch.Put(amp)
		}
		plan.Forward(prod)
		w := complex(2*f.KS.Weights[k]*f.Dose, 0)
		patches[k] = fft.KernelAdjointPatch(s.cscratch.Get(p, p), prod, h, w)
		s.cscratch.Put(prod)
	})
	acc := s.cscratch.Get(f.M, f.M)
	acc.Zero()
	for _, patch := range patches {
		fft.AddKernelPatch(acc, patch)
		s.cscratch.Put(patch)
	}
	plan.Inverse(acc)
	out := acc.Real()
	s.cscratch.Put(acc)
	return out, nil
}
