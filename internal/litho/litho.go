// Package litho implements the forward lithography model of the paper:
// the Hopkins/SOCS aerial-image computation in its exact (Eq. 3),
// frequency-truncated low-resolution (Eq. 7) and approximate low-resolution
// (Eq. 8) forms, the constant-threshold (Eq. 1) and sigmoid (Eq. 9) resist
// models, the three process corners used for PVBand, and the adjoint of the
// aerial image with respect to the mask, which powers every gradient in the
// ILT optimizer.
//
// Normalisation convention (see DESIGN.md): the forward FFT is unnormalised
// and the inverse carries 1/n², which combined with open-frame-normalised
// kernels makes the aerial intensity invariant across resolution levels —
// the same I_th applies at every scale factor, exactly as Algorithm 1
// assumes.
package litho

import (
	"fmt"
	"sync"

	"repro/internal/fft"
	"repro/internal/grid"
	"repro/internal/optics"
)

// Sim owns the FFT plan cache and runs forward/adjoint simulations for one
// optical model. It is safe for concurrent use.
type Sim struct {
	Model *optics.Model
	plans sync.Map // int → *fft.Plan2
}

// NewSim creates a simulator over a built kernel model.
func NewSim(model *optics.Model) *Sim {
	return &Sim{Model: model}
}

// Plan returns (building if needed) the 2-D FFT plan for size m.
func (s *Sim) Plan(m int) (*fft.Plan2, error) {
	if v, ok := s.plans.Load(m); ok {
		return v.(*fft.Plan2), nil
	}
	p, err := fft.NewPlan2(m, m)
	if err != nil {
		return nil, err
	}
	actual, _ := s.plans.LoadOrStore(m, p)
	return actual.(*fft.Plan2), nil
}

// Field is the retained state of one forward simulation, sufficient to run
// the adjoint pass. Amps is only populated when the forward call was asked
// to keep per-kernel amplitudes (cheaper gradients at the cost of memory);
// otherwise the gradient pass recomputes each amplitude from Spec.
type Field struct {
	M         int          // working grid size
	Spec      *grid.CMat   // unnormalised FFT of the input mask, m×m
	Amps      []*grid.CMat // per-kernel amplitude fields A_k, or nil
	Intensity *grid.Mat    // aerial image including the dose factor
	Dose      float64
	KS        *optics.KernelSet
}

func (s *Sim) checkMask(mask *grid.Mat, p int) error {
	if mask.W != mask.H {
		return fmt.Errorf("litho: mask must be square, got %dx%d", mask.W, mask.H)
	}
	if mask.W&(mask.W-1) != 0 {
		return fmt.Errorf("litho: mask size %d is not a power of two", mask.W)
	}
	if mask.W < p {
		return fmt.Errorf("litho: mask size %d smaller than kernel support %d", mask.W, p)
	}
	return nil
}

// Forward runs the exact SOCS simulation (Eq. 3) of the mask at its own
// resolution: I = dose · Σ_k w_k |F⁻¹(H_k ⊙ F(M))|². With a mask already
// downsampled by the caller this is exactly Eq. (8) of the paper — the
// approximation the low-resolution ILT optimises against. Set keepAmps when
// a gradient pass will follow and memory allows (24 complex fields).
func (s *Sim) Forward(mask *grid.Mat, ks *optics.KernelSet, dose float64, keepAmps bool) (*Field, error) {
	if err := s.checkMask(mask, ks.P); err != nil {
		return nil, err
	}
	m := mask.W
	plan, err := s.Plan(m)
	if err != nil {
		return nil, err
	}
	spec := grid.ComplexFromReal(mask)
	plan.Forward(spec)

	f := &Field{M: m, Spec: spec, Dose: dose, KS: ks, Intensity: grid.NewMat(m, m)}
	if keepAmps {
		f.Amps = make([]*grid.CMat, len(ks.Kernels))
	}
	var buf *grid.CMat
	for k, h := range ks.Kernels {
		amp := fft.ApplyKernel(buf, spec, h, m, 1)
		buf = nil
		plan.Inverse(amp)
		amp.AddAbsSqScaled(f.Intensity, dose*ks.Weights[k])
		if keepAmps {
			f.Amps[k] = amp
		} else {
			buf = amp // reuse the allocation for the next kernel
		}
	}
	return f, nil
}

// ForwardEq7 runs the frequency-truncated low-resolution simulation of
// Eq. (7): the mask stays at full resolution n, its spectrum is multiplied
// by each kernel, truncated to m = n/s with the 1/s² scale, and
// inverse-transformed at size m. The result equals the exact aerial image
// sampled every s pixels (the kernel support lies inside the retained band).
func (s *Sim) ForwardEq7(mask *grid.Mat, scale int, ks *optics.KernelSet, dose float64) (*Field, error) {
	if err := s.checkMask(mask, ks.P); err != nil {
		return nil, err
	}
	if scale < 1 {
		return nil, fmt.Errorf("litho: scale %d must be ≥ 1", scale)
	}
	n := mask.W
	if n%scale != 0 {
		return nil, fmt.Errorf("litho: mask size %d not divisible by scale %d", n, scale)
	}
	m := n / scale
	if m < ks.P {
		return nil, fmt.Errorf("litho: reduced size %d smaller than kernel support %d", m, ks.P)
	}
	if m&(m-1) != 0 {
		return nil, fmt.Errorf("litho: reduced size %d is not a power of two", m)
	}
	planN, err := s.Plan(n)
	if err != nil {
		return nil, err
	}
	planM, err := s.Plan(m)
	if err != nil {
		return nil, err
	}
	spec := grid.ComplexFromReal(mask)
	planN.Forward(spec)

	f := &Field{M: m, Spec: spec, Dose: dose, KS: ks, Intensity: grid.NewMat(m, m)}
	sc := complex(1/float64(scale*scale), 0)
	var buf *grid.CMat
	for k, h := range ks.Kernels {
		amp := fft.ApplyKernel(buf, spec, h, m, sc)
		planM.Inverse(amp)
		amp.AddAbsSqScaled(f.Intensity, dose*ks.Weights[k])
		buf = amp
	}
	return f, nil
}

// Gradient computes dL/dM for a Field produced by Forward, given dL/dI at
// the working resolution:
//
//	dL/dM = Σ_k 2·w_k·dose · Re[ F⁻¹( conj(H_k) ⊙ F( dLdI ⊙ A_k ) ) ].
//
// Amplitudes are taken from the field when kept, otherwise recomputed from
// the retained mask spectrum. The kernel-adjoint products are accumulated in
// the frequency domain so only one final inverse FFT is needed.
func (s *Sim) Gradient(f *Field, dLdI *grid.Mat) (*grid.Mat, error) {
	if dLdI.W != f.M || dLdI.H != f.M {
		return nil, fmt.Errorf("litho: dLdI size %dx%d != field size %d", dLdI.W, dLdI.H, f.M)
	}
	if f.Amps == nil && (f.Spec.W != f.M || f.Spec.H != f.M) {
		// Fields from ForwardEq7 keep the full-size spectrum; their adjoint
		// is not implemented (the optimizer only differentiates Forward).
		return nil, fmt.Errorf("litho: gradient of a truncated (Eq. 7) field is not supported")
	}
	plan, err := s.Plan(f.M)
	if err != nil {
		return nil, err
	}
	acc := grid.NewCMat(f.M, f.M)
	var ampBuf, prodBuf *grid.CMat
	prodBuf = grid.NewCMat(f.M, f.M)
	for k, h := range f.KS.Kernels {
		var amp *grid.CMat
		if f.Amps != nil {
			amp = f.Amps[k]
		} else {
			amp = fft.ApplyKernel(ampBuf, f.Spec, h, f.M, 1)
			ampBuf = amp
			plan.Inverse(amp)
		}
		// B_k = dLdI ⊙ A_k
		for i, v := range amp.Data {
			prodBuf.Data[i] = v * complex(dLdI.Data[i], 0)
		}
		plan.Forward(prodBuf)
		w := complex(2*f.KS.Weights[k]*f.Dose, 0)
		fft.AccumulateKernelAdjoint(acc, prodBuf, h, w)
	}
	plan.Inverse(acc)
	return acc.Real(), nil
}
