// Package litho implements the forward lithography model of the paper:
// the Hopkins/SOCS aerial-image computation in its exact (Eq. 3),
// frequency-truncated low-resolution (Eq. 7) and approximate low-resolution
// (Eq. 8) forms, the constant-threshold (Eq. 1) and sigmoid (Eq. 9) resist
// models, the three process corners used for PVBand, and the adjoint of the
// aerial image with respect to the mask, which powers every gradient in the
// ILT optimizer.
//
// Normalisation convention (see DESIGN.md): the forward FFT is unnormalised
// and the inverse carries 1/n², which combined with open-frame-normalised
// kernels makes the aerial intensity invariant across resolution levels —
// the same I_th applies at every scale factor, exactly as Algorithm 1
// assumes.
//
// Concurrency (see DESIGN.md, "Concurrency model"): the per-kernel SOCS
// loops of Forward, ForwardEq7 and Gradient fan out across Workers
// goroutines with pool-backed private scratch, and every cross-kernel
// reduction is a strictly k-ordered fold of precomputed per-kernel
// contributions — so the result is bit-identical for every worker count,
// including the serial path.
//
// FFT engine (see DESIGN.md, "FFT engine" and "FFT engine v2"): by default
// the simulator runs the batched engine — all kernel products and pruned
// inverse transforms of one SOCS call advance through a single cache-blocked
// pass, with the inverse normalisation and SOCS scale folded into the
// multiply, the mask spectrum from the two-for-one real-input forward
// (identical to rounding), and the intensity fold fused into the column
// transforms. Sim.Engine selects between this default, the per-kernel
// EngineBand, the pruning-only EngineBandInverse, and the dense
// EngineReference.
package litho

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/fft"
	"repro/internal/grid"
	"repro/internal/optics"
	"repro/internal/telemetry"
)

// FFTEngine selects the FFT execution paths of a Sim. The kernels populate
// only a P×P band of each product spectrum, so the per-kernel inverse
// transforms can prune the rows and butterfly blocks that are structurally
// zero; the mask itself is real, so its forward transform can pack row pairs
// two-for-one. The engines expose those two optimisations separately
// because their equivalence guarantees differ: pruning is bit-identical to
// the dense reference, the real-input packing is identical only to rounding.
type FFTEngine int

const (
	// EngineBatch (the default) runs the whole kernel set through one
	// batched multiply + pruned inverse (fft.MulRowsBatch/InverseColumns):
	// shared twiddle loads, four rows/columns in lockstep, the intensity
	// fold fused into the column pass. Produces the same bits as EngineBand
	// for every output (each lane performs EngineBand's exact operation
	// sequence), hence agrees with EngineReference to rounding; see
	// DESIGN.md, "FFT engine v2".
	EngineBatch FFTEngine = iota
	// EngineBand applies the two structural optimisations kernel by
	// kernel: ForwardReal for the mask spectrum and InverseBand for every
	// per-kernel inverse. Agrees with EngineReference to rounding
	// (~ulp-level relative error, from the forward packing only).
	EngineBand
	// EngineBandInverse keeps the dense reference forward transform and
	// prunes only the per-kernel inverses — bit-identical to
	// EngineReference for every output, at most of EngineBand's speed.
	EngineBandInverse
	// EngineReference is the dense pre-band engine, retained as the
	// reference implementation the equivalence tests compare against.
	EngineReference
)

// String returns the flag spelling of the engine.
func (e FFTEngine) String() string {
	switch e {
	case EngineBatch:
		return "batch"
	case EngineBand:
		return "band"
	case EngineBandInverse:
		return "band-inverse"
	case EngineReference:
		return "reference"
	}
	return fmt.Sprintf("FFTEngine(%d)", int(e))
}

// ParseEngine maps a flag/config spelling to an engine. The empty string
// selects the default (EngineBatch), so option structs can use "" for
// "leave as is".
func ParseEngine(s string) (FFTEngine, error) {
	switch s {
	case "", "batch":
		return EngineBatch, nil
	case "band":
		return EngineBand, nil
	case "band-inverse":
		return EngineBandInverse, nil
	case "reference":
		return EngineReference, nil
	}
	return 0, fmt.Errorf("litho: unknown FFT engine %q (want batch, band, band-inverse or reference)", s)
}

// Sim owns the FFT plan cache and runs forward/adjoint simulations for one
// optical model. It is safe for concurrent use.
type Sim struct {
	Model *optics.Model
	// Workers bounds the per-kernel fan-out of the SOCS loops; ≤ 0 selects
	// runtime.GOMAXPROCS(0). Results are bit-identical for every value.
	// Set it before sharing the Sim across goroutines.
	Workers int
	// Engine selects the FFT execution paths; the zero value is the
	// band-aware default. Set it before sharing the Sim across goroutines.
	Engine FFTEngine
	// Recorder receives phase timers (litho.fft_forward, litho.socs,
	// litho.fft_inverse, litho.adjoint) and simulation counters. Nil (the
	// default) disables telemetry at zero cost — the instrumented paths
	// perform no extra allocations. Set it before sharing the Sim across
	// goroutines.
	Recorder *telemetry.Recorder
	// Plans, when non-nil, is a shared FFT-plan cache. Long-running
	// processes (the ILT server) point every per-job Sim at one cache so
	// plan construction is amortized across jobs, not just across the
	// iterations of one optimization. Nil (the default) gives the Sim a
	// private cache. Set it before the first simulation.
	Plans *fft.PlanCache

	ownPlans   fft.PlanCache
	planBuilds atomic.Int32

	cscratch grid.CMatPool      // complex per-worker scratch (amplitudes, spectra)
	mscratch grid.MatPool       // real per-kernel intensity contributions
	kscratch grid.CMatSlicePool // per-call []*CMat work lists (patches, amp chunks)
}

// NewSim creates a simulator over a built kernel model.
func NewSim(model *optics.Model) *Sim {
	return &Sim{Model: model}
}

// Plan returns (building if needed) the 2-D FFT plan for size m. Plan
// construction happens exactly once per size per cache, no matter how many
// goroutines ask concurrently; with a shared Plans cache, once per size
// per process.
func (s *Sim) Plan(m int) (*fft.Plan2, error) {
	cache := s.Plans
	if cache == nil {
		cache = &s.ownPlans
	}
	var t0 time.Time
	if s.Recorder.Enabled() {
		t0 = time.Now()
	}
	plan, built, err := cache.Get(m)
	if built {
		s.planBuilds.Add(1)
		s.Recorder.Add("litho.plan_builds", 1)
		if !t0.IsZero() {
			// Time spent waiting on the singleflight build, as seen by this
			// requester (losers of the race observe their wait, which is the
			// latency the caller actually paid).
			s.Recorder.Histogram("fft.plan_build", telemetry.HistDuration).ObserveDuration(time.Since(t0))
		}
	} else if err == nil {
		s.Recorder.Add("litho.plan_hits", 1)
	}
	return plan, err
}

// kernelWorkers resolves the effective fan-out for a k-kernel loop.
func (s *Sim) kernelWorkers(k int) int {
	w := s.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > k {
		w = k
	}
	return w
}

// Field is the retained state of one forward simulation, sufficient to run
// the adjoint pass. Amps is only populated when the forward call was asked
// to keep per-kernel amplitudes (cheaper gradients at the cost of memory);
// otherwise the gradient pass recomputes each amplitude from Spec.
type Field struct {
	M         int          // working grid size
	Spec      *grid.CMat   // unnormalised FFT of the input mask, m×m
	Amps      []*grid.CMat // per-kernel amplitude fields A_k, or nil
	Intensity *grid.Mat    // aerial image including the dose factor
	Dose      float64
	KS        *optics.KernelSet
}

func (s *Sim) checkMask(mask *grid.Mat, p int) error {
	if mask.W != mask.H {
		return fmt.Errorf("litho: mask must be square, got %dx%d", mask.W, mask.H)
	}
	if mask.W&(mask.W-1) != 0 {
		return fmt.Errorf("litho: mask size %d is not a power of two", mask.W)
	}
	if mask.W < p {
		return fmt.Errorf("litho: mask size %d smaller than kernel support %d", mask.W, p)
	}
	return nil
}

// maskSpectrum computes the unnormalised FFT of the mask under the active
// engine: the band engine packs the real input two-for-one (ForwardReal),
// the others run the dense reference transform.
func (s *Sim) maskSpectrum(plan *fft.Plan2, mask *grid.Mat) *grid.CMat {
	sp := s.Recorder.StartSpan("litho.fft_forward")
	defer sp.End()
	if s.Engine == EngineBatch || s.Engine == EngineBand {
		spec := grid.NewCMat(mask.W, mask.H)
		plan.ForwardReal(spec, mask)
		return spec
	}
	spec := grid.ComplexFromReal(mask)
	plan.Forward(spec)
	return spec
}

// accumulateSOCS runs the per-kernel SOCS loop shared by Forward and
// ForwardEq7: amplitude A_k = F⁻¹(scale·H_k ⊙ spec) at size m, intensity
// += dose·w_k·|A_k|². The inverse-FFT 1/m² normalisation is folded into
// the kernel multiply (fft.FoldInverseScale) on every engine, so each
// amplitude buffer is touched one fewer time; all engines fold through the
// same expression, preserving their cross-engine equivalences.
//
// Engines: EngineBatch hands the whole kernel set to fft.MulRowsBatch /
// InverseColumns — one cache-blocked pass with the intensity fold fused
// into the column transforms, bit-identical to the per-kernel band path.
// The per-kernel engines fan the amplitude work across kernelWorkers
// goroutines; each kernel's intensity contribution lands in a pooled
// private buffer and the final fold into f.Intensity runs on the calling
// goroutine in ascending k — the floating-point reduction order is fixed
// (the batch fuses the same ascending-k fold into its disjoint column
// blocks), so any worker count produces the same bits on every engine.
//
// Under the band engines the kernel product lives in a band-limited scratch
// buffer (ApplyKernelBand clears only the previously dirty rows) and the
// inverse is the pruned out-of-place InverseBandNoNorm — bit-identical to
// the dense ApplyKernel + InverseNoNorm pair it replaces.
//
// Telemetry: the serial lane alternates non-overlapping litho.socs /
// litho.fft_inverse spans so traces show the inverse-transform share of the
// SOCS loop; the parallel lane records one caller-side litho.socs span
// (per-worker spans would double-count wall time and break tracecheck's
// phase-coverage bound). The batch records one litho.socs span around the
// row pass and one litho.fft_inverse span around the column pass.
func (s *Sim) accumulateSOCS(f *Field, plan *fft.Plan2, spec *grid.CMat, m int, scale complex128, keepAmps bool) {
	ks := f.KS
	nk := len(ks.Kernels)
	workers := s.kernelWorkers(nk)
	banded := s.Engine != EngineReference
	scale = fft.FoldInverseScale(scale, m, m)

	if s.Engine == EngineBatch && s.batchSOCS(f, plan, spec, m, scale, keepAmps, workers) {
		s.Recorder.Add("litho.kernel_ffts", int64(nk))
		return
	}

	if workers <= 1 {
		// Serial fast path: one amplitude buffer and one contribution buffer
		// recycled across all kernels — O(1) scratch at any grid size.
		contrib := s.mscratch.Get(m, m)
		var prod *grid.CMat
		dirty := fft.BandNone
		if banded {
			prod = s.cscratch.Get(m, m)
		}
		var buf *grid.CMat
		if !keepAmps {
			buf = s.cscratch.Get(m, m)
		}
		for k, h := range ks.Kernels {
			amp := buf
			if keepAmps {
				amp = grid.NewCMat(m, m)
				f.Amps[k] = amp
			}
			sp := s.Recorder.StartSpan("litho.socs")
			if banded {
				prod, dirty = fft.ApplyKernelBand(prod, dirty, spec, h, m, scale)
			} else {
				fft.ApplyKernel(amp, spec, h, m, scale)
			}
			sp.End()
			spi := s.Recorder.StartSpan("litho.fft_inverse")
			if banded {
				plan.InverseBandNoNorm(amp, prod, dirty)
			} else {
				plan.InverseNoNorm(amp)
			}
			spi.End()
			sp = s.Recorder.StartSpan("litho.socs")
			amp.AbsSqScaledInto(contrib, f.Dose*ks.Weights[k])
			f.Intensity.Add(contrib)
			sp.End()
		}
		if prod != nil {
			s.cscratch.Put(prod)
		}
		if buf != nil {
			s.cscratch.Put(buf)
		}
		s.mscratch.Put(contrib)
		s.Recorder.Add("litho.kernel_ffts", int64(nk))
		return
	}

	sp := s.Recorder.StartSpan("litho.socs")
	contribs := make([]*grid.Mat, nk)
	grid.ParallelFor(workers, nk, func(k int) {
		h := ks.Kernels[k]
		var amp *grid.CMat
		if banded {
			prod, band := fft.ApplyKernelBand(s.cscratch.Get(m, m), fft.BandNone, spec, h, m, scale)
			if keepAmps {
				amp = grid.NewCMat(m, m)
				f.Amps[k] = amp
			} else {
				amp = s.cscratch.Get(m, m)
			}
			plan.InverseBandNoNorm(amp, prod, band)
			s.cscratch.Put(prod)
		} else {
			if keepAmps {
				amp = fft.ApplyKernel(nil, spec, h, m, scale)
				f.Amps[k] = amp
			} else {
				amp = fft.ApplyKernel(s.cscratch.Get(m, m), spec, h, m, scale)
			}
			plan.InverseNoNorm(amp)
		}
		c := s.mscratch.Get(m, m)
		amp.AbsSqScaledInto(c, f.Dose*ks.Weights[k])
		contribs[k] = c
		if !keepAmps {
			s.cscratch.Put(amp)
		}
	})
	for _, c := range contribs {
		f.Intensity.Add(c)
		s.mscratch.Put(c)
	}
	sp.End()
	s.Recorder.Add("litho.kernel_ffts", int64(nk))
}

// batchSOCS is the EngineBatch lane of accumulateSOCS: the kernel multiply
// and pruned inverse row transforms for all kernels run in one batched pass
// (litho.socs span), then the column transforms with the fused ascending-k
// intensity fold (litho.fft_inverse span). scale must already carry the
// folded 1/m² (accumulateSOCS does this). Reports false when the batch
// layout does not apply so the caller falls back to the per-kernel band
// lane.
func (s *Sim) batchSOCS(f *Field, plan *fft.Plan2, spec *grid.CMat, m int, scale complex128, keepAmps bool, workers int) bool {
	ks := f.KS
	sp := s.Recorder.StartSpan("litho.socs")
	// The mask spectrum comes from a real mask, so it is Hermitian (to
	// rounding) — the batch halves the row work for any exactly-Hermitian
	// kernel; physical kernels carry defocus phase and keep the gate
	// closed, so this path stays bit-identical to EngineBand.
	b := plan.MulRowsBatch(spec, ks.Kernels, scale, true, workers)
	if b == nil {
		sp.End()
		return false
	}
	weights := make([]float64, len(ks.Kernels))
	for k := range weights {
		weights[k] = f.Dose * ks.Weights[k]
	}
	var outs []*grid.CMat
	if keepAmps {
		for k := range f.Amps {
			f.Amps[k] = grid.NewCMat(m, m)
		}
		outs = f.Amps
	}
	sp.End()
	spi := s.Recorder.StartSpan("litho.fft_inverse")
	b.InverseColumns(outs, weights, f.Intensity)
	spi.End()
	return true
}

// Forward runs the exact SOCS simulation (Eq. 3) of the mask at its own
// resolution: I = dose · Σ_k w_k |F⁻¹(H_k ⊙ F(M))|². With a mask already
// downsampled by the caller this is exactly Eq. (8) of the paper — the
// approximation the low-resolution ILT optimises against. Set keepAmps when
// a gradient pass will follow and memory allows (24 complex fields).
func (s *Sim) Forward(mask *grid.Mat, ks *optics.KernelSet, dose float64, keepAmps bool) (*Field, error) {
	if err := s.checkMask(mask, ks.P); err != nil {
		return nil, err
	}
	m := mask.W
	plan, err := s.Plan(m)
	if err != nil {
		return nil, err
	}
	spec := s.maskSpectrum(plan, mask)

	f := &Field{M: m, Spec: spec, Dose: dose, KS: ks, Intensity: grid.NewMat(m, m)}
	if keepAmps {
		f.Amps = make([]*grid.CMat, len(ks.Kernels))
	}
	s.accumulateSOCS(f, plan, spec, m, 1, keepAmps)
	s.Recorder.Add("litho.forward_sims", 1)
	return f, nil
}

// ForwardEq7 runs the frequency-truncated low-resolution simulation of
// Eq. (7): the mask stays at full resolution n, its spectrum is multiplied
// by each kernel, truncated to m = n/s with the 1/s² scale, and
// inverse-transformed at size m. The result equals the exact aerial image
// sampled every s pixels (the kernel support lies inside the retained band).
func (s *Sim) ForwardEq7(mask *grid.Mat, scale int, ks *optics.KernelSet, dose float64) (*Field, error) {
	if err := s.checkMask(mask, ks.P); err != nil {
		return nil, err
	}
	if scale < 1 {
		return nil, fmt.Errorf("litho: scale %d must be ≥ 1", scale)
	}
	n := mask.W
	if n%scale != 0 {
		return nil, fmt.Errorf("litho: mask size %d not divisible by scale %d", n, scale)
	}
	m := n / scale
	if m < ks.P {
		return nil, fmt.Errorf("litho: reduced size %d smaller than kernel support %d", m, ks.P)
	}
	if m&(m-1) != 0 {
		return nil, fmt.Errorf("litho: reduced size %d is not a power of two", m)
	}
	planN, err := s.Plan(n)
	if err != nil {
		return nil, err
	}
	planM, err := s.Plan(m)
	if err != nil {
		return nil, err
	}
	spec := s.maskSpectrum(planN, mask)

	f := &Field{M: m, Spec: spec, Dose: dose, KS: ks, Intensity: grid.NewMat(m, m)}
	sc := complex(1/float64(scale*scale), 0)
	s.accumulateSOCS(f, planM, spec, m, sc, false)
	s.Recorder.Add("litho.eq7_sims", 1)
	return f, nil
}

// Gradient computes dL/dM for a Field produced by Forward, given dL/dI at
// the working resolution:
//
//	dL/dM = Σ_k 2·w_k·dose · Re[ F⁻¹( conj(H_k) ⊙ F( dLdI ⊙ A_k ) ) ].
//
// Amplitudes are taken from the field when kept, otherwise recomputed from
// the retained mask spectrum. The kernel-adjoint products are computed in
// parallel as dense P×P patches and folded into the frequency-domain
// accumulator in ascending k, so only one final inverse FFT is needed and
// the result is bit-identical for every worker count.
func (s *Sim) Gradient(f *Field, dLdI *grid.Mat) (*grid.Mat, error) {
	if dLdI.W != f.M || dLdI.H != f.M {
		//lint:ignore escape error-path boxing of the size operands into the fmt args; never reached by a converging optimization
		return nil, fmt.Errorf("litho: dLdI size %dx%d != field size %d", dLdI.W, dLdI.H, f.M)
	}
	if f.Amps == nil && (f.Spec.W != f.M || f.Spec.H != f.M) {
		// Fields from ForwardEq7 keep the full-size spectrum; their adjoint
		// is not implemented (the optimizer only differentiates Forward).
		return nil, fmt.Errorf("litho: gradient of a truncated (Eq. 7) field is not supported")
	}
	plan, err := s.Plan(f.M)
	if err != nil {
		return nil, err
	}
	sp := s.Recorder.StartSpan("litho.adjoint")
	defer sp.End()
	s.Recorder.Add("litho.adjoint_calls", 1)
	banded := s.Engine != EngineReference
	nk := len(f.KS.Kernels)
	p := f.KS.P
	workers := s.kernelWorkers(nk)
	// The amplitude recompute (fields without kept amps) folds the inverse
	// normalisation into the kernel multiply, like the forward pass; the
	// adjoint patch weight likewise absorbs the final inverse's 1/m².
	ampScale := fft.FoldInverseScale(1, f.M, f.M)
	if f.Amps == nil {
		s.Recorder.Add("litho.kernel_ffts", int64(nk))
	}
	patchesp, patches := s.kscratch.Get(nk)
	if f.Amps == nil && s.Engine == EngineBatch && s.batchAdjointPatches(f, plan, dLdI, patches, ampScale, workers) {
		// Amplitudes recomputed in batched chunks, patches filled.
	} else {
		grid.ParallelFor(workers, nk, func(k int) {
			h := f.KS.Kernels[k]
			var amp *grid.CMat
			recomputed := false
			if f.Amps != nil {
				amp = f.Amps[k]
			} else if banded {
				kprod, band := fft.ApplyKernelBand(s.cscratch.Get(f.M, f.M), fft.BandNone, f.Spec, h, f.M, ampScale)
				amp = s.cscratch.Get(f.M, f.M)
				plan.InverseBandNoNorm(amp, kprod, band)
				s.cscratch.Put(kprod)
				recomputed = true
			} else {
				amp = fft.ApplyKernel(s.cscratch.Get(f.M, f.M), f.Spec, h, f.M, ampScale)
				plan.InverseNoNorm(amp)
				recomputed = true
			}
			patches[k] = s.adjointPatch(f, plan, amp, dLdI, k)
			if recomputed {
				s.cscratch.Put(amp)
			}
		})
	}
	// The patch fold only populates the P×P band of acc, so the band
	// engines clear just those rows and run the pruned out-of-place inverse
	// — bit-identical to the dense Zero + Inverse below.
	accBand := fft.BandSpec{Half: p / 2}
	acc := s.cscratch.Get(f.M, f.M)
	useBand := banded && !accBand.Covers(f.M)
	if useBand {
		accBand.ZeroRows(acc)
	} else {
		acc.Zero()
	}
	for _, patch := range patches {
		fft.AddKernelPatch(acc, patch)
		s.cscratch.Put(patch)
	}
	s.kscratch.Put(patchesp)
	var out *grid.Mat
	if useBand {
		img := s.cscratch.Get(f.M, f.M)
		plan.InverseBandNoNorm(img, acc, accBand)
		out = img.Real()
		s.cscratch.Put(img)
	} else {
		plan.InverseNoNorm(acc)
		out = acc.Real()
	}
	s.cscratch.Put(acc)
	return out, nil
}

// adjointPatch computes one kernel's adjoint contribution: B_k = dLdI ⊙ A_k,
// its forward transform, and the P×P frequency patch weighted by
// 2·w_k·dose with the final inverse's 1/m² folded in.
func (s *Sim) adjointPatch(f *Field, plan *fft.Plan2, amp *grid.CMat, dLdI *grid.Mat, k int) *grid.CMat {
	prod := s.cscratch.Get(f.M, f.M)
	for i, v := range amp.Data {
		prod.Data[i] = v * complex(dLdI.Data[i], 0)
	}
	plan.Forward(prod)
	w := fft.FoldInverseScale(complex(2*f.KS.Weights[k]*f.Dose, 0), f.M, f.M)
	patch := fft.KernelAdjointPatch(s.cscratch.Get(f.KS.P, f.KS.P), prod, f.KS.Kernels[k], w)
	s.cscratch.Put(prod)
	//lint:ignore scratchalias the returned patch is pool-leased on purpose: Gradient owns it for the duration of the fold loop and Puts every entry of patches right after AddKernelPatch
	return patch
}

// batchAdjointPatches is the EngineBatch lane of the gradient's
// amplitude-recompute path: amplitudes are regenerated through
// MulRowsBatch/InverseColumns in chunks (bounding the live amplitude
// memory to ~chunk·m² complex values instead of nk·m²), then each chunk's
// adjoint patches are computed in parallel. Patch values are bit-identical
// to the per-kernel lane — the batch reproduces its amplitude bits, and
// the patch arithmetic is shared (adjointPatch). Reports false when the
// batch layout does not apply.
func (s *Sim) batchAdjointPatches(f *Field, plan *fft.Plan2, dLdI *grid.Mat, patches []*grid.CMat, ampScale complex128, workers int) bool {
	ks := f.KS
	nk := len(ks.Kernels)
	chunk := workers
	if chunk < 4 {
		chunk = 4
	}
	if chunk > nk {
		chunk = nk
	}
	ampsp, amps := s.kscratch.Get(chunk)
	for i := range amps {
		amps[i] = s.cscratch.Get(f.M, f.M)
	}
	defer func() {
		for i := range amps {
			s.cscratch.Put(amps[i])
		}
		s.kscratch.Put(ampsp)
	}()
	for c0 := 0; c0 < nk; c0 += chunk {
		c1 := c0 + chunk
		if c1 > nk {
			c1 = nk
		}
		b := plan.MulRowsBatch(f.Spec, ks.Kernels[c0:c1], ampScale, true, workers)
		if b == nil {
			return false // layout constraint: fails on the first chunk or never
		}
		b.InverseColumns(amps[:c1-c0], nil, nil)
		grid.ParallelFor(workers, c1-c0, func(j int) {
			patches[c0+j] = s.adjointPatch(f, plan, amps[j], dLdI, c0+j)
		})
	}
	return true
}
