package litho

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/grid"
	"repro/internal/optics"
)

var (
	testModelOnce sync.Once
	testModel     *optics.Model
)

// model returns a small cached kernel model for the whole test package.
func model(t testing.TB) *optics.Model {
	t.Helper()
	testModelOnce.Do(func() {
		m, err := optics.BuildModel(optics.TestScale())
		if err != nil {
			panic(err)
		}
		testModel = m
	})
	return testModel
}

func randMask(rng *rand.Rand, n int) *grid.Mat {
	m := grid.NewMat(n, n)
	for i := range m.Data {
		m.Data[i] = rng.Float64()
	}
	return m
}

func TestForwardOpenAndDarkFrame(t *testing.T) {
	sim := NewSim(model(t))
	const n = 64
	open := grid.NewMat(n, n)
	open.Fill(1)
	f, err := sim.Forward(open, sim.Model.Nominal, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	min, max := f.Intensity.MinMax()
	if math.Abs(min-1) > 1e-9 || math.Abs(max-1) > 1e-9 {
		t.Errorf("open-frame intensity in [%g, %g], want 1 (normalisation anchor)", min, max)
	}

	dark := grid.NewMat(n, n)
	fd, err := sim.Forward(dark, sim.Model.Nominal, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if fd.Intensity.MaxAbs() > 1e-12 {
		t.Errorf("dark-frame intensity %g, want 0", fd.Intensity.MaxAbs())
	}
}

func TestForwardIntensityNonNegative(t *testing.T) {
	sim := NewSim(model(t))
	rng := rand.New(rand.NewSource(1))
	mask := randMask(rng, 64)
	f, err := sim.Forward(mask, sim.Model.Nominal, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if min, _ := f.Intensity.MinMax(); min < -1e-12 {
		t.Errorf("negative aerial intensity %g", min)
	}
}

func TestForwardDoseLinearity(t *testing.T) {
	sim := NewSim(model(t))
	rng := rand.New(rand.NewSource(2))
	mask := randMask(rng, 64)
	f1, err := sim.Forward(mask, sim.Model.Nominal, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := sim.Forward(mask, sim.Model.Nominal, 1.02, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := range f1.Intensity.Data {
		if math.Abs(f2.Intensity.Data[i]-1.02*f1.Intensity.Data[i]) > 1e-9 {
			t.Fatalf("dose not linear at %d", i)
		}
	}
}

func TestForwardValidation(t *testing.T) {
	sim := NewSim(model(t))
	ks := sim.Model.Nominal
	if _, err := sim.Forward(grid.NewMat(64, 32), ks, 1, false); err == nil {
		t.Error("non-square mask accepted")
	}
	if _, err := sim.Forward(grid.NewMat(48, 48), ks, 1, false); err == nil {
		t.Error("non-power-of-two mask accepted")
	}
	if _, err := sim.Forward(grid.NewMat(8, 8), ks, 1, false); err == nil {
		t.Error("mask smaller than kernel support accepted")
	}
}

// TestEq7EqualsSampledEq3 is the core multi-level identity: the truncated
// low-resolution simulation must equal the exact simulation sampled every s
// pixels, because the kernels are band-limited inside the retained block.
func TestEq7EqualsSampledEq3(t *testing.T) {
	sim := NewSim(model(t))
	rng := rand.New(rand.NewSource(3))
	const n, s = 128, 4
	mask := randMask(rng, n)
	full, err := sim.Forward(mask, sim.Model.Nominal, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	low, err := sim.ForwardEq7(mask, s, sim.Model.Nominal, 1)
	if err != nil {
		t.Fatal(err)
	}
	if low.M != n/s {
		t.Fatalf("Eq7 size %d, want %d", low.M, n/s)
	}
	var worst float64
	for y := 0; y < low.M; y++ {
		for x := 0; x < low.M; x++ {
			d := math.Abs(low.Intensity.At(x, y) - full.Intensity.At(x*s, y*s))
			if d > worst {
				worst = d
			}
		}
	}
	if worst > 1e-9 {
		t.Errorf("Eq7 deviates from sampled Eq3 by %g", worst)
	}
}

// TestEq8ApproximatesEq7: simulating the pooled mask at low resolution must
// closely track the exact subsampled image on smooth (realistic) masks.
func TestEq8ApproximatesEq7(t *testing.T) {
	sim := NewSim(model(t))
	const n, s = 128, 4
	// A realistic rectilinear mask rather than white noise: Eq. (8) is an
	// approximation whose quality the paper demonstrates on layouts.
	mask := grid.NewMat(n, n)
	for y := 40; y < 88; y++ {
		for x := 32; x < 96; x++ {
			mask.Set(x, y, 1)
		}
	}
	eq7, err := sim.ForwardEq7(mask, s, sim.Model.Nominal, 1)
	if err != nil {
		t.Fatal(err)
	}
	pooled := grid.AvgPoolDown(mask, s)
	eq8, err := sim.Forward(pooled, sim.Model.Nominal, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	var num, den float64
	for i := range eq7.Intensity.Data {
		d := eq7.Intensity.Data[i] - eq8.Intensity.Data[i]
		num += d * d
		den += eq7.Intensity.Data[i] * eq7.Intensity.Data[i]
	}
	// Eq. (8) is an approximation (the paper uses it only inside the
	// low-resolution optimization loop); ~10% relative intensity error on a
	// hard edge at s=4 is expected and gets corrected by the high-res pass.
	if rel := math.Sqrt(num / den); rel > 0.15 {
		t.Errorf("Eq8 relative error vs Eq7 = %g, want < 15%%", rel)
	}
}

func TestForwardEq7Validation(t *testing.T) {
	sim := NewSim(model(t))
	ks := sim.Model.Nominal
	mask := grid.NewMat(64, 64)
	if _, err := sim.ForwardEq7(mask, 0, ks, 1); err == nil {
		t.Error("scale 0 accepted")
	}
	if _, err := sim.ForwardEq7(mask, 8, ks, 1); err == nil {
		t.Error("reduced size below kernel support accepted")
	}
	if _, err := sim.ForwardEq7(grid.NewMat(96, 96), 3, ks, 1); err == nil {
		t.Error("non-power-of-two input accepted")
	}
}

// TestGradientFiniteDifference validates the full adjoint against central
// finite differences of L = Σ c·I for random c.
func TestGradientFiniteDifference(t *testing.T) {
	sim := NewSim(model(t))
	rng := rand.New(rand.NewSource(4))
	const n = 32
	mask := randMask(rng, n)
	c := randMask(rng, n) // dL/dI

	f, err := sim.Forward(mask, sim.Model.Nominal, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	g, err := sim.Gradient(f, c)
	if err != nil {
		t.Fatal(err)
	}

	loss := func(m *grid.Mat) float64 {
		ff, err := sim.Forward(m, sim.Model.Nominal, 1, false)
		if err != nil {
			t.Fatal(err)
		}
		return ff.Intensity.Dot(c)
	}
	const eps = 1e-5
	for trial := 0; trial < 6; trial++ {
		x, y := rng.Intn(n), rng.Intn(n)
		orig := mask.At(x, y)
		mask.Set(x, y, orig+eps)
		lp := loss(mask)
		mask.Set(x, y, orig-eps)
		lm := loss(mask)
		mask.Set(x, y, orig)
		fd := (lp - lm) / (2 * eps)
		if diff := math.Abs(fd - g.At(x, y)); diff > 1e-5*(1+math.Abs(fd)) {
			t.Errorf("gradient at (%d,%d): analytic %g, finite-diff %g", x, y, g.At(x, y), fd)
		}
	}
}

// TestGradientKeepAmpsEquivalence: the memory-saving recompute path must
// produce the same gradient as the cached-amplitude path.
func TestGradientKeepAmpsEquivalence(t *testing.T) {
	sim := NewSim(model(t))
	rng := rand.New(rand.NewSource(5))
	const n = 32
	mask := randMask(rng, n)
	dLdI := randMask(rng, n)

	fKeep, err := sim.Forward(mask, sim.Model.Nominal, 0.98, true)
	if err != nil {
		t.Fatal(err)
	}
	gKeep, err := sim.Gradient(fKeep, dLdI)
	if err != nil {
		t.Fatal(err)
	}
	fRe, err := sim.Forward(mask, sim.Model.Nominal, 0.98, false)
	if err != nil {
		t.Fatal(err)
	}
	gRe, err := sim.Gradient(fRe, dLdI)
	if err != nil {
		t.Fatal(err)
	}
	if !gKeep.Equal(gRe, 1e-10) {
		t.Error("gradient differs between keepAmps and recompute paths")
	}
}

func TestGradientSizeValidation(t *testing.T) {
	sim := NewSim(model(t))
	mask := grid.NewMat(32, 32)
	f, err := sim.Forward(mask, sim.Model.Nominal, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Gradient(f, grid.NewMat(16, 16)); err == nil {
		t.Error("mismatched dLdI size accepted")
	}
}

func TestResistBinary(t *testing.T) {
	i := grid.FromSlice(3, 1, []float64{0.1, 0.225, 0.9})
	z := ResistBinary(i, DefaultThreshold)
	want := []float64{0, 1, 1}
	for k, v := range want {
		if z.Data[k] != v {
			t.Fatalf("ResistBinary[%d] = %v, want %v", k, z.Data[k], v)
		}
	}
}

func TestResistSigmoidProperties(t *testing.T) {
	i := grid.FromSlice(3, 1, []float64{0.0, DefaultThreshold, 1.0})
	z := ResistSigmoid(i, DefaultThreshold, DefaultAlpha)
	if math.Abs(z.Data[1]-0.5) > 1e-12 {
		t.Errorf("sigmoid at threshold = %v, want 0.5", z.Data[1])
	}
	if z.Data[0] >= 0.5 || z.Data[2] <= 0.5 {
		t.Error("sigmoid not monotone around threshold")
	}
	// Extreme inputs must not overflow.
	ext := grid.FromSlice(2, 1, []float64{-1e6, 1e6})
	ze := ResistSigmoid(ext, DefaultThreshold, DefaultAlpha)
	if ze.Data[0] != 0 && ze.Data[0] > 1e-300 {
		t.Errorf("sigmoid(-inf) = %v", ze.Data[0])
	}
	if math.Abs(ze.Data[1]-1) > 1e-12 {
		t.Errorf("sigmoid(+inf) = %v", ze.Data[1])
	}
}

func TestResistSigmoidGradMatchesFiniteDifference(t *testing.T) {
	const ith, alpha = 0.225, 50.0
	for _, iv := range []float64{0.1, 0.2, 0.225, 0.3, 0.5} {
		i0 := grid.FromSlice(1, 1, []float64{iv})
		z := ResistSigmoid(i0, ith, alpha)
		g := ResistSigmoidGrad(z, alpha)
		const eps = 1e-7
		ip := grid.FromSlice(1, 1, []float64{iv + eps})
		im := grid.FromSlice(1, 1, []float64{iv - eps})
		fd := (ResistSigmoid(ip, ith, alpha).Data[0] - ResistSigmoid(im, ith, alpha).Data[0]) / (2 * eps)
		if math.Abs(fd-g.Data[0]) > 1e-5*(1+math.Abs(fd)) {
			t.Errorf("I=%g: dZ/dI analytic %g, fd %g", iv, g.Data[0], fd)
		}
	}
}

func TestProcessCorners(t *testing.T) {
	p := NewProcess(model(t))
	cs := p.Corners()
	if len(cs) != 3 {
		t.Fatalf("got %d corners", len(cs))
	}
	if cs[0].Dose != 1 || cs[1].Dose != 0.98 || cs[2].Dose != 1.02 {
		t.Errorf("corner doses %v %v %v", cs[0].Dose, cs[1].Dose, cs[2].Dose)
	}
	if cs[1].KS != p.Sim.Model.Defocus {
		t.Error("inner corner does not use defocus kernels")
	}
	if cs[0].KS != p.Sim.Model.Nominal || cs[2].KS != p.Sim.Model.Nominal {
		t.Error("nominal/outer corners do not use nominal kernels")
	}
}

// TestCornerOrderingOnFeature: on a printed feature the outer corner (+2%
// dose) must print at least as much area as the inner corner (−2% dose,
// defocus) — the PVBand is exactly the gap between them.
func TestCornerOrderingOnFeature(t *testing.T) {
	p := NewProcess(model(t))
	const n = 128
	mask := grid.NewMat(n, n)
	for y := 44; y < 84; y++ {
		for x := 34; x < 94; x++ {
			mask.Set(x, y, 1)
		}
	}
	zIn, err := p.Print(mask, p.Inner())
	if err != nil {
		t.Fatal(err)
	}
	zOut, err := p.Print(mask, p.Outer())
	if err != nil {
		t.Fatal(err)
	}
	aIn, aOut := zIn.Sum(), zOut.Sum()
	if aOut < aIn {
		t.Errorf("outer area %v < inner area %v", aOut, aIn)
	}
	if aOut == 0 {
		t.Error("feature did not print at outer corner")
	}
}

func TestPrintSigmoidMatchesBinaryFarFromEdge(t *testing.T) {
	p := NewProcess(model(t))
	const n = 128
	mask := grid.NewMat(n, n)
	for y := 32; y < 96; y++ {
		for x := 32; x < 96; x++ {
			mask.Set(x, y, 1)
		}
	}
	zb, err := p.Print(mask, p.Nominal())
	if err != nil {
		t.Fatal(err)
	}
	_, zs, err := p.PrintSigmoid(mask, p.Nominal(), false)
	if err != nil {
		t.Fatal(err)
	}
	// Deep inside the feature and far outside, the two must agree.
	if zb.At(64, 64) != 1 || zs.At(64, 64) < 0.95 {
		t.Errorf("center: binary %v sigmoid %v", zb.At(64, 64), zs.At(64, 64))
	}
	if zb.At(4, 4) != 0 || zs.At(4, 4) > 0.05 {
		t.Errorf("corner: binary %v sigmoid %v", zb.At(4, 4), zs.At(4, 4))
	}
}

func TestPlanCacheReuse(t *testing.T) {
	sim := NewSim(model(t))
	p1, err := sim.Plan(64)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := sim.Plan(64)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("plan cache returned distinct plans for the same size")
	}
}

func TestGradientRejectsEq7Field(t *testing.T) {
	sim := NewSim(model(t))
	mask := grid.NewMat(64, 64)
	f, err := sim.ForwardEq7(mask, 4, sim.Model.Nominal, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Gradient(f, grid.NewMat(f.M, f.M)); err == nil {
		t.Error("gradient of an Eq.7 field accepted — its adjoint is not implemented")
	}
}
