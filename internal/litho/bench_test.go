package litho

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/grid"
)

func benchSetup(b *testing.B, n int) (*Sim, *grid.Mat) {
	b.Helper()
	sim := NewSim(model(b))
	rng := rand.New(rand.NewSource(7))
	mask := grid.NewMat(n, n)
	for i := range mask.Data {
		mask.Data[i] = rng.Float64()
	}
	// Warm the plan cache outside the timed region.
	if _, err := sim.Forward(mask, sim.Model.Nominal, 1, false); err != nil {
		b.Fatal(err)
	}
	return sim, mask
}

func BenchmarkForward128(b *testing.B) {
	sim, mask := benchSetup(b, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Forward(mask, sim.Model.Nominal, 1, false); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkForwardEq7Scale4(b *testing.B) {
	sim, mask := benchSetup(b, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.ForwardEq7(mask, 4, sim.Model.Nominal, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGradient128(b *testing.B) {
	sim, mask := benchSetup(b, 128)
	dLdI := grid.NewMat(128, 128)
	dLdI.Fill(0.5)
	f, err := sim.Forward(mask, sim.Model.Nominal, 1, true)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Gradient(f, dLdI); err != nil {
			b.Fatal(err)
		}
	}
}

// Workers-parameterized benchmarks: the speedup curve of the parallel SOCS
// loops. ns/op tracks the wall-clock win; allocs/op guards the pooled-
// scratch design (the kernel loop must not allocate in steady state).
func benchWorkerCounts() []int { return []int{1, 2, 4, 8} }

func BenchmarkForwardWorkers(b *testing.B) {
	for _, w := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			sim, mask := benchSetup(b, 256)
			sim.Workers = w
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sim.Forward(mask, sim.Model.Nominal, 1, false); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkGradientWorkers(b *testing.B) {
	for _, w := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			sim, mask := benchSetup(b, 256)
			sim.Workers = w
			dLdI := grid.NewMat(256, 256)
			dLdI.Fill(0.5)
			f, err := sim.Forward(mask, sim.Model.Nominal, 1, true)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sim.Gradient(f, dLdI); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestForwardSteadyStateAllocs enforces the scratch-arena claim: once the
// pools are warm, the serial per-kernel loop performs no allocation beyond
// the per-call outputs (mask spectrum, intensity, field header — a small
// constant independent of the kernel count).
func TestForwardSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool bypasses its cache at random under -race; alloc counts are unstable")
	}
	sim := NewSim(model(t))
	sim.Workers = 1
	rng := rand.New(rand.NewSource(21))
	mask := randMask(rng, 128)
	// Warm the plan cache and the scratch pools.
	for i := 0; i < 3; i++ {
		if _, err := sim.Forward(mask, sim.Model.Nominal, 1, false); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := sim.Forward(mask, sim.Model.Nominal, 1, false); err != nil {
			t.Fatal(err)
		}
	})
	// 5 output allocations (spec struct+data, intensity struct+data, field)
	// plus pool-refill noise when a GC empties the arenas mid-measurement.
	if allocs > 12 {
		t.Errorf("Forward allocates %.1f objects/run in steady state, want ≤ 12 (kernel loop must be allocation-free)", allocs)
	}
}

// TestGradientSteadyStateAllocs: same for the adjoint with cached
// amplitudes — only the returned gradient matrix may allocate.
func TestGradientSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool bypasses its cache at random under -race; alloc counts are unstable")
	}
	sim := NewSim(model(t))
	sim.Workers = 1
	rng := rand.New(rand.NewSource(22))
	mask := randMask(rng, 128)
	dLdI := grid.NewMat(128, 128)
	dLdI.Fill(0.25)
	f, err := sim.Forward(mask, sim.Model.Nominal, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := sim.Gradient(f, dLdI); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := sim.Gradient(f, dLdI); err != nil {
			t.Fatal(err)
		}
	})
	// Returned gradient (struct+data), the per-kernel patch slice, and
	// pool-refill noise.
	if allocs > 12 {
		t.Errorf("Gradient allocates %.1f objects/run in steady state, want ≤ 12", allocs)
	}
}

func BenchmarkResistSigmoid(b *testing.B) {
	_, mask := benchSetup(b, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ResistSigmoid(mask, DefaultThreshold, DefaultAlpha)
	}
}
