package litho

import (
	"math/rand"
	"testing"

	"repro/internal/grid"
)

func benchSetup(b *testing.B, n int) (*Sim, *grid.Mat) {
	b.Helper()
	sim := NewSim(model(b))
	rng := rand.New(rand.NewSource(7))
	mask := grid.NewMat(n, n)
	for i := range mask.Data {
		mask.Data[i] = rng.Float64()
	}
	// Warm the plan cache outside the timed region.
	if _, err := sim.Forward(mask, sim.Model.Nominal, 1, false); err != nil {
		b.Fatal(err)
	}
	return sim, mask
}

func BenchmarkForward128(b *testing.B) {
	sim, mask := benchSetup(b, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Forward(mask, sim.Model.Nominal, 1, false); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkForwardEq7Scale4(b *testing.B) {
	sim, mask := benchSetup(b, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.ForwardEq7(mask, 4, sim.Model.Nominal, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGradient128(b *testing.B) {
	sim, mask := benchSetup(b, 128)
	dLdI := grid.NewMat(128, 128)
	dLdI.Fill(0.5)
	f, err := sim.Forward(mask, sim.Model.Nominal, 1, true)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Gradient(f, dLdI); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkResistSigmoid(b *testing.B) {
	_, mask := benchSetup(b, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ResistSigmoid(mask, DefaultThreshold, DefaultAlpha)
	}
}
