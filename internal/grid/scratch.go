package grid

import "sync"

// Scratch arenas for the hot simulation loops: size-keyed free lists of
// matrix buffers backed by sync.Pool, so parallel per-kernel workers can
// grab private scratch without allocating once the pool is warm. Contents
// of a recycled buffer are undefined — callers that need zeroed memory must
// clear it (fft.ApplyKernel and friends overwrite their destination and do
// not care).
//
// The zero value of either pool is ready to use, and all methods are safe
// for concurrent use.

// CMatPool recycles complex scratch matrices by (w, h).
type CMatPool struct {
	pools sync.Map // uint64 key → *sync.Pool of *CMat
}

func sizeKey(w, h int) uint64 { return uint64(uint32(w))<<32 | uint64(uint32(h)) }

func (p *CMatPool) pool(w, h int) *sync.Pool {
	key := sizeKey(w, h)
	if v, ok := p.pools.Load(key); ok {
		return v.(*sync.Pool)
	}
	v, _ := p.pools.LoadOrStore(key, &sync.Pool{
		New: func() any { return NewCMat(w, h) },
	})
	return v.(*sync.Pool)
}

// Get returns a w×h complex matrix with undefined contents.
func (p *CMatPool) Get(w, h int) *CMat {
	return p.pool(w, h).Get().(*CMat)
}

// Put returns a matrix obtained from Get to the arena. The caller must not
// use m afterwards. Putting a matrix that did not come from Get is allowed
// (it joins the pool for its size); nil is ignored.
func (p *CMatPool) Put(m *CMat) {
	if m == nil {
		return
	}
	p.pool(m.W, m.H).Put(m)
}

// CMatSlicePool recycles the small []*CMat work lists the chunked
// per-kernel fan-outs build once per call (patch tables, amplitude
// chunks). It follows the *[]T header idiom of the FFT plan's batch
// buffers: Get hands back both the pooled header and a cleared length-n
// view through it, and the caller Puts the header when the view dies.
type CMatSlicePool struct {
	pool sync.Pool // *[]*CMat
}

// Get leases a length-n slice with nil entries plus the header to Put.
func (p *CMatSlicePool) Get(n int) (*[]*CMat, []*CMat) {
	hp, _ := p.pool.Get().(*[]*CMat)
	if hp == nil {
		hp = new([]*CMat)
	}
	if cap(*hp) < n {
		*hp = make([]*CMat, n)
	}
	s := (*hp)[:n]
	for i := range s {
		s[i] = nil
	}
	return hp, s
}

// Put returns a header obtained from Get; entries are dropped so the pool
// does not pin matrices. nil is ignored.
func (p *CMatSlicePool) Put(hp *[]*CMat) {
	if hp == nil {
		return
	}
	s := *hp
	for i := range s {
		s[i] = nil
	}
	p.pool.Put(hp)
}

// MatPool recycles real scratch matrices by (w, h).
type MatPool struct {
	pools sync.Map // uint64 key → *sync.Pool of *Mat
}

func (p *MatPool) pool(w, h int) *sync.Pool {
	key := sizeKey(w, h)
	if v, ok := p.pools.Load(key); ok {
		return v.(*sync.Pool)
	}
	v, _ := p.pools.LoadOrStore(key, &sync.Pool{
		New: func() any { return NewMat(w, h) },
	})
	return v.(*sync.Pool)
}

// Get returns a w×h real matrix with undefined contents.
func (p *MatPool) Get(w, h int) *Mat {
	return p.pool(w, h).Get().(*Mat)
}

// Put returns a matrix obtained from Get to the arena; nil is ignored.
func (p *MatPool) Put(m *Mat) {
	if m == nil {
		return
	}
	p.pool(m.W, m.H).Put(m)
}
