package grid

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Additional algebraic property tests for the resampling operators — these
// identities are what make the multi-level gradient chain exact.

// Pooling is linear: P(a·x + b·y) = a·P(x) + b·P(y).
func TestAvgPoolLinearityProperty(t *testing.T) {
	f := func(seed int64, a, b float64) bool {
		if math.IsNaN(a) || math.IsInf(a, 0) || math.IsNaN(b) || math.IsInf(b, 0) {
			return true
		}
		a = math.Mod(a, 8)
		b = math.Mod(b, 8)
		rng := rand.New(rand.NewSource(seed))
		x, y := randMat(rng, 8, 8), randMat(rng, 8, 8)
		comb := x.Clone()
		comb.Scale(a)
		comb.AddScaled(b, y)
		lhs := AvgPoolDown(comb, 4)
		px, py := AvgPoolDown(x, 4), AvgPoolDown(y, 4)
		px.Scale(a)
		px.AddScaled(b, py)
		return lhs.Equal(px, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Composition: pooling by s then by t equals pooling by s·t.
func TestAvgPoolCompositionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := randMat(rng, 16, 16)
		twice := AvgPoolDown(AvgPoolDown(x, 2), 4)
		once := AvgPoolDown(x, 8)
		return twice.Equal(once, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Upsampling composes the same way.
func TestUpsampleCompositionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := randMat(rng, 3, 5)
		twice := UpsampleNearest(UpsampleNearest(x, 2), 3)
		once := UpsampleNearest(x, 6)
		return twice.Equal(once, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// SmoothPool is a contraction in the max-norm for inputs in [0, 1]: output
// values stay in the input's range (averaging cannot extrapolate).
func TestSmoothPoolRangePreservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := NewMat(9, 9)
		for i := range x.Data {
			x.Data[i] = rng.Float64()
		}
		min, max := x.MinMax()
		s := SmoothPool(x, 3)
		smin, smax := s.MinMax()
		return smin >= min-1e-12 && smax <= max+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// SmoothPool preserves the total mass in the interior sense: for an image
// padded with enough zeros, the sum is preserved up to border effects;
// assert exact sum preservation for constant-padded doubly-smoothed deltas
// via the adjoint identity instead: ⟨S·x, 1⟩ = ⟨x, Sᵀ·1⟩.
func TestSmoothPoolMassViaAdjointProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := randMat(rng, 10, 7)
		ones := NewMat(10, 7)
		ones.Fill(1)
		lhs := SmoothPool(x, 3).Dot(ones)
		rhs := x.Dot(SmoothPoolAdjoint(ones, 3))
		return math.Abs(lhs-rhs) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// ParallelFor covers every index exactly once for arbitrary worker counts.
func TestParallelForCoverageProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(100)
		workers := rng.Intn(12) // includes 0 → GOMAXPROCS
		counts := make([]int32, n)
		ParallelFor(workers, n, func(i int) { counts[i]++ })
		for _, c := range counts {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
