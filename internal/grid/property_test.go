package grid

import (
	"fmt"
	"math"
	"math/rand"
	"sync/atomic"
	"testing"
	"testing/quick"
)

// Additional algebraic property tests for the resampling operators — these
// identities are what make the multi-level gradient chain exact.

// Pooling is linear: P(a·x + b·y) = a·P(x) + b·P(y).
func TestAvgPoolLinearityProperty(t *testing.T) {
	f := func(seed int64, a, b float64) bool {
		if math.IsNaN(a) || math.IsInf(a, 0) || math.IsNaN(b) || math.IsInf(b, 0) {
			return true
		}
		a = math.Mod(a, 8)
		b = math.Mod(b, 8)
		rng := rand.New(rand.NewSource(seed))
		x, y := randMat(rng, 8, 8), randMat(rng, 8, 8)
		comb := x.Clone()
		comb.Scale(a)
		comb.AddScaled(b, y)
		lhs := AvgPoolDown(comb, 4)
		px, py := AvgPoolDown(x, 4), AvgPoolDown(y, 4)
		px.Scale(a)
		px.AddScaled(b, py)
		return lhs.Equal(px, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Composition: pooling by s then by t equals pooling by s·t.
func TestAvgPoolCompositionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := randMat(rng, 16, 16)
		twice := AvgPoolDown(AvgPoolDown(x, 2), 4)
		once := AvgPoolDown(x, 8)
		return twice.Equal(once, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Upsampling composes the same way.
func TestUpsampleCompositionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := randMat(rng, 3, 5)
		twice := UpsampleNearest(UpsampleNearest(x, 2), 3)
		once := UpsampleNearest(x, 6)
		return twice.Equal(once, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// SmoothPool is a contraction in the max-norm for inputs in [0, 1]: output
// values stay in the input's range (averaging cannot extrapolate).
func TestSmoothPoolRangePreservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := NewMat(9, 9)
		for i := range x.Data {
			x.Data[i] = rng.Float64()
		}
		min, max := x.MinMax()
		s := SmoothPool(x, 3)
		smin, smax := s.MinMax()
		return smin >= min-1e-12 && smax <= max+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// SmoothPool preserves the total mass in the interior sense: for an image
// padded with enough zeros, the sum is preserved up to border effects;
// assert exact sum preservation for constant-padded doubly-smoothed deltas
// via the adjoint identity instead: ⟨S·x, 1⟩ = ⟨x, Sᵀ·1⟩.
func TestSmoothPoolMassViaAdjointProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := randMat(rng, 10, 7)
		ones := NewMat(10, 7)
		ones.Fill(1)
		lhs := SmoothPool(x, 3).Dot(ones)
		rhs := x.Dot(SmoothPoolAdjoint(ones, 3))
		return math.Abs(lhs-rhs) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// ParallelFor edge cases: n = 0 (and negative n) never invoke the body.
func TestParallelForEmptyRange(t *testing.T) {
	for _, n := range []int{0, -1, -100} {
		for _, workers := range []int{0, 1, 4} {
			called := false
			ParallelFor(workers, n, func(int) { called = true })
			if called {
				t.Errorf("body invoked for n=%d workers=%d", n, workers)
			}
		}
	}
}

// More workers than indices must still cover each index exactly once.
func TestParallelForMoreWorkersThanWork(t *testing.T) {
	const n = 3
	counts := make([]int32, n)
	ParallelFor(64, n, func(i int) { atomic.AddInt32(&counts[i], 1) })
	for i, c := range counts {
		if c != 1 {
			t.Errorf("index %d visited %d times", i, c)
		}
	}
}

// A panic in the body surfaces as a panic on the calling goroutine with the
// original panic value, for both the serial and the parallel path, and the
// workers that did not panic still complete their chunks.
func TestParallelForPanicPropagation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		sentinel := fmt.Sprintf("boom-%d", workers)
		var visited int32
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: panic swallowed", workers)
				}
				if r != sentinel {
					t.Fatalf("workers=%d: recovered %v, want %v", workers, r, sentinel)
				}
			}()
			ParallelFor(workers, 16, func(i int) {
				if i == 5 {
					panic(sentinel)
				}
				atomic.AddInt32(&visited, 1)
			})
		}()
		if workers > 1 && atomic.LoadInt32(&visited) < 8 {
			// 16 indices in 4 chunks of 4; only the panicking chunk may be
			// cut short, so at least the other 12 minus scheduling slack ran.
			t.Errorf("workers=%d: only %d indices ran before re-panic", workers, visited)
		}
	}
}

// The scratch arenas hand out matrices of the requested size and recycle
// buffers across Get/Put cycles without corrupting shape bookkeeping.
func TestScratchPoolsShapeAndReuse(t *testing.T) {
	var cp CMatPool
	var mp MatPool
	c := cp.Get(8, 4)
	if c.W != 8 || c.H != 4 || len(c.Data) != 32 {
		t.Fatalf("CMatPool.Get(8,4) returned %dx%d len %d", c.W, c.H, len(c.Data))
	}
	c.Data[0] = 3 + 4i
	cp.Put(c)
	c2 := cp.Get(8, 4)
	if c2.W != 8 || c2.H != 4 {
		t.Fatalf("recycled CMat has shape %dx%d", c2.W, c2.H)
	}
	m := mp.Get(5, 7)
	if m.W != 5 || m.H != 7 {
		t.Fatalf("MatPool.Get(5,7) returned %dx%d", m.W, m.H)
	}
	mp.Put(m)
	if g := mp.Get(3, 3); g.W != 3 || g.H != 3 {
		t.Fatalf("distinct size returned %dx%d, want 3x3", g.W, g.H)
	}
	cp.Put(nil) // nil is ignored
	mp.Put(nil)
}

// AbsSqScaledInto followed by Add must reproduce AddAbsSqScaled bit-for-bit
// — this identity is what makes the parallel SOCS reduction exact.
func TestAbsSqScaledIntoMatchesFusedAccumulation(t *testing.T) {
	f := func(seed int64, a float64) bool {
		if math.IsNaN(a) || math.IsInf(a, 0) {
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		c := NewCMat(6, 6)
		for i := range c.Data {
			c.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		base := randMat(rng, 6, 6)
		fused := base.Clone()
		c.AddAbsSqScaled(fused, a)
		tmp := NewMat(6, 6)
		c.AbsSqScaledInto(tmp, a)
		deferred := base.Clone()
		deferred.Add(tmp)
		return fused.Equal(deferred, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// ParallelFor covers every index exactly once for arbitrary worker counts.
func TestParallelForCoverageProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(100)
		workers := rng.Intn(12) // includes 0 → GOMAXPROCS
		counts := make([]int32, n)
		ParallelFor(workers, n, func(i int) { counts[i]++ })
		for _, c := range counts {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
