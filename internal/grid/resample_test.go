package grid

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAvgPoolDownValues(t *testing.T) {
	m := FromSlice(4, 2, []float64{
		1, 3, 5, 7,
		5, 7, 9, 11,
	})
	p := AvgPoolDown(m, 2)
	if p.W != 2 || p.H != 1 {
		t.Fatalf("pooled size %dx%d, want 2x1", p.W, p.H)
	}
	if p.At(0, 0) != 4 || p.At(1, 0) != 8 {
		t.Fatalf("pooled values %v %v, want 4 8", p.At(0, 0), p.At(1, 0))
	}
}

func TestAvgPoolDownScaleOneIsCopy(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := randMat(rng, 6, 6)
	p := AvgPoolDown(m, 1)
	if !p.Equal(m, 0) {
		t.Fatal("s=1 pool is not identity")
	}
	p.Set(0, 0, 99)
	if m.At(0, 0) == 99 {
		t.Fatal("s=1 pool aliases input")
	}
}

func TestAvgPoolDownIndivisiblePanics(t *testing.T) {
	m := NewMat(5, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("indivisible AvgPoolDown did not panic")
		}
	}()
	AvgPoolDown(m, 2)
}

func TestAvgPoolPreservesMean(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := randMat(rng, 16, 16)
	for _, s := range []int{2, 4, 8} {
		p := AvgPoolDown(m, s)
		if math.Abs(p.Sum()*float64(s*s)-m.Sum()) > 1e-9 {
			t.Errorf("s=%d: pooled sum*s² = %v, want %v", s, p.Sum()*float64(s*s), m.Sum())
		}
	}
}

func TestUpsampleNearestValues(t *testing.T) {
	m := FromSlice(2, 1, []float64{1, 2})
	u := UpsampleNearest(m, 2)
	want := []float64{1, 1, 2, 2, 1, 1, 2, 2}
	for i, v := range want {
		if u.Data[i] != v {
			t.Fatalf("upsample Data[%d] = %v, want %v", i, u.Data[i], v)
		}
	}
}

func TestUpsampleThenPoolIsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := randMat(rng, 8, 8)
	for _, s := range []int{2, 4} {
		r := AvgPoolDown(UpsampleNearest(m, s), s)
		if !r.Equal(m, 1e-12) {
			t.Errorf("s=%d: AvgPoolDown∘UpsampleNearest is not identity", s)
		}
	}
}

// adjointIdentity checks ⟨A x, y⟩ = ⟨x, Aᵀ y⟩ for an operator pair.
func adjointIdentity(t *testing.T, name string, x, y *Mat, fwd func(*Mat) *Mat, adj func(*Mat) *Mat) {
	t.Helper()
	ax := fwd(x)
	if ax.W != y.W || ax.H != y.H {
		t.Fatalf("%s: forward output %dx%d does not match y %dx%d", name, ax.W, ax.H, y.W, y.H)
	}
	aty := adj(y)
	lhs := ax.Dot(y)
	rhs := x.Dot(aty)
	if math.Abs(lhs-rhs) > 1e-9*(1+math.Abs(lhs)) {
		t.Errorf("%s: ⟨Ax,y⟩ = %v but ⟨x,Aᵀy⟩ = %v", name, lhs, rhs)
	}
}

func TestAvgPoolAdjointProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const s = 4
		x := randMat(rng, 16, 12)
		y := randMat(rng, 4, 3)
		ax := AvgPoolDown(x, s)
		aty := AvgPoolDownAdjoint(y, s)
		return math.Abs(ax.Dot(y)-x.Dot(aty)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestUpsampleAdjointProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const s = 3
		x := randMat(rng, 5, 4)
		y := randMat(rng, 15, 12)
		ax := UpsampleNearest(x, s)
		aty := UpsampleNearestAdjoint(y, s)
		return math.Abs(ax.Dot(y)-x.Dot(aty)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSmoothPoolConstantFixedPoint(t *testing.T) {
	m := NewMat(9, 7)
	m.Fill(0.37)
	s := SmoothPool(m, 3)
	for i, v := range s.Data {
		if math.Abs(v-0.37) > 1e-12 {
			t.Fatalf("SmoothPool not constant-preserving at %d: %v", i, v)
		}
	}
}

func TestSmoothPoolInteriorValue(t *testing.T) {
	// A single impulse in the interior spreads 1/9 to each 3x3 neighbour.
	m := NewMat(7, 7)
	m.Set(3, 3, 9)
	s := SmoothPool(m, 3)
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			if got := s.At(3+dx, 3+dy); math.Abs(got-1) > 1e-12 {
				t.Fatalf("SmoothPool at (%d,%d) = %v, want 1", 3+dx, 3+dy, got)
			}
		}
	}
	if got := s.At(1, 3); got != 0 {
		t.Fatalf("SmoothPool leaked outside window: %v", got)
	}
}

func TestSmoothPoolBorderNormalisation(t *testing.T) {
	// Corner pixel of an all-ones matrix must stay exactly 1 because the
	// window population (4 at a corner) is used as the normaliser.
	m := NewMat(5, 5)
	m.Fill(1)
	s := SmoothPool(m, 3)
	if math.Abs(s.At(0, 0)-1) > 1e-12 {
		t.Fatalf("corner = %v, want 1", s.At(0, 0))
	}
}

func TestSmoothPoolMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := randMat(rng, 11, 9)
	for _, n := range []int{3, 5} {
		got := SmoothPool(m, n)
		h := n / 2
		for y := 0; y < m.H; y++ {
			for x := 0; x < m.W; x++ {
				var sum float64
				c := 0
				for dy := -h; dy <= h; dy++ {
					for dx := -h; dx <= h; dx++ {
						xx, yy := x+dx, y+dy
						if xx >= 0 && xx < m.W && yy >= 0 && yy < m.H {
							sum += m.At(xx, yy)
							c++
						}
					}
				}
				want := sum / float64(c)
				if math.Abs(got.At(x, y)-want) > 1e-9 {
					t.Fatalf("n=%d SmoothPool(%d,%d) = %v, want %v", n, x, y, got.At(x, y), want)
				}
			}
		}
	}
}

func TestSmoothPoolAdjointProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := randMat(rng, 10, 8)
		y := randMat(rng, 10, 8)
		ax := SmoothPool(x, 3)
		aty := SmoothPoolAdjoint(y, 3)
		return math.Abs(ax.Dot(y)-x.Dot(aty)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSmoothPoolEvenWindowPanics(t *testing.T) {
	m := NewMat(4, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("even smoothing window did not panic")
		}
	}()
	SmoothPool(m, 4)
}

func TestAdjointShapes(t *testing.T) {
	g := NewMat(3, 2)
	up := AvgPoolDownAdjoint(g, 4)
	if up.W != 12 || up.H != 8 {
		t.Fatalf("AvgPoolDownAdjoint size %dx%d, want 12x8", up.W, up.H)
	}
	fine := NewMat(12, 8)
	down := UpsampleNearestAdjoint(fine, 4)
	if down.W != 3 || down.H != 2 {
		t.Fatalf("UpsampleNearestAdjoint size %dx%d, want 3x2", down.W, down.H)
	}
}

func TestAdjointIdentityHelperCatchesOperators(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x := randMat(rng, 8, 8)
	y := randMat(rng, 2, 2)
	adjointIdentity(t, "avgpool4", x, y,
		func(m *Mat) *Mat { return AvgPoolDown(m, 4) },
		func(m *Mat) *Mat { return AvgPoolDownAdjoint(m, 4) })
	y2 := randMat(rng, 8, 8)
	adjointIdentity(t, "smooth5", x, y2,
		func(m *Mat) *Mat { return SmoothPool(m, 5) },
		func(m *Mat) *Mat { return SmoothPoolAdjoint(m, 5) })
}
