// Package grid provides dense 2-D real and complex matrices together with
// the resampling operators used throughout the multi-level ILT flow:
// average pooling (both the stride-s downsampling flavour and the stride-1
// smoothing flavour of Algorithm 1), nearest-neighbour upsampling, and the
// exact adjoints of all three, which the optimizer needs to backpropagate
// the loss through resolution changes.
//
// Matrices are stored row-major: element (x, y) lives at Data[y*W+x].
package grid

import (
	"fmt"
	"math"
)

// Mat is a dense row-major matrix of float64 values.
type Mat struct {
	W, H int
	Data []float64
}

// NewMat returns a zero-filled w×h matrix.
// It panics if either dimension is not positive.
func NewMat(w, h int) *Mat {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("grid: invalid matrix size %dx%d", w, h))
	}
	return &Mat{W: w, H: h, Data: make([]float64, w*h)}
}

// FromSlice wraps data (row-major, length w*h) in a Mat without copying.
func FromSlice(w, h int, data []float64) *Mat {
	if len(data) != w*h {
		panic(fmt.Sprintf("grid: FromSlice length %d != %d*%d", len(data), w, h))
	}
	return &Mat{W: w, H: h, Data: data}
}

// At returns the element at (x, y).
func (m *Mat) At(x, y int) float64 { return m.Data[y*m.W+x] }

// Set stores v at (x, y).
func (m *Mat) Set(x, y int, v float64) { m.Data[y*m.W+x] = v }

// Clone returns a deep copy of m.
func (m *Mat) Clone() *Mat {
	c := NewMat(m.W, m.H)
	copy(c.Data, m.Data)
	return c
}

// CopyFrom copies src into m. The shapes must match.
func (m *Mat) CopyFrom(src *Mat) {
	m.mustMatch(src)
	copy(m.Data, src.Data)
}

// Fill sets every element to v.
func (m *Mat) Fill(v float64) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// Zero sets every element to 0.
func (m *Mat) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

func (m *Mat) mustMatch(o *Mat) {
	if m.W != o.W || m.H != o.H {
		panic(fmt.Sprintf("grid: shape mismatch %dx%d vs %dx%d", m.W, m.H, o.W, o.H))
	}
}

// Add sets m += o element-wise.
func (m *Mat) Add(o *Mat) {
	m.mustMatch(o)
	for i, v := range o.Data {
		m.Data[i] += v
	}
}

// Sub sets m -= o element-wise.
func (m *Mat) Sub(o *Mat) {
	m.mustMatch(o)
	for i, v := range o.Data {
		m.Data[i] -= v
	}
}

// MulElem sets m *= o element-wise.
func (m *Mat) MulElem(o *Mat) {
	m.mustMatch(o)
	for i, v := range o.Data {
		m.Data[i] *= v
	}
}

// Scale multiplies every element by a.
func (m *Mat) Scale(a float64) {
	for i := range m.Data {
		m.Data[i] *= a
	}
}

// AddScaled sets m += a*o element-wise.
func (m *Mat) AddScaled(a float64, o *Mat) {
	m.mustMatch(o)
	for i, v := range o.Data {
		m.Data[i] += a * v
	}
}

// Dot returns the inner product Σ m[i]*o[i].
func (m *Mat) Dot(o *Mat) float64 {
	m.mustMatch(o)
	var s float64
	for i, v := range o.Data {
		s += m.Data[i] * v
	}
	return s
}

// Sum returns the sum of all elements.
func (m *Mat) Sum() float64 {
	var s float64
	for _, v := range m.Data {
		s += v
	}
	return s
}

// SumSq returns Σ m[i]².
func (m *Mat) SumSq() float64 {
	var s float64
	for _, v := range m.Data {
		s += v * v
	}
	return s
}

// MaxAbs returns the largest absolute element value.
func (m *Mat) MaxAbs() float64 {
	var s float64
	for _, v := range m.Data {
		if a := math.Abs(v); a > s {
			s = a
		}
	}
	return s
}

// MinMax returns the smallest and largest element values.
func (m *Mat) MinMax() (min, max float64) {
	min, max = math.Inf(1), math.Inf(-1)
	for _, v := range m.Data {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return min, max
}

// Apply replaces every element v with f(v).
func (m *Mat) Apply(f func(float64) float64) {
	for i, v := range m.Data {
		m.Data[i] = f(v)
	}
}

// Threshold returns a new matrix with 1 where m ≥ t and 0 elsewhere.
func (m *Mat) Threshold(t float64) *Mat {
	out := NewMat(m.W, m.H)
	for i, v := range m.Data {
		if v >= t {
			out.Data[i] = 1
		}
	}
	return out
}

// CountGE returns the number of elements ≥ t.
func (m *Mat) CountGE(t float64) int {
	n := 0
	for _, v := range m.Data {
		if v >= t {
			n++
		}
	}
	return n
}

// Equal reports whether m and o have identical shape and elements within tol.
func (m *Mat) Equal(o *Mat, tol float64) bool {
	if m.W != o.W || m.H != o.H {
		return false
	}
	for i, v := range o.Data {
		if math.Abs(m.Data[i]-v) > tol {
			return false
		}
	}
	return true
}

// SubRect copies the rectangle with top-left (x0, y0) and size w×h into a
// new matrix. The rectangle must lie inside m.
func (m *Mat) SubRect(x0, y0, w, h int) *Mat {
	if x0 < 0 || y0 < 0 || x0+w > m.W || y0+h > m.H {
		panic(fmt.Sprintf("grid: SubRect (%d,%d %dx%d) outside %dx%d", x0, y0, w, h, m.W, m.H))
	}
	out := NewMat(w, h)
	for y := 0; y < h; y++ {
		copy(out.Data[y*w:(y+1)*w], m.Data[(y0+y)*m.W+x0:(y0+y)*m.W+x0+w])
	}
	return out
}

// PasteRect copies src into m with src's top-left at (x0, y0).
// The pasted region must lie inside m.
func (m *Mat) PasteRect(src *Mat, x0, y0 int) {
	if x0 < 0 || y0 < 0 || x0+src.W > m.W || y0+src.H > m.H {
		panic(fmt.Sprintf("grid: PasteRect (%d,%d %dx%d) outside %dx%d", x0, y0, src.W, src.H, m.W, m.H))
	}
	for y := 0; y < src.H; y++ {
		copy(m.Data[(y0+y)*m.W+x0:(y0+y)*m.W+x0+src.W], src.Data[y*src.W:(y+1)*src.W])
	}
}
