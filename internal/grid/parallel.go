package grid

import (
	"runtime"
	"sync"
)

// ParallelFor runs body(i) for i in [0, n) across up to workers goroutines.
// workers ≤ 0 selects runtime.GOMAXPROCS(0). Iterations are split into
// contiguous chunks, so body should be roughly uniform in cost per index.
func ParallelFor(workers, n int, body func(i int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			body(i)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= n {
			break
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				body(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}
