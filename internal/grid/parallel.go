package grid

import (
	"runtime"
	"sync"
)

// ParallelFor runs body(i) for i in [0, n) across up to workers goroutines.
// workers ≤ 0 selects runtime.GOMAXPROCS(0); n ≤ 0 is a no-op. Iterations
// are split into contiguous chunks, so body should be roughly uniform in
// cost per index.
//
// Panic semantics: a panic inside body does not crash the process from a
// worker goroutine. Every worker first finishes its own chunk (a panicking
// index abandons only the rest of that worker's chunk); once all workers
// have returned, the first recovered panic value (in worker order) is
// re-raised on the calling goroutine, so a ParallelFor call panics exactly
// like the equivalent serial loop would. With workers == 1 the body runs on
// the calling goroutine and panics propagate natively.
func ParallelFor(workers, n int, body func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			body(i)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	panics := make([]any, workers) // one slot per worker: no shared writes
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= n {
			break
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panics[w] = r
				}
			}()
			for i := lo; i < hi; i++ {
				body(i)
			}
		}(w, lo, hi)
	}
	wg.Wait()
	for _, r := range panics {
		if r != nil {
			panic(r)
		}
	}
}
