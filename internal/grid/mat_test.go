package grid

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randMat(rng *rand.Rand, w, h int) *Mat {
	m := NewMat(w, h)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func TestNewMatPanicsOnBadSize(t *testing.T) {
	for _, dims := range [][2]int{{0, 4}, {4, 0}, {-1, 3}, {3, -2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewMat(%d,%d) did not panic", dims[0], dims[1])
				}
			}()
			NewMat(dims[0], dims[1])
		}()
	}
}

func TestFromSliceLengthCheck(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FromSlice with wrong length did not panic")
		}
	}()
	FromSlice(3, 3, make([]float64, 8))
}

func TestAtSetRoundTrip(t *testing.T) {
	m := NewMat(5, 3)
	m.Set(4, 2, 7.5)
	if got := m.At(4, 2); got != 7.5 {
		t.Fatalf("At(4,2) = %v, want 7.5", got)
	}
	if got := m.Data[2*5+4]; got != 7.5 {
		t.Fatalf("row-major layout broken: Data[14] = %v", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := NewMat(2, 2)
	m.Fill(1)
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone shares backing storage")
	}
}

func TestArithmetic(t *testing.T) {
	a := FromSlice(2, 2, []float64{1, 2, 3, 4})
	b := FromSlice(2, 2, []float64{10, 20, 30, 40})
	a.Add(b)
	want := []float64{11, 22, 33, 44}
	for i, v := range want {
		if a.Data[i] != v {
			t.Fatalf("Add: Data[%d] = %v, want %v", i, a.Data[i], v)
		}
	}
	a.Sub(b)
	for i, v := range []float64{1, 2, 3, 4} {
		if a.Data[i] != v {
			t.Fatalf("Sub: Data[%d] = %v, want %v", i, a.Data[i], v)
		}
	}
	a.MulElem(b)
	for i, v := range []float64{10, 40, 90, 160} {
		if a.Data[i] != v {
			t.Fatalf("MulElem: Data[%d] = %v, want %v", i, a.Data[i], v)
		}
	}
	a.Scale(0.5)
	if a.Data[3] != 80 {
		t.Fatalf("Scale: got %v, want 80", a.Data[3])
	}
	a.AddScaled(2, b)
	if a.Data[0] != 5+20 {
		t.Fatalf("AddScaled: got %v, want 25", a.Data[0])
	}
}

func TestShapeMismatchPanics(t *testing.T) {
	a := NewMat(2, 2)
	b := NewMat(3, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("Add with mismatched shapes did not panic")
		}
	}()
	a.Add(b)
}

func TestReductions(t *testing.T) {
	m := FromSlice(2, 2, []float64{-3, 1, 2, 4})
	if got := m.Sum(); got != 4 {
		t.Errorf("Sum = %v, want 4", got)
	}
	if got := m.SumSq(); got != 9+1+4+16 {
		t.Errorf("SumSq = %v, want 30", got)
	}
	if got := m.MaxAbs(); got != 4 {
		t.Errorf("MaxAbs = %v, want 4", got)
	}
	min, max := m.MinMax()
	if min != -3 || max != 4 {
		t.Errorf("MinMax = %v,%v, want -3,4", min, max)
	}
	o := FromSlice(2, 2, []float64{1, 1, 1, 1})
	if got := m.Dot(o); got != 4 {
		t.Errorf("Dot = %v, want 4", got)
	}
}

func TestThresholdAndCount(t *testing.T) {
	m := FromSlice(3, 1, []float64{0.2, 0.5, 0.9})
	b := m.Threshold(0.5)
	want := []float64{0, 1, 1}
	for i, v := range want {
		if b.Data[i] != v {
			t.Fatalf("Threshold: Data[%d] = %v, want %v", i, b.Data[i], v)
		}
	}
	if got := m.CountGE(0.5); got != 2 {
		t.Fatalf("CountGE = %d, want 2", got)
	}
}

func TestApply(t *testing.T) {
	m := FromSlice(2, 1, []float64{4, 9})
	m.Apply(math.Sqrt)
	if m.Data[0] != 2 || m.Data[1] != 3 {
		t.Fatalf("Apply(sqrt) = %v", m.Data)
	}
}

func TestSubRectPasteRectRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := randMat(rng, 8, 6)
	r := m.SubRect(2, 1, 4, 3)
	if r.W != 4 || r.H != 3 {
		t.Fatalf("SubRect size %dx%d", r.W, r.H)
	}
	for y := 0; y < 3; y++ {
		for x := 0; x < 4; x++ {
			if r.At(x, y) != m.At(x+2, y+1) {
				t.Fatalf("SubRect content mismatch at (%d,%d)", x, y)
			}
		}
	}
	dst := NewMat(8, 6)
	dst.PasteRect(r, 2, 1)
	for y := 0; y < 3; y++ {
		for x := 0; x < 4; x++ {
			if dst.At(x+2, y+1) != r.At(x, y) {
				t.Fatalf("PasteRect content mismatch at (%d,%d)", x, y)
			}
		}
	}
}

func TestSubRectOutOfBoundsPanics(t *testing.T) {
	m := NewMat(4, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("SubRect out of bounds did not panic")
		}
	}()
	m.SubRect(2, 2, 3, 3)
}

func TestEqualTolerance(t *testing.T) {
	a := FromSlice(2, 1, []float64{1, 2})
	b := FromSlice(2, 1, []float64{1.0005, 2})
	if !a.Equal(b, 1e-3) {
		t.Error("Equal within tolerance reported false")
	}
	if a.Equal(b, 1e-6) {
		t.Error("Equal outside tolerance reported true")
	}
	c := NewMat(1, 2)
	if a.Equal(c, 1) {
		t.Error("Equal with different shapes reported true")
	}
}

// Property: Dot is symmetric and bilinear in the first argument.
func TestDotSymmetryProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randMat(rng, 7, 5), randMat(rng, 7, 5)
		return math.Abs(a.Dot(b)-b.Dot(a)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestCMatBasics(t *testing.T) {
	m := NewCMat(3, 2)
	m.Set(2, 1, complex(1, -2))
	if m.At(2, 1) != complex(1, -2) {
		t.Fatal("CMat At/Set broken")
	}
	c := m.Clone()
	c.Set(0, 0, 5)
	if m.At(0, 0) != 0 {
		t.Fatal("CMat Clone shares storage")
	}
	m.Conj()
	if m.At(2, 1) != complex(1, 2) {
		t.Fatal("Conj broken")
	}
	r := m.Real()
	if r.At(2, 1) != 1 {
		t.Fatal("Real broken")
	}
	sq := m.AbsSq()
	if sq.At(2, 1) != 5 {
		t.Fatalf("AbsSq = %v, want 5", sq.At(2, 1))
	}
	acc := NewMat(3, 2)
	m.AddAbsSqScaled(acc, 2)
	if acc.At(2, 1) != 10 {
		t.Fatalf("AddAbsSqScaled = %v, want 10", acc.At(2, 1))
	}
}

func TestComplexFromRealSetReal(t *testing.T) {
	r := FromSlice(2, 1, []float64{3, -1})
	c := ComplexFromReal(r)
	if c.At(0, 0) != 3 || c.At(1, 0) != -1 {
		t.Fatal("ComplexFromReal broken")
	}
	c.Set(0, 0, complex(0, 9))
	c.SetReal(r)
	if c.At(0, 0) != 3 {
		t.Fatal("SetReal did not clear imaginary part")
	}
}

func TestCMatMulElemScale(t *testing.T) {
	a := NewCMat(2, 1)
	a.Set(0, 0, complex(1, 1))
	a.Set(1, 0, complex(2, 0))
	b := NewCMat(2, 1)
	b.Set(0, 0, complex(0, 1))
	b.Set(1, 0, complex(3, 0))
	a.MulElem(b)
	if a.At(0, 0) != complex(-1, 1) || a.At(1, 0) != complex(6, 0) {
		t.Fatalf("MulElem = %v %v", a.At(0, 0), a.At(1, 0))
	}
	a.Scale(complex(2, 0))
	if a.At(1, 0) != complex(12, 0) {
		t.Fatal("Scale broken")
	}
}

func TestMaxAbsDiff(t *testing.T) {
	a := NewCMat(2, 1)
	b := NewCMat(2, 1)
	b.Set(1, 0, complex(3, 4))
	if got := a.MaxAbsDiff(b); math.Abs(got-5) > 1e-12 {
		t.Fatalf("MaxAbsDiff = %v, want 5", got)
	}
}
