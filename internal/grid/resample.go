package grid

import "fmt"

// AvgPoolDown performs the downsampling average pool of Algorithm 1
// (kernel_size = s, stride = s): each output pixel is the mean of an s×s
// input block. The input dimensions must be divisible by s.
func AvgPoolDown(m *Mat, s int) *Mat {
	if s <= 0 {
		panic(fmt.Sprintf("grid: AvgPoolDown scale %d", s))
	}
	if s == 1 {
		return m.Clone()
	}
	if m.W%s != 0 || m.H%s != 0 {
		panic(fmt.Sprintf("grid: AvgPoolDown %dx%d not divisible by %d", m.W, m.H, s))
	}
	w, h := m.W/s, m.H/s
	out := NewMat(w, h)
	inv := 1 / float64(s*s)
	for oy := 0; oy < h; oy++ {
		for ox := 0; ox < w; ox++ {
			var sum float64
			for dy := 0; dy < s; dy++ {
				row := (oy*s + dy) * m.W
				for dx := 0; dx < s; dx++ {
					sum += m.Data[row+ox*s+dx]
				}
			}
			out.Data[oy*w+ox] = sum * inv
		}
	}
	return out
}

// AvgPoolDownAdjoint is the exact adjoint of AvgPoolDown: it spreads each
// gradient value uniformly (scaled by 1/s²) over the s×s block it was pooled
// from. g has the pooled size; the result has size (g.W*s)×(g.H*s).
func AvgPoolDownAdjoint(g *Mat, s int) *Mat {
	if s <= 0 {
		panic(fmt.Sprintf("grid: AvgPoolDownAdjoint scale %d", s))
	}
	if s == 1 {
		return g.Clone()
	}
	out := NewMat(g.W*s, g.H*s)
	inv := 1 / float64(s*s)
	for oy := 0; oy < g.H; oy++ {
		for ox := 0; ox < g.W; ox++ {
			v := g.Data[oy*g.W+ox] * inv
			for dy := 0; dy < s; dy++ {
				row := (oy*s + dy) * out.W
				for dx := 0; dx < s; dx++ {
					out.Data[row+ox*s+dx] = v
				}
			}
		}
	}
	return out
}

// UpsampleNearest replicates every pixel into an s×s block
// (Algorithm 1 line 7).
func UpsampleNearest(m *Mat, s int) *Mat {
	if s <= 0 {
		panic(fmt.Sprintf("grid: UpsampleNearest scale %d", s))
	}
	if s == 1 {
		return m.Clone()
	}
	out := NewMat(m.W*s, m.H*s)
	for y := 0; y < m.H; y++ {
		// Expand one source row into the first destination row of the block,
		// then copy that row s-1 more times.
		dst := out.Data[(y*s)*out.W : (y*s)*out.W+out.W]
		src := m.Data[y*m.W : (y+1)*m.W]
		for x, v := range src {
			base := x * s
			for dx := 0; dx < s; dx++ {
				dst[base+dx] = v
			}
		}
		for dy := 1; dy < s; dy++ {
			copy(out.Data[(y*s+dy)*out.W:(y*s+dy)*out.W+out.W], dst)
		}
	}
	return out
}

// UpsampleNearestAdjoint is the exact adjoint of UpsampleNearest: each
// coarse-grid gradient is the sum over its s×s fine-grid block. g must have
// dimensions divisible by s.
func UpsampleNearestAdjoint(g *Mat, s int) *Mat {
	if s <= 0 {
		panic(fmt.Sprintf("grid: UpsampleNearestAdjoint scale %d", s))
	}
	if s == 1 {
		return g.Clone()
	}
	if g.W%s != 0 || g.H%s != 0 {
		panic(fmt.Sprintf("grid: UpsampleNearestAdjoint %dx%d not divisible by %d", g.W, g.H, s))
	}
	w, h := g.W/s, g.H/s
	out := NewMat(w, h)
	for oy := 0; oy < h; oy++ {
		for ox := 0; ox < w; ox++ {
			var sum float64
			for dy := 0; dy < s; dy++ {
				row := (oy*s + dy) * g.W
				for dx := 0; dx < s; dx++ {
					sum += g.Data[row+ox*s+dx]
				}
			}
			out.Data[oy*w+ox] = sum
		}
	}
	return out
}

// SmoothPool applies the shape-smoothing average pool of Section III-D:
// an n×n window with stride 1 and same-size output. Border pixels average
// only the neighbours that exist (the normalisation uses the true window
// population), so a constant matrix is a fixed point. n must be odd.
func SmoothPool(m *Mat, n int) *Mat {
	if n <= 0 || n%2 == 0 {
		panic(fmt.Sprintf("grid: SmoothPool window %d must be odd and positive", n))
	}
	if n == 1 {
		return m.Clone()
	}
	h := n / 2
	// Separable implementation: horizontal pass with running sums, then
	// vertical pass, tracking counts for border normalisation.
	tmp := NewMat(m.W, m.H)
	cnt := NewMat(m.W, m.H)
	for y := 0; y < m.H; y++ {
		row := m.Data[y*m.W : (y+1)*m.W]
		trow := tmp.Data[y*m.W : (y+1)*m.W]
		crow := cnt.Data[y*m.W : (y+1)*m.W]
		var sum float64
		c := 0
		for x := 0; x <= h && x < m.W; x++ {
			sum += row[x]
			c++
		}
		trow[0], crow[0] = sum, float64(c)
		for x := 1; x < m.W; x++ {
			if x+h < m.W {
				sum += row[x+h]
				c++
			}
			if x-h-1 >= 0 {
				sum -= row[x-h-1]
				c--
			}
			trow[x], crow[x] = sum, float64(c)
		}
	}
	out := NewMat(m.W, m.H)
	colSum := make([]float64, m.W)
	colCnt := make([]float64, m.W)
	for y := 0; y <= h && y < m.H; y++ {
		for x := 0; x < m.W; x++ {
			colSum[x] += tmp.Data[y*m.W+x]
			colCnt[x] += cnt.Data[y*m.W+x]
		}
	}
	for x := 0; x < m.W; x++ {
		out.Data[x] = colSum[x] / colCnt[x]
	}
	for y := 1; y < m.H; y++ {
		if y+h < m.H {
			for x := 0; x < m.W; x++ {
				colSum[x] += tmp.Data[(y+h)*m.W+x]
				colCnt[x] += cnt.Data[(y+h)*m.W+x]
			}
		}
		if y-h-1 >= 0 {
			for x := 0; x < m.W; x++ {
				colSum[x] -= tmp.Data[(y-h-1)*m.W+x]
				colCnt[x] -= cnt.Data[(y-h-1)*m.W+x]
			}
		}
		for x := 0; x < m.W; x++ {
			out.Data[y*m.W+x] = colSum[x] / colCnt[x]
		}
	}
	return out
}

// SmoothPoolAdjoint is the exact adjoint of SmoothPool. Because the window
// is symmetric but the border normalisation varies per output pixel, the
// adjoint first divides each gradient by its window population and then
// scatters it, which is equivalent to gathering the normalised values.
func SmoothPoolAdjoint(g *Mat, n int) *Mat {
	if n <= 0 || n%2 == 0 {
		panic(fmt.Sprintf("grid: SmoothPoolAdjoint window %d must be odd and positive", n))
	}
	if n == 1 {
		return g.Clone()
	}
	h := n / 2
	// Normalise by the window population of each *output* pixel...
	norm := NewMat(g.W, g.H)
	for y := 0; y < g.H; y++ {
		hy := minInt(y+h, g.H-1) - maxInt(y-h, 0) + 1
		for x := 0; x < g.W; x++ {
			hx := minInt(x+h, g.W-1) - maxInt(x-h, 0) + 1
			norm.Data[y*g.W+x] = g.Data[y*g.W+x] / float64(hy*hx)
		}
	}
	// ...then the scatter of a symmetric window equals a plain box gather.
	return boxSum(norm, h)
}

// boxSum computes out(p) = Σ over the (2h+1)×(2h+1) window of m clipped to
// the matrix bounds, via a summed-area table.
func boxSum(m *Mat, h int) *Mat {
	w, ht := m.W, m.H
	// sat has an extra zero row/col: sat[y][x] = Σ m[0..y-1][0..x-1].
	sat := make([]float64, (w+1)*(ht+1))
	for y := 0; y < ht; y++ {
		var rowAcc float64
		for x := 0; x < w; x++ {
			rowAcc += m.Data[y*w+x]
			sat[(y+1)*(w+1)+x+1] = sat[y*(w+1)+x+1] + rowAcc
		}
	}
	out := NewMat(w, ht)
	for y := 0; y < ht; y++ {
		y0, y1 := maxInt(y-h, 0), minInt(y+h, ht-1)+1
		for x := 0; x < w; x++ {
			x0, x1 := maxInt(x-h, 0), minInt(x+h, w-1)+1
			out.Data[y*w+x] = sat[y1*(w+1)+x1] - sat[y0*(w+1)+x1] - sat[y1*(w+1)+x0] + sat[y0*(w+1)+x0]
		}
	}
	return out
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
