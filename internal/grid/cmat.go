package grid

import (
	"fmt"
	"math/cmplx"
)

// CMat is a dense row-major matrix of complex128 values. It is the carrier
// type for frequency-domain data in the lithography simulator.
type CMat struct {
	W, H int
	Data []complex128
}

// NewCMat returns a zero-filled w×h complex matrix.
func NewCMat(w, h int) *CMat {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("grid: invalid matrix size %dx%d", w, h))
	}
	return &CMat{W: w, H: h, Data: make([]complex128, w*h)}
}

// At returns the element at (x, y).
func (m *CMat) At(x, y int) complex128 { return m.Data[y*m.W+x] }

// Set stores v at (x, y).
func (m *CMat) Set(x, y int, v complex128) { m.Data[y*m.W+x] = v }

// Clone returns a deep copy of m.
func (m *CMat) Clone() *CMat {
	c := NewCMat(m.W, m.H)
	copy(c.Data, m.Data)
	return c
}

// Zero sets every element to 0.
func (m *CMat) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

func (m *CMat) mustMatch(o *CMat) {
	if m.W != o.W || m.H != o.H {
		panic(fmt.Sprintf("grid: shape mismatch %dx%d vs %dx%d", m.W, m.H, o.W, o.H))
	}
}

// MulElem sets m *= o element-wise.
func (m *CMat) MulElem(o *CMat) {
	m.mustMatch(o)
	for i, v := range o.Data {
		m.Data[i] *= v
	}
}

// Scale multiplies every element by a.
func (m *CMat) Scale(a complex128) {
	for i := range m.Data {
		m.Data[i] *= a
	}
}

// Conj conjugates every element in place.
func (m *CMat) Conj() {
	for i, v := range m.Data {
		m.Data[i] = cmplx.Conj(v)
	}
}

// Real extracts the real part into a new Mat.
func (m *CMat) Real() *Mat {
	out := NewMat(m.W, m.H)
	for i, v := range m.Data {
		out.Data[i] = real(v)
	}
	return out
}

// AbsSq returns |m|² element-wise as a new Mat.
func (m *CMat) AbsSq() *Mat {
	out := NewMat(m.W, m.H)
	for i, v := range m.Data {
		re, im := real(v), imag(v)
		out.Data[i] = re*re + im*im
	}
	return out
}

// AbsSqScaledInto overwrites dst with a*|m|² element-wise. The arithmetic
// per element is exactly that of AddAbsSqScaled minus the accumulation, so
// a deferred dst.Add of the result reproduces the fused loop bit-for-bit —
// the property the parallel SOCS reduction in internal/litho relies on.
func (m *CMat) AbsSqScaledInto(dst *Mat, a float64) {
	if m.W != dst.W || m.H != dst.H {
		panic(fmt.Sprintf("grid: shape mismatch %dx%d vs %dx%d", m.W, m.H, dst.W, dst.H))
	}
	for i, v := range m.Data {
		re, im := real(v), imag(v)
		dst.Data[i] = a * (re*re + im*im)
	}
}

// AddAbsSqScaled accumulates dst += a*|m|² element-wise into dst.
func (m *CMat) AddAbsSqScaled(dst *Mat, a float64) {
	if m.W != dst.W || m.H != dst.H {
		panic(fmt.Sprintf("grid: shape mismatch %dx%d vs %dx%d", m.W, m.H, dst.W, dst.H))
	}
	for i, v := range m.Data {
		re, im := real(v), imag(v)
		dst.Data[i] += a * (re*re + im*im)
	}
}

// ComplexFromReal copies a real matrix into a fresh complex matrix.
func ComplexFromReal(m *Mat) *CMat {
	out := NewCMat(m.W, m.H)
	for i, v := range m.Data {
		out.Data[i] = complex(v, 0)
	}
	return out
}

// SetReal overwrites m with the values of r (imaginary parts zeroed).
// The shapes must match.
func (m *CMat) SetReal(r *Mat) {
	if m.W != r.W || m.H != r.H {
		panic(fmt.Sprintf("grid: shape mismatch %dx%d vs %dx%d", m.W, m.H, r.W, r.H))
	}
	for i, v := range r.Data {
		m.Data[i] = complex(v, 0)
	}
}

// MaxAbsDiff returns the largest |m[i]-o[i]|.
func (m *CMat) MaxAbsDiff(o *CMat) float64 {
	m.mustMatch(o)
	var s float64
	for i, v := range o.Data {
		if d := cmplx.Abs(m.Data[i] - v); d > s {
			s = d
		}
	}
	return s
}
