// Package post implements the optional post-processing of Section III-D:
// eliminating too-small shapes and replacing medium-sized irregular SRAFs
// with rectangles, which simplifies the mask pattern (fewer fracturing
// shots) at negligible printability cost.
package post

import (
	"time"

	"repro/internal/geom"
	"repro/internal/grid"
)

// Options tunes the cleanup. All thresholds are in pixels (areas in px²).
type Options struct {
	// MinShapeArea: components smaller than this are deleted.
	MinShapeArea int
	// MaxSRAFArea: SRAF components up to this area are rectangularized
	// (replaced by their bounding box). Larger SRAFs are left curvilinear.
	MaxSRAFArea int
	// MainFeatureMargin: a component overlapping the target dilated by
	// this margin counts as (part of) a main feature and is never touched.
	MainFeatureMargin int
}

// DefaultOptions returns thresholds appropriate for a grid with the given
// pixel size in nm (the paper works at 1 nm/px on 2048² tiles).
func DefaultOptions(pixelNM float64) Options {
	// Physical thresholds: drop shapes below ~(16 nm)², rectangularize
	// SRAFs below ~(60 nm)².
	minA := int(16 * 16 / (pixelNM * pixelNM))
	if minA < 2 {
		minA = 2
	}
	maxA := int(60 * 60 / (pixelNM * pixelNM))
	if maxA <= minA {
		maxA = minA + 1
	}
	return Options{
		MinShapeArea:      minA,
		MaxSRAFArea:       maxA,
		MainFeatureMargin: int(8/pixelNM) + 1,
	}
}

// Result reports what the cleanup did.
type Result struct {
	Mask            *grid.Mat
	RemovedShapes   int
	Rectangularized int
	Seconds         float64
}

// Clean applies the post-processing to a binary mask. The target is used to
// tell main features from SRAFs; it must have the mask's shape.
func Clean(maskImg, target *grid.Mat, opt Options) Result {
	start := time.Now()
	out := maskImg.Clone()
	main := geom.DilateBox(target, opt.MainFeatureMargin)

	labels, comps := geom.Label(out)
	res := Result{}
	for _, c := range comps {
		if touchesMain(labels, main, c) {
			continue
		}
		switch {
		case c.Area < opt.MinShapeArea:
			geom.RemoveComponent(out, labels, c.Label)
			res.RemovedShapes++
		case c.Area <= opt.MaxSRAFArea:
			// Replace the irregular SRAF with its bounding box unless it
			// already is that rectangle.
			if c.Area != c.BBox.Area() {
				geom.RemoveComponent(out, labels, c.Label)
				geom.FillRect(out, c.BBox, 1)
				res.Rectangularized++
			}
		}
	}
	res.Mask = out
	res.Seconds = time.Since(start).Seconds()
	return res
}

// touchesMain reports whether any pixel of the component lies inside the
// dilated main-feature region.
func touchesMain(labels []int32, main *grid.Mat, c geom.Component) bool {
	w := main.W
	for y := c.BBox.Y0; y < c.BBox.Y1; y++ {
		for x := c.BBox.X0; x < c.BBox.X1; x++ {
			i := y*w + x
			if labels[i] == int32(c.Label) && main.Data[i] >= 0.5 {
				return true
			}
		}
	}
	return false
}
