package post

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/grid"
)

func TestDefaultOptionsScaling(t *testing.T) {
	paper := DefaultOptions(1)
	if paper.MinShapeArea != 256 || paper.MaxSRAFArea != 3600 {
		t.Errorf("paper-scale thresholds %+v", paper)
	}
	coarse := DefaultOptions(4)
	if coarse.MinShapeArea != 16 || coarse.MaxSRAFArea != 225 {
		t.Errorf("coarse thresholds %+v", coarse)
	}
	tiny := DefaultOptions(64)
	if tiny.MinShapeArea < 2 || tiny.MaxSRAFArea <= tiny.MinShapeArea {
		t.Errorf("degenerate thresholds %+v", tiny)
	}
}

func TestCleanRemovesSmallShapes(t *testing.T) {
	target := grid.NewMat(64, 64)
	geom.FillRect(target, geom.Rect{X0: 24, Y0: 24, X1: 40, Y1: 40}, 1)

	m := target.Clone()
	m.Set(4, 4, 1) // a 1-px speck far from the feature

	res := Clean(m, target, Options{MinShapeArea: 4, MaxSRAFArea: 50, MainFeatureMargin: 2})
	if res.RemovedShapes != 1 {
		t.Errorf("removed %d shapes, want 1", res.RemovedShapes)
	}
	if res.Mask.At(4, 4) != 0 {
		t.Error("speck survived")
	}
	if res.Mask.At(30, 30) != 1 {
		t.Error("main feature damaged")
	}
}

func TestCleanRectangularizesIrregularSRAF(t *testing.T) {
	target := grid.NewMat(64, 64)
	geom.FillRect(target, geom.Rect{X0: 40, Y0: 40, X1: 56, Y1: 56}, 1)

	m := target.Clone()
	// An irregular (L-shaped) SRAF far from the feature.
	geom.FillRect(m, geom.Rect{X0: 6, Y0: 6, X1: 12, Y1: 9}, 1)
	geom.FillRect(m, geom.Rect{X0: 6, Y0: 9, X1: 9, Y1: 12}, 1)

	res := Clean(m, target, Options{MinShapeArea: 4, MaxSRAFArea: 100, MainFeatureMargin: 2})
	if res.Rectangularized != 1 {
		t.Fatalf("rectangularized %d, want 1", res.Rectangularized)
	}
	// The SRAF is now its bounding box: fully filled 6x6.
	for y := 6; y < 12; y++ {
		for x := 6; x < 12; x++ {
			if res.Mask.At(x, y) != 1 {
				t.Fatalf("bbox fill missing at (%d,%d)", x, y)
			}
		}
	}
	if geom.ShotCount(res.Mask) >= geom.ShotCount(m) {
		t.Error("rectangularization did not reduce shots")
	}
}

func TestCleanLeavesMainFeatureShapesAlone(t *testing.T) {
	target := grid.NewMat(64, 64)
	geom.FillRect(target, geom.Rect{X0: 20, Y0: 20, X1: 44, Y1: 44}, 1)

	// The mask's main feature is irregular (as ILT output is) and overlaps
	// the target: it must not be rectangularized even though it is small.
	m := grid.NewMat(64, 64)
	geom.FillRect(m, geom.Rect{X0: 20, Y0: 20, X1: 44, Y1: 44}, 1)
	geom.FillRect(m, geom.Rect{X0: 44, Y0: 28, X1: 47, Y1: 36}, 1) // attached bump

	res := Clean(m, target, Options{MinShapeArea: 4, MaxSRAFArea: 10000, MainFeatureMargin: 2})
	if res.Rectangularized != 0 || res.RemovedShapes != 0 {
		t.Errorf("main feature was modified: %+v", res)
	}
	if !res.Mask.Equal(m, 0) {
		t.Error("mask changed")
	}
}

func TestCleanLargeSRAFKept(t *testing.T) {
	target := grid.NewMat(64, 64)
	geom.FillRect(target, geom.Rect{X0: 48, Y0: 48, X1: 60, Y1: 60}, 1)

	m := target.Clone()
	// A large irregular SRAF above MaxSRAFArea stays curvilinear.
	geom.FillRect(m, geom.Rect{X0: 4, Y0: 4, X1: 24, Y1: 12}, 1)
	geom.FillRect(m, geom.Rect{X0: 4, Y0: 12, X1: 12, Y1: 24}, 1)

	res := Clean(m, target, Options{MinShapeArea: 4, MaxSRAFArea: 50, MainFeatureMargin: 2})
	if res.Rectangularized != 0 {
		t.Error("large SRAF was rectangularized")
	}
	if res.Mask.At(23, 11) != 1 || res.Mask.At(23, 13) != 0 {
		t.Error("large SRAF shape altered")
	}
}

func TestCleanDoesNotMutateInput(t *testing.T) {
	target := grid.NewMat(32, 32)
	m := grid.NewMat(32, 32)
	m.Set(2, 2, 1)
	Clean(m, target, Options{MinShapeArea: 4, MaxSRAFArea: 8, MainFeatureMargin: 1})
	if m.At(2, 2) != 1 {
		t.Error("Clean mutated its input mask")
	}
}
