package optics

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"
	"sync"

	"repro/internal/grid"
)

// KernelSet is one SOCS decomposition: N_k frequency-domain kernels H_k
// (P×P, DC at the center) with weights w_k, ready for the Hopkins forward
// model of Eq. (3). Weights are jointly normalised so that a fully clear
// mask images to intensity 1.0, which anchors the paper's resist threshold
// I_th = 0.225 across every resolution level.
type KernelSet struct {
	P       int
	Kernels []*grid.CMat
	Weights []float64
}

// Model bundles the nominal-focus and defocus kernel sets, mirroring the two
// kernel files of the ICCAD 2013 contest kit: the nominal set drives Z_norm
// and the +2% dose outer corner, the defocus set the −2% dose inner corner.
type Model struct {
	Config  Config
	Nominal *KernelSet
	Defocus *KernelSet
}

var modelCache sync.Map // Config → *Model

// BuildModel constructs (or returns a cached copy of) the kernel model for
// the configuration. Building is expensive at paper scale (a 1225-dim TCC
// eigenproblem), so results are cached per Config for the process lifetime.
func BuildModel(c Config) (*Model, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if v, ok := modelCache.Load(c); ok {
		return v.(*Model), nil
	}
	nom, err := buildKernelSet(c, 0)
	if err != nil {
		return nil, fmt.Errorf("optics: nominal kernels: %w", err)
	}
	def, err := buildKernelSet(c, c.DefocusNM)
	if err != nil {
		return nil, fmt.Errorf("optics: defocus kernels: %w", err)
	}
	m := &Model{Config: c, Nominal: nom, Defocus: def}
	if v, loaded := modelCache.LoadOrStore(c, m); loaded {
		return v.(*Model), nil
	}
	return m, nil
}

// buildKernelSet assembles the TCC at the given defocus and extracts its
// dominant eigenpairs by subspace iteration with a Rayleigh–Ritz step.
func buildKernelSet(c Config, defocusNM float64) (*KernelSet, error) {
	t := BuildTCC(c, defocusNM)
	nk := c.NumKernels
	if nk > t.Dim {
		nk = t.Dim
	}
	vals, vecs, err := topEigenpairs(t, nk)
	if err != nil {
		return nil, err
	}
	ks := &KernelSet{P: t.P}
	for k := 0; k < nk; k++ {
		if vals[k] <= 0 {
			break // trailing numerical noise; the TCC is PSD
		}
		h := grid.NewCMat(t.P, t.P)
		copy(h.Data, vecs[k])
		canonicalizePhase(h)
		ks.Kernels = append(ks.Kernels, h)
		ks.Weights = append(ks.Weights, vals[k])
	}
	if len(ks.Kernels) == 0 {
		return nil, fmt.Errorf("optics: TCC has no positive eigenvalues (P=%d)", t.P)
	}
	ks.normalizeOpenFrame()
	return ks, nil
}

// topEigenpairs runs blocked subspace iteration on the TCC and returns the
// nk largest eigenpairs; vecs[k] is the k-th eigenvector (length Dim).
func topEigenpairs(t *TCC, nk int) (vals []float64, vecs [][]complex128, err error) {
	dim := t.Dim
	block := nk + 8
	if block > dim {
		block = dim
	}
	// Deterministic random start: kernel generation must be reproducible.
	rng := rand.New(rand.NewSource(20130913)) // ICCAD 2013 contest date
	q := make([][]complex128, block)
	z := make([][]complex128, block)
	for k := range q {
		q[k] = make([]complex128, dim)
		z[k] = make([]complex128, dim)
		for i := range q[k] {
			q[k][i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
	}
	orthonormalize(q)

	const iters = 40
	prev := make([]float64, nk)
	for it := 0; it < iters; it++ {
		t.MatVecBlock(z, q)
		q, z = z, q
		orthonormalize(q)
		if it%5 == 4 || it == iters-1 {
			// Cheap convergence probe on the Rayleigh quotients.
			cur := make([]float64, nk)
			t.MatVecBlock(z, q)
			for k := 0; k < nk; k++ {
				cur[k] = realDot(q[k], z[k])
			}
			maxRel := 0.0
			for k := range cur {
				d := math.Abs(cur[k] - prev[k])
				if r := d / (math.Abs(cur[k]) + 1e-30); r > maxRel {
					maxRel = r
				}
			}
			copy(prev, cur)
			if maxRel < 1e-10 && it > 5 {
				break
			}
		}
	}

	// Rayleigh–Ritz: B = Qᴴ T Q, eigendecompose the small block, rotate Q.
	t.MatVecBlock(z, q)
	b := make([]complex128, block*block)
	for i := 0; i < block; i++ {
		for j := 0; j < block; j++ {
			b[i*block+j] = cdot(q[i], z[j])
		}
	}
	bvals, bvecs, err := HermitianEigen(block, b)
	if err != nil {
		return nil, nil, err
	}
	vals = bvals[:nk]
	vecs = make([][]complex128, nk)
	for k := 0; k < nk; k++ {
		v := make([]complex128, dim)
		for bi := 0; bi < block; bi++ {
			c := bvecs[bi*block+k]
			if c == 0 {
				continue
			}
			qv := q[bi]
			for i := range v {
				v[i] += c * qv[i]
			}
		}
		vecs[k] = v
	}
	return vals, vecs, nil
}

// orthonormalize applies modified Gram–Schmidt to the block in place.
// Vectors that collapse to (numerical) zero are re-randomised against a
// fixed stream to keep the block full-rank.
func orthonormalize(q [][]complex128) {
	rng := rand.New(rand.NewSource(987654321))
	for k := range q {
		for attempt := 0; ; attempt++ {
			for j := 0; j < k; j++ {
				proj := cdot(q[j], q[k])
				if proj == 0 {
					continue
				}
				for i := range q[k] {
					q[k][i] -= proj * q[j][i]
				}
			}
			n := math.Sqrt(realDot(q[k], q[k]))
			if n > 1e-12 {
				inv := complex(1/n, 0)
				for i := range q[k] {
					q[k][i] *= inv
				}
				break
			}
			if attempt > 3 {
				panic("optics: orthonormalize could not recover a degenerate block vector")
			}
			for i := range q[k] {
				q[k][i] = complex(rng.NormFloat64(), rng.NormFloat64())
			}
		}
	}
}

// cdot returns ⟨a, b⟩ = Σ conj(a_i)·b_i.
func cdot(a, b []complex128) complex128 {
	var s complex128
	for i, v := range a {
		s += complex(real(v), -imag(v)) * b[i]
	}
	return s
}

// realDot returns Re⟨a, b⟩.
func realDot(a, b []complex128) float64 {
	var s float64
	for i, v := range a {
		s += real(v)*real(b[i]) + imag(v)*imag(b[i])
	}
	return s
}

// canonicalizePhase rotates a kernel's arbitrary global phase so its
// largest-magnitude coefficient is real and positive, making generated
// kernel sets bit-reproducible across runs.
func canonicalizePhase(h *grid.CMat) {
	best := 0
	bestMag := 0.0
	for i, v := range h.Data {
		if m := real(v)*real(v) + imag(v)*imag(v); m > bestMag {
			bestMag, best = m, i
		}
	}
	if bestMag == 0 {
		return
	}
	ph := h.Data[best] / complex(cmplx.Abs(h.Data[best]), 0)
	inv := complex(real(ph), -imag(ph))
	for i := range h.Data {
		h.Data[i] *= inv
	}
}

// normalizeOpenFrame rescales the weights so a fully clear mask produces
// aerial intensity exactly 1. For a clear mask the per-kernel amplitude is
// the kernel's DC coefficient, so I_open = Σ w_k·|H_k(0,0)|².
func (ks *KernelSet) normalizeOpenFrame() {
	var open float64
	c := ks.P / 2
	for k, h := range ks.Kernels {
		dc := h.At(c, c)
		open += ks.Weights[k] * (real(dc)*real(dc) + imag(dc)*imag(dc))
	}
	if open <= 1e-12 {
		// Pathological (e.g. single odd kernel); fall back to total energy.
		open = 0
		for k := range ks.Kernels {
			open += ks.Weights[k]
		}
	}
	for k := range ks.Weights {
		ks.Weights[k] /= open
	}
}

// EnergyCapture returns the fraction of the TCC trace captured by the
// retained kernels — a quality measure of the truncated SOCS expansion.
// It must be computed before weight normalisation, so BuildTCC is re-run;
// intended for diagnostics (examples/kernelgen), not hot paths.
func EnergyCapture(c Config, defocusNM float64) (captured, trace float64, err error) {
	if err := c.Validate(); err != nil {
		return 0, 0, err
	}
	t := BuildTCC(c, defocusNM)
	nk := c.NumKernels
	if nk > t.Dim {
		nk = t.Dim
	}
	vals, _, err := topEigenpairs(t, nk)
	if err != nil {
		return 0, 0, err
	}
	for _, v := range vals {
		if v > 0 {
			captured += v
		}
	}
	return captured, t.Trace(), nil
}
