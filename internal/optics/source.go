package optics

import "math"

// SourcePoint is one discretised point of the illumination source, expressed
// in frequency units (nm⁻¹) with an intensity weight.
type SourcePoint struct {
	FX, FY float64
	Weight float64
}

// DiscretizeSource samples the configured source shape on a
// SourceGrid×SourceGrid raster of σ-space. Weights are uniform and
// normalised to sum to 1. The returned slice is never empty for a valid
// configuration: if the raster misses the shape entirely (possible for very
// thin rings on coarse grids), the mid-annulus circle is sampled directly.
func DiscretizeSource(c Config) []SourcePoint {
	n := c.SourceGrid
	scale := c.NA / c.WavelengthNM // σ → frequency
	var pts []SourcePoint
	for iy := 0; iy < n; iy++ {
		sy := -c.SigmaOut + 2*c.SigmaOut*float64(iy)/float64(n-1)
		for ix := 0; ix < n; ix++ {
			sx := -c.SigmaOut + 2*c.SigmaOut*float64(ix)/float64(n-1)
			if !inShape(c, sx, sy) {
				continue
			}
			pts = append(pts, SourcePoint{FX: sx * scale, FY: sy * scale, Weight: 1})
		}
	}
	if len(pts) == 0 {
		// Thin-ring fallback: sample the mid-annulus circle directly.
		mid := (c.SigmaIn + c.SigmaOut) / 2
		for i := 0; i < 4*n; i++ {
			ang := 2 * pi * float64(i) / float64(4*n)
			pts = append(pts, SourcePoint{
				FX:     mid * cos(ang) * scale,
				FY:     mid * sin(ang) * scale,
				Weight: 1,
			})
		}
	}
	total := 0.0
	for _, p := range pts {
		total += p.Weight
	}
	for i := range pts {
		pts[i].Weight /= total
	}
	return pts
}

// inShape reports whether the σ-space point lies inside the configured
// illumination geometry.
func inShape(c Config, sx, sy float64) bool {
	r2 := sx*sx + sy*sy
	if r2 > c.SigmaOut*c.SigmaOut+1e-12 {
		return false
	}
	switch c.Shape {
	case Circular:
		return true
	case Annular:
		return r2 >= c.SigmaIn*c.SigmaIn-1e-12
	case Dipole:
		if r2 < c.SigmaIn*c.SigmaIn-1e-12 || r2 == 0 {
			return false
		}
		// Two poles on the X axis with a ±22.5° half-opening.
		cos2 := sx * sx / r2
		return cos2 >= cosSq22_5
	case Quasar:
		if r2 < c.SigmaIn*c.SigmaIn-1e-12 || r2 == 0 {
			return false
		}
		// Four arcs on the diagonals: |sin 2θ| ≥ sin 45°.
		sin2theta := 2 * sx * sy / r2
		return sin2theta >= sin45 || sin2theta <= -sin45
	default:
		return false
	}
}

// cosSq22_5 = cos²(22.5°); sin45 = sin(45°).
var (
	cosSq22_5 = math.Pow(math.Cos(22.5*math.Pi/180), 2)
	sin45     = math.Sin(45 * math.Pi / 180)
)
