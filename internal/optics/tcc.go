package optics

import (
	"math"

	"repro/internal/grid"
)

// TCC is the Hopkins transmission cross coefficient matrix restricted to the
// P×P kernel support, flattened to a dim = P² Hermitian matrix:
//
//	T[i][j] = Σ_s J_s · P(f_i + f_s) · conj(P(f_j + f_s)),
//
// with i, j indexing signed frequencies (fx, fy) ∈ [−h, h]² row-major as
// (fy+h)·P + (fx+h). The eigenpairs of T are the SOCS kernels/weights.
type TCC struct {
	P   int
	Dim int
	// Data is row-major Dim×Dim, Hermitian.
	Data []complex128
}

// BuildTCC assembles the TCC matrix for the configuration at the given
// defocus. The assembly is parallelised over matrix rows.
func BuildTCC(c Config, defocusNM float64) *TCC {
	h := c.kernelHalf()
	p := 2*h + 1
	dim := p * p
	src := DiscretizeSource(c)

	maxSrcF := 0.0
	for _, s := range src {
		if f := math.Hypot(s.FX, s.FY); f > maxSrcF {
			maxSrcF = f
		}
	}
	pt := buildPupilTable(c, defocusNM, maxSrcF)

	// Precompute per-source pupil vectors over the kernel support.
	vecs := make([][]complex128, len(src))
	weights := make([]float64, len(src))
	for si, s := range src {
		v := make([]complex128, dim)
		for fy := -h; fy <= h; fy++ {
			for fx := -h; fx <= h; fx++ {
				v[(fy+h)*p+fx+h] = pt.at(fx, fy, s.FX, s.FY)
			}
		}
		vecs[si] = v
		weights[si] = s.Weight
	}

	t := &TCC{P: p, Dim: dim, Data: make([]complex128, dim*dim)}
	// T = Σ_s w_s v_s v_sᴴ; fill the upper triangle row-parallel, mirror after.
	grid.ParallelFor(0, dim, func(i int) {
		row := t.Data[i*dim : (i+1)*dim]
		for si, v := range vecs {
			vi := v[i]
			if vi == 0 {
				continue
			}
			w := complex(weights[si], 0)
			wvi := w * vi
			for j := i; j < dim; j++ {
				vj := v[j]
				row[j] += wvi * complex(real(vj), -imag(vj))
			}
		}
	})
	for i := 0; i < dim; i++ {
		for j := i + 1; j < dim; j++ {
			v := t.Data[i*dim+j]
			t.Data[j*dim+i] = complex(real(v), -imag(v))
		}
	}
	return t
}

// MatVecBlock computes dst = T·src for a block of column vectors stored as
// src[k][i] (k = vector index, i = component). dst must have the same shape.
// The product is parallelised over matrix rows.
func (t *TCC) MatVecBlock(dst, src [][]complex128) {
	dim := t.Dim
	grid.ParallelFor(0, dim, func(i int) {
		row := t.Data[i*dim : (i+1)*dim]
		for k := range src {
			var acc complex128
			s := src[k]
			for j, r := range row {
				if r != 0 {
					acc += r * s[j]
				}
			}
			dst[k][i] = acc
		}
	})
}

// Trace returns the (real) trace of the TCC, which equals the total captured
// source energy and bounds the sum of all eigenvalues.
func (t *TCC) Trace() float64 {
	var tr float64
	for i := 0; i < t.Dim; i++ {
		tr += real(t.Data[i*t.Dim+i])
	}
	return tr
}
