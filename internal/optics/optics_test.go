package optics

import (
	"math"
	"math/cmplx"
	"testing"
)

func TestConfigValidation(t *testing.T) {
	good := TestScale()
	if err := good.Validate(); err != nil {
		t.Fatalf("TestScale config invalid: %v", err)
	}
	cases := []func(*Config){
		func(c *Config) { c.FieldNM = 0 },
		func(c *Config) { c.WavelengthNM = -1 },
		func(c *Config) { c.NA = 0 },
		func(c *Config) { c.SigmaIn = 0.9; c.SigmaOut = 0.6 },
		func(c *Config) { c.SigmaOut = 1.5 },
		func(c *Config) { c.NumKernels = 0 },
		func(c *Config) { c.KernelSize = 8 },
		func(c *Config) { c.SourceGrid = 2 },
	}
	for i, mutate := range cases {
		c := TestScale()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestAutoKernelSizePaperScale(t *testing.T) {
	c := Default()
	if got := c.P(); got != 35 {
		t.Errorf("P at paper scale = %d, want 35", got)
	}
	c.FieldNM = 512
	if got := c.P(); got != 13 {
		t.Errorf("P at 512 nm field = %d, want 13", got)
	}
	c.KernelSize = 21
	if got := c.P(); got != 21 {
		t.Errorf("explicit P = %d, want 21", got)
	}
}

func TestDiscretizeSourceAnnulus(t *testing.T) {
	c := TestScale()
	pts := DiscretizeSource(c)
	if len(pts) == 0 {
		t.Fatal("no source points")
	}
	var wsum float64
	scale := c.NA / c.WavelengthNM
	for _, p := range pts {
		wsum += p.Weight
		sigma := math.Hypot(p.FX, p.FY) / scale
		if sigma < c.SigmaIn-1e-9 || sigma > c.SigmaOut+1e-9 {
			t.Fatalf("source point at σ=%g outside annulus [%g, %g]", sigma, c.SigmaIn, c.SigmaOut)
		}
	}
	if math.Abs(wsum-1) > 1e-12 {
		t.Errorf("source weights sum to %g, want 1", wsum)
	}
}

func TestDiscretizeSourceThinRingFallback(t *testing.T) {
	c := TestScale()
	c.SigmaIn = 0.700
	c.SigmaOut = 0.701
	c.SourceGrid = 5
	pts := DiscretizeSource(c)
	if len(pts) == 0 {
		t.Fatal("thin-ring fallback produced no points")
	}
}

func TestPupilCutoffAndDefocus(t *testing.T) {
	c := TestScale()
	fc := c.NA / c.WavelengthNM
	if Pupil(c, 0, 0, 0) != 1 {
		t.Error("pupil at DC should be 1")
	}
	if Pupil(c, fc*1.01, 0, 0) != 0 {
		t.Error("pupil beyond NA should be 0")
	}
	v := Pupil(c, fc/2, 0, 30)
	if math.Abs(cmplx.Abs(v)-1) > 1e-12 {
		t.Errorf("defocused pupil magnitude %g, want 1", cmplx.Abs(v))
	}
	if imag(v) == 0 {
		t.Error("defocused pupil should carry phase")
	}
}

func TestBuildTCCHermitianPSD(t *testing.T) {
	c := TestScale()
	c.SourceGrid = 5
	tcc := BuildTCC(c, 0)
	if tcc.P != c.P() || tcc.Dim != c.P()*c.P() {
		t.Fatalf("TCC dims P=%d Dim=%d", tcc.P, tcc.Dim)
	}
	n := tcc.Dim
	for i := 0; i < n; i++ {
		if imag(tcc.Data[i*n+i]) != 0 {
			t.Fatalf("diagonal entry %d not real", i)
		}
		if real(tcc.Data[i*n+i]) < -1e-15 {
			t.Fatalf("diagonal entry %d negative: %v", i, tcc.Data[i*n+i])
		}
		for j := i + 1; j < n; j++ {
			if cmplx.Abs(tcc.Data[i*n+j]-cmplx.Conj(tcc.Data[j*n+i])) > 1e-12 {
				t.Fatalf("TCC not Hermitian at (%d,%d)", i, j)
			}
		}
	}
	if tcc.Trace() <= 0 {
		t.Error("TCC trace not positive")
	}
}

func TestBuildModelKernels(t *testing.T) {
	c := TestScale()
	m, err := BuildModel(c)
	if err != nil {
		t.Fatal(err)
	}
	for _, ks := range []*KernelSet{m.Nominal, m.Defocus} {
		if len(ks.Kernels) == 0 || len(ks.Kernels) != len(ks.Weights) {
			t.Fatalf("kernel set sizes: %d kernels, %d weights", len(ks.Kernels), len(ks.Weights))
		}
		if ks.P != c.P() {
			t.Fatalf("kernel support %d, want %d", ks.P, c.P())
		}
		// Weights descending and positive.
		for k := 1; k < len(ks.Weights); k++ {
			if ks.Weights[k] <= 0 {
				t.Fatalf("weight %d not positive: %g", k, ks.Weights[k])
			}
			if ks.Weights[k] > ks.Weights[k-1]+1e-12 {
				t.Fatalf("weights not descending at %d", k)
			}
		}
		// Open-frame normalisation: Σ w_k |H_k(DC)|² == 1.
		var open float64
		ctr := ks.P / 2
		for k, h := range ks.Kernels {
			dc := h.At(ctr, ctr)
			open += ks.Weights[k] * (real(dc)*real(dc) + imag(dc)*imag(dc))
		}
		if math.Abs(open-1) > 1e-9 {
			t.Errorf("open-frame intensity %g, want 1", open)
		}
	}
	// The defocus set must actually differ from the nominal set.
	if m.Nominal.Kernels[0].MaxAbsDiff(m.Defocus.Kernels[0]) < 1e-9 {
		t.Error("defocus kernels identical to nominal")
	}
}

func TestBuildModelCached(t *testing.T) {
	c := TestScale()
	m1, err := BuildModel(c)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := BuildModel(c)
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 {
		t.Error("BuildModel did not return the cached model")
	}
}

func TestBuildModelRejectsInvalid(t *testing.T) {
	c := TestScale()
	c.NA = -1
	if _, err := BuildModel(c); err == nil {
		t.Fatal("invalid config accepted by BuildModel")
	}
}

func TestKernelEigenResidual(t *testing.T) {
	// The extracted eigenpairs must satisfy T·v ≈ λ·v on the raw TCC.
	c := TestScale()
	c.NumKernels = 4
	c.SourceGrid = 5
	tcc := BuildTCC(c, 0)
	vals, vecs, err := topEigenpairs(tcc, 4)
	if err != nil {
		t.Fatal(err)
	}
	dim := tcc.Dim
	for k := 0; k < 4; k++ {
		av := make([][]complex128, 1)
		av[0] = make([]complex128, dim)
		tcc.MatVecBlock(av, [][]complex128{vecs[k]})
		var res, norm float64
		for i := 0; i < dim; i++ {
			d := av[0][i] - complex(vals[k], 0)*vecs[k][i]
			res += real(d)*real(d) + imag(d)*imag(d)
			norm += real(vecs[k][i])*real(vecs[k][i]) + imag(vecs[k][i])*imag(vecs[k][i])
		}
		if math.Sqrt(res) > 1e-6*math.Sqrt(norm)*math.Max(vals[0], 1) {
			t.Errorf("eigenpair %d residual %g too large (λ=%g)", k, math.Sqrt(res), vals[k])
		}
	}
	// Eigenvalue sum bounded by trace.
	var sum float64
	for _, v := range vals {
		sum += v
	}
	if sum > tcc.Trace()+1e-9 {
		t.Errorf("Σλ %g exceeds trace %g", sum, tcc.Trace())
	}
}

func TestEnergyCapture(t *testing.T) {
	c := TestScale()
	c.SourceGrid = 5
	cap8, tr, err := EnergyCapture(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cap8 <= 0 || tr <= 0 || cap8 > tr+1e-9 {
		t.Fatalf("capture %g / trace %g out of range", cap8, tr)
	}
	c2 := c
	c2.NumKernels = 2
	cap2, _, err := EnergyCapture(c2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cap2 > cap8+1e-9 {
		t.Errorf("2-kernel capture %g exceeds 8-kernel capture %g", cap2, cap8)
	}
}

func TestCanonicalPhaseDeterminism(t *testing.T) {
	c := TestScale()
	m, err := BuildModel(c)
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild bypassing the cache; kernels must match exactly.
	ks, err := buildKernelSet(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ks.Kernels) != len(m.Nominal.Kernels) {
		t.Fatalf("kernel count changed between builds: %d vs %d", len(ks.Kernels), len(m.Nominal.Kernels))
	}
	for k := range ks.Kernels {
		if d := ks.Kernels[k].MaxAbsDiff(m.Nominal.Kernels[k]); d > 1e-12 {
			t.Errorf("kernel %d differs between identical builds by %g", k, d)
		}
	}
}

func TestSourceShapes(t *testing.T) {
	base := TestScale()
	counts := map[SourceShape]int{}
	for _, shape := range []SourceShape{Annular, Circular, Dipole, Quasar} {
		c := base
		c.Shape = shape
		if err := c.Validate(); err != nil {
			t.Fatalf("%v: %v", shape, err)
		}
		pts := DiscretizeSource(c)
		if len(pts) == 0 {
			t.Fatalf("%v: no source points", shape)
		}
		counts[shape] = len(pts)
		var wsum float64
		for _, p := range pts {
			wsum += p.Weight
		}
		if math.Abs(wsum-1) > 1e-12 {
			t.Errorf("%v: weights sum to %g", shape, wsum)
		}
	}
	// Circular ⊇ Annular ⊇ Dipole/Quasar subsets.
	if counts[Circular] <= counts[Annular] {
		t.Errorf("circular %d not larger than annular %d", counts[Circular], counts[Annular])
	}
	if counts[Dipole] >= counts[Annular] || counts[Quasar] >= counts[Annular] {
		t.Errorf("pole shapes not subsets: dipole %d quasar %d annular %d",
			counts[Dipole], counts[Quasar], counts[Annular])
	}
}

func TestDipoleGeometry(t *testing.T) {
	c := TestScale()
	c.Shape = Dipole
	c.SourceGrid = 15
	scale := c.NA / c.WavelengthNM
	for _, p := range DiscretizeSource(c) {
		sx, sy := p.FX/scale, p.FY/scale
		if sx*sx < sy*sy {
			t.Fatalf("dipole point (%g, %g) closer to the Y axis", sx, sy)
		}
	}
}

func TestQuasarGeometry(t *testing.T) {
	c := TestScale()
	c.Shape = Quasar
	c.SourceGrid = 15
	scale := c.NA / c.WavelengthNM
	for _, p := range DiscretizeSource(c) {
		sx, sy := p.FX/scale, p.FY/scale
		r2 := sx*sx + sy*sy
		if r2 == 0 {
			t.Fatal("quasar contains the origin")
		}
		if s2 := math.Abs(2 * sx * sy / r2); s2 < sin45-1e-9 {
			t.Fatalf("quasar point (%g, %g) off the diagonals (|sin2θ|=%g)", sx, sy, s2)
		}
	}
}

func TestSourceShapeString(t *testing.T) {
	if Annular.String() != "annular" || Quasar.String() != "quasar" {
		t.Error("SourceShape.String broken")
	}
	if SourceShape(9).String() == "" {
		t.Error("unknown shape has empty String")
	}
}

func TestShapeChangesKernels(t *testing.T) {
	a := TestScale()
	d := TestScale()
	d.Shape = Dipole
	ma, err := BuildModel(a)
	if err != nil {
		t.Fatal(err)
	}
	md, err := BuildModel(d)
	if err != nil {
		t.Fatal(err)
	}
	if ma.Nominal.Kernels[0].MaxAbsDiff(md.Nominal.Kernels[0]) < 1e-9 {
		t.Error("dipole kernels identical to annular")
	}
}
