package optics

import "testing"

func BenchmarkBuildTCC(b *testing.B) {
	c := TestScale()
	c.SourceGrid = 7
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if tcc := BuildTCC(c, 0); tcc.Dim == 0 {
			b.Fatal("empty TCC")
		}
	}
}

func BenchmarkKernelSetBuild(b *testing.B) {
	c := TestScale()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := buildKernelSet(c, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHermitianEigen32(b *testing.B) {
	const n = 32
	c := TestScale()
	c.SourceGrid = 5
	tcc := BuildTCC(c, 0)
	// Use a fixed 32×32 Hermitian block sampled from the TCC.
	base := make([]complex128, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			base[i*n+j] = tcc.Data[i*tcc.Dim+j]
		}
	}
	work := make([]complex128, n*n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, base)
		if _, _, err := HermitianEigen(n, work); err != nil {
			b.Fatal(err)
		}
	}
}
