package optics

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

// randHermitian builds a random n×n Hermitian matrix.
func randHermitian(rng *rand.Rand, n int) []complex128 {
	a := make([]complex128, n*n)
	for i := 0; i < n; i++ {
		a[i*n+i] = complex(rng.NormFloat64(), 0)
		for j := i + 1; j < n; j++ {
			v := complex(rng.NormFloat64(), rng.NormFloat64())
			a[i*n+j] = v
			a[j*n+i] = cmplx.Conj(v)
		}
	}
	return a
}

func TestHermitianEigenDiagonal(t *testing.T) {
	// Diagonal input: eigenvalues are the diagonal, sorted descending.
	a := []complex128{
		2, 0, 0,
		0, 5, 0,
		0, 0, -1,
	}
	vals, vecs, err := HermitianEigen(3, a)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{5, 2, -1}
	for i, w := range want {
		if math.Abs(vals[i]-w) > 1e-12 {
			t.Errorf("vals[%d] = %v, want %v", i, vals[i], w)
		}
	}
	// First eigenvector should be e_1 (up to phase).
	if cmplx.Abs(vecs[1*3+0]) < 0.999 {
		t.Errorf("dominant eigenvector component = %v, want |.|≈1", vecs[1*3+0])
	}
}

func TestHermitianEigen2x2Known(t *testing.T) {
	// [[0, i], [-i, 0]] has eigenvalues ±1.
	a := []complex128{0, complex(0, 1), complex(0, -1), 0}
	vals, _, err := HermitianEigen(2, a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vals[0]-1) > 1e-12 || math.Abs(vals[1]+1) > 1e-12 {
		t.Errorf("vals = %v, want [1, -1]", vals)
	}
}

func TestHermitianEigenWrongLength(t *testing.T) {
	if _, _, err := HermitianEigen(3, make([]complex128, 8)); err == nil {
		t.Fatal("wrong-length matrix accepted")
	}
}

// eigenResidual returns max_k ‖A v_k − λ_k v_k‖ for the original matrix.
func eigenResidual(n int, orig []complex128, vals []float64, vecs []complex128) float64 {
	var worst float64
	for k := 0; k < n; k++ {
		var res float64
		for i := 0; i < n; i++ {
			var av complex128
			for j := 0; j < n; j++ {
				av += orig[i*n+j] * vecs[j*n+k]
			}
			res += cmplx.Abs(av-complex(vals[k], 0)*vecs[i*n+k]) *
				cmplx.Abs(av-complex(vals[k], 0)*vecs[i*n+k])
		}
		if r := math.Sqrt(res); r > worst {
			worst = r
		}
	}
	return worst
}

func TestHermitianEigenResidualProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		a := randHermitian(rng, n)
		orig := append([]complex128(nil), a...)
		vals, vecs, err := HermitianEigen(n, a)
		if err != nil {
			return false
		}
		// Eigenvalues descending.
		for i := 1; i < n; i++ {
			if vals[i] > vals[i-1]+1e-12 {
				return false
			}
		}
		return eigenResidual(n, orig, vals, vecs) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestHermitianEigenVectorsOrthonormal(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n = 8
	a := randHermitian(rng, n)
	_, vecs, err := HermitianEigen(n, a)
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < n; p++ {
		for q := 0; q < n; q++ {
			var dot complex128
			for i := 0; i < n; i++ {
				dot += cmplx.Conj(vecs[i*n+p]) * vecs[i*n+q]
			}
			want := complex128(0)
			if p == q {
				want = 1
			}
			if cmplx.Abs(dot-want) > 1e-9 {
				t.Fatalf("⟨v%d, v%d⟩ = %v, want %v", p, q, dot, want)
			}
		}
	}
}

func TestHermitianEigenTracePreserved(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 6
	a := randHermitian(rng, n)
	var trace float64
	for i := 0; i < n; i++ {
		trace += real(a[i*n+i])
	}
	vals, _, err := HermitianEigen(n, a)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, v := range vals {
		sum += v
	}
	if math.Abs(sum-trace) > 1e-9 {
		t.Errorf("Σλ = %v, trace = %v", sum, trace)
	}
}
