// Package optics synthesizes the SOCS (sum-of-coherent-systems) kernel sets
// that drive the Hopkins forward lithography model. The ICCAD 2013 contest
// shipped these kernels as opaque data files; here they are rebuilt from
// first principles: a partially coherent annular source is discretised, a
// defocus-capable pupil is sampled on the simulation frequency grid, the
// Hopkins transmission cross coefficient (TCC) matrix is assembled, and its
// dominant eigenpairs — extracted by subspace iteration with a Hermitian
// Jacobi Rayleigh–Ritz step — become the kernels H_k and weights w_k of
// Eq. (2)/(3) in the paper.
package optics

import (
	"fmt"
	"math"
)

// Config describes one optical column and simulation grid. The zero value is
// not usable; call Default first and override fields as needed. Config is
// comparable and doubles as the kernel-cache key.
type Config struct {
	// FieldNM is the physical side length of the simulated tile in nm.
	// The ICCAD 2013 benchmarks use 2048 nm (2048 px at 1 nm/px). The
	// frequency-grid spacing 1/FieldNM — and therefore the kernel support —
	// depends only on this, not on the pixel count, so the same kernels
	// serve every resolution level of the multi-level flow.
	FieldNM float64

	// WavelengthNM is the exposure wavelength λ (ArF immersion: 193 nm).
	WavelengthNM float64

	// NA is the numerical aperture of the projection optics.
	NA float64

	// SigmaIn and SigmaOut delimit the annular source in σ-space
	// (fractions of NA). SigmaIn = 0 degenerates to a circular source.
	SigmaIn, SigmaOut float64

	// NumKernels is N_k, the number of retained SOCS kernels (paper: 24).
	NumKernels int

	// KernelSize is P, the odd support of each kernel on the frequency
	// grid (paper: 35). Zero selects it automatically from the coherent
	// cutoff NA/λ, capped at 35.
	KernelSize int

	// DefocusNM is the focus offset used for the defocus kernel set that
	// feeds the "inner" process corner.
	DefocusNM float64

	// SourceGrid is the per-axis resolution of the source discretisation
	// (points are kept where σ_in ≤ |σ| ≤ σ_out).
	SourceGrid int

	// Shape selects the illumination geometry (default Annular).
	Shape SourceShape
}

// SourceShape enumerates the supported illumination geometries.
type SourceShape int

const (
	// Annular keeps the ring σ_in ≤ |σ| ≤ σ_out (the paper's setting).
	Annular SourceShape = iota
	// Circular is a conventional disk of radius σ_out (σ_in ignored).
	Circular
	// Dipole keeps two poles of the annulus on the X axis (±45° opening),
	// favouring vertical line/space patterns.
	Dipole
	// Quasar keeps four 45°-wide arcs centered on the diagonals, the
	// classic compromise for mixed horizontal/vertical layouts.
	Quasar
)

// String implements fmt.Stringer.
func (s SourceShape) String() string {
	switch s {
	case Annular:
		return "annular"
	case Circular:
		return "circular"
	case Dipole:
		return "dipole"
	case Quasar:
		return "quasar"
	default:
		return fmt.Sprintf("SourceShape(%d)", int(s))
	}
}

// Default returns the paper-scale configuration: a 2048 nm field, 193 nm
// immersion lithography with an annular source, 24 kernels of support 35.
func Default() Config {
	return Config{
		FieldNM:      2048,
		WavelengthNM: 193,
		NA:           1.35,
		SigmaIn:      0.6,
		SigmaOut:     0.9,
		NumKernels:   24,
		KernelSize:   0, // auto → 35 at the default field size
		DefocusNM:    25,
		SourceGrid:   11,
	}
}

// TestScale returns a reduced configuration suitable for unit tests: a small
// field so the TCC matrix stays tiny while every code path is exercised.
func TestScale() Config {
	c := Default()
	c.FieldNM = 512
	c.NumKernels = 8
	c.SourceGrid = 7
	return c
}

// Validate reports the first problem with the configuration, or nil.
func (c Config) Validate() error {
	switch {
	case c.FieldNM <= 0:
		return fmt.Errorf("optics: FieldNM must be positive, got %g", c.FieldNM)
	case c.WavelengthNM <= 0:
		return fmt.Errorf("optics: WavelengthNM must be positive, got %g", c.WavelengthNM)
	case c.NA <= 0:
		return fmt.Errorf("optics: NA must be positive, got %g", c.NA)
	case c.SigmaIn < 0 || c.SigmaOut <= 0 || c.SigmaIn >= c.SigmaOut:
		return fmt.Errorf("optics: bad annulus σ ∈ [%g, %g]", c.SigmaIn, c.SigmaOut)
	case c.SigmaOut > 1:
		return fmt.Errorf("optics: SigmaOut %g exceeds 1", c.SigmaOut)
	case c.NumKernels <= 0:
		return fmt.Errorf("optics: NumKernels must be positive, got %d", c.NumKernels)
	case c.KernelSize < 0 || (c.KernelSize > 0 && c.KernelSize%2 == 0):
		return fmt.Errorf("optics: KernelSize must be 0 (auto) or odd, got %d", c.KernelSize)
	case c.SourceGrid < 3:
		return fmt.Errorf("optics: SourceGrid must be ≥ 3, got %d", c.SourceGrid)
	case c.Shape < Annular || c.Shape > Quasar:
		return fmt.Errorf("optics: unknown source shape %d", c.Shape)
	}
	return nil
}

// FreqStep returns the frequency-grid spacing Δf = 1/FieldNM in nm⁻¹.
func (c Config) FreqStep() float64 { return 1 / c.FieldNM }

// CutoffFreq returns the incoherent cutoff NA(1+σ_out)/λ in nm⁻¹; no mask
// frequency beyond it reaches the wafer.
func (c Config) CutoffFreq() float64 {
	return c.NA * (1 + c.SigmaOut) / c.WavelengthNM
}

// kernelHalf returns the half-width h of the kernel support (P = 2h+1).
func (c Config) kernelHalf() int {
	if c.KernelSize > 0 {
		return c.KernelSize / 2
	}
	// Auto: follow the incoherent cutoff NA(1+σ_out)/λ. The contest
	// kernels truncate the faint outer band at P = 35; we follow the same
	// convention so the paper's N = 2048 px / 2048 nm, P = 35 holds.
	h := int(math.Floor(c.CutoffFreq() * c.FieldNM))
	if h > 17 {
		h = 17
	}
	if h < 2 {
		h = 2
	}
	return h
}

// P returns the kernel support size (odd).
func (c Config) P() int { return 2*c.kernelHalf() + 1 }
