package optics

import (
	"fmt"
	"math"
	"math/cmplx"
	"sort"
)

// HermitianEigen diagonalises a small dense Hermitian matrix (row-major n×n)
// with the complex Jacobi method. It returns the eigenvalues in descending
// order and the matching eigenvectors as columns: vecs[i*n+k] is component i
// of eigenvector k. The input slice is clobbered.
//
// The routine powers the Rayleigh–Ritz step of the SOCS subspace iteration,
// where n is the block size (a few dozen), so the O(n³)-per-sweep cost is
// irrelevant.
func HermitianEigen(n int, a []complex128) (vals []float64, vecs []complex128, err error) {
	if len(a) != n*n {
		return nil, nil, fmt.Errorf("optics: HermitianEigen matrix length %d != %d²", len(a), n)
	}
	v := make([]complex128, n*n)
	for i := 0; i < n; i++ {
		v[i*n+i] = 1
	}
	const maxSweeps = 60
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := offDiagNorm(n, a)
		diag := diagNorm(n, a)
		if off <= 1e-14*(diag+1e-300) {
			break
		}
		if sweep == maxSweeps-1 {
			return nil, nil, fmt.Errorf("optics: Jacobi failed to converge (off=%g, diag=%g)", off, diag)
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				rotate(n, a, v, p, q)
			}
		}
	}
	vals = make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = real(a[i*n+i])
	}
	// Sort eigenpairs by descending eigenvalue.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(x, y int) bool { return vals[idx[x]] > vals[idx[y]] })
	sortedVals := make([]float64, n)
	sortedVecs := make([]complex128, n*n)
	for k, j := range idx {
		sortedVals[k] = vals[j]
		for i := 0; i < n; i++ {
			sortedVecs[i*n+k] = v[i*n+j]
		}
	}
	return sortedVals, sortedVecs, nil
}

func offDiagNorm(n int, a []complex128) float64 {
	var s float64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			s += cmplx.Abs(a[i*n+j])
		}
	}
	return s
}

func diagNorm(n int, a []complex128) float64 {
	var s float64
	for i := 0; i < n; i++ {
		s += math.Abs(real(a[i*n+i]))
	}
	return s
}

// rotate zeroes the (p, q) entry of the Hermitian matrix a with the unitary
// U = diag(e^{iφ}, 1)·R(θ), where φ is the phase of a[p][q] and θ the
// classical Jacobi angle of the phase-stripped real 2×2 block. v accumulates
// the product of rotations (v ← v·U on columns p, q).
func rotate(n int, a, v []complex128, p, q int) {
	apq := a[p*n+q]
	g := cmplx.Abs(apq)
	if g < 1e-300 {
		return
	}
	phase := apq / complex(g, 0) // e^{iφ}
	app := real(a[p*n+p])
	aqq := real(a[q*n+q])

	// Real Jacobi angle for [[app, g], [g, aqq]] (Numerical Recipes form):
	// τ = cot 2θ, t = tan θ the smaller root of t² + 2τt − 1 = 0.
	var t float64
	if diff := aqq - app; diff == 0 {
		t = 1
	} else {
		tau := diff / (2 * g)
		t = math.Copysign(1, tau) / (math.Abs(tau) + math.Sqrt(1+tau*tau))
	}
	c := 1 / math.Sqrt(1+t*t)
	s := t * c

	// U = D·R with D = diag(e^{iφ}, 1) and R the real rotation
	// [[c, s], [−s, c]] on the (p, q) plane:
	// U[p][p] = c·e^{iφ}, U[p][q] = s·e^{iφ}, U[q][p] = −s, U[q][q] = c.
	upp := complex(c, 0) * phase
	upq := complex(s, 0) * phase
	uqp := complex(-s, 0)
	uqq := complex(c, 0)

	// Column update: A ← A·U touches columns p and q.
	for i := 0; i < n; i++ {
		aip := a[i*n+p]
		aiq := a[i*n+q]
		a[i*n+p] = aip*upp + aiq*uqp
		a[i*n+q] = aip*upq + aiq*uqq
	}
	// Row update: A ← Uᴴ·A touches rows p and q.
	cupp := cmplx.Conj(upp)
	cupq := cmplx.Conj(upq)
	cuqp := cmplx.Conj(uqp)
	cuqq := cmplx.Conj(uqq)
	for j := 0; j < n; j++ {
		apj := a[p*n+j]
		aqj := a[q*n+j]
		a[p*n+j] = cupp*apj + cuqp*aqj
		a[q*n+j] = cupq*apj + cuqq*aqj
	}
	// Clean up rounding on the eliminated pair and enforce Hermitian form.
	a[p*n+q] = 0
	a[q*n+p] = 0
	a[p*n+p] = complex(real(a[p*n+p]), 0)
	a[q*n+q] = complex(real(a[q*n+q]), 0)

	// Accumulate eigenvectors: V ← V·U.
	for i := 0; i < n; i++ {
		vip := v[i*n+p]
		viq := v[i*n+q]
		v[i*n+p] = vip*upp + viq*uqp
		v[i*n+q] = vip*upq + viq*uqq
	}
}
