package optics

import (
	"math"
	"math/cmplx"
)

// Small aliases keep the source/pupil formulas readable.
const pi = math.Pi

func cos(x float64) float64 { return math.Cos(x) }
func sin(x float64) float64 { return math.Sin(x) }

// Pupil evaluates the projection-lens pupil function at spatial frequency
// (fx, fy) in nm⁻¹ for the given defocus (nm). Inside the numerical aperture
// the transmission is 1 with a paraxial defocus phase
//
//	φ(f) = −π · λ · δ · |f|²,
//
// the standard quadratic approximation of the defocus aberration; outside
// the aperture the pupil is opaque.
func Pupil(c Config, fx, fy, defocusNM float64) complex128 {
	f2 := fx*fx + fy*fy
	fc := c.NA / c.WavelengthNM
	if f2 > fc*fc {
		return 0
	}
	if defocusNM == 0 {
		return 1
	}
	return cmplx.Exp(complex(0, -pi*c.WavelengthNM*defocusNM*f2))
}

// pupilTable samples the pupil on the padded frequency grid needed by the
// TCC assembly: indices cover f + f_s for f in the kernel support and f_s in
// the source, i.e. signed frequencies within ±(h·Δf + maxSourceF).
type pupilTable struct {
	half int // table covers signed index −half..half
	step float64
	vals []complex128
}

func buildPupilTable(c Config, defocusNM float64, extraF float64) *pupilTable {
	step := c.FreqStep()
	half := c.kernelHalf() + int(math.Ceil(extraF/step)) + 1
	t := &pupilTable{half: half, step: step, vals: make([]complex128, (2*half+1)*(2*half+1))}
	for iy := -half; iy <= half; iy++ {
		for ix := -half; ix <= half; ix++ {
			t.vals[(iy+half)*(2*half+1)+ix+half] =
				Pupil(c, float64(ix)*step, float64(iy)*step, defocusNM)
		}
	}
	return t
}

// at evaluates the pupil at grid frequency (ix, iy) offset by a continuous
// source frequency (sfx, sfy). The source offset is rounded to the grid —
// the discretisation error is below the source-sampling error itself.
func (t *pupilTable) at(ix, iy int, sfx, sfy float64) complex128 {
	jx := ix + int(math.Round(sfx/t.step))
	jy := iy + int(math.Round(sfy/t.step))
	if jx < -t.half || jx > t.half || jy < -t.half || jy > t.half {
		return 0
	}
	return t.vals[(jy+t.half)*(2*t.half+1)+jx+t.half]
}
