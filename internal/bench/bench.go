// Package bench generates the synthetic benchmark suites that stand in for
// the ICCAD 2013 contest layouts (M1 cases 1–10), the ten denser extended
// cases released with Neural-ILT (cases 11–20), and the via-layer patterns
// of Section IV-C. The contest files are not redistributable, so each case
// is produced by a deterministic generator whose target area matches the
// paper's per-case "Area" column (scaled by (N/2048)² on reduced grids) and
// whose feature widths/spacings follow 32 nm-node M1 conventions.
package bench

import (
	"fmt"
	"math/rand"

	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/layout"
)

// PaperFieldNM is the paper's physical tile size (2048 nm at 1 nm/px).
// Suites generated for smaller fields scale the per-case area targets by
// (field/2048)², i.e. they behave like crops of the paper tiles.
const PaperFieldNM = 2048.0

// PaperM1Areas are the "Area (nm²)" values of Table II, cases 1–10.
var PaperM1Areas = []float64{
	215344, 169280, 213504, 82560, 281958,
	286234, 229149, 128544, 317581, 102400,
}

// PaperExtendedAreas are the "Area (nm²)" values of Table IV, cases 11–20.
var PaperExtendedAreas = []float64{
	494560, 448496, 492720, 361776, 561174,
	565450, 445365, 407760, 596797, 381616,
}

// Case is one benchmark target.
type Case struct {
	Name    string
	Index   int // 1-based paper case number
	N       int
	PixelNM float64
	Target  *grid.Mat
	Layout  *layout.Layout
	// PaperAreaNM2 is the paper's reported area; AreaNM2 is what the
	// generator actually placed (within tolerance of the former).
	PaperAreaNM2 float64
	AreaNM2      float64
}

// genParams holds the feature-scale knobs of the generator, in nm.
type genParams struct {
	minW, maxW     float64 // bar widths
	minL, maxL     float64 // bar lengths
	spacing        float64 // minimum feature-to-feature spacing
	margin         float64 // keep-out border around the tile
	lShapeFraction float64
}

// PaperCase generates the single case with the given paper index (1–10 =
// Table II M1 cases, 11–20 = Table IV extended cases) without building the
// whole suite.
func PaperCase(n int, fieldNM float64, index int) (Case, error) {
	switch {
	case index >= 1 && index <= 10:
		return M1Case(n, fieldNM, index, PaperM1Areas[index-1], m1Params())
	case index >= 11 && index <= 20:
		return M1Case(n, fieldNM, index, PaperExtendedAreas[index-11], extendedParams())
	default:
		return Case{}, fmt.Errorf("bench: no paper case %d", index)
	}
}

func m1Params() genParams {
	return genParams{
		minW: 45, maxW: 90,
		minL: 140, maxL: 520,
		spacing: 70, margin: 360,
		lShapeFraction: 0.3,
	}
}

func extendedParams() genParams {
	p := m1Params()
	p.spacing = 60
	p.margin = 280
	p.maxL = 640
	return p
}

// M1Suite generates the ten ICCAD-2013-like M1 cases on an N×N grid over
// the given physical field.
func M1Suite(n int, fieldNM float64) ([]Case, error) {
	return suite(n, fieldNM, "case", 1, PaperM1Areas, m1Params())
}

// ExtendedSuite generates the ten denser cases 11–20 of Table IV.
func ExtendedSuite(n int, fieldNM float64) ([]Case, error) {
	return suite(n, fieldNM, "case", 11, PaperExtendedAreas, extendedParams())
}

func suite(n int, fieldNM float64, prefix string, firstIdx int, areas []float64, p genParams) ([]Case, error) {
	cases := make([]Case, 0, len(areas))
	for i, area := range areas {
		idx := firstIdx + i
		c, err := M1Case(n, fieldNM, idx, area, p)
		if err != nil {
			return nil, fmt.Errorf("bench: %s%d: %w", prefix, idx, err)
		}
		cases = append(cases, c)
	}
	return cases, nil
}

// M1Case generates one M1-like case with the given paper area target; the
// target is scaled by (fieldNM/2048)² so smaller fields act as crops.
func M1Case(n int, fieldNM float64, index int, paperAreaNM2 float64, p genParams) (Case, error) {
	if n < 64 || n&(n-1) != 0 {
		return Case{}, fmt.Errorf("grid size %d must be a power of two ≥ 64", n)
	}
	if fieldNM <= 0 {
		return Case{}, fmt.Errorf("field %g must be positive", fieldNM)
	}
	crop := fieldNM / PaperFieldNM
	paperAreaNM2 *= crop * crop
	// Crops shrink the keep-out border and the longest bars proportionally;
	// minimum feature sizes stay physical.
	p.margin *= crop
	if scaled := p.maxL * crop; scaled > p.minL*1.4 {
		p.maxL = scaled
	} else {
		p.maxL = p.minL * 1.4
	}
	pixel := fieldNM / float64(n)
	toPx := func(nm float64) int {
		v := int(nm/pixel + 0.5)
		if v < 1 {
			v = 1
		}
		return v
	}
	targetPx := paperAreaNM2 / (pixel * pixel)

	rng := rand.New(rand.NewSource(int64(7919*index + 13)))
	target := grid.NewMat(n, n)
	blocked := grid.NewMat(n, n) // target dilated by spacing, incrementally
	lay := layout.New(n, pixel)

	spacingPx := toPx(p.spacing)
	marginPx := toPx(p.margin)
	if 2*marginPx >= n-4 {
		marginPx = n/8 + 1
	}
	minWPx, maxWPx := toPx(p.minW), toPx(p.maxW)
	minLPx, maxLPx := toPx(p.minL), toPx(p.maxL)
	if maxWPx < minWPx+1 {
		maxWPx = minWPx + 1
	}
	if maxLPx < minLPx+1 {
		maxLPx = minLPx + 1
	}

	placed := 0.0
	minShape := float64(minWPx * minLPx)
	const maxAttempts = 20000
	for attempt := 0; attempt < maxAttempts && targetPx-placed > 0.6*minShape; attempt++ {
		rects := proposeShape(rng, p, n, marginPx, minWPx, maxWPx, minLPx, maxLPx)
		if rects == nil {
			continue
		}
		var shapeArea float64
		for _, r := range rects {
			shapeArea += float64(r.Area())
		}
		// Reject draws that would overshoot the paper area badly; a smaller
		// draw will come along.
		if placed+shapeArea > targetPx+0.4*minShape {
			continue
		}
		if !free(blocked, rects) {
			continue
		}
		for _, r := range rects {
			geom.FillRect(target, r, 1)
			geom.FillRect(blocked, geom.Rect{
				X0: r.X0 - spacingPx, Y0: r.Y0 - spacingPx,
				X1: r.X1 + spacingPx, Y1: r.Y1 + spacingPx,
			}, 1)
			lay.AddRect(r)
		}
		placed += shapeArea
	}
	placed = target.Sum()
	if placed < 0.5*targetPx {
		return Case{}, fmt.Errorf("could only place %.0f of %.0f px² (grid too small for the area target)", placed, targetPx)
	}
	return Case{
		Name:         fmt.Sprintf("case%d", index),
		Index:        index,
		N:            n,
		PixelNM:      pixel,
		Target:       target,
		Layout:       lay,
		PaperAreaNM2: paperAreaNM2,
		AreaNM2:      placed * pixel * pixel,
	}, nil
}

// proposeShape draws a random bar or L-shape as a list of rectangles inside
// the usable region, or nil if the draw degenerates.
func proposeShape(rng *rand.Rand, p genParams, n, margin, minW, maxW, minL, maxL int) []geom.Rect {
	w := minW + rng.Intn(maxW-minW)
	l := minL + rng.Intn(maxL-minL)
	lo, hi := margin, n-margin
	if hi-lo < l+2 {
		l = (hi - lo) / 2
		if l <= w {
			return nil
		}
	}
	horizontal := rng.Intn(2) == 0
	x0 := lo + rng.Intn(hi-lo-l)
	y0 := lo + rng.Intn(hi-lo-w)
	var main geom.Rect
	if horizontal {
		main = geom.Rect{X0: x0, Y0: y0, X1: x0 + l, Y1: y0 + w}
	} else {
		main = geom.Rect{X0: y0, Y0: x0, X1: y0 + w, Y1: x0 + l}
	}
	rects := []geom.Rect{main}
	if rng.Float64() < p.lShapeFraction {
		// Attach a perpendicular leg at one end, forming an L.
		legL := minL/2 + rng.Intn(maxL/3+1)
		var leg geom.Rect
		if horizontal {
			lx := main.X0
			if rng.Intn(2) == 0 {
				lx = main.X1 - w
			}
			if rng.Intn(2) == 0 {
				leg = geom.Rect{X0: lx, Y0: main.Y1, X1: lx + w, Y1: main.Y1 + legL}
			} else {
				leg = geom.Rect{X0: lx, Y0: main.Y0 - legL, X1: lx + w, Y1: main.Y0}
			}
		} else {
			ly := main.Y0
			if rng.Intn(2) == 0 {
				ly = main.Y1 - w
			}
			if rng.Intn(2) == 0 {
				leg = geom.Rect{X0: main.X1, Y0: ly, X1: main.X1 + legL, Y1: ly + w}
			} else {
				leg = geom.Rect{X0: main.X0 - legL, Y0: ly, X1: main.X0, Y1: ly + w}
			}
		}
		if leg.X0 >= margin && leg.Y0 >= margin && leg.X1 <= n-margin && leg.Y1 <= n-margin {
			rects = append(rects, leg)
		}
	}
	return rects
}

// free reports whether every rect avoids previously placed geometry; the
// required spacing is already baked into blocked (placements dilate).
func free(blocked *grid.Mat, rects []geom.Rect) bool {
	for _, r := range rects {
		q := geom.Rect{X0: r.X0, Y0: r.Y0, X1: r.X1, Y1: r.Y1}.
			Intersect(geom.Rect{X0: 0, Y0: 0, X1: blocked.W, Y1: blocked.H})
		if q.Empty() {
			return false
		}
		for y := q.Y0; y < q.Y1; y++ {
			for x := q.X0; x < q.X1; x++ {
				if blocked.At(x, y) >= 0.5 {
					return false
				}
			}
		}
	}
	return true
}

// ViaCase generates one via-layer case: count isolated contacts of
// 55–75 nm side with generous spacing, as in the dataset of [14] (at this
// λ/NA an isolated contact needs ≈70 nm of mask CD to reach the print
// threshold, matching 32 nm-node via layers).
func ViaCase(n int, fieldNM float64, index, count int) (Case, error) {
	if n < 64 || n&(n-1) != 0 {
		return Case{}, fmt.Errorf("bench: grid size %d must be a power of two ≥ 64", n)
	}
	if fieldNM <= 0 {
		return Case{}, fmt.Errorf("bench: field %g must be positive", fieldNM)
	}
	if count < 1 {
		return Case{}, fmt.Errorf("bench: via count %d must be ≥ 1", count)
	}
	pixel := fieldNM / float64(n)
	rng := rand.New(rand.NewSource(int64(104729*index + 7)))
	target := grid.NewMat(n, n)
	blocked := grid.NewMat(n, n)
	lay := layout.New(n, pixel)

	toPx := func(nm float64) int {
		v := int(nm/pixel + 0.5)
		if v < 1 {
			v = 1
		}
		return v
	}
	// Spacing/margin shrink with cropped fields like the M1 generator.
	crop := fieldNM / PaperFieldNM
	spacing := toPx(220 * crop)
	if spacing < toPx(90) {
		spacing = toPx(90)
	}
	margin := toPx(300 * crop)
	if 2*margin >= n-4 {
		margin = n/8 + 1
	}
	placedCount := 0
	for attempt := 0; attempt < 20000 && placedCount < count; attempt++ {
		side := toPx(55 + 20*rng.Float64())
		lo, hi := margin, n-margin-side
		if hi <= lo {
			break
		}
		x0 := lo + rng.Intn(hi-lo)
		y0 := lo + rng.Intn(hi-lo)
		r := geom.Rect{X0: x0, Y0: y0, X1: x0 + side, Y1: y0 + side}
		if !free(blocked, []geom.Rect{r}) {
			continue
		}
		geom.FillRect(target, r, 1)
		geom.FillRect(blocked, geom.Rect{
			X0: r.X0 - spacing, Y0: r.Y0 - spacing,
			X1: r.X1 + spacing, Y1: r.Y1 + spacing,
		}, 1)
		lay.AddRect(r)
		placedCount++
	}
	if placedCount == 0 {
		return Case{}, fmt.Errorf("bench: could not place any vias on a %d grid", n)
	}
	area := target.Sum()
	return Case{
		Name:         fmt.Sprintf("via%d", index),
		Index:        index,
		N:            n,
		PixelNM:      pixel,
		Target:       target,
		Layout:       lay,
		PaperAreaNM2: 0,
		AreaNM2:      area * pixel * pixel,
	}, nil
}

// ViaSuite generates the requested number of via cases with a spread of
// via counts, mirroring the "fifteen randomly chosen via patterns".
func ViaSuite(n int, fieldNM float64, cases int) ([]Case, error) {
	out := make([]Case, 0, cases)
	for i := 0; i < cases; i++ {
		c, err := ViaCase(n, fieldNM, i+1, 6+(i%5)*3)
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	return out, nil
}
