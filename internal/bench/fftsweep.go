package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/litho"
	"repro/internal/optics"
	"repro/internal/telemetry"
)

// FFT-engine sweep: the repo-level BENCH_FFT.json artifact tracks the
// band-pruning speedup of the forward simulation across PRs. For each grid
// size the sweep times one exact forward simulation (Eq. 3) per FFT engine
// at a fixed worker count of 1 — the single-threaded column is what the
// pruning claim is about, and it is comparable across hosts with different
// core counts. Speedups are relative to the reference (dense) engine of the
// same run.

// FFTPoint is one grid size's measurement (seconds per forward simulation).
type FFTPoint struct {
	M               int     `json:"m"`
	ReferenceSec    float64 `json:"reference_sec"`    // dense forward + dense inverses
	BandInverseSec  float64 `json:"band_inverse_sec"` // dense forward + pruned inverses
	BandSec         float64 `json:"band_sec"`         // packed forward + pruned inverses
	BatchedSec      float64 `json:"batched_sec"`      // packed forward + fused batched inverse
	BandInverseGain float64 `json:"band_inverse_speedup"`
	BandGain        float64 `json:"band_speedup"`
	BatchedGain     float64 `json:"batched_speedup"`
}

// FFTSweep is the serializable sweep report.
type FFTSweep struct {
	FieldNM float64 `json:"field_nm"`
	Kernels int     `json:"kernels"`
	P       int     `json:"p"` // kernel support: the band is P×P
	Reps    int     `json:"reps"`
	Workers int     `json:"workers"`
	// Host context, in the run-manifest host schema (self-describing
	// trajectory file, like BENCH_WORKERS.json).
	NumCPU     int                `json:"num_cpu"`
	GOMAXPROCS int                `json:"gomaxprocs"`
	Host       telemetry.HostInfo `json:"host"`
	Points     []FFTPoint         `json:"points"`
}

// RunFFTSweep measures the forward-simulation cost of each FFT engine at
// the given grid sizes (reps timed runs after one warm-up each).
func RunFFTSweep(sizes []int, fieldNM float64, kernels, reps int) (*FFTSweep, error) {
	if reps < 1 {
		reps = 1
	}
	if len(sizes) == 0 {
		sizes = []int{256, 512, 1024}
	}
	oc := optics.Default()
	oc.FieldNM = fieldNM
	oc.NumKernels = kernels
	model, err := optics.BuildModel(oc)
	if err != nil {
		return nil, err
	}
	sweep := &FFTSweep{
		FieldNM: fieldNM, Kernels: len(model.Nominal.Kernels), P: model.Nominal.P,
		Reps: reps, Workers: 1,
		NumCPU: runtime.NumCPU(), GOMAXPROCS: runtime.GOMAXPROCS(0),
		Host: telemetry.Host(),
	}
	engines := []litho.FFTEngine{litho.EngineReference, litho.EngineBandInverse, litho.EngineBand, litho.EngineBatch}
	for _, m := range sizes {
		cs, err := M1Case(m, fieldNM, 1, PaperM1Areas[0], m1Params())
		if err != nil {
			return nil, err
		}
		mask := cs.Target
		var secs [4]float64
		for i, e := range engines {
			sim := litho.NewSim(model)
			sim.Workers = 1
			sim.Engine = e
			// Warm-up builds the plan, band tables and scratch pools.
			if _, err := sim.Forward(mask, model.Nominal, 1, false); err != nil {
				return nil, err
			}
			start := time.Now()
			for r := 0; r < reps; r++ {
				if _, err := sim.Forward(mask, model.Nominal, 1, false); err != nil {
					return nil, err
				}
			}
			secs[i] = time.Since(start).Seconds() / float64(reps)
		}
		pt := FFTPoint{M: m, ReferenceSec: secs[0], BandInverseSec: secs[1], BandSec: secs[2], BatchedSec: secs[3]}
		if pt.BandInverseSec > 0 {
			pt.BandInverseGain = pt.ReferenceSec / pt.BandInverseSec
		}
		if pt.BandSec > 0 {
			pt.BandGain = pt.ReferenceSec / pt.BandSec
		}
		if pt.BatchedSec > 0 {
			pt.BatchedGain = pt.ReferenceSec / pt.BatchedSec
		}
		sweep.Points = append(sweep.Points, pt)
	}
	return sweep, nil
}

// WriteJSON writes the sweep report (indented, trailing newline) to path.
func (s *FFTSweep) WriteJSON(path string) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// WriteBenchstat writes the sweep in Go benchmark format so two runs can be
// diffed with benchstat (Makefile target bench-compare). One line per
// (size, engine) pair.
func (s *FFTSweep) WriteBenchstat(path string) error {
	var b strings.Builder
	fmt.Fprintf(&b, "goos: %s\ngoarch: %s\ncpu: %s\n", runtime.GOOS, runtime.GOARCH, s.Host.CPUModel)
	for _, p := range s.Points {
		for _, ec := range []struct {
			name string
			sec  float64
		}{
			{"reference", p.ReferenceSec},
			{"band-inverse", p.BandInverseSec},
			{"band", p.BandSec},
			{"batch", p.BatchedSec},
		} {
			fmt.Fprintf(&b, "BenchmarkForward/m=%d/kernels=%d/engine=%s 1 %.0f ns/op\n",
				p.M, s.Kernels, ec.name, ec.sec*1e9)
		}
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

// CompareFFTSweeps renders a per-size old-vs-new delta table for two sweep
// reports (the benchstat-free fallback of make bench-compare). Sizes present
// in only one report are skipped.
func CompareFFTSweeps(old, new *FFTSweep) string {
	oldAt := map[int]FFTPoint{}
	for _, p := range old.Points {
		oldAt[p.M] = p
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s  %-14s  %-12s  %-12s  %s\n", "m", "engine", "old", "new", "delta")
	for _, np := range new.Points {
		op, ok := oldAt[np.M]
		if !ok {
			continue
		}
		row := func(name string, o, n float64) {
			delta := "n/a"
			if o > 0 && n > 0 {
				delta = fmt.Sprintf("%+.1f%%", (n/o-1)*100)
			}
			fmt.Fprintf(&b, "%-6d  %-14s  %10.4fs  %10.4fs  %s\n", np.M, name, o, n, delta)
		}
		row("reference", op.ReferenceSec, np.ReferenceSec)
		row("band-inverse", op.BandInverseSec, np.BandInverseSec)
		row("band", op.BandSec, np.BandSec)
		row("batch", op.BatchedSec, np.BatchedSec)
	}
	return b.String()
}

// GateFFTSweeps is the bench-compare regression gate: it fails when any
// engine at any size shared by both reports slowed down by more than
// maxRegressPct percent. Engines missing from the baseline (zero seconds,
// e.g. batched columns predating PR 8) are skipped, so the gate stays
// usable across trajectory-schema growth. The threshold should be generous
// — single-rep timings on shared CI hosts are noisy — its job is catching
// catastrophic regressions (a pruning or fusion path silently disabled),
// not single-digit drift.
func GateFFTSweeps(old, new *FFTSweep, maxRegressPct float64) error {
	oldAt := map[int]FFTPoint{}
	for _, p := range old.Points {
		oldAt[p.M] = p
	}
	var fails []string
	for _, np := range new.Points {
		op, ok := oldAt[np.M]
		if !ok {
			continue
		}
		check := func(name string, o, n float64) {
			if o <= 0 || n <= 0 {
				return
			}
			if pct := (n/o - 1) * 100; pct > maxRegressPct {
				fails = append(fails, fmt.Sprintf("m=%d %s %+.1f%% (%.4fs → %.4fs)", np.M, name, pct, o, n))
			}
		}
		check("reference", op.ReferenceSec, np.ReferenceSec)
		check("band-inverse", op.BandInverseSec, np.BandInverseSec)
		check("band", op.BandSec, np.BandSec)
		check("batch", op.BatchedSec, np.BatchedSec)
	}
	if len(fails) > 0 {
		return fmt.Errorf("bench: regression gate (>%g%%) failed:\n  %s", maxRegressPct, strings.Join(fails, "\n  "))
	}
	return nil
}

// LoadFFTSweep reads a sweep report written by WriteJSON.
func LoadFFTSweep(path string) (*FFTSweep, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s FFTSweep
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("bench: parse %s: %w", path, err)
	}
	return &s, nil
}
