package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestRunWorkersSweep(t *testing.T) {
	s, err := RunWorkersSweep(128, 512, 4, 1, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != 2 {
		t.Fatalf("%d sweep points, want 2", len(s.Points))
	}
	if s.N != 128 || s.Kernels < 1 || s.NumCPU < 1 {
		t.Errorf("sweep metadata incomplete: %+v", s)
	}
	for _, p := range s.Points {
		if p.ForwardSec <= 0 || p.GradientSec <= 0 {
			t.Errorf("workers=%d: non-positive timings %+v", p.Workers, p)
		}
		if p.ForwardSpeedup <= 0 || p.GradientSpeedup <= 0 {
			t.Errorf("workers=%d: speedups not computed %+v", p.Workers, p)
		}
	}
	// The workers=1 baseline must have speedup exactly 1.
	if s.Points[0].Workers != 1 || s.Points[0].ForwardSpeedup != 1 {
		t.Errorf("baseline point wrong: %+v", s.Points[0])
	}

	path := filepath.Join(t.TempDir(), "sweep.json")
	if err := s.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back WorkersSweep
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("written JSON does not round-trip: %v", err)
	}
	if len(back.Points) != 2 || back.N != 128 {
		t.Errorf("round-tripped sweep lost data: %+v", back)
	}
}

func TestRunWorkersSweepRejectsBadWorkers(t *testing.T) {
	if _, err := RunWorkersSweep(128, 512, 4, 1, []int{0}); err == nil {
		t.Error("worker count 0 accepted")
	}
}
