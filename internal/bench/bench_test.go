package bench

import (
	"math"
	"testing"

	"repro/internal/geom"
)

func TestM1SuiteAreasTrackPaper(t *testing.T) {
	cases, err := M1Suite(512, 2048)
	if err != nil {
		t.Fatal(err)
	}
	if len(cases) != 10 {
		t.Fatalf("%d cases, want 10", len(cases))
	}
	for _, c := range cases {
		if c.Target.W != 512 || c.PixelNM != 4 {
			t.Fatalf("%s: size %d pixel %g", c.Name, c.Target.W, c.PixelNM)
		}
		rel := math.Abs(c.AreaNM2-c.PaperAreaNM2) / c.PaperAreaNM2
		if rel > 0.20 {
			t.Errorf("%s: generated area %.0f vs paper %.0f (%.0f%% off)",
				c.Name, c.AreaNM2, c.PaperAreaNM2, rel*100)
		}
	}
}

func TestM1SuiteDeterministic(t *testing.T) {
	a, err := M1Suite(256, 2048)
	if err != nil {
		t.Fatal(err)
	}
	b, err := M1Suite(256, 2048)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if !a[i].Target.Equal(b[i].Target, 0) {
			t.Fatalf("%s not deterministic", a[i].Name)
		}
	}
}

func TestM1CasesDiffer(t *testing.T) {
	cases, err := M1Suite(256, 2048)
	if err != nil {
		t.Fatal(err)
	}
	if cases[0].Target.Equal(cases[1].Target, 0) {
		t.Error("case1 and case2 are identical")
	}
}

func TestM1ShapesRespectSpacing(t *testing.T) {
	cases, err := M1Suite(512, 2048)
	if err != nil {
		t.Fatal(err)
	}
	c := cases[0]
	// Components must stay separated: dilating by half the spacing must
	// not reduce the component count (no near-touching shapes merge).
	before := len(geom.Components(c.Target))
	spacingPx := int(70 / c.PixelNM) // generator spacing in px
	dil := geom.DilateBox(c.Target, spacingPx/2-1)
	after := len(geom.Components(dil))
	if before == 0 {
		t.Fatal("no components generated")
	}
	if after < before {
		t.Errorf("components merged under half-spacing dilation: %d → %d", before, after)
	}
}

func TestExtendedSuiteDenser(t *testing.T) {
	m1, err := M1Suite(256, 2048)
	if err != nil {
		t.Fatal(err)
	}
	ext, err := ExtendedSuite(256, 2048)
	if err != nil {
		t.Fatal(err)
	}
	if len(ext) != 10 {
		t.Fatalf("%d extended cases", len(ext))
	}
	if ext[0].Index != 11 || ext[9].Index != 20 {
		t.Errorf("extended indices %d..%d", ext[0].Index, ext[9].Index)
	}
	var m1Area, extArea float64
	for i := range m1 {
		m1Area += m1[i].Target.Sum()
		extArea += ext[i].Target.Sum()
	}
	if extArea <= m1Area {
		t.Errorf("extended suite not denser: %v vs %v px²", extArea, m1Area)
	}
}

func TestLayoutMatchesTarget(t *testing.T) {
	cases, err := M1Suite(256, 2048)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cases[:3] {
		m, err := c.Layout.Rasterize()
		if err != nil {
			t.Fatal(err)
		}
		if !m.Equal(c.Target, 0) {
			t.Errorf("%s: layout rasterization differs from target", c.Name)
		}
	}
}

func TestM1CaseRejectsBadGrid(t *testing.T) {
	if _, err := M1Case(100, 2048, 1, 215344, m1Params()); err == nil {
		t.Error("non-power-of-two grid accepted")
	}
	if _, err := M1Case(32, 2048, 1, 215344, m1Params()); err == nil {
		t.Error("tiny grid accepted")
	}
}

func TestViaSuite(t *testing.T) {
	cases, err := ViaSuite(256, 2048, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(cases) != 5 {
		t.Fatalf("%d via cases", len(cases))
	}
	for _, c := range cases {
		comps := geom.Components(c.Target)
		if len(comps) == 0 {
			t.Fatalf("%s: no vias placed", c.Name)
		}
		for _, comp := range comps {
			// Vias are small squares: bbox area ≈ component area, and
			// both dimensions below 90 nm.
			if comp.Area != comp.BBox.Area() {
				t.Errorf("%s: via not rectangular", c.Name)
			}
			if float64(comp.BBox.W())*c.PixelNM > 90 {
				t.Errorf("%s: via too wide: %d px", c.Name, comp.BBox.W())
			}
		}
	}
	// Different cases have different via counts (the suite varies count).
	c0 := len(geom.Components(cases[0].Target))
	c4 := len(geom.Components(cases[4].Target))
	if c0 == c4 {
		t.Error("via counts identical across suite")
	}
}

func TestViaCaseValidation(t *testing.T) {
	if _, err := ViaCase(256, 2048, 1, 0); err == nil {
		t.Error("zero via count accepted")
	}
	if _, err := ViaCase(48, 2048, 1, 3); err == nil {
		t.Error("bad grid accepted")
	}
}
