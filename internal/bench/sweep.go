package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/litho"
	"repro/internal/optics"
	"repro/internal/telemetry"
)

// Workers sweep: the repo-level BENCH_WORKERS.json artifact tracks the
// speedup curve of the parallel SOCS loops across PRs. The sweep times the
// exact forward simulation (Eq. 3) and the adjoint pass on one synthetic M1
// clip for a list of worker counts; per-point speedups are relative to the
// workers = 1 column of the same run, so the curve is comparable across
// hosts even though absolute times are not.

// SweepPoint is one worker count's measurement.
type SweepPoint struct {
	Workers         int     `json:"workers"`
	ForwardSec      float64 `json:"forward_sec"`  // seconds per forward simulation
	GradientSec     float64 `json:"gradient_sec"` // seconds per adjoint pass
	ForwardSpeedup  float64 `json:"forward_speedup"`
	GradientSpeedup float64 `json:"gradient_speedup"`
}

// WorkersSweep is the serializable sweep report.
type WorkersSweep struct {
	// Case geometry: an N² clip of the synthetic M1 case 1 over FieldNM.
	N       int     `json:"n"`
	FieldNM float64 `json:"field_nm"`
	Kernels int     `json:"kernels"`
	Reps    int     `json:"reps"`
	// Host context: speedups above NumCPU are not expected. NumCPU and
	// GOMAXPROCS predate the Host block and are kept for artifact
	// compatibility; Host is the run-manifest host schema, making the
	// trajectory file self-describing across machines.
	NumCPU     int                `json:"num_cpu"`
	GOMAXPROCS int                `json:"gomaxprocs"`
	Host       telemetry.HostInfo `json:"host"`
	Points     []SweepPoint       `json:"points"`
}

// RunWorkersSweep measures the forward/adjoint cost of the given clip size
// for each worker count (reps timed runs after one warm-up each).
func RunWorkersSweep(n int, fieldNM float64, kernels, reps int, workersList []int) (*WorkersSweep, error) {
	if reps < 1 {
		reps = 1
	}
	if len(workersList) == 0 {
		workersList = []int{1, 2, 4, 8}
	}
	oc := optics.Default()
	oc.FieldNM = fieldNM
	oc.NumKernels = kernels
	model, err := optics.BuildModel(oc)
	if err != nil {
		return nil, err
	}
	cs, err := M1Case(n, fieldNM, 1, PaperM1Areas[0], m1Params())
	if err != nil {
		return nil, err
	}
	mask := cs.Target
	dLdI := mask.Clone() // any dense adjoint seed works; shape is what matters

	sweep := &WorkersSweep{
		N: n, FieldNM: fieldNM, Kernels: len(model.Nominal.Kernels), Reps: reps,
		NumCPU: runtime.NumCPU(), GOMAXPROCS: runtime.GOMAXPROCS(0),
		Host: telemetry.Host(),
	}
	for _, w := range workersList {
		if w < 1 {
			return nil, fmt.Errorf("bench: sweep worker count %d must be ≥ 1", w)
		}
		sim := litho.NewSim(model)
		sim.Workers = w

		// Forward (Eq. 3): warm-up builds the plan and the scratch pools.
		f, err := sim.Forward(mask, model.Nominal, 1, false)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		for r := 0; r < reps; r++ {
			if f, err = sim.Forward(mask, model.Nominal, 1, false); err != nil {
				return nil, err
			}
		}
		fwd := time.Since(start).Seconds() / float64(reps)

		// Adjoint on the recompute path (the optimizer's large-grid mode).
		if _, err := sim.Gradient(f, dLdI); err != nil {
			return nil, err
		}
		start = time.Now()
		for r := 0; r < reps; r++ {
			if _, err := sim.Gradient(f, dLdI); err != nil {
				return nil, err
			}
		}
		grad := time.Since(start).Seconds() / float64(reps)

		sweep.Points = append(sweep.Points, SweepPoint{Workers: w, ForwardSec: fwd, GradientSec: grad})
	}
	// Speedups vs the workers = 1 point of this run (first point with w == 1,
	// else the first point).
	base := sweep.Points[0]
	for _, p := range sweep.Points {
		if p.Workers == 1 {
			base = p
			break
		}
	}
	for i := range sweep.Points {
		if sweep.Points[i].ForwardSec > 0 {
			sweep.Points[i].ForwardSpeedup = base.ForwardSec / sweep.Points[i].ForwardSec
		}
		if sweep.Points[i].GradientSec > 0 {
			sweep.Points[i].GradientSpeedup = base.GradientSec / sweep.Points[i].GradientSec
		}
	}
	return sweep, nil
}

// WriteJSON writes the sweep report (indented, trailing newline) to path.
func (s *WorkersSweep) WriteJSON(path string) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
