package bench

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunFFTSweep(t *testing.T) {
	s, err := RunFFTSweep([]int{64, 128}, 512, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != 2 || s.Kernels < 1 || s.P < 3 || s.Workers != 1 {
		t.Fatalf("sweep metadata incomplete: %+v", s)
	}
	for _, p := range s.Points {
		if p.ReferenceSec <= 0 || p.BandInverseSec <= 0 || p.BandSec <= 0 || p.BatchedSec <= 0 {
			t.Errorf("m=%d: non-positive timings %+v", p.M, p)
		}
		if p.BandInverseGain <= 0 || p.BandGain <= 0 || p.BatchedGain <= 0 {
			t.Errorf("m=%d: speedups not computed %+v", p.M, p)
		}
	}

	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "fft.json")
	if err := s.WriteJSON(jsonPath); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFFTSweep(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Points) != 2 || back.P != s.P {
		t.Errorf("round-tripped sweep lost data: %+v", back)
	}

	txtPath := filepath.Join(dir, "fft.txt")
	if err := s.WriteBenchstat(txtPath); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(txtPath)
	if err != nil {
		t.Fatal(err)
	}
	txt := string(raw)
	// One benchmark line per (size, engine) pair, benchstat-parseable.
	if got := strings.Count(txt, "BenchmarkForward/"); got != 8 {
		t.Errorf("%d benchmark lines, want 8:\n%s", got, txt)
	}
	if !strings.Contains(txt, "engine=band ") || !strings.Contains(txt, "ns/op") {
		t.Errorf("benchstat format missing fields:\n%s", txt)
	}

	diff := CompareFFTSweeps(back, s)
	if !strings.Contains(diff, "reference") || !strings.Contains(diff, "%") {
		t.Errorf("compare table incomplete:\n%s", diff)
	}
}

func TestGateFFTSweeps(t *testing.T) {
	old := &FFTSweep{Points: []FFTPoint{
		{M: 64, ReferenceSec: 1, BandInverseSec: 0.8, BandSec: 0.7, BatchedSec: 0.5},
	}}
	same := &FFTSweep{Points: old.Points}
	if err := GateFFTSweeps(old, same, 25); err != nil {
		t.Errorf("identical sweeps should pass the gate: %v", err)
	}

	slow := &FFTSweep{Points: []FFTPoint{
		{M: 64, ReferenceSec: 1, BandInverseSec: 0.8, BandSec: 0.7, BatchedSec: 1.5},
	}}
	err := GateFFTSweeps(old, slow, 25)
	if err == nil || !strings.Contains(err.Error(), "batch") {
		t.Errorf("3x batch regression should fail the gate naming the engine, got %v", err)
	}

	// Engines absent from the baseline (zero seconds) are skipped, so the
	// gate survives trajectory files predating a column family.
	noBatch := &FFTSweep{Points: []FFTPoint{
		{M: 64, ReferenceSec: 1, BandInverseSec: 0.8, BandSec: 0.7},
	}}
	if err := GateFFTSweeps(noBatch, slow, 25); err != nil {
		t.Errorf("missing baseline column should be skipped: %v", err)
	}
}
