package layout

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParse exercises the layout parser against arbitrary input: it must
// never panic, and any layout it accepts must survive a write→parse
// round-trip with identical rasterization.
func FuzzParse(f *testing.F) {
	f.Add("SIZE 32\nRECT 1 1 4 4\n")
	f.Add("SIZE 16\nPIXEL 2\nPGON 0 0 4 0 4 4 0 4\n")
	f.Add("# comment\n\nSIZE 8\n")
	f.Add("SIZE 8\nRECT -3 -3 20 20\n")
	f.Add("RECT 1 1 2 2")
	f.Add("SIZE 999999999\n")
	f.Add("PGON 0 0 0 0 0 0 0 0")
	f.Fuzz(func(t *testing.T, input string) {
		l, err := Parse(strings.NewReader(input))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		if l.Size <= 0 {
			t.Fatalf("accepted layout with size %d", l.Size)
		}
		if l.Size > 4096 {
			return // rasterizing huge grids is out of fuzz scope
		}
		m1, err := l.Rasterize()
		if err != nil {
			// Accepted-but-unrasterizable layouts are allowed only for
			// genuinely degenerate polygons; they must not panic.
			return
		}
		var buf bytes.Buffer
		if err := l.Write(&buf); err != nil {
			t.Fatalf("write of accepted layout failed: %v", err)
		}
		back, err := Parse(&buf)
		if err != nil {
			t.Fatalf("re-parse of written layout failed: %v", err)
		}
		m2, err := back.Rasterize()
		if err != nil {
			t.Fatalf("re-rasterize failed: %v", err)
		}
		if !m1.Equal(m2, 0) {
			t.Fatal("rasterization changed across write/parse round-trip")
		}
	})
}
