// Package layout implements a small text layout format in the spirit of the
// ICCAD 2013 contest's GLP files, plus rasterization to the simulation
// grid. The dialect:
//
//	# comment
//	SIZE <pixels>                     — grid side length
//	PIXEL <nm>                        — pixel size in nm (optional, default 1)
//	RECT <x0> <y0> <x1> <y1>          — half-open rectangle in pixels
//	PGON <x1> <y1> <x2> <y2> ...      — rectilinear polygon vertices
//
// Coordinates are integers in pixel units.
package layout

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/geom"
	"repro/internal/grid"
)

// Layout is a parsed layout: a grid declaration plus Manhattan shapes.
type Layout struct {
	Size    int
	PixelNM float64
	Rects   []geom.Rect
	Polys   []geom.Polygon
}

// New returns an empty layout of the given grid size and pixel pitch.
func New(size int, pixelNM float64) *Layout {
	return &Layout{Size: size, PixelNM: pixelNM}
}

// AddRect appends a rectangle.
func (l *Layout) AddRect(r geom.Rect) { l.Rects = append(l.Rects, r) }

// AddPolygon appends a polygon.
func (l *Layout) AddPolygon(p geom.Polygon) { l.Polys = append(l.Polys, p) }

// ShapeCount returns the number of shapes.
func (l *Layout) ShapeCount() int { return len(l.Rects) + len(l.Polys) }

// Rasterize renders the layout to a Size×Size binary matrix.
func (l *Layout) Rasterize() (*grid.Mat, error) {
	if l.Size <= 0 {
		return nil, fmt.Errorf("layout: invalid size %d", l.Size)
	}
	m := grid.NewMat(l.Size, l.Size)
	for _, r := range l.Rects {
		geom.FillRect(m, r, 1)
	}
	for i, p := range l.Polys {
		if err := p.Rasterize(m); err != nil {
			return nil, fmt.Errorf("layout: polygon %d: %w", i, err)
		}
	}
	return m, nil
}

// Write emits the layout in the text format.
func (l *Layout) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# multilevel-ilt layout\nSIZE %d\nPIXEL %g\n", l.Size, l.PixelNM)
	for _, r := range l.Rects {
		fmt.Fprintf(bw, "RECT %d %d %d %d\n", r.X0, r.Y0, r.X1, r.Y1)
	}
	for _, p := range l.Polys {
		fmt.Fprintf(bw, "PGON")
		for _, v := range p {
			fmt.Fprintf(bw, " %d %d", v.X, v.Y)
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

// Save writes the layout to a file, creating directories as needed.
func (l *Layout) Save(path string) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("layout: %w", err)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("layout: %w", err)
	}
	if err := l.Write(f); err != nil {
		_ = f.Close() // the write error takes precedence
		return fmt.Errorf("layout: write %s: %w", path, err)
	}
	return f.Close()
}

// Parse reads a layout from r.
func Parse(r io.Reader) (*Layout, error) {
	l := &Layout{PixelNM: 1}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch strings.ToUpper(fields[0]) {
		case "SIZE":
			if len(fields) != 2 {
				return nil, fmt.Errorf("layout: line %d: SIZE wants 1 argument", lineNo)
			}
			v, err := strconv.Atoi(fields[1])
			if err != nil || v <= 0 {
				return nil, fmt.Errorf("layout: line %d: bad SIZE %q", lineNo, fields[1])
			}
			l.Size = v
		case "PIXEL":
			if len(fields) != 2 {
				return nil, fmt.Errorf("layout: line %d: PIXEL wants 1 argument", lineNo)
			}
			v, err := strconv.ParseFloat(fields[1], 64)
			if err != nil || v <= 0 {
				return nil, fmt.Errorf("layout: line %d: bad PIXEL %q", lineNo, fields[1])
			}
			l.PixelNM = v
		case "RECT":
			if len(fields) != 5 {
				return nil, fmt.Errorf("layout: line %d: RECT wants 4 coordinates", lineNo)
			}
			var c [4]int
			for i := 0; i < 4; i++ {
				v, err := strconv.Atoi(fields[i+1])
				if err != nil {
					return nil, fmt.Errorf("layout: line %d: bad coordinate %q", lineNo, fields[i+1])
				}
				c[i] = v
			}
			r := geom.Rect{X0: c[0], Y0: c[1], X1: c[2], Y1: c[3]}
			if r.Empty() {
				return nil, fmt.Errorf("layout: line %d: empty RECT", lineNo)
			}
			l.Rects = append(l.Rects, r)
		case "PGON":
			coords := fields[1:]
			if len(coords) < 8 || len(coords)%2 != 0 {
				return nil, fmt.Errorf("layout: line %d: PGON wants ≥ 4 vertex pairs", lineNo)
			}
			p := make(geom.Polygon, len(coords)/2)
			for i := range p {
				x, err1 := strconv.Atoi(coords[2*i])
				y, err2 := strconv.Atoi(coords[2*i+1])
				if err1 != nil || err2 != nil {
					return nil, fmt.Errorf("layout: line %d: bad vertex", lineNo)
				}
				p[i] = geom.Point{X: x, Y: y}
			}
			if err := p.Validate(); err != nil {
				return nil, fmt.Errorf("layout: line %d: %w", lineNo, err)
			}
			l.Polys = append(l.Polys, p)
		default:
			return nil, fmt.Errorf("layout: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("layout: %w", err)
	}
	if l.Size == 0 {
		return nil, fmt.Errorf("layout: missing SIZE directive")
	}
	return l, nil
}

// Load reads a layout from a file.
func Load(path string) (*Layout, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("layout: %w", err)
	}
	defer f.Close()
	l, err := Parse(f)
	if err != nil {
		return nil, fmt.Errorf("%w (in %s)", err, path)
	}
	return l, nil
}

// FromMask converts a binary mask image into a layout by run-merge
// fracturing — the inverse of Rasterize for binary inputs.
func FromMask(m *grid.Mat, pixelNM float64) *Layout {
	l := New(m.W, pixelNM)
	l.Rects = geom.FractureRunMerge(m)
	return l
}

// FromMaskPolygons converts a binary mask into a layout of traced boundary
// polygons (holes filled), a more compact representation than FromMask's
// fractured rectangles for curvilinear ILT output.
func FromMaskPolygons(m *grid.Mat, pixelNM float64) *Layout {
	l := New(m.W, pixelNM)
	l.Polys = geom.TraceContours(m)
	return l
}
