package layout

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/grid"
)

func sample() *Layout {
	l := New(64, 4)
	l.AddRect(geom.Rect{X0: 4, Y0: 4, X1: 20, Y1: 10})
	l.AddPolygon(geom.Polygon{
		{X: 30, Y: 30}, {X: 40, Y: 30}, {X: 40, Y: 36},
		{X: 34, Y: 36}, {X: 34, Y: 44}, {X: 30, Y: 44},
	})
	return l
}

func TestWriteParseRoundTrip(t *testing.T) {
	l := sample()
	var buf bytes.Buffer
	if err := l.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Size != 64 || back.PixelNM != 4 {
		t.Errorf("header round-trip: size %d pixel %g", back.Size, back.PixelNM)
	}
	if len(back.Rects) != 1 || back.Rects[0] != l.Rects[0] {
		t.Errorf("rects round-trip: %+v", back.Rects)
	}
	if len(back.Polys) != 1 || len(back.Polys[0]) != 6 {
		t.Fatalf("polys round-trip: %+v", back.Polys)
	}
	m1, err := l.Rasterize()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := back.Rasterize()
	if err != nil {
		t.Fatal(err)
	}
	if !m1.Equal(m2, 0) {
		t.Error("rasterization differs after round-trip")
	}
}

func TestSaveLoad(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "deep", "case.glp")
	if err := sample().Save(path); err != nil {
		t.Fatal(err)
	}
	l, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if l.ShapeCount() != 2 {
		t.Errorf("ShapeCount = %d, want 2", l.ShapeCount())
	}
}

func TestParseCommentsAndBlanks(t *testing.T) {
	src := "# header\n\nSIZE 32\n  # indented comment\nRECT 1 1 4 4\n"
	l, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if l.Size != 32 || len(l.Rects) != 1 || l.PixelNM != 1 {
		t.Errorf("parsed %+v", l)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"missing size":   "RECT 0 0 1 1\n",
		"bad size":       "SIZE nope\n",
		"zero size":      "SIZE 0\n",
		"bad pixel":      "SIZE 8\nPIXEL -2\n",
		"rect arity":     "SIZE 8\nRECT 1 2 3\n",
		"rect coord":     "SIZE 8\nRECT a 2 3 4\n",
		"empty rect":     "SIZE 8\nRECT 5 5 5 9\n",
		"pgon arity":     "SIZE 8\nPGON 0 0 4 0 4\n",
		"pgon too small": "SIZE 8\nPGON 0 0 4 0 4 4\n",
		"pgon diagonal":  "SIZE 8\nPGON 0 0 4 2 4 4 0 4\n",
		"unknown":        "SIZE 8\nCIRCLE 1 1 4\n",
	}
	for name, src := range cases {
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Errorf("%s: accepted %q", name, src)
		}
	}
}

func TestRasterizeMatchesShapes(t *testing.T) {
	l := New(16, 1)
	l.AddRect(geom.Rect{X0: 2, Y0: 2, X1: 6, Y1: 5})
	m, err := l.Rasterize()
	if err != nil {
		t.Fatal(err)
	}
	if m.Sum() != 12 {
		t.Errorf("area %v, want 12", m.Sum())
	}
}

func TestFromMaskRoundTrip(t *testing.T) {
	m := grid.NewMat(32, 32)
	geom.FillRect(m, geom.Rect{X0: 3, Y0: 3, X1: 12, Y1: 9}, 1)
	geom.FillRect(m, geom.Rect{X0: 15, Y0: 12, X1: 20, Y1: 25}, 1)
	l := FromMask(m, 2)
	if l.PixelNM != 2 || l.Size != 32 {
		t.Errorf("FromMask header %+v", l)
	}
	back, err := l.Rasterize()
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(m, 0) {
		t.Error("FromMask→Rasterize is not the identity on binary masks")
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nope.glp")); err == nil {
		t.Error("missing file did not error")
	}
}

func TestFromMaskPolygonsRoundTrip(t *testing.T) {
	m := grid.NewMat(32, 32)
	geom.FillRect(m, geom.Rect{X0: 3, Y0: 3, X1: 12, Y1: 9}, 1)
	geom.FillRect(m, geom.Rect{X0: 3, Y0: 9, X1: 7, Y1: 20}, 1) // L-shape
	l := FromMaskPolygons(m, 1)
	if len(l.Polys) != 1 {
		t.Fatalf("%d polygons, want 1", len(l.Polys))
	}
	back, err := l.Rasterize()
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(m, 0) {
		t.Error("polygon layout does not reproduce the mask")
	}
	// Polygons are more compact than rect fracturing for L-shapes.
	if rects := FromMask(m, 1); len(rects.Rects) < 2 {
		t.Error("expected the L-shape to fracture into ≥ 2 rects")
	}
}
