package experiments

import (
	"context"
	"fmt"
	"path/filepath"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/imgio"
	"repro/internal/mask"
	"repro/internal/report"
)

// savePNG writes an artifact when OutDir is set.
func (c Config) savePNG(name string, m *grid.Mat) error {
	if c.OutDir == "" {
		return nil
	}
	return imgio.WritePNG(filepath.Join(c.OutDir, name), m)
}

// Fig1 reproduces the headline comparison: the A2-ILT-style baseline mask
// vs our mask on case1 — ours should have more regular shapes (fewer,
// larger fracturing rectangles relative to its area).
func Fig1(c Config) (*report.Table, error) {
	p, err := c.Process()
	if err != nil {
		return nil, err
	}
	cs, err := c.m1Case(1)
	if err != nil {
		return nil, err
	}
	opt1, _, err := c.regions(cs.Target)
	if err != nil {
		return nil, err
	}
	a2, err := c.runAttention(p, cs.Target, opt1)
	if err != nil {
		return nil, err
	}
	ours, err := c.runRecipe(p, "Our-exact", cs.Target, core.ExactM1(), opt1, 0)
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Fig. 1 — optimized mask outputs (case1)",
		"method", "L2 (nm²)", "PVB (nm²)", "#shots", "shots per 1000 nm² of mask")
	for _, m := range []Measured{a2, ours} {
		maskArea := m.Mask.Sum() * c.PixelNM() * c.PixelNM()
		density := 0.0
		if maskArea > 0 {
			density = float64(m.Report.Shots) / maskArea * 1000
		}
		t.Add(m.Method, report.F(m.Report.L2, 0), report.F(m.Report.PVB, 0),
			report.I(m.Report.Shots), report.F(density, 3))
	}
	if err := c.savePNG("fig1_a2ilt_mask.png", a2.Mask); err != nil {
		return nil, err
	}
	if err := c.savePNG("fig1_ours_mask.png", ours.Mask); err != nil {
		return nil, err
	}
	if err := c.savePNG("fig1_target.png", cs.Target); err != nil {
		return nil, err
	}
	return t, nil
}

// Fig4 reproduces the binary-function comparison: 40 low-resolution
// iterations with T_R = 0 vs T_R = 0.5. The paper reports
// (L2, PVB) = (50626, 51465) vs (43452, 46361) and visible SRAFs only for
// T_R = 0.5.
func Fig4(c Config) (*report.Table, error) {
	p, err := c.Process()
	if err != nil {
		return nil, err
	}
	cs, err := c.m1Case(1)
	if err != nil {
		return nil, err
	}
	iters := maxInt(1, 40/c.IterDiv)
	far := geom.DilateBox(cs.Target, maxInt(2, int(50/c.PixelNM())))

	t := report.NewTable(
		fmt.Sprintf("Fig. 4 — binary function T_R ablation (%d low-res iterations, case1)", iters),
		"T_R", "L2 (nm²)", "PVB (nm²)", "SRAF area (nm²)", "paper L2", "paper PVB")
	for _, tr := range []float64{0, 0.5} {
		opts := core.DefaultOptions(p)
		opts.Binary = mask.Sigmoid{Beta: mask.DefaultBeta, TR: tr}
		if tr == 0 {
			opts.OutputTR = 0
		}
		o, err := core.New(opts, cs.Target)
		if err != nil {
			return nil, err
		}
		res, err := o.Run(context.Background(), []core.Stage{{Scale: 4, Iters: iters}})
		if err != nil {
			return nil, err
		}
		rep, err := c.evaluateMask(p, res.Mask, cs.Target)
		if err != nil {
			return nil, err
		}
		var sraf float64
		for i := range res.Mask.Data {
			// The output mask is binarized to exact {0, 1}; > 0.5 reads
			// "pixel is bright" without relying on float equality.
			if far.Data[i] < 0.5 && res.Mask.Data[i] > 0.5 {
				sraf++
			}
		}
		sraf *= c.PixelNM() * c.PixelNM()
		paperL2, paperPVB := PaperFig4.TR0L2, PaperFig4.TR0PVB
		if tr != 0 { // tr ∈ {0, 0.5}: the nonzero ablation point
			paperL2, paperPVB = PaperFig4.TR05L2, PaperFig4.TR05PVB
		}
		t.Add(report.F(tr, 1), report.F(rep.L2, 0), report.F(rep.PVB, 0),
			report.F(sraf, 0), report.F(paperL2, 0), report.F(paperPVB, 0))
		if err := c.savePNG(fmt.Sprintf("fig4_tr%02.0f_mask.png", tr*10), res.Mask); err != nil {
			return nil, err
		}
		// The incompletely binarized mask M of the figure itself.
		binarized := opts.Binary.Apply(res.Params)
		if err := c.savePNG(fmt.Sprintf("fig4_tr%02.0f_binarized.png", tr*10), binarized); err != nil {
			return nil, err
		}
	}
	t.Note("expected shape: T_R=0.5 row has lower L2/PVB and nonzero SRAF area")
	return t, nil
}

// Fig5 emits the sigmoid transformation and gradient curves for
// T_R ∈ {0, 0.5} (pure math, no simulation).
func Fig5(c Config) (*report.Table, error) {
	s0 := mask.Sigmoid{Beta: mask.DefaultBeta, TR: 0}
	s5 := mask.Sigmoid{Beta: mask.DefaultBeta, TR: 0.5}
	f0 := &report.Series{Name: "f_TR0"}
	f5 := &report.Series{Name: "f_TR05"}
	g0 := &report.Series{Name: "grad_TR0"}
	g5 := &report.Series{Name: "grad_TR05"}
	for x := -2.0; x <= 3.0+1e-9; x += 0.05 {
		mp := grid.FromSlice(1, 1, []float64{x})
		m0 := s0.Apply(mp)
		m5 := s5.Apply(mp)
		f0.Append(x, m0.Data[0])
		f5.Append(x, m5.Data[0])
		g0.Append(x, s0.Grad(mp, m0).Data[0])
		g5.Append(x, s5.Grad(mp, m5).Data[0])
	}
	if c.OutDir != "" {
		if err := report.SaveSeriesCSV(filepath.Join(c.OutDir, "fig5_sigmoid.csv"), f0, f5, g0, g5); err != nil {
			return nil, err
		}
	}
	t := report.NewTable("Fig. 5 — sigmoid transformation and gradient",
		"quantity", "T_R=0", "T_R=0.5")
	at := func(s mask.Sigmoid, x float64) float64 {
		mp := grid.FromSlice(1, 1, []float64{x})
		return s.Apply(mp).Data[0]
	}
	gr := func(s mask.Sigmoid, x float64) float64 {
		mp := grid.FromSlice(1, 1, []float64{x})
		return s.Grad(mp, s.Apply(mp)).Data[0]
	}
	t.Add("f(0)", report.F(at(s0, 0), 3), report.F(at(s5, 0), 3))
	t.Add("f(1)", report.F(at(s0, 1), 3), report.F(at(s5, 1), 3))
	t.Add("f'(0)", report.F(gr(s0, 0), 3), report.F(gr(s5, 0), 3))
	t.Add("f'(1)", report.F(gr(s0, 1), 3), report.F(gr(s5, 1), 3))
	t.Note("with T_R=0 the opaque pixels (M'=0) sit on the gradient peak β/4, driving them strongly negative after one step; T_R=0.5 balances the two levels")
	return t, nil
}

// Fig6 reproduces the smoothing-pool comparison on a low-resolution run:
// with pooling the mask has (slightly) higher L2 but a simpler pattern.
func Fig6(c Config) (*report.Table, error) {
	p, err := c.Process()
	if err != nil {
		return nil, err
	}
	cs, err := c.m1Case(3) // a dense case shows the contour effect best
	if err != nil {
		return nil, err
	}
	iters := maxInt(1, 80/c.IterDiv)
	t := report.NewTable(
		fmt.Sprintf("Fig. 6 — 3×3 smoothing pooling ablation (%d low-res iterations, case3)", iters),
		"variant", "L2 (nm²)", "PVB (nm²)", "#shots")
	for _, window := range []int{3, 0} {
		name := "with pooling"
		if window == 0 {
			name = "without pooling"
		}
		opts := core.DefaultOptions(p)
		opts.SmoothWindow = window
		o, err := core.New(opts, cs.Target)
		if err != nil {
			return nil, err
		}
		res, err := o.Run(context.Background(), []core.Stage{{Scale: 4, Iters: iters}})
		if err != nil {
			return nil, err
		}
		rep, err := c.evaluateMask(p, res.Mask, cs.Target)
		if err != nil {
			return nil, err
		}
		t.Add(name, report.F(rep.L2, 0), report.F(rep.PVB, 0), report.I(rep.Shots))
		if err := c.savePNG(fmt.Sprintf("fig6_pool%d_mask.png", window), res.Mask); err != nil {
			return nil, err
		}
	}
	t.Note("paper (different case): with pooling L2/PVB = %0.f/%0.f, without = %0.f/%0.f — pooling trades a little L2 for simpler shapes",
		PaperFig6.PoolL2, PaperFig6.PoolPVB, PaperFig6.NoPoolL2, PaperFig6.NoPoolPVB)
	return t, nil
}

// Fig7 reproduces the optimizing-region comparison: Our-exact under
// option 1 (tight) vs option 2 (loose) on one case.
func Fig7(c Config) (*report.Table, error) {
	p, err := c.Process()
	if err != nil {
		return nil, err
	}
	cs, err := c.m1Case(1)
	if err != nil {
		return nil, err
	}
	opt1, opt2, err := c.regions(cs.Target)
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Fig. 7 — optimizing region options (case1, Our-exact)",
		"option", "region area (nm²)", "L2 (nm²)", "PVB (nm²)", "#shots")
	for i, region := range []*grid.Mat{opt1, opt2} {
		meas, err := c.runRecipe(p, fmt.Sprintf("option%d", i+1), cs.Target, core.ExactM1(), region, 0)
		if err != nil {
			return nil, err
		}
		area := region.Sum() * c.PixelNM() * c.PixelNM()
		t.Add(fmt.Sprintf("option %d", i+1), report.F(area, 0),
			report.F(meas.Report.L2, 0), report.F(meas.Report.PVB, 0), report.I(meas.Report.Shots))
		if err := c.savePNG(fmt.Sprintf("fig7_option%d_mask.png", i+1), meas.Mask); err != nil {
			return nil, err
		}
		if err := c.savePNG(fmt.Sprintf("fig7_option%d_region.png", i+1), region); err != nil {
			return nil, err
		}
	}
	t.Note("option 2 gives SRAFs more room; the paper notes the divergence mainly affects SRAF-producing methods like ours")
	return t, nil
}

// Fig8 reproduces the via flow: the staged 100/100/50 + 15 schedule with
// early stopping, plus the four panels (target, binarized mask, final mask,
// wafer image). The key check: every via prints.
func Fig8(c Config) (*report.Table, error) {
	p, err := c.Process()
	if err != nil {
		return nil, err
	}
	cs, err := viaCase(c)
	if err != nil {
		return nil, err
	}
	opts := core.DefaultOptions(p)
	opts.Patience = core.ViaPatience
	o, err := core.New(opts, cs.Target)
	if err != nil {
		return nil, err
	}
	res, err := o.Run(context.Background(), core.ScaleStages(core.Via(), c.IterDiv))
	if err != nil {
		return nil, err
	}
	rep, err := c.evaluateMask(p, res.Mask, cs.Target)
	if err != nil {
		return nil, err
	}
	wafer, err := p.Print(res.Mask, p.Nominal())
	if err != nil {
		return nil, err
	}
	total, printed := viasPrinted(cs.Target, wafer)

	t := report.NewTable("Fig. 8 — via pattern flow (staged schedule, early stop 15)",
		"metric", "value")
	t.Add("vias in target", report.I(total))
	t.Add("vias printed", report.I(printed))
	t.Add("L2 (nm²)", report.F(rep.L2, 0))
	t.Add("PVB (nm²)", report.F(rep.PVB, 0))
	t.Add("#shots", report.I(rep.Shots))
	t.Add("ILT iterations (early stop)", report.I(res.Iterations))
	t.Add("ILT time (s)", report.F(res.ILTSeconds, 2))

	if err := c.savePNG("fig8_target.png", cs.Target); err != nil {
		return nil, err
	}
	binarized := opts.Binary.Apply(res.Params)
	if err := c.savePNG("fig8_binarized.png", binarized); err != nil {
		return nil, err
	}
	if err := c.savePNG("fig8_mask.png", res.Mask); err != nil {
		return nil, err
	}
	if err := c.savePNG("fig8_wafer.png", wafer); err != nil {
		return nil, err
	}
	t.Note("the paper's acceptance bar: every via shape appears on the wafer image")
	return t, nil
}

// viaCase picks the Fig. 8 via pattern at this scale.
func viaCase(c Config) (bench.Case, error) {
	return bench.ViaCase(c.N, c.FieldNM, 1, 9)
}

// viasPrinted counts target via components whose area is at least half
// covered by the printed wafer image.
func viasPrinted(target, wafer *grid.Mat) (total, printed int) {
	labels, comps := geom.Label(target)
	covered := make([]int, len(comps)+1)
	for i, l := range labels {
		if l > 0 && wafer.Data[i] >= 0.5 {
			covered[l]++
		}
	}
	for _, comp := range comps {
		total++
		if covered[comp.Label]*2 >= comp.Area {
			printed++
		}
	}
	return total, printed
}
