package experiments

import (
	"context"
	"fmt"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/litho"
	"repro/internal/optics"
	"repro/internal/report"
)

// Sources is an extension ablation over the illumination geometry: the same
// Our-exact recipe is run on case1 under annular (the paper's setting),
// circular, dipole and quasar sources. Kernel sets are rebuilt per shape —
// this exercises the whole optics substrate, not just the optimizer.
func Sources(c Config) (*report.Table, error) {
	cs, err := c.m1Case(1)
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Illumination ablation — Our-exact on case1 per source shape",
		"source", "points", "kernels P", "L2 (nm²)", "PVB (nm²)", "EPE", "#shots")
	for _, shape := range []optics.SourceShape{optics.Annular, optics.Circular, optics.Dipole, optics.Quasar} {
		oc := c.Optics()
		oc.Shape = shape
		model, err := optics.BuildModel(oc)
		if err != nil {
			return nil, fmt.Errorf("%v: %w", shape, err)
		}
		proc := litho.NewProcess(model)
		c.logf("sources: %v", shape)

		opts := core.DefaultOptions(proc)
		o, err := core.New(opts, cs.Target)
		if err != nil {
			return nil, err
		}
		res, err := o.Run(context.Background(), core.ScaleStages(core.ExactM1(), c.IterDiv))
		if err != nil {
			return nil, fmt.Errorf("%v: %w", shape, err)
		}
		spacing, thr := c.EPEParams()
		rep, err := evaluateWith(proc, res.Mask, cs.Target, spacing, thr, c.PixelNM())
		if err != nil {
			return nil, err
		}
		t.Add(shape.String(), report.I(len(optics.DiscretizeSource(oc))), report.I(model.Nominal.P),
			report.F(rep.L2, 0), report.F(rep.PVB, 0), report.I(rep.EPE), report.I(rep.Shots))
	}
	t.Note("the paper uses the annular column; the others probe how the optics substrate responds to source geometry (dipole favours one orientation, so mixed-orientation M1 suffers)")
	if c.OutDir != "" {
		if err := t.SaveCSV(filepath.Join(c.OutDir, "sources.csv")); err != nil {
			return nil, err
		}
	}
	return t, nil
}
