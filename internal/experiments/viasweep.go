package experiments

import (
	"context"
	"fmt"
	"path/filepath"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/report"
)

// ViaSweep reproduces the full Section IV-C evaluation: the staged
// low-resolution schedule (100 at s=8, 100 at s=4, 50 at s=2) plus 15
// high-resolution iterations with 15-iteration early stopping, over a suite
// of via patterns ("fifteen randomly chosen" in the paper; the count scales
// down with IterDiv to keep reduced harnesses fast). The acceptance bar is
// the paper's: every via prints, even on the worst case.
func ViaSweep(c Config) (*report.Table, error) {
	p, err := c.Process()
	if err != nil {
		return nil, err
	}
	count := 15 / c.IterDiv
	if count < 3 {
		count = 3
	}
	cases, err := bench.ViaSuite(c.N, c.FieldNM, count)
	if err != nil {
		return nil, err
	}
	t := report.NewTable(
		fmt.Sprintf("Section IV-C — via suite (%d cases, staged schedule, early stop %d)", count, core.ViaPatience),
		"case", "vias", "printed", "L2 (nm²)", "PVB (nm²)", "#shots", "iters", "ILT (s)")
	worst := -1.0
	worstName := ""
	allPrinted := true
	for _, cs := range cases {
		c.logf("viasweep: %s", cs.Name)
		opts := core.DefaultOptions(p)
		opts.Patience = core.ViaPatience
		o, err := core.New(opts, cs.Target)
		if err != nil {
			return nil, err
		}
		res, err := o.Run(context.Background(), core.ScaleStages(core.Via(), c.IterDiv))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", cs.Name, err)
		}
		rep, err := c.evaluateMask(p, res.Mask, cs.Target)
		if err != nil {
			return nil, err
		}
		wafer, err := p.Print(res.Mask, p.Nominal())
		if err != nil {
			return nil, err
		}
		total, printed := viasPrinted(cs.Target, wafer)
		if printed != total {
			allPrinted = false
		}
		if rep.L2 > worst {
			worst, worstName = rep.L2, cs.Name
		}
		t.Add(cs.Name, report.I(total), report.I(printed), report.F(rep.L2, 0),
			report.F(rep.PVB, 0), report.I(rep.Shots), report.I(res.Iterations),
			report.F(res.ILTSeconds, 2))
	}
	t.Note("worst case by L2: %s (the paper shows its worst case in Fig. 8)", worstName)
	if allPrinted {
		t.Note("all vias printed on every case — the paper's acceptance bar holds")
	} else {
		t.Note("WARNING: at least one via failed to print (raise the iteration budget)")
	}
	if c.OutDir != "" {
		if err := t.SaveCSV(filepath.Join(c.OutDir, "viasweep.csv")); err != nil {
			return nil, err
		}
	}
	return t, nil
}
