package experiments

import (
	"fmt"
	"io"

	"repro/internal/bench"
	"repro/internal/grid"
	"repro/internal/report"
)

// poolTarget downsamples a case target for the Eq. (8) timing run.
func poolTarget(cs bench.Case, scale int) *grid.Mat {
	return grid.AvgPoolDown(cs.Target, scale)
}

// Experiment names accepted by Run and cmd/mltables -exp.
var Names = []string{
	"timing", "itertime", "table1", "table2", "table3", "table4",
	"fig1", "fig4", "fig5", "fig6", "fig7", "fig8",
	"window", "convergence", "viasweep", "verify", "sources", "bossung", "kernels",
}

// Run executes one experiment by name.
func Run(c Config, name string) (*report.Table, error) {
	switch name {
	case "timing":
		return ForwardTiming(c, 0)
	case "itertime":
		return IterationTime(c, 0)
	case "table1":
		return Table1(c)
	case "table2":
		return Table2(c)
	case "table3":
		return Table3(c)
	case "table4":
		return Table4(c)
	case "fig1":
		return Fig1(c)
	case "fig4":
		return Fig4(c)
	case "fig5":
		return Fig5(c)
	case "fig6":
		return Fig6(c)
	case "fig7":
		return Fig7(c)
	case "fig8":
		return Fig8(c)
	case "window":
		return Window(c)
	case "convergence":
		return Convergence(c)
	case "viasweep":
		return ViaSweep(c)
	case "verify":
		return Verify(c)
	case "sources":
		return Sources(c)
	case "bossung":
		return Bossung(c)
	case "kernels":
		return Kernels(c)
	default:
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", name, Names)
	}
}

// RunAll executes every experiment in order, streaming each table to w as
// it completes, and returns all tables.
func RunAll(c Config, w io.Writer) ([]*report.Table, error) {
	var tables []*report.Table
	for _, name := range Names {
		c.logf("=== %s ===", name)
		t, err := Run(c, name)
		if err != nil {
			return tables, fmt.Errorf("%s: %w", name, err)
		}
		tables = append(tables, t)
		if w != nil {
			fmt.Fprintf(w, "%s\n", t.String())
		}
	}
	return tables, nil
}
