package experiments

import (
	"fmt"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/litho"
	"repro/internal/metrics"
	"repro/internal/optics"
	"repro/internal/report"
)

// Bossung measures CD-through-dose for the widest feature of case1, raw
// mask vs Our-exact optimized mask, at nominal focus and defocus — the
// fab-style view of what the optimization bought: a flatter CD response
// (smaller dose sensitivity) at the measurement site.
func Bossung(c Config) (*report.Table, error) {
	p, err := c.Process()
	if err != nil {
		return nil, err
	}
	cs, err := c.m1Case(1)
	if err != nil {
		return nil, err
	}
	// Measurement site: the widest component's center, cut across its
	// narrow axis.
	comps := geom.Components(cs.Target)
	if len(comps) == 0 {
		return nil, fmt.Errorf("experiments: case1 has no features")
	}
	widest := comps[0]
	for _, comp := range comps[1:] {
		if comp.Area > widest.Area {
			widest = comp
		}
	}
	cut := metrics.CutLine{
		Horizontal: widest.BBox.W() < widest.BBox.H(), // cut across the narrow axis
		X:          (widest.BBox.X0 + widest.BBox.X1) / 2,
		Y:          (widest.BBox.Y0 + widest.BBox.Y1) / 2,
	}
	targetCD := widest.BBox.W()
	if !cut.Horizontal {
		targetCD = widest.BBox.H()
	}

	ours, err := c.runRecipe(p, "Our-exact", cs.Target, core.ExactM1(), nil, 0)
	if err != nil {
		return nil, err
	}
	doses := []float64{0.94, 0.97, 1.0, 1.03, 1.06}
	rawPts, err := metrics.CDThroughDose(p, cs.Target, cut, doses)
	if err != nil {
		return nil, err
	}
	optPts, err := metrics.CDThroughDose(p, ours.Mask, cut, doses)
	if err != nil {
		return nil, err
	}

	px := c.PixelNM()
	t := report.NewTable(
		fmt.Sprintf("Bossung — CD through dose at case1's widest feature (target CD %.0f nm)", float64(targetCD)*px),
		"dose", "focus", "raw CD (nm)", "Our-exact CD (nm)")
	series := []*report.Series{
		{Name: "raw_nominal"}, {Name: "opt_nominal"},
		{Name: "raw_defocus"}, {Name: "opt_defocus"},
	}
	for i := range rawPts {
		focus := "nominal"
		si := 0
		if rawPts[i].Defocused {
			focus = "defocus"
			si = 2
		}
		raw := float64(rawPts[i].CDPx) * px
		opt := float64(optPts[i].CDPx) * px
		t.Add(report.F(rawPts[i].Dose, 2), focus, report.F(raw, 0), report.F(opt, 0))
		series[si].Append(rawPts[i].Dose, raw)
		series[si+1].Append(rawPts[i].Dose, opt)
	}
	t.Note("a flatter optimized column = lower dose sensitivity at the site; both columns grow monotonically with dose")
	if c.OutDir != "" {
		if err := report.SaveSeriesCSV(filepath.Join(c.OutDir, "bossung.csv"),
			series[0], series[1], series[2], series[3]); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// Kernels is the SOCS truncation ablation: forward-simulation error vs the
// retained kernel count, against the largest set as reference. It verifies
// the eigenvalue decay that justifies N_k = 24 in the paper.
func Kernels(c Config) (*report.Table, error) {
	cs, err := c.m1Case(1)
	if err != nil {
		return nil, err
	}
	var counts []int
	for _, nk := range []int{2, 4, 8, 16} {
		if nk < c.Kernels {
			counts = append(counts, nk)
		}
	}
	counts = append(counts, c.Kernels)
	// Reference: the largest count.
	ref, err := forwardWithKernels(c, cs.Target, counts[len(counts)-1])
	if err != nil {
		return nil, err
	}
	refEnergy := ref.SumSq()

	t := report.NewTable("SOCS truncation — aerial-image error vs kernel count (case1)",
		"N_k", "TCC energy captured", "relative aerial RMS error vs N_k="+report.I(counts[len(counts)-1]))
	for _, nk := range counts {
		oc := c.Optics()
		oc.NumKernels = nk
		captured, trace, err := optics.EnergyCapture(oc, 0)
		if err != nil {
			return nil, err
		}
		img, err := forwardWithKernels(c, cs.Target, nk)
		if err != nil {
			return nil, err
		}
		var num float64
		for i := range img.Data {
			d := img.Data[i] - ref.Data[i]
			num += d * d
		}
		rel := 0.0
		if refEnergy > 0 {
			rel = num / refEnergy
		}
		t.Add(report.I(nk), report.F(captured/trace, 4), fmt.Sprintf("%.2e", rel))
	}
	t.Note("error falls with the TCC eigenvalue tail — the basis for truncating at N_k kernels")
	if c.OutDir != "" {
		if err := t.SaveCSV(filepath.Join(c.OutDir, "kernels.csv")); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// forwardWithKernels builds a model with nk kernels and returns the exact
// aerial image of the target mask.
func forwardWithKernels(c Config, target *grid.Mat, nk int) (*grid.Mat, error) {
	oc := c.Optics()
	oc.NumKernels = nk
	model, err := optics.BuildModel(oc)
	if err != nil {
		return nil, err
	}
	sim := litho.NewSim(model)
	f, err := sim.Forward(target, model.Nominal, 1, false)
	if err != nil {
		return nil, err
	}
	return f.Intensity, nil
}
