// Package experiments regenerates every table and figure of the paper's
// evaluation section on the synthetic benchmark suites. Each experiment
// returns a report.Table (and optionally writes image/CSV artifacts), so
// the cmd/mltables CLI and the root benchmark suite share one
// implementation. EXPERIMENTS.md records paper-vs-measured for each.
package experiments

import (
	"fmt"
	"io"
	"math"

	"repro/internal/litho"
	"repro/internal/metrics"
	"repro/internal/optics"
	"repro/internal/telemetry"
)

// Config selects the scale of an experiment run. The paper operates at
// N = 2048 px over a 2048 nm field (1 nm/px); the default harness runs the
// same physics at N = 512 (4 nm/px), and the benchmark suite shrinks
// further so `go test -bench` finishes in minutes on a laptop CPU.
type Config struct {
	// N is the simulation grid (power of two).
	N int
	// FieldNM is the physical tile size; the kernel support grows with it.
	FieldNM float64
	// Kernels is N_k.
	Kernels int
	// IterDiv divides every recipe's iteration budget (1 = paper budgets).
	IterDiv int
	// Workers bounds the per-kernel fan-out of the SOCS simulation loops;
	// 0 selects runtime.GOMAXPROCS(0). Results are bit-identical for every
	// value (see DESIGN.md, "Concurrency model").
	Workers int
	// Engine selects the simulator's FFT engine by name ("batch", "band",
	// "band-inverse", "reference"); empty keeps the default (batch). See
	// litho.ParseEngine and DESIGN.md, "FFT engine v2".
	Engine string
	// WithBaselines also measures the reimplemented baselines (pixel ILT,
	// attention ILT, level-set ILT), which dominate runtime.
	WithBaselines bool
	// OutDir, when non-empty, receives image and CSV artifacts.
	OutDir string
	// Log, when non-nil, receives progress lines. Superseded by Recorder:
	// when both are set, progress flows through the recorder's sinks only.
	Log io.Writer
	// Recorder, when enabled, receives experiment progress events and is
	// propagated to the process simulator for phase timers (the -v flag of
	// cmd/mltables wires a console sink here).
	Recorder *telemetry.Recorder
}

// Harness is the default reproduction scale: full recipe budgets on a
// 512-px grid over the paper's 2048 nm field (so P = 35, N_k = 24 exactly
// as in the paper, at 4 nm/px).
func Harness() Config {
	return Config{N: 512, FieldNM: 2048, Kernels: 24, IterDiv: 1, WithBaselines: true}
}

// Paper is the full-scale configuration (N = 2048, 1 nm/px). Expect hours
// of CPU time.
func Paper() Config {
	return Config{N: 2048, FieldNM: 2048, Kernels: 24, IterDiv: 1, WithBaselines: true}
}

// BenchScale is the configuration used by the `go test -bench` suite:
// quarter budgets on a 256-px grid over a 1024 nm field.
func BenchScale() Config {
	return Config{N: 256, FieldNM: 1024, Kernels: 12, IterDiv: 4, WithBaselines: false}
}

// Validate reports the first problem with the configuration.
func (c Config) Validate() error {
	if c.N < 64 || c.N&(c.N-1) != 0 {
		return fmt.Errorf("experiments: N = %d must be a power of two ≥ 64", c.N)
	}
	if c.FieldNM <= 0 {
		return fmt.Errorf("experiments: FieldNM = %g must be positive", c.FieldNM)
	}
	if c.Kernels < 1 {
		return fmt.Errorf("experiments: Kernels = %d must be ≥ 1", c.Kernels)
	}
	if c.IterDiv < 1 {
		return fmt.Errorf("experiments: IterDiv = %d must be ≥ 1", c.IterDiv)
	}
	if c.Workers < 0 {
		return fmt.Errorf("experiments: Workers = %d must be ≥ 0", c.Workers)
	}
	return nil
}

// PixelNM is the pixel pitch.
func (c Config) PixelNM() float64 { return c.FieldNM / float64(c.N) }

// Optics returns the optics configuration at this scale.
func (c Config) Optics() optics.Config {
	oc := optics.Default()
	oc.FieldNM = c.FieldNM
	oc.NumKernels = c.Kernels
	return oc
}

// Process builds (or fetches the cached) lithography process.
func (c Config) Process() (*litho.Process, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	sp := c.Recorder.StartSpan("setup.optics")
	model, err := optics.BuildModel(c.Optics())
	sp.End()
	if err != nil {
		return nil, err
	}
	p := litho.NewProcess(model)
	p.Sim.Workers = c.Workers
	p.Sim.Recorder = c.Recorder
	eng, err := litho.ParseEngine(c.Engine)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	p.Sim.Engine = eng
	if c.N/8 < model.Nominal.P {
		// The s = 8 stages of the recipes need N/8 ≥ P.
		return nil, fmt.Errorf("experiments: grid %d too small for kernel support %d at s=8 (raise N or shrink FieldNM)", c.N, model.Nominal.P)
	}
	return p, nil
}

// EPEParams converts the contest EPE geometry (40 nm spacing, 15 nm
// threshold) to pixels at this scale.
func (c Config) EPEParams() (spacingPx, thrPx int) {
	px := c.PixelNM()
	spacingPx = int(math.Round(metrics.EPESpacingNM / px))
	if spacingPx < 1 {
		spacingPx = 1
	}
	thrPx = int(math.Round(metrics.EPEThresholdNM / px))
	if thrPx < 1 {
		thrPx = 1
	}
	return spacingPx, thrPx
}

// RegionMargins returns the Fig. 7 region margins in pixels: a tight
// per-feature margin for option 1 and a generous whole-layout margin for
// option 2.
func (c Config) RegionMargins() (opt1Px, opt2Px int) {
	px := c.PixelNM()
	opt1Px = int(math.Round(60 / px))
	if opt1Px < 2 {
		opt1Px = 2
	}
	opt2Px = int(math.Round(200 / px))
	if opt2Px < opt1Px {
		opt2Px = opt1Px + 1
	}
	return opt1Px, opt2Px
}

// logf emits a progress line through the telemetry console sink when a
// recorder is wired, falling back to the plain Log writer.
func (c Config) logf(format string, args ...any) {
	if c.Recorder.Enabled() {
		c.Recorder.Progressf(format, args...)
		return
	}
	if c.Log != nil {
		fmt.Fprintf(c.Log, format+"\n", args...)
	}
}
