package experiments

import (
	"context"
	"fmt"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/report"
)

// The experiments below extend the paper's evaluation with analyses that
// its metrics imply but its tables do not show: a dose-ladder process
// window and an equal-budget convergence ablation of the multi-level
// schedule itself. DESIGN.md lists them under optional/extension features.

// Window sweeps the PVBand ladder (Definition 2 generalised to several
// dose excursions) for the raw target mask vs the Our-exact optimized mask
// on case1. Both ladders are monotone in the excursion; on contest-like
// patterns with adequate iteration budget the optimized mask shows the
// smaller band (on very easy patterns a raw mask can already sit at the
// window optimum, which is why the L2/EPE columns matter too).
func Window(c Config) (*report.Table, error) {
	p, err := c.Process()
	if err != nil {
		return nil, err
	}
	cs, err := c.m1Case(1)
	if err != nil {
		return nil, err
	}
	opt1, _, err := c.regions(cs.Target)
	if err != nil {
		return nil, err
	}
	c.logf("window: optimizing case1 with Our-exact")
	ours, err := c.runRecipe(p, "Our-exact", cs.Target, core.ExactM1(), opt1, 0)
	if err != nil {
		return nil, err
	}
	deltas := []float64{0, 0.01, 0.02, 0.03, 0.05}
	rawBands, err := metrics.PVBandLadder(p, cs.Target, deltas)
	if err != nil {
		return nil, err
	}
	optBands, err := metrics.PVBandLadder(p, ours.Mask, deltas)
	if err != nil {
		return nil, err
	}
	px2 := c.PixelNM() * c.PixelNM()
	t := report.NewTable("Process window — PVBand vs dose excursion (case1)",
		"dose delta", "raw mask PVB (nm²)", "Our-exact PVB (nm²)", "reduction")
	rawSeries := &report.Series{Name: "raw"}
	optSeries := &report.Series{Name: "our_exact"}
	for i, d := range deltas {
		raw := rawBands[i] * px2
		opt := optBands[i] * px2
		t.Add(report.F(d, 2), report.F(raw, 0), report.F(opt, 0), report.Ratio(raw-opt, raw))
		rawSeries.Append(d, raw)
		optSeries.Append(d, opt)
	}
	t.Note("the paper's PVB metric is the 0.02 rung; both curves are monotone in the excursion")
	if c.OutDir != "" {
		if err := report.SaveSeriesCSV(filepath.Join(c.OutDir, "window_pvb.csv"), rawSeries, optSeries); err != nil {
			return nil, err
		}
		if err := t.SaveCSV(filepath.Join(c.OutDir, "window.csv")); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// Convergence is the equal-budget schedule ablation: the multi-level exact
// recipe vs the same total iteration count spent purely at low resolution
// and purely at full resolution. Full-res-only buys the lowest L2 at an
// order of magnitude more wall-clock and shots; the high-resolution stage
// of the multi-level schedule buys mask simplicity (fewer shots than
// low-res-only) and, at fine pixel pitches, recovers the Eq. (8)
// approximation error as well.
func Convergence(c Config) (*report.Table, error) {
	p, err := c.Process()
	if err != nil {
		return nil, err
	}
	cs, err := c.m1Case(1)
	if err != nil {
		return nil, err
	}
	exact := core.ScaleStages(core.ExactM1(), c.IterDiv)
	budget := 0
	for _, st := range exact {
		budget += st.Iters
	}
	type variant struct {
		name   string
		stages []core.Stage
	}
	variants := []variant{
		{"multi-level (exact)", exact},
		{"low-res only (s=4)", []core.Stage{{Scale: 4, Iters: budget}}},
		{"full-res only", []core.Stage{{Scale: 1, Iters: budget}}},
	}
	t := report.NewTable(
		fmt.Sprintf("Schedule ablation — equal budget of %d iterations (case1)", budget),
		"schedule", "L2 (nm²)", "PVB (nm²)", "#shots", "ILT time (s)")
	var series []*report.Series
	for _, v := range variants {
		opts := core.DefaultOptions(p)
		o, err := core.New(opts, cs.Target)
		if err != nil {
			return nil, err
		}
		res, err := o.Run(context.Background(), v.stages)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", v.name, err)
		}
		rep, err := c.evaluateMask(p, res.Mask, cs.Target)
		if err != nil {
			return nil, err
		}
		c.logf("convergence: %s — %d iters, %.2fs, L2 %.0f", v.name, res.Iterations, res.ILTSeconds, rep.L2)
		t.Add(v.name, report.F(rep.L2, 0), report.F(rep.PVB, 0),
			report.I(rep.Shots), report.F(res.ILTSeconds, 3))
		s := &report.Series{Name: v.name}
		for i, h := range res.History {
			s.Append(float64(i), h.Loss.Total())
		}
		series = append(series, s)
	}
	t.Note("loss traces are at each schedule's own working resolution (not directly comparable in magnitude; the evaluated L2/PVB columns are)")
	if c.OutDir != "" {
		// Traces can differ in length across variants (early stop); pad to
		// the longest for a single CSV.
		n := 0
		for _, s := range series {
			if len(s.X) > n {
				n = len(s.X)
			}
		}
		for _, s := range series {
			for len(s.X) < n {
				last := s.Y[len(s.Y)-1]
				s.Append(float64(len(s.X)), last)
			}
		}
		if err := report.SaveSeriesCSV(filepath.Join(c.OutDir, "convergence.csv"), series...); err != nil {
			return nil, err
		}
		if err := t.SaveCSV(filepath.Join(c.OutDir, "schedule_ablation.csv")); err != nil {
			return nil, err
		}
	}
	return t, nil
}
