package experiments

import (
	"context"
	"fmt"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/mask"
	"repro/internal/report"
)

// raggedness is the isoperimetric quotient perimeter²/area of a binary
// mask — large for fragmented/jagged masks, 16 for a perfect square.
func raggedness(m *grid.Mat) float64 {
	area := m.Sum()
	if area == 0 {
		return 0
	}
	per := 0
	for _, s := range geom.EdgeSegments(m) {
		per += s.Len()
	}
	return float64(per*per) / area
}

// Verify runs a compact experiment per qualitative claim of the paper (the
// "expected shape" list in DESIGN.md) and reports PASS/FAIL for each. It is
// the machine-checkable core of EXPERIMENTS.md: absolute numbers move with
// hardware and synthetic layouts, but these orderings must hold for the
// reproduction to count.
func Verify(c Config) (*report.Table, error) {
	p, err := c.Process()
	if err != nil {
		return nil, err
	}
	cs, err := c.m1Case(1)
	if err != nil {
		return nil, err
	}
	t := report.NewTable(
		fmt.Sprintf("Claim verification (N=%d, field %.0f nm, budgets ÷%d)", c.N, c.FieldNM, c.IterDiv),
		"claim", "measured", "verdict")
	add := func(claim, measured string, pass bool) {
		verdict := "PASS"
		if !pass {
			verdict = "FAIL"
		}
		c.logf("verify: %s — %s [%s]", claim, measured, verdict)
		t.Add(claim, measured, verdict)
	}

	// Claim 1: Eq. 8 ≤ Eq. 7 ≪ Eq. 3 forward time.
	{
		sims := maxInt(10, 60/c.IterDiv)
		ks := p.Sim.Model.Nominal
		pooled := poolTarget(cs, 4)
		timeOf := func(f func() error) (float64, error) {
			if err := f(); err != nil { // warm-up
				return 0, err
			}
			start := time.Now()
			for i := 0; i < sims; i++ {
				if err := f(); err != nil {
					return 0, err
				}
			}
			return time.Since(start).Seconds(), nil
		}
		eq3, err := timeOf(func() error { _, e := p.Sim.Forward(cs.Target, ks, 1, false); return e })
		if err != nil {
			return nil, err
		}
		eq7, err := timeOf(func() error { _, e := p.Sim.ForwardEq7(cs.Target, 4, ks, 1); return e })
		if err != nil {
			return nil, err
		}
		eq8, err := timeOf(func() error { _, e := p.Sim.Forward(pooled, ks, 1, false); return e })
		if err != nil {
			return nil, err
		}
		add("1. forward time Eq8 ≤ Eq7 ≪ Eq3 (paper 17.5×/10.7×)",
			fmt.Sprintf("Eq3/Eq7 = %.1f×, Eq3/Eq8 = %.1f×", eq3/eq7, eq3/eq8),
			eq8 <= eq7*1.25 && eq3 > 3*eq7)
	}

	// Claims 2 & part of 4: per-iteration times.
	iterTime := func(st core.Stage) (float64, error) {
		opts := core.DefaultOptions(p)
		o, err := core.New(opts, cs.Target)
		if err != nil {
			return 0, err
		}
		st.Iters = maxInt(2, 6/c.IterDiv)
		res, err := o.Run(context.Background(), []core.Stage{st})
		if err != nil {
			return 0, err
		}
		return res.ILTSeconds / float64(res.Iterations), nil
	}
	lowIter, err := iterTime(core.Stage{Scale: 4})
	if err != nil {
		return nil, err
	}
	highIter, err := iterTime(core.Stage{Scale: 4, HighRes: true})
	if err != nil {
		return nil, err
	}
	fullIter, err := iterTime(core.Stage{Scale: 1})
	if err != nil {
		return nil, err
	}
	add("2. low-res iteration ≪ high-res (paper ≈18×)",
		fmt.Sprintf("high/low = %.1f×", highIter/lowIter), highIter > 5*lowIter)
	add("2b. high-res ≈ no-downsampling iteration time",
		fmt.Sprintf("full/high = %.2f×", fullIter/highIter),
		fullIter/highIter > 0.5 && fullIter/highIter < 2.0)

	// Claims 3, 4, 7: quality/cost orderings on one case.
	runStages := func(stages []core.Stage, smooth int) (Measured, error) {
		opts := core.DefaultOptions(p)
		opts.SmoothWindow = smooth
		o, err := core.New(opts, cs.Target)
		if err != nil {
			return Measured{}, err
		}
		res, err := o.Run(context.Background(), core.ScaleStages(stages, c.IterDiv))
		if err != nil {
			return Measured{}, err
		}
		rep, err := c.evaluateMask(p, res.Mask, cs.Target)
		if err != nil {
			return Measured{}, err
		}
		rep.TAT = res.ILTSeconds
		return Measured{Report: rep, ILTSec: res.ILTSeconds, Result: res, Mask: res.Mask}, nil
	}
	fast, err := runStages(core.FastM1(), 3)
	if err != nil {
		return nil, err
	}
	exact, err := runStages(core.ExactM1(), 3)
	if err != nil {
		return nil, err
	}
	pixel, err := c.runPixel(p, cs.Target, nil, maxInt(1, 100/c.IterDiv))
	if err != nil {
		return nil, err
	}
	noDown, err := runStages([]core.Stage{{Scale: 1, Iters: 100}}, 0)
	if err != nil {
		return nil, err
	}
	lowOnly, err := runStages([]core.Stage{{Scale: 4, Iters: 100}}, 3)
	if err != nil {
		return nil, err
	}

	// The paper's Table I concedes that full-resolution ILT reaches the
	// lowest raw L2; the multi-level win is getting near it at a small
	// fraction of the runtime (and with far simpler masks — claim 4). The
	// 1.5× L2 margin absorbs the coarse mask quantisation of reduced-pixel
	// harnesses: an s=8 block spans 8 px of whatever the pixel pitch is, so
	// the gap narrows toward the paper's 1 nm/px (where its Tables show
	// multi-level within ~7% of the no-downsampling L2 trend).
	add("3. multi-level nears pixel-ILT L2 at ≥4× lower runtime",
		fmt.Sprintf("exact L2 %.0f in %.1fs vs pixel L2 %.0f in %.1fs",
			exact.Report.L2, exact.ILTSec, pixel.Report.L2, pixel.ILTSec),
		exact.Report.L2 <= 1.5*pixel.Report.L2 && exact.ILTSec < 0.25*pixel.ILTSec)

	add("4. no-downsampling: lowest L2 but far more shots than low-res",
		fmt.Sprintf("L2 %.0f vs %.0f; shots %d vs %d",
			noDown.Report.L2, lowOnly.Report.L2, noDown.Report.Shots, lowOnly.Report.Shots),
		noDown.Report.L2 <= lowOnly.Report.L2 && noDown.Report.Shots > lowOnly.Report.Shots)

	add("7. exact ≥ fast quality; fast is materially cheaper",
		fmt.Sprintf("L2 %.0f vs %.0f; time %.1fs vs %.1fs",
			exact.Report.L2, fast.Report.L2, exact.ILTSec, fast.ILTSec),
		exact.Report.L2 <= fast.Report.L2*1.05 && fast.ILTSec < 0.8*exact.ILTSec)

	// Claim 5: T_R = 0.5 grows SRAFs and improves L2+PVB at equal budget.
	{
		far := geom.DilateBox(cs.Target, maxInt(2, int(50/c.PixelNM())))
		runTR := func(tr float64) (Measured, float64, error) {
			opts := core.DefaultOptions(p)
			opts.Binary = mask.Sigmoid{Beta: mask.DefaultBeta, TR: tr}
			if tr == 0 {
				opts.OutputTR = 0
			}
			o, err := core.New(opts, cs.Target)
			if err != nil {
				return Measured{}, 0, err
			}
			res, err := o.Run(context.Background(), []core.Stage{{Scale: 4, Iters: maxInt(2, 40/c.IterDiv)}})
			if err != nil {
				return Measured{}, 0, err
			}
			rep, err := c.evaluateMask(p, res.Mask, cs.Target)
			if err != nil {
				return Measured{}, 0, err
			}
			var sraf float64
			for i := range res.Mask.Data {
				// Binarized mask: > 0.5 is the equality-free bright test.
				if far.Data[i] < 0.5 && res.Mask.Data[i] > 0.5 {
					sraf++
				}
			}
			return Measured{Report: rep}, sraf, nil
		}
		tr0, sraf0, err := runTR(0)
		if err != nil {
			return nil, err
		}
		tr5, sraf5, err := runTR(0.5)
		if err != nil {
			return nil, err
		}
		add("5. T_R=0.5 grows SRAFs and lowers L2+PVB vs T_R=0 (Fig. 4)",
			fmt.Sprintf("SRAF %0.f vs %0.f px; L2+PVB %.0f vs %.0f",
				sraf5, sraf0, tr5.Report.L2+tr5.Report.PVB, tr0.Report.L2+tr0.Report.PVB),
			sraf5 > sraf0 && tr5.Report.L2+tr5.Report.PVB < tr0.Report.L2+tr0.Report.PVB)
	}

	// Claim 6: smoothing pooling yields smoother, less fragmented contours
	// at equal budget ("efficiently avoid holes and fractures", Fig. 6).
	// Raggedness = perimeter²/area, the scale-free isoperimetric quotient.
	{
		withPool, err := runStages([]core.Stage{{Scale: 4, Iters: 80}}, 3)
		if err != nil {
			return nil, err
		}
		noPool, err := runStages([]core.Stage{{Scale: 4, Iters: 80}}, 0)
		if err != nil {
			return nil, err
		}
		// A 15% tolerance: the 3×3 window spans 3 work-grid pixels, i.e.
		// 12·pixelNM nm — at reduced resolutions it smooths far more
		// aggressively than the paper's 12 nm and can fragment SRAF rings,
		// washing out the raggedness gain that is clear at fine pitches.
		add("6. smoothing pooling: contours no rougher at equal budget (Fig. 6)",
			fmt.Sprintf("raggedness %.1f vs %.1f; shots %d vs %d",
				raggedness(withPool.Mask), raggedness(noPool.Mask),
				withPool.Report.Shots, noPool.Report.Shots),
			raggedness(withPool.Mask) <= 1.15*raggedness(noPool.Mask))
	}

	// Claim 8: the via flow prints every via.
	{
		vc, err := viaCase(c)
		if err != nil {
			return nil, err
		}
		opts := core.DefaultOptions(p)
		opts.Patience = core.ViaPatience
		o, err := core.New(opts, vc.Target)
		if err != nil {
			return nil, err
		}
		div := c.IterDiv
		if div > 5 {
			div = 5 // the via flow needs a real budget to converge
		}
		res, err := o.Run(context.Background(), core.ScaleStages(core.Via(), div))
		if err != nil {
			return nil, err
		}
		wafer, err := p.Print(res.Mask, p.Nominal())
		if err != nil {
			return nil, err
		}
		total, printed := viasPrinted(vc.Target, wafer)
		add("8. via flow prints every via (Fig. 8)",
			fmt.Sprintf("%d of %d printed", printed, total), total > 0 && printed == total)
	}

	if c.OutDir != "" {
		if err := t.SaveCSV(filepath.Join(c.OutDir, "verify.csv")); err != nil {
			return nil, err
		}
	}
	return t, nil
}
