package experiments

// Paper-reported results, used as reference columns so every regenerated
// table shows paper-vs-measured side by side. Values are the "Average" rows
// of Tables II–IV of the paper (L2/PVB in nm² at 1 nm/px, EPE and #shots
// counts, TAT in seconds on the authors' RTX 3090). EPE of −1 means the
// paper reports no value ("-").

// PaperAvg is one published average row.
type PaperAvg struct {
	Method string
	L2     float64
	PVB    float64
	EPE    float64 // −1 when unreported
	Shots  float64
	TAT    float64
}

// PaperTable2 is the Average row of Table II (region option 1).
var PaperTable2 = []PaperAvg{
	{Method: "Neural-ILT [4]", L2: 37515.3, PVB: 50963.9, EPE: 7.5, Shots: 332.1, TAT: 12.4},
	{Method: "A2-ILT [7]", L2: 36621.8, PVB: 50156.7, EPE: 7.9, Shots: 213.7, TAT: 4.51},
	{Method: "Our-fast (paper)", L2: 28916.5, PVB: 41144, EPE: 3.1, Shots: 251.5, TAT: 1.72},
	{Method: "Our-exact (paper)", L2: 27173.5, PVB: 39873, EPE: 2.5, Shots: 335.9, TAT: 3.45},
}

// PaperTable3 is the Average row of Table III (region option 2).
var PaperTable3 = []PaperAvg{
	{Method: "GLS-ILT [6]", L2: 38615.4, PVB: 50030.3, EPE: 3.7, Shots: 968.6, TAT: 100.1},
	{Method: "DevelSet [5]", L2: 38402.8, PVB: 48673, EPE: -1, Shots: 699.8, TAT: 1.112},
	{Method: "Our-fast (paper)", L2: 31270.3, PVB: 43377.5, EPE: 3.4, Shots: 211.1, TAT: 1.75},
	{Method: "Our-exact (paper)", L2: 28704.6, PVB: 42132, EPE: 2.7, Shots: 286.1, TAT: 3.48},
}

// PaperTable4 is the Average row of Table IV (extended cases 11–20).
var PaperTable4 = []PaperAvg{
	{Method: "Neural-ILT [4]", L2: 71570.7, PVB: 108162, EPE: 10.7, Shots: 609.3, TAT: 16.7},
	{Method: "Our-fast (paper)", L2: 54829.5, PVB: 88448.1, EPE: 3.4, Shots: 463.6, TAT: 1.70},
	{Method: "Our-exact (paper)", L2: 51028.2, PVB: 88022.1, EPE: 3.1, Shots: 535.8, TAT: 3.47},
}

// Paper-reported forward-simulation timing (Section III-B): 200 simulations
// at s = 4 on the RTX 3090.
var PaperForwardTiming = struct {
	Eq3, Eq7, Eq8 float64
}{Eq3: 8.173, Eq7: 0.767, Eq8: 0.466}

// Paper-reported Fig. 4 metrics (binarized masks after 40 iterations).
var PaperFig4 = struct {
	TR0L2, TR0PVB   float64
	TR05L2, TR05PVB float64
}{TR0L2: 50626, TR0PVB: 51465, TR05L2: 43452, TR05PVB: 46361}

// Paper-reported Fig. 6 metrics (with vs without smoothing pooling).
var PaperFig6 = struct {
	PoolL2, PoolPVB     float64
	NoPoolL2, NoPoolPVB float64
}{PoolL2: 70308, PoolPVB: 69069, NoPoolL2: 69043, NoPoolPVB: 70762}
